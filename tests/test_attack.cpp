// Attack machinery: snooper reconstruction, substitute construction,
// oracle labelling, Jacobian augmentation, I-FGSM.
#include <gtest/gtest.h>

#include <memory>

#include "attack/bus_snooper.hpp"
#include "attack/ifgsm.hpp"
#include "attack/jacobian_aug.hpp"
#include "attack/substitute.hpp"
#include "core/encryption_plan.hpp"
#include "models/build.hpp"
#include "nn/loss.hpp"
#include "nn/serialize.hpp"
#include "nn/trainer.hpp"
#include "sim/functional_memory.hpp"

namespace sealdl::attack {
namespace {

crypto::Key128 test_key() {
  crypto::Key128 key{};
  for (std::size_t i = 0; i < key.size(); ++i) key[i] = static_cast<std::uint8_t>(i * 13 + 5);
  return key;
}

// ------------------------------------------------------------- BusSnooper ---

TEST(BusSnooper, ReconstructsPlaintextExactly) {
  sim::FunctionalMemory memory(sim::EncryptionScheme::kNone, false, nullptr,
                               test_key());
  BusSnooper snooper;
  memory.set_probe(&snooper);
  std::vector<std::uint8_t> secret(777);
  for (std::size_t i = 0; i < secret.size(); ++i) secret[i] = static_cast<std::uint8_t>(i % 251);
  memory.write(0x1000, secret);
  EXPECT_EQ(snooper.extract(0x1000, secret.size()), secret);
  EXPECT_TRUE(snooper.fully_observed(0x1000, secret.size()));
  EXPECT_FALSE(snooper.saw_ciphertext(0x1000, secret.size()));
}

TEST(BusSnooper, EncryptedLinesYieldGarbage) {
  sim::FunctionalMemory memory(sim::EncryptionScheme::kDirect, false, nullptr,
                               test_key());
  BusSnooper snooper;
  memory.set_probe(&snooper);
  std::vector<std::uint8_t> secret(256, 0x42);
  memory.write(0x2000, secret);
  const auto seen = snooper.extract(0x2000, secret.size());
  EXPECT_NE(seen, secret);
  EXPECT_TRUE(snooper.saw_ciphertext(0x2000, secret.size()));
}

TEST(BusSnooper, UnobservedRangesReadZeroAndReportCoverage) {
  BusSnooper snooper;
  const auto bytes = snooper.extract(0x5000, 64);
  EXPECT_EQ(bytes, std::vector<std::uint8_t>(64, 0));
  EXPECT_FALSE(snooper.fully_observed(0x5000, 64));
  EXPECT_EQ(snooper.transfers(), 0u);
}

TEST(BusSnooper, SelectiveMixRecoversOnlyPlaintextLines) {
  sim::SecureMap map;
  map.add_range(0x3000, 128);  // first line secure, second plain
  sim::FunctionalMemory memory(sim::EncryptionScheme::kDirect, true, &map,
                               test_key());
  BusSnooper snooper;
  memory.set_probe(&snooper);
  std::vector<std::uint8_t> secret(256);
  for (std::size_t i = 0; i < secret.size(); ++i) secret[i] = static_cast<std::uint8_t>(i);
  memory.write(0x3000, secret);
  const auto seen = snooper.extract(0x3000, 256);
  EXPECT_FALSE(std::equal(seen.begin(), seen.begin() + 128, secret.begin()));
  EXPECT_TRUE(std::equal(seen.begin() + 128, seen.end(), secret.begin() + 128));
}

TEST(BusSnooper, ClearResetsState) {
  sim::FunctionalMemory memory(sim::EncryptionScheme::kNone, false, nullptr,
                               test_key());
  BusSnooper snooper;
  memory.set_probe(&snooper);
  memory.write(0x1000, std::vector<std::uint8_t>(128, 1));
  EXPECT_GT(snooper.transfers(), 0u);
  snooper.clear();
  EXPECT_EQ(snooper.transfers(), 0u);
  EXPECT_FALSE(snooper.fully_observed(0x1000, 128));
}

// ------------------------------------------------------------- substitutes ---

models::BuildOptions tiny_build() {
  models::BuildOptions build;
  build.input_hw = 8;
  build.width_div = 16;
  return build;
}

ModelFactory tiny_factory() {
  return [] { return models::build_vgg16(tiny_build()); };
}

AdversaryCorpus tiny_corpus(nn::Layer& oracle) {
  nn::DatasetConfig config;
  config.height = config.width = 8;
  config.samples = 100;
  nn::SyntheticDataset data(config);
  std::vector<int> idx(64);
  for (int i = 0; i < 64; ++i) idx[static_cast<std::size_t>(i)] = i;
  AdversaryCorpus corpus;
  corpus.images = data.batch(idx);
  corpus.labels = query_oracle(oracle, corpus.images);
  return corpus;
}

TEST(Substitute, WhiteBoxIsExactCopy) {
  auto victim = tiny_factory()();
  auto white = make_white_box(tiny_factory(), *victim);
  const auto a = nn::serialize_params(*victim);
  const auto b = nn::serialize_params(*white);
  EXPECT_EQ(a, b);
}

TEST(Substitute, OracleLabelsMatchVictimPredictions) {
  auto victim = tiny_factory()();
  nn::DatasetConfig config;
  config.height = config.width = 8;
  config.samples = 20;
  nn::SyntheticDataset data(config);
  std::vector<int> idx{0, 1, 2, 3, 4};
  const nn::Tensor images = data.batch(idx);
  const auto labels = query_oracle(*victim, images);
  const auto direct = nn::predict(victim->forward(images, false));
  EXPECT_EQ(labels, direct);
}

TEST(Substitute, SealSubstituteKeepsPlaintextRows) {
  auto victim = tiny_factory()();
  core::PlanOptions options;
  options.encryption_ratio = 0.5;
  const auto plan = core::EncryptionPlan::from_model(*victim, options);
  auto corpus = tiny_corpus(*victim);
  nn::TrainOptions train;
  train.epochs = 0;  // construction only: no fine-tuning
  auto substitute = make_seal_substitute(tiny_factory(), *victim, plan, corpus,
                                         train, /*freeze_known=*/false);

  const auto victim_layers = core::collect_weight_layers(*victim);
  const auto sub_layers = core::collect_weight_layers(*substitute);
  ASSERT_EQ(victim_layers.size(), sub_layers.size());
  for (std::size_t li = 0; li < victim_layers.size(); ++li) {
    const auto& lp = plan.layer(li);
    const auto& vic = victim_layers[li];
    const auto& sub = sub_layers[li];
    const int cell = vic.weights_per_cell;
    for (int oc = 0; oc < vic.cols && oc < 2; ++oc) {
      for (int ic = 0; ic < vic.rows; ++ic) {
        std::size_t idx;
        if (vic.is_conv) {
          idx = (static_cast<std::size_t>(oc) * static_cast<std::size_t>(vic.rows) +
                 static_cast<std::size_t>(ic)) * static_cast<std::size_t>(cell);
        } else {
          idx = static_cast<std::size_t>(oc) * static_cast<std::size_t>(vic.rows) +
                static_cast<std::size_t>(ic);
        }
        if (lp.row_encrypted(ic)) {
          // Overwhelmingly likely to differ (fresh normal draw).
          EXPECT_NE(vic.weight->value[idx], sub.weight->value[idx])
              << "layer " << li << " row " << ic;
        } else {
          EXPECT_EQ(vic.weight->value[idx], sub.weight->value[idx])
              << "layer " << li << " row " << ic;
        }
      }
    }
  }
}

TEST(Substitute, FrozenVariantDoesNotTouchKnownRows) {
  auto victim = tiny_factory()();
  core::PlanOptions options;
  options.encryption_ratio = 0.5;
  options.full_head_convs = 0;
  options.full_tail_convs = 0;
  options.full_tail_fcs = 0;
  const auto plan = core::EncryptionPlan::from_model(*victim, options);
  auto corpus = tiny_corpus(*victim);
  nn::TrainOptions train;
  train.epochs = 2;
  train.sgd.lr = 0.05f;
  auto substitute = make_seal_substitute(tiny_factory(), *victim, plan, corpus,
                                         train, /*freeze_known=*/true);
  const auto victim_layers = core::collect_weight_layers(*victim);
  const auto sub_layers = core::collect_weight_layers(*substitute);
  for (std::size_t li = 0; li < victim_layers.size(); ++li) {
    const auto& lp = plan.layer(li);
    const auto& vic = victim_layers[li];
    const auto& sub = sub_layers[li];
    const int cell = vic.weights_per_cell;
    for (int ic = 0; ic < vic.rows; ++ic) {
      if (lp.row_encrypted(ic)) continue;
      // Known row: frozen through training => still equal to the victim.
      const std::size_t idx =
          vic.is_conv ? static_cast<std::size_t>(ic) * static_cast<std::size_t>(cell)
                      : static_cast<std::size_t>(ic);
      EXPECT_EQ(vic.weight->value[idx], sub.weight->value[idx])
          << "layer " << li << " row " << ic;
    }
  }
}

// ------------------------------------------------------- Jacobian / I-FGSM ---

TEST(JacobianAug, EachRoundDoublesTheCorpus) {
  auto model = tiny_factory()();
  auto oracle = tiny_factory()();
  auto corpus = tiny_corpus(*oracle);
  JacobianAugOptions options;
  options.rounds = 2;
  const auto augmented = jacobian_augment(*model, *oracle, corpus.images,
                                          corpus.labels, options);
  EXPECT_EQ(augmented.images.dim(0), corpus.images.dim(0) * 4);
  EXPECT_EQ(augmented.labels.size(), static_cast<std::size_t>(corpus.images.dim(0)) * 4);
}

TEST(JacobianAug, PerturbationIsBoundedByLambda) {
  auto model = tiny_factory()();
  auto oracle = tiny_factory()();
  auto corpus = tiny_corpus(*oracle);
  JacobianAugOptions options;
  options.rounds = 1;
  options.lambda = 0.05f;
  const auto augmented = jacobian_augment(*model, *oracle, corpus.images,
                                          corpus.labels, options);
  const int n = corpus.images.dim(0);
  const std::size_t per = corpus.images.numel() / static_cast<std::size_t>(n);
  for (int i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < per; ++j) {
      const float orig = corpus.images[static_cast<std::size_t>(i) * per + j];
      const float aug = augmented.images[static_cast<std::size_t>(n + i) * per + j];
      EXPECT_LE(std::abs(aug - orig), options.lambda + 1e-6f);
    }
  }
}

TEST(JacobianAug, InputGradientMatchesFiniteDifference) {
  auto model = tiny_factory()();
  nn::DatasetConfig config;
  config.height = config.width = 8;
  config.samples = 10;
  nn::SyntheticDataset data(config);
  nn::Tensor x = data.batch({0});
  const std::vector<int> label{3};
  nn::Tensor grad = class_logit_input_gradient(*model, x, label);
  const float h = 1e-2f;
  for (std::size_t i = 0; i < x.numel(); i += 37) {
    nn::Tensor xp = x, xm = x;
    xp[i] += h;
    xm[i] -= h;
    const float fp = model->forward(xp, false).at2(0, 3);
    const float fm = model->forward(xm, false).at2(0, 3);
    const float numeric = (fp - fm) / (2 * h);
    EXPECT_NEAR(grad[i], numeric, 0.05f * std::max(1.0f, std::abs(numeric)));
  }
}

// A small trained-ish linear model gives the attack a well-conditioned
// loss surface (an untrained deep net's gradients are too flat for a
// budgeted test).
std::unique_ptr<nn::Sequential> linear_model() {
  util::Rng rng(5);
  auto net = std::make_unique<nn::Sequential>();
  net->add(std::make_unique<nn::Flatten>());
  net->add(std::make_unique<nn::Linear>(3 * 8 * 8, 10, true, rng));
  return net;
}

TEST(Ifgsm, FoolsItsOwnSubstituteWithinBudget) {
  auto model = linear_model();
  nn::DatasetConfig config;
  config.height = config.width = 8;
  config.samples = 40;
  nn::SyntheticDataset data(config);
  std::vector<int> idx(16);
  for (int i = 0; i < 16; ++i) idx[static_cast<std::size_t>(i)] = i;
  const nn::Tensor images = data.batch(idx);
  const auto labels = nn::predict(model->forward(images, false));

  IfgsmOptions options;
  options.max_iters = 50;
  options.epsilon = 2.0f;  // generous budget on an untrained model
  options.alpha = 0.1f;
  const auto batch = generate_ifgsm(*model, images, labels, 10, options);
  int fooled = 0;
  for (bool f : batch.fooled_substitute) fooled += f ? 1 : 0;
  EXPECT_GT(fooled, 12);  // near-100% success on its own substitute

  // Perturbations respect the L-inf ball.
  for (std::size_t i = 0; i < images.numel(); ++i) {
    EXPECT_LE(std::abs(batch.images[i] - images[i]), options.epsilon + 1e-5f);
  }
  // Targets are never the true label.
  for (std::size_t i = 0; i < batch.targets.size(); ++i) {
    EXPECT_NE(batch.targets[i], batch.true_labels[i]);
  }
}

TEST(Ifgsm, TransferToIdenticalVictimIsTotal) {
  auto model = linear_model();
  nn::DatasetConfig config;
  config.height = config.width = 8;
  config.samples = 30;
  nn::SyntheticDataset data(config);
  std::vector<int> idx{0, 1, 2, 3, 4, 5, 6, 7};
  const nn::Tensor images = data.batch(idx);
  const auto labels = nn::predict(model->forward(images, false));
  IfgsmOptions options;
  options.max_iters = 50;
  options.epsilon = 2.0f;
  options.alpha = 0.1f;
  const auto batch = generate_ifgsm(*model, images, labels, 10, options);
  const auto result = evaluate_transfer(*model, batch);
  // The "victim" is the substitute itself: every successful example transfers.
  EXPECT_DOUBLE_EQ(result.transferability, 1.0);
}

}  // namespace
}  // namespace sealdl::attack
