// util: deterministic RNG, statistics, table rendering, CLI parsing.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include <string>

#include "util/cli.hpp"
#include "util/json.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace sealdl::util {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += a.next() == b.next() ? 1 : 0;
  EXPECT_LT(equal, 2);
}

TEST(Rng, ForkIsIndependentOfParentContinuation) {
  Rng parent(7);
  Rng child = parent.fork();
  const std::uint64_t c0 = child.next();
  // Re-derive: fork consumed exactly one parent draw.
  Rng parent2(7);
  Rng child2(parent2.next());
  EXPECT_EQ(c0, child2.next());
}

class RngBounds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngBounds, NextBelowStaysInRange) {
  Rng rng(GetParam());
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
}

TEST_P(RngBounds, DoubleInUnitInterval) {
  Rng rng(GetParam());
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngBounds, ::testing::Values(1, 99, 12345));

TEST(Rng, NormalMomentsRoughlyStandard) {
  Rng rng(5);
  RunningStats stats;
  for (int i = 0; i < 20000; ++i) stats.add(rng.normal());
  EXPECT_NEAR(stats.mean(), 0.0, 0.03);
  EXPECT_NEAR(stats.stddev(), 1.0, 0.03);
}

TEST(Rng, BernoulliRate) {
  Rng rng(6);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.02);
}

TEST(Rng, NextBelowIsRoughlyUniform) {
  Rng rng(8);
  std::array<int, 10> buckets{};
  for (int i = 0; i < 20000; ++i) ++buckets[rng.next_below(10)];
  for (int count : buckets) EXPECT_NEAR(count, 2000, 250);
}

TEST(RunningStats, MatchesClosedForm) {
  RunningStats s;
  for (double v : {1.0, 2.0, 3.0, 4.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.variance(), 1.25);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_DOUBLE_EQ(s.sum(), 10.0);
  EXPECT_EQ(s.count(), 4u);
}

TEST(Stats, GeomeanAndMean) {
  EXPECT_DOUBLE_EQ(geomean({4.0, 9.0}), 6.0);
  EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
  EXPECT_DOUBLE_EQ(geomean({}), 0.0);
}

TEST(Stats, HitRate) {
  HitRate hr;
  hr.record(true);
  hr.record(false);
  hr.record(true);
  hr.record(true);
  EXPECT_DOUBLE_EQ(hr.rate(), 0.75);
}

TEST(Histogram, BucketsAndOverflow) {
  Histogram h(0.0, 10.0, 5);
  h.add(-1.0);
  h.add(0.0);
  h.add(3.9);
  h.add(4.0);
  h.add(11.0);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.bucket_count(0), 1u);
  EXPECT_EQ(h.bucket_count(1), 1u);
  EXPECT_EQ(h.bucket_count(2), 1u);
  EXPECT_DOUBLE_EQ(h.bucket_lo(1), 2.0);
  EXPECT_DOUBLE_EQ(h.bucket_hi(1), 4.0);
}

TEST(Histogram, PercentileOfEmptyIsLowerBound) {
  Histogram h(2.0, 10.0, 4);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.percentile(50.0), 2.0);
  EXPECT_DOUBLE_EQ(h.percentile(99.0), 2.0);
}

TEST(Histogram, PercentileInterpolatesWithinBucket) {
  Histogram h(0.0, 10.0, 5);
  for (int i = 0; i < 4; ++i) h.add(1.0);  // all mass in bucket [0, 2)
  EXPECT_EQ(h.count(), 4u);
  // p50 → rank 2 of 4 → halfway through the only occupied bucket.
  EXPECT_DOUBLE_EQ(h.percentile(50.0), 1.0);
  EXPECT_DOUBLE_EQ(h.percentile(100.0), 2.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.0), 0.0);
}

TEST(Histogram, PercentileHandlesUnderflowAndOverflowMass) {
  Histogram h(0.0, 10.0, 5);
  h.add(-5.0);  // underflow
  h.add(5.0);
  h.add(50.0);  // overflow
  EXPECT_EQ(h.count(), 3u);
  // First third of the mass is underflow → clamped to lo.
  EXPECT_DOUBLE_EQ(h.percentile(10.0), 0.0);
  // Last third is overflow → clamped to hi.
  EXPECT_DOUBLE_EQ(h.percentile(99.0), 10.0);
  // Out-of-range p is clamped, not UB.
  EXPECT_DOUBLE_EQ(h.percentile(150.0), 10.0);
  EXPECT_DOUBLE_EQ(h.percentile(-3.0), 0.0);
}

TEST(Histogram, AllMassInOverflowSaturatesAtHi) {
  // When every sample escapes the range, the histogram can only say "at
  // least hi": every percentile clamps to hi, and overflow() carries the
  // evidence that the percentiles are saturated.
  Histogram h(0.0, 10.0, 5);
  for (int i = 0; i < 100; ++i) h.add(1000.0);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.overflow(), 100u);
  EXPECT_DOUBLE_EQ(h.percentile(0.0), 10.0);
  EXPECT_DOUBLE_EQ(h.percentile(50.0), 10.0);
  EXPECT_DOUBLE_EQ(h.percentile(99.0), 10.0);
  EXPECT_DOUBLE_EQ(h.percentile(100.0), 10.0);
}

TEST(Histogram, SingleUnderflowSampleClampsToLo) {
  Histogram h(5.0, 10.0, 5);
  h.add(-100.0);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_DOUBLE_EQ(h.percentile(50.0), 5.0);
  EXPECT_DOUBLE_EQ(h.percentile(99.0), 5.0);
}

TEST(Table, RendersAlignedCells) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22.5"});
  const std::string out = t.render();
  EXPECT_NE(out.find("| alpha | 1     |"), std::string::npos);
  EXPECT_NE(out.find("| b     | 22.5  |"), std::string::npos);
}

TEST(Table, FormattersProduceFixedPrecision) {
  EXPECT_EQ(Table::fmt(1.23456, 2), "1.23");
  EXPECT_EQ(Table::pct(0.4567, 1), "45.7%");
}

TEST(Cli, ParsesAllFlagForms) {
  // Note: a bare `--flag` followed by a non-flag token consumes that token as
  // its value, so the boolean form must be last or use `=`.
  const char* argv[] = {"prog", "pos1", "--alpha", "3",    "--beta=hello",
                        "--gamma", "2.5", "--flag"};
  CliFlags flags(8, const_cast<char**>(argv));
  EXPECT_EQ(flags.get_int("alpha", 0), 3);
  EXPECT_EQ(flags.get("beta", ""), "hello");
  EXPECT_TRUE(flags.get_bool("flag", false));
  EXPECT_DOUBLE_EQ(flags.get_double("gamma", 0.0), 2.5);
  ASSERT_EQ(flags.positional().size(), 1u);
  EXPECT_EQ(flags.positional()[0], "pos1");
  EXPECT_TRUE(flags.unused().empty());
}

TEST(Cli, ReportsUnusedFlags) {
  const char* argv[] = {"prog", "--typo", "1"};
  CliFlags flags(3, const_cast<char**>(argv));
  const auto unused = flags.unused();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "typo");
}

TEST(Cli, MissingFlagFallsBack) {
  const char* argv[] = {"prog"};
  CliFlags flags(1, const_cast<char**>(argv));
  EXPECT_EQ(flags.get_int("n", 17), 17);
  EXPECT_FALSE(flags.has("n"));
}

// Minimal RFC 8259 string-body decoder: the inverse of JsonWriter::escape.
// Only the escapes escape() can emit are accepted; anything else is a bug.
std::string unescape(const std::string& s) {
  std::string out;
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '\\') {
      out += s[i];
      continue;
    }
    ++i;
    EXPECT_LT(i, s.size()) << "dangling backslash";
    switch (s[i]) {
      case '"': out += '"'; break;
      case '\\': out += '\\'; break;
      case 'b': out += '\b'; break;
      case 'f': out += '\f'; break;
      case 'n': out += '\n'; break;
      case 'r': out += '\r'; break;
      case 't': out += '\t'; break;
      case 'u': {
        EXPECT_LE(i + 4, s.size() - 1) << "truncated \\u escape";
        const unsigned code =
            static_cast<unsigned>(std::stoul(s.substr(i + 1, 4), nullptr, 16));
        EXPECT_LT(code, 0x80u) << "escape() only emits \\u for control bytes";
        out += static_cast<char>(code);
        i += 4;
        break;
      }
      default:
        ADD_FAILURE() << "unexpected escape \\" << s[i];
    }
  }
  return out;
}

TEST(JsonWriter, EscapeRoundTripsEveryByte) {
  // Every byte value 0x01..0xFF embedded in context must survive
  // escape -> unescape unchanged, and the escaped form must never contain a
  // raw control character (RFC 8259 forbids them inside strings).
  for (int b = 1; b < 256; ++b) {
    const std::string original =
        std::string("k[") + static_cast<char>(b) + "]";
    const std::string escaped = JsonWriter::escape(original);
    for (const char c : escaped) {
      EXPECT_GE(static_cast<unsigned char>(c), 0x20u)
          << "raw control char in escaped output for byte " << b;
    }
    EXPECT_EQ(unescape(escaped), original) << "byte " << b;
  }
}

TEST(JsonWriter, EscapeUsesShortFormsAndUnicodeEscapes) {
  EXPECT_EQ(JsonWriter::escape("\"\\"), "\\\"\\\\");
  EXPECT_EQ(JsonWriter::escape("\b\f\n\r\t"), "\\b\\f\\n\\r\\t");
  // Remaining control bytes take the \u00XX form, lowercase hex, no
  // sign-extension artifacts.
  EXPECT_EQ(JsonWriter::escape(std::string(1, '\x01')), "\\u0001");
  EXPECT_EQ(JsonWriter::escape(std::string(1, '\x1f')), "\\u001f");
  EXPECT_EQ(JsonWriter::escape(std::string(1, '\x00')), "\\u0000");
  // UTF-8 multi-byte sequences pass through untouched.
  EXPECT_EQ(JsonWriter::escape("λ=0.5"), "λ=0.5");
}

TEST(JsonWriter, HostileKeysAndValuesStayParseable) {
  // A document built from adversarial layer/metric names must remain
  // structurally valid: balanced containers, no raw control bytes, and the
  // string bodies decode back to the originals.
  const std::string key = "conv\t1\n\"input\"\\path\x01";
  const std::string val = "relu\r{nested}\x1f";
  JsonWriter json;
  json.begin_object().field(key, val).end_object();
  const std::string doc = json.str();

  for (const char c : doc) {
    EXPECT_GE(static_cast<unsigned char>(c), 0x20u) << "raw control byte";
  }
  // Extract the two string bodies and round-trip them.
  std::vector<std::string> bodies;
  for (std::size_t i = 0; i < doc.size(); ++i) {
    if (doc[i] != '"') continue;
    std::string body;
    for (++i; i < doc.size() && doc[i] != '"'; ++i) {
      body += doc[i];
      if (doc[i] == '\\') body += doc[++i];  // skip escaped char
    }
    bodies.push_back(body);
  }
  ASSERT_EQ(bodies.size(), 2u);
  EXPECT_EQ(unescape(bodies[0]), key);
  EXPECT_EQ(unescape(bodies[1]), val);
  EXPECT_EQ(doc.front(), '{');
  EXPECT_EQ(doc.back(), '}');
}

TEST(Logging, ParseLogLevelNamesAndFallback) {
  EXPECT_EQ(parse_log_level("debug", LogLevel::kWarn), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("INFO", LogLevel::kWarn), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level("Warn", LogLevel::kError), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("warning", LogLevel::kError), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("error", LogLevel::kWarn), LogLevel::kError);
  // Unset / unknown values keep the fallback (SEALDL_LOG_LEVEL unset case).
  EXPECT_EQ(parse_log_level(nullptr, LogLevel::kWarn), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("verbose", LogLevel::kInfo), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level("", LogLevel::kError), LogLevel::kError);
}

}  // namespace
}  // namespace sealdl::util
