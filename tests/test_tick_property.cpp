// Property-style randomized tests for the event-skipping fast path.
//
// Two layers of defense, both driven by seeded LCG streams (deterministic,
// no std::random_device):
//
//  1. Component level: the run loop's fast-forward assumes L2Slice and
//     MemoryController are pure reservation machines — their state changes
//     only when a request is presented, never as a function of the clock
//     merely advancing. A random request stream is therefore presented to
//     two identical memory stacks, once walking every cycle (observing the
//     profiler-facing accessors along the way and asserting they stay
//     constant between presentations) and once jumping straight between
//     event cycles. Every returned completion cycle and the final stats
//     must match exactly. If a component ever grows per-cycle behavior
//     (decay, refresh, background sweeps), this harness is the tripwire.
//
//  2. Whole-machine level: randomized warp programs (loads, stores, compute
//     bursts, barriers at random thresholds) run through GpuSimulator twice,
//     fast path vs the naive per-cycle reference, and every stats field must
//     match bit for bit — the structured-workload equivalence suite
//     (test_fast_path) can't reach op interleavings that random programs do.
#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "sim/gpu_config.hpp"
#include "sim/gpu_simulator.hpp"
#include "sim/l2_slice.hpp"
#include "sim/mem_controller.hpp"
#include "sim/warp_program.hpp"

namespace sealdl::sim {
namespace {

/// Minimal deterministic generator (same constants as MMIX). Seeded per test
/// so every run of the suite replays the identical "random" streams.
class Lcg {
 public:
  explicit Lcg(std::uint64_t seed) : state_(seed * 2862933555777941757ULL + 1) {}
  std::uint64_t next() {
    state_ = state_ * 6364136223846793005ULL + 1442695040888963407ULL;
    return state_ >> 17;
  }
  std::uint64_t next(std::uint64_t bound) { return next() % bound; }

 private:
  std::uint64_t state_;
};

// ------------------------------------------------------------ component ---

struct StreamEvent {
  Cycle at = 0;
  bool is_read = false;
  Addr addr = 0;
};

/// A random line-request stream with long idle gaps (the spans a skipping
/// run loop jumps over) and a small address pool (so hits, misses, MSHR
/// merges, and counter-cache hits all occur).
std::vector<StreamEvent> make_stream(std::uint64_t seed, int events) {
  Lcg lcg(seed);
  std::vector<StreamEvent> stream;
  stream.reserve(static_cast<std::size_t>(events));
  Cycle now = 0;
  for (int i = 0; i < events; ++i) {
    now += lcg.next(40);
    if (lcg.next(8) == 0) now += 2000 + lcg.next(4000);  // long idle span
    StreamEvent event;
    event.at = now;
    event.is_read = lcg.next(4) != 0;  // 3:1 reads to writes
    event.addr = static_cast<Addr>(lcg.next(192)) * 128;  // 24 KB pool
    stream.push_back(event);
  }
  return stream;
}

/// Observable component state the profiler reads during spans. Asserted
/// constant between presentations by the unskipped driver.
struct StackObservation {
  Cycle hit_busy, dram_busy, aes_busy, counter_busy;
  bool pending_fills;

  bool operator==(const StackObservation& other) const {
    return hit_busy == other.hit_busy && dram_busy == other.dram_busy &&
           aes_busy == other.aes_busy && counter_busy == other.counter_busy &&
           pending_fills == other.pending_fills;
  }
};

/// Presents `stream` to a fresh L2Slice + MemoryController stack. With
/// `skip` false the clock walks every cycle between events; with `skip`
/// true it jumps. Returns the full observable trace: one entry per returned
/// cycle/flag, plus the drained final stats.
std::pair<std::vector<std::uint64_t>, SimStats> run_stream(
    const GpuConfig& config, const std::vector<StreamEvent>& stream,
    bool skip) {
  MemoryController controller(config, /*secure_map=*/nullptr);
  L2Slice slice(config, &controller);
  std::vector<std::uint64_t> trace;

  const auto observe = [&] {
    return StackObservation{slice.hit_busy_until(),
                            controller.dram_busy_until(),
                            controller.aes_busy_until(),
                            controller.counter_busy_until(),
                            slice.has_pending_fills()};
  };

  // Pending fills become events of their own, delivered at fill_ready, the
  // same discipline GpuSimulator::deliver_ready uses.
  std::vector<std::pair<Cycle, Addr>> fills;
  Cycle now = 0;
  std::size_t next_event = 0;
  while (next_event < stream.size() || !fills.empty()) {
    // Next interesting cycle: the earlier of the next request and the next
    // completed fill.
    Cycle target = ~static_cast<Cycle>(0);
    if (next_event < stream.size()) target = stream[next_event].at;
    for (const auto& fill : fills) target = std::min(target, fill.first);

    if (skip) {
      now = std::max(now, target);
    } else {
      // Walk to the target one cycle at a time, checking that nothing the
      // profiler could observe moves while no request is presented.
      const StackObservation before = observe();
      while (now < target) {
        ++now;
        EXPECT_TRUE(observe() == before)
            << "component state changed during an idle span at cycle " << now;
      }
    }

    for (std::size_t i = 0; i < fills.size();) {
      if (fills[i].first <= now) {
        const auto waiters = slice.complete_fill(now, fills[i].second);
        trace.push_back(waiters.size());
        for (const Waiter& waiter : waiters) {
          trace.push_back(static_cast<std::uint64_t>(waiter.sm_id));
          trace.push_back(static_cast<std::uint64_t>(waiter.warp_id));
        }
        fills[i] = fills.back();
        fills.pop_back();
      } else {
        ++i;
      }
    }
    while (next_event < stream.size() && stream[next_event].at <= now) {
      const StreamEvent& event = stream[next_event++];
      if (event.is_read) {
        Cycle fill_ready = 0;
        const L2ReadResult result = slice.read(
            now, event.addr, Waiter{0, static_cast<int>(next_event)},
            &fill_ready);
        trace.push_back(result.hit ? result.ready : 0);
        trace.push_back(result.merged);
        if (!result.hit && !result.merged) {
          trace.push_back(fill_ready);
          fills.emplace_back(fill_ready, event.addr & ~static_cast<Addr>(127));
        }
      } else {
        slice.write(now, event.addr & ~static_cast<Addr>(127));
      }
    }
  }

  slice.flush(now);
  trace.push_back(controller.flush(now));
  SimStats stats;
  controller.accumulate(stats);
  stats.l2_hits = slice.hit_rate().hits;
  stats.l2_misses = slice.hit_rate().total - slice.hit_rate().hits;
  return {std::move(trace), stats};
}

void expect_stats_identical(const SimStats& a, const SimStats& b) {
  EXPECT_EQ(a.l2_hits, b.l2_hits);
  EXPECT_EQ(a.l2_misses, b.l2_misses);
  EXPECT_EQ(a.dram_read_bytes, b.dram_read_bytes);
  EXPECT_EQ(a.dram_write_bytes, b.dram_write_bytes);
  EXPECT_EQ(a.encrypted_bytes, b.encrypted_bytes);
  EXPECT_EQ(a.bypassed_bytes, b.bypassed_bytes);
  EXPECT_EQ(a.aes_busy_cycles, b.aes_busy_cycles);
  EXPECT_EQ(a.dram_busy_cycles, b.dram_busy_cycles);
  EXPECT_EQ(a.counter_hits, b.counter_hits);
  EXPECT_EQ(a.counter_misses, b.counter_misses);
  EXPECT_EQ(a.counter_traffic_bytes, b.counter_traffic_bytes);
}

class MemoryStackSkipProperty
    : public ::testing::TestWithParam<std::tuple<EncryptionScheme, int>> {};

TEST_P(MemoryStackSkipProperty, SkippedPresentationMatchesPerCycle) {
  const auto& [scheme, seed] = GetParam();
  GpuConfig config = GpuConfig::gtx480();
  config.scheme = scheme;

  const auto stream = make_stream(static_cast<std::uint64_t>(seed), 600);
  const auto per_cycle = run_stream(config, stream, /*skip=*/false);
  const auto skipped = run_stream(config, stream, /*skip=*/true);
  EXPECT_EQ(per_cycle.first, skipped.first);
  expect_stats_identical(per_cycle.second, skipped.second);
}

INSTANTIATE_TEST_SUITE_P(
    SchemesAndSeeds, MemoryStackSkipProperty,
    ::testing::Combine(::testing::Values(EncryptionScheme::kNone,
                                         EncryptionScheme::kDirect,
                                         EncryptionScheme::kCounter),
                       ::testing::Values(1, 2, 3, 4)),
    [](const ::testing::TestParamInfo<MemoryStackSkipProperty::ParamType>&
           info) {
      const char* scheme =
          std::get<0>(info.param) == EncryptionScheme::kNone     ? "baseline"
          : std::get<0>(info.param) == EncryptionScheme::kDirect ? "direct"
                                                                 : "counter";
      return std::string(scheme) + "_seed" +
             std::to_string(std::get<1>(info.param));
    });

// -------------------------------------------------------- whole machine ---

/// A warp program of `ops` pseudo-random instructions. Same seed => same
/// sequence, so two simulators can be loaded with identical work.
class RandomWarpProgram final : public WarpProgram {
 public:
  RandomWarpProgram(std::uint64_t seed, int ops) : lcg_(seed), remaining_(ops) {}

  std::optional<WarpOp> next() override {
    if (remaining_ == 0) {
      // Final barrier so every load returns before the warp retires.
      if (!drained_) {
        drained_ = true;
        return WarpOp{WarpOp::Kind::kWaitLoads, 0, 0};
      }
      return std::nullopt;
    }
    --remaining_;
    const std::uint64_t roll = lcg_.next(10);
    const Addr addr = static_cast<Addr>(lcg_.next(4096)) * 128;
    if (roll < 4) {
      return WarpOp{WarpOp::Kind::kCompute,
                    0,
                    static_cast<std::uint32_t>(1 + lcg_.next(8))};
    }
    if (roll < 7) return WarpOp{WarpOp::Kind::kLoad, addr, 1};
    if (roll < 9) return WarpOp{WarpOp::Kind::kStore, addr, 1};
    return WarpOp{WarpOp::Kind::kWaitLoads, 0,
                  static_cast<std::uint32_t>(lcg_.next(3))};
  }

 private:
  Lcg lcg_;
  int remaining_;
  bool drained_ = false;
};

SimStats run_random_machine(const GpuConfig& config, std::uint64_t seed,
                            int warps, int ops, bool fast_path) {
  std::vector<WarpProgramPtr> programs;
  programs.reserve(static_cast<std::size_t>(warps));
  for (int w = 0; w < warps; ++w) {
    programs.push_back(std::make_unique<RandomWarpProgram>(
        seed * 1000003ULL + static_cast<std::uint64_t>(w), ops));
  }
  GpuSimulator simulator(config);
  simulator.set_fast_path(fast_path);
  simulator.load_work(std::move(programs));
  simulator.run();
  return simulator.stats();
}

class RandomMachineFastPath
    : public ::testing::TestWithParam<std::tuple<EncryptionScheme, int>> {};

TEST_P(RandomMachineFastPath, FastPathMatchesNaiveOnRandomPrograms) {
  const auto& [scheme, seed] = GetParam();
  GpuConfig config = GpuConfig::gtx480();
  config.scheme = scheme;
  // Under-filled machine: some SMs get fewer warps (or none), so the per-SM
  // may_issue() skip and the pending-launch gate both matter.
  const int warps = config.num_sms * 2 + 3;

  const SimStats fast = run_random_machine(config, static_cast<std::uint64_t>(seed),
                                           warps, 400, /*fast_path=*/true);
  const SimStats slow = run_random_machine(config, static_cast<std::uint64_t>(seed),
                                           warps, 400, /*fast_path=*/false);
  EXPECT_EQ(fast.cycles, slow.cycles);
  EXPECT_EQ(fast.warp_instructions, slow.warp_instructions);
  EXPECT_EQ(fast.thread_instructions, slow.thread_instructions);
  expect_stats_identical(fast, slow);
}

INSTANTIATE_TEST_SUITE_P(
    SchemesAndSeeds, RandomMachineFastPath,
    ::testing::Combine(::testing::Values(EncryptionScheme::kNone,
                                         EncryptionScheme::kCounter),
                       ::testing::Values(11, 12, 13)),
    [](const ::testing::TestParamInfo<RandomMachineFastPath::ParamType>&
           info) {
      const char* scheme = std::get<0>(info.param) == EncryptionScheme::kNone
                               ? "baseline"
                               : "counter";
      return std::string(scheme) + "_seed" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace sealdl::sim
