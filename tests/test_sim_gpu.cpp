// Whole-GPU behaviour with hand-built warp programs: issue limits, latency
// hiding, bandwidth saturation, L2 reuse, MSHR merging, encryption slowdown.
#include <gtest/gtest.h>

#include <vector>

#include "attack/bus_snooper.hpp"
#include "sim/gpu_simulator.hpp"

namespace sealdl::sim {
namespace {

/// Replays a fixed op vector (test fixture program).
class ScriptProgram final : public WarpProgram {
 public:
  explicit ScriptProgram(std::vector<WarpOp> ops) : ops_(std::move(ops)) {}
  std::optional<WarpOp> next() override {
    if (pos_ >= ops_.size()) return std::nullopt;
    return ops_[pos_++];
  }

 private:
  std::vector<WarpOp> ops_;
  std::size_t pos_ = 0;
};

WarpOp compute(std::uint32_t n) { return {WarpOp::Kind::kCompute, 0, n}; }
WarpOp load(Addr a) { return {WarpOp::Kind::kLoad, a, 1}; }
WarpOp store(Addr a) { return {WarpOp::Kind::kStore, a, 1}; }
WarpOp wait() { return {WarpOp::Kind::kWaitLoads, 0, 0}; }  // full barrier

GpuConfig small_config() {
  GpuConfig config = GpuConfig::gtx480();
  config.num_sms = 2;
  config.warps_per_sm = 4;
  return config;
}

TEST(GpuSimulator, ComputeOnlyReachesPeakIpc) {
  GpuConfig config = small_config();
  GpuSimulator sim(config);
  std::vector<WarpProgramPtr> programs;
  for (int w = 0; w < config.num_sms * config.warps_per_sm; ++w) {
    programs.push_back(std::make_unique<ScriptProgram>(
        std::vector<WarpOp>{compute(1000)}));
  }
  sim.load_work(std::move(programs));
  sim.run();
  const SimStats stats = sim.stats();
  // 8 warps x 1000 instrs on 2 SMs at 2/cycle => ~2000 cycles, IPC ~ peak.
  EXPECT_EQ(stats.warp_instructions, 8000u);
  EXPECT_NEAR(stats.ipc(), config.peak_ipc(), config.peak_ipc() * 0.01);
}

TEST(GpuSimulator, SingleWarpIssuesOnePerCycle) {
  GpuConfig config = small_config();
  GpuSimulator sim(config);
  std::vector<WarpProgramPtr> programs;
  programs.push_back(std::make_unique<ScriptProgram>(std::vector<WarpOp>{compute(500)}));
  sim.load_work(std::move(programs));
  sim.run();
  // One warp can only retire 1 instruction per cycle.
  EXPECT_NEAR(static_cast<double>(sim.stats().cycles), 500.0, 5.0);
}

TEST(GpuSimulator, LoadLatencyObservedBySingleWarp) {
  GpuConfig config = small_config();
  GpuSimulator sim(config);
  std::vector<WarpProgramPtr> programs;
  programs.push_back(std::make_unique<ScriptProgram>(
      std::vector<WarpOp>{load(0x1000), wait(), compute(1)}));
  sim.load_work(std::move(programs));
  sim.run();
  // Round trip: icnt 20 + L2 10 + DRAM ~124 + icnt 20 ~= 174 cycles.
  const double expected = 20 + 10 + 124 + 20;
  EXPECT_NEAR(static_cast<double>(sim.stats().cycles), expected, 10.0);
}

TEST(GpuSimulator, L2HitIsMuchFasterThanMiss) {
  GpuConfig config = small_config();
  GpuSimulator sim(config);
  std::vector<WarpProgramPtr> programs;
  programs.push_back(std::make_unique<ScriptProgram>(std::vector<WarpOp>{
      load(0x1000), wait(), load(0x1000), wait()}));
  sim.load_work(std::move(programs));
  sim.run();
  const SimStats stats = sim.stats();
  EXPECT_EQ(stats.l2_hits, 1u);
  EXPECT_EQ(stats.l2_misses, 1u);
  // Much less than two full DRAM round trips.
  EXPECT_LT(stats.cycles, 280u);
}

TEST(GpuSimulator, MshrMergesSameLineLoads) {
  GpuConfig config = small_config();
  GpuSimulator sim(config);
  std::vector<WarpProgramPtr> programs;
  for (int w = 0; w < 4; ++w) {
    programs.push_back(std::make_unique<ScriptProgram>(
        std::vector<WarpOp>{load(0x1000), wait()}));
  }
  sim.load_work(std::move(programs));
  sim.run();
  const SimStats stats = sim.stats();
  // All four loads coalesce onto one DRAM fill (2 SMs -> the slice sees two
  // requests for the same line; the second merges, and only one fill reads
  // DRAM).
  EXPECT_EQ(stats.dram_read_bytes, 128u);
}

TEST(GpuSimulator, ManyWarpsHideLatency) {
  // Bandwidth-light pointer-chase-free loads: with enough warps the SM never
  // starves, so total cycles grow sublinearly vs a single warp's serial time.
  GpuConfig config = small_config();
  const int loads_per_warp = 16;
  auto make = [&](int warps) {
    GpuSimulator sim(config);
    std::vector<WarpProgramPtr> programs;
    for (int w = 0; w < warps; ++w) {
      std::vector<WarpOp> ops;
      for (int i = 0; i < loads_per_warp; ++i) {
        ops.push_back(load(static_cast<Addr>((w * loads_per_warp + i)) * 128));
        ops.push_back(wait());
        ops.push_back(compute(4));
      }
      programs.push_back(std::make_unique<ScriptProgram>(std::move(ops)));
    }
    sim.load_work(std::move(programs));
    sim.run();
    return sim.stats();
  };
  const SimStats one = make(1);
  const SimStats eight = make(8);
  // 8x the work in far less than 4x the time.
  EXPECT_LT(eight.cycles, one.cycles * 4);
}

TEST(GpuSimulator, StoresProduceWritebackTraffic) {
  GpuConfig config = small_config();
  // More distinct store lines than L2 capacity forces writebacks; plus the
  // final flush drains the rest.
  const int lines = (config.l2_slice_kb * 1024 / config.line_bytes) *
                        config.num_channels + 512;
  GpuSimulator sim(config);
  std::vector<WarpProgramPtr> programs;
  std::vector<WarpOp> ops;
  for (int i = 0; i < lines; ++i) ops.push_back(store(static_cast<Addr>(i) * 128));
  programs.push_back(std::make_unique<ScriptProgram>(std::move(ops)));
  sim.load_work(std::move(programs));
  sim.run();
  const SimStats stats = sim.stats();
  EXPECT_EQ(stats.dram_write_bytes, static_cast<std::uint64_t>(lines) * 128u);
  EXPECT_EQ(stats.dram_read_bytes, 0u);  // full-line stores never fill
}

TEST(GpuSimulator, DeterministicAcrossRuns) {
  auto run_once = [] {
    GpuConfig config = small_config();
    GpuSimulator sim(config);
    std::vector<WarpProgramPtr> programs;
    for (int w = 0; w < 8; ++w) {
      std::vector<WarpOp> ops;
      for (int i = 0; i < 50; ++i) {
        ops.push_back(load(static_cast<Addr>(w * 1000 + i * 128)));
        ops.push_back(wait());
        ops.push_back(compute(3));
        ops.push_back(store(static_cast<Addr>(0x100000 + w * 1000 + i * 128)));
      }
      programs.push_back(std::make_unique<ScriptProgram>(std::move(ops)));
    }
    sim.load_work(std::move(programs));
    sim.run();
    return sim.stats();
  };
  const SimStats a = run_once();
  const SimStats b = run_once();
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.thread_instructions, b.thread_instructions);
  EXPECT_EQ(a.dram_read_bytes, b.dram_read_bytes);
}

TEST(GpuSimulator, FullEncryptionSlowsBandwidthBoundWork) {
  auto run_scheme = [](EncryptionScheme scheme) {
    GpuConfig config = GpuConfig::gtx480();
    config.scheme = scheme;
    GpuSimulator sim(config);
    std::vector<WarpProgramPtr> programs;
    // Streaming loads, no reuse: purely bandwidth-bound.
    const int warps = config.num_sms * config.warps_per_sm;
    for (int w = 0; w < warps; ++w) {
      std::vector<WarpOp> ops;
      for (int i = 0; i < 40; ++i) {
        ops.push_back(load(static_cast<Addr>((w * 40 + i)) * 128));
        ops.push_back(wait());
        ops.push_back(compute(2));
      }
      programs.push_back(std::make_unique<ScriptProgram>(std::move(ops)));
    }
    sim.load_work(std::move(programs));
    sim.run();
    return sim.stats();
  };
  const SimStats plain = run_scheme(EncryptionScheme::kNone);
  const SimStats direct = run_scheme(EncryptionScheme::kDirect);
  const SimStats counter = run_scheme(EncryptionScheme::kCounter);
  EXPECT_GT(direct.cycles, plain.cycles * 2);  // ~3.7x bandwidth gap
  EXPECT_GT(counter.cycles, plain.cycles * 2);
  EXPECT_GT(direct.ipc(), 0.0);
  EXPECT_LT(direct.ipc(), plain.ipc());
}

TEST(GpuSimulator, SelectiveEncryptionLandsBetween) {
  SecureMap map;
  const int total_lines = 480 * 40;
  // Mark half of the stream secure (even lines).
  for (int i = 0; i < total_lines; i += 2) map.add_range(static_cast<Addr>(i) * 128, 128);

  auto run_selective = [&](EncryptionScheme scheme, bool selective) {
    GpuConfig config = GpuConfig::gtx480();
    config.scheme = scheme;
    config.selective = selective;
    GpuSimulator sim(config, &map);
    std::vector<WarpProgramPtr> programs;
    const int warps = config.num_sms * config.warps_per_sm;
    for (int w = 0; w < warps; ++w) {
      std::vector<WarpOp> ops;
      for (int i = 0; i < 40; ++i) {
        ops.push_back(load(static_cast<Addr>((w * 40 + i)) * 128));
        ops.push_back(wait());
        ops.push_back(compute(2));
      }
      programs.push_back(std::make_unique<ScriptProgram>(std::move(ops)));
    }
    sim.load_work(std::move(programs));
    sim.run();
    return sim.stats();
  };
  const SimStats plain = run_selective(EncryptionScheme::kNone, false);
  const SimStats full = run_selective(EncryptionScheme::kDirect, false);
  const SimStats seal = run_selective(EncryptionScheme::kDirect, true);
  EXPECT_LT(seal.cycles, full.cycles);
  EXPECT_GT(seal.cycles, plain.cycles);
  // Half the bytes bypassed.
  EXPECT_NEAR(static_cast<double>(seal.encrypted_bytes),
              static_cast<double>(seal.bypassed_bytes),
              static_cast<double>(seal.encrypted_bytes) * 0.05);
}

TEST(GpuSimulator, CounterFlushDrainExtendsFinalCycle) {
  // Store-only counter-mode run on one channel: stores are posted, so the
  // warp finishes issuing long before the DRAM pipe drains. The end-of-run
  // counter flush is the last traffic booked; its drain-complete cycle must
  // become the final cycle, so the run cannot report fewer cycles than the
  // single channel needs to move every byte it carried.
  GpuConfig config = GpuConfig::gtx480();
  config.num_sms = 1;
  config.warps_per_sm = 1;
  config.num_channels = 1;
  config.scheme = EncryptionScheme::kCounter;

  GpuSimulator sim(config);
  attack::BusSnooper probe;
  sim.set_probe(&probe);
  std::vector<WarpOp> ops;
  const Addr stride = static_cast<Addr>(config.line_bytes) *
                      static_cast<Addr>(config.counters_per_line());
  // 512 lines fit both the L2 slice (128 KB) and the counter cache (96 KB),
  // so every counter line is still dirty when the run ends.
  for (int i = 0; i < 512; ++i) ops.push_back(store(static_cast<Addr>(i) * stride));
  std::vector<WarpProgramPtr> programs;
  programs.push_back(std::make_unique<ScriptProgram>(std::move(ops)));
  sim.load_work(std::move(programs));
  sim.run();

  const SimStats stats = sim.stats();
  // 512 data writebacks + 512 counter fills + 512 flushed counter lines.
  const std::uint64_t total_bytes =
      stats.dram_read_bytes + stats.dram_write_bytes + stats.counter_traffic_bytes;
  EXPECT_EQ(total_bytes, 3u * 512u * 128u);
  EXPECT_GE(static_cast<double>(stats.cycles),
            static_cast<double>(total_bytes) /
                config.dram_bytes_per_cycle_per_channel());

  // Whole-simulator byte reconciliation, flush traffic included: the probe
  // saw exactly the bytes the three stat counters account for.
  EXPECT_EQ(total_bytes, probe.bytes_on_bus());
}

}  // namespace
}  // namespace sealdl::sim
