// Multi-device fleet serving: router policies, pipeline-parallel sharding,
// per-device accounting, determinism, and the fleet.* reconciliation rules.
#include <gtest/gtest.h>

#include <limits>
#include <string>
#include <vector>

#include "serve/fleet.hpp"
#include "serve/server.hpp"
#include "verify/fleet_checkers.hpp"

namespace sealdl::serve {
namespace {

using models::LayerSpec;

/// Small CONV+CONV+FC network that simulates in milliseconds and has enough
/// layers to shard into two non-empty stages.
NamedNetwork tiny_net(const std::string& name, int channels) {
  LayerSpec conv1;
  conv1.type = LayerSpec::Type::kConv;
  conv1.name = "conv1";
  conv1.in_channels = channels;
  conv1.out_channels = channels;
  conv1.in_h = conv1.in_w = 8;
  LayerSpec conv2 = conv1;
  conv2.name = "conv2";
  conv2.in_h = conv1.out_h();
  conv2.in_w = conv1.out_w();
  LayerSpec fc;
  fc.type = LayerSpec::Type::kFc;
  fc.name = "fc";
  fc.in_features = channels * conv2.out_h() * conv2.out_w();
  fc.out_features = 10;
  return {name, {conv1, conv2, fc}};
}

workload::RunOptions fast_options() {
  workload::RunOptions options;
  options.max_tiles_per_layer = 16;
  return options;
}

ServeOptions busy_load() {
  ServeOptions options;
  options.rate_rps = 800.0;
  options.duration_s = 0.02;
  options.queue_depth = 8;
  options.max_batch = 4;
  options.seed = 11;
  return options;
}

FleetOptions fleet_of(int devices, RouterPolicy router = RouterPolicy::kRoundRobin,
                      int stages = 1) {
  FleetOptions fleet;
  fleet.devices = devices;
  fleet.router = router;
  fleet.shard_stages = stages;
  return fleet;
}

// -------------------------------------------------------------- accounting ---

TEST(Fleet, AccountingReconcilesAcrossRoutersDevicesAndPolicies) {
  const NamedNetwork net = tiny_net("tiny", 8);
  const sim::GpuConfig config = sim::GpuConfig::gtx480();
  const ServiceModel model({net}, config, fast_options(), 4, 1, nullptr);
  ServeOptions options = busy_load();
  options.rate_rps = 4000.0;  // overload so drops/sheds happen too
  options.queue_depth = 4;

  for (const int devices : {1, 2, 4}) {
    for (const RouterPolicy router :
         {RouterPolicy::kRoundRobin, RouterPolicy::kLeastLoaded,
          RouterPolicy::kAffinity}) {
      for (const OverloadPolicy policy :
           {OverloadPolicy::kDrop, OverloadPolicy::kShedOldest,
            OverloadPolicy::kBlock}) {
        options.policy = policy;
        const FleetOptions fleet = fleet_of(devices, router);
        const FleetReport report =
            run_fleet(model, options, fleet, config, nullptr);
        const std::string label = std::string(router_name(router)) + "/" +
                                  policy_name(policy) + "/d" +
                                  std::to_string(devices);
        ASSERT_GT(report.totals.generated, 0u) << label;
        EXPECT_EQ(report.totals.completed + report.totals.dropped +
                      report.totals.shed,
                  report.totals.generated)
            << label;
        // The fleet.* rule family must hold on every healthy run.
        const verify::Report check =
            verify::run_fleet_report_check(fleet, report);
        EXPECT_EQ(check.error_count(), 0u) << label << "\n" << check.to_text();
      }
    }
  }
}

TEST(Fleet, SingleDeviceFleetMatchesRunServer) {
  const NamedNetwork net = tiny_net("tiny", 8);
  const sim::GpuConfig config = sim::GpuConfig::gtx480();
  const ServiceModel model({net}, config, fast_options(), 4, 1, nullptr);
  const ServeOptions options = busy_load();
  const ServeReport single = run_server(model, options, config, nullptr);
  const FleetReport fleet =
      run_fleet(model, options, fleet_of(1), config, nullptr);
  EXPECT_EQ(single.completed, fleet.totals.completed);
  EXPECT_EQ(single.end_cycle, fleet.totals.end_cycle);
  EXPECT_EQ(single.p99_ms, fleet.totals.p99_ms);
  EXPECT_EQ(single.throughput_rps, fleet.totals.throughput_rps);
  ASSERT_EQ(single.batch_log.size(), fleet.totals.batch_log.size());
  for (std::size_t i = 0; i < single.batch_log.size(); ++i) {
    EXPECT_EQ(single.batch_log[i].start, fleet.totals.batch_log[i].start);
    EXPECT_EQ(single.batch_log[i].cycles, fleet.totals.batch_log[i].cycles);
  }
}

TEST(Fleet, MoreDevicesServeOverloadStrictlyBetter) {
  const NamedNetwork net = tiny_net("tiny", 24);
  const sim::GpuConfig config = sim::GpuConfig::gtx480();
  const ServiceModel model({net}, config, fast_options(), 2, 1, nullptr);
  ServeOptions options = busy_load();
  options.rate_rps = 20000.0;  // far beyond one device's capacity
  options.queue_depth = 4;
  options.max_batch = 2;
  options.policy = OverloadPolicy::kDrop;
  const FleetReport one = run_fleet(model, options, fleet_of(1), config, nullptr);
  const FleetReport four =
      run_fleet(model, options, fleet_of(4, RouterPolicy::kLeastLoaded),
                config, nullptr);
  ASSERT_GT(one.totals.dropped, 0u);
  EXPECT_GT(four.totals.completed, one.totals.completed);
  EXPECT_LT(four.totals.drop_rate, one.totals.drop_rate);
}

// ----------------------------------------------------------------- routers ---

TEST(Fleet, RoundRobinBalancesRoutedArrivals) {
  const NamedNetwork net = tiny_net("tiny", 8);
  const sim::GpuConfig config = sim::GpuConfig::gtx480();
  const ServiceModel model({net}, config, fast_options(), 4, 1, nullptr);
  const FleetReport report = run_fleet(model, busy_load(), fleet_of(2), config,
                                       nullptr);
  ASSERT_EQ(report.device_reports.size(), 2u);
  const std::uint64_t a = report.device_reports[0].routed;
  const std::uint64_t b = report.device_reports[1].routed;
  EXPECT_EQ(a + b, report.totals.generated);
  // Strict rotation: counts can differ by at most one.
  EXPECT_LE(a > b ? a - b : b - a, 1u);
}

TEST(Fleet, AffinityPinsSessionsToPipelines) {
  const NamedNetwork net = tiny_net("tiny", 8);
  const sim::GpuConfig config = sim::GpuConfig::gtx480();
  const ServiceModel model({net}, config, fast_options(), 4, 1, nullptr);
  ServeOptions options = busy_load();
  // Per-request sessions are drawn from an independent seeded stream; verify
  // the router keys on them: every request of session s lands on pipeline
  // s % P, so per-device routed counts must match a direct recount.
  const auto arrivals = generate_requests(options, model.count(), config.core_mhz);
  std::uint64_t expect0 = 0, expect1 = 0;
  for (const Request& request : arrivals) {
    (request.session % 2 == 0 ? expect0 : expect1)++;
  }
  const FleetReport report = run_fleet(
      model, options, fleet_of(2, RouterPolicy::kAffinity), config, nullptr);
  ASSERT_EQ(report.device_reports.size(), 2u);
  EXPECT_EQ(report.device_reports[0].routed, expect0);
  EXPECT_EQ(report.device_reports[1].routed, expect1);
  // The session field must not perturb the arrival schedule itself (it is
  // drawn from a separate stream): both pipelines saw real traffic here.
  EXPECT_GT(expect0, 0u);
  EXPECT_GT(expect1, 0u);
}

// ---------------------------------------------------------------- sharding ---

TEST(Fleet, StagePlanConservesCyclesAndBoundaryBytes) {
  const NamedNetwork net = tiny_net("tiny", 8);
  const sim::GpuConfig config = sim::GpuConfig::gtx480();
  const ServiceModel model({net}, config, fast_options(), 4, 1, nullptr);
  for (const int stages : {1, 2, 3}) {
    const ServiceModel::StagePlan plan = model.stage_plan(0, stages, 4);
    ASSERT_EQ(plan.cycles.size(), static_cast<std::size_t>(stages));
    ASSERT_EQ(plan.boundary_bytes.size(), static_cast<std::size_t>(stages));
    // Sharding moves work between devices; it never creates or destroys
    // cycles: per-batch stage sums equal the unsharded service time.
    for (int b = 1; b <= 4; ++b) {
      double sum = 0.0;
      for (int s = 0; s < stages; ++s) {
        sum += plan.cycles[static_cast<std::size_t>(s)]
                          [static_cast<std::size_t>(b - 1)];
      }
      const double whole = model.service_cycles(0, b);
      EXPECT_NEAR(sum, whole, 1e-9 * whole) << stages << " stages, batch " << b;
    }
    // The last stage exits to the host, never to a peer device.
    EXPECT_EQ(plan.boundary_bytes.back(), 0.0);
    for (int s = 0; s + 1 < stages; ++s) {
      EXPECT_GT(plan.boundary_bytes[static_cast<std::size_t>(s)], 0.0);
    }
  }
}

TEST(Fleet, ShardedPipelineCompletesEverythingWithLinkCost) {
  const NamedNetwork net = tiny_net("tiny", 8);
  const sim::GpuConfig config = sim::GpuConfig::gtx480();
  const ServiceModel model({net}, config, fast_options(), 4, 1, nullptr);
  ServeOptions options = busy_load();
  options.rate_rps = 300.0;
  const FleetReport flat = run_fleet(model, options, fleet_of(2), config, nullptr);
  const FleetOptions sharded_options =
      fleet_of(2, RouterPolicy::kRoundRobin, 2);
  const FleetReport sharded =
      run_fleet(model, options, sharded_options, config, nullptr);

  EXPECT_EQ(sharded.pipelines, 1);
  EXPECT_EQ(sharded.stages, 2);
  EXPECT_EQ(sharded.totals.completed, sharded.totals.generated);
  // Each dispatched microbatch runs once on every stage device.
  EXPECT_EQ(sharded.stage_runs, sharded.microbatches * 2);
  EXPECT_GT(sharded.device_reports[1].stage_runs, 0u);
  EXPECT_GT(sharded.device_reports[1].busy_cycles, 0.0);
  // Crossing the inter-device link is not free: the sharded pipeline's p50
  // cannot beat two independent unsharded devices at this light load.
  EXPECT_GE(sharded.totals.p50_ms, flat.totals.p50_ms);
  // Per-request lifecycle stages still sum exactly to end-to-end latency.
  const verify::Report check =
      verify::run_fleet_report_check(sharded_options, sharded);
  EXPECT_EQ(check.error_count(), 0u) << check.to_text();
}

TEST(Fleet, ReplaysBitIdenticallyAndRejectsBadShapes) {
  const NamedNetwork net = tiny_net("tiny", 8);
  const sim::GpuConfig config = sim::GpuConfig::gtx480();
  const ServiceModel model({net}, config, fast_options(), 4, 1, nullptr);
  const ServeOptions options = busy_load();
  const FleetOptions fleet = fleet_of(4, RouterPolicy::kLeastLoaded, 2);
  const FleetReport a = run_fleet(model, options, fleet, config, nullptr);
  const FleetReport b = run_fleet(model, options, fleet, config, nullptr);
  EXPECT_EQ(a.totals.end_cycle, b.totals.end_cycle);
  EXPECT_EQ(a.totals.p99_ms, b.totals.p99_ms);
  ASSERT_EQ(a.device_reports.size(), b.device_reports.size());
  for (std::size_t i = 0; i < a.device_reports.size(); ++i) {
    EXPECT_EQ(a.device_reports[i].routed, b.device_reports[i].routed);
    EXPECT_EQ(a.device_reports[i].stage_runs, b.device_reports[i].stage_runs);
    EXPECT_EQ(a.device_reports[i].busy_cycles, b.device_reports[i].busy_cycles);
  }
  ASSERT_EQ(a.totals.batch_log.size(), b.totals.batch_log.size());
  for (std::size_t i = 0; i < a.totals.batch_log.size(); ++i) {
    EXPECT_EQ(a.totals.batch_log[i].start, b.totals.batch_log[i].start);
    EXPECT_EQ(a.totals.batch_log[i].device, b.totals.batch_log[i].device);
  }

  EXPECT_THROW(
      run_fleet(model, options, fleet_of(3, RouterPolicy::kRoundRobin, 2),
                config, nullptr),
      std::invalid_argument);
  EXPECT_THROW(run_fleet(model, options, fleet_of(0), config, nullptr),
               std::invalid_argument);
}

// ------------------------------------------------------------- fleet rules ---

TEST(FleetRules, CleanOptionsPassAndBadOptionsFire) {
  EXPECT_EQ(verify::run_fleet_options_check(FleetOptions{}).error_count(), 0u);

  FleetOptions bad;
  bad.devices = 0;
  EXPECT_TRUE(
      verify::run_fleet_options_check(bad).fired("fleet.options.devices"));
  bad = FleetOptions{};
  bad.router = static_cast<RouterPolicy>(99);
  EXPECT_TRUE(
      verify::run_fleet_options_check(bad).fired("fleet.options.router"));
  bad = FleetOptions{};
  bad.devices = 4;
  bad.shard_stages = 3;
  EXPECT_TRUE(
      verify::run_fleet_options_check(bad).fired("fleet.options.shard"));
  bad = FleetOptions{};
  bad.microbatch = 0;
  EXPECT_TRUE(
      verify::run_fleet_options_check(bad).fired("fleet.options.shard"));
  bad = FleetOptions{};
  bad.link_latency_cycles = -1.0;
  EXPECT_TRUE(verify::run_fleet_options_check(bad).fired("fleet.options.link"));
  bad = FleetOptions{};
  bad.link_bytes_per_cycle = 0.0;
  EXPECT_TRUE(verify::run_fleet_options_check(bad).fired("fleet.options.link"));
  bad = FleetOptions{};
  bad.link_bytes_per_cycle = std::numeric_limits<double>::infinity();
  EXPECT_TRUE(verify::run_fleet_options_check(bad).fired("fleet.options.link"));
}

TEST(FleetRules, EachReconciliationRuleFiresOnSeededViolation) {
  const NamedNetwork net = tiny_net("tiny", 8);
  const sim::GpuConfig config = sim::GpuConfig::gtx480();
  const ServiceModel model({net}, config, fast_options(), 4, 1, nullptr);
  const FleetOptions fleet = fleet_of(2);
  const FleetReport healthy =
      run_fleet(model, busy_load(), fleet, config, nullptr);
  ASSERT_EQ(verify::run_fleet_report_check(fleet, healthy).error_count(), 0u);

  {
    FleetReport corrupted = healthy;
    corrupted.device_reports[0].completed += 1;
    EXPECT_TRUE(verify::run_fleet_report_check(fleet, corrupted)
                    .fired("fleet.requests"));
  }
  {
    FleetReport corrupted = healthy;
    corrupted.totals.dropped += 1;  // breaks conservation AND device sums
    EXPECT_TRUE(verify::run_fleet_report_check(fleet, corrupted)
                    .fired("fleet.requests"));
  }
  {
    FleetReport corrupted = healthy;
    corrupted.device_reports[1].batches += 1;
    EXPECT_TRUE(verify::run_fleet_report_check(fleet, corrupted)
                    .fired("fleet.batches"));
  }
  {
    FleetReport corrupted = healthy;
    corrupted.microbatches += 1;
    EXPECT_TRUE(verify::run_fleet_report_check(fleet, corrupted)
                    .fired("fleet.batches"));
  }
  {
    FleetReport corrupted = healthy;
    corrupted.device_reports[0].stage = 1;  // inconsistent index mapping
    EXPECT_TRUE(verify::run_fleet_report_check(fleet, corrupted)
                    .fired("fleet.devices"));
  }
  {
    FleetReport corrupted = healthy;
    corrupted.device_reports[1].busy_cycles =
        static_cast<double>(corrupted.totals.end_cycle) * 2.0 + 10.0;
    EXPECT_TRUE(verify::run_fleet_report_check(fleet, corrupted)
                    .fired("fleet.devices"));
  }
  {
    FleetReport corrupted = healthy;
    corrupted.device_reports.pop_back();
    EXPECT_TRUE(verify::run_fleet_report_check(fleet, corrupted)
                    .fired("fleet.devices"));
  }
  {
    FleetReport corrupted = healthy;
    corrupted.totals.stage_cycles_sum =
        corrupted.totals.stage_cycles_sum * 1.01 + 1.0;
    EXPECT_TRUE(verify::run_fleet_report_check(fleet, corrupted)
                    .fired("fleet.stages"));
  }
}

}  // namespace
}  // namespace sealdl::serve
