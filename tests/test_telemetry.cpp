// Telemetry layer: registry semantics, JSON report schema, Perfetto trace
// well-formedness, and the determinism guarantees (byte-identical reports,
// telemetry never perturbs simulated cycles).
#include <gtest/gtest.h>

#include <cctype>
#include <string>

#include "models/layer_spec.hpp"
#include "telemetry/collect.hpp"
#include "telemetry/report.hpp"
#include "telemetry/trace.hpp"
#include "util/json.hpp"
#include "workload/network_runner.hpp"

namespace sealdl::telemetry {
namespace {

// ---------------------------------------------------------------------------
// Minimal recursive-descent JSON syntax checker (validity only, no DOM).

class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : text_(text) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == text_.size();
  }

 private:
  bool value() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    for (;;) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    for (;;) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }

  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') ++pos_;
      ++pos_;
    }
    if (pos_ >= text_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }

  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool literal(const char* word) {
    const std::string w(word);
    if (text_.compare(pos_, w.size(), w) != 0) return false;
    pos_ += w.size();
    return true;
  }

  [[nodiscard]] char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Registry / writer units.

TEST(MetricsRegistry, CounterAccumulatesAcrossLookups) {
  MetricsRegistry registry;
  registry.counter("sm0/loads_issued").add(3);
  registry.counter("sm0/loads_issued").add(4);
  ASSERT_NE(registry.find_counter("sm0/loads_issued"), nullptr);
  EXPECT_EQ(registry.find_counter("sm0/loads_issued")->value(), 7u);
  EXPECT_EQ(registry.find_counter("missing"), nullptr);
}

TEST(MetricsRegistry, GaugeSetAndAdd) {
  MetricsRegistry registry;
  registry.gauge("mc0/dram_busy_cycles").set(2.5);
  registry.gauge("mc0/dram_busy_cycles").add(1.5);
  EXPECT_DOUBLE_EQ(registry.find_gauge("mc0/dram_busy_cycles")->value(), 4.0);
}

TEST(MetricsRegistry, HistogramBoundsFixedByFirstCall) {
  MetricsRegistry registry;
  util::Histogram& h = registry.histogram("lat", 0.0, 10.0, 10);
  h.add(5.0);
  // A second call with different bounds returns the same instrument.
  util::Histogram& again = registry.histogram("lat", 0.0, 99.0, 3);
  EXPECT_EQ(&h, &again);
  EXPECT_EQ(again.count(), 1u);
  EXPECT_EQ(registry.size(), 1u);
}

TEST(MetricsRegistry, JsonExportIsNameSortedAndValid) {
  MetricsRegistry registry;
  registry.counter("b").add(2);
  registry.counter("a").add(1);
  registry.gauge("z").set(0.5);
  util::JsonWriter json;
  registry.write_json(json);
  const std::string out = json.str();
  EXPECT_TRUE(JsonChecker(out).valid()) << out;
  EXPECT_LT(out.find("\"a\""), out.find("\"b\""));
}

TEST(JsonWriter, EscapesAndNests) {
  util::JsonWriter json;
  json.begin_object();
  json.field("quote\"back\\slash", "line\nbreak\ttab");
  json.key("arr").begin_array().value(std::uint64_t{1}).value(2.5).value(true).end_array();
  json.end_object();
  const std::string out = json.str();
  EXPECT_TRUE(JsonChecker(out).valid()) << out;
  EXPECT_NE(out.find("\\\"back\\\\slash"), std::string::npos);
  EXPECT_NE(out.find("\\n"), std::string::npos);
  EXPECT_EQ(out.find('\n'), std::string::npos);  // raw control chars escaped
}

TEST(JsonWriter, NonFiniteDoublesBecomeNull) {
  util::JsonWriter json;
  json.begin_array().value(0.0 / 0.0).end_array();
  EXPECT_EQ(json.str(), "[null]");
}

// ---------------------------------------------------------------------------
// Phase classification.

TEST(Phase, ClassifyBoundPicksDominantSaturatedResource) {
  EXPECT_EQ(classify_bound(0.1, 0.1), Bound::kCompute);
  EXPECT_EQ(classify_bound(0.8, 0.2), Bound::kDram);
  EXPECT_EQ(classify_bound(0.3, 0.9), Bound::kAes);
  EXPECT_EQ(classify_bound(0.7, 0.8), Bound::kAes);   // AES wins ties upward
  EXPECT_EQ(classify_bound(0.49, 0.49), Bound::kCompute);
}

TEST(Sampler, SegmentsRebaseOntoGlobalTimeline) {
  IntervalSampler sampler(100);
  EXPECT_FALSE(sampler.due(99));
  EXPECT_TRUE(sampler.due(100));
  sampler.record({120, 1.0, 0.5, 0.25, 640});
  EXPECT_FALSE(sampler.due(219));
  EXPECT_TRUE(sampler.due(220));
  sampler.begin_segment(1000);  // next layer starts at global cycle 1000
  EXPECT_FALSE(sampler.due(50));
  sampler.record({100, 2.0, 0.0, 0.0, 0});
  ASSERT_EQ(sampler.samples().size(), 2u);
  EXPECT_EQ(sampler.samples()[0].cycle, 120u);
  EXPECT_EQ(sampler.samples()[1].cycle, 1100u);
}

// ---------------------------------------------------------------------------
// End-to-end: small two-conv network under SEAL-C.

std::vector<models::LayerSpec> tiny_network() {
  models::LayerSpec a;
  a.type = models::LayerSpec::Type::kConv;
  a.name = "convA";
  a.in_channels = 16;
  a.out_channels = 16;
  a.in_h = a.in_w = 8;
  models::LayerSpec b = a;
  b.name = "convB";
  return {a, b};
}

workload::RunOptions tiny_options(telemetry::RunTelemetry* collect) {
  workload::RunOptions options;
  options.max_tiles_per_layer = 8;
  options.selective = true;
  options.plan.encryption_ratio = 0.5;
  options.telemetry = collect;
  return options;
}

sim::GpuConfig tiny_config() {
  sim::GpuConfig config = sim::GpuConfig::gtx480();
  config.scheme = sim::EncryptionScheme::kCounter;
  config.selective = true;
  return config;
}

TEST(RunReport, SchemaContainsEveryLayerAndIsValidJson) {
  TelemetryOptions topts;
  topts.sample_interval = 500;
  RunTelemetry collect(topts);
  const auto specs = tiny_network();
  workload::run_network(specs, tiny_config(), tiny_options(&collect));

  ASSERT_EQ(collect.layers().size(), specs.size());
  EXPECT_EQ(collect.layers()[0].name, "convA");
  EXPECT_EQ(collect.layers()[1].name, "convB");
  EXPECT_GT(collect.layers()[0].sim_cycles, 0u);
  // convB starts where convA's simulated slice ended.
  EXPECT_EQ(collect.layers()[1].start_cycle, collect.layers()[0].sim_cycles);

  RunInfo info;
  info.workload = "tiny";
  info.scheme = "seal-c";
  const std::string report = run_report_json(info, tiny_config(), collect);
  EXPECT_TRUE(JsonChecker(report).valid()) << report;

  // Golden schema: top-level keys in order.
  const char* keys[] = {"\"schema_version\":2", "\"tool\":",
                        "\"workload\":",        "\"scheme\":",
                        "\"seed\":",            "\"provenance\":",
                        "\"config\":",          "\"aggregate\":",
                        "\"layers\":",          "\"series\":",
                        "\"profile\":",         "\"metrics\":"};
  std::size_t last = 0;
  for (const char* key : keys) {
    const std::size_t at = report.find(key, last);
    ASSERT_NE(at, std::string::npos) << "missing " << key;
    last = at;
  }
  // Per-layer records and the boundedness tag are present.
  EXPECT_NE(report.find("\"name\":\"convA\""), std::string::npos);
  EXPECT_NE(report.find("\"name\":\"convB\""), std::string::npos);
  EXPECT_NE(report.find("\"bound\":\""), std::string::npos);
  // Per-component metrics made it through collection.
  EXPECT_NE(collect.registry().find_counter("sm0/warp_instructions"), nullptr);
  EXPECT_NE(collect.registry().find_counter("mc0/read_bytes"), nullptr);
  EXPECT_NE(collect.registry().find_counter("mc0/counter_accesses"), nullptr);
  // Sampling produced a non-empty series.
  ASSERT_NE(collect.sampler(), nullptr);
  EXPECT_FALSE(collect.sampler()->samples().empty());
}

TEST(RunReport, TraceIsWellFormedChromeTraceJson) {
  TelemetryOptions topts;
  topts.sample_interval = 500;
  RunTelemetry collect(topts);
  const auto specs = tiny_network();
  workload::run_network(specs, tiny_config(), tiny_options(&collect));

  RunInfo info;
  info.workload = "tiny";
  info.scheme = "seal-c";
  const std::string trace = chrome_trace_json(info, tiny_config(), collect);
  EXPECT_TRUE(JsonChecker(trace).valid()) << trace;
  EXPECT_NE(trace.find("\"traceEvents\":["), std::string::npos);
  // One complete ("X") span per layer.
  std::size_t spans = 0, at = 0;
  while ((at = trace.find("\"ph\":\"X\"", at)) != std::string::npos) {
    ++spans;
    at += 1;
  }
  EXPECT_EQ(spans, specs.size());
  // Counter tracks exist when sampling is on.
  EXPECT_NE(trace.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(trace.find("AES utilization"), std::string::npos);
}

TEST(RunReport, IdenticalRunsProduceByteIdenticalReports) {
  RunInfo info;
  info.workload = "tiny";
  info.scheme = "seal-c";
  std::string reports[2], traces[2];
  for (std::string* out : {&reports[0], &reports[1]}) {
    TelemetryOptions topts;
    topts.sample_interval = 500;
    RunTelemetry collect(topts);
    workload::run_network(tiny_network(), tiny_config(), tiny_options(&collect));
    *out = run_report_json(info, tiny_config(), collect);
  }
  EXPECT_EQ(reports[0], reports[1]);
  for (std::string* out : {&traces[0], &traces[1]}) {
    TelemetryOptions topts;
    topts.sample_interval = 500;
    RunTelemetry collect(topts);
    workload::run_network(tiny_network(), tiny_config(), tiny_options(&collect));
    *out = chrome_trace_json(info, tiny_config(), collect);
  }
  EXPECT_EQ(traces[0], traces[1]);
}

TEST(RunReport, TelemetryDoesNotPerturbSimulatedCycles) {
  // The acceptance guarantee: enabling every telemetry hook leaves the
  // simulation cycle-identical to a plain run.
  const auto plain =
      workload::run_network(tiny_network(), tiny_config(), tiny_options(nullptr));

  TelemetryOptions topts;
  topts.sample_interval = 250;  // aggressive sampling
  RunTelemetry collect(topts);
  const auto traced =
      workload::run_network(tiny_network(), tiny_config(), tiny_options(&collect));

  ASSERT_EQ(plain.layers.size(), traced.layers.size());
  for (std::size_t i = 0; i < plain.layers.size(); ++i) {
    EXPECT_EQ(plain.layers[i].stats.cycles, traced.layers[i].stats.cycles);
    EXPECT_EQ(plain.layers[i].stats.thread_instructions,
              traced.layers[i].stats.thread_instructions);
    EXPECT_EQ(plain.layers[i].stats.dram_read_bytes,
              traced.layers[i].stats.dram_read_bytes);
  }
}

TEST(RunReport, AesUtilizationNormalizedByEngineCount) {
  // Doubling the engines halves reported utilization for the same traffic —
  // the denominator honors GpuConfig::engines_per_controller.
  sim::SimStats stats;
  stats.cycles = 1000;
  stats.aes_busy_cycles = 600.0;  // engine-summed
  sim::GpuConfig one = sim::GpuConfig::gtx480();
  one.engines_per_controller = 1;
  sim::GpuConfig two = one;
  two.engines_per_controller = 2;
  EXPECT_DOUBLE_EQ(sim::aes_utilization(stats, one),
                   600.0 / (one.num_channels * 1000.0));
  EXPECT_DOUBLE_EQ(sim::aes_utilization(stats, two),
                   sim::aes_utilization(stats, one) / 2.0);
}

}  // namespace
}  // namespace sealdl::telemetry
