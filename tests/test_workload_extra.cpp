// Additional workload-generator behaviour: software pipelining structure,
// phase-rotation coverage, adaptive refinement, determinism.
#include <gtest/gtest.h>

#include <set>

#include "core/model_layout.hpp"
#include "workload/gemm_trace.hpp"
#include "workload/layer_trace.hpp"

namespace sealdl::workload {
namespace {

models::LayerSpec conv_spec(int in_ch, int out_ch, int hw) {
  models::LayerSpec s;
  s.type = models::LayerSpec::Type::kConv;
  s.name = "conv";
  s.in_channels = in_ch;
  s.out_channels = out_ch;
  s.in_h = s.in_w = hw;
  return s;
}

core::LayerAddressing layout_single(const models::LayerSpec& spec,
                                    core::SecureHeap& heap) {
  core::ModelLayout layout({spec}, nullptr, heap);
  return layout.layers()[0];
}

TEST(Pipelining, ComputeIsInterleavedBetweenLoadGroups) {
  // After the first chunk, the op stream must alternate small load groups
  // with compute slices — never a long run of loads with zero compute.
  const auto spec = conv_spec(32, 32, 16);
  core::SecureHeap heap;
  const auto layer = layout_single(spec, heap);
  auto work = make_layer_programs(layer, 1);
  int consecutive_loads = 0, max_consecutive_loads = 0;
  bool past_first_chunk = false;
  int waits_seen = 0;
  while (auto op = work.programs[0]->next()) {
    switch (op->kind) {
      case sim::WarpOp::Kind::kLoad:
        ++consecutive_loads;
        max_consecutive_loads =
            past_first_chunk ? std::max(max_consecutive_loads, consecutive_loads)
                             : max_consecutive_loads;
        break;
      case sim::WarpOp::Kind::kWaitLoads:
        ++waits_seen;
        past_first_chunk = true;
        consecutive_loads = 0;
        break;
      case sim::WarpOp::Kind::kStore:
        // Tile boundary: the next tile's first chunk legitimately has no
        // pending compute to interleave.
        past_first_chunk = false;
        consecutive_loads = 0;
        break;
      default:
        consecutive_loads = 0;
        break;
    }
  }
  EXPECT_GT(waits_seen, 0);
  // Interleave groups are 8 loads; allow a small margin for group boundaries.
  EXPECT_LE(max_consecutive_loads, 16);
}

TEST(PhaseRotation, EveryChunkVisitedExactlyOncePerTile) {
  // The K-loop rotation must be a permutation: collect the weight-row ids
  // touched by one single-tile warp and check all input channels appear.
  const auto spec = conv_spec(64, 32, 8);
  core::SecureHeap heap;
  const auto layer = layout_single(spec, heap);
  LayerTraceOptions options;
  options.min_tiles = 1;
  auto work = make_layer_programs(layer, 1, /*max_tiles=*/1, options);
  std::set<sim::Addr> weight_rows;
  while (auto op = work.programs[0]->next()) {
    if (op->kind != sim::WarpOp::Kind::kLoad) continue;
    if (op->addr >= layer.weight_base &&
        op->addr < layer.weight_base + 64 * layer.weight_row_pitch) {
      weight_rows.insert((op->addr - layer.weight_base) / layer.weight_row_pitch);
    }
  }
  EXPECT_EQ(weight_rows.size(), 64u);  // all 64 input channels touched
}

TEST(AdaptiveRefinement, SmallLayersGetMoreTiles) {
  // A 7x7x512 layer refines its tiling toward min_tiles.
  const auto spec = conv_spec(512, 512, 7);
  core::SecureHeap heap;
  const auto layer = layout_single(spec, heap);
  LayerTraceOptions coarse;
  coarse.min_tiles = 1;
  LayerTraceOptions fine;  // default min_tiles
  const auto work_coarse = make_layer_programs(layer, 16, 0, coarse);
  const auto work_fine = make_layer_programs(layer, 16, 0, fine);
  EXPECT_GT(work_fine.total_tiles, work_coarse.total_tiles);
  EXPECT_GE(work_fine.total_tiles, 128u);
}

TEST(AdaptiveRefinement, DoesNotChangeComputeTotals) {
  const auto spec = conv_spec(512, 512, 7);
  core::SecureHeap heap;
  const auto layer = layout_single(spec, heap);
  auto count_compute = [&](int min_tiles) {
    LayerTraceOptions options;
    options.min_tiles = min_tiles;
    auto work = make_layer_programs(layer, 8, 0, options);
    std::uint64_t total = 0;
    for (auto& program : work.programs) {
      while (auto op = program->next()) {
        if (op->kind == sim::WarpOp::Kind::kCompute) total += op->count;
      }
    }
    return total;
  };
  const auto coarse = count_compute(1);
  const auto fine = count_compute(240);
  // MAC totals identical up to per-chunk ceil rounding.
  EXPECT_NEAR(static_cast<double>(fine), static_cast<double>(coarse),
              static_cast<double>(coarse) * 0.02);
}

TEST(GemmTrace, PhaseRotationCoversAllKChunks) {
  GemmSpec spec;
  spec.m = spec.n = 32;
  spec.k = 256;  // 8 chunks
  spec.a_base = 0x100000;
  spec.b_base = 0x200000;
  spec.c_base = 0x300000;
  auto programs = make_gemm_programs(spec, 1);
  std::set<sim::Addr> a_lines;
  while (auto op = programs[0]->next()) {
    if (op->kind == sim::WarpOp::Kind::kLoad && op->addr >= spec.a_base &&
        op->addr < spec.b_base) {
      a_lines.insert(op->addr);
    }
  }
  // A is 32x256 floats = 32KB = 256 lines, all touched exactly once.
  EXPECT_EQ(a_lines.size(), 256u);
}

TEST(Generators, DeterministicOpStreams) {
  const auto spec = conv_spec(16, 16, 16);
  core::SecureHeap heap;
  const auto layer = layout_single(spec, heap);
  auto drain = [&] {
    auto work = make_layer_programs(layer, 4);
    std::vector<std::uint64_t> sig;
    for (auto& program : work.programs) {
      while (auto op = program->next()) {
        sig.push_back((static_cast<std::uint64_t>(op->kind) << 56) ^ op->addr ^
                      op->count);
      }
    }
    return sig;
  };
  EXPECT_EQ(drain(), drain());
}

TEST(Generators, GemmAddressesStayInsideMatrices) {
  GemmSpec spec;
  spec.m = 96;
  spec.n = 64;
  spec.k = 32;
  spec.a_base = 0x10000;
  spec.b_base = 0x40000;
  spec.c_base = 0x80000;
  auto programs = make_gemm_programs(spec, 3);
  const auto a_end = spec.a_base + static_cast<sim::Addr>(spec.m) * spec.k * 4;
  const auto b_end = spec.b_base + static_cast<sim::Addr>(spec.k) * spec.n * 4;
  const auto c_end = spec.c_base + static_cast<sim::Addr>(spec.m) * spec.n * 4;
  for (auto& program : programs) {
    while (auto op = program->next()) {
      if (op->kind == sim::WarpOp::Kind::kLoad) {
        const bool in_a = op->addr >= spec.a_base && op->addr < a_end;
        const bool in_b = op->addr >= spec.b_base && op->addr < b_end;
        EXPECT_TRUE(in_a || in_b) << std::hex << op->addr;
      } else if (op->kind == sim::WarpOp::Kind::kStore) {
        EXPECT_GE(op->addr, spec.c_base);
        EXPECT_LT(op->addr, c_end);
      }
    }
  }
}

}  // namespace
}  // namespace sealdl::workload
