// Serving layer: request generation, admission policies, the batch latency
// model, profiling-telemetry merge determinism, the serving loop's
// accounting, and static validation of ServeOptions (serve.options.*).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <limits>
#include <string>
#include <vector>

#include "serve/admission_queue.hpp"
#include "serve/request_gen.hpp"
#include "serve/server.hpp"
#include "telemetry/report.hpp"
#include "verify/serve_checkers.hpp"
#include "workload/batch_model.hpp"

namespace sealdl::serve {
namespace {

using models::LayerSpec;

/// Small CONV+FC network that simulates in milliseconds.
NamedNetwork tiny_net(const std::string& name, int channels) {
  LayerSpec conv;
  conv.type = LayerSpec::Type::kConv;
  conv.name = "conv";
  conv.in_channels = channels;
  conv.out_channels = channels;
  conv.in_h = conv.in_w = 8;
  LayerSpec fc;
  fc.type = LayerSpec::Type::kFc;
  fc.name = "fc";
  fc.in_features = channels * conv.out_h() * conv.out_w();
  fc.out_features = 10;
  return {name, {conv, fc}};
}

workload::RunOptions fast_options() {
  workload::RunOptions options;
  options.max_tiles_per_layer = 16;
  return options;
}

ServeOptions low_load() {
  ServeOptions options;
  options.rate_rps = 200.0;
  options.duration_s = 0.02;
  options.queue_depth = 8;
  options.max_batch = 4;
  options.seed = 11;
  return options;
}

Request make_request(std::uint64_t id, int network, sim::Cycle arrival) {
  Request request;
  request.id = id;
  request.network = network;
  request.arrival = arrival;
  return request;
}

// ------------------------------------------------------------ request gen ---

TEST(RequestGen, DeterministicAndOrdered) {
  ServeOptions options;
  options.rate_rps = 1000.0;
  options.duration_s = 0.1;
  options.seed = 42;
  const auto a = generate_requests(options, 3, 700.0);
  const auto b = generate_requests(options, 3, 700.0);
  ASSERT_FALSE(a.empty());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].arrival, b[i].arrival);
    EXPECT_EQ(a[i].network, b[i].network);
    EXPECT_EQ(a[i].id, i);
    EXPECT_GE(a[i].network, 0);
    EXPECT_LT(a[i].network, 3);
    if (i) {
      EXPECT_GE(a[i].arrival, a[i - 1].arrival);
    }
  }
}

TEST(RequestGen, MeanRateMatchesOffered) {
  ServeOptions options;
  options.rate_rps = 500.0;
  options.duration_s = 1.0;
  options.seed = 7;
  const auto requests = generate_requests(options, 1, 700.0);
  // Poisson count over a long window: ~500 +- a few sigma (sqrt(500)~22).
  EXPECT_NEAR(static_cast<double>(requests.size()), 500.0, 100.0);
}

TEST(RequestGen, DifferentSeedsDiverge) {
  ServeOptions options;
  options.rate_rps = 1000.0;
  options.duration_s = 0.05;
  options.seed = 1;
  const auto a = generate_requests(options, 2, 700.0);
  options.seed = 2;
  const auto b = generate_requests(options, 2, 700.0);
  ASSERT_FALSE(a.empty());
  ASSERT_FALSE(b.empty());
  EXPECT_TRUE(a.size() != b.size() || a.front().arrival != b.front().arrival);
}

// -------------------------------------------------------- admission queue ---

TEST(AdmissionQueue, DropPolicyRejectsWhenFull) {
  AdmissionQueue queue(2, OverloadPolicy::kDrop);
  EXPECT_FALSE(queue.offer(make_request(0, 0, 10)).has_value());
  EXPECT_FALSE(queue.offer(make_request(1, 0, 11)).has_value());
  EXPECT_FALSE(queue.offer(make_request(2, 0, 12)).has_value());
  EXPECT_EQ(queue.size(), 2u);
  EXPECT_EQ(queue.admitted(), 2u);
  EXPECT_EQ(queue.dropped(), 1u);
  EXPECT_EQ(queue.front().id, 0u);
}

TEST(AdmissionQueue, ShedOldestEvictsFront) {
  AdmissionQueue queue(2, OverloadPolicy::kShedOldest);
  queue.offer(make_request(0, 0, 10));
  queue.offer(make_request(1, 0, 11));
  const auto shed = queue.offer(make_request(2, 0, 12));
  ASSERT_TRUE(shed.has_value());
  EXPECT_EQ(shed->id, 0u);
  EXPECT_EQ(queue.shed(), 1u);
  EXPECT_EQ(queue.admitted(), 3u);
  EXPECT_EQ(queue.front().id, 1u);
}

TEST(AdmissionQueue, BlockPolicyBacklogsAndRefills) {
  AdmissionQueue queue(2, OverloadPolicy::kBlock);
  queue.offer(make_request(0, 0, 10));
  queue.offer(make_request(1, 0, 11));
  queue.offer(make_request(2, 0, 12));
  queue.offer(make_request(3, 0, 13));
  EXPECT_EQ(queue.size(), 2u);
  EXPECT_EQ(queue.backlog_size(), 2u);
  EXPECT_EQ(queue.blocked(), 2u);
  EXPECT_EQ(queue.peak_backlog(), 2u);

  // Dispatch frees both slots; the backlog refills in arrival order.
  const auto batch = queue.pop_batch(2);
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch[0].id, 0u);
  EXPECT_EQ(batch[1].id, 1u);
  EXPECT_EQ(queue.size(), 2u);
  EXPECT_EQ(queue.backlog_size(), 0u);
  EXPECT_EQ(queue.front().id, 2u);
  EXPECT_EQ(queue.admitted(), 4u);
}

TEST(AdmissionQueue, ZeroDepthShedOldestDropsInsteadOfUndefinedBehavior) {
  // Regression: depth 0 under shed-oldest used to call queue_.front() on an
  // empty deque (undefined behavior reachable straight through the library
  // API). The arrival must be refused and counted as a drop so the
  // accounting identity generated == completed + dropped + shed holds.
  AdmissionQueue queue(0, OverloadPolicy::kShedOldest);
  EXPECT_FALSE(queue.offer(make_request(0, 0, 10)).has_value());
  EXPECT_FALSE(queue.offer(make_request(1, 0, 11)).has_value());
  EXPECT_EQ(queue.size(), 0u);
  EXPECT_EQ(queue.admitted(), 0u);
  EXPECT_EQ(queue.shed(), 0u);
  EXPECT_EQ(queue.dropped(), 2u);
  EXPECT_EQ(queue.offered(), 2u);
  EXPECT_TRUE(queue.empty());
}

TEST(AdmissionQueue, PopBatchGroupsByNetworkPreservingOthers) {
  AdmissionQueue queue(8, OverloadPolicy::kDrop);
  queue.offer(make_request(0, 0, 1));
  queue.offer(make_request(1, 1, 2));
  queue.offer(make_request(2, 0, 3));
  queue.offer(make_request(3, 1, 4));
  queue.offer(make_request(4, 0, 5));
  const auto batch = queue.pop_batch(2);  // front network 0, cap 2
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch[0].id, 0u);
  EXPECT_EQ(batch[1].id, 2u);
  // Remaining queue keeps FIFO order: 1, 3, 4.
  EXPECT_EQ(queue.size(), 3u);
  EXPECT_EQ(queue.front().id, 1u);
}

// ------------------------------------------------------------ batch model ---

TEST(BatchModel, BatchOneEqualsProfileAndGrowsSublinearly) {
  const NamedNetwork net = tiny_net("tiny", 8);
  const sim::GpuConfig config = sim::GpuConfig::gtx480();
  const ServiceModel model({net}, config, fast_options(), 8, 1, nullptr);
  const workload::NetworkResult& profile = model.profile(0);

  const double b1 = model.service_cycles(0, 1);
  EXPECT_DOUBLE_EQ(b1, profile.total_cycles());
  double previous = b1;
  for (int b = 2; b <= 8; ++b) {
    const double cycles = model.service_cycles(0, b);
    EXPECT_GT(cycles, previous);              // more work than batch b-1
    EXPECT_LT(cycles, b1 * b + 1e-9);         // never worse than b serial runs
    // At least the non-amortizable share of each extra inference is paid.
    EXPECT_GT(cycles, b1 * (1.0 + 0.5 * (b - 1)) * 0.5);
    previous = cycles;
  }
  // Out-of-range batches clamp instead of reading past the table.
  EXPECT_DOUBLE_EQ(model.service_cycles(0, 0), b1);
  EXPECT_DOUBLE_EQ(model.service_cycles(0, 99), model.service_cycles(0, 8));
}

TEST(BatchModel, WeightHeavyLayerAmortizesMoreThanWeightless) {
  const NamedNetwork net = tiny_net("tiny", 8);
  const sim::GpuConfig config = sim::GpuConfig::gtx480();
  const ServiceModel model({net}, config, fast_options(), 2, 1, nullptr);
  const workload::NetworkResult& profile = model.profile(0);
  ASSERT_EQ(profile.layers.size(), 2u);
  for (const auto& layer : profile.layers) {
    EXPECT_GT(layer.weight_bytes, 0u);
    // Batch 2 of one layer costs less than twice its batch-1 time whenever
    // any weight traffic amortizes, and never more.
    const double b2 = workload::batched_layer_cycles(layer, config, 2);
    EXPECT_LE(b2, 2.0 * layer.full_cycles());
    EXPECT_GE(b2, layer.full_cycles());
  }
}

TEST(BatchModel, EncryptionInflatesServiceTime) {
  const NamedNetwork net = tiny_net("tiny", 8);
  sim::GpuConfig plain = sim::GpuConfig::gtx480();
  sim::GpuConfig direct = sim::GpuConfig::gtx480();
  direct.scheme = sim::EncryptionScheme::kDirect;
  const ServiceModel model_plain({net}, plain, fast_options(), 1, 1, nullptr);
  const ServiceModel model_direct({net}, direct, fast_options(), 1, 1, nullptr);
  EXPECT_GT(model_direct.service_cycles(0, 1), model_plain.service_cycles(0, 1));
}

// ---------------------------------------------- profiling telemetry merge ---

std::string report_for_jobs(int jobs) {
  const std::vector<NamedNetwork> nets = {tiny_net("a", 8), tiny_net("b", 12),
                                          tiny_net("c", 16)};
  const sim::GpuConfig config = sim::GpuConfig::gtx480();
  telemetry::TelemetryOptions topts;
  topts.sample_interval = 500;
  telemetry::RunTelemetry collect(topts);
  const ServiceModel model(nets, config, fast_options(), 4, jobs, &collect);
  ServeOptions options = low_load();
  run_server(model, options, config, &collect);
  telemetry::RunInfo info;
  info.tool = "sealdl-serve";
  info.workload = "tiny-x3";
  info.scheme = "baseline";
  info.seed = options.seed;
  return telemetry::run_report_json(info, config, collect);
}

TEST(ServiceModel, TelemetryMergeIsByteIdenticalAcrossJobs) {
  const std::string serial = report_for_jobs(1);
  EXPECT_EQ(serial, report_for_jobs(4));
  EXPECT_EQ(serial, report_for_jobs(0));  // hardware concurrency
}

TEST(ServiceModel, MergesProfilesInNetworkOrder) {
  const std::vector<NamedNetwork> nets = {tiny_net("first", 8),
                                          tiny_net("second", 12)};
  const sim::GpuConfig config = sim::GpuConfig::gtx480();
  telemetry::RunTelemetry collect;
  const ServiceModel model(nets, config, fast_options(), 2, 4, &collect);
  ASSERT_EQ(collect.layers().size(), 4u);  // 2 layers per network
  EXPECT_EQ(collect.layers()[0].name, "first/conv");
  EXPECT_EQ(collect.layers()[1].name, "first/fc");
  EXPECT_EQ(collect.layers()[2].name, "second/conv");
  EXPECT_EQ(collect.layers()[3].name, "second/fc");
  // Records sit on one concatenated timeline.
  for (std::size_t i = 1; i < collect.layers().size(); ++i) {
    EXPECT_GE(collect.layers()[i].start_cycle, collect.layers()[i - 1].start_cycle);
  }
}

// ------------------------------------------------------------ serving loop ---

TEST(Server, LowLoadCompletesEverythingWithMinimumLatency) {
  const NamedNetwork net = tiny_net("tiny", 8);
  const sim::GpuConfig config = sim::GpuConfig::gtx480();
  const ServiceModel model({net}, config, fast_options(), 4, 1, nullptr);
  ServeOptions options = low_load();
  const ServeReport report = run_server(model, options, config, nullptr);
  ASSERT_GT(report.generated, 0u);
  EXPECT_EQ(report.completed, report.generated);
  EXPECT_EQ(report.dropped, 0u);
  EXPECT_EQ(report.shed, 0u);
  EXPECT_EQ(report.drop_rate, 0.0);
  // No request can finish faster than one dispatch: overhead + batch-1 time.
  const double floor_ms = (options.dispatch_overhead_cycles +
                           model.service_cycles(0, 1)) /
                          (config.core_mhz * 1e3);
  EXPECT_GE(report.p50_ms, floor_ms * 0.99);
  EXPECT_GT(report.throughput_rps, 0.0);
}

TEST(Server, AccountingBalancesUnderOverload) {
  const NamedNetwork net = tiny_net("tiny", 24);
  const sim::GpuConfig config = sim::GpuConfig::gtx480();
  const ServiceModel model({net}, config, fast_options(), 2, 1, nullptr);
  ServeOptions options;
  options.rate_rps = 20000.0;  // far beyond capacity
  options.duration_s = 0.02;
  options.queue_depth = 4;
  options.max_batch = 2;
  options.seed = 3;

  for (const OverloadPolicy policy :
       {OverloadPolicy::kDrop, OverloadPolicy::kShedOldest,
        OverloadPolicy::kBlock}) {
    options.policy = policy;
    const ServeReport report = run_server(model, options, config, nullptr);
    ASSERT_GT(report.generated, 0u) << policy_name(policy);
    EXPECT_EQ(report.completed + report.dropped + report.shed, report.generated)
        << policy_name(policy);
    if (policy == OverloadPolicy::kBlock) {
      // Block never loses a request; it just waits.
      EXPECT_EQ(report.completed, report.generated);
      EXPECT_GT(report.blocked, 0u);
      EXPECT_GT(report.peak_backlog, 0u);
    } else if (policy == OverloadPolicy::kDrop) {
      EXPECT_GT(report.dropped, 0u);
      EXPECT_GT(report.drop_rate, 0.0);
    } else {
      EXPECT_GT(report.shed, 0u);
    }
    // Batching engaged under pressure.
    EXPECT_GT(report.mean_batch, 1.0) << policy_name(policy);
  }
}

TEST(Server, ReplaysBitIdentically) {
  const std::vector<NamedNetwork> nets = {tiny_net("a", 8), tiny_net("b", 12)};
  const sim::GpuConfig config = sim::GpuConfig::gtx480();
  const ServiceModel model(nets, config, fast_options(), 4, 1, nullptr);
  ServeOptions options = low_load();
  options.policy = OverloadPolicy::kShedOldest;
  const ServeReport a = run_server(model, options, config, nullptr);
  const ServeReport b = run_server(model, options, config, nullptr);
  EXPECT_EQ(a.generated, b.generated);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.end_cycle, b.end_cycle);
  EXPECT_EQ(a.p99_ms, b.p99_ms);
  ASSERT_EQ(a.batch_log.size(), b.batch_log.size());
  for (std::size_t i = 0; i < a.batch_log.size(); ++i) {
    EXPECT_EQ(a.batch_log[i].start, b.batch_log[i].start);
    EXPECT_EQ(a.batch_log[i].size, b.batch_log[i].size);
    EXPECT_EQ(a.batch_log[i].network, b.batch_log[i].network);
    EXPECT_EQ(a.batch_log[i].cycles, b.batch_log[i].cycles);
  }
}

TEST(Server, TelemetryCarriesServingMetricsAndBatchSpans) {
  const NamedNetwork net = tiny_net("tiny", 8);
  const sim::GpuConfig config = sim::GpuConfig::gtx480();
  telemetry::RunTelemetry collect;
  const ServiceModel model({net}, config, fast_options(), 4, 1, &collect);
  ServeOptions options = low_load();
  const ServeReport report = run_server(model, options, config, &collect);

  const auto* completed = collect.registry().find_counter("serve/completed");
  ASSERT_NE(completed, nullptr);
  EXPECT_EQ(completed->value(), report.completed);
  const auto* latency = collect.registry().find_histogram("serve/latency_ms");
  ASSERT_NE(latency, nullptr);
  EXPECT_EQ(latency->count(), report.completed);
  EXPECT_DOUBLE_EQ(latency->percentile(50.0), report.p50_ms);

  // One phase record per profile layer plus one per dispatched batch.
  EXPECT_EQ(collect.layers().size(),
            net.specs.size() + report.batch_log.size());
  std::uint64_t spans = 0;
  for (const auto& record : collect.layers()) {
    if (record.name.rfind("serve/", 0) == 0) ++spans;
  }
  EXPECT_EQ(spans, report.batches);
}

TEST(Server, ThroughputUsesFullHorizonNotLastCompletion) {
  // Regression: throughput_rps used to divide completions by end_cycle (the
  // last dispatch completion), inflating the rate whenever the device went
  // idle before the arrival horizon closed. A trickle load served in the
  // first fraction of the window must report ~the offered rate, not the
  // burst rate of its busy prefix.
  const NamedNetwork net = tiny_net("tiny", 8);
  const sim::GpuConfig config = sim::GpuConfig::gtx480();
  const ServiceModel model({net}, config, fast_options(), 4, 1, nullptr);
  ServeOptions options = low_load();
  options.rate_rps = 100.0;
  options.duration_s = 0.05;
  options.seed = 5;
  const ServeReport report = run_server(model, options, config, nullptr);
  ASSERT_GT(report.generated, 0u);
  ASSERT_EQ(report.completed, report.generated);

  const double horizon_cycles = options.duration_s * config.core_mhz * 1e6;
  // The scenario only exercises the fix if the device really idles before
  // the horizon; the seeded schedule above does.
  ASSERT_LT(static_cast<double>(report.end_cycle), horizon_cycles);
  const double expected =
      static_cast<double>(report.completed) / options.duration_s;
  EXPECT_NEAR(report.throughput_rps, expected, 1e-9 * expected);
  // The inflated pre-fix value: completions over the busy prefix only.
  const double inflated = static_cast<double>(report.completed) /
                          (static_cast<double>(report.end_cycle) /
                           (config.core_mhz * 1e6));
  EXPECT_LT(report.throughput_rps, inflated);
}

TEST(Server, LiveStatsLinesSnapshotStateAtBoundaryCrossings) {
  // Regression: live-stats lines used to be emitted only after a dispatch
  // completed, so a line stamped t_s reported state from later simulated
  // time (and idle gaps emitted nothing until a retroactive flush). Lines
  // must now be emitted when simulated time crosses each boundary, counting
  // exactly the completions at or before the boundary instant.
  const NamedNetwork net = tiny_net("tiny", 8);
  const sim::GpuConfig config = sim::GpuConfig::gtx480();
  const ServiceModel model({net}, config, fast_options(), 4, 1, nullptr);
  ServeOptions options = low_load();
  options.rate_rps = 400.0;
  options.duration_s = 0.02;
  options.seed = 9;
  options.live_stats = true;
  options.live_stats_interval_s = 0.002;
  std::vector<std::string> lines;
  const ServeReport report = run_server(
      model, options, config, nullptr,
      [&lines](const std::string& line) { lines.push_back(line); });
  ASSERT_GT(report.batches, 0u);
  ASSERT_FALSE(lines.empty());

  const double interval_cycles =
      options.live_stats_interval_s * config.core_mhz * 1e6;
  // Every boundary up to the last completion gets exactly one line, in
  // order — including boundaries the device idled through.
  EXPECT_EQ(lines.size(),
            static_cast<std::size_t>(
                static_cast<double>(report.end_cycle) / interval_cycles));
  const auto field = [](const std::string& line, const std::string& key) {
    const std::string needle = "\"" + key + "\":";
    const std::size_t at = line.find(needle);
    EXPECT_NE(at, std::string::npos) << key << " missing in " << line;
    return std::strtod(line.c_str() + at + needle.size(), nullptr);
  };
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const double boundary = static_cast<double>(i + 1) * interval_cycles;
    // Timestamps are the exact boundary instants, not completion times.
    EXPECT_DOUBLE_EQ(field(lines[i], "cycle"), boundary);
    EXPECT_DOUBLE_EQ(field(lines[i], "t_s"),
                     static_cast<double>(i + 1) *
                         options.live_stats_interval_s);
    // The completed count is precisely the number of requests whose batch
    // finished at or before the boundary — never credit from the future.
    std::uint64_t done = 0;
    for (const BatchRecord& batch : report.batch_log) {
      if (static_cast<double>(batch.start) + batch.cycles <= boundary) {
        done += static_cast<std::uint64_t>(batch.size);
      }
    }
    EXPECT_EQ(static_cast<std::uint64_t>(field(lines[i], "completed")), done)
        << "line " << i;
  }
}

// ---------------------------------------------------------- serve.options ---

TEST(ServeOptionRules, CleanDefaultsPassEveryRule) {
  const verify::Report report =
      verify::run_serve_options_check(ServeOptions{}, 1);
  EXPECT_EQ(report.error_count(), 0u);
  // jobs = 0 means one worker per hardware thread — legal, not a violation.
  EXPECT_EQ(verify::run_serve_options_check(ServeOptions{}, 0).error_count(),
            0u);
}

TEST(ServeOptionRules, RateMustBePositiveFinite) {
  ServeOptions options;
  options.rate_rps = 0.0;
  EXPECT_TRUE(verify::run_serve_options_check(options, 1)
                  .fired("serve.options.rate"));
  options.rate_rps = -5.0;
  EXPECT_TRUE(verify::run_serve_options_check(options, 1)
                  .fired("serve.options.rate"));
  options.rate_rps = std::numeric_limits<double>::infinity();
  EXPECT_TRUE(verify::run_serve_options_check(options, 1)
                  .fired("serve.options.rate"));
}

TEST(ServeOptionRules, DurationMustBePositiveFinite) {
  ServeOptions options;
  options.duration_s = 0.0;
  EXPECT_TRUE(verify::run_serve_options_check(options, 1)
                  .fired("serve.options.duration"));
  options.duration_s = std::numeric_limits<double>::quiet_NaN();
  EXPECT_TRUE(verify::run_serve_options_check(options, 1)
                  .fired("serve.options.duration"));
}

TEST(ServeOptionRules, QueueMustCoverOneFullBatch) {
  ServeOptions options;
  options.queue_depth = 2;
  options.max_batch = 8;
  EXPECT_TRUE(verify::run_serve_options_check(options, 1)
                  .fired("serve.options.queue"));
  options.queue_depth = 8;
  EXPECT_FALSE(verify::run_serve_options_check(options, 1)
                   .fired("serve.options.queue"));
  options.max_batch = 0;
  EXPECT_TRUE(verify::run_serve_options_check(options, 1)
                  .fired("serve.options.queue"));
  options.max_batch = 4;
  options.queue_depth = 0;
  EXPECT_TRUE(verify::run_serve_options_check(options, 1)
                  .fired("serve.options.queue"));
}

TEST(ServeOptionRules, PolicyMustBeDeclaredEnumerator) {
  ServeOptions options;
  options.policy = static_cast<OverloadPolicy>(99);
  EXPECT_TRUE(verify::run_serve_options_check(options, 1)
                  .fired("serve.options.policy"));
  for (const OverloadPolicy policy :
       {OverloadPolicy::kDrop, OverloadPolicy::kBlock,
        OverloadPolicy::kShedOldest}) {
    options.policy = policy;
    EXPECT_FALSE(verify::run_serve_options_check(options, 1)
                     .fired("serve.options.policy"));
  }
}

TEST(ServeOptionRules, NegativeJobsRejected) {
  EXPECT_TRUE(verify::run_serve_options_check(ServeOptions{}, -1)
                  .fired("serve.options.jobs"));
  EXPECT_FALSE(verify::run_serve_options_check(ServeOptions{}, 4)
                   .fired("serve.options.jobs"));
}

TEST(ServeOptionRules, OverheadMustBeFiniteNonNegative) {
  ServeOptions options;
  options.dispatch_overhead_cycles = -5.0;
  EXPECT_TRUE(verify::run_serve_options_check(options, 1)
                  .fired("serve.options.overhead"));
  options.dispatch_overhead_cycles = std::numeric_limits<double>::quiet_NaN();
  EXPECT_TRUE(verify::run_serve_options_check(options, 1)
                  .fired("serve.options.overhead"));
  options.dispatch_overhead_cycles = 0.0;
  EXPECT_FALSE(verify::run_serve_options_check(options, 1)
                   .fired("serve.options.overhead"));
}

TEST(ServeOptionRules, ViolationsAccumulateIntoOneReport) {
  ServeOptions options;
  options.rate_rps = -1.0;
  options.duration_s = 0.0;
  options.queue_depth = 1;
  options.max_batch = 8;
  const verify::Report report = verify::run_serve_options_check(options, -2);
  EXPECT_GE(report.error_count(), 4u);
  EXPECT_TRUE(report.fired("serve.options.rate"));
  EXPECT_TRUE(report.fired("serve.options.duration"));
  EXPECT_TRUE(report.fired("serve.options.queue"));
  EXPECT_TRUE(report.fired("serve.options.jobs"));
}

}  // namespace
}  // namespace sealdl::serve
