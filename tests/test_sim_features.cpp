// Newer simulator features: threshold barriers (double buffering), staggered
// warp launch, split counters at system level, engine presets.
#include <gtest/gtest.h>

#include "crypto/engine_spec.hpp"
#include "sim/gpu_simulator.hpp"
#include "workload/trace_common.hpp"

namespace sealdl::sim {
namespace {

class ScriptProgram final : public WarpProgram {
 public:
  explicit ScriptProgram(std::vector<WarpOp> ops) : ops_(std::move(ops)) {}
  std::optional<WarpOp> next() override {
    if (pos_ >= ops_.size()) return std::nullopt;
    return ops_[pos_++];
  }

 private:
  std::vector<WarpOp> ops_;
  std::size_t pos_ = 0;
};

WarpOp compute(std::uint32_t n) { return {WarpOp::Kind::kCompute, 0, n}; }
WarpOp load(Addr a) { return {WarpOp::Kind::kLoad, a, 1}; }
WarpOp wait(std::uint32_t threshold = 0) {
  return {WarpOp::Kind::kWaitLoads, 0, threshold};
}

GpuConfig one_sm() {
  GpuConfig config = GpuConfig::gtx480();
  config.num_sms = 1;
  config.warps_per_sm = 4;
  config.warp_start_stagger = 0;
  return config;
}

TEST(ThresholdBarrier, AllowsPrefetchedLoadsToStayOutstanding) {
  // [load A, load B, wait(<=1), compute] must proceed once ONE load returns;
  // a full barrier would wait for both.
  auto run = [](std::uint32_t threshold) {
    GpuSimulator sim(one_sm());
    std::vector<WarpProgramPtr> programs;
    programs.push_back(std::make_unique<ScriptProgram>(std::vector<WarpOp>{
        load(0x0000), load(0x100000), wait(threshold), compute(1)}));
    sim.load_work(std::move(programs));
    sim.run();
    return sim.stats().cycles;
  };
  // Both variants wait for at least the first response; the full barrier can
  // only be slower or equal.
  EXPECT_LE(run(1), run(0));
}

TEST(ThresholdBarrier, ZeroThresholdIsAFullBarrier) {
  GpuSimulator sim(one_sm());
  std::vector<WarpProgramPtr> programs;
  programs.push_back(std::make_unique<ScriptProgram>(std::vector<WarpOp>{
      load(0x0000), wait(0), compute(1)}));
  sim.load_work(std::move(programs));
  sim.run();
  // Must include a full memory round trip (~175 cycles).
  EXPECT_GT(sim.stats().cycles, 150u);
}

TEST(StaggeredLaunch, ThrottlesEarlyWindowThroughputOnLongKernels) {
  // 16 long-running compute warps, issue width 32: without stagger all 16
  // retire ~16 instr/cycle from the start; with a 500-cycle stagger only the
  // 8 work-conserving launches run early, so the first-1000-cycle throughput
  // drops measurably.
  auto issued_in_first_1000 = [](int stagger) {
    GpuConfig config = one_sm();
    config.warps_per_sm = 16;
    config.warp_start_stagger = stagger;
    config.issue_width = 32;
    GpuSimulator sim(config);
    std::vector<WarpProgramPtr> programs;
    for (int w = 0; w < 16; ++w) {
      programs.push_back(
          std::make_unique<ScriptProgram>(std::vector<WarpOp>{compute(100000)}));
    }
    sim.load_work(std::move(programs));
    sim.run(/*max_cycles=*/1000);
    return sim.stats().warp_instructions;
  };
  const auto base = issued_in_first_1000(0);
  const auto staggered = issued_in_first_1000(500);
  EXPECT_LT(static_cast<double>(staggered), static_cast<double>(base) * 0.8);
}

TEST(StaggeredLaunch, WorkConservingWhenSmIsStarved) {
  // Default issue width: warps park on memory immediately, so the SM is
  // starved and launches the rest without waiting for the stagger.
  GpuConfig config = one_sm();
  config.warp_start_stagger = 100000;  // absurd; must be bypassed
  GpuSimulator sim(config);
  std::vector<WarpProgramPtr> programs;
  for (int w = 0; w < 4; ++w) {
    programs.push_back(std::make_unique<ScriptProgram>(std::vector<WarpOp>{
        load(static_cast<Addr>(w) * 0x10000), wait(), compute(4)}));
  }
  sim.load_work(std::move(programs));
  sim.run();
  EXPECT_LT(sim.stats().cycles, 1000u);  // nowhere near 3x100000
}

TEST(SplitCounters, ImproveCounterModeIpcOnStridedStreams) {
  auto run = [](bool split) {
    GpuConfig config = GpuConfig::gtx480();
    config.num_sms = 4;
    config.scheme = EncryptionScheme::kCounter;
    config.counter_cache_kb = 24;
    config.split_counters = split;
    GpuSimulator sim(config);
    std::vector<WarpProgramPtr> programs;
    // 1 KiB-strided walk, 16 KiB apart per warp: a warp's 16 loads span one
    // split-counter line (16 KiB coverage) but eight monolithic lines, and
    // the per-warp counter lines spread across cache sets.
    for (int w = 0; w < 64; ++w) {
      std::vector<WarpOp> ops;
      for (int i = 0; i < 16; ++i) {
        ops.push_back(load(static_cast<Addr>(w) * 16384 + static_cast<Addr>(i) * 1024));
        ops.push_back(wait());
        ops.push_back(compute(2));
      }
      programs.push_back(std::make_unique<ScriptProgram>(std::move(ops)));
    }
    sim.load_work(std::move(programs));
    sim.run();
    return sim.stats();
  };
  const SimStats mono = run(false);
  const SimStats split = run(true);
  EXPECT_GT(split.counter_hit_rate(), mono.counter_hit_rate());
  EXPECT_LE(split.counter_traffic_bytes, mono.counter_traffic_bytes);
}

TEST(EngineSpecs, TableOneMatchesThePaper) {
  const auto engines = crypto::table1_engines();
  ASSERT_EQ(engines.size(), 5u);
  EXPECT_EQ(engines[1].name.find("Mathew"), 0u);
  EXPECT_DOUBLE_EQ(engines[1].throughput_gbps, 6.6);
  EXPECT_EQ(engines[4].latency_cycles, 152);
  const auto def = crypto::default_engine();
  EXPECT_EQ(def.latency_cycles, 20);
  EXPECT_DOUBLE_EQ(def.throughput_gbps, 8.0);
  // 8 GB/s at 700 MHz = 11.43 B/cycle.
  EXPECT_NEAR(def.bytes_per_cycle(700.0), 11.43, 0.01);
}

TEST(GpuConfigNames, SchemeNamesAreStable) {
  EXPECT_STREQ(scheme_name(EncryptionScheme::kNone), "Baseline");
  EXPECT_STREQ(scheme_name(EncryptionScheme::kDirect), "Direct");
  EXPECT_STREQ(scheme_name(EncryptionScheme::kCounter), "Counter");
}

TEST(TraceCommon, MacsToInstructionsRoundsUpWithOverhead) {
  EXPECT_EQ(workload::macs_to_instructions(32, 0.0), 1u);
  EXPECT_EQ(workload::macs_to_instructions(33, 0.0), 2u);
  EXPECT_EQ(workload::macs_to_instructions(0), 1u);  // never zero
  EXPECT_EQ(workload::macs_to_instructions(3200, 0.12), 112u);
}

TEST(GpuConfigDerived, BandwidthConversions) {
  const GpuConfig config = GpuConfig::gtx480();
  // 177.4 GB/s * 0.65 / 700 MHz / 6 channels.
  EXPECT_NEAR(config.dram_bytes_per_cycle_per_channel(), 27.46, 0.05);
  EXPECT_NEAR(config.aes_bytes_per_cycle(), 11.43, 0.01);
  EXPECT_DOUBLE_EQ(config.peak_ipc(), 960.0);
}

}  // namespace
}  // namespace sealdl::sim
