// Simulator building blocks: caches, secure map, queues, throughput pipes.
#include <gtest/gtest.h>

#include "sim/cache.hpp"
#include "sim/pipes.hpp"
#include "sim/secure_map.hpp"

namespace sealdl::sim {
namespace {

// ----------------------------------------------------------------- Cache ---

TEST(Cache, MissThenHit) {
  SetAssocCache cache(4096, 4, 128);
  EXPECT_FALSE(cache.access(0x1000, false).hit);
  cache.insert(0x1000, false);
  EXPECT_TRUE(cache.access(0x1000, false).hit);
}

TEST(Cache, LruEvictsOldest) {
  // 2 sets * 2 ways * 128B = 512B cache; same-set lines are 256B apart.
  SetAssocCache cache(512, 2, 128);
  cache.insert(0x0000, false);
  cache.insert(0x0100, false);   // same set (set stride = 2 lines)
  cache.access(0x0000, false);   // touch A: B becomes LRU
  cache.insert(0x0200, false);   // evicts B
  EXPECT_TRUE(cache.contains(0x0000));
  EXPECT_FALSE(cache.contains(0x0100));
  EXPECT_TRUE(cache.contains(0x0200));
}

TEST(Cache, DirtyEvictionReportsWritebackAddress) {
  SetAssocCache cache(512, 2, 128);
  cache.insert(0x0000, true);
  cache.insert(0x0100, false);
  const auto result = cache.insert(0x0200, false);  // evicts dirty 0x0000
  ASSERT_TRUE(result.writeback.has_value());
  EXPECT_EQ(*result.writeback, 0x0000u);
}

TEST(Cache, CleanEvictionHasNoWriteback) {
  SetAssocCache cache(512, 2, 128);
  cache.insert(0x0000, false);
  cache.insert(0x0100, false);
  EXPECT_FALSE(cache.insert(0x0200, false).writeback.has_value());
}

TEST(Cache, AccessMarksDirty) {
  SetAssocCache cache(512, 2, 128);
  cache.insert(0x0000, false);
  cache.access(0x0000, /*mark_dirty=*/true);
  cache.insert(0x0100, false);
  const auto result = cache.insert(0x0200, false);
  ASSERT_TRUE(result.writeback.has_value());
  EXPECT_EQ(*result.writeback, 0x0000u);
}

TEST(Cache, InvalidateReturnsDirtyAddress) {
  SetAssocCache cache(4096, 4, 128);
  cache.insert(0x1000, true);
  const auto dirty = cache.invalidate(0x1000);
  ASSERT_TRUE(dirty.has_value());
  EXPECT_EQ(*dirty, 0x1000u);
  EXPECT_FALSE(cache.contains(0x1000));
  EXPECT_FALSE(cache.invalidate(0x1000).has_value());
}

TEST(Cache, FlushDirtyReturnsAllDirtyLinesOnce) {
  SetAssocCache cache(4096, 4, 128);
  cache.insert(0x1000, true);
  cache.insert(0x2000, true);
  cache.insert(0x3000, false);
  auto dirty = cache.flush_dirty();
  EXPECT_EQ(dirty.size(), 2u);
  EXPECT_TRUE(cache.flush_dirty().empty());
}

TEST(Cache, HitRateAccounting) {
  SetAssocCache cache(4096, 4, 128);
  cache.access(0x0, false);  // miss
  cache.insert(0x0, false);
  cache.access(0x0, false);  // hit
  cache.access(0x0, false);  // hit
  EXPECT_EQ(cache.hit_rate().hits, 2u);
  EXPECT_EQ(cache.hit_rate().total, 3u);
}

TEST(Cache, RejectsBadGeometry) {
  EXPECT_THROW(SetAssocCache(100, 4, 128), std::invalid_argument);
}

class CacheGeometry : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(CacheGeometry, FillsToCapacityWithoutEviction) {
  const auto [assoc, lines] = GetParam();
  SetAssocCache cache(static_cast<std::size_t>(lines) * 128, assoc, 128);
  // Insert exactly `lines` distinct lines walking sets uniformly.
  for (int i = 0; i < lines; ++i) {
    const auto result = cache.insert(static_cast<Addr>(i) * 128, true);
    EXPECT_FALSE(result.writeback.has_value()) << "line " << i;
  }
  for (int i = 0; i < lines; ++i) {
    EXPECT_TRUE(cache.contains(static_cast<Addr>(i) * 128));
  }
}

INSTANTIATE_TEST_SUITE_P(Geometries, CacheGeometry,
                         ::testing::Values(std::make_tuple(1, 8),
                                           std::make_tuple(2, 16),
                                           std::make_tuple(4, 32),
                                           std::make_tuple(8, 64)));

// ------------------------------------------------------------- SecureMap ---

TEST(SecureMap, BasicMembership) {
  SecureMap map;
  map.add_range(0x1000, 0x100);
  EXPECT_TRUE(map.is_secure(0x1000));
  EXPECT_TRUE(map.is_secure(0x10FF));
  EXPECT_FALSE(map.is_secure(0x1100));
  EXPECT_FALSE(map.is_secure(0x0FFF));
}

TEST(SecureMap, OverlappingRangesMerge) {
  SecureMap map;
  map.add_range(0x1000, 0x100);
  map.add_range(0x1080, 0x100);
  EXPECT_EQ(map.range_count(), 1u);
  EXPECT_EQ(map.secure_bytes(), 0x180u);
}

TEST(SecureMap, AdjacentRangesMerge) {
  SecureMap map;
  map.add_range(0x1000, 0x100);
  map.add_range(0x1100, 0x100);
  EXPECT_EQ(map.range_count(), 1u);
  EXPECT_EQ(map.secure_bytes(), 0x200u);
}

TEST(SecureMap, RemoveSplitsRange) {
  SecureMap map;
  map.add_range(0x1000, 0x300);
  map.remove_range(0x1100, 0x100);
  EXPECT_EQ(map.range_count(), 2u);
  EXPECT_TRUE(map.is_secure(0x1000));
  EXPECT_FALSE(map.is_secure(0x1100));
  EXPECT_FALSE(map.is_secure(0x11FF));
  EXPECT_TRUE(map.is_secure(0x1200));
  EXPECT_EQ(map.secure_bytes(), 0x200u);
}

TEST(SecureMap, LineIntersectionRule) {
  SecureMap map;
  map.add_range(0x10A0, 0x10);  // 16 secure bytes in the middle of a line
  EXPECT_TRUE(map.line_is_secure(0x1080, 128));
  EXPECT_FALSE(map.line_is_secure(0x1000, 128));
  EXPECT_FALSE(map.line_is_secure(0x1100, 128));
}

TEST(SecureMap, LineRuleAtRangeBoundaries) {
  SecureMap map;
  map.add_range(0x1080, 0x80);  // exactly one line
  EXPECT_TRUE(map.line_is_secure(0x1080, 128));
  EXPECT_FALSE(map.line_is_secure(0x1000, 128));
  EXPECT_FALSE(map.line_is_secure(0x1100, 128));
}

TEST(SecureMap, ManyDisjointRanges) {
  SecureMap map;
  for (int i = 0; i < 100; ++i) map.add_range(static_cast<Addr>(i) * 0x1000, 0x80);
  EXPECT_EQ(map.range_count(), 100u);
  EXPECT_EQ(map.secure_bytes(), 100u * 0x80u);
  EXPECT_TRUE(map.is_secure(0x5000));
  EXPECT_FALSE(map.is_secure(0x5080));
}

// ----------------------------------------------------------------- Pipes ---

TEST(DelayQueue, DelaysByLatency) {
  DelayQueue<int> q(10);
  q.push(5, 42);
  EXPECT_FALSE(q.pop_ready(14).has_value());
  const auto v = q.pop_ready(15);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 42);
}

TEST(DelayQueue, FifoOrderPreserved) {
  DelayQueue<int> q(1);
  q.push(0, 1);
  q.push(0, 2);
  EXPECT_EQ(*q.pop_ready(1), 1);
  EXPECT_EQ(*q.pop_ready(1), 2);
  EXPECT_FALSE(q.pop_ready(100).has_value());
}

TEST(ThroughputPipe, SingleTransferLatencyPlusOccupancy) {
  ThroughputPipe pipe(16.0, 20);  // 16 B/cycle, 20-cycle latency
  // 128 bytes: 8 cycles occupancy + 20 latency, starting at cycle 0.
  EXPECT_EQ(pipe.schedule(0, 128), 28u);
}

TEST(ThroughputPipe, BackToBackTransfersSerialize) {
  ThroughputPipe pipe(16.0, 20);
  EXPECT_EQ(pipe.schedule(0, 128), 28u);
  // Second transfer starts when the pipe frees (cycle 8), not at its own
  // earliest time 0.
  EXPECT_EQ(pipe.schedule(0, 128), 36u);
}

TEST(ThroughputPipe, IdleGapResetsStart) {
  ThroughputPipe pipe(16.0, 0);
  EXPECT_EQ(pipe.schedule(0, 128), 8u);
  EXPECT_EQ(pipe.schedule(100, 128), 108u);  // starts at 100, not 8
}

TEST(ThroughputPipe, FractionalBandwidthExact) {
  ThroughputPipe pipe(42.24, 0);
  // 10 lines of 128B = 1280B at 42.24 B/cycle = 30.30.. cycles.
  Cycle done = 0;
  for (int i = 0; i < 10; ++i) done = pipe.schedule(0, 128);
  EXPECT_EQ(done, 31u);  // ceil(30.30)
  EXPECT_NEAR(pipe.busy_cycles(), 1280.0 / 42.24, 1e-9);
  EXPECT_EQ(pipe.bytes_transferred(), 1280u);
}

TEST(ThroughputPipe, UtilizationClamped) {
  ThroughputPipe pipe(1.0, 0);
  pipe.schedule(0, 100);
  EXPECT_DOUBLE_EQ(pipe.utilization(200), 0.5);
  EXPECT_DOUBLE_EQ(pipe.utilization(50), 1.0);
  EXPECT_DOUBLE_EQ(pipe.utilization(0), 0.0);
}

}  // namespace
}  // namespace sealdl::sim
