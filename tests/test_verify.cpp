// The static analyzer (sealdl-check): clean pipelines must pass, every rule
// must fire under its seeded violation, and a hand-corrupted plan (dropped
// channel propagation) must be caught at both the plan and the trace level.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "models/layer_spec.hpp"
#include "verify/analysis.hpp"
#include "verify/checker.hpp"
#include "verify/diagnostics.hpp"
#include "verify/inject.hpp"
#include "verify/secure_checkers.hpp"

namespace sealdl::verify {
namespace {

// Small inputs keep the trace walk fast; the full-scale 224 sweep runs via
// the sealdl-check ctest entries in tools/CMakeLists.txt.
constexpr int kInputHw = 64;
TraceCheckOptions fast_trace() { return {.num_warps = 4, .max_tiles = 8}; }

Report check(const std::vector<models::LayerSpec>& specs, BuildOptions options) {
  const AnalysisInput input = build_input(specs, options);
  return run_checkers(input, default_checkers(fast_trace()));
}

// ---------------------------------------------------------------- clean ---

TEST(VerifyClean, NetworksPassAcrossRatios) {
  const struct {
    const char* name;
    std::vector<models::LayerSpec> specs;
  } nets[] = {{"vgg16", models::vgg16_specs(kInputHw)},
              {"resnet18", models::resnet18_specs(kInputHw)},
              {"resnet34", models::resnet34_specs(kInputHw)}};
  for (const auto& net : nets) {
    for (const double ratio : {0.0, 0.4, 0.5, 1.0}) {
      BuildOptions options;
      options.plan.encryption_ratio = ratio;
      const Report report = check(net.specs, options);
      EXPECT_EQ(report.error_count(), 0u)
          << net.name << " ratio " << ratio << "\n"
          << report.to_text();
    }
  }
}

TEST(VerifyClean, BaselinePassesWithEmptyMap) {
  BuildOptions options;
  options.selective = false;
  const AnalysisInput input = build_input(models::vgg16_specs(kInputHw), options);
  EXPECT_EQ(input.heap.secure_map().secure_bytes(), 0u);
  const Report report = run_checkers(input, default_checkers(fast_trace()));
  EXPECT_EQ(report.error_count(), 0u) << report.to_text();
}

TEST(VerifyClean, SeedConvToFcSeamIsWarningNotError) {
  // The generators store conv/pool outputs with channel-pitch striding even
  // when the next consumer is a dense FC vector: the stores stay inside the
  // heap (trace.bounds clean) but land outside the FC input region
  // (trace.region warns). This pins the seed behavior so a future layout fix
  // shows up as this expectation flipping, not as a silent change.
  BuildOptions options;
  const Report report = check(models::vgg16_specs(kInputHw), options);
  EXPECT_EQ(report.count("trace.bounds"), 0u);
  EXPECT_GT(report.count("trace.region"), 0u);
}

// ----------------------------------------------------------- injections ---

TEST(VerifyInject, EveryRuleFires) {
  // ResNet-18 has the residual topology, so every injection is applicable.
  const auto specs = models::resnet18_specs(kInputHw);
  for (const Injection injection : all_injections()) {
    BuildOptions options;
    options.inject = injection;
    const AnalysisInput input = build_input(specs, options);
    Report report = run_checkers(input, default_checkers(fast_trace()));
    // The secure.* rules consume a bus ledger, not the AnalysisInput alone:
    // route their injections through the functional taint audit, over the
    // one scheme each injection targets (same path sealdl-check takes).
    if (is_secure_injection(injection)) {
      SecureAuditOptions audit;
      audit.schemes = audit_schemes_for(injection);
      run_secure_audit(input, audit, report);
    }
    for (const std::string& rule : expected_rules(injection)) {
      EXPECT_TRUE(report.fired(rule))
          << injection_name(injection) << " did not fire " << rule << "\n"
          << report.to_text();
    }
  }
}

TEST(VerifyInject, ResidualRequiresTopology) {
  BuildOptions options;
  options.inject = Injection::kPlanResidual;
  EXPECT_TRUE(requires_residual_topology(Injection::kPlanResidual));
  // VGG has no identity blocks: the injection cannot be staged.
  EXPECT_THROW(build_input(models::vgg16_specs(kInputHw), options),
               std::invalid_argument);
}

TEST(VerifyInject, FullEncryptionLeavesNoPlainRowToCorrupt) {
  BuildOptions options;
  options.plan.encryption_ratio = 1.0;
  options.inject = Injection::kLayoutAlign;
  EXPECT_THROW(build_input(models::vgg16_specs(kInputHw), options),
               std::invalid_argument);
}

TEST(VerifyInject, CorruptedPlanCaughtAtPlanAndTraceLevel) {
  // The integration scenario from the paper's invariant: a refactor loses
  // one layer's channel propagation (fmap channel stays plaintext while its
  // kernel row is encrypted). Both the closure rule and the trace-level
  // mixed-operand rule must catch it.
  BuildOptions options;
  AnalysisInput input = build_input(models::vgg16_specs(kInputHw), options);
  ASSERT_TRUE(input.plan.has_value());
  // Find an encrypted channel of a conv fmap and drop its marking by hand.
  bool corrupted = false;
  const auto& layers = input.layout->layers();
  for (std::size_t i = 0; i < input.specs.size() && !corrupted; ++i) {
    if (input.specs[i].type != models::LayerSpec::Type::kConv) continue;
    const int cp = input.consumer_plan_index(i);
    if (cp < 0) continue;
    const auto& lp = input.plan->layer(static_cast<std::size_t>(cp));
    for (int c = 0; c < std::min(layers[i].ifmap_channels, lp.rows); ++c) {
      if (!row_encrypted_safe(lp, c)) continue;
      input.heap.unmark_secure(
          layers[i].ifmap_base +
              static_cast<std::uint64_t>(c) * layers[i].ifmap_channel_pitch,
          layers[i].ifmap_channel_pitch);
      corrupted = true;
      break;
    }
  }
  ASSERT_TRUE(corrupted);
  const Report report = run_checkers(input, default_checkers(fast_trace()));
  EXPECT_TRUE(report.fired("plan.closure")) << report.to_text();
  EXPECT_TRUE(report.fired("trace.mixed")) << report.to_text();
}

// ------------------------------------------------------------- topology ---

TEST(VerifyTopology, ResidualEdgesReconstructedFromNames) {
  const auto r18 = residual_edges_from_names(models::resnet18_specs(kInputHw));
  EXPECT_FALSE(r18.empty());
  const auto specs = models::resnet18_specs(kInputHw);
  for (const ResidualEdge& edge : r18) {
    EXPECT_LT(edge.entry_spec, edge.exit_spec);
    EXPECT_LT(edge.exit_spec, edge.consumer_spec);
    EXPECT_NE(specs[edge.consumer_spec].type, models::LayerSpec::Type::kPool);
  }
  EXPECT_TRUE(residual_edges_from_names(models::vgg16_specs(kInputHw)).empty());
}

TEST(VerifyTopology, Resnet34HasMoreIdentityBlocksThanResnet18) {
  const auto r18 = residual_edges_from_names(models::resnet18_specs(kInputHw));
  const auto r34 = residual_edges_from_names(models::resnet34_specs(kInputHw));
  EXPECT_GT(r34.size(), r18.size());
}

// ---------------------------------------------------------------- report ---

TEST(VerifyReport, CountsStayExactPastStorageCap) {
  Report report(/*max_per_rule=*/2);
  for (int i = 0; i < 5; ++i) {
    report.add({"plan.closure", Severity::kError, "conv1", 0, 0, "x"});
  }
  report.add({"trace.wait", Severity::kWarning, "", 0, 0, "y"});
  EXPECT_EQ(report.count("plan.closure"), 5u);
  EXPECT_EQ(report.error_count(), 5u);
  EXPECT_EQ(report.warning_count(), 1u);
  EXPECT_EQ(report.diagnostics().size(), 3u);  // 2 stored + the warning
  EXPECT_TRUE(report.fired("trace.wait"));
  EXPECT_FALSE(report.fired("layout.bounds"));
}

TEST(VerifyReport, TextAndJsonRenderings) {
  Report report;
  report.add({"layout.bounds", Severity::kError, "conv2_1", 0x100, 0x200, "oops"});
  const std::string text = report.to_text();
  EXPECT_NE(text.find("layout.bounds"), std::string::npos);
  EXPECT_NE(text.find("conv2_1"), std::string::npos);

  util::JsonWriter json;
  report.write_json(json);
  EXPECT_NE(json.str().find("\"layout.bounds\""), std::string::npos);
  EXPECT_NE(json.str().find("\"errors\""), std::string::npos);
}

TEST(VerifyReport, InjectionNamesRoundTrip) {
  for (const Injection injection : all_injections()) {
    const auto parsed = injection_from_name(injection_name(injection));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, injection);
    EXPECT_FALSE(expected_rules(injection).empty());
  }
  EXPECT_FALSE(injection_from_name("no-such-injection").has_value());
}

}  // namespace
}  // namespace sealdl::verify
