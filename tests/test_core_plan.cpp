// SEAL core: l1 importance, encryption plan construction, boundary policy.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "core/encryption_plan.hpp"
#include "core/importance.hpp"
#include "models/build.hpp"
#include "nn/basic_layers.hpp"
#include "nn/conv2d.hpp"
#include "nn/network.hpp"

namespace sealdl::core {
namespace {

TEST(Importance, ConvRowL1MatchesManualSum) {
  util::Rng rng(1);
  nn::Conv2d conv(2, 2, 2, 1, 0, false, rng);
  // weight[oc][ic][kh][kw]
  float v = 1.0f;
  for (std::size_t i = 0; i < conv.weight().value.numel(); ++i) {
    conv.weight().value[i] = (i % 2 ? -1.0f : 1.0f) * v;
    v += 1.0f;
  }
  nn::Sequential net;
  const auto layers_before = collect_weight_layers(conv);
  ASSERT_EQ(layers_before.size(), 1u);
  const auto norms = kernel_row_l1(layers_before[0]);
  ASSERT_EQ(norms.size(), 2u);
  // Row 0 = |w| over weight[:,0,:,:]; recompute manually.
  float row0 = 0, row1 = 0;
  for (int oc = 0; oc < 2; ++oc) {
    for (int ic = 0; ic < 2; ++ic) {
      for (int k = 0; k < 4; ++k) {
        const float w = conv.weight().value.at4(oc, ic, k / 2, k % 2);
        (ic == 0 ? row0 : row1) += std::fabs(w);
      }
    }
  }
  EXPECT_FLOAT_EQ(norms[0], row0);
  EXPECT_FLOAT_EQ(norms[1], row1);
}

TEST(Importance, LinearRowIsInputColumn) {
  util::Rng rng(2);
  nn::Linear fc(3, 2, false, rng);
  fc.weight().value = nn::Tensor({2, 3}, {1, -2, 3, -4, 5, -6});
  const auto layers = collect_weight_layers(fc);
  const auto norms = kernel_row_l1(layers[0]);
  EXPECT_FLOAT_EQ(norms[0], 5.0f);   // |1| + |-4|
  EXPECT_FLOAT_EQ(norms[1], 7.0f);   // |-2| + |5|
  EXPECT_FLOAT_EQ(norms[2], 9.0f);
}

TEST(Importance, AscendingOrderSortsByNorm) {
  const auto order = rows_by_ascending_importance({3.0f, 1.0f, 2.0f});
  EXPECT_EQ(order, (std::vector<int>{1, 2, 0}));
}

TEST(Importance, TiesBreakByIndex) {
  const auto order = rows_by_ascending_importance({1.0f, 1.0f, 0.5f});
  EXPECT_EQ(order, (std::vector<int>{2, 0, 1}));
}

TEST(Plan, RatioEncryptsLargestRows) {
  util::Rng rng(3);
  nn::Sequential net;
  auto conv = std::make_unique<nn::Conv2d>(4, 1, 1, 1, 0, false, rng);
  // Rows with l1 norms 1,2,3,4 (weights [oc=0][ic][0][0]).
  conv->weight().value = nn::Tensor({1, 4, 1, 1}, {1, -2, 3, -4});
  net.add(std::move(conv));

  PlanOptions options;
  options.encryption_ratio = 0.5;
  options.full_head_convs = 0;
  options.full_tail_convs = 0;
  options.full_tail_fcs = 0;
  const auto plan = EncryptionPlan::from_model(net, options);
  ASSERT_EQ(plan.layer_count(), 1u);
  const LayerPlan& lp = plan.layer(0);
  EXPECT_EQ(lp.encrypted_count(), 2);
  EXPECT_FALSE(lp.row_encrypted(0));
  EXPECT_FALSE(lp.row_encrypted(1));
  EXPECT_TRUE(lp.row_encrypted(2));  // largest two norms
  EXPECT_TRUE(lp.row_encrypted(3));
}

TEST(Plan, RatioRoundsUp) {
  std::vector<int> rows{3};
  std::vector<bool> is_conv{true};
  PlanOptions options;
  options.encryption_ratio = 0.5;
  options.full_head_convs = 0;
  options.full_tail_convs = 0;
  options.full_tail_fcs = 0;
  const auto plan = EncryptionPlan::from_row_counts(rows, is_conv, options);
  EXPECT_EQ(plan.layer(0).encrypted_count(), 2);  // ceil(1.5)
}

TEST(Plan, BoundaryPolicyFullyEncryptsHeadAndTail) {
  // 5 convs + 2 fcs: head 2 convs, tail 1 conv, tail 1 fc fully encrypted.
  std::vector<int> rows{8, 8, 8, 8, 8, 16, 16};
  std::vector<bool> is_conv{true, true, true, true, true, false, false};
  PlanOptions options;
  options.encryption_ratio = 0.25;
  const auto plan = EncryptionPlan::from_row_counts(rows, is_conv, options);
  EXPECT_TRUE(plan.layer(0).fully_encrypted);
  EXPECT_TRUE(plan.layer(1).fully_encrypted);
  EXPECT_FALSE(plan.layer(2).fully_encrypted);
  EXPECT_FALSE(plan.layer(3).fully_encrypted);
  EXPECT_TRUE(plan.layer(4).fully_encrypted);   // last conv
  EXPECT_FALSE(plan.layer(5).fully_encrypted);  // middle fc uses SE
  EXPECT_TRUE(plan.layer(6).fully_encrypted);   // last fc
  EXPECT_EQ(plan.layer(2).encrypted_count(), 2);
}

TEST(Plan, RatioOneEncryptsEverything) {
  std::vector<int> rows{8, 8, 8};
  std::vector<bool> is_conv{true, true, true};
  PlanOptions options;
  options.encryption_ratio = 1.0;
  options.full_head_convs = 0;
  options.full_tail_convs = 0;
  options.full_tail_fcs = 0;
  const auto plan = EncryptionPlan::from_row_counts(rows, is_conv, options);
  for (const auto& lp : plan.layers()) {
    EXPECT_TRUE(lp.fully_encrypted);
  }
  EXPECT_DOUBLE_EQ(plan.overall_encrypted_weight_fraction(), 1.0);
}

TEST(Plan, RatioZeroLeavesMiddleLayersPlain) {
  std::vector<int> rows{8, 8, 8, 8};
  std::vector<bool> is_conv{true, true, true, true};
  PlanOptions options;
  options.encryption_ratio = 0.0;
  const auto plan = EncryptionPlan::from_row_counts(rows, is_conv, options);
  EXPECT_EQ(plan.layer(2).encrypted_count(), 0);
  EXPECT_TRUE(plan.layer(0).fully_encrypted);  // policy still applies
}

TEST(Plan, RandomPolicyEncryptsRequestedCount) {
  std::vector<int> rows{100};
  std::vector<bool> is_conv{true};
  PlanOptions options;
  options.encryption_ratio = 0.37;
  options.policy = RowPolicy::kRandomPlain;
  options.full_head_convs = 0;
  options.full_tail_convs = 0;
  options.full_tail_fcs = 0;
  const auto plan = EncryptionPlan::from_row_counts(rows, is_conv, options);
  EXPECT_EQ(plan.layer(0).encrypted_count(), 37);
}

TEST(Plan, InvertedPolicyExposesLargestRows) {
  util::Rng rng(4);
  nn::Sequential net;
  auto conv = std::make_unique<nn::Conv2d>(4, 1, 1, 1, 0, false, rng);
  conv->weight().value = nn::Tensor({1, 4, 1, 1}, {1, -2, 3, -4});
  net.add(std::move(conv));
  PlanOptions options;
  options.encryption_ratio = 0.5;
  options.policy = RowPolicy::kLargestL1Plain;
  options.full_head_convs = 0;
  options.full_tail_convs = 0;
  options.full_tail_fcs = 0;
  const auto plan = EncryptionPlan::from_model(net, options);
  EXPECT_TRUE(plan.layer(0).row_encrypted(0));   // smallest encrypted
  EXPECT_FALSE(plan.layer(0).row_encrypted(3));  // largest exposed
}

TEST(Plan, FromModelCoversVgg16Structure) {
  models::BuildOptions build;
  build.input_hw = 16;
  build.width_div = 16;
  auto model = models::build_vgg16(build);
  PlanOptions options;  // paper defaults
  const auto plan = EncryptionPlan::from_model(*model, options);
  EXPECT_EQ(plan.layer_count(), 16u);  // 13 conv + 3 fc
  // Overall fraction sits above the nominal 50% because boundary layers are
  // fully encrypted.
  EXPECT_GT(plan.overall_encrypted_weight_fraction(), 0.5);
  EXPECT_LT(plan.overall_encrypted_weight_fraction(), 1.0);
}

class PlanRatioSweep : public ::testing::TestWithParam<double> {};

TEST_P(PlanRatioSweep, PerLayerFractionTracksRatio) {
  const double ratio = GetParam();
  std::vector<int> rows{64, 64, 64, 64, 64, 64};
  std::vector<bool> is_conv(6, true);
  PlanOptions options;
  options.encryption_ratio = ratio;
  options.full_head_convs = 0;
  options.full_tail_convs = 0;
  options.full_tail_fcs = 0;
  const auto plan = EncryptionPlan::from_row_counts(rows, is_conv, options);
  for (const auto& lp : plan.layers()) {
    EXPECT_NEAR(lp.encrypted_fraction(), ratio, 1.0 / 64.0 + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Ratios, PlanRatioSweep,
                         ::testing::Values(0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7,
                                           0.8, 0.9));

}  // namespace
}  // namespace sealdl::core
