// Cycle-attribution profiler goldens: the exact-partition invariant on all
// five encryption schemes, byte-identical profile JSON across job counts,
// zero perturbation of simulation results, deterministic sampler decimation
// under a cap, and a wall-time guard on the instrumented-but-disabled path.
#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <vector>

#include "models/layer_spec.hpp"
#include "telemetry/profiler.hpp"
#include "telemetry/telemetry.hpp"
#include "verify/profile_checkers.hpp"
#include "workload/network_runner.hpp"

namespace sealdl::workload {
namespace {

constexpr int kInput = 32;
constexpr std::uint64_t kTiles = 24;

struct SchemeSetup {
  const char* name;
  sim::EncryptionScheme scheme;
  bool selective;
};

constexpr SchemeSetup kSchemes[] = {
    {"baseline", sim::EncryptionScheme::kNone, false},
    {"direct", sim::EncryptionScheme::kDirect, false},
    {"counter", sim::EncryptionScheme::kCounter, false},
    {"seal-d", sim::EncryptionScheme::kDirect, true},
    {"seal-c", sim::EncryptionScheme::kCounter, true},
};

struct ProfiledRun {
  NetworkResult result;
  telemetry::RunTelemetry telemetry;

  explicit ProfiledRun(telemetry::TelemetryOptions topts) : telemetry(topts) {}
};

ProfiledRun run_profiled(const std::vector<models::LayerSpec>& specs,
                         const SchemeSetup& setup, int jobs,
                         sim::Cycle sample_interval = 0,
                         std::size_t max_samples = 0) {
  sim::GpuConfig config = sim::GpuConfig::gtx480();
  config.scheme = setup.scheme;
  RunOptions options;
  options.max_tiles_per_layer = kTiles;
  options.selective = setup.selective;
  options.plan.encryption_ratio = 0.5;
  options.jobs = jobs;
  telemetry::TelemetryOptions topts;
  topts.sample_interval = sample_interval;
  topts.max_samples = max_samples;
  topts.profile = true;
  ProfiledRun run(topts);
  options.telemetry = &run.telemetry;
  run.result = run_network(specs, config, options);
  return run;
}

// Every cycle of every component lands in exactly one bucket, and all
// components of a layer agree on the layer's total — on all five schemes.
TEST(CycleConservation, HoldsOnAllSchemes) {
  const auto specs = models::resnet18_specs(kInput);
  for (const SchemeSetup& setup : kSchemes) {
    SCOPED_TRACE(setup.name);
    const ProfiledRun run = run_profiled(specs, setup, /*jobs=*/1);
    const telemetry::CycleProfile& profile = run.telemetry.profile();
    ASSERT_EQ(profile.layers.size(), specs.size());
    for (const telemetry::LayerCycleProfile& layer : profile.layers) {
      EXPECT_GT(layer.total_cycles, 0u) << layer.layer;
      ASSERT_FALSE(layer.components.empty());
      for (const telemetry::ComponentProfile& comp : layer.components) {
        EXPECT_EQ(comp.bucket_sum(), comp.total_cycles)
            << layer.layer << " " << comp.name;
        EXPECT_EQ(comp.total_cycles, layer.total_cycles)
            << layer.layer << " " << comp.name;
      }
    }
    const verify::Report report = verify::run_profile_check(profile);
    EXPECT_EQ(report.error_count(), 0u) << report.to_text();
  }
}

// The profile.* rules must actually catch a corrupted profile, not just
// bless intact ones.
TEST(CycleConservation, CheckerCatchesCorruption) {
  const auto specs = models::resnet18_specs(kInput);
  ProfiledRun run = run_profiled(specs, kSchemes[4], /*jobs=*/1);
  telemetry::CycleProfile& profile = run.telemetry.profile();
  ASSERT_FALSE(profile.empty());
  profile.layers.front().components.front().buckets[0] += 1;
  verify::Report report = verify::run_profile_check(profile);
  EXPECT_TRUE(report.fired("profile.conservation")) << report.to_text();

  profile.layers.front().components.front().total_cycles += 1;
  report = verify::run_profile_check(profile);
  EXPECT_TRUE(report.fired("profile.total")) << report.to_text();
}

// The serialized profile is the byte-exact golden across job counts: the
// parallel runner merges per-task profiles in spec order.
TEST(ProfileDeterminism, JsonByteIdenticalAcrossJobs) {
  for (const char* net : {"vgg16", "resnet18"}) {
    SCOPED_TRACE(net);
    const auto specs = std::string(net) == "vgg16"
                           ? models::vgg16_specs(kInput)
                           : models::resnet18_specs(kInput);
    const ProfiledRun serial = run_profiled(specs, kSchemes[4], /*jobs=*/1);
    const ProfiledRun parallel = run_profiled(specs, kSchemes[4], /*jobs=*/4);
    EXPECT_EQ(telemetry::cycle_profile_json(serial.telemetry.profile()),
              telemetry::cycle_profile_json(parallel.telemetry.profile()));
  }
}

// Attaching the profiler must not perturb the simulation: stats with
// profiling on equal stats with profiling off, cycle for cycle.
TEST(ProfileDeterminism, ProfilingDoesNotPerturbResults) {
  const auto specs = models::resnet18_specs(kInput);
  const ProfiledRun profiled = run_profiled(specs, kSchemes[2], /*jobs=*/1);

  sim::GpuConfig config = sim::GpuConfig::gtx480();
  config.scheme = kSchemes[2].scheme;
  RunOptions options;
  options.max_tiles_per_layer = kTiles;
  options.selective = kSchemes[2].selective;
  options.plan.encryption_ratio = 0.5;
  const NetworkResult plain = run_network(specs, config, options);

  ASSERT_EQ(profiled.result.layers.size(), plain.layers.size());
  for (std::size_t i = 0; i < plain.layers.size(); ++i) {
    EXPECT_EQ(profiled.result.layers[i].stats.cycles,
              plain.layers[i].stats.cycles);
    EXPECT_EQ(profiled.result.layers[i].stats.warp_instructions,
              plain.layers[i].stats.warp_instructions);
    EXPECT_EQ(profiled.result.layers[i].stats.dram_read_bytes,
              plain.layers[i].stats.dram_read_bytes);
  }
}

// A capped sampler must decimate identically whether samples arrive from the
// serial or the parallel runner (decimation happens only at the shared sink).
TEST(SamplerDecimation, DeterministicAcrossJobs) {
  const auto specs = models::vgg16_specs(kInput);
  constexpr sim::Cycle kInterval = 500;
  constexpr std::size_t kCap = 16;
  const ProfiledRun serial =
      run_profiled(specs, kSchemes[3], /*jobs=*/1, kInterval, kCap);
  const ProfiledRun parallel =
      run_profiled(specs, kSchemes[3], /*jobs=*/4, kInterval, kCap);
  const auto* sa = serial.telemetry.sampler();
  const auto* sb = parallel.telemetry.sampler();
  ASSERT_NE(sa, nullptr);
  ASSERT_NE(sb, nullptr);
  EXPECT_LE(sa->samples().size(), kCap);
  EXPECT_GT(sa->stride(), 1u);  // the cap actually engaged on this run
  ASSERT_EQ(sa->samples().size(), sb->samples().size());
  for (std::size_t i = 0; i < sa->samples().size(); ++i) {
    EXPECT_EQ(sa->samples()[i].cycle, sb->samples()[i].cycle);
    EXPECT_EQ(sa->samples()[i].ipc, sb->samples()[i].ipc);
    EXPECT_EQ(sa->samples()[i].dram_util, sb->samples()[i].dram_util);
    EXPECT_EQ(sa->samples()[i].aes_util, sb->samples()[i].aes_util);
    EXPECT_EQ(sa->samples()[i].dram_bytes, sb->samples()[i].dram_bytes);
    EXPECT_EQ(sa->samples()[i].window_waiters, sb->samples()[i].window_waiters);
    EXPECT_EQ(sa->samples()[i].barrier_waiters,
              sb->samples()[i].barrier_waiters);
  }
}

// Guard: the instrumented-but-disabled path (profiler pointer null, one
// branch per run-loop iteration) adds at most 2% wall time over a run with
// no telemetry attached at all. Interleaved min-of-N absorbs scheduler
// noise; the whole comparison retries to keep CI deterministic.
TEST(DisabledPathOverhead, AtMostTwoPercent) {
  const auto specs = models::vgg16_specs(kInput);
  sim::GpuConfig config = sim::GpuConfig::gtx480();
  config.scheme = sim::EncryptionScheme::kCounter;
  RunOptions base;
  base.max_tiles_per_layer = kTiles;
  base.plan.encryption_ratio = 0.5;

  const auto time_run = [&](telemetry::RunTelemetry* telemetry) {
    RunOptions options = base;
    options.telemetry = telemetry;
    const auto begin = std::chrono::steady_clock::now();
    const NetworkResult result = run_network(specs, config, options);
    const auto end = std::chrono::steady_clock::now();
    EXPECT_GT(result.total_cycles(), 0.0);
    return std::chrono::duration<double>(end - begin).count();
  };

  for (int attempt = 0; attempt < 3; ++attempt) {
    double plain = 1e300;
    double disabled = 1e300;
    for (int i = 0; i < 3; ++i) {
      plain = std::min(plain, time_run(nullptr));
      // Telemetry attached, profiling off: the run loop sees the same null
      // profiler pointer plus per-layer record collection.
      telemetry::RunTelemetry telemetry{telemetry::TelemetryOptions{}};
      disabled = std::min(disabled, time_run(&telemetry));
    }
    if (disabled <= plain * 1.02) return;
  }
  ADD_FAILURE() << "instrumented-but-disabled path exceeds 2% overhead";
}

}  // namespace
}  // namespace sealdl::workload
