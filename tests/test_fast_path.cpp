// Golden equivalence suite for the simulator's event-skipping fast path.
//
// The fast run loop (skip provably-no-op SM ticks, batch-advance
// state-constant idle spans) must be *bitwise*-identical to the naive
// reference loop kept behind --no-fast-path / RunOptions::fast_path=false:
// per-layer stats, the metrics registry document, the cycle-attribution
// profile document, the taint ledger digest, and the whole-network cycle
// checksum, across three networks x five schemes x two encryption ratios.
//
// Deliberately NOT compared: the interval-sampler time series. The sampler
// records at *visited* cycles, and the two loops visit different cycle sets
// (that is the entire point of the fast path), so these suites run with the
// sampler disabled — the one observable the contract excludes (see
// GpuSimulator::set_fast_path).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "models/layer_spec.hpp"
#include "telemetry/profiler.hpp"
#include "telemetry/telemetry.hpp"
#include "util/json.hpp"
#include "verify/profile_checkers.hpp"
#include "verify/taint.hpp"
#include "workload/network_runner.hpp"

namespace sealdl::workload {
namespace {

// Small but complete: every layer of every network simulates (capped tiles),
// so both loops cover CONV/POOL/FC, all launch staggers, and the memory-bound
// phases where the fast path actually jumps.
constexpr int kInput = 32;
constexpr std::uint64_t kTiles = 16;

std::vector<models::LayerSpec> specs_for(const std::string& net) {
  if (net == "vgg16") return models::vgg16_specs(kInput);
  if (net == "resnet18") return models::resnet18_specs(kInput);
  return models::resnet34_specs(kInput);
}

struct SchemeCase {
  const char* name;
  sim::EncryptionScheme scheme;
  bool selective;
};

constexpr SchemeCase kSchemes[] = {
    {"baseline", sim::EncryptionScheme::kNone, false},
    {"direct", sim::EncryptionScheme::kDirect, false},
    {"counter", sim::EncryptionScheme::kCounter, false},
    {"seal_d", sim::EncryptionScheme::kDirect, true},
    {"seal_c", sim::EncryptionScheme::kCounter, true},
};

struct PathRun {
  NetworkResult result;
  std::unique_ptr<telemetry::RunTelemetry> telemetry;
  std::unique_ptr<verify::AnalysisInput> input;  ///< stable for the auditor
  std::unique_ptr<verify::TaintAuditor> auditor;
};

PathRun run_path(const std::vector<models::LayerSpec>& specs,
                 const SchemeCase& scheme, double ratio, bool fast_path) {
  sim::GpuConfig config = sim::GpuConfig::gtx480();
  config.scheme = scheme.scheme;

  PathRun run;
  // Sampler off (interval 0): the series is the one artifact the fast-path
  // contract does not cover. Profiling on: span-merge arithmetic differs
  // between the loops, so the profile is the sharpest equivalence probe.
  run.telemetry = std::make_unique<telemetry::RunTelemetry>(
      telemetry::TelemetryOptions{/*sample_interval=*/0, /*max_samples=*/0,
                                  /*profile=*/true});
  verify::BuildOptions build;
  build.plan.encryption_ratio = ratio;
  build.selective = scheme.selective;
  run.input = std::make_unique<verify::AnalysisInput>(
      verify::build_input(specs, build));
  run.auditor = std::make_unique<verify::TaintAuditor>(run.input.get());

  RunOptions options;
  options.max_tiles_per_layer = kTiles;
  options.selective = scheme.selective;
  options.plan.encryption_ratio = ratio;
  options.telemetry = run.telemetry.get();
  options.probe_hook = run.auditor.get();
  options.fast_path = fast_path;
  run.result = run_network(specs, config, options);
  return run;
}

std::string registry_json(const telemetry::RunTelemetry& telemetry) {
  util::JsonWriter json;
  telemetry.registry().write_json(json);
  return json.str();
}

void expect_stats_identical(const sim::SimStats& a, const sim::SimStats& b) {
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.warp_instructions, b.warp_instructions);
  EXPECT_EQ(a.thread_instructions, b.thread_instructions);
  EXPECT_EQ(a.l2_hits, b.l2_hits);
  EXPECT_EQ(a.l2_misses, b.l2_misses);
  EXPECT_EQ(a.dram_read_bytes, b.dram_read_bytes);
  EXPECT_EQ(a.dram_write_bytes, b.dram_write_bytes);
  EXPECT_EQ(a.encrypted_bytes, b.encrypted_bytes);
  EXPECT_EQ(a.bypassed_bytes, b.bypassed_bytes);
  EXPECT_EQ(a.aes_busy_cycles, b.aes_busy_cycles);  // exact ==, no tolerance
  EXPECT_EQ(a.dram_busy_cycles, b.dram_busy_cycles);
  EXPECT_EQ(a.counter_hits, b.counter_hits);
  EXPECT_EQ(a.counter_misses, b.counter_misses);
  EXPECT_EQ(a.counter_traffic_bytes, b.counter_traffic_bytes);
}

class FastPathEquivalence
    : public ::testing::TestWithParam<
          std::tuple<const char*, std::size_t, double>> {};

TEST_P(FastPathEquivalence, FastLoopMatchesNaiveLoopBitwise) {
  const auto& [net, scheme_idx, ratio] = GetParam();
  const SchemeCase& scheme = kSchemes[scheme_idx];
  const auto specs = specs_for(net);

  const PathRun fast = run_path(specs, scheme, ratio, /*fast_path=*/true);
  const PathRun slow = run_path(specs, scheme, ratio, /*fast_path=*/false);

  // Cycle checksum and per-layer stats, field for field.
  ASSERT_EQ(fast.result.layers.size(), slow.result.layers.size());
  for (std::size_t i = 0; i < fast.result.layers.size(); ++i) {
    EXPECT_EQ(fast.result.layers[i].name, slow.result.layers[i].name);
    EXPECT_EQ(fast.result.layers[i].scale, slow.result.layers[i].scale);
    expect_stats_identical(fast.result.layers[i].stats,
                           slow.result.layers[i].stats);
  }
  EXPECT_EQ(fast.result.total_cycles(), slow.result.total_cycles());

  // Metrics registry and cycle profile: byte-exact serialized documents.
  EXPECT_EQ(registry_json(*fast.telemetry), registry_json(*slow.telemetry));
  EXPECT_EQ(telemetry::cycle_profile_json(fast.telemetry->profile()),
            telemetry::cycle_profile_json(slow.telemetry->profile()));

  // Bus traffic: the taint ledgers digest identically — the loops put the
  // same bytes on the bus in the same per-layer order.
  EXPECT_EQ(fast.auditor->ledger().digest(), slow.auditor->ledger().digest());
  EXPECT_EQ(fast.auditor->ledger().total_bytes(),
            slow.auditor->ledger().total_bytes());

  // And the fast-path profile conserves every cycle (profile.* rules).
  const verify::Report report =
      verify::run_profile_check(fast.telemetry->profile());
  EXPECT_EQ(report.error_count(), 0u) << report.to_text();
}

INSTANTIATE_TEST_SUITE_P(
    NetworksSchemesRatios, FastPathEquivalence,
    ::testing::Combine(::testing::Values("vgg16", "resnet18", "resnet34"),
                       ::testing::Range<std::size_t>(0, 5),
                       ::testing::Values(0.25, 0.75)),
    [](const ::testing::TestParamInfo<FastPathEquivalence::ParamType>& info) {
      const double ratio = std::get<2>(info.param);
      return std::string(std::get<0>(info.param)) + "_" +
             kSchemes[std::get<1>(info.param)].name + "_" +
             (ratio == 0.25 ? "ratio025" : "ratio075");
    });

}  // namespace
}  // namespace sealdl::workload
