// Byte-provenance taint analysis: ledger semantics, SecureMap provenance
// queries, the functional secure.* audit across all five schemes, seeded
// secure-* injections, and jobs-invariance of a live timing-run ledger.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <vector>

#include "crypto/modes.hpp"
#include "models/layer_spec.hpp"
#include "sim/gpu_config.hpp"
#include "sim/secure_map.hpp"
#include "verify/analysis.hpp"
#include "verify/secure_checkers.hpp"
#include "verify/taint.hpp"
#include "workload/network_runner.hpp"

namespace sealdl::verify {
namespace {

constexpr int kInputHw = 64;
constexpr std::uint64_t kLine = crypto::kLineBytes;

AnalysisInput small_input(Injection inject = Injection::kNone,
                          bool selective = true, double ratio = 0.5) {
  BuildOptions options;
  options.selective = selective;
  options.plan.encryption_ratio = ratio;
  options.inject = inject;
  return build_input(models::vgg16_specs(kInputHw), options);
}

// ---------------------------------------------------------------- ledger ---

TEST(TaintLedger, RecordsPerLinePerDirection) {
  TaintLedger ledger;
  ledger.record(0x1000, 128, false, TaintClass::kWeightCipher);
  ledger.record(0x1000, 128, false, TaintClass::kWeightCipher);
  ledger.record(0x1000, 64, true, TaintClass::kWeightPlain);
  ledger.record(0x2000, 128, true, TaintClass::kCounterMeta);

  ASSERT_EQ(ledger.lines().size(), 2u);
  const TaintCounts& line = ledger.lines().at(0x1000);
  EXPECT_EQ(line.read[static_cast<int>(TaintClass::kWeightCipher)], 256u);
  EXPECT_EQ(line.write[static_cast<int>(TaintClass::kWeightPlain)], 64u);
  EXPECT_EQ(ledger.class_bytes(TaintClass::kCounterMeta), 128u);
  EXPECT_EQ(ledger.total_bytes(), 256u + 64u + 128u);
}

TEST(TaintLedger, MergePreservesTotalsAndDigest) {
  TaintLedger a, b, whole;
  a.record(0x1000, 128, false, TaintClass::kFmapPlain);
  b.record(0x1000, 128, false, TaintClass::kFmapPlain);
  b.record(0x3000, 128, true, TaintClass::kFmapCipher);
  whole.record(0x1000, 128, false, TaintClass::kFmapPlain);
  whole.record(0x1000, 128, false, TaintClass::kFmapPlain);
  whole.record(0x3000, 128, true, TaintClass::kFmapCipher);

  a.merge_from(b);
  EXPECT_EQ(a.total_bytes(), whole.total_bytes());
  EXPECT_EQ(a.digest(), whole.digest());
}

TEST(TaintLedger, DigestDiscriminatesClassAndDirection) {
  TaintLedger a, b, c;
  a.record(0x1000, 128, false, TaintClass::kWeightPlain);
  b.record(0x1000, 128, false, TaintClass::kWeightCipher);
  c.record(0x1000, 128, true, TaintClass::kWeightPlain);
  EXPECT_NE(a.digest(), b.digest());
  EXPECT_NE(a.digest(), c.digest());
}

// ---------------------------------------- SecureMap provenance edge cases ---

TEST(SecureMapProvenance, OverlappingMarksCoalesce) {
  sim::SecureMap map;
  map.add_range(0x1000, 256);
  map.add_range(0x1080, 256);  // overlaps the tail of the first range
  map.add_range(0x1180, 128);  // adjacent to the merged range
  EXPECT_EQ(map.range_count(), 1u);
  EXPECT_EQ(map.secure_bytes(), 0x200u);
  EXPECT_EQ(map.secure_bytes_in(0x1000, 0x200), 0x200u);
}

TEST(SecureMapProvenance, RemoveSplitsRange) {
  sim::SecureMap map;
  map.add_range(0x1000, 0x400);
  map.remove_range(0x1100, 0x100);  // punch a hole in the middle
  EXPECT_EQ(map.range_count(), 2u);
  EXPECT_EQ(map.secure_bytes(), 0x300u);
  EXPECT_TRUE(map.is_secure(0x10ff));
  EXPECT_FALSE(map.is_secure(0x1100));
  EXPECT_FALSE(map.is_secure(0x11ff));
  EXPECT_TRUE(map.is_secure(0x1200));
}

TEST(SecureMapProvenance, VisitAscendingOrder) {
  sim::SecureMap map;
  map.add_range(0x9000, 128);
  map.add_range(0x1000, 128);
  map.add_range(0x5000, 128);
  std::vector<sim::Addr> begins;
  map.visit([&begins](sim::Addr begin, sim::Addr) { begins.push_back(begin); });
  ASSERT_EQ(begins.size(), 3u);
  EXPECT_TRUE(begins[0] < begins[1] && begins[1] < begins[2]);
}

TEST(SecureMapProvenance, SecureBytesInAtLineBoundaries) {
  sim::SecureMap map;
  // A range covering half of one 128B line and all of the next.
  map.add_range(0x1000 + kLine / 2, kLine / 2 + kLine);

  // Line 0x1000 straddles the range start: line-granular lookup says secure,
  // the byte-granular provenance query reports exactly the covered half.
  EXPECT_TRUE(map.line_is_secure(0x1000, static_cast<int>(kLine)));
  EXPECT_EQ(map.secure_bytes_in(0x1000, kLine), kLine / 2);
  EXPECT_EQ(map.secure_bytes_in(0x1000 + kLine, kLine), kLine);
  EXPECT_EQ(map.secure_bytes_in(0x1000 + 2 * kLine, kLine), 0u);
  // Zero-size and empty-map queries are well-defined.
  EXPECT_EQ(map.secure_bytes_in(0x1000, 0), 0u);
  EXPECT_EQ(sim::SecureMap{}.secure_bytes_in(0, ~0ull), 0u);
}

// ------------------------------------------------------- functional audit ---

TEST(SecureAudit, AllSchemesCleanOnUnmodifiedPlan) {
  for (const double ratio : {0.4, 0.5}) {
    const AnalysisInput input = small_input(Injection::kNone, true, ratio);
    Report report;
    run_secure_audit(input, SecureAuditOptions{}, report);  // all five schemes
    EXPECT_EQ(report.error_count(), 0u)
        << "ratio " << ratio << "\n"
        << report.to_text();
  }
}

TEST(SecureAudit, BaselineInputAuditsWithoutPlan) {
  const AnalysisInput input = small_input(Injection::kNone, false);
  Report report;
  run_secure_audit(input, SecureAuditOptions{}, report);
  EXPECT_EQ(report.error_count(), 0u) << report.to_text();
}

TEST(SecureAudit, EverySecureInjectionFires) {
  for (const Injection injection :
       {Injection::kSecureLeak, Injection::kSecureBoundary,
        Injection::kSecureCounter, Injection::kSecureOracle}) {
    ASSERT_TRUE(is_secure_injection(injection));
    const AnalysisInput input = small_input(injection);
    SecureAuditOptions audit;
    audit.schemes = audit_schemes_for(injection);
    Report report;
    run_secure_audit(input, audit, report);
    for (const std::string& rule : expected_rules(injection)) {
      EXPECT_TRUE(report.fired(rule))
          << injection_name(injection) << " did not fire " << rule << "\n"
          << report.to_text();
    }
  }
}

// ------------------------------------------------------- timing-run audit ---

workload::NetworkResult timed_run(const AnalysisInput& input,
                                  sim::EncryptionScheme scheme, bool selective,
                                  int jobs, TaintAuditor& auditor) {
  sim::GpuConfig config = sim::GpuConfig::gtx480();
  config.scheme = scheme;
  config.selective = selective;
  workload::RunOptions options;
  options.max_tiles_per_layer = 8;
  options.selective = selective;
  options.plan = input.plan_options;
  options.jobs = jobs;
  options.probe_hook = &auditor;
  return workload::run_network(input.specs, config, options);
}

TEST(TaintAuditor, TimingLedgerJobsInvariantAndClean) {
  const AnalysisInput input = small_input();
  TaintAuditor serial(&input);
  TaintAuditor threaded(&input);
  const auto result =
      timed_run(input, sim::EncryptionScheme::kCounter, true, 1, serial);
  timed_run(input, sim::EncryptionScheme::kCounter, true, 4, threaded);

  EXPECT_GT(serial.ledger().total_bytes(), 0u);
  EXPECT_EQ(serial.ledger().digest(), threaded.ledger().digest());
  EXPECT_EQ(serial.ledger().lines().size(), threaded.ledger().lines().size());

  std::uint64_t counter_bytes = 0;
  for (const auto& layer : result.layers) {
    counter_bytes += layer.stats.counter_traffic_bytes;
  }
  const Report report =
      serial.check(sim::EncryptionScheme::kCounter, true, counter_bytes);
  EXPECT_EQ(report.error_count(), 0u) << report.to_text();
}

TEST(TaintAuditor, BaselineTimingRunShowsFullVisibility) {
  const AnalysisInput input = small_input(Injection::kNone, false);
  TaintAuditor auditor(&input);
  timed_run(input, sim::EncryptionScheme::kNone, false, 1, auditor);

  const TaintLedger& ledger = auditor.ledger();
  EXPECT_GT(ledger.total_bytes(), 0u);
  // Baseline puts every byte on the wire in the clear: no ciphertext classes.
  EXPECT_EQ(ledger.class_bytes(TaintClass::kWeightCipher), 0u);
  EXPECT_EQ(ledger.class_bytes(TaintClass::kFmapCipher), 0u);
  EXPECT_EQ(ledger.class_bytes(TaintClass::kCounterMeta), 0u);
  const Report report = auditor.check(sim::EncryptionScheme::kNone, false, 0);
  EXPECT_EQ(report.error_count(), 0u) << report.to_text();
}

}  // namespace
}  // namespace sealdl::verify
