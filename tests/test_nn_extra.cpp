// Additional NN-framework behaviour: init statistics, BN state cloning,
// trainer details, error paths.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "nn/basic_layers.hpp"
#include "nn/conv2d.hpp"
#include "nn/dataset.hpp"
#include "nn/loss.hpp"
#include "nn/network.hpp"
#include "nn/optim.hpp"
#include "nn/serialize.hpp"
#include "nn/trainer.hpp"

namespace sealdl::nn {
namespace {

TEST(Init, ConvHeInitMatchesTargetVariance) {
  util::Rng rng(77);
  Conv2d conv(64, 64, 3, 1, 1, false, rng);
  double sum = 0, sum_sq = 0;
  const auto n = conv.weight().value.numel();
  for (std::size_t i = 0; i < n; ++i) {
    sum += conv.weight().value[i];
    sum_sq += static_cast<double>(conv.weight().value[i]) * conv.weight().value[i];
  }
  const double mean = sum / static_cast<double>(n);
  const double var = sum_sq / static_cast<double>(n) - mean * mean;
  // He: var = 2 / fan_in = 2 / (64*9).
  EXPECT_NEAR(mean, 0.0, 0.001);
  EXPECT_NEAR(var, 2.0 / (64.0 * 9.0), 2.0 / (64.0 * 9.0) * 0.1);
}

TEST(BatchNorm, CopyParamsCarriesRunningStatistics) {
  BatchNorm2d a(2), b(2);
  Tensor x({4, 2, 2, 2});
  util::Rng rng(3);
  for (std::size_t i = 0; i < x.numel(); ++i) x[i] = rng.normal(3.0f, 2.0f);
  for (int step = 0; step < 20; ++step) a.forward(x, /*train=*/true);

  // Wrap in Sequentials so copy_params exercises the leaf walk.
  Sequential sa, sb;
  sa.add(std::make_unique<BatchNorm2d>(std::move(a)));
  sb.add(std::make_unique<BatchNorm2d>(std::move(b)));
  copy_params(sa, sb);

  // Eval-mode outputs must now match on fresh data.
  Tensor probe({2, 2, 2, 2});
  for (std::size_t i = 0; i < probe.numel(); ++i) probe[i] = rng.normal(3.0f, 2.0f);
  const Tensor ya = sa.forward(probe, false);
  const Tensor yb = sb.forward(probe, false);
  for (std::size_t i = 0; i < ya.numel(); ++i) EXPECT_FLOAT_EQ(ya[i], yb[i]);
}

TEST(BatchNorm, WithoutStatsCopyEvalOutputsDiffer) {
  // The negative control for the test above: parameter-only cloning leaves
  // blank running stats and a visibly different normalization.
  BatchNorm2d a(1), b(1);
  Tensor x({8, 1, 2, 2});
  for (std::size_t i = 0; i < x.numel(); ++i) x[i] = 5.0f + static_cast<float>(i % 3);
  for (int step = 0; step < 20; ++step) a.forward(x, true);
  const Tensor ya = a.forward(x, false);
  const Tensor yb = b.forward(x, false);
  double diff = 0;
  for (std::size_t i = 0; i < ya.numel(); ++i) diff += std::abs(ya[i] - yb[i]);
  EXPECT_GT(diff, 1.0);
}

TEST(Trainer, LrDecayShrinksStepSizes) {
  // Same data, two schedules: strong decay must end with weights closer to
  // the first-epoch trajectory (smaller total movement after epoch 1).
  DatasetConfig config;
  config.height = config.width = 8;
  config.samples = 120;
  SyntheticDataset data(config);
  auto make = [] {
    util::Rng rng(9);
    auto net = std::make_unique<Sequential>();
    net->add(std::make_unique<Flatten>());
    net->add(std::make_unique<Linear>(3 * 8 * 8, 10, true, rng));
    return net;
  };
  auto run = [&](float decay) {
    auto net = make();
    TrainOptions options;
    options.epochs = 1;
    options.sgd.lr = 0.05f;
    std::vector<int> idx(100);
    for (int i = 0; i < 100; ++i) idx[static_cast<std::size_t>(i)] = i;
    train(*net, data, idx, {}, options);
    const auto snapshot = serialize_params(*net);
    options.epochs = 3;
    options.sgd.lr = 0.05f * decay;  // emulate post-decay continuation
    train(*net, data, idx, {}, options);
    const auto after = serialize_params(*net);
    double moved = 0;
    const auto* a = reinterpret_cast<const float*>(snapshot.data());
    const auto* b = reinterpret_cast<const float*>(after.data());
    for (std::size_t i = 0; i < snapshot.size() / 4; ++i) moved += std::abs(a[i] - b[i]);
    return moved;
  };
  EXPECT_LT(run(0.1f), run(1.0f));
}

TEST(Trainer, MismatchedLabelsThrow) {
  DatasetConfig config;
  config.height = config.width = 8;
  config.samples = 20;
  SyntheticDataset data(config);
  util::Rng rng(1);
  Sequential net;
  net.add(std::make_unique<Flatten>());
  net.add(std::make_unique<Linear>(3 * 8 * 8, 10, true, rng));
  TrainOptions options;
  EXPECT_THROW(train(net, data, {0, 1, 2}, {0, 1}, options), std::invalid_argument);
  EXPECT_THROW(evaluate_with_labels(net, data, {0, 1}, {0}), std::invalid_argument);
}

TEST(Loss, RejectsOutOfRangeLabels) {
  Tensor logits({1, 4});
  EXPECT_THROW(softmax_cross_entropy(logits, {4}), std::invalid_argument);
  EXPECT_THROW(softmax_cross_entropy(logits, {-1}), std::invalid_argument);
}

TEST(Tensor, AddMismatchThrows) {
  Tensor a({2, 2}), b({3, 3});
  EXPECT_THROW(a.add_(b), std::invalid_argument);
}

TEST(Sgd, ZeroGradClearsAllParams) {
  Param p1("a", Tensor({1, 2}, {1, 2}));
  Param p2("b", Tensor({1, 1}, {3}));
  p1.grad[0] = 5;
  p2.grad[0] = 7;
  SgdOptimizer opt({&p1, &p2}, {});
  opt.zero_grad();
  EXPECT_FLOAT_EQ(p1.grad[0], 0.0f);
  EXPECT_FLOAT_EQ(p2.grad[0], 0.0f);
}

TEST(Dataset, BatchLabelsParallelToBatch) {
  DatasetConfig config;
  config.height = config.width = 8;
  config.samples = 30;
  SyntheticDataset data(config);
  const std::vector<int> idx{3, 17, 25};
  const auto labels = data.batch_labels(idx);
  ASSERT_EQ(labels.size(), 3u);
  for (std::size_t i = 0; i < idx.size(); ++i) {
    EXPECT_EQ(labels[i], data.label(idx[i]));
  }
  EXPECT_THROW(data.batch({999}), std::out_of_range);
}

TEST(Dataset, ContrastJitterWidensSampleSpread) {
  DatasetConfig low;
  low.height = low.width = 8;
  low.samples = 200;
  low.noise_stddev = 0.0f;
  low.max_shift = 0;
  low.contrast_jitter = 0.0f;
  DatasetConfig high = low;
  high.contrast_jitter = 0.5f;
  SyntheticDataset a(low), b(high);
  // Per-class pixel variance across samples is larger with jitter.
  auto spread = [](const SyntheticDataset& data) {
    double var = 0;
    for (int s = 0; s < 10; ++s) {  // 10 samples of class 0: indices 0,10,..
      const auto x = data.batch({s * 10});
      var += static_cast<double>(x[0]) * x[0];
    }
    return var;
  };
  // With zero jitter+noise+shift, class-0 samples are identical.
  const auto x0 = a.batch({0});
  const auto x1 = a.batch({10});
  for (std::size_t i = 0; i < x0.numel(); ++i) EXPECT_FLOAT_EQ(x0[i], x1[i]);
  const auto y0 = b.batch({0});
  const auto y1 = b.batch({10});
  bool differ = false;
  for (std::size_t i = 0; i < y0.numel(); ++i) differ |= y0[i] != y1[i];
  EXPECT_TRUE(differ);
  (void)spread;
}

TEST(Network, SequentialRejectsNullLayer) {
  Sequential net;
  EXPECT_THROW(net.add(nullptr), std::invalid_argument);
}

TEST(Network, ResidualRejectsShapeMismatch) {
  util::Rng rng(2);
  auto main_path = std::make_unique<Sequential>();
  main_path->add(std::make_unique<Conv2d>(2, 4, 3, 1, 1, false, rng));  // 2ch->4ch
  ResidualBlock block(std::move(main_path), nullptr);                   // identity skip
  Tensor x({1, 2, 4, 4});
  EXPECT_THROW(block.forward(x, false), std::invalid_argument);
}

}  // namespace
}  // namespace sealdl::nn
