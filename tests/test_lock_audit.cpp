// Runtime lock-order auditor (util/lock_audit.hpp): the acquisition-order
// graph, cycle and cv-hold detection, thread-confinement sentinels, and the
// conversion into verify's standard diagnostic stream. Everything here is
// deterministic — findings come from the *order graph*, not from winning a
// race, so a cycle is reported even when the threads never interleave into
// an actual deadlock.
#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "util/lock_audit.hpp"
#include "util/thread_pool.hpp"
#include "verify/concurrency.hpp"

namespace {

using sealdl::util::AccessGuard;
using sealdl::util::AccessSentinel;
using sealdl::util::CondVar;
using sealdl::util::LockAuditor;
using sealdl::util::LockFinding;
using sealdl::util::Mutex;
using sealdl::util::MutexLock;

std::size_t count_rule(const std::vector<LockFinding>& findings,
                       const std::string& rule) {
  std::size_t n = 0;
  for (const LockFinding& finding : findings) {
    if (finding.rule == rule) ++n;
  }
  return n;
}

// The auditor is process-global; each test starts it clean and enabled and
// leaves it clean for whoever runs next in this binary.
class LockAuditTest : public ::testing::Test {
 protected:
  void SetUp() override {
    LockAuditor::instance().reset();
    LockAuditor::instance().set_enabled(true);
  }
  void TearDown() override {
    LockAuditor::instance().reset();
    LockAuditor::instance().set_enabled(true);
  }
};

TEST_F(LockAuditTest, CleanOrderingStaysSilent) {
  Mutex a("audit.A");
  Mutex b("audit.B");
  auto locker = [&] {
    MutexLock la(a);
    MutexLock lb(b);
  };
  std::thread t1(locker);
  t1.join();
  std::thread t2(locker);
  t2.join();
  locker();

  LockAuditor& audit = LockAuditor::instance();
  EXPECT_EQ(audit.finding_count(), 0u);
  // The consistent A-before-B order was still observed and recorded.
  EXPECT_GE(audit.edge_count(), 1u);
}

TEST_F(LockAuditTest, CycleDetected) {
  Mutex a("audit.A");
  Mutex b("audit.B");
  // Sequential threads, so no actual deadlock ever happens — the inverted
  // order alone must trip the detector.
  std::thread t1([&] {
    MutexLock la(a);
    MutexLock lb(b);
  });
  t1.join();
  std::thread t2([&] {
    MutexLock lb(b);
    MutexLock la(a);
  });
  t2.join();

  const auto findings = LockAuditor::instance().findings();
  EXPECT_EQ(count_rule(findings, "lock.cycle"), 1u);
  EXPECT_TRUE(sealdl::verify::lock_audit_report().fired("lock.cycle"));
  EXPECT_GT(sealdl::verify::lock_audit_report().error_count(), 0u);
}

TEST_F(LockAuditTest, CycleReportedOncePerEdgePair) {
  Mutex a("audit.A");
  Mutex b("audit.B");
  for (int i = 0; i < 3; ++i) {
    std::thread t1([&] {
      MutexLock la(a);
      MutexLock lb(b);
    });
    t1.join();
    std::thread t2([&] {
      MutexLock lb(b);
      MutexLock la(a);
    });
    t2.join();
  }
  EXPECT_EQ(count_rule(LockAuditor::instance().findings(), "lock.cycle"), 1u);
}

TEST_F(LockAuditTest, CvWaitWhileHoldingSecondLockDetected) {
  Mutex outer("audit.outer");
  Mutex inner("audit.inner");
  CondVar cv;
  {
    MutexLock lo(outer);
    MutexLock li(inner);
    // Times out immediately; the finding is about *entering* the wait while
    // audit.outer is held, not about anyone signalling.
    cv.wait_for(inner, std::chrono::milliseconds(1));
  }
  const auto findings = LockAuditor::instance().findings();
  ASSERT_EQ(count_rule(findings, "lock.cv-hold"), 1u);
  for (const LockFinding& finding : findings) {
    if (finding.rule == "lock.cv-hold") {
      EXPECT_NE(finding.message.find("audit.outer"), std::string::npos);
    }
  }
}

TEST_F(LockAuditTest, CvWaitAloneStaysSilent) {
  Mutex mu("audit.lone");
  CondVar cv;
  {
    MutexLock lock(mu);
    cv.wait_for(mu, std::chrono::milliseconds(1));
  }
  EXPECT_EQ(LockAuditor::instance().finding_count(), 0u);
}

TEST_F(LockAuditTest, DisabledAuditorRecordsNothing) {
  LockAuditor::instance().set_enabled(false);
  Mutex a("audit.A");
  Mutex b("audit.B");
  {
    MutexLock la(a);
    MutexLock lb(b);
  }
  {
    MutexLock lb(b);
    MutexLock la(a);
  }
  EXPECT_EQ(LockAuditor::instance().edge_count(), 0u);
  EXPECT_EQ(LockAuditor::instance().finding_count(), 0u);
}

TEST_F(LockAuditTest, BuildDefaultMatchesCompileTimeKnob) {
#if SEALDL_TEST_EXPECT_AUDIT_DEFAULT
  EXPECT_TRUE(LockAuditor::build_default());
#else
  EXPECT_FALSE(LockAuditor::build_default());
#endif
}

// The production pool under audit: the worker's cv-wait holds only the
// pool's own mutex, and submit/worker acquisitions are single-capability, so
// a busy pool must produce zero findings.
TEST_F(LockAuditTest, ThreadPoolUnderAuditStaysClean) {
  {
    sealdl::util::ThreadPool pool(3);
    std::atomic<int> ran{0};
    std::vector<std::future<void>> futures;
    futures.reserve(32);
    for (int i = 0; i < 32; ++i) {
      futures.push_back(pool.submit([&ran] { ++ran; }));
    }
    for (auto& future : futures) future.get();
    EXPECT_EQ(ran.load(), 32);
  }
  EXPECT_EQ(count_rule(LockAuditor::instance().findings(), "lock.cycle"), 0u);
  EXPECT_EQ(count_rule(LockAuditor::instance().findings(), "lock.cv-hold"),
            0u);
}

TEST_F(LockAuditTest, AccessSentinelAllowsSameThreadReentry) {
  AccessSentinel sentinel("audit.confined");
  AccessGuard outer(sentinel);
  AccessGuard inner(sentinel);
  EXPECT_EQ(LockAuditor::instance().finding_count(), 0u);
}

TEST_F(LockAuditTest, AccessSentinelDetectsConcurrentEntry) {
  AccessSentinel sentinel("audit.confined");
  AccessGuard held(sentinel);
  // Deterministic overlap: the main thread keeps the guard alive while the
  // spawned thread tries to enter the same confinement domain.
  std::thread intruder([&sentinel] { AccessGuard clash(sentinel); });
  intruder.join();
  const auto findings = LockAuditor::instance().findings();
  ASSERT_EQ(count_rule(findings, "lock.confined"), 1u);
  for (const LockFinding& finding : findings) {
    if (finding.rule == "lock.confined") {
      EXPECT_NE(finding.message.find("audit.confined"), std::string::npos);
    }
  }
}

TEST_F(LockAuditTest, ResetClearsGraphAndFindings) {
  Mutex a("audit.A");
  Mutex b("audit.B");
  {
    MutexLock la(a);
    MutexLock lb(b);
  }
  {
    MutexLock lb(b);
    MutexLock la(a);
  }
  EXPECT_GT(LockAuditor::instance().finding_count(), 0u);
  LockAuditor::instance().reset();
  EXPECT_EQ(LockAuditor::instance().finding_count(), 0u);
  EXPECT_EQ(LockAuditor::instance().edge_count(), 0u);
}

// verify::lock_audit_report maps findings onto the standard diagnostic
// stream: rule -> rule, subject -> layer column, severity error.
TEST(LockAuditReport, ConvertsFindingsToDiagnostics) {
  std::vector<LockFinding> findings;
  findings.push_back({"lock.cycle", "A -> B", "cycle via B -> A"});
  findings.push_back({"lock.cv-hold", "cv:q", "wait while holding m"});
  const sealdl::verify::Report report =
      sealdl::verify::lock_audit_report(findings);
  EXPECT_TRUE(report.fired("lock.cycle"));
  EXPECT_TRUE(report.fired("lock.cv-hold"));
  EXPECT_EQ(report.error_count(), 2u);
  const std::string text = report.to_text();
  EXPECT_NE(text.find("lock.cycle"), std::string::npos);
  EXPECT_NE(text.find("A -> B"), std::string::npos);
}

TEST(LockAuditReport, RuleCatalogIsStable) {
  const auto rules = sealdl::verify::lock_audit_rules();
  ASSERT_EQ(rules.size(), 3u);
  EXPECT_EQ(rules[0], "lock.cycle");
  EXPECT_EQ(rules[1], "lock.cv-hold");
  EXPECT_EQ(rules[2], "lock.confined");
}

}  // namespace
