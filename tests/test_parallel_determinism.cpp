// Golden harness for parallel layer-level simulation: run_network at any
// jobs level (1/2/4/8) must be *bitwise*-identical to jobs=1 — stats,
// per-layer phase records, metrics registry, cycle profile, and the sampled
// time series — across three networks, two encryption ratios, and several
// tile-chunk granularities; the shared plan/layout the parallel run
// simulates must stay sealdl-check clean; and every profiled run must pass
// the profile.* conservation rules. Also regression-tests that two runners
// executing concurrently do not perturb each other.
#include <gtest/gtest.h>

#include <future>
#include <thread>

#include "models/layer_spec.hpp"
#include "telemetry/profiler.hpp"
#include "telemetry/telemetry.hpp"
#include "util/json.hpp"
#include "verify/checker.hpp"
#include "verify/profile_checkers.hpp"
#include "workload/network_runner.hpp"

namespace sealdl::workload {
namespace {

// Small but real: every layer of each network is simulated (capped tiles),
// so the goldens cover CONV, POOL, FC, and residual topologies.
constexpr int kInput = 32;
constexpr std::uint64_t kTiles = 24;
constexpr sim::Cycle kSampleInterval = 2000;

std::vector<models::LayerSpec> specs_for(const std::string& net) {
  if (net == "vgg16") return models::vgg16_specs(kInput);
  if (net == "resnet18") return models::resnet18_specs(kInput);
  return models::resnet34_specs(kInput);
}

struct SimRun {
  NetworkResult result;
  telemetry::RunTelemetry telemetry;

  SimRun()
      : telemetry(telemetry::TelemetryOptions{kSampleInterval, /*max_samples=*/0,
                                              /*profile=*/true}) {}
};

SimRun run_with_jobs(const std::vector<models::LayerSpec>& specs, double ratio,
                     int jobs, std::uint64_t chunk_tiles = 0) {
  sim::GpuConfig config = sim::GpuConfig::gtx480();
  config.scheme = sim::EncryptionScheme::kDirect;
  RunOptions options;
  options.max_tiles_per_layer = kTiles;
  options.selective = true;
  options.plan.encryption_ratio = ratio;
  options.jobs = jobs;
  options.chunk_tiles = chunk_tiles;
  SimRun run;
  options.telemetry = &run.telemetry;
  run.result = run_network(specs, config, options);
  return run;
}

/// Every profiled run — any jobs level, any chunking — must satisfy the
/// profile.* rules: per-component buckets sum exactly to the component
/// total, and all components of a layer agree on that total.
void expect_profile_conserved(const SimRun& run) {
  ASSERT_FALSE(run.telemetry.profile().empty());
  const verify::Report report = verify::run_profile_check(run.telemetry.profile());
  EXPECT_EQ(report.error_count(), 0u) << report.to_text();
}

std::string registry_json(const telemetry::RunTelemetry& telemetry) {
  util::JsonWriter json;
  telemetry.registry().write_json(json);
  return json.str();
}

void expect_stats_identical(const sim::SimStats& a, const sim::SimStats& b) {
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.warp_instructions, b.warp_instructions);
  EXPECT_EQ(a.thread_instructions, b.thread_instructions);
  EXPECT_EQ(a.l2_hits, b.l2_hits);
  EXPECT_EQ(a.l2_misses, b.l2_misses);
  EXPECT_EQ(a.dram_read_bytes, b.dram_read_bytes);
  EXPECT_EQ(a.dram_write_bytes, b.dram_write_bytes);
  EXPECT_EQ(a.encrypted_bytes, b.encrypted_bytes);
  EXPECT_EQ(a.bypassed_bytes, b.bypassed_bytes);
  EXPECT_EQ(a.aes_busy_cycles, b.aes_busy_cycles);      // exact ==, no tolerance
  EXPECT_EQ(a.dram_busy_cycles, b.dram_busy_cycles);
  EXPECT_EQ(a.counter_hits, b.counter_hits);
  EXPECT_EQ(a.counter_misses, b.counter_misses);
  EXPECT_EQ(a.counter_traffic_bytes, b.counter_traffic_bytes);
}

void expect_runs_identical(const SimRun& serial, const SimRun& parallel) {
  ASSERT_EQ(serial.result.layers.size(), parallel.result.layers.size());
  for (std::size_t i = 0; i < serial.result.layers.size(); ++i) {
    const auto& a = serial.result.layers[i];
    const auto& b = parallel.result.layers[i];
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.scale, b.scale);
    expect_stats_identical(a.stats, b.stats);
  }
  EXPECT_EQ(serial.result.total_cycles(), parallel.result.total_cycles());
  EXPECT_EQ(serial.result.overall_ipc(), parallel.result.overall_ipc());

  // Telemetry: phase records field by field.
  const auto& la = serial.telemetry.layers();
  const auto& lb = parallel.telemetry.layers();
  ASSERT_EQ(la.size(), lb.size());
  for (std::size_t i = 0; i < la.size(); ++i) {
    EXPECT_EQ(la[i].name, lb[i].name);
    EXPECT_EQ(la[i].start_cycle, lb[i].start_cycle);
    EXPECT_EQ(la[i].sim_cycles, lb[i].sim_cycles);
    EXPECT_EQ(la[i].scale, lb[i].scale);
    EXPECT_EQ(la[i].full_cycles, lb[i].full_cycles);
    EXPECT_EQ(la[i].ipc, lb[i].ipc);
    EXPECT_EQ(la[i].thread_instructions, lb[i].thread_instructions);
    EXPECT_EQ(la[i].dram_bytes, lb[i].dram_bytes);
    EXPECT_EQ(la[i].encrypted_bytes, lb[i].encrypted_bytes);
    EXPECT_EQ(la[i].bypassed_bytes, lb[i].bypassed_bytes);
    EXPECT_EQ(la[i].encrypted_fraction, lb[i].encrypted_fraction);
    EXPECT_EQ(la[i].dram_util, lb[i].dram_util);
    EXPECT_EQ(la[i].aes_util, lb[i].aes_util);
    EXPECT_EQ(la[i].l2_hit_rate, lb[i].l2_hit_rate);
    EXPECT_EQ(la[i].bound, lb[i].bound);
  }
  EXPECT_EQ(serial.telemetry.timeline(), parallel.telemetry.timeline());

  // Metrics registry: the serialized document is the byte-exact golden.
  EXPECT_EQ(registry_json(serial.telemetry), registry_json(parallel.telemetry));

  // Cycle profile: same byte-exact-document discipline.
  EXPECT_EQ(telemetry::cycle_profile_json(serial.telemetry.profile()),
            telemetry::cycle_profile_json(parallel.telemetry.profile()));

  // Time series: identical sample count, positions, and values.
  const auto* sa = serial.telemetry.sampler();
  const auto* sb = parallel.telemetry.sampler();
  ASSERT_NE(sa, nullptr);
  ASSERT_NE(sb, nullptr);
  ASSERT_EQ(sa->samples().size(), sb->samples().size());
  for (std::size_t i = 0; i < sa->samples().size(); ++i) {
    EXPECT_EQ(sa->samples()[i].cycle, sb->samples()[i].cycle);
    EXPECT_EQ(sa->samples()[i].ipc, sb->samples()[i].ipc);
    EXPECT_EQ(sa->samples()[i].dram_util, sb->samples()[i].dram_util);
    EXPECT_EQ(sa->samples()[i].aes_util, sb->samples()[i].aes_util);
    EXPECT_EQ(sa->samples()[i].dram_bytes, sb->samples()[i].dram_bytes);
    EXPECT_EQ(sa->samples()[i].window_waiters, sb->samples()[i].window_waiters);
    EXPECT_EQ(sa->samples()[i].barrier_waiters,
              sb->samples()[i].barrier_waiters);
  }
}

void expect_check_clean(const std::vector<models::LayerSpec>& specs,
                        double ratio) {
  verify::BuildOptions options;
  options.plan.encryption_ratio = ratio;
  options.selective = true;
  const auto input = verify::build_input(specs, options);
  const auto report = verify::run_checkers(input, verify::default_checkers());
  EXPECT_EQ(report.error_count(), 0u) << report.to_text();
}

class ParallelDeterminism
    : public ::testing::TestWithParam<std::tuple<const char*, double>> {};

TEST_P(ParallelDeterminism, ParallelRunMatchesSerialBitwise) {
  const auto& [net, ratio] = GetParam();
  const auto specs = specs_for(net);
  const SimRun serial = run_with_jobs(specs, ratio, /*jobs=*/1);
  const SimRun parallel = run_with_jobs(specs, ratio, /*jobs=*/4);
  expect_runs_identical(serial, parallel);
  expect_profile_conserved(serial);
  expect_profile_conserved(parallel);
  // The shared plan/layout every layer task reads is analyzer-clean.
  expect_check_clean(specs, ratio);
}

INSTANTIATE_TEST_SUITE_P(
    NetworksAndRatios, ParallelDeterminism,
    ::testing::Combine(::testing::Values("vgg16", "resnet18", "resnet34"),
                       ::testing::Values(0.5, 1.0)),
    [](const ::testing::TestParamInfo<ParallelDeterminism::ParamType>& info) {
      const std::string ratio =
          std::get<1>(info.param) == 0.5 ? "ratio05" : "ratio10";
      return std::string(std::get<0>(info.param)) + "_" + ratio;
    });

// The full jobs ladder: every worker count produces the same bytes, not just
// the 1-vs-4 pair. Oversubscription (jobs=8 on any host) exercises the
// scheduler's interleavings hardest, which is exactly where an
// order-dependent merge would slip.
TEST(ParallelDeterminismLadder, AllJobsLevelsMatchSerial) {
  const auto specs = specs_for("vgg16");
  const SimRun serial = run_with_jobs(specs, 0.5, /*jobs=*/1);
  expect_profile_conserved(serial);
  for (const int jobs : {2, 4, 8}) {
    const SimRun parallel = run_with_jobs(specs, 0.5, jobs);
    expect_runs_identical(serial, parallel);
    expect_profile_conserved(parallel);
  }
}

// Tile-chunked work units: for a FIXED chunk size the run is bitwise
// jobs-invariant across the whole ladder — stats, registry, profile, samples
// — and the chunk-merged profile still conserves every cycle. (A chunked run
// is a different simulation than an unchunked one — caches restart cold per
// wave — so chunk sizes are only ever compared with themselves.)
class ChunkedDeterminism : public ::testing::TestWithParam<
                               std::tuple<const char*, std::uint64_t>> {};

TEST_P(ChunkedDeterminism, ChunkedRunIsJobsInvariant) {
  const auto& [net, chunk] = GetParam();
  const auto specs = specs_for(net);
  const SimRun serial = run_with_jobs(specs, 0.5, /*jobs=*/1, chunk);
  expect_profile_conserved(serial);
  for (const int jobs : {4, 8}) {
    const SimRun parallel = run_with_jobs(specs, 0.5, jobs, chunk);
    expect_runs_identical(serial, parallel);
    expect_profile_conserved(parallel);
  }
}

INSTANTIATE_TEST_SUITE_P(
    NetworksAndChunks, ChunkedDeterminism,
    ::testing::Combine(::testing::Values("vgg16", "resnet18"),
                       ::testing::Values(std::uint64_t{5}, std::uint64_t{16})),
    [](const ::testing::TestParamInfo<ChunkedDeterminism::ParamType>& info) {
      return std::string(std::get<0>(info.param)) + "_chunk" +
             std::to_string(std::get<1>(info.param));
    });

// chunk_tiles large enough to hold every tile of every layer must degenerate
// to exactly the unchunked runner — same bytes everywhere. This pins the
// "chunking off by default changes nothing" contract from the other side.
TEST(ChunkedDeterminism, OversizedChunkMatchesUnchunked) {
  const auto specs = specs_for("resnet18");
  const SimRun unchunked = run_with_jobs(specs, 0.5, /*jobs=*/2);
  const SimRun one_chunk =
      run_with_jobs(specs, 0.5, /*jobs=*/2, /*chunk_tiles=*/kTiles * 64);
  expect_runs_identical(unchunked, one_chunk);
}

// Regression: runners executing concurrently (each itself parallel) must not
// perturb each other — no hidden global RNG streams, logger buffers, or
// registry state shared between run_network calls.
TEST(ConcurrentRunners, IndependentRunsDoNotInterfere) {
  const auto vgg = models::vgg16_specs(kInput);
  const auto resnet = models::resnet18_specs(kInput);

  const SimRun vgg_alone = run_with_jobs(vgg, 0.5, /*jobs=*/2);
  const SimRun resnet_alone = run_with_jobs(resnet, 1.0, /*jobs=*/2);

  auto vgg_future = std::async(std::launch::async, [&] {
    return run_with_jobs(vgg, 0.5, /*jobs=*/2);
  });
  auto resnet_future = std::async(std::launch::async, [&] {
    return run_with_jobs(resnet, 1.0, /*jobs=*/2);
  });
  const SimRun vgg_concurrent = vgg_future.get();
  const SimRun resnet_concurrent = resnet_future.get();

  expect_runs_identical(vgg_alone, vgg_concurrent);
  expect_runs_identical(resnet_alone, resnet_concurrent);
}

}  // namespace
}  // namespace sealdl::workload
