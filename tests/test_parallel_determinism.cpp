// Golden harness for parallel layer-level simulation: run_network with
// jobs=4 must be *bitwise*-identical to jobs=1 — stats, per-layer phase
// records, metrics registry, and the sampled time series — across three
// networks and two encryption ratios, and the shared plan/layout the
// parallel run simulates must stay sealdl-check clean. Also regression-tests
// that two runners executing concurrently do not perturb each other.
#include <gtest/gtest.h>

#include <future>
#include <thread>

#include "models/layer_spec.hpp"
#include "telemetry/telemetry.hpp"
#include "util/json.hpp"
#include "verify/checker.hpp"
#include "workload/network_runner.hpp"

namespace sealdl::workload {
namespace {

// Small but real: every layer of each network is simulated (capped tiles),
// so the goldens cover CONV, POOL, FC, and residual topologies.
constexpr int kInput = 32;
constexpr std::uint64_t kTiles = 24;
constexpr sim::Cycle kSampleInterval = 2000;

std::vector<models::LayerSpec> specs_for(const std::string& net) {
  if (net == "vgg16") return models::vgg16_specs(kInput);
  if (net == "resnet18") return models::resnet18_specs(kInput);
  return models::resnet34_specs(kInput);
}

struct SimRun {
  NetworkResult result;
  telemetry::RunTelemetry telemetry;

  SimRun() : telemetry(telemetry::TelemetryOptions{kSampleInterval}) {}
};

SimRun run_with_jobs(const std::vector<models::LayerSpec>& specs, double ratio,
                  int jobs) {
  sim::GpuConfig config = sim::GpuConfig::gtx480();
  config.scheme = sim::EncryptionScheme::kDirect;
  RunOptions options;
  options.max_tiles_per_layer = kTiles;
  options.selective = true;
  options.plan.encryption_ratio = ratio;
  options.jobs = jobs;
  SimRun run;
  options.telemetry = &run.telemetry;
  run.result = run_network(specs, config, options);
  return run;
}

std::string registry_json(const telemetry::RunTelemetry& telemetry) {
  util::JsonWriter json;
  telemetry.registry().write_json(json);
  return json.str();
}

void expect_stats_identical(const sim::SimStats& a, const sim::SimStats& b) {
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.warp_instructions, b.warp_instructions);
  EXPECT_EQ(a.thread_instructions, b.thread_instructions);
  EXPECT_EQ(a.l2_hits, b.l2_hits);
  EXPECT_EQ(a.l2_misses, b.l2_misses);
  EXPECT_EQ(a.dram_read_bytes, b.dram_read_bytes);
  EXPECT_EQ(a.dram_write_bytes, b.dram_write_bytes);
  EXPECT_EQ(a.encrypted_bytes, b.encrypted_bytes);
  EXPECT_EQ(a.bypassed_bytes, b.bypassed_bytes);
  EXPECT_EQ(a.aes_busy_cycles, b.aes_busy_cycles);      // exact ==, no tolerance
  EXPECT_EQ(a.dram_busy_cycles, b.dram_busy_cycles);
  EXPECT_EQ(a.counter_hits, b.counter_hits);
  EXPECT_EQ(a.counter_misses, b.counter_misses);
  EXPECT_EQ(a.counter_traffic_bytes, b.counter_traffic_bytes);
}

void expect_runs_identical(const SimRun& serial, const SimRun& parallel) {
  ASSERT_EQ(serial.result.layers.size(), parallel.result.layers.size());
  for (std::size_t i = 0; i < serial.result.layers.size(); ++i) {
    const auto& a = serial.result.layers[i];
    const auto& b = parallel.result.layers[i];
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.scale, b.scale);
    expect_stats_identical(a.stats, b.stats);
  }
  EXPECT_EQ(serial.result.total_cycles(), parallel.result.total_cycles());
  EXPECT_EQ(serial.result.overall_ipc(), parallel.result.overall_ipc());

  // Telemetry: phase records field by field.
  const auto& la = serial.telemetry.layers();
  const auto& lb = parallel.telemetry.layers();
  ASSERT_EQ(la.size(), lb.size());
  for (std::size_t i = 0; i < la.size(); ++i) {
    EXPECT_EQ(la[i].name, lb[i].name);
    EXPECT_EQ(la[i].start_cycle, lb[i].start_cycle);
    EXPECT_EQ(la[i].sim_cycles, lb[i].sim_cycles);
    EXPECT_EQ(la[i].scale, lb[i].scale);
    EXPECT_EQ(la[i].full_cycles, lb[i].full_cycles);
    EXPECT_EQ(la[i].ipc, lb[i].ipc);
    EXPECT_EQ(la[i].thread_instructions, lb[i].thread_instructions);
    EXPECT_EQ(la[i].dram_bytes, lb[i].dram_bytes);
    EXPECT_EQ(la[i].encrypted_bytes, lb[i].encrypted_bytes);
    EXPECT_EQ(la[i].bypassed_bytes, lb[i].bypassed_bytes);
    EXPECT_EQ(la[i].encrypted_fraction, lb[i].encrypted_fraction);
    EXPECT_EQ(la[i].dram_util, lb[i].dram_util);
    EXPECT_EQ(la[i].aes_util, lb[i].aes_util);
    EXPECT_EQ(la[i].l2_hit_rate, lb[i].l2_hit_rate);
    EXPECT_EQ(la[i].bound, lb[i].bound);
  }
  EXPECT_EQ(serial.telemetry.timeline(), parallel.telemetry.timeline());

  // Metrics registry: the serialized document is the byte-exact golden.
  EXPECT_EQ(registry_json(serial.telemetry), registry_json(parallel.telemetry));

  // Time series: identical sample count, positions, and values.
  const auto* sa = serial.telemetry.sampler();
  const auto* sb = parallel.telemetry.sampler();
  ASSERT_NE(sa, nullptr);
  ASSERT_NE(sb, nullptr);
  ASSERT_EQ(sa->samples().size(), sb->samples().size());
  for (std::size_t i = 0; i < sa->samples().size(); ++i) {
    EXPECT_EQ(sa->samples()[i].cycle, sb->samples()[i].cycle);
    EXPECT_EQ(sa->samples()[i].ipc, sb->samples()[i].ipc);
    EXPECT_EQ(sa->samples()[i].dram_util, sb->samples()[i].dram_util);
    EXPECT_EQ(sa->samples()[i].aes_util, sb->samples()[i].aes_util);
    EXPECT_EQ(sa->samples()[i].dram_bytes, sb->samples()[i].dram_bytes);
    EXPECT_EQ(sa->samples()[i].window_waiters, sb->samples()[i].window_waiters);
    EXPECT_EQ(sa->samples()[i].barrier_waiters,
              sb->samples()[i].barrier_waiters);
  }
}

void expect_check_clean(const std::vector<models::LayerSpec>& specs,
                        double ratio) {
  verify::BuildOptions options;
  options.plan.encryption_ratio = ratio;
  options.selective = true;
  const auto input = verify::build_input(specs, options);
  const auto report = verify::run_checkers(input, verify::default_checkers());
  EXPECT_EQ(report.error_count(), 0u) << report.to_text();
}

class ParallelDeterminism
    : public ::testing::TestWithParam<std::tuple<const char*, double>> {};

TEST_P(ParallelDeterminism, ParallelRunMatchesSerialBitwise) {
  const auto& [net, ratio] = GetParam();
  const auto specs = specs_for(net);
  const SimRun serial = run_with_jobs(specs, ratio, /*jobs=*/1);
  const SimRun parallel = run_with_jobs(specs, ratio, /*jobs=*/4);
  expect_runs_identical(serial, parallel);
  // The shared plan/layout every layer task reads is analyzer-clean.
  expect_check_clean(specs, ratio);
}

INSTANTIATE_TEST_SUITE_P(
    NetworksAndRatios, ParallelDeterminism,
    ::testing::Combine(::testing::Values("vgg16", "resnet18", "resnet34"),
                       ::testing::Values(0.5, 1.0)),
    [](const ::testing::TestParamInfo<ParallelDeterminism::ParamType>& info) {
      const std::string ratio =
          std::get<1>(info.param) == 0.5 ? "ratio05" : "ratio10";
      return std::string(std::get<0>(info.param)) + "_" + ratio;
    });

// Regression: runners executing concurrently (each itself parallel) must not
// perturb each other — no hidden global RNG streams, logger buffers, or
// registry state shared between run_network calls.
TEST(ConcurrentRunners, IndependentRunsDoNotInterfere) {
  const auto vgg = models::vgg16_specs(kInput);
  const auto resnet = models::resnet18_specs(kInput);

  const SimRun vgg_alone = run_with_jobs(vgg, 0.5, /*jobs=*/2);
  const SimRun resnet_alone = run_with_jobs(resnet, 1.0, /*jobs=*/2);

  auto vgg_future = std::async(std::launch::async, [&] {
    return run_with_jobs(vgg, 0.5, /*jobs=*/2);
  });
  auto resnet_future = std::async(std::launch::async, [&] {
    return run_with_jobs(resnet, 1.0, /*jobs=*/2);
  });
  const SimRun vgg_concurrent = vgg_future.get();
  const SimRun resnet_concurrent = resnet_future.get();

  expect_runs_identical(vgg_alone, vgg_concurrent);
  expect_runs_identical(resnet_alone, resnet_concurrent);
}

}  // namespace
}  // namespace sealdl::workload
