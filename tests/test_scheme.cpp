// Scheme registry, SchemeModel contracts, and the scheme.* conformance
// analyzer (src/verify/scheme_checkers.*), plus the counter-cache edge cases
// the pluggable metadata path leans on.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "models/layer_spec.hpp"
#include "sim/cache.hpp"
#include "sim/mem_controller.hpp"
#include "sim/scheme_registry.hpp"
#include "verify/scheme_checkers.hpp"
#include "verify/taint.hpp"
#include "workload/network_runner.hpp"

namespace sealdl {
namespace {

// ------------------------------------------------------------- registry ---

TEST(SchemeRegistry, HoldsPaperSchemesAndRivals) {
  const auto entries = sim::scheme_registry();
  ASSERT_EQ(entries.size(), 7u);
  int paper = 0;
  for (const sim::SchemeInfo& info : entries) paper += info.paper ? 1 : 0;
  EXPECT_EQ(paper, 5);
}

TEST(SchemeRegistry, CliAndDisplayNamesResolve) {
  for (const sim::SchemeInfo& info : sim::scheme_registry()) {
    const sim::SchemeInfo* by_cli = sim::find_scheme(info.cli_name);
    ASSERT_NE(by_cli, nullptr) << info.cli_name;
    EXPECT_STREQ(by_cli->cli_name, info.cli_name);
    const sim::SchemeInfo* by_display = sim::find_scheme(info.display);
    ASSERT_NE(by_display, nullptr) << info.display;
    EXPECT_STREQ(by_display->cli_name, info.cli_name);
  }
  EXPECT_EQ(sim::find_scheme("bogus"), nullptr);
  EXPECT_EQ(sim::find_scheme(""), nullptr);
}

// Name <-> enum <-> CLI drift: every EncryptionScheme family must have a
// canonical registry entry whose display name matches scheme_name(), so the
// enum can never gain a value the shared table does not know about.
TEST(SchemeRegistry, EveryFamilyHasCanonicalEntry) {
  for (const sim::EncryptionScheme family :
       {sim::EncryptionScheme::kNone, sim::EncryptionScheme::kDirect,
        sim::EncryptionScheme::kCounter}) {
    const sim::SchemeInfo& canonical = sim::default_scheme_for(family);
    EXPECT_EQ(canonical.family, family);
    EXPECT_FALSE(canonical.selective());
    EXPECT_STREQ(canonical.display, sim::scheme_name(family));
  }
}

TEST(SchemeRegistry, ApplySchemeWiresConfig) {
  for (const sim::SchemeInfo& info : sim::scheme_registry()) {
    sim::GpuConfig config = sim::GpuConfig::gtx480();
    sim::apply_scheme(info, config);
    EXPECT_EQ(config.scheme, info.family);
    EXPECT_EQ(config.selective, info.selective());
    EXPECT_EQ(config.scheme_model, info.model);
  }
}

TEST(SchemeRegistry, StaticConformanceIsClean) {
  verify::Report report;
  verify::check_scheme_registry(sim::scheme_registry(), report);
  EXPECT_EQ(report.error_count(), 0u) << report.to_text();
}

TEST(SchemeRegistry, DuplicateNameFails) {
  const auto real = sim::scheme_registry();
  std::vector<sim::SchemeInfo> corrupted(real.begin(), real.end());
  corrupted[1].cli_name = corrupted[0].cli_name;
  verify::Report report;
  verify::check_scheme_registry(corrupted, report);
  EXPECT_TRUE(report.fired("scheme.registry"));
}

// A registry that loses an entry (a "missing entry" drift) is caught: the
// canonical family coverage breaks as soon as a family's entry disappears.
TEST(SchemeRegistry, RuleListMatchesFamilyCount) {
  const auto rules = verify::scheme_rules();
  EXPECT_EQ(rules.size(), 6u);
  const std::set<std::string> unique(rules.begin(), rules.end());
  EXPECT_EQ(unique.size(), rules.size());
  for (const std::string& rule : rules) {
    EXPECT_EQ(rule.rfind("scheme.", 0), 0u) << rule;
  }
}

// ------------------------------------------------------- timing contracts ---

TEST(SchemeTiming, EveryContractMatchesMeasuredShape) {
  for (const sim::SchemeInfo& info : sim::scheme_registry()) {
    verify::Report report;
    verify::check_scheme_timing(info, info.model->contract(), report);
    EXPECT_EQ(report.error_count(), 0u)
        << info.cli_name << ": " << report.to_text();
  }
}

TEST(SchemeTiming, FalsifiedShapeFiresForEveryEntry) {
  for (const sim::SchemeInfo& info : sim::scheme_registry()) {
    sim::SchemeContract falsified = info.model->contract();
    falsified.read_shape =
        falsified.read_shape == sim::SerializationShape::kPassthrough
            ? sim::SerializationShape::kAesAfterData
            : sim::SerializationShape::kPassthrough;
    verify::Report report;
    verify::check_scheme_timing(info, falsified, report);
    EXPECT_TRUE(report.fired("scheme.timing")) << info.cli_name;
  }
}

// Seculator packs 8x more counters per cache line than the paper's Counter
// mode, so a strided sweep that thrashes Counter's cache still hits.
TEST(SchemeTiming, SeculatorPacksMoreCountersPerLine) {
  const sim::SchemeInfo* counter = sim::find_scheme("counter");
  const sim::SchemeInfo* seculator = sim::find_scheme("seculator");
  ASSERT_NE(counter, nullptr);
  ASSERT_NE(seculator, nullptr);
  const sim::GpuConfig config = sim::GpuConfig::gtx480();
  EXPECT_EQ(seculator->model->counter_bytes_per_line(config), 1);
  EXPECT_GT(counter->model->counter_bytes_per_line(config), 1);
}

// --------------------------------------------------- run-level conformance ---

struct RunEvidence {
  verify::AnalysisInput input;
  verify::TaintLedger ledger;
  verify::SchemeRunEvidence evidence;
};

RunEvidence run_with_audit(const sim::SchemeInfo& info) {
  const auto specs = models::resnet18_specs(64);
  sim::GpuConfig config = sim::GpuConfig::gtx480();
  sim::apply_scheme(info, config);
  verify::BuildOptions build;
  build.selective = info.scope == sim::ProtectionScope::kPlanRows;
  RunEvidence out{verify::build_input(specs, build), {}, {}};
  verify::TaintAuditor auditor(&out.input);
  workload::RunOptions options;
  options.max_tiles_per_layer = 16;
  options.selective = info.selective();
  options.scope = info.scope;
  options.probe_hook = &auditor;
  const auto result = workload::run_network(specs, config, options);
  sim::SimStats total;
  for (const auto& layer : result.layers) total.merge_from(layer.stats);
  out.ledger = auditor.ledger();
  out.evidence.input = &out.input;
  out.evidence.ledger = &out.ledger;
  out.evidence.stats = total;
  out.evidence.config = config;
  return out;
}

TEST(SchemeConformance, SealCRunIsCleanAndAllInjectionsFire) {
  const sim::SchemeInfo* info = sim::find_scheme("seal-c");
  ASSERT_NE(info, nullptr);
  const RunEvidence run = run_with_audit(*info);
  const verify::Report clean =
      verify::run_scheme_conformance(*info, run.evidence);
  EXPECT_EQ(clean.error_count(), 0u) << clean.to_text();
  for (const verify::SchemeInjection injection :
       verify::all_scheme_injections()) {
    const verify::Report seeded =
        verify::run_scheme_injection(injection, *info, run.evidence);
    for (const std::string& rule :
         verify::scheme_injection_expected_rules(injection)) {
      EXPECT_TRUE(seeded.fired(rule))
          << verify::scheme_injection_name(injection) << " -> " << rule;
    }
  }
}

// GuardNN's weights-only boundary is the scope the secure.* family cannot
// express; the generic analyzer must both pass it clean and still catch a
// plaintext weight row seeded inside the protected set.
TEST(SchemeConformance, GuardNNWeightsScopeCleanAndCatchesBoundary) {
  const sim::SchemeInfo* info = sim::find_scheme("guardnn");
  ASSERT_NE(info, nullptr);
  const RunEvidence run = run_with_audit(*info);
  const verify::Report clean =
      verify::run_scheme_conformance(*info, run.evidence);
  EXPECT_EQ(clean.error_count(), 0u) << clean.to_text();
  const verify::Report seeded = verify::run_scheme_injection(
      verify::SchemeInjection::kBoundary, *info, run.evidence);
  EXPECT_TRUE(seeded.fired("scheme.boundary"));
}

TEST(SchemeConformance, InjectionNamesRoundTrip) {
  for (const verify::SchemeInjection injection :
       verify::all_scheme_injections()) {
    const auto parsed = verify::scheme_injection_from_name(
        verify::scheme_injection_name(injection));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, injection);
  }
  EXPECT_FALSE(verify::scheme_injection_from_name("scheme-bogus").has_value());
}

// ------------------------------------------------- counter-cache edges ------

// A counter cache small enough to thrash: every line maps distinct counter
// lines, so dirtying writes force eviction writebacks whose bytes must land
// in counter_writeback_bytes (and reconcile: traffic == fill + wb + flush).
TEST(CounterCacheEdges, EvictionWritebackBytesReconcile) {
  sim::GpuConfig config = sim::GpuConfig::gtx480();
  sim::apply_scheme(*sim::find_scheme("counter"), config);
  config.counter_cache_kb = 1;  // 8 lines of 128B: tiny, thrashes fast
  sim::MemoryController mc(config, nullptr);
  // Each 128B data line holds 128/8 = 16 counters per counter line; stride
  // far enough that every write touches a distinct counter line.
  const sim::Addr stride =
      static_cast<sim::Addr>(config.line_bytes) *
      static_cast<sim::Addr>(config.counters_per_line());
  sim::Cycle now = 0;
  for (int i = 0; i < 64; ++i) {
    now = mc.write_line(now, 0x1000'0000 + static_cast<sim::Addr>(i) * stride);
  }
  EXPECT_GT(mc.counter_writeback_bytes(), 0u);
  const sim::Cycle flushed = mc.flush(now);
  EXPECT_GE(flushed, now);
  EXPECT_EQ(mc.counter_traffic_bytes(),
            mc.counter_fill_bytes() + mc.counter_writeback_bytes() +
                mc.counter_flush_bytes());
  sim::SimStats stats;
  mc.accumulate(stats);
  EXPECT_EQ(stats.counter_fill_bytes,
            stats.counter_misses * static_cast<std::uint64_t>(config.line_bytes));
}

// Counter lines for data addresses just below kCounterRegionBase must not
// alias the counter lines of low addresses: the mapping is injective per
// counter line even at the region boundary.
TEST(CounterCacheEdges, NoAliasingAtCounterRegionBoundary) {
  sim::GpuConfig config = sim::GpuConfig::gtx480();
  sim::apply_scheme(*sim::find_scheme("counter"), config);
  sim::MemoryController mc(config, nullptr);
  const sim::Addr low = 0x1000;
  const sim::Addr high =
      sim::kCounterRegionBase - static_cast<sim::Addr>(config.line_bytes);
  sim::Cycle now = mc.read_line(0, low);
  now = mc.read_line(now, high);
  sim::SimStats stats;
  mc.accumulate(stats);
  // Both accesses miss: had the high address aliased the low one's counter
  // line, the second would have hit.
  EXPECT_EQ(stats.counter_misses, 2u);
  EXPECT_EQ(stats.counter_hits, 0u);
}

TEST(CounterCacheEdges, FlushAfterFlushIsIdempotent) {
  sim::GpuConfig config = sim::GpuConfig::gtx480();
  sim::apply_scheme(*sim::find_scheme("counter"), config);
  sim::MemoryController mc(config, nullptr);
  sim::Cycle now = mc.write_line(0, 0x2000);
  now = mc.write_line(now, 0x4000'2000);
  const sim::Cycle first = mc.flush(now);
  EXPECT_GT(mc.counter_flush_bytes(), 0u);
  const std::uint64_t after_first = mc.counter_flush_bytes();
  const std::uint64_t traffic_after_first = mc.counter_traffic_bytes();
  // Nothing is dirty anymore: the second flush returns `now` untouched and
  // books no further traffic.
  const sim::Cycle second = mc.flush(first);
  EXPECT_EQ(second, first);
  EXPECT_EQ(mc.counter_flush_bytes(), after_first);
  EXPECT_EQ(mc.counter_traffic_bytes(), traffic_after_first);
}

// The raw cache honors the same idempotence at its own level, and set
// aliasing keeps tags distinct for same-set addresses.
TEST(CounterCacheEdges, SetAssocCacheFlushAndAliasing) {
  sim::SetAssocCache cache(1024, 2, 128);  // 4 sets x 2 ways
  const sim::Addr same_set_stride = 4 * 128;
  EXPECT_FALSE(cache.access(0x0, /*mark_dirty=*/false).hit);
  cache.insert(0x0, /*dirty=*/true);
  EXPECT_FALSE(cache.access(same_set_stride, false).hit);
  cache.insert(same_set_stride, /*dirty=*/true);
  // Same set, distinct tags: both resident, neither evicted with 2 ways.
  EXPECT_TRUE(cache.contains(0x0));
  EXPECT_TRUE(cache.contains(same_set_stride));
  // A third same-set line evicts the LRU (0x0) and reports its dirty victim.
  const sim::CacheResult inserted = cache.insert(2 * same_set_stride, true);
  EXPECT_TRUE(inserted.writeback.has_value());
  EXPECT_EQ(*inserted.writeback, 0x0u);
  EXPECT_FALSE(cache.contains(0x0));
  const auto drained = cache.flush_dirty();
  EXPECT_EQ(drained.size(), 2u);
  EXPECT_TRUE(cache.flush_dirty().empty());  // flush after flush: no-op
}

}  // namespace
}  // namespace sealdl
