// Memory controller (+AES pipeline, counter cache) and functional memory.
#include <gtest/gtest.h>

#include "attack/bus_snooper.hpp"
#include "sim/functional_memory.hpp"
#include "sim/mem_controller.hpp"
#include "util/rng.hpp"

namespace sealdl::sim {
namespace {

GpuConfig config_with(EncryptionScheme scheme, bool selective = false) {
  GpuConfig config = GpuConfig::gtx480();
  config.scheme = scheme;
  config.selective = selective;
  return config;
}

// -------------------------------------------------------- MemoryController ---

TEST(MemController, BaselineReadIsDramOnly) {
  const GpuConfig config = config_with(EncryptionScheme::kNone);
  MemoryController mc(config, nullptr);
  // 128B at 42.24*0.65 ~= 27.46 B/cycle ~= 4.66 cycles occupancy + 120
  // latency.
  const Cycle done = mc.read_line(0, 0x1000);
  EXPECT_EQ(done, 5u + 120u);
}

TEST(MemController, DirectReadAddsAesLatencyAndOccupancy) {
  const GpuConfig config = config_with(EncryptionScheme::kDirect);
  MemoryController mc(config, nullptr);
  const Cycle baseline_done = 125;  // from the baseline test above
  const Cycle done = mc.read_line(0, 0x1000);
  // AES: 128B / 11.43 B/cyc ~= 11.2 cycles occupancy + 20 latency, serialized
  // after the DRAM return.
  EXPECT_GT(done, baseline_done + 20);
  SimStats stats;
  mc.accumulate(stats);
  EXPECT_EQ(stats.encrypted_bytes, 128u);
}

TEST(MemController, CounterHitOverlapsAesWithDram) {
  const GpuConfig config = config_with(EncryptionScheme::kCounter);
  MemoryController mc(config, nullptr);
  // Warm the counter cache with a first access (miss).
  const Cycle first = mc.read_line(0, 0x1000);
  // Second access to the same counter line: pad generation overlaps the data
  // fetch, so the read completes close to DRAM latency + AES pipe, much
  // sooner relative to its issue time than the cold access.
  const Cycle second = mc.read_line(first, 0x1000) - first;
  EXPECT_LT(second, first);
  SimStats stats;
  mc.accumulate(stats);
  EXPECT_EQ(stats.counter_hits, 1u);
  EXPECT_EQ(stats.counter_misses, 1u);
  EXPECT_GT(stats.counter_traffic_bytes, 0u);
}

TEST(MemController, CounterMissCostsExtraDramTraffic) {
  const GpuConfig config = config_with(EncryptionScheme::kCounter);
  MemoryController mc(config, nullptr);
  // Touch many distinct counter lines: every access misses.
  for (int i = 0; i < 8; ++i) {
    mc.read_line(0, static_cast<Addr>(i) * 128 * 16 * 64);
  }
  SimStats stats;
  mc.accumulate(stats);
  EXPECT_EQ(stats.counter_misses, 8u);
  EXPECT_EQ(stats.counter_traffic_bytes, 8u * 128u);
}

TEST(MemController, SelectiveBypassesUnmarkedLines) {
  SecureMap map;
  map.add_range(0x1000, 128);
  const GpuConfig config = config_with(EncryptionScheme::kDirect, /*selective=*/true);
  MemoryController mc(config, &map);
  EXPECT_TRUE(mc.needs_encryption(0x1000));
  EXPECT_FALSE(mc.needs_encryption(0x2000));
  mc.read_line(0, 0x1000);
  mc.read_line(0, 0x2000);
  SimStats stats;
  mc.accumulate(stats);
  EXPECT_EQ(stats.encrypted_bytes, 128u);
  EXPECT_EQ(stats.bypassed_bytes, 128u);
}

TEST(MemController, FullEncryptionIgnoresMap) {
  SecureMap map;  // empty: nothing marked
  const GpuConfig config = config_with(EncryptionScheme::kDirect, /*selective=*/false);
  MemoryController mc(config, &map);
  EXPECT_TRUE(mc.needs_encryption(0x9999000));
}

TEST(MemController, WritesConsumeAesBeforeDram) {
  const GpuConfig config = config_with(EncryptionScheme::kDirect);
  MemoryController mc(config, nullptr);
  const Cycle done = mc.write_line(0, 0x1000);
  GpuConfig plain = config_with(EncryptionScheme::kNone);
  MemoryController mc_plain(plain, nullptr);
  EXPECT_GT(done, mc_plain.write_line(0, 0x1000));
}

TEST(MemController, AesBandwidthThrottlesStreams) {
  // Stream 100 lines through an encrypted controller: completion should be
  // bounded by AES bandwidth (~11.43 B/cycle), not DRAM (~42.24 B/cycle).
  const GpuConfig config = config_with(EncryptionScheme::kDirect);
  MemoryController mc(config, nullptr);
  Cycle done = 0;
  for (int i = 0; i < 100; ++i) done = mc.read_line(0, static_cast<Addr>(i) * 128);
  const double aes_bound = 100.0 * 128.0 / config.aes_bytes_per_cycle();
  EXPECT_GT(static_cast<double>(done), aes_bound);

  MemoryController mc_plain(config_with(EncryptionScheme::kNone), nullptr);
  Cycle done_plain = 0;
  for (int i = 0; i < 100; ++i) {
    done_plain = mc_plain.read_line(0, static_cast<Addr>(i) * 128);
  }
  // The encrypted stream is AES-bound (11.43 B/cyc) vs the achievable DRAM
  // rate (27.46 B/cyc): ~2x wall-clock including latencies.
  EXPECT_GT(static_cast<double>(done), 1.8 * static_cast<double>(done_plain));
}

// ------------------------------------------------------- FunctionalMemory ---

crypto::Key128 test_key() {
  crypto::Key128 k{};
  for (std::size_t i = 0; i < 16; ++i) k[i] = static_cast<std::uint8_t>(i + 1);
  return k;
}

std::vector<std::uint8_t> pattern(std::size_t n, std::uint8_t seed = 1) {
  std::vector<std::uint8_t> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = static_cast<std::uint8_t>(seed + i * 3);
  return v;
}

class FunctionalMemorySchemes : public ::testing::TestWithParam<EncryptionScheme> {};

TEST_P(FunctionalMemorySchemes, ReadBackEqualsWritten) {
  FunctionalMemory memory(GetParam(), false, nullptr, test_key());
  const auto data = pattern(500);
  memory.write(0x1000, data);
  std::vector<std::uint8_t> out(500);
  memory.read(0x1000, out);
  EXPECT_EQ(out, data);
}

TEST_P(FunctionalMemorySchemes, PartialLineReadModifyWrite) {
  FunctionalMemory memory(GetParam(), false, nullptr, test_key());
  const auto base = pattern(256, 1);
  memory.write(0x1000, base);
  const auto patch = pattern(32, 99);
  memory.write(0x1050, patch);  // straddles inside a line
  std::vector<std::uint8_t> out(256);
  memory.read(0x1000, out);
  for (std::size_t i = 0; i < 256; ++i) {
    const std::uint8_t expected =
        (i >= 0x50 && i < 0x70) ? patch[i - 0x50] : base[i];
    EXPECT_EQ(out[i], expected) << "offset " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Schemes, FunctionalMemorySchemes,
                         ::testing::Values(EncryptionScheme::kNone,
                                           EncryptionScheme::kDirect,
                                           EncryptionScheme::kCounter));

TEST(FunctionalMemory, RawLineIsCiphertextWhenSecure) {
  FunctionalMemory memory(EncryptionScheme::kDirect, false, nullptr, test_key());
  const auto data = pattern(128);
  memory.write(0x2000, data);
  const auto raw = memory.raw_line(0x2000);
  EXPECT_NE(raw, data);  // DRAM holds ciphertext
  std::vector<std::uint8_t> out(128);
  memory.read(0x2000, out);
  EXPECT_EQ(out, data);
}

TEST(FunctionalMemory, RawLineIsPlaintextWhenInsecure) {
  FunctionalMemory memory(EncryptionScheme::kNone, false, nullptr, test_key());
  const auto data = pattern(128);
  memory.write(0x2000, data);
  EXPECT_EQ(memory.raw_line(0x2000), data);
}

TEST(FunctionalMemory, SelectiveEncryptsOnlyMarkedLines) {
  SecureMap map;
  map.add_range(0x3000, 128);
  FunctionalMemory memory(EncryptionScheme::kDirect, true, &map, test_key());
  const auto data = pattern(128);
  memory.write(0x3000, data);
  memory.write(0x3080, data);
  EXPECT_NE(memory.raw_line(0x3000), data);
  EXPECT_EQ(memory.raw_line(0x3080), data);
}

TEST(FunctionalMemory, CounterModeRewriteChangesWireImage) {
  FunctionalMemory memory(EncryptionScheme::kCounter, false, nullptr, test_key());
  const auto data = pattern(128);
  memory.write(0x4000, data);
  const auto image1 = memory.raw_line(0x4000);
  memory.write(0x4000, data);  // same plaintext again
  const auto image2 = memory.raw_line(0x4000);
  EXPECT_NE(image1, image2);  // fresh counter => fresh pad
  std::vector<std::uint8_t> out(128);
  memory.read(0x4000, out);
  EXPECT_EQ(out, data);
}

TEST(FunctionalMemory, ProbeSeesWireBytes) {
  FunctionalMemory memory(EncryptionScheme::kDirect, false, nullptr, test_key());
  attack::BusSnooper snooper;
  memory.set_probe(&snooper);
  const auto data = pattern(128);
  memory.write(0x5000, data);
  const auto seen = snooper.extract(0x5000, 128);
  EXPECT_EQ(seen, memory.raw_line(0x5000));
  EXPECT_NE(seen, data);
  EXPECT_TRUE(snooper.saw_ciphertext(0x5000, 128));
}

}  // namespace
}  // namespace sealdl::sim

namespace sealdl::sim {
namespace {

TEST(MemController, SplitCountersCoverMoreDataPerCacheLine) {
  // One counter line covers 16 data lines monolithic vs 128 split, so a
  // strided walk that thrashes the monolithic counter cache hits with split
  // counters.
  auto run = [](bool split) {
    GpuConfig config = GpuConfig::gtx480();
    config.scheme = EncryptionScheme::kCounter;
    config.split_counters = split;
    config.counter_cache_kb = 24;
    MemoryController mc(config, nullptr);
    for (int i = 0; i < 2000; ++i) {
      mc.read_line(0, static_cast<Addr>(i) * 128);
    }
    SimStats stats;
    mc.accumulate(stats);
    return stats;
  };
  const SimStats mono = run(false);
  const SimStats split = run(true);
  EXPECT_GT(split.counter_hit_rate(), mono.counter_hit_rate());
  EXPECT_LT(split.counter_traffic_bytes, mono.counter_traffic_bytes);
}

TEST(GpuConfigExt, CounterGeometry) {
  GpuConfig config = GpuConfig::gtx480();
  EXPECT_EQ(config.counters_per_line(), 16);
  config.split_counters = true;
  EXPECT_EQ(config.counters_per_line(), 128);
}

// ----------------------------------------- counter flush drain accounting ---

TEST(MemController, FlushReturnsDrainCycleAndReconcilesBytes) {
  const GpuConfig config = config_with(EncryptionScheme::kCounter);
  MemoryController mc(config, nullptr);
  attack::BusSnooper probe;
  mc.set_probe(&probe);

  // Dirty several distinct counter lines: stride past counters_per_line()
  // data lines so every write touches (and dirties) a fresh counter block.
  const Addr stride = static_cast<Addr>(config.line_bytes) *
                      static_cast<Addr>(config.counters_per_line());
  Cycle t = 0;
  for (int i = 0; i < 6; ++i) t = mc.write_line(t, static_cast<Addr>(i) * stride);

  SimStats before;
  mc.accumulate(before);
  const Cycle drained = mc.flush(t);
  // Dirty counters existed, so the writeback drain extends the clock.
  EXPECT_GT(drained, t);

  SimStats after;
  mc.accumulate(after);
  EXPECT_EQ(after.counter_traffic_bytes, before.counter_traffic_bytes + 6u * 128u);
  // Flushed counter lines are counter traffic, not data writes; landing them
  // in dram_write_bytes too would double-count against the probe.
  EXPECT_EQ(after.dram_write_bytes, before.dram_write_bytes);

  // Reconciliation (acceptance criterion): every byte the stats account for
  // crossed the bus exactly once, and nothing crossed unaccounted.
  EXPECT_EQ(after.dram_read_bytes + after.dram_write_bytes +
                after.counter_traffic_bytes,
            probe.bytes_on_bus());

  // A second flush with nothing left dirty neither moves time nor the bus.
  const std::uint64_t bus_before = probe.bytes_on_bus();
  EXPECT_EQ(mc.flush(drained), drained);
  EXPECT_EQ(probe.bytes_on_bus(), bus_before);
}

TEST(MemController, FlushWithoutCounterCacheIsNoOp) {
  MemoryController mc(config_with(EncryptionScheme::kDirect), nullptr);
  mc.write_line(0, 0x1000);
  EXPECT_EQ(mc.flush(500), 500u);
}

TEST(MemController, SelectiveCounterDirtyFlushIsPlaintextAndCounted) {
  // SEAL mode (selective counter): only marked lines touch counters; flushed
  // counter lines must show up in counter_traffic_bytes and cross the bus as
  // plaintext writes (counters are not secret — only the pads they seed are).
  const GpuConfig config = config_with(EncryptionScheme::kCounter, /*selective=*/true);
  const Addr stride = static_cast<Addr>(config.line_bytes) *
                      static_cast<Addr>(config.counters_per_line());
  SecureMap map;
  map.add_range(0, 4 * stride);  // secure region: first 4 counter blocks
  MemoryController mc(config, &map);
  attack::BusSnooper probe;
  mc.set_probe(&probe);

  Cycle t = 0;
  // Three secure writes, each dirtying a fresh counter line (miss + fill).
  for (int i = 0; i < 3; ++i) t = mc.write_line(t, static_cast<Addr>(i) * stride);
  // One bypassed write far outside the map: no counter access at all.
  t = mc.write_line(t, Addr{1} << 20);
  EXPECT_EQ(probe.transfers(), 4u + 3u);        // 4 data writes + 3 counter fills
  EXPECT_EQ(probe.encrypted_transfers(), 3u);   // only the secure data writes

  // Mid-run flush: the three dirty counter lines drain as plaintext writes.
  const Cycle drained = mc.flush(t);
  EXPECT_GT(drained, t);
  SimStats mid;
  mc.accumulate(mid);
  EXPECT_EQ(mid.counter_traffic_bytes, 3u * 128u + 3u * 128u);  // fills + flush
  EXPECT_EQ(probe.transfers(), 7u + 3u);
  EXPECT_EQ(probe.encrypted_transfers(), 3u);  // flush added no ciphertext
  EXPECT_EQ(mid.dram_read_bytes + mid.dram_write_bytes + mid.counter_traffic_bytes,
            probe.bytes_on_bus());

  // Flushed lines stay resident (clean): re-dirtying one is a cache hit, and
  // a final clean-exit flush drains exactly that one line.
  t = mc.write_line(drained, 0);
  const Cycle final_drain = mc.flush(t);
  EXPECT_GT(final_drain, t);
  SimStats fin;
  mc.accumulate(fin);
  EXPECT_EQ(fin.counter_hits, 1u);
  EXPECT_EQ(fin.counter_misses, 3u);
  EXPECT_EQ(fin.counter_traffic_bytes, mid.counter_traffic_bytes + 128u);
  EXPECT_EQ(probe.encrypted_transfers(), 4u);
  EXPECT_EQ(fin.dram_read_bytes + fin.dram_write_bytes + fin.counter_traffic_bytes,
            probe.bytes_on_bus());
}

}  // namespace
}  // namespace sealdl::sim
