// Memory controller (+AES pipeline, counter cache) and functional memory.
#include <gtest/gtest.h>

#include "attack/bus_snooper.hpp"
#include "sim/functional_memory.hpp"
#include "sim/mem_controller.hpp"
#include "util/rng.hpp"

namespace sealdl::sim {
namespace {

GpuConfig config_with(EncryptionScheme scheme, bool selective = false) {
  GpuConfig config = GpuConfig::gtx480();
  config.scheme = scheme;
  config.selective = selective;
  return config;
}

// -------------------------------------------------------- MemoryController ---

TEST(MemController, BaselineReadIsDramOnly) {
  const GpuConfig config = config_with(EncryptionScheme::kNone);
  MemoryController mc(config, nullptr);
  // 128B at 42.24*0.65 ~= 27.46 B/cycle ~= 4.66 cycles occupancy + 120
  // latency.
  const Cycle done = mc.read_line(0, 0x1000);
  EXPECT_EQ(done, 5u + 120u);
}

TEST(MemController, DirectReadAddsAesLatencyAndOccupancy) {
  const GpuConfig config = config_with(EncryptionScheme::kDirect);
  MemoryController mc(config, nullptr);
  const Cycle baseline_done = 125;  // from the baseline test above
  const Cycle done = mc.read_line(0, 0x1000);
  // AES: 128B / 11.43 B/cyc ~= 11.2 cycles occupancy + 20 latency, serialized
  // after the DRAM return.
  EXPECT_GT(done, baseline_done + 20);
  SimStats stats;
  mc.accumulate(stats);
  EXPECT_EQ(stats.encrypted_bytes, 128u);
}

TEST(MemController, CounterHitOverlapsAesWithDram) {
  const GpuConfig config = config_with(EncryptionScheme::kCounter);
  MemoryController mc(config, nullptr);
  // Warm the counter cache with a first access (miss).
  const Cycle first = mc.read_line(0, 0x1000);
  // Second access to the same counter line: pad generation overlaps the data
  // fetch, so the read completes close to DRAM latency + AES pipe, much
  // sooner relative to its issue time than the cold access.
  const Cycle second = mc.read_line(first, 0x1000) - first;
  EXPECT_LT(second, first);
  SimStats stats;
  mc.accumulate(stats);
  EXPECT_EQ(stats.counter_hits, 1u);
  EXPECT_EQ(stats.counter_misses, 1u);
  EXPECT_GT(stats.counter_traffic_bytes, 0u);
}

TEST(MemController, CounterMissCostsExtraDramTraffic) {
  const GpuConfig config = config_with(EncryptionScheme::kCounter);
  MemoryController mc(config, nullptr);
  // Touch many distinct counter lines: every access misses.
  for (int i = 0; i < 8; ++i) {
    mc.read_line(0, static_cast<Addr>(i) * 128 * 16 * 64);
  }
  SimStats stats;
  mc.accumulate(stats);
  EXPECT_EQ(stats.counter_misses, 8u);
  EXPECT_EQ(stats.counter_traffic_bytes, 8u * 128u);
}

TEST(MemController, SelectiveBypassesUnmarkedLines) {
  SecureMap map;
  map.add_range(0x1000, 128);
  const GpuConfig config = config_with(EncryptionScheme::kDirect, /*selective=*/true);
  MemoryController mc(config, &map);
  EXPECT_TRUE(mc.needs_encryption(0x1000));
  EXPECT_FALSE(mc.needs_encryption(0x2000));
  mc.read_line(0, 0x1000);
  mc.read_line(0, 0x2000);
  SimStats stats;
  mc.accumulate(stats);
  EXPECT_EQ(stats.encrypted_bytes, 128u);
  EXPECT_EQ(stats.bypassed_bytes, 128u);
}

TEST(MemController, FullEncryptionIgnoresMap) {
  SecureMap map;  // empty: nothing marked
  const GpuConfig config = config_with(EncryptionScheme::kDirect, /*selective=*/false);
  MemoryController mc(config, &map);
  EXPECT_TRUE(mc.needs_encryption(0x9999000));
}

TEST(MemController, WritesConsumeAesBeforeDram) {
  const GpuConfig config = config_with(EncryptionScheme::kDirect);
  MemoryController mc(config, nullptr);
  const Cycle done = mc.write_line(0, 0x1000);
  GpuConfig plain = config_with(EncryptionScheme::kNone);
  MemoryController mc_plain(plain, nullptr);
  EXPECT_GT(done, mc_plain.write_line(0, 0x1000));
}

TEST(MemController, AesBandwidthThrottlesStreams) {
  // Stream 100 lines through an encrypted controller: completion should be
  // bounded by AES bandwidth (~11.43 B/cycle), not DRAM (~42.24 B/cycle).
  const GpuConfig config = config_with(EncryptionScheme::kDirect);
  MemoryController mc(config, nullptr);
  Cycle done = 0;
  for (int i = 0; i < 100; ++i) done = mc.read_line(0, static_cast<Addr>(i) * 128);
  const double aes_bound = 100.0 * 128.0 / config.aes_bytes_per_cycle();
  EXPECT_GT(static_cast<double>(done), aes_bound);

  MemoryController mc_plain(config_with(EncryptionScheme::kNone), nullptr);
  Cycle done_plain = 0;
  for (int i = 0; i < 100; ++i) {
    done_plain = mc_plain.read_line(0, static_cast<Addr>(i) * 128);
  }
  // The encrypted stream is AES-bound (11.43 B/cyc) vs the achievable DRAM
  // rate (27.46 B/cyc): ~2x wall-clock including latencies.
  EXPECT_GT(static_cast<double>(done), 1.8 * static_cast<double>(done_plain));
}

// ------------------------------------------------------- FunctionalMemory ---

crypto::Key128 test_key() {
  crypto::Key128 k{};
  for (std::size_t i = 0; i < 16; ++i) k[i] = static_cast<std::uint8_t>(i + 1);
  return k;
}

std::vector<std::uint8_t> pattern(std::size_t n, std::uint8_t seed = 1) {
  std::vector<std::uint8_t> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = static_cast<std::uint8_t>(seed + i * 3);
  return v;
}

class FunctionalMemorySchemes : public ::testing::TestWithParam<EncryptionScheme> {};

TEST_P(FunctionalMemorySchemes, ReadBackEqualsWritten) {
  FunctionalMemory memory(GetParam(), false, nullptr, test_key());
  const auto data = pattern(500);
  memory.write(0x1000, data);
  std::vector<std::uint8_t> out(500);
  memory.read(0x1000, out);
  EXPECT_EQ(out, data);
}

TEST_P(FunctionalMemorySchemes, PartialLineReadModifyWrite) {
  FunctionalMemory memory(GetParam(), false, nullptr, test_key());
  const auto base = pattern(256, 1);
  memory.write(0x1000, base);
  const auto patch = pattern(32, 99);
  memory.write(0x1050, patch);  // straddles inside a line
  std::vector<std::uint8_t> out(256);
  memory.read(0x1000, out);
  for (std::size_t i = 0; i < 256; ++i) {
    const std::uint8_t expected =
        (i >= 0x50 && i < 0x70) ? patch[i - 0x50] : base[i];
    EXPECT_EQ(out[i], expected) << "offset " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Schemes, FunctionalMemorySchemes,
                         ::testing::Values(EncryptionScheme::kNone,
                                           EncryptionScheme::kDirect,
                                           EncryptionScheme::kCounter));

TEST(FunctionalMemory, RawLineIsCiphertextWhenSecure) {
  FunctionalMemory memory(EncryptionScheme::kDirect, false, nullptr, test_key());
  const auto data = pattern(128);
  memory.write(0x2000, data);
  const auto raw = memory.raw_line(0x2000);
  EXPECT_NE(raw, data);  // DRAM holds ciphertext
  std::vector<std::uint8_t> out(128);
  memory.read(0x2000, out);
  EXPECT_EQ(out, data);
}

TEST(FunctionalMemory, RawLineIsPlaintextWhenInsecure) {
  FunctionalMemory memory(EncryptionScheme::kNone, false, nullptr, test_key());
  const auto data = pattern(128);
  memory.write(0x2000, data);
  EXPECT_EQ(memory.raw_line(0x2000), data);
}

TEST(FunctionalMemory, SelectiveEncryptsOnlyMarkedLines) {
  SecureMap map;
  map.add_range(0x3000, 128);
  FunctionalMemory memory(EncryptionScheme::kDirect, true, &map, test_key());
  const auto data = pattern(128);
  memory.write(0x3000, data);
  memory.write(0x3080, data);
  EXPECT_NE(memory.raw_line(0x3000), data);
  EXPECT_EQ(memory.raw_line(0x3080), data);
}

TEST(FunctionalMemory, CounterModeRewriteChangesWireImage) {
  FunctionalMemory memory(EncryptionScheme::kCounter, false, nullptr, test_key());
  const auto data = pattern(128);
  memory.write(0x4000, data);
  const auto image1 = memory.raw_line(0x4000);
  memory.write(0x4000, data);  // same plaintext again
  const auto image2 = memory.raw_line(0x4000);
  EXPECT_NE(image1, image2);  // fresh counter => fresh pad
  std::vector<std::uint8_t> out(128);
  memory.read(0x4000, out);
  EXPECT_EQ(out, data);
}

TEST(FunctionalMemory, ProbeSeesWireBytes) {
  FunctionalMemory memory(EncryptionScheme::kDirect, false, nullptr, test_key());
  attack::BusSnooper snooper;
  memory.set_probe(&snooper);
  const auto data = pattern(128);
  memory.write(0x5000, data);
  const auto seen = snooper.extract(0x5000, 128);
  EXPECT_EQ(seen, memory.raw_line(0x5000));
  EXPECT_NE(seen, data);
  EXPECT_TRUE(snooper.saw_ciphertext(0x5000, 128));
}

}  // namespace
}  // namespace sealdl::sim

namespace sealdl::sim {
namespace {

TEST(MemController, SplitCountersCoverMoreDataPerCacheLine) {
  // One counter line covers 16 data lines monolithic vs 128 split, so a
  // strided walk that thrashes the monolithic counter cache hits with split
  // counters.
  auto run = [](bool split) {
    GpuConfig config = GpuConfig::gtx480();
    config.scheme = EncryptionScheme::kCounter;
    config.split_counters = split;
    config.counter_cache_kb = 24;
    MemoryController mc(config, nullptr);
    for (int i = 0; i < 2000; ++i) {
      mc.read_line(0, static_cast<Addr>(i) * 128);
    }
    SimStats stats;
    mc.accumulate(stats);
    return stats;
  };
  const SimStats mono = run(false);
  const SimStats split = run(true);
  EXPECT_GT(split.counter_hit_rate(), mono.counter_hit_rate());
  EXPECT_LT(split.counter_traffic_bytes, mono.counter_traffic_bytes);
}

TEST(GpuConfigExt, CounterGeometry) {
  GpuConfig config = GpuConfig::gtx480();
  EXPECT_EQ(config.counters_per_line(), 16);
  config.split_counters = true;
  EXPECT_EQ(config.counters_per_line(), 128);
}

}  // namespace
}  // namespace sealdl::sim
