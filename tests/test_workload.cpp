// Workload generators: op accounting against analytic expectations, and the
// network runner's scaling.
#include <gtest/gtest.h>

#include "core/model_layout.hpp"
#include "workload/gemm_trace.hpp"
#include "workload/layer_trace.hpp"
#include "workload/network_runner.hpp"

namespace sealdl::workload {
namespace {

struct OpCounts {
  std::uint64_t loads = 0;
  std::uint64_t stores = 0;
  std::uint64_t compute_instrs = 0;
  std::uint64_t waits = 0;
};

OpCounts drain(sim::WarpProgram& program) {
  OpCounts counts;
  while (auto op = program.next()) {
    switch (op->kind) {
      case sim::WarpOp::Kind::kLoad:
        ++counts.loads;
        break;
      case sim::WarpOp::Kind::kStore:
        ++counts.stores;
        break;
      case sim::WarpOp::Kind::kCompute:
        counts.compute_instrs += op->count;
        break;
      case sim::WarpOp::Kind::kWaitLoads:
        ++counts.waits;
        break;
    }
  }
  return counts;
}

OpCounts drain_all(std::vector<sim::WarpProgramPtr>& programs) {
  OpCounts total;
  for (auto& p : programs) {
    const OpCounts c = drain(*p);
    total.loads += c.loads;
    total.stores += c.stores;
    total.compute_instrs += c.compute_instrs;
    total.waits += c.waits;
  }
  return total;
}

TEST(GemmTrace, OpVolumesMatchAnalyticCounts) {
  GemmSpec spec;
  spec.m = spec.n = spec.k = 128;  // 4x4 tiles of 32x32
  auto programs = make_gemm_programs(spec, 4);
  const OpCounts counts = drain_all(programs);

  // Stores: each C element written once as part of 128B lines: 128*128
  // floats / 32 per line = 512 line stores.
  EXPECT_EQ(counts.stores, 512u);
  // Loads per tile: 4 K-chunks x (32 A lines + 32 B lines) = 256; 16 tiles.
  EXPECT_EQ(counts.loads, 16u * 256u);
  // Compute: 128^3 MACs / 32 lanes * 1.12 overhead, batched per chunk.
  const double expected = 128.0 * 128.0 * 128.0 / 32.0 * 1.12;
  EXPECT_NEAR(static_cast<double>(counts.compute_instrs), expected,
              expected * 0.01);
  // One barrier per (tile, chunk).
  EXPECT_EQ(counts.waits, 16u * 4u);
}

TEST(GemmTrace, TileCapLimitsWork) {
  GemmSpec spec;
  spec.m = spec.n = spec.k = 128;
  auto capped = make_gemm_programs(spec, 4, /*max_tiles=*/4);
  auto full = make_gemm_programs(spec, 4);
  EXPECT_EQ(drain_all(capped).stores * 4, drain_all(full).stores);
}

TEST(GemmTrace, WarpsPartitionTilesExactly) {
  GemmSpec spec;
  spec.m = spec.n = 64;
  spec.k = 32;
  for (int warps : {1, 2, 3, 4}) {
    auto programs = make_gemm_programs(spec, warps);
    // Total stores are warp-count invariant.
    EXPECT_EQ(drain_all(programs).stores, 128u) << warps << " warps";
  }
}

core::LayerAddressing layout_single(const models::LayerSpec& spec,
                                    core::SecureHeap& heap) {
  core::ModelLayout layout({spec}, nullptr, heap);
  return layout.layers()[0];
}

models::LayerSpec conv_spec(int in_ch, int out_ch, int hw) {
  models::LayerSpec s;
  s.type = models::LayerSpec::Type::kConv;
  s.name = "conv";
  s.in_channels = in_ch;
  s.out_channels = out_ch;
  s.in_h = s.in_w = hw;
  return s;
}

workload::LayerTraceOptions exact_options() {
  // Disable the small-layer tile refinement so op counts follow the base
  // tiling analytically.
  workload::LayerTraceOptions options;
  options.min_tiles = 1;
  return options;
}

TEST(ConvTrace, ComputeMatchesLayerMacs) {
  const auto spec = conv_spec(16, 32, 16);
  core::SecureHeap heap;
  const auto layer = layout_single(spec, heap);
  auto work = make_layer_programs(layer, 8, 0, exact_options());
  const OpCounts counts = drain_all(work.programs);
  const double expected =
      static_cast<double>(spec.macs()) / 32.0 * 1.12;
  // Per-chunk ceil() rounding inflates slightly.
  EXPECT_NEAR(static_cast<double>(counts.compute_instrs), expected,
              expected * 0.05);
  EXPECT_EQ(work.total_tiles, work.simulated_tiles);
  EXPECT_DOUBLE_EQ(work.scale(), 1.0);
}

TEST(ConvTrace, StoresCoverOutputOnce) {
  const auto spec = conv_spec(8, 16, 32);  // out 16ch x 32x32
  core::SecureHeap heap;
  const auto layer = layout_single(spec, heap);
  auto work = make_layer_programs(layer, 8, 0, exact_options());
  const OpCounts counts = drain_all(work.programs);
  // 16 * 32 * 32 floats / 32 per line = 512 line stores (32-wide rows align).
  EXPECT_EQ(counts.stores, 512u);
}

TEST(ConvTrace, SamplingScalesCycles) {
  const auto spec = conv_spec(64, 64, 64);
  core::SecureHeap heap;
  const auto layer = layout_single(spec, heap);
  auto full = make_layer_programs(layer, 8, 0, exact_options());
  auto sampled = make_layer_programs(layer, 8, /*max_tiles=*/8, exact_options());
  EXPECT_GT(full.total_tiles, 8u);
  EXPECT_EQ(sampled.simulated_tiles, 8u);
  EXPECT_DOUBLE_EQ(sampled.scale(),
                   static_cast<double>(full.total_tiles) / 8.0);
}

TEST(PoolTrace, ReadsEveryInputRowOnce) {
  models::LayerSpec spec;
  spec.type = models::LayerSpec::Type::kPool;
  spec.name = "pool";
  spec.in_channels = spec.out_channels = 8;
  spec.in_h = spec.in_w = 32;
  spec.kernel = spec.stride = 2;
  spec.padding = 0;
  core::SecureHeap heap;
  const auto layer = layout_single(spec, heap);
  auto work = make_layer_programs(layer, 4);
  const OpCounts counts = drain_all(work.programs);
  // Input: 8ch x 32 rows x 32 floats = one 128B line per row => 256 loads.
  EXPECT_EQ(counts.loads, 8u * 32u);
  // Output: 8ch x 16 rows x 16 floats => 64B per row => 1 line store per row.
  EXPECT_EQ(counts.stores, 8u * 16u);
}

TEST(FcTrace, WeightTrafficDominates) {
  models::LayerSpec spec;
  spec.type = models::LayerSpec::Type::kFc;
  spec.name = "fc";
  spec.in_features = 256;
  spec.out_features = 64;
  core::SecureHeap heap;
  const auto layer = layout_single(spec, heap);
  auto work = make_layer_programs(layer, 4);
  const OpCounts counts = drain_all(work.programs);
  // Each of 2 output blocks streams all 256 weight rows (1 line for 32
  // floats) plus the input vector (256 floats / 32 = 8 lines per block).
  EXPECT_EQ(counts.loads, 2u * (256u + 8u));
  EXPECT_EQ(counts.stores, 2u);
}

TEST(NetworkRunner, SchemesOrderOnSmallNetwork) {
  const auto specs = models::vgg16_specs(32);
  RunOptions options;
  options.max_tiles_per_layer = 60;

  auto run_scheme = [&](sim::EncryptionScheme scheme, bool selective) {
    sim::GpuConfig config = sim::GpuConfig::gtx480();
    config.scheme = scheme;
    RunOptions local = options;
    local.selective = selective;
    return run_network(specs, config, local);
  };
  const auto baseline = run_scheme(sim::EncryptionScheme::kNone, false);
  const auto direct = run_scheme(sim::EncryptionScheme::kDirect, false);
  const auto seal = run_scheme(sim::EncryptionScheme::kDirect, true);

  EXPECT_EQ(baseline.layers.size(), specs.size());
  EXPECT_GT(baseline.overall_ipc(), 0.0);
  // Full encryption slower than SEAL slower than baseline.
  EXPECT_GT(direct.total_cycles(), seal.total_cycles());
  EXPECT_GT(seal.total_cycles(), baseline.total_cycles());
}

TEST(NetworkRunner, LayerFilterSelectsSubset) {
  const auto specs = models::vgg16_specs(32);
  sim::GpuConfig config = sim::GpuConfig::gtx480();
  RunOptions options;
  options.max_tiles_per_layer = 20;
  options.layer_filter = {2, 5};
  const auto result = run_network(specs, config, options);
  ASSERT_EQ(result.layers.size(), 2u);
  EXPECT_EQ(result.layers[0].name, specs[2].name);
  EXPECT_EQ(result.layers[1].name, specs[5].name);
}

}  // namespace
}  // namespace sealdl::workload
