// Cross-module integration: the full SEAL story on a small model —
// plan -> layout -> encrypted memory -> snooping adversary -> timing runs.
#include <gtest/gtest.h>

#include "attack/bus_snooper.hpp"
#include "attack/pipeline.hpp"
#include "core/encryption_plan.hpp"
#include "core/model_layout.hpp"
#include "core/secure_heap.hpp"
#include "models/build.hpp"
#include "models/layer_spec.hpp"
#include "nn/dataset.hpp"
#include "nn/loss.hpp"
#include "nn/serialize.hpp"
#include "sim/functional_memory.hpp"
#include "workload/network_runner.hpp"

namespace sealdl {
namespace {

crypto::Key128 test_key() {
  crypto::Key128 key{};
  for (std::size_t i = 0; i < key.size(); ++i) key[i] = static_cast<std::uint8_t>(200 - i);
  return key;
}

models::BuildOptions tiny_build() {
  models::BuildOptions build;
  build.input_hw = 8;
  build.width_div = 16;
  return build;
}

TEST(Integration, EncryptedStorageIsTransparentToInference) {
  // A model whose weights round-trip through encrypted memory must compute
  // bit-identical results — encryption only changes what the bus carries.
  auto model = models::build_resnet18(tiny_build());
  const auto bytes = nn::serialize_params(*model);

  for (auto scheme : {sim::EncryptionScheme::kDirect, sim::EncryptionScheme::kCounter}) {
    sim::FunctionalMemory memory(scheme, false, nullptr, test_key());
    memory.write(0x100000, bytes);
    std::vector<std::uint8_t> readback(bytes.size());
    memory.read(0x100000, readback);
    EXPECT_EQ(readback, bytes) << scheme_name(scheme);
  }
}

TEST(Integration, PlanLayoutAndMapAgreeOnEveryRow) {
  // The SE invariant, end to end: a weight row's address range is secure in
  // the map exactly when the plan marks the row encrypted; same for the
  // fmap channel feeding it (paper §III-A: encrypted operands only ever
  // meet encrypted operands).
  const auto specs = models::vgg16_specs(32);
  std::vector<int> rows;
  std::vector<bool> is_conv;
  for (const auto& s : specs) {
    if (s.type == models::LayerSpec::Type::kPool) continue;
    rows.push_back(s.type == models::LayerSpec::Type::kConv ? s.in_channels
                                                            : s.in_features);
    is_conv.push_back(s.type == models::LayerSpec::Type::kConv);
  }
  core::PlanOptions options;  // paper defaults
  const auto plan = core::EncryptionPlan::from_row_counts(rows, is_conv, options);
  core::SecureHeap heap;
  core::ModelLayout layout(specs, &plan, heap);

  int plan_idx = 0;
  for (const auto& layer : layout.layers()) {
    if (layer.spec.type == models::LayerSpec::Type::kPool) continue;
    const auto& lp = plan.layer(static_cast<std::size_t>(plan_idx++));
    const int layer_rows = layer.spec.type == models::LayerSpec::Type::kConv
                               ? layer.spec.in_channels
                               : layer.spec.in_features;
    for (int r = 0; r < layer_rows; ++r) {
      const sim::Addr row_addr =
          layer.weight_base + static_cast<std::uint64_t>(r) * layer.weight_row_pitch;
      EXPECT_EQ(heap.secure_map().is_secure(row_addr), lp.row_encrypted(r))
          << layer.spec.name << " row " << r;
      if (layer.spec.type == models::LayerSpec::Type::kConv) {
        const sim::Addr channel_addr =
            layer.ifmap_base + static_cast<std::uint64_t>(r) * layer.ifmap_channel_pitch;
        EXPECT_EQ(heap.secure_map().is_secure(channel_addr), lp.row_encrypted(r))
            << layer.spec.name << " channel " << r;
      }
    }
  }
}

TEST(Integration, SnooperLearnsNothingAboutEncryptedRowsEndToEnd) {
  // Place real trained weights per the plan, stream them, snoop the bus, and
  // check byte-exact recovery of plaintext rows and zero recovery of
  // ciphertext rows.
  auto model = models::build_vgg16(tiny_build());
  core::PlanOptions plan_options;
  plan_options.encryption_ratio = 0.5;
  const auto plan = core::EncryptionPlan::from_model(*model, plan_options);

  core::SecureHeap heap;
  sim::FunctionalMemory memory(sim::EncryptionScheme::kDirect, true,
                               &heap.secure_map(), test_key());
  attack::BusSnooper snooper;
  memory.set_probe(&snooper);

  struct RowRecord {
    sim::Addr addr;
    std::vector<std::uint8_t> payload;
    bool encrypted;
  };
  std::vector<RowRecord> records;
  const auto layers = core::collect_weight_layers(*model);
  for (std::size_t li = 0; li < layers.size(); ++li) {
    const auto& layer = layers[li];
    const std::size_t row_bytes = static_cast<std::size_t>(layer.cols) *
                                  static_cast<std::size_t>(layer.weights_per_cell) *
                                  sizeof(float);
    for (int r = 0; r < layer.rows; ++r) {
      const bool enc = plan.layer(li).row_encrypted(r);
      const auto alloc = enc ? heap.emalloc(row_bytes) : heap.malloc(row_bytes);
      // Row payload: deterministic bytes derived from the weights.
      std::vector<std::uint8_t> payload(row_bytes);
      for (std::size_t i = 0; i < row_bytes; ++i) {
        payload[i] = static_cast<std::uint8_t>((li * 31 + static_cast<std::size_t>(r) * 7 + i) & 0xFF);
      }
      memory.write(alloc.addr, payload);
      records.push_back({alloc.addr, std::move(payload), enc});
    }
  }

  std::size_t plain_rows = 0, encrypted_rows = 0;
  for (const auto& record : records) {
    const auto seen = snooper.extract(record.addr, record.payload.size());
    if (record.encrypted) {
      EXPECT_NE(seen, record.payload);
      ++encrypted_rows;
    } else {
      EXPECT_EQ(seen, record.payload);
      ++plain_rows;
    }
  }
  EXPECT_GT(plain_rows, 0u);
  EXPECT_GT(encrypted_rows, plain_rows);  // boundary policy adds extra rows
}

TEST(Integration, TimingSchemesOrderAcrossWholeNetworks) {
  // The headline performance ordering must hold for every paper model:
  // Baseline > SEAL-D > Direct (IPC), and the SEAL encrypted-traffic share
  // must sit near the plan's overall fraction.
  for (const char* name : {"vgg16", "resnet18"}) {
    const auto specs = std::string(name) == "vgg16" ? models::vgg16_specs(64)
                                                    : models::resnet18_specs(64);
    workload::RunOptions options;
    options.max_tiles_per_layer = 100;

    sim::GpuConfig config = sim::GpuConfig::gtx480();
    const auto baseline = workload::run_network(specs, config, options);

    config.scheme = sim::EncryptionScheme::kDirect;
    const auto direct = workload::run_network(specs, config, options);

    config.selective = true;
    workload::RunOptions seal_options = options;
    seal_options.selective = true;
    const auto seal = workload::run_network(specs, config, seal_options);

    EXPECT_GT(baseline.overall_ipc(), seal.overall_ipc()) << name;
    EXPECT_GT(seal.overall_ipc(), direct.overall_ipc()) << name;
    EXPECT_LT(seal.total_cycles(), direct.total_cycles()) << name;
  }
}

TEST(Integration, SecurityPipelineSmoke) {
  // A miniature run of the full §III-B experiment: victim, corpus, white/
  // black/SEAL substitutes; ordering of knowledge must show in accuracy.
  attack::PipelineOptions o;
  o.model = "vgg16";
  o.build.input_hw = 12;
  o.build.width_div = 16;
  o.dataset.height = o.dataset.width = 12;
  o.dataset.samples = 600;
  o.dataset.noise_stddev = 0.1f;
  o.dataset.max_shift = 1;
  o.dataset.contrast_jitter = 0.1f;
  o.test_holdout = 80;
  o.victim_train.epochs = 4;
  o.victim_train.sgd.lr = 0.03f;
  o.substitute_train.epochs = 2;
  o.substitute_train.sgd.lr = 0.02f;
  o.augment.rounds = 1;
  attack::SecurityPipeline pipe(o);
  pipe.prepare();

  const double victim = pipe.victim_test_accuracy();
  EXPECT_GT(victim, 0.5);  // learns the easy miniature task

  auto white = pipe.white_box();
  EXPECT_DOUBLE_EQ(pipe.test_accuracy(*white), victim);

  auto black = pipe.black_box();
  const double bb = pipe.test_accuracy(*black);
  EXPECT_LT(bb, victim);  // oracle-only knowledge is strictly weaker here

  auto seal = pipe.seal_substitute(0.5);
  const double sub = pipe.test_accuracy(*seal);
  EXPECT_GT(sub, 0.05);  // sane output, not NaN/collapse
  EXPECT_LE(sub, victim + 1e-9);
}

}  // namespace
}  // namespace sealdl
