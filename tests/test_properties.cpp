// Property-style sweeps: conservation laws and invariants that must hold for
// any configuration, checked across parameter grids.
#include <gtest/gtest.h>

#include "core/encryption_plan.hpp"
#include "core/model_layout.hpp"
#include "core/secure_heap.hpp"
#include "models/layer_spec.hpp"
#include "nn/dataset.hpp"
#include "sim/gpu_simulator.hpp"
#include "util/rng.hpp"
#include "workload/layer_trace.hpp"
#include "workload/network_runner.hpp"

namespace sealdl {
namespace {

// --------------------------------------------------- secure map properties ---

class SecureMapRandomOps : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SecureMapRandomOps, MatchesNaiveBitmapModel) {
  // Random adds/removes against a byte-granular reference model.
  constexpr std::size_t kSpan = 4096;
  util::Rng rng(GetParam());
  sim::SecureMap map;
  std::vector<bool> reference(kSpan, false);
  for (int op = 0; op < 200; ++op) {
    const auto begin = rng.next_below(kSpan - 1);
    const auto size = 1 + rng.next_below(256);
    const auto end = std::min<std::uint64_t>(kSpan, begin + size);
    if (rng.bernoulli(0.7)) {
      map.add_range(begin, end - begin);
      for (std::uint64_t i = begin; i < end; ++i) reference[i] = true;
    } else {
      map.remove_range(begin, end - begin);
      for (std::uint64_t i = begin; i < end; ++i) reference[i] = false;
    }
  }
  std::uint64_t reference_bytes = 0;
  for (std::size_t i = 0; i < kSpan; ++i) {
    EXPECT_EQ(map.is_secure(i), reference[i]) << "byte " << i;
    reference_bytes += reference[i] ? 1 : 0;
  }
  EXPECT_EQ(map.secure_bytes(), reference_bytes);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SecureMapRandomOps,
                         ::testing::Values(11, 22, 33, 44, 55));

// ------------------------------------------------------- plan/layout sweep ---

class PlanLayoutSweep
    : public ::testing::TestWithParam<std::tuple<double, core::RowPolicy>> {};

TEST_P(PlanLayoutSweep, WeightMarkingAlwaysMatchesPlan) {
  const auto [ratio, policy] = GetParam();
  const auto specs = models::resnet18_specs(32);
  std::vector<int> rows;
  std::vector<bool> is_conv;
  for (const auto& s : specs) {
    if (s.type == models::LayerSpec::Type::kPool) continue;
    rows.push_back(s.type == models::LayerSpec::Type::kConv ? s.in_channels
                                                            : s.in_features);
    is_conv.push_back(s.type == models::LayerSpec::Type::kConv);
  }
  core::PlanOptions options;
  options.encryption_ratio = ratio;
  options.policy = policy;
  const auto plan = core::EncryptionPlan::from_row_counts(rows, is_conv, options);
  core::SecureHeap heap;
  core::ModelLayout layout(specs, &plan, heap);

  int plan_idx = 0;
  for (const auto& layer : layout.layers()) {
    if (layer.spec.type == models::LayerSpec::Type::kPool) continue;
    const auto& lp = plan.layer(static_cast<std::size_t>(plan_idx++));
    for (int r = 0; r < lp.rows; ++r) {
      const sim::Addr addr =
          layer.weight_base + static_cast<std::uint64_t>(r) * layer.weight_row_pitch;
      EXPECT_EQ(heap.secure_map().is_secure(addr), lp.row_encrypted(r))
          << layer.spec.name << " row " << r << " ratio " << ratio;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, PlanLayoutSweep,
    ::testing::Combine(::testing::Values(0.0, 0.25, 0.5, 0.75, 1.0),
                       ::testing::Values(core::RowPolicy::kSmallestL1Plain,
                                         core::RowPolicy::kRandomPlain,
                                         core::RowPolicy::kLargestL1Plain)));

// ------------------------------------------------- simulator conservation ---

class TrafficConservation : public ::testing::TestWithParam<sim::EncryptionScheme> {};

TEST_P(TrafficConservation, DramReadsBoundedByMissesAndNonZero) {
  // Each DRAM data read is one line fill; the L2 miss count exceeds the
  // fill count because merged (MSHR-hit) accesses also record misses.
  const auto spec = [] {
    models::LayerSpec s;
    s.type = models::LayerSpec::Type::kConv;
    s.name = "conv";
    s.in_channels = 32;
    s.out_channels = 32;
    s.in_h = s.in_w = 32;
    return s;
  }();
  sim::GpuConfig config = sim::GpuConfig::gtx480();
  config.scheme = GetParam();
  workload::RunOptions options;
  options.max_tiles_per_layer = 0;  // exact
  const auto result = workload::run_single_layer(spec, config, options);
  const auto& stats = result.stats;
  EXPECT_GT(stats.dram_read_bytes, 0u);
  EXPECT_LE(stats.dram_read_bytes, stats.l2_misses * 128u);
  EXPECT_EQ(stats.dram_read_bytes % 128u, 0u);  // line granular
  EXPECT_GT(stats.dram_write_bytes, 0u);
}

TEST_P(TrafficConservation, EncryptedPlusBypassedCoversSecureTraffic) {
  const auto spec = [] {
    models::LayerSpec s;
    s.type = models::LayerSpec::Type::kConv;
    s.name = "conv";
    s.in_channels = 16;
    s.out_channels = 16;
    s.in_h = s.in_w = 32;
    return s;
  }();
  sim::GpuConfig config = sim::GpuConfig::gtx480();
  config.scheme = GetParam();
  workload::RunOptions options;
  options.max_tiles_per_layer = 0;
  options.selective = true;
  options.plan.encryption_ratio = 0.5;
  options.plan.full_head_convs = 0;
  options.plan.full_tail_convs = 0;
  options.plan.full_tail_fcs = 0;
  const auto result = workload::run_single_layer(spec, config, options);
  const auto& stats = result.stats;
  if (GetParam() == sim::EncryptionScheme::kNone) {
    EXPECT_EQ(stats.encrypted_bytes, 0u);
  } else {
    // Every data byte is classified exactly once (dram_bytes counts data
    // lines only; counter-block traffic is a separate counter).
    EXPECT_EQ(stats.encrypted_bytes + stats.bypassed_bytes, stats.dram_bytes());
    EXPECT_GT(stats.encrypted_bytes, 0u);
    EXPECT_GT(stats.bypassed_bytes, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Schemes, TrafficConservation,
                         ::testing::Values(sim::EncryptionScheme::kNone,
                                           sim::EncryptionScheme::kDirect,
                                           sim::EncryptionScheme::kCounter));

// ------------------------------------------------------ tile sweep checks ---

class ConvTileSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(ConvTileSweep, LoadVolumeIsSamplingInvariantPerTile) {
  // For any geometry, average per-tile compute must match the layer's MAC
  // count regardless of the sampling cap.
  const auto [in_ch, out_ch, hw] = GetParam();
  models::LayerSpec spec;
  spec.type = models::LayerSpec::Type::kConv;
  spec.name = "conv";
  spec.in_channels = in_ch;
  spec.out_channels = out_ch;
  spec.in_h = spec.in_w = hw;

  core::SecureHeap heap;
  core::ModelLayout layout({spec}, nullptr, heap);
  auto work = workload::make_layer_programs(layout.layers()[0], 16);
  std::uint64_t compute = 0;
  for (auto& program : work.programs) {
    while (auto op = program->next()) {
      if (op->kind == sim::WarpOp::Kind::kCompute) compute += op->count;
    }
  }
  const double expected = static_cast<double>(spec.macs()) / 32.0 * 1.12;
  EXPECT_NEAR(static_cast<double>(compute), expected, expected * 0.06)
      << in_ch << "x" << out_ch << "@" << hw;
}

INSTANTIATE_TEST_SUITE_P(Geometries, ConvTileSweep,
                         ::testing::Values(std::make_tuple(8, 8, 16),
                                           std::make_tuple(16, 32, 16),
                                           std::make_tuple(32, 16, 32),
                                           std::make_tuple(3, 64, 32),
                                           std::make_tuple(64, 64, 8)));

// ------------------------------------------------------ dataset properties ---

TEST(DatasetProperties, DifferentSeedsDifferentImagesSameStructure) {
  nn::DatasetConfig a;
  a.height = a.width = 8;
  a.samples = 50;
  nn::DatasetConfig b = a;
  b.seed = 43;
  nn::SyntheticDataset da(a), db(b);
  // Labels follow the same balanced pattern...
  for (int i = 0; i < 50; ++i) EXPECT_EQ(da.label(i), db.label(i));
  // ...but pixel content differs.
  const auto xa = da.batch({0});
  const auto xb = db.batch({0});
  bool any_diff = false;
  for (std::size_t i = 0; i < xa.numel(); ++i) any_diff |= xa[i] != xb[i];
  EXPECT_TRUE(any_diff);
}

TEST(DatasetProperties, SamplesOfOneClassShareStructure) {
  // Two samples of a class are noisy shifted copies of one prototype, so
  // their correlation must beat cross-class correlation on average.
  nn::DatasetConfig config;
  config.height = config.width = 16;
  config.samples = 200;
  config.noise_stddev = 0.1f;
  config.max_shift = 0;  // isolate the prototype structure
  nn::SyntheticDataset data(config);
  auto corr = [&](int i, int j) {
    const auto a = data.batch({i});
    const auto b = data.batch({j});
    double dot = 0, na = 0, nb = 0;
    for (std::size_t k = 0; k < a.numel(); ++k) {
      dot += a[k] * b[k];
      na += a[k] * a[k];
      nb += b[k] * b[k];
    }
    return dot / std::sqrt(na * nb);
  };
  // samples i and i+10 share a class; i and i+1 do not.
  double same = 0, cross = 0;
  for (int i = 0; i < 20; ++i) {
    same += corr(i, i + 10);
    cross += corr(i, i + 1);
  }
  EXPECT_GT(same / 20, cross / 20 + 0.2);
}

}  // namespace
}  // namespace sealdl
