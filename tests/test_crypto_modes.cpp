// Line-level memory-encryption modes: roundtrips, address binding, and
// counter freshness.
#include <gtest/gtest.h>

#include <array>

#include "crypto/aes128.hpp"
#include "crypto/modes.hpp"
#include "util/rng.hpp"

namespace sealdl::crypto {
namespace {

using LineArray = std::array<std::uint8_t, kLineBytes>;

LineArray random_line(util::Rng& rng) {
  LineArray line{};
  for (auto& b : line) b = static_cast<std::uint8_t>(rng.next());
  return line;
}

Key128 test_key() {
  Key128 k{};
  for (std::size_t i = 0; i < 16; ++i) k[i] = static_cast<std::uint8_t>(i * 17 + 1);
  return k;
}

TEST(DirectMode, RoundTrip) {
  Aes128 aes(test_key());
  util::Rng rng(7);
  LineArray line = random_line(rng);
  const LineArray original = line;
  direct_encrypt_line(aes, 0x1000, line);
  EXPECT_NE(line, original);
  direct_decrypt_line(aes, 0x1000, line);
  EXPECT_EQ(line, original);
}

TEST(DirectMode, AddressTweakBindsCiphertextToLocation) {
  // The same plaintext at two addresses must encrypt differently, or an
  // attacker could detect equal lines across the address space.
  Aes128 aes(test_key());
  util::Rng rng(8);
  const LineArray plain = random_line(rng);
  LineArray at_a = plain, at_b = plain;
  direct_encrypt_line(aes, 0x1000, at_a);
  direct_encrypt_line(aes, 0x1080, at_b);
  EXPECT_NE(at_a, at_b);
}

TEST(DirectMode, BlocksWithinLineDiffer) {
  // All-equal plaintext blocks within one line must not produce equal
  // ciphertext blocks (ECB-pattern leak).
  Aes128 aes(test_key());
  LineArray line{};
  line.fill(0xAB);
  direct_encrypt_line(aes, 0x2000, line);
  bool any_block_differs = false;
  for (std::size_t b = 1; b < kBlocksPerLine; ++b) {
    if (!std::equal(line.begin(), line.begin() + 16,
                    line.begin() + static_cast<std::ptrdiff_t>(16 * b))) {
      any_block_differs = true;
    }
  }
  EXPECT_TRUE(any_block_differs);
}

TEST(DirectMode, WrongAddressDoesNotDecrypt) {
  Aes128 aes(test_key());
  util::Rng rng(9);
  LineArray line = random_line(rng);
  const LineArray original = line;
  direct_encrypt_line(aes, 0x1000, line);
  direct_decrypt_line(aes, 0x3000, line);
  EXPECT_NE(line, original);
}

TEST(CounterMode, TransformIsInvolutionWithSameCounter) {
  Aes128 aes(test_key());
  util::Rng rng(10);
  LineArray line = random_line(rng);
  const LineArray original = line;
  counter_transform_line(aes, 0x4000, 5, line);
  EXPECT_NE(line, original);
  counter_transform_line(aes, 0x4000, 5, line);
  EXPECT_EQ(line, original);
}

TEST(CounterMode, FreshCounterFreshPad) {
  // Re-encrypting the same line content after a counter bump must yield a
  // different wire image (no pad reuse).
  Aes128 aes(test_key());
  util::Rng rng(11);
  const LineArray plain = random_line(rng);
  LineArray v1 = plain, v2 = plain;
  counter_transform_line(aes, 0x4000, 1, v1);
  counter_transform_line(aes, 0x4000, 2, v2);
  EXPECT_NE(v1, v2);
}

TEST(CounterMode, PadIsAddressBound) {
  Aes128 aes(test_key());
  LineArray zero_a{}, zero_b{};
  counter_transform_line(aes, 0x4000, 1, zero_a);
  counter_transform_line(aes, 0x4080, 1, zero_b);
  // Transforming zeros exposes the raw pads; they must differ per address.
  EXPECT_NE(zero_a, zero_b);
}

TEST(CounterMode, BlocksWithinLineUseDistinctPads) {
  Aes128 aes(test_key());
  LineArray zeros{};
  counter_transform_line(aes, 0x5000, 9, zeros);
  for (std::size_t b = 1; b < kBlocksPerLine; ++b) {
    EXPECT_FALSE(std::equal(zeros.begin(), zeros.begin() + 16,
                            zeros.begin() + static_cast<std::ptrdiff_t>(16 * b)))
        << "block " << b << " reuses block 0's pad";
  }
}

class ModeRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ModeRoundTrip, RandomLinesAllAddresses) {
  Aes128 aes(test_key());
  util::Rng rng(GetParam());
  for (int trial = 0; trial < 16; ++trial) {
    const std::uint64_t addr = (rng.next() & 0xFFFFF) << 7;  // line aligned
    LineArray line = random_line(rng);
    const LineArray original = line;
    direct_encrypt_line(aes, addr, line);
    direct_decrypt_line(aes, addr, line);
    EXPECT_EQ(line, original);

    const std::uint64_t counter = rng.next();
    counter_transform_line(aes, addr, counter, line);
    counter_transform_line(aes, addr, counter, line);
    EXPECT_EQ(line, original);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ModeRoundTrip, ::testing::Range<std::uint64_t>(1, 9));

}  // namespace
}  // namespace sealdl::crypto
