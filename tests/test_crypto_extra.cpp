// Additional cipher conformance: SP 800-38A ECB known answers, key-schedule
// interior rounds, counter-carry behaviour, tweak uniqueness.
#include <gtest/gtest.h>

#include <cstdio>
#include <set>
#include <string>

#include "crypto/aes128.hpp"
#include "crypto/modes.hpp"

namespace sealdl::crypto {
namespace {

Block from_hex(const std::string& hex) {
  Block b{};
  for (std::size_t i = 0; i < 16; ++i) {
    b[i] = static_cast<std::uint8_t>(std::stoul(hex.substr(2 * i, 2), nullptr, 16));
  }
  return b;
}

std::string to_hex(const Block& b) {
  std::string out;
  char buf[3];
  for (std::uint8_t v : b) {
    std::snprintf(buf, sizeof buf, "%02x", v);
    out += buf;
  }
  return out;
}

// SP 800-38A F.1.1 ECB-AES128.Encrypt: all four blocks.
struct EcbVector {
  const char* plain;
  const char* cipher;
};

class Sp80038aEcb : public ::testing::TestWithParam<EcbVector> {};

TEST_P(Sp80038aEcb, KnownAnswer) {
  const Key128 key = from_hex("2b7e151628aed2a6abf7158809cf4f3c");
  Aes128 aes(key);
  Block block = from_hex(GetParam().plain);
  aes.encrypt_block(block);
  EXPECT_EQ(to_hex(block), GetParam().cipher);
  aes.decrypt_block(block);
  EXPECT_EQ(to_hex(block), GetParam().plain);
}

INSTANTIATE_TEST_SUITE_P(
    Blocks, Sp80038aEcb,
    ::testing::Values(
        EcbVector{"6bc1bee22e409f96e93d7e117393172a",
                  "3ad77bb40d7a3660a89ecaf32466ef97"},
        EcbVector{"ae2d8a571e03ac9c9eb76fac45af8e51",
                  "f5d3d58503b9699de785895a96fdbaaf"},
        EcbVector{"30c81c46a35ce411e5fbc1191a0a52ef",
                  "43b1cd7f598ece23881b00e3ed030688"},
        EcbVector{"f69f2445df4f9b17ad2b417be66c3710",
                  "7b0c785e27e8ad3f8223207104725dd4"}));

TEST(KeySchedule, InteriorRoundKeysMatchFips197) {
  // FIPS-197 Appendix A.1: w[20..23] -> round key 5.
  const Key128 key = from_hex("2b7e151628aed2a6abf7158809cf4f3c");
  Aes128 aes(key);
  EXPECT_EQ(to_hex(aes.round_keys()[5]), "d4d1c6f87c839d87caf2b8bc11f915bc");
  EXPECT_EQ(to_hex(aes.round_keys()[9]), "ac7766f319fadc2128d12941575c006e");
}

TEST(CtrMode, CounterCarriesAcrossByteBoundary) {
  // Initial counter ...00ff: the second block must use ...0100, not ...0000.
  const Key128 key = from_hex("000102030405060708090a0b0c0d0e0f");
  Aes128 aes(key);
  const Block start = from_hex("000000000000000000000000000000ff");

  std::array<std::uint8_t, 32> stream{};
  ctr_keystream_xor(aes, start, stream);

  // Reference: encrypt each counter block explicitly.
  Block c0 = start;
  aes.encrypt_block(c0);
  Block c1 = from_hex("00000000000000000000000000000100");
  aes.encrypt_block(c1);
  for (std::size_t i = 0; i < 16; ++i) {
    EXPECT_EQ(stream[i], c0[i]);
    EXPECT_EQ(stream[16 + i], c1[i]);
  }
}

TEST(CtrMode, PartialTrailingBlock) {
  const Key128 key = from_hex("000102030405060708090a0b0c0d0e0f");
  Aes128 aes(key);
  const Block counter = from_hex("00000000000000000000000000000000");
  std::array<std::uint8_t, 21> a{};
  std::array<std::uint8_t, 32> b{};
  ctr_keystream_xor(aes, counter, a);
  ctr_keystream_xor(aes, counter, b);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

TEST(DirectMode, TweaksAreUniqueAcrossNearbyLinesAndBlocks) {
  // Extract effective per-block masks by encrypting zero lines and collect
  // the first ciphertext blocks: they must be pairwise distinct across 64
  // consecutive lines (any collision would leak equal-plaintext patterns).
  Key128 key{};
  for (std::size_t i = 0; i < 16; ++i) key[i] = static_cast<std::uint8_t>(3 * i + 1);
  Aes128 aes(key);
  std::set<std::string> images;
  for (int line = 0; line < 64; ++line) {
    std::array<std::uint8_t, kLineBytes> zeros{};
    direct_encrypt_line(aes, static_cast<std::uint64_t>(line) * kLineBytes, zeros);
    for (std::size_t b = 0; b < kBlocksPerLine; ++b) {
      Block block;
      std::copy(zeros.begin() + static_cast<std::ptrdiff_t>(16 * b),
                zeros.begin() + static_cast<std::ptrdiff_t>(16 * (b + 1)),
                block.begin());
      images.insert(to_hex(block));
    }
  }
  EXPECT_EQ(images.size(), 64u * kBlocksPerLine);
}

TEST(CounterMode, ZeroCounterIsStillMasked) {
  Key128 key{};
  key[0] = 1;
  Aes128 aes(key);
  std::array<std::uint8_t, kLineBytes> line{};
  counter_transform_line(aes, 0x1000, 0, line);
  bool any_nonzero = false;
  for (auto v : line) any_nonzero |= v != 0;
  EXPECT_TRUE(any_nonzero);
}

}  // namespace
}  // namespace sealdl::crypto
