// Model builders and full-scale layer specs: structure, shapes, and totals.
#include <gtest/gtest.h>

#include "core/weight_layers.hpp"
#include "models/build.hpp"
#include "models/layer_spec.hpp"
#include "nn/serialize.hpp"

namespace sealdl::models {
namespace {

int count_type(const std::vector<LayerSpec>& specs, LayerSpec::Type type) {
  int n = 0;
  for (const auto& s : specs) n += s.type == type ? 1 : 0;
  return n;
}

TEST(LayerSpecs, Vgg16HasThePaperLayerCounts) {
  const auto specs = vgg16_specs();
  // "13/16 for VGG-16" CONV layers (§III-A) + 5 pools + 3 FC.
  EXPECT_EQ(count_type(specs, LayerSpec::Type::kConv), 13);
  EXPECT_EQ(count_type(specs, LayerSpec::Type::kPool), 5);
  EXPECT_EQ(count_type(specs, LayerSpec::Type::kFc), 3);
}

TEST(LayerSpecs, Resnet18HasSeventeenConvPlusFc) {
  const auto specs = resnet18_specs();
  // "17/18 for ResNet-18": 1 stem + 16 block convs (+3 projections that the
  // paper's count excludes) and 1 FC.
  int main_convs = 0;
  for (const auto& s : specs) {
    if (s.type == LayerSpec::Type::kConv &&
        s.name.find("proj") == std::string::npos) {
      ++main_convs;
    }
  }
  EXPECT_EQ(main_convs, 17);
  EXPECT_EQ(count_type(specs, LayerSpec::Type::kFc), 1);
}

TEST(LayerSpecs, Resnet34HasThirtyThreeConvPlusFc) {
  const auto specs = resnet34_specs();
  int main_convs = 0;
  for (const auto& s : specs) {
    if (s.type == LayerSpec::Type::kConv &&
        s.name.find("proj") == std::string::npos) {
      ++main_convs;
    }
  }
  EXPECT_EQ(main_convs, 33);  // "33/34 for ResNet-34"
}

TEST(LayerSpecs, Vgg16ShapesChainCorrectly) {
  const auto specs = vgg16_specs(224);
  // Walk CONV/POOL chain checking in/out consistency.
  int hw = 224, channels = 3;
  for (const auto& s : specs) {
    if (s.type == LayerSpec::Type::kFc) break;
    EXPECT_EQ(s.in_channels, channels) << s.name;
    EXPECT_EQ(s.in_h, hw) << s.name;
    channels = s.out_channels;
    hw = s.out_h();
  }
  EXPECT_EQ(hw, 7);        // 224 / 2^5
  EXPECT_EQ(channels, 512);
}

TEST(LayerSpecs, Vgg16MacTotalMatchesPublishedScale) {
  std::uint64_t total = 0;
  for (const auto& s : vgg16_specs(224)) {
    if (s.type != LayerSpec::Type::kPool) total += s.macs();
  }
  // VGG-16 is ~15.5 GMACs at 224x224.
  EXPECT_GT(total, 14'000'000'000ULL);
  EXPECT_LT(total, 16'500'000'000ULL);
}

TEST(LayerSpecs, Resnet18MacTotalMatchesPublishedScale) {
  std::uint64_t total = 0;
  for (const auto& s : resnet18_specs(224)) {
    if (s.type != LayerSpec::Type::kPool) total += s.macs();
  }
  // ResNet-18 is ~1.8 GMACs.
  EXPECT_GT(total, 1'500'000'000ULL);
  EXPECT_LT(total, 2'200'000'000ULL);
}

TEST(LayerSpecs, WeightBytesOfVgg16) {
  std::uint64_t total = 0;
  for (const auto& s : vgg16_specs(224)) total += s.weight_bytes();
  // ~138M params * 4B ~= 553 MB.
  EXPECT_GT(total, 500'000'000ULL);
  EXPECT_LT(total, 600'000'000ULL);
}

TEST(LayerSpecs, Fig5And6LayersMatchThePaperChannels) {
  const auto convs = fig5_conv_layers();
  ASSERT_EQ(convs.size(), 4u);
  EXPECT_EQ(convs[0].in_channels, 64);
  EXPECT_EQ(convs[1].in_channels, 128);
  EXPECT_EQ(convs[2].in_channels, 256);
  EXPECT_EQ(convs[3].in_channels, 512);
  const auto pools = fig6_pool_layers();
  ASSERT_EQ(pools.size(), 4u);
  EXPECT_EQ(pools.back().name, "POOL-5");
}

// ------------------------------------------------------ trainable builders ---

BuildOptions tiny() {
  BuildOptions options;
  options.input_hw = 16;
  options.width_div = 16;
  return options;
}

TEST(Build, Vgg16HasThirteenConvThreeFc) {
  auto model = build_vgg16(tiny());
  const auto layers = core::collect_weight_layers(*model);
  int convs = 0, fcs = 0;
  for (const auto& l : layers) (l.is_conv ? convs : fcs)++;
  EXPECT_EQ(convs, 13);
  EXPECT_EQ(fcs, 3);
}

TEST(Build, Resnet18WeightLayerCount) {
  auto model = build_resnet18(tiny());
  const auto layers = core::collect_weight_layers(*model);
  // stem + 16 block convs + projections + fc. With width_div all stages share
  // the minimum width, so only stride-2 stage heads get projections.
  int convs = 0, fcs = 0;
  for (const auto& l : layers) (l.is_conv ? convs : fcs)++;
  EXPECT_GE(convs, 17);
  EXPECT_EQ(fcs, 1);
}

TEST(Build, Resnet34DeeperThanResnet18) {
  auto r18 = build_resnet18(tiny());
  auto r34 = build_resnet34(tiny());
  EXPECT_GT(core::collect_weight_layers(*r34).size(),
            core::collect_weight_layers(*r18).size());
}

class BuildForward : public ::testing::TestWithParam<const char*> {};

TEST_P(BuildForward, ProducesClassLogitsAndTrains) {
  auto model = models::build_model(GetParam(), tiny());
  nn::Tensor x({2, 3, 16, 16});
  for (std::size_t i = 0; i < x.numel(); ++i) x[i] = 0.01f * static_cast<float>(i % 97);
  nn::Tensor logits = model->forward(x, /*train=*/false);
  EXPECT_EQ(logits.shape(), (std::vector<int>{2, 10}));
  // One backward pass must run without shape errors.
  nn::Tensor y = model->forward(x, /*train=*/true);
  model->backward(y.zeros_like());
}

INSTANTIATE_TEST_SUITE_P(Models, BuildForward,
                         ::testing::Values("vgg16", "resnet18", "resnet34"));

TEST(Build, UnknownNameThrows) {
  EXPECT_THROW(build_model("alexnet", tiny()), std::invalid_argument);
}

TEST(Build, WidthDivScalesParameterCount) {
  BuildOptions wide = tiny();
  wide.width_div = 8;
  auto narrow = build_vgg16(tiny());
  auto wider = build_vgg16(wide);
  EXPECT_GT(nn::parameter_count(*wider), nn::parameter_count(*narrow));
}

}  // namespace
}  // namespace sealdl::models
