// SecureHeap (emalloc) and ModelLayout: placement, alignment, and the
// secure-range marking that drives selective encryption.
#include <gtest/gtest.h>

#include "core/model_layout.hpp"
#include "core/secure_heap.hpp"
#include "models/layer_spec.hpp"

namespace sealdl::core {
namespace {

TEST(SecureHeap, MallocIsNotSecure) {
  SecureHeap heap;
  const auto a = heap.malloc(1000);
  EXPECT_FALSE(heap.secure_map().is_secure(a.addr));
  EXPECT_EQ(heap.secure_map().secure_bytes(), 0u);
}

TEST(SecureHeap, EmallocIsSecure) {
  SecureHeap heap;
  const auto a = heap.emalloc(1000);
  EXPECT_TRUE(heap.secure_map().is_secure(a.addr));
  EXPECT_TRUE(heap.secure_map().is_secure(a.addr + 999));
  EXPECT_FALSE(heap.secure_map().is_secure(a.addr + 1000));
}

TEST(SecureHeap, AllocationsAreLineAlignedAndDisjoint) {
  SecureHeap heap;
  const auto a = heap.malloc(130);
  const auto b = heap.emalloc(1);
  EXPECT_EQ(a.addr % 128, 0u);
  EXPECT_EQ(b.addr % 128, 0u);
  EXPECT_GE(b.addr, a.addr + 130);
}

TEST(SecureHeap, ExhaustionThrows) {
  SecureHeap heap(0x1000, 1024);
  heap.malloc(512);
  EXPECT_THROW(heap.malloc(1024), std::bad_alloc);
}

TEST(SecureHeap, MarkSecureSubRange) {
  SecureHeap heap;
  const auto a = heap.malloc(4096);
  heap.mark_secure(a.addr + 128, 256);
  EXPECT_FALSE(heap.secure_map().is_secure(a.addr));
  EXPECT_TRUE(heap.secure_map().is_secure(a.addr + 128));
  EXPECT_TRUE(heap.secure_map().is_secure(a.addr + 383));
  EXPECT_FALSE(heap.secure_map().is_secure(a.addr + 384));
}

std::vector<models::LayerSpec> small_chain() {
  // conv(8ch,16x16) -> pool -> conv(8->16) -> fc
  using models::LayerSpec;
  std::vector<LayerSpec> specs;
  LayerSpec conv1;
  conv1.type = LayerSpec::Type::kConv;
  conv1.name = "conv1";
  conv1.in_channels = 8;
  conv1.out_channels = 8;
  conv1.in_h = conv1.in_w = 16;
  specs.push_back(conv1);
  LayerSpec pool;
  pool.type = LayerSpec::Type::kPool;
  pool.name = "pool";
  pool.in_channels = pool.out_channels = 8;
  pool.in_h = pool.in_w = 16;
  pool.kernel = pool.stride = 2;
  pool.padding = 0;
  specs.push_back(pool);
  LayerSpec conv2 = conv1;
  conv2.name = "conv2";
  conv2.in_channels = 8;
  conv2.out_channels = 16;
  conv2.in_h = conv2.in_w = 8;
  specs.push_back(conv2);
  LayerSpec fc;
  fc.type = LayerSpec::Type::kFc;
  fc.name = "fc";
  fc.in_features = 16 * 8 * 8;
  fc.out_features = 10;
  specs.push_back(fc);
  return specs;
}

TEST(ModelLayout, WithoutPlanNothingIsSecure) {
  SecureHeap heap;
  ModelLayout layout(small_chain(), nullptr, heap);
  EXPECT_EQ(heap.secure_map().secure_bytes(), 0u);
  EXPECT_EQ(layout.layers().size(), 4u);
}

TEST(ModelLayout, AddressingIsInternallyConsistent) {
  SecureHeap heap;
  ModelLayout layout(small_chain(), nullptr, heap);
  const auto& layers = layout.layers();
  // Chaining: each layer's ofmap buffer is the next layer's ifmap buffer.
  for (std::size_t i = 0; i + 1 < layers.size(); ++i) {
    EXPECT_EQ(layers[i].ofmap_base, layers[i + 1].ifmap_base) << i;
  }
  // Weight rows are line aligned.
  for (const auto& l : layers) {
    if (l.spec.type == models::LayerSpec::Type::kPool) {
      EXPECT_EQ(l.weight_base, 0u);
      continue;
    }
    EXPECT_EQ(l.weight_base % 128, 0u);
    EXPECT_EQ(l.weight_row_pitch % 128, 0u);
    EXPECT_GE(l.weight_row_pitch, l.weight_row_bytes);
  }
}

EncryptionPlan plan_for(const std::vector<models::LayerSpec>& specs, double ratio,
                        bool boundary = false) {
  std::vector<int> rows;
  std::vector<bool> is_conv;
  for (const auto& s : specs) {
    if (s.type == models::LayerSpec::Type::kPool) continue;
    rows.push_back(s.type == models::LayerSpec::Type::kConv ? s.in_channels
                                                            : s.in_features);
    is_conv.push_back(s.type == models::LayerSpec::Type::kConv);
  }
  PlanOptions options;
  options.encryption_ratio = ratio;
  if (!boundary) {
    options.full_head_convs = 0;
    options.full_tail_convs = 0;
    options.full_tail_fcs = 0;
  }
  return EncryptionPlan::from_row_counts(rows, is_conv, options);
}

TEST(ModelLayout, PlanMarksWeightRowsAndFmapChannels) {
  const auto specs = small_chain();
  const auto plan = plan_for(specs, 0.5);
  SecureHeap heap;
  ModelLayout layout(specs, &plan, heap);
  const auto& conv1 = layout.layers()[0];

  // Exactly the encrypted rows of conv1's plan are secure in its weights.
  const auto& lp = plan.layer(0);
  for (int r = 0; r < 8; ++r) {
    const sim::Addr row_addr =
        conv1.weight_base + static_cast<std::uint64_t>(r) * conv1.weight_row_pitch;
    EXPECT_EQ(heap.secure_map().is_secure(row_addr), lp.row_encrypted(r))
        << "row " << r;
  }
  // conv1's input channels mirror its encrypted rows (consumer rule).
  for (int c = 0; c < 8; ++c) {
    const sim::Addr ch_addr =
        conv1.ifmap_base + static_cast<std::uint64_t>(c) * conv1.ifmap_channel_pitch;
    EXPECT_EQ(heap.secure_map().is_secure(ch_addr), lp.row_encrypted(c))
        << "channel " << c;
  }
}

TEST(ModelLayout, PoolInheritsDownstreamConvChannels) {
  const auto specs = small_chain();
  const auto plan = plan_for(specs, 0.5);
  SecureHeap heap;
  ModelLayout layout(specs, &plan, heap);
  const auto& pool = layout.layers()[1];
  const auto& lp_conv2 = plan.layer(1);  // consumer of the pool's *output*...
  // The pool's input fmap is consumed by the pool itself; the next weight
  // layer downstream is conv2, so the pool input channels carry conv2's rows.
  for (int c = 0; c < 8; ++c) {
    const sim::Addr ch_addr =
        pool.ifmap_base + static_cast<std::uint64_t>(c) * pool.ifmap_channel_pitch;
    EXPECT_EQ(heap.secure_map().is_secure(ch_addr), lp_conv2.row_encrypted(c))
        << "pool channel " << c;
  }
}

TEST(ModelLayout, NetworkOutputFullyEncryptedUnderSeal) {
  const auto specs = small_chain();
  const auto plan = plan_for(specs, 0.3);
  SecureHeap heap;
  ModelLayout layout(specs, &plan, heap);
  const auto& fc = layout.layers().back();
  EXPECT_TRUE(heap.secure_map().is_secure(fc.ofmap_base));
}

TEST(ModelLayout, SecureFractionTracksRatio) {
  const auto specs = models::vgg16_specs(32);
  for (double ratio : {0.2, 0.5, 0.8}) {
    const auto plan = plan_for(specs, ratio);
    SecureHeap heap;
    ModelLayout layout(specs, &plan, heap);
    const double fraction =
        static_cast<double>(heap.secure_map().secure_bytes()) /
        static_cast<double>(layout.total_bytes());
    // Line-granular padding and the always-encrypted output blur the exact
    // value; it must still track the requested ratio.
    EXPECT_NEAR(fraction, ratio, 0.15) << "ratio " << ratio;
  }
}

TEST(ModelLayout, PlanMismatchThrows) {
  const auto specs = small_chain();
  const auto plan = plan_for({specs[0]}, 0.5);  // plan for 1 layer, specs have 3
  SecureHeap heap;
  EXPECT_THROW(ModelLayout(specs, &plan, heap), std::invalid_argument);
}

}  // namespace
}  // namespace sealdl::core
