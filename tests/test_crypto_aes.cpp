// AES-128 conformance: FIPS-197 appendix vectors, SP 800-38A CTR vectors,
// and algebraic properties over random inputs.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "crypto/aes128.hpp"
#include "crypto/modes.hpp"
#include "util/rng.hpp"

namespace sealdl::crypto {
namespace {

Block from_hex(const std::string& hex) {
  Block b{};
  for (std::size_t i = 0; i < 16; ++i) {
    b[i] = static_cast<std::uint8_t>(std::stoul(hex.substr(2 * i, 2), nullptr, 16));
  }
  return b;
}

std::string to_hex(const Block& b) {
  std::string out;
  char buf[3];
  for (std::uint8_t v : b) {
    std::snprintf(buf, sizeof buf, "%02x", v);
    out += buf;
  }
  return out;
}

TEST(Aes128, Fips197AppendixCExample) {
  // FIPS-197 Appendix C.1: AES-128 with the 000102... key.
  const Key128 key = from_hex("000102030405060708090a0b0c0d0e0f");
  Aes128 aes(key);
  Block block = from_hex("00112233445566778899aabbccddeeff");
  aes.encrypt_block(block);
  EXPECT_EQ(to_hex(block), "69c4e0d86a7b0430d8cdb78070b4c55a");
}

TEST(Aes128, Fips197AppendixCDecrypt) {
  const Key128 key = from_hex("000102030405060708090a0b0c0d0e0f");
  Aes128 aes(key);
  Block block = from_hex("69c4e0d86a7b0430d8cdb78070b4c55a");
  aes.decrypt_block(block);
  EXPECT_EQ(to_hex(block), "00112233445566778899aabbccddeeff");
}

TEST(Aes128, Fips197AppendixBExample) {
  // FIPS-197 Appendix B: the 2b7e... key on the 3243... input.
  const Key128 key = from_hex("2b7e151628aed2a6abf7158809cf4f3c");
  Aes128 aes(key);
  Block block = from_hex("3243f6a8885a308d313198a2e0370734");
  aes.encrypt_block(block);
  EXPECT_EQ(to_hex(block), "3925841d02dc09fbdc118597196a0b32");
}

TEST(Aes128, KeyExpansionFirstAndLastRoundKeys) {
  // FIPS-197 Appendix A.1 key schedule checkpoints.
  const Key128 key = from_hex("2b7e151628aed2a6abf7158809cf4f3c");
  Aes128 aes(key);
  EXPECT_EQ(to_hex(aes.round_keys()[0]), "2b7e151628aed2a6abf7158809cf4f3c");
  EXPECT_EQ(to_hex(aes.round_keys()[1]), "a0fafe1788542cb123a339392a6c7605");
  EXPECT_EQ(to_hex(aes.round_keys()[10]), "d014f9a8c9ee2589e13f0cc8b6630ca6");
}

TEST(Aes128, Sp80038aCtrVectors) {
  // NIST SP 800-38A F.5.1 CTR-AES128.Encrypt, first two blocks.
  const Key128 key = from_hex("2b7e151628aed2a6abf7158809cf4f3c");
  Aes128 aes(key);
  const Block counter0 = from_hex("f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff");

  std::array<std::uint8_t, 32> data{};
  const Block p1 = from_hex("6bc1bee22e409f96e93d7e117393172a");
  const Block p2 = from_hex("ae2d8a571e03ac9c9eb76fac45af8e51");
  std::copy(p1.begin(), p1.end(), data.begin());
  std::copy(p2.begin(), p2.end(), data.begin() + 16);

  ctr_keystream_xor(aes, counter0, data);

  Block c1{}, c2{};
  std::copy(data.begin(), data.begin() + 16, c1.begin());
  std::copy(data.begin() + 16, data.end(), c2.begin());
  EXPECT_EQ(to_hex(c1), "874d6191b620e3261bef6864990db6ce");
  EXPECT_EQ(to_hex(c2), "9806f66b7970fdff8617187bb9fffdff");
}

TEST(Aes128, CtrIsAnInvolution) {
  const Key128 key = from_hex("000102030405060708090a0b0c0d0e0f");
  Aes128 aes(key);
  const Block counter0 = from_hex("00000000000000000000000000000001");
  std::array<std::uint8_t, 40> data{};
  for (std::size_t i = 0; i < data.size(); ++i) data[i] = static_cast<std::uint8_t>(i * 7);
  auto original = data;
  ctr_keystream_xor(aes, counter0, data);
  EXPECT_NE(data, original);
  ctr_keystream_xor(aes, counter0, data);
  EXPECT_EQ(data, original);
}

class AesRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AesRoundTrip, DecryptInvertsEncrypt) {
  util::Rng rng(GetParam());
  Key128 key{};
  for (auto& b : key) b = static_cast<std::uint8_t>(rng.next());
  Aes128 aes(key);
  for (int trial = 0; trial < 32; ++trial) {
    Block plain{};
    for (auto& b : plain) b = static_cast<std::uint8_t>(rng.next());
    Block block = plain;
    aes.encrypt_block(block);
    EXPECT_NE(block, plain);  // 2^-128 failure probability
    aes.decrypt_block(block);
    EXPECT_EQ(block, plain);
  }
}

TEST_P(AesRoundTrip, CiphertextDiffersAcrossKeys) {
  util::Rng rng(GetParam());
  Key128 k1{}, k2{};
  for (auto& b : k1) b = static_cast<std::uint8_t>(rng.next());
  k2 = k1;
  k2[0] ^= 1;
  Aes128 a1(k1), a2(k2);
  Block p{};
  for (auto& b : p) b = static_cast<std::uint8_t>(rng.next());
  Block c1 = p, c2 = p;
  a1.encrypt_block(c1);
  a2.encrypt_block(c2);
  EXPECT_NE(c1, c2);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AesRoundTrip,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

TEST(Aes128, AvalancheOnPlaintextBit) {
  const Key128 key = from_hex("2b7e151628aed2a6abf7158809cf4f3c");
  Aes128 aes(key);
  Block a = from_hex("00000000000000000000000000000000");
  Block b = a;
  b[15] ^= 0x01;
  aes.encrypt_block(a);
  aes.encrypt_block(b);
  int diff_bits = 0;
  for (std::size_t i = 0; i < 16; ++i) {
    diff_bits += __builtin_popcount(static_cast<unsigned>(a[i] ^ b[i]));
  }
  // A healthy block cipher flips ~64 of 128 bits; accept a generous band.
  EXPECT_GT(diff_bits, 40);
  EXPECT_LT(diff_bits, 88);
}

}  // namespace
}  // namespace sealdl::crypto
