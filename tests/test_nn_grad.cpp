// Numerical gradient checks: every layer's backward() against central
// finite differences of the loss through forward().
#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <memory>

#include "nn/basic_layers.hpp"
#include "nn/conv2d.hpp"
#include "nn/loss.hpp"
#include "nn/network.hpp"

namespace sealdl::nn {
namespace {

/// Scalar loss = weighted sum of outputs, so dL/dy is a fixed tensor.
float weighted_sum(const Tensor& y, const Tensor& weights) {
  float acc = 0.0f;
  for (std::size_t i = 0; i < y.numel(); ++i) acc += y[i] * weights[i];
  return acc;
}

Tensor random_tensor(std::vector<int> shape, util::Rng& rng, float scale = 1.0f) {
  Tensor t(std::move(shape));
  for (std::size_t i = 0; i < t.numel(); ++i) t[i] = rng.normal(0.0f, scale);
  return t;
}

/// Checks d(weighted_sum(layer(x)))/dx and the parameter gradients.
/// `max_violation_fraction` tolerates a few finite-difference probes landing
/// on ReLU/max kinks in composite models (the analytic gradient is one-sided
/// there and both sides are valid subgradients).
void check_layer_gradients(Layer& layer, const Tensor& x, std::uint64_t seed,
                           float tolerance = 2e-2f,
                           double max_violation_fraction = 0.0) {
  util::Rng rng(seed);
  Tensor probe_x = x;
  Tensor y = layer.forward(probe_x, /*train=*/true);
  const Tensor loss_weights = random_tensor(y.shape(), rng);

  for (Param* p : layer.params()) p->zero_grad();
  Tensor analytic_gx = layer.backward(loss_weights);

  int probes = 0, violations = 0;
  auto check = [&](float analytic, float numeric, const std::string& what) {
    ++probes;
    const float bound = tolerance * std::max(1.0f, std::fabs(numeric));
    if (std::fabs(analytic - numeric) > bound) {
      ++violations;
      if (max_violation_fraction == 0.0) {
        ADD_FAILURE() << what << ": analytic " << analytic << " vs numeric "
                      << numeric;
      }
    }
  };

  // Input gradient.
  const float h = 1e-2f;
  for (std::size_t i = 0; i < x.numel(); i += std::max<std::size_t>(1, x.numel() / 24)) {
    Tensor xp = x, xm = x;
    xp[i] += h;
    xm[i] -= h;
    const float fp = weighted_sum(layer.forward(xp, true), loss_weights);
    const float fm = weighted_sum(layer.forward(xm, true), loss_weights);
    check(analytic_gx[i], (fp - fm) / (2 * h), "input grad " + std::to_string(i));
  }

  // Parameter gradients (recompute analytic grads after the probe forwards).
  layer.forward(probe_x, true);
  for (Param* p : layer.params()) p->zero_grad();
  layer.backward(loss_weights);
  for (Param* p : layer.params()) {
    for (std::size_t i = 0; i < p->value.numel();
         i += std::max<std::size_t>(1, p->value.numel() / 16)) {
      const float saved = p->value[i];
      p->value[i] = saved + h;
      const float fp = weighted_sum(layer.forward(probe_x, true), loss_weights);
      p->value[i] = saved - h;
      const float fm = weighted_sum(layer.forward(probe_x, true), loss_weights);
      p->value[i] = saved;
      check(p->grad[i], (fp - fm) / (2 * h), p->name + "[" + std::to_string(i) + "]");
    }
  }
  EXPECT_LE(static_cast<double>(violations),
            max_violation_fraction * static_cast<double>(probes))
      << violations << "/" << probes << " probes off";
}

TEST(GradCheck, Conv2dNoPadding) {
  util::Rng rng(10);
  Conv2d conv(2, 3, 3, 1, 0, true, rng);
  check_layer_gradients(conv, random_tensor({2, 2, 5, 5}, rng), 100);
}

TEST(GradCheck, Conv2dPaddedStrided) {
  util::Rng rng(11);
  Conv2d conv(3, 2, 3, 2, 1, false, rng);
  check_layer_gradients(conv, random_tensor({1, 3, 6, 6}, rng), 101);
}

TEST(GradCheck, Conv2dOneByOne) {
  util::Rng rng(12);
  Conv2d conv(4, 4, 1, 1, 0, true, rng);
  check_layer_gradients(conv, random_tensor({2, 4, 3, 3}, rng), 102);
}

TEST(GradCheck, Linear) {
  util::Rng rng(13);
  Linear fc(6, 4, true, rng);
  check_layer_gradients(fc, random_tensor({3, 6}, rng), 103);
}

TEST(GradCheck, ReLU) {
  util::Rng rng(14);
  ReLU relu;
  // Offset inputs away from 0 so finite differences don't cross the kink.
  Tensor x = random_tensor({2, 3, 4, 4}, rng);
  for (std::size_t i = 0; i < x.numel(); ++i) {
    if (std::fabs(x[i]) < 0.1f) x[i] = 0.2f;
  }
  check_layer_gradients(relu, x, 104);
}

TEST(GradCheck, MaxPool) {
  util::Rng rng(15);
  MaxPool2d pool(2);
  // Spread values so the argmax is stable under the probe step.
  Tensor x({1, 2, 4, 4});
  for (std::size_t i = 0; i < x.numel(); ++i) x[i] = static_cast<float>(i % 7) + 0.3f * rng.normal();
  check_layer_gradients(pool, x, 105);
}

TEST(GradCheck, GlobalAvgPool) {
  util::Rng rng(16);
  GlobalAvgPool pool;
  check_layer_gradients(pool, random_tensor({2, 3, 4, 4}, rng), 106);
}

TEST(GradCheck, BatchNorm) {
  util::Rng rng(17);
  BatchNorm2d bn(3);
  check_layer_gradients(bn, random_tensor({4, 3, 3, 3}, rng), 107, 5e-2f);
}

TEST(GradCheck, SequentialConvReluLinear) {
  util::Rng rng(18);
  Sequential net;
  net.add(std::make_unique<Conv2d>(2, 3, 3, 1, 1, true, rng));
  net.add(std::make_unique<ReLU>());
  net.add(std::make_unique<Flatten>());
  net.add(std::make_unique<Linear>(3 * 4 * 4, 5, true, rng));
  check_layer_gradients(net, random_tensor({2, 2, 4, 4}, rng), 108, 4e-2f, 0.1);
}

TEST(GradCheck, ResidualBlockWithProjection) {
  util::Rng rng(19);
  auto main_path = std::make_unique<Sequential>();
  main_path->add(std::make_unique<Conv2d>(2, 4, 3, 2, 1, false, rng));
  auto shortcut = std::make_unique<Sequential>();
  shortcut->add(std::make_unique<Conv2d>(2, 4, 1, 2, 0, false, rng));
  ResidualBlock block(std::move(main_path), std::move(shortcut));
  check_layer_gradients(block, random_tensor({1, 2, 4, 4}, rng), 109, 4e-2f);
}

TEST(GradCheck, SoftmaxCrossEntropyAgainstFiniteDifference) {
  util::Rng rng(20);
  Tensor logits = random_tensor({3, 4}, rng);
  const std::vector<int> labels = {1, 3, 0};
  const auto result = softmax_cross_entropy(logits, labels);
  const float h = 1e-3f;
  for (std::size_t i = 0; i < logits.numel(); ++i) {
    Tensor lp = logits, lm = logits;
    lp[i] += h;
    lm[i] -= h;
    const float numeric = (softmax_cross_entropy(lp, labels).loss -
                           softmax_cross_entropy(lm, labels).loss) /
                          (2 * h);
    EXPECT_NEAR(result.grad[i], numeric, 1e-3f);
  }
}

}  // namespace
}  // namespace sealdl::nn
