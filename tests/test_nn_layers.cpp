// NN layer forward semantics against hand-computed values.
#include <gtest/gtest.h>

#include <cmath>

#include "nn/basic_layers.hpp"
#include "nn/conv2d.hpp"
#include "nn/loss.hpp"
#include "nn/network.hpp"
#include "nn/tensor.hpp"

namespace sealdl::nn {
namespace {

TEST(Tensor, ShapeAndAccessors) {
  Tensor t({2, 3, 4, 5});
  EXPECT_EQ(t.numel(), 120u);
  t.at4(1, 2, 3, 4) = 7.0f;
  EXPECT_FLOAT_EQ(t[119], 7.0f);
  EXPECT_EQ(t.shape_str(), "[2,3,4,5]");
}

TEST(Tensor, ReshapePreservesData) {
  Tensor t({2, 6}, {0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11});
  Tensor r = t.reshaped({3, 4});
  EXPECT_FLOAT_EQ(r.at2(2, 3), 11.0f);
  EXPECT_THROW(t.reshaped({5, 5}), std::invalid_argument);
}

TEST(Tensor, Norms) {
  Tensor t({1, 4}, {-1.0f, 2.0f, -3.0f, 0.5f});
  EXPECT_FLOAT_EQ(t.l1_norm(), 6.5f);
  EXPECT_FLOAT_EQ(t.max_abs(), 3.0f);
}

TEST(Conv2d, IdentityKernelReproducesInput) {
  util::Rng rng(1);
  Conv2d conv(1, 1, 3, 1, 1, false, rng);
  conv.weight().value.fill(0.0f);
  conv.weight().value.at4(0, 0, 1, 1) = 1.0f;  // delta kernel
  Tensor x({1, 1, 4, 4});
  for (std::size_t i = 0; i < x.numel(); ++i) x[i] = static_cast<float>(i);
  Tensor y = conv.forward(x, false);
  for (std::size_t i = 0; i < x.numel(); ++i) EXPECT_FLOAT_EQ(y[i], x[i]);
}

TEST(Conv2d, HandComputedSum) {
  util::Rng rng(1);
  Conv2d conv(1, 1, 3, 1, 0, false, rng);
  conv.weight().value.fill(1.0f);  // box filter
  Tensor x({1, 1, 3, 3});
  for (std::size_t i = 0; i < 9; ++i) x[i] = static_cast<float>(i + 1);  // 1..9
  Tensor y = conv.forward(x, false);
  ASSERT_EQ(y.shape(), (std::vector<int>{1, 1, 1, 1}));
  EXPECT_FLOAT_EQ(y[0], 45.0f);
}

TEST(Conv2d, StrideAndPaddingShapes) {
  util::Rng rng(1);
  Conv2d conv(3, 8, 3, 2, 1, true, rng);
  Tensor x({2, 3, 16, 16});
  Tensor y = conv.forward(x, false);
  EXPECT_EQ(y.shape(), (std::vector<int>{2, 8, 8, 8}));
}

TEST(Conv2d, BiasIsAdded) {
  util::Rng rng(1);
  Conv2d conv(1, 2, 1, 1, 0, true, rng);
  conv.weight().value.fill(0.0f);
  conv.bias_param().value[0] = 1.5f;
  conv.bias_param().value[1] = -2.0f;
  Tensor x({1, 1, 2, 2});
  Tensor y = conv.forward(x, false);
  EXPECT_FLOAT_EQ(y.at4(0, 0, 0, 0), 1.5f);
  EXPECT_FLOAT_EQ(y.at4(0, 1, 1, 1), -2.0f);
}

TEST(Conv2d, MultiChannelAccumulates) {
  util::Rng rng(1);
  Conv2d conv(2, 1, 1, 1, 0, false, rng);
  conv.weight().value.at4(0, 0, 0, 0) = 2.0f;
  conv.weight().value.at4(0, 1, 0, 0) = 3.0f;
  Tensor x({1, 2, 1, 1});
  x.at4(0, 0, 0, 0) = 5.0f;
  x.at4(0, 1, 0, 0) = 7.0f;
  Tensor y = conv.forward(x, false);
  EXPECT_FLOAT_EQ(y[0], 2.0f * 5.0f + 3.0f * 7.0f);
}

TEST(Linear, MatVecWithBias) {
  util::Rng rng(1);
  Linear fc(3, 2, true, rng);
  fc.weight().value = Tensor({2, 3}, {1, 2, 3, 4, 5, 6});
  fc.bias_param().value = Tensor({1, 2}, {0.5f, -0.5f});
  Tensor x({1, 3}, {1, 1, 1});
  Tensor y = fc.forward(x, false);
  EXPECT_FLOAT_EQ(y.at2(0, 0), 6.5f);
  EXPECT_FLOAT_EQ(y.at2(0, 1), 14.5f);
}

TEST(ReLU, ClampsNegatives) {
  ReLU relu;
  Tensor x({1, 4}, {-1.0f, 0.0f, 2.0f, -3.0f});
  Tensor y = relu.forward(x, false);
  EXPECT_FLOAT_EQ(y[0], 0.0f);
  EXPECT_FLOAT_EQ(y[1], 0.0f);
  EXPECT_FLOAT_EQ(y[2], 2.0f);
  EXPECT_FLOAT_EQ(y[3], 0.0f);
}

TEST(MaxPool2d, PicksWindowMaxima) {
  MaxPool2d pool(2);
  Tensor x({1, 1, 2, 4}, {1, 5, 2, 0, 3, 4, 8, 7});
  Tensor y = pool.forward(x, false);
  ASSERT_EQ(y.shape(), (std::vector<int>{1, 1, 1, 2}));
  EXPECT_FLOAT_EQ(y[0], 5.0f);
  EXPECT_FLOAT_EQ(y[1], 8.0f);
}

TEST(MaxPool2d, RejectsIndivisibleInput) {
  MaxPool2d pool(2);
  Tensor x({1, 1, 3, 3});
  EXPECT_THROW(pool.forward(x, false), std::invalid_argument);
}

TEST(GlobalAvgPool, AveragesChannels) {
  GlobalAvgPool pool;
  Tensor x({1, 2, 2, 2}, {1, 2, 3, 4, 10, 20, 30, 40});
  Tensor y = pool.forward(x, false);
  EXPECT_FLOAT_EQ(y.at4(0, 0, 0, 0), 2.5f);
  EXPECT_FLOAT_EQ(y.at4(0, 1, 0, 0), 25.0f);
}

TEST(Flatten, RoundTrips) {
  Flatten flat;
  Tensor x({2, 3, 2, 2});
  for (std::size_t i = 0; i < x.numel(); ++i) x[i] = static_cast<float>(i);
  Tensor y = flat.forward(x, true);
  EXPECT_EQ(y.shape(), (std::vector<int>{2, 12}));
  Tensor back = flat.backward(y);
  EXPECT_EQ(back.shape(), x.shape());
  EXPECT_FLOAT_EQ(back[13], 13.0f);
}

TEST(BatchNorm2d, TrainModeNormalizesBatch) {
  BatchNorm2d bn(1);
  Tensor x({2, 1, 1, 2}, {1, 2, 3, 4});
  Tensor y = bn.forward(x, true);
  float mean = 0, var = 0;
  for (std::size_t i = 0; i < 4; ++i) mean += y[i];
  mean /= 4;
  for (std::size_t i = 0; i < 4; ++i) var += (y[i] - mean) * (y[i] - mean);
  var /= 4;
  EXPECT_NEAR(mean, 0.0f, 1e-5f);
  EXPECT_NEAR(var, 1.0f, 1e-3f);
}

TEST(BatchNorm2d, EvalModeUsesRunningStats) {
  BatchNorm2d bn(1);
  Tensor x({2, 1, 1, 2}, {1, 2, 3, 4});
  for (int i = 0; i < 50; ++i) bn.forward(x, true);  // converge running stats
  Tensor y = bn.forward(x, false);
  float mean = 0;
  for (std::size_t i = 0; i < 4; ++i) mean += y[i];
  EXPECT_NEAR(mean / 4, 0.0f, 0.05f);
}

TEST(Softmax, RowsSumToOne) {
  Tensor logits({2, 3}, {1, 2, 3, -1, 0, 1});
  Tensor p = softmax(logits);
  for (int n = 0; n < 2; ++n) {
    float sum = 0;
    for (int c = 0; c < 3; ++c) sum += p.at2(n, c);
    EXPECT_NEAR(sum, 1.0f, 1e-6f);
  }
  EXPECT_GT(p.at2(0, 2), p.at2(0, 0));
}

TEST(Loss, CrossEntropyOfUniformIsLogC) {
  Tensor logits({1, 4});  // zeros -> uniform softmax
  const auto result = softmax_cross_entropy(logits, {2});
  EXPECT_NEAR(result.loss, std::log(4.0f), 1e-5f);
}

TEST(Loss, GradientSumsToZeroPerRow) {
  Tensor logits({2, 5}, {1, 0, 2, 0, 1, 3, 1, 0, 0, 2});
  const auto result = softmax_cross_entropy(logits, {0, 4});
  for (int n = 0; n < 2; ++n) {
    float sum = 0;
    for (int c = 0; c < 5; ++c) sum += result.grad.at2(n, c);
    EXPECT_NEAR(sum, 0.0f, 1e-6f);
  }
}

TEST(Predict, ArgmaxAndAccuracy) {
  Tensor logits({2, 3}, {0, 5, 1, 9, 0, 0});
  const auto preds = predict(logits);
  EXPECT_EQ(preds, (std::vector<int>{1, 0}));
  EXPECT_DOUBLE_EQ(accuracy(logits, {1, 2}), 0.5);
}

TEST(ResidualBlock, IdentityShortcutAddsInput) {
  util::Rng rng(3);
  auto main_path = std::make_unique<Sequential>();
  auto conv = std::make_unique<Conv2d>(1, 1, 3, 1, 1, false, rng);
  conv->weight().value.fill(0.0f);  // main path contributes nothing
  main_path->add(std::move(conv));
  ResidualBlock block(std::move(main_path), nullptr);
  Tensor x({1, 1, 2, 2}, {1, -2, 3, -4});
  Tensor y = block.forward(x, false);
  // y = relu(0 + x)
  EXPECT_FLOAT_EQ(y[0], 1.0f);
  EXPECT_FLOAT_EQ(y[1], 0.0f);
  EXPECT_FLOAT_EQ(y[2], 3.0f);
  EXPECT_FLOAT_EQ(y[3], 0.0f);
}

TEST(Sequential, VisitsLeavesInForwardOrder) {
  util::Rng rng(4);
  Sequential net;
  net.add(std::make_unique<Conv2d>(1, 2, 3, 1, 1, false, rng));
  net.add(std::make_unique<ReLU>());
  net.add(std::make_unique<Linear>(8, 2, false, rng));
  std::vector<std::string> names;
  net.visit_leaves([&names](Layer& layer) { names.push_back(layer.name()); });
  EXPECT_EQ(names, (std::vector<std::string>{"conv2d", "relu", "linear"}));
}

}  // namespace
}  // namespace sealdl::nn
