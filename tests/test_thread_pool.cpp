// util::ThreadPool: result ordering, exception propagation, reuse across
// submission waves, the jobs-resolution helper, and destruction-order
// safety — queued tasks drain on destroy even when tasks submit more tasks
// mid-shutdown or the pool dies during exception unwind.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/thread_pool.hpp"

namespace sealdl::util {
namespace {

TEST(ThreadPool, FuturesArriveInSubmissionOrder) {
  ThreadPool pool(4);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 64; ++i) {
    futures.push_back(pool.submit([i] { return i * i; }));
  }
  // Whatever order the workers ran them in, the futures map results back to
  // their submissions.
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i * i);
  }
}

TEST(ThreadPool, ExceptionPropagatesToCaller) {
  ThreadPool pool(2);
  auto ok = pool.submit([] { return 7; });
  auto bad = pool.submit([]() -> int {
    throw std::runtime_error("task failed");
  });
  EXPECT_EQ(ok.get(), 7);
  EXPECT_THROW(bad.get(), std::runtime_error);
  // The pool survives a throwing task and keeps serving.
  EXPECT_EQ(pool.submit([] { return 11; }).get(), 11);
}

TEST(ThreadPool, ReusableAcrossSubmissionWaves) {
  ThreadPool pool(3);
  std::uint64_t total = 0;
  for (int wave = 0; wave < 4; ++wave) {
    std::vector<std::future<std::uint64_t>> futures;
    for (std::uint64_t i = 0; i < 16; ++i) {
      futures.push_back(pool.submit([i] { return i + 1; }));
    }
    for (auto& future : futures) total += future.get();
  }
  EXPECT_EQ(total, 4u * (16u * 17u / 2u));
}

TEST(ThreadPool, SingleWorkerDegeneratesToSerialOrder) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1);
  // With one worker, tasks execute strictly in submission order.
  std::vector<int> order;
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 8; ++i) {
    futures.push_back(pool.submit([&order, i] { order.push_back(i); }));
  }
  for (auto& future : futures) future.get();
  std::vector<int> expected(8);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(order, expected);
}

TEST(ThreadPool, WorkerCountClampedToAtLeastOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1);
  EXPECT_EQ(pool.submit([] { return 3; }).get(), 3);
}

TEST(ThreadPool, DestructorDrainsQueuedTasks) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 32; ++i) {
      pool.submit([&ran] {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        ran.fetch_add(1);
      });
    }
    // Drop the futures on the floor; destruction must still run every task.
  }
  EXPECT_EQ(ran.load(), 32);
}

TEST(ThreadPool, TaskSubmittingDuringShutdownStillDrains) {
  // The destructor flips stop_ while a running task is about to submit a
  // child. Drain-on-destroy means workers re-check the queue after every
  // task, so the child must still run before the pool's threads join.
  std::atomic<bool> child_ran{false};
  {
    ThreadPool pool(2);
    pool.submit([&pool, &child_ran] {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      pool.submit([&child_ran] { child_ran.store(true); });
    });
    // Destruction starts immediately, racing the parent's submit.
  }
  EXPECT_TRUE(child_ran.load());
}

TEST(ThreadPool, ChainedShutdownSubmissionsDrainWithoutDeadlock) {
  // A chain of tasks each submitting the next, on a single worker, with the
  // destructor already running: every link must execute.
  std::atomic<int> counter{0};
  {
    ThreadPool pool(1);
    struct Chain {
      ThreadPool& pool;
      std::atomic<int>& counter;
      int depth;
      void operator()() const {
        counter.fetch_add(1);
        if (depth > 0) {
          pool.submit(Chain{pool, counter, depth - 1});
        }
      }
    };
    pool.submit(Chain{pool, counter, 3});
  }
  EXPECT_EQ(counter.load(), 4);
}

TEST(ThreadPool, EarlyExceptionUnwindDrainsInFlightTasks) {
  // Mirrors the parallel runner's failure path: a task throws, the caller's
  // .get() rethrows, and stack unwinding destroys the pool while a backlog
  // of slower tasks is still queued. The unwind must block until every
  // queued task ran — otherwise tasks referencing unwound stack state would
  // execute after their referents died.
  std::atomic<int> ran{0};
  bool caught = false;
  try {
    ThreadPool pool(2);
    auto bad = pool.submit([]() -> int {
      throw std::runtime_error("layer failed");
    });
    for (int i = 0; i < 16; ++i) {
      pool.submit([&ran] {
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
        ran.fetch_add(1);
      });
    }
    bad.get();  // throws; unwind destroys the pool with tasks queued
  } catch (const std::runtime_error&) {
    caught = true;
  }
  EXPECT_TRUE(caught);
  EXPECT_EQ(ran.load(), 16);
}

TEST(ThreadPool, ResolveJobsMapsZeroToHardwareConcurrency) {
  EXPECT_EQ(ThreadPool::resolve_jobs(1), 1);
  EXPECT_EQ(ThreadPool::resolve_jobs(6), 6);
  const unsigned hw = std::thread::hardware_concurrency();
  const int expected = hw ? static_cast<int>(hw) : 1;
  EXPECT_EQ(ThreadPool::resolve_jobs(0), expected);
  EXPECT_EQ(ThreadPool::resolve_jobs(-3), expected);
}

TEST(ThreadPool, TasksRunOffTheSubmittingThread) {
  ThreadPool pool(2);
  const auto caller = std::this_thread::get_id();
  const auto worker =
      pool.submit([] { return std::this_thread::get_id(); }).get();
  EXPECT_NE(worker, caller);
}

}  // namespace
}  // namespace sealdl::util
