// Optimizer, trainer, dataset, and serialization behaviour.
#include <gtest/gtest.h>

#include <memory>

#include "nn/basic_layers.hpp"
#include "nn/conv2d.hpp"
#include "nn/dataset.hpp"
#include "nn/loss.hpp"
#include "nn/network.hpp"
#include "nn/optim.hpp"
#include "nn/serialize.hpp"
#include "nn/trainer.hpp"

namespace sealdl::nn {
namespace {

std::unique_ptr<Sequential> tiny_mlp(std::uint64_t seed) {
  util::Rng rng(seed);
  auto net = std::make_unique<Sequential>();
  net->add(std::make_unique<Flatten>());
  net->add(std::make_unique<Linear>(3 * 8 * 8, 32, true, rng));
  net->add(std::make_unique<ReLU>());
  net->add(std::make_unique<Linear>(32, 10, true, rng));
  return net;
}

DatasetConfig small_data() {
  DatasetConfig config;
  config.height = config.width = 8;
  config.samples = 600;
  return config;
}

TEST(Sgd, StepMovesAgainstGradient) {
  Param p("w", Tensor({1, 2}, {1.0f, 1.0f}));
  p.grad = Tensor({1, 2}, {1.0f, -1.0f});
  SgdOptimizer opt({&p}, {.lr = 0.1f, .momentum = 0.0f, .weight_decay = 0.0f});
  opt.step();
  EXPECT_FLOAT_EQ(p.value[0], 0.9f);
  EXPECT_FLOAT_EQ(p.value[1], 1.1f);
}

TEST(Sgd, MomentumAccumulates) {
  Param p("w", Tensor({1, 1}, {0.0f}));
  SgdOptimizer opt({&p}, {.lr = 1.0f, .momentum = 0.5f, .weight_decay = 0.0f});
  p.grad[0] = 1.0f;
  opt.step();  // v = -1, w = -1
  p.grad[0] = 1.0f;
  opt.step();  // v = -1.5, w = -2.5
  EXPECT_FLOAT_EQ(p.value[0], -2.5f);
}

TEST(Sgd, WeightDecayShrinksWeights) {
  Param p("w", Tensor({1, 1}, {10.0f}));
  p.grad[0] = 0.0f;
  SgdOptimizer opt({&p}, {.lr = 0.1f, .momentum = 0.0f, .weight_decay = 0.1f});
  opt.step();
  EXPECT_NEAR(p.value[0], 10.0f - 0.1f * 0.1f * 10.0f, 1e-6f);
}

TEST(Sgd, MaskFreezesElements) {
  Param p("w", Tensor({1, 2}, {1.0f, 1.0f}));
  p.grad = Tensor({1, 2}, {1.0f, 1.0f});
  p.mask = Tensor({1, 2}, {0.0f, 1.0f});
  SgdOptimizer opt({&p}, {.lr = 0.1f, .momentum = 0.9f, .weight_decay = 0.0f});
  opt.step();
  EXPECT_FLOAT_EQ(p.value[0], 1.0f);  // frozen
  EXPECT_LT(p.value[1], 1.0f);        // trained
}

TEST(Dataset, DeterministicAndBalanced) {
  SyntheticDataset a(small_data()), b(small_data());
  EXPECT_EQ(a.size(), 600);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.label(i), b.label(i));
    ++counts[static_cast<std::size_t>(a.label(i))];
  }
  for (int c : counts) EXPECT_EQ(c, 60);
  const Tensor batch_a = a.batch({0, 1, 2});
  const Tensor batch_b = b.batch({0, 1, 2});
  for (std::size_t i = 0; i < batch_a.numel(); ++i) {
    EXPECT_FLOAT_EQ(batch_a[i], batch_b[i]);
  }
}

TEST(Dataset, SplitsAreDisjointAndCover) {
  SyntheticDataset data(small_data());
  const auto victim = data.victim_train_indices(100);
  const auto test = data.test_indices(100);
  const auto adversary = data.adversary_indices();
  EXPECT_EQ(victim.size() + test.size() + adversary.size(),
            static_cast<std::size_t>(data.size()));
  EXPECT_EQ(adversary.size(), 60u);  // 10% of corpus
  // Contiguous disjoint ranges.
  EXPECT_EQ(victim.back() + 1, test.front());
  EXPECT_EQ(test.back() + 1, adversary.front());
}

TEST(Trainer, LossDecreasesOnLearnableData) {
  SyntheticDataset data(small_data());
  auto model = tiny_mlp(5);
  TrainOptions options;
  options.epochs = 4;
  options.sgd.lr = 0.05f;
  const auto history =
      train(*model, data, data.victim_train_indices(100), {}, options);
  ASSERT_EQ(history.size(), 4u);
  EXPECT_LT(history.back().loss, history.front().loss);
  EXPECT_GT(history.back().accuracy, 0.5);
}

TEST(Trainer, EvaluateMatchesTrainedModelQuality) {
  SyntheticDataset data(small_data());
  auto model = tiny_mlp(6);
  TrainOptions options;
  options.epochs = 5;
  options.sgd.lr = 0.05f;
  train(*model, data, data.victim_train_indices(100), {}, options);
  const double test_acc = evaluate(*model, data, data.test_indices(100));
  EXPECT_GT(test_acc, 0.5);  // generalizes beyond chance (0.1)
}

TEST(Trainer, TensorCorpusPathMatchesDatasetPath) {
  SyntheticDataset data(small_data());
  const auto idx = data.victim_train_indices(500);  // just 40 samples
  const Tensor images = data.batch(idx);
  const auto labels = data.batch_labels(idx);

  auto model = tiny_mlp(7);
  TrainOptions options;
  options.epochs = 3;
  options.sgd.lr = 0.05f;
  const auto history = train_tensors(*model, images, labels, options);
  EXPECT_LT(history.back().loss, history.front().loss);
  EXPECT_GT(evaluate_tensors(*model, images, labels), 0.55);
}

TEST(Trainer, SliceBatchExtractsRows) {
  Tensor t({3, 1, 1, 2}, {0, 1, 10, 11, 20, 21});
  Tensor s = slice_batch(t, 1, 3);
  EXPECT_EQ(s.shape(), (std::vector<int>{2, 1, 1, 2}));
  EXPECT_FLOAT_EQ(s[0], 10.0f);
  EXPECT_FLOAT_EQ(s[3], 21.0f);
}

TEST(Serialize, RoundTripRestoresParams) {
  auto a = tiny_mlp(8);
  auto b = tiny_mlp(9);  // different init
  const auto bytes = serialize_params(*a);
  EXPECT_EQ(bytes.size(), parameter_count(*a) * sizeof(float));
  deserialize_params(*b, bytes);
  const auto pa = a->params();
  const auto pb = b->params();
  for (std::size_t i = 0; i < pa.size(); ++i) {
    for (std::size_t j = 0; j < pa[i]->value.numel(); ++j) {
      EXPECT_FLOAT_EQ(pa[i]->value[j], pb[i]->value[j]);
    }
  }
}

TEST(Serialize, SizeMismatchThrows) {
  auto model = tiny_mlp(10);
  auto bytes = serialize_params(*model);
  bytes.pop_back();
  EXPECT_THROW(deserialize_params(*model, bytes), std::invalid_argument);
}

TEST(Serialize, CopyParamsTransfersBehaviour) {
  SyntheticDataset data(small_data());
  auto a = tiny_mlp(11);
  TrainOptions options;
  options.epochs = 3;
  options.sgd.lr = 0.05f;
  train(*a, data, data.victim_train_indices(100), {}, options);
  auto b = tiny_mlp(12);
  copy_params(*a, *b);
  const auto idx = data.test_indices(100);
  EXPECT_DOUBLE_EQ(evaluate(*a, data, idx), evaluate(*b, data, idx));
}

}  // namespace
}  // namespace sealdl::nn
