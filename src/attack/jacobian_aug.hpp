// Jacobian-based dataset augmentation (Papernot et al., ASIA CCS'17 —
// paper reference [20]).
//
// The adversary grows its training corpus by perturbing held samples along
// the sign of the substitute's output-gradient for the oracle-assigned class,
// then re-querying the victim for labels: x' = x + lambda * sign(dF_y/dx).
#pragma once

#include "nn/layer.hpp"
#include "nn/tensor.hpp"

#include <vector>

namespace sealdl::attack {

struct JacobianAugOptions {
  float lambda = 0.1f;   ///< perturbation step
  int rounds = 2;        ///< each round doubles the corpus
  int batch_size = 32;
};

/// Gradient of the class-`label` logit w.r.t. the input, per sample.
/// `images` is [N,C,H,W]; `labels` parallel. Returns a tensor of input shape.
nn::Tensor class_logit_input_gradient(nn::Layer& model, const nn::Tensor& images,
                                      const std::vector<int>& labels);

/// Runs the augmentation: starting from `seed_images`, performs
/// `options.rounds` doubling rounds against `substitute`, labelling every new
/// sample with `oracle`. Returns the full corpus (seeds + synthetic).
struct AugmentedCorpus {
  nn::Tensor images;
  std::vector<int> labels;
};

AugmentedCorpus jacobian_augment(nn::Layer& substitute, nn::Layer& oracle,
                                 const nn::Tensor& seed_images,
                                 const std::vector<int>& seed_labels,
                                 const JacobianAugOptions& options);

}  // namespace sealdl::attack
