#include "attack/substitute.hpp"

#include <cmath>
#include <stdexcept>

#include "core/weight_layers.hpp"
#include "nn/loss.hpp"
#include "nn/serialize.hpp"

namespace sealdl::attack {

std::vector<int> query_oracle(nn::Layer& victim, const nn::Tensor& images,
                              int batch_size) {
  const int total = images.dim(0);
  std::vector<int> labels;
  labels.reserve(static_cast<std::size_t>(total));
  for (int start = 0; start < total; start += batch_size) {
    const int end = std::min(total, start + batch_size);
    nn::Tensor logits =
        victim.forward(nn::slice_batch(images, start, end), /*train=*/false);
    for (int p : nn::predict(logits)) labels.push_back(p);
  }
  return labels;
}

std::unique_ptr<nn::Sequential> make_white_box(const ModelFactory& factory,
                                               nn::Layer& victim) {
  auto model = factory();
  nn::copy_params(victim, *model);
  return model;
}

std::unique_ptr<nn::Sequential> make_black_box(const ModelFactory& factory,
                                               const AdversaryCorpus& corpus,
                                               const nn::TrainOptions& train) {
  auto model = factory();
  nn::train_tensors(*model, corpus.images, corpus.labels, train);
  return model;
}

std::unique_ptr<nn::Sequential> make_seal_substitute(
    const ModelFactory& factory, nn::Layer& victim,
    const core::EncryptionPlan& plan, const AdversaryCorpus& corpus,
    const nn::TrainOptions& train, bool freeze_known,
    std::uint64_t reinit_seed) {
  auto model = factory();
  nn::copy_params(victim, *model);

  const auto layers = core::collect_weight_layers(*model);
  if (layers.size() != plan.layer_count()) {
    throw std::invalid_argument("substitute: plan does not match architecture");
  }

  util::Rng rng(reinit_seed);
  for (std::size_t li = 0; li < layers.size(); ++li) {
    const core::WeightLayerRef& layer = layers[li];
    const core::LayerPlan& lp = plan.layer(li);
    nn::Param& weight = *layer.weight;
    // He-scaled normal for the unknown rows — the paper fills a standard
    // normal [7]; we keep the He scale so the re-initialised rows match the
    // activation statistics of the known ones and fine-tuning is stable.
    const float stddev = std::sqrt(
        2.0f / (static_cast<float>(layer.rows) * static_cast<float>(layer.weights_per_cell)));

    if (freeze_known) weight.mask = weight.value.zeros_like();
    if (layer.is_conv) {
      const int cell = layer.weights_per_cell;
      for (int oc = 0; oc < layer.cols; ++oc) {
        for (int ic = 0; ic < layer.rows; ++ic) {
          if (!lp.row_encrypted(ic)) continue;  // known row: stays frozen
          const std::size_t base =
              (static_cast<std::size_t>(oc) * static_cast<std::size_t>(layer.rows) +
               static_cast<std::size_t>(ic)) *
              static_cast<std::size_t>(cell);
          for (int i = 0; i < cell; ++i) {
            weight.value[base + static_cast<std::size_t>(i)] = rng.normal(0.0f, stddev);
            if (freeze_known) weight.mask[base + static_cast<std::size_t>(i)] = 1.0f;
          }
        }
      }
    } else {
      for (int o = 0; o < layer.cols; ++o) {
        for (int i = 0; i < layer.rows; ++i) {
          if (!lp.row_encrypted(i)) continue;
          const std::size_t idx =
              static_cast<std::size_t>(o) * static_cast<std::size_t>(layer.rows) +
              static_cast<std::size_t>(i);
          weight.value[idx] = rng.normal(0.0f, stddev);
          if (freeze_known) weight.mask[idx] = 1.0f;
        }
      }
    }
  }

  // Every non-kernel parameter (biases, batch-norm affine) travels with the
  // encrypted side of the model: unknown to the adversary, fully trainable.
  // (collect_weight_layers covers kernels only; leave other params unmasked.)
  nn::train_tensors(*model, corpus.images, corpus.labels, train);

  // Clear masks so the returned model behaves like an ordinary network.
  for (nn::Param* p : model->params()) p->clear_mask();
  return model;
}

}  // namespace sealdl::attack
