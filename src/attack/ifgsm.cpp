#include "attack/ifgsm.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "nn/loss.hpp"
#include "nn/trainer.hpp"

namespace sealdl::attack {

AdversarialBatch generate_ifgsm(nn::Layer& substitute, const nn::Tensor& images,
                                const std::vector<int>& labels, int classes,
                                const IfgsmOptions& options) {
  AdversarialBatch out;
  out.images = images;
  out.true_labels = labels;
  const int total = images.dim(0);
  const std::size_t per = images.numel() / static_cast<std::size_t>(total);

  // Pre-assign a random incorrect target per example.
  util::Rng rng(options.target_seed);
  out.targets.resize(static_cast<std::size_t>(total));
  for (int i = 0; i < total; ++i) {
    int target = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(classes - 1)));
    if (target >= labels[static_cast<std::size_t>(i)]) ++target;
    out.targets[static_cast<std::size_t>(i)] = target;
  }
  out.fooled_substitute.assign(static_cast<std::size_t>(total), false);

  for (int start = 0; start < total; start += options.batch_size) {
    const int end = std::min(total, start + options.batch_size);
    const int n = end - start;
    nn::Tensor x = nn::slice_batch(images, start, end);
    nn::Tensor x0 = x;
    std::vector<int> targets(out.targets.begin() + start, out.targets.begin() + end);
    std::vector<bool> done(static_cast<std::size_t>(n), false);

    for (int iter = 0; iter < options.max_iters; ++iter) {
      nn::Tensor logits = substitute.forward(x, /*train=*/true);
      const auto preds = nn::predict(logits);
      bool all_done = true;
      for (int i = 0; i < n; ++i) {
        done[static_cast<std::size_t>(i)] = preds[static_cast<std::size_t>(i)] == targets[static_cast<std::size_t>(i)];
        all_done = all_done && done[static_cast<std::size_t>(i)];
      }
      if (all_done) break;

      // Descend the targeted cross-entropy: x <- x - alpha*sign(grad).
      const nn::LossResult loss = nn::softmax_cross_entropy(logits, targets);
      nn::Tensor grad = substitute.backward(loss.grad);
      for (int i = 0; i < n; ++i) {
        if (done[static_cast<std::size_t>(i)]) continue;  // keep successes intact
        float* xi = x.data() + static_cast<std::size_t>(i) * per;
        const float* x0i = x0.data() + static_cast<std::size_t>(i) * per;
        const float* gi = grad.data() + static_cast<std::size_t>(i) * per;
        for (std::size_t j = 0; j < per; ++j) {
          const float s = gi[j] > 0.0f ? 1.0f : (gi[j] < 0.0f ? -1.0f : 0.0f);
          float v = xi[j] - options.alpha * s;
          v = std::clamp(v, x0i[j] - options.epsilon, x0i[j] + options.epsilon);
          xi[j] = v;
        }
      }
    }

    // Record the final substitute verdict and copy the perturbed batch back.
    nn::Tensor logits = substitute.forward(x, /*train=*/false);
    const auto preds = nn::predict(logits);
    for (int i = 0; i < n; ++i) {
      out.fooled_substitute[static_cast<std::size_t>(start + i)] =
          preds[static_cast<std::size_t>(i)] == targets[static_cast<std::size_t>(i)];
    }
    std::memcpy(out.images.data() + static_cast<std::size_t>(start) * per, x.data(),
                static_cast<std::size_t>(n) * per * sizeof(float));
  }
  return out;
}

TransferResult evaluate_transfer(nn::Layer& victim, const AdversarialBatch& batch,
                                 int batch_size) {
  const int total = batch.images.dim(0);
  TransferResult result;
  std::size_t substitute_ok = 0, transferred = 0;
  for (int start = 0; start < total; start += batch_size) {
    const int end = std::min(total, start + batch_size);
    nn::Tensor logits =
        victim.forward(nn::slice_batch(batch.images, start, end), /*train=*/false);
    const auto preds = nn::predict(logits);
    for (int i = start; i < end; ++i) {
      if (!batch.fooled_substitute[static_cast<std::size_t>(i)]) continue;
      ++substitute_ok;
      if (preds[static_cast<std::size_t>(i - start)] !=
          batch.true_labels[static_cast<std::size_t>(i)]) {
        ++transferred;
      }
    }
  }
  result.substitute_success =
      total ? static_cast<double>(substitute_ok) / static_cast<double>(total) : 0.0;
  result.transferability =
      substitute_ok ? static_cast<double>(transferred) / static_cast<double>(substitute_ok)
                    : 0.0;
  return result;
}

}  // namespace sealdl::attack
