// The adversary's bus snooper (paper §II-A threat model).
//
// Attached as a BusProbe to the functional memory (or the timing memory
// controllers), it records the last wire image of every line transferred on
// the memory bus. Under the strong attack model (§III-B) the adversary also
// knows which address ranges belong to which tensors, so it can attempt to
// reassemble the NN model from the captured image — recovering plaintext
// rows exactly and garbage (ciphertext) for encrypted rows.
#pragma once

#include <array>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "sim/bus_probe.hpp"

namespace sealdl::attack {

class BusSnooper final : public sim::BusProbe {
 public:
  void on_transfer(sim::Addr line_addr, std::uint32_t bytes, bool is_write,
                   bool encrypted) override;

  void on_data(sim::Addr line_addr, std::span<const std::uint8_t> wire_bytes,
               bool is_write, bool encrypted) override;

  /// Reconstructs [addr, addr+size) from captured lines. Bytes from lines the
  /// snooper never saw read back as zero; `seen` (optional) reports coverage.
  [[nodiscard]] std::vector<std::uint8_t> extract(sim::Addr addr,
                                                  std::uint64_t size) const;

  /// True if every byte of the range was observed on the bus.
  [[nodiscard]] bool fully_observed(sim::Addr addr, std::uint64_t size) const;

  /// True if any captured transfer covering the range was flagged encrypted.
  [[nodiscard]] bool saw_ciphertext(sim::Addr addr, std::uint64_t size) const;

  [[nodiscard]] std::uint64_t transfers() const { return transfers_; }
  [[nodiscard]] std::uint64_t encrypted_transfers() const { return encrypted_transfers_; }
  [[nodiscard]] std::uint64_t bytes_on_bus() const { return bytes_; }

  void clear();

 private:
  struct LineCapture {
    std::array<std::uint8_t, 128> bytes{};
    bool encrypted = false;
  };
  std::unordered_map<sim::Addr, LineCapture> lines_;
  std::uint64_t transfers_ = 0;
  std::uint64_t encrypted_transfers_ = 0;
  std::uint64_t bytes_ = 0;
};

}  // namespace sealdl::attack
