#include "attack/bus_snooper.hpp"

#include <algorithm>
#include <cstring>

namespace sealdl::attack {

void BusSnooper::on_transfer(sim::Addr line_addr, std::uint32_t bytes,
                             bool is_write, bool encrypted) {
  (void)line_addr;
  (void)is_write;
  ++transfers_;
  if (encrypted) ++encrypted_transfers_;
  bytes_ += bytes;
}

void BusSnooper::on_data(sim::Addr line_addr,
                         std::span<const std::uint8_t> wire_bytes, bool is_write,
                         bool encrypted) {
  (void)is_write;
  LineCapture& capture = lines_[line_addr];
  const std::size_t n = std::min<std::size_t>(wire_bytes.size(), capture.bytes.size());
  std::memcpy(capture.bytes.data(), wire_bytes.data(), n);
  capture.encrypted = encrypted;
}

std::vector<std::uint8_t> BusSnooper::extract(sim::Addr addr,
                                              std::uint64_t size) const {
  std::vector<std::uint8_t> out(size, 0);
  std::uint64_t offset = 0;
  while (offset < size) {
    const sim::Addr line = (addr + offset) & ~static_cast<sim::Addr>(127);
    const std::uint64_t in_line = (addr + offset) - line;
    const std::uint64_t n = std::min<std::uint64_t>(128 - in_line, size - offset);
    const auto it = lines_.find(line);
    if (it != lines_.end()) {
      std::memcpy(out.data() + offset, it->second.bytes.data() + in_line, n);
    }
    offset += n;
  }
  return out;
}

bool BusSnooper::fully_observed(sim::Addr addr, std::uint64_t size) const {
  for (sim::Addr line = addr & ~static_cast<sim::Addr>(127); line < addr + size;
       line += 128) {
    if (!lines_.count(line)) return false;
  }
  return true;
}

bool BusSnooper::saw_ciphertext(sim::Addr addr, std::uint64_t size) const {
  for (sim::Addr line = addr & ~static_cast<sim::Addr>(127); line < addr + size;
       line += 128) {
    const auto it = lines_.find(line);
    if (it != lines_.end() && it->second.encrypted) return true;
  }
  return false;
}

void BusSnooper::clear() {
  lines_.clear();
  transfers_ = encrypted_transfers_ = bytes_ = 0;
}

}  // namespace sealdl::attack
