#include "attack/jacobian_aug.hpp"

#include <algorithm>
#include <cstring>

#include "attack/substitute.hpp"
#include "nn/trainer.hpp"

namespace sealdl::attack {

nn::Tensor class_logit_input_gradient(nn::Layer& model, const nn::Tensor& images,
                                      const std::vector<int>& labels) {
  // Forward in train mode (to cache activations), then backpropagate a
  // one-hot gradient selecting each sample's class logit.
  nn::Tensor logits = model.forward(images, /*train=*/true);
  nn::Tensor grad_out = logits.zeros_like();
  for (int n = 0; n < logits.dim(0); ++n) {
    grad_out.at2(n, labels[static_cast<std::size_t>(n)]) = 1.0f;
  }
  return model.backward(grad_out);
}

AugmentedCorpus jacobian_augment(nn::Layer& substitute, nn::Layer& oracle,
                                 const nn::Tensor& seed_images,
                                 const std::vector<int>& seed_labels,
                                 const JacobianAugOptions& options) {
  AugmentedCorpus corpus{seed_images, seed_labels};
  for (int round = 0; round < options.rounds; ++round) {
    const int n = corpus.images.dim(0);
    const std::size_t per =
        corpus.images.numel() / static_cast<std::size_t>(n);
    std::vector<int> shape = corpus.images.shape();
    shape[0] = 2 * n;
    nn::Tensor next(shape);
    std::memcpy(next.data(), corpus.images.data(),
                corpus.images.numel() * sizeof(float));

    for (int start = 0; start < n; start += options.batch_size) {
      const int end = std::min(n, start + options.batch_size);
      nn::Tensor batch = nn::slice_batch(corpus.images, start, end);
      std::vector<int> batch_labels(
          corpus.labels.begin() + start, corpus.labels.begin() + end);
      nn::Tensor grad =
          class_logit_input_gradient(substitute, batch, batch_labels);
      for (int i = start; i < end; ++i) {
        float* dst = next.data() + static_cast<std::size_t>(n + i) * per;
        const float* src = corpus.images.data() + static_cast<std::size_t>(i) * per;
        const float* g = grad.data() + static_cast<std::size_t>(i - start) * per;
        for (std::size_t j = 0; j < per; ++j) {
          const float s = g[j] > 0.0f ? 1.0f : (g[j] < 0.0f ? -1.0f : 0.0f);
          dst[j] = src[j] + options.lambda * s;
        }
      }
    }
    corpus.images = std::move(next);
    const auto new_labels = query_oracle(
        oracle, nn::slice_batch(corpus.images, n, 2 * n), options.batch_size);
    corpus.labels.insert(corpus.labels.end(), new_labels.begin(), new_labels.end());
  }
  return corpus;
}

}  // namespace sealdl::attack
