// End-to-end security-experiment pipeline (paper §III-B): trains a victim,
// builds the adversary corpus (held-out split + Jacobian augmentation against
// the victim oracle), and produces white-box / black-box / SEAL substitutes.
// Shared by the Fig. 3 and Fig. 4 benches and the integration tests.
#pragma once

#include <memory>
#include <string>

#include "attack/jacobian_aug.hpp"
#include "attack/substitute.hpp"
#include "core/encryption_plan.hpp"
#include "models/build.hpp"
#include "nn/dataset.hpp"
#include "nn/trainer.hpp"

namespace sealdl::attack {

struct PipelineOptions {
  std::string model = "vgg16";
  models::BuildOptions build;       ///< victim/substitute architecture
  nn::DatasetConfig dataset;
  int test_holdout = 500;           ///< victim-pool samples reserved for eval
  nn::TrainOptions victim_train;
  nn::TrainOptions substitute_train;
  JacobianAugOptions augment;
  /// Paper's frozen-known-rows adversary vs the stronger init-only one (see
  /// make_seal_substitute).
  bool freeze_known = false;
};

class SecurityPipeline {
 public:
  explicit SecurityPipeline(PipelineOptions options);

  /// Trains the victim and assembles the adversary corpus. Call once.
  void prepare();

  [[nodiscard]] nn::Sequential& victim() { return *victim_; }
  [[nodiscard]] const nn::SyntheticDataset& dataset() const { return dataset_; }
  [[nodiscard]] const AdversaryCorpus& corpus() const { return corpus_; }
  [[nodiscard]] const PipelineOptions& options() const { return options_; }

  /// Victim accuracy on the held-out test set.
  [[nodiscard]] double victim_test_accuracy();

  /// Accuracy of an arbitrary model on the victim's test set (the IP-stealing
  /// metric of Fig. 3).
  [[nodiscard]] double test_accuracy(nn::Layer& model);

  std::unique_ptr<nn::Sequential> white_box();
  std::unique_ptr<nn::Sequential> black_box();

  /// SEAL substitute for the given encryption ratio; also returns the plan
  /// used (via out-param) when callers need it.
  std::unique_ptr<nn::Sequential> seal_substitute(double ratio,
                                                  core::EncryptionPlan* plan_out =
                                                      nullptr);

  /// Test images + labels for adversarial-example generation (Fig. 4).
  [[nodiscard]] nn::Tensor test_images(int count) const;
  [[nodiscard]] std::vector<int> test_labels(int count) const;

 private:
  [[nodiscard]] ModelFactory factory() const;

  PipelineOptions options_;
  nn::SyntheticDataset dataset_;
  std::unique_ptr<nn::Sequential> victim_;
  AdversaryCorpus corpus_;
  bool prepared_ = false;
};

}  // namespace sealdl::attack
