// Substitute-model generation (paper §III-B1).
//
// Three adversary knowledge levels:
//  * white-box — no encryption: the substitute IS the victim;
//  * black-box — full encryption: fresh model retrained purely from
//    oracle-labelled queries;
//  * SEAL      — selective encryption: known (plaintext) kernel rows are
//    copied and frozen; unknown (encrypted) rows are re-initialised from a
//    normal distribution [7] and fine-tuned on oracle-labelled queries.
#pragma once

#include <functional>
#include <memory>

#include "core/encryption_plan.hpp"
#include "nn/network.hpp"
#include "nn/trainer.hpp"
#include "util/rng.hpp"

namespace sealdl::attack {

/// Builds a fresh, untrained instance of the victim architecture (the strong
/// attack model assumes the architecture is known via side channels).
using ModelFactory = std::function<std::unique_ptr<nn::Sequential>()>;

/// Oracle-labelled training corpus assembled by the adversary.
struct AdversaryCorpus {
  nn::Tensor images;        ///< [N, C, H, W]
  std::vector<int> labels;  ///< victim-assigned labels
};

/// Labels `images` by querying `victim` (the accelerator's output interface).
std::vector<int> query_oracle(nn::Layer& victim, const nn::Tensor& images,
                              int batch_size = 64);

/// Exact copy of the victim (the no-encryption outcome).
std::unique_ptr<nn::Sequential> make_white_box(const ModelFactory& factory,
                                               nn::Layer& victim);

/// Fresh model trained only on the adversary corpus (full encryption).
std::unique_ptr<nn::Sequential> make_black_box(const ModelFactory& factory,
                                               const AdversaryCorpus& corpus,
                                               const nn::TrainOptions& train);

/// SEAL substitute: copies the victim, re-initialises encrypted rows, then
/// fine-tunes on the corpus. `plan` is the victim's encryption plan under the
/// tested ratio.
///
/// `freeze_known` selects the adversary variant: the paper's §III-B1
/// adversary pins the known rows and trains only the unknown ones; the
/// default here trains everything with the known rows as initialisation — a
/// strictly stronger adversary (it can always recover the black-box solution)
/// whose accuracy-vs-ratio curve is monotone like the paper's Fig. 3. At
/// this reproduction's reduced scale the frozen variant is handicapped by its
/// constrained optimisation and underperforms even the black-box attack; both
/// variants are kept for the ablation.
std::unique_ptr<nn::Sequential> make_seal_substitute(
    const ModelFactory& factory, nn::Layer& victim,
    const core::EncryptionPlan& plan, const AdversaryCorpus& corpus,
    const nn::TrainOptions& train, bool freeze_known = false,
    std::uint64_t reinit_seed = 97);

}  // namespace sealdl::attack
