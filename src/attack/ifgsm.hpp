// Iterative FGSM adversarial-example generation (Kurakin et al. — paper
// reference [12]) and transferability evaluation (paper §III-B3).
//
// Targeted attack: push each input toward a pre-assigned incorrect class on
// the *substitute* model, iterating until the substitute predicts the target
// (the paper's batches have 100% success on their own substitute), then
// measure how many of those examples also fool the *victim*.
#pragma once

#include <cstdint>
#include <vector>

#include "nn/layer.hpp"
#include "nn/tensor.hpp"
#include "util/rng.hpp"

namespace sealdl::attack {

struct IfgsmOptions {
  float alpha = 0.02f;      ///< per-iteration step
  float epsilon = 0.25f;    ///< L-inf perturbation budget
  int max_iters = 40;
  int batch_size = 32;
  std::uint64_t target_seed = 123;  ///< random pre-assigned target classes
};

struct AdversarialBatch {
  nn::Tensor images;             ///< perturbed inputs
  std::vector<int> true_labels;  ///< original labels
  std::vector<int> targets;      ///< pre-assigned incorrect classes
  std::vector<bool> fooled_substitute;  ///< per-example success on substitute
};

/// Generates adversarial examples against `substitute` from clean `images`.
AdversarialBatch generate_ifgsm(nn::Layer& substitute, const nn::Tensor& images,
                                const std::vector<int>& labels, int classes,
                                const IfgsmOptions& options);

struct TransferResult {
  double substitute_success = 0.0;  ///< fraction fooling the substitute
  double transferability = 0.0;     ///< fraction (of substitute successes)
                                    ///< that also mislead the victim
};

/// Evaluates `batch` against the victim. An example transfers when the victim
/// misclassifies it (prediction != true label), the standard transferability
/// criterion for substitute-model attacks [4].
TransferResult evaluate_transfer(nn::Layer& victim, const AdversarialBatch& batch,
                                 int batch_size = 64);

}  // namespace sealdl::attack
