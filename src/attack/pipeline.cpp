#include "attack/pipeline.hpp"

#include <stdexcept>

namespace sealdl::attack {

SecurityPipeline::SecurityPipeline(PipelineOptions options)
    : options_(std::move(options)), dataset_(options_.dataset) {}

ModelFactory SecurityPipeline::factory() const {
  return [this] { return models::build_model(options_.model, options_.build); };
}

void SecurityPipeline::prepare() {
  if (prepared_) return;
  // 1. Victim trains on its private 90% pool (§III-B1).
  victim_ = factory()();
  nn::train(*victim_, dataset_, dataset_.victim_train_indices(options_.test_holdout),
            {}, options_.victim_train);

  // 2. Adversary holds the remaining 10%, labels it via the oracle, then
  //    expands it with Jacobian-based augmentation [20].
  const auto adversary_idx = dataset_.adversary_indices();
  nn::Tensor seeds = dataset_.batch(adversary_idx);
  std::vector<int> seed_labels = query_oracle(*victim_, seeds);

  // The augmentation needs a rough substitute to differentiate through; the
  // standard protocol bootstraps with a briefly trained fresh model.
  auto bootstrap = factory()();
  nn::TrainOptions boot_train = options_.substitute_train;
  boot_train.epochs = std::max(1, boot_train.epochs / 2);
  nn::train_tensors(*bootstrap, seeds, seed_labels, boot_train);

  const AugmentedCorpus augmented = jacobian_augment(
      *bootstrap, *victim_, seeds, seed_labels, options_.augment);
  corpus_.images = augmented.images;
  corpus_.labels = augmented.labels;
  prepared_ = true;
}

double SecurityPipeline::victim_test_accuracy() { return test_accuracy(*victim_); }

double SecurityPipeline::test_accuracy(nn::Layer& model) {
  const auto test_idx = dataset_.test_indices(options_.test_holdout);
  return nn::evaluate(model, dataset_, test_idx);
}

std::unique_ptr<nn::Sequential> SecurityPipeline::white_box() {
  if (!prepared_) throw std::logic_error("pipeline: call prepare() first");
  return make_white_box(factory(), *victim_);
}

std::unique_ptr<nn::Sequential> SecurityPipeline::black_box() {
  if (!prepared_) throw std::logic_error("pipeline: call prepare() first");
  return make_black_box(factory(), corpus_, options_.substitute_train);
}

std::unique_ptr<nn::Sequential> SecurityPipeline::seal_substitute(
    double ratio, core::EncryptionPlan* plan_out) {
  if (!prepared_) throw std::logic_error("pipeline: call prepare() first");
  core::PlanOptions plan_options;
  plan_options.encryption_ratio = ratio;
  const auto plan = core::EncryptionPlan::from_model(*victim_, plan_options);
  if (plan_out) *plan_out = plan;
  return make_seal_substitute(factory(), *victim_, plan, corpus_,
                              options_.substitute_train, options_.freeze_known);
}

nn::Tensor SecurityPipeline::test_images(int count) const {
  auto idx = dataset_.test_indices(options_.test_holdout);
  idx.resize(std::min<std::size_t>(idx.size(), static_cast<std::size_t>(count)));
  return dataset_.batch(idx);
}

std::vector<int> SecurityPipeline::test_labels(int count) const {
  auto idx = dataset_.test_indices(options_.test_holdout);
  idx.resize(std::min<std::size_t>(idx.size(), static_cast<std::size_t>(count)));
  return dataset_.batch_labels(idx);
}

}  // namespace sealdl::attack
