#include "verify/fleet_checkers.hpp"

#include <cmath>
#include <cstdio>
#include <string>

namespace sealdl::verify {

namespace {

void add_error(Report& report, const char* rule, std::string message) {
  Diagnostic diagnostic;
  diagnostic.rule = rule;
  diagnostic.severity = Severity::kError;
  diagnostic.message = std::move(message);
  report.add(std::move(diagnostic));
}

std::string fmt(const char* format, double value) {
  char buffer[160];
  std::snprintf(buffer, sizeof(buffer), format, value);
  return buffer;
}

}  // namespace

std::vector<std::string> fleet_rules() {
  return {"fleet.options.devices", "fleet.options.router",
          "fleet.options.shard",   "fleet.options.link",
          "fleet.devices",         "fleet.requests",
          "fleet.batches",         "fleet.stages"};
}

void check_fleet_options(const serve::FleetOptions& options, Report& report) {
  if (options.devices < 1) {
    add_error(report, "fleet.options.devices",
              "device count must be >= 1 (got " +
                  std::to_string(options.devices) + ")");
  }
  if (!serve::router_known(options.router)) {
    add_error(report, "fleet.options.router",
              "router policy value " +
                  std::to_string(static_cast<int>(options.router)) +
                  " is not a declared enumerator "
                  "(round-robin|least-loaded|affinity)");
  }
  if (options.shard_stages < 1) {
    add_error(report, "fleet.options.shard",
              "shard stages must be >= 1 (got " +
                  std::to_string(options.shard_stages) + ")");
  } else if (options.devices >= 1 &&
             (options.shard_stages > options.devices ||
              options.devices % options.shard_stages != 0)) {
    add_error(report, "fleet.options.shard",
              std::to_string(options.devices) + " device(s) cannot host " +
                  std::to_string(options.shard_stages) +
                  "-stage pipelines: devices must be a multiple of the "
                  "stage count");
  }
  if (options.microbatch < 1) {
    add_error(report, "fleet.options.shard",
              "microbatch count must be >= 1 (got " +
                  std::to_string(options.microbatch) + ")");
  }
  if (!(options.link_latency_cycles >= 0.0) ||
      !std::isfinite(options.link_latency_cycles)) {
    add_error(report, "fleet.options.link",
              fmt("link latency must be finite and >= 0 cycles (got %g)",
                  options.link_latency_cycles));
  }
  if (!(options.link_bytes_per_cycle > 0.0) ||
      !std::isfinite(options.link_bytes_per_cycle)) {
    add_error(report, "fleet.options.link",
              fmt("link bandwidth must be a positive finite bytes/cycle "
                  "(got %g)",
                  options.link_bytes_per_cycle));
  }
}

void check_fleet_report(const serve::FleetOptions& options,
                        const serve::FleetReport& fleet, Report& report) {
  const serve::ServeReport& totals = fleet.totals;

  // fleet.devices: structural consistency of the per-device decomposition.
  if (fleet.device_reports.size() !=
      static_cast<std::size_t>(options.devices)) {
    add_error(report, "fleet.devices",
              "report carries " + std::to_string(fleet.device_reports.size()) +
                  " device entries for a " + std::to_string(options.devices) +
                  "-device fleet");
  }
  if (fleet.devices != options.devices || fleet.stages != options.shard_stages ||
      fleet.pipelines * fleet.stages != fleet.devices) {
    add_error(report, "fleet.devices",
              "fleet shape (" + std::to_string(fleet.devices) + " devices, " +
                  std::to_string(fleet.pipelines) + " pipelines x " +
                  std::to_string(fleet.stages) +
                  " stages) does not match the configuration");
  }
  const double end = static_cast<double>(totals.end_cycle);
  for (std::size_t i = 0; i < fleet.device_reports.size(); ++i) {
    const serve::DeviceReport& dev = fleet.device_reports[i];
    if (dev.device != static_cast<int>(i) ||
        dev.pipeline != dev.device / std::max(1, fleet.stages) ||
        dev.stage != dev.device % std::max(1, fleet.stages)) {
      add_error(report, "fleet.devices",
                "device entry " + std::to_string(i) +
                    " has inconsistent device/pipeline/stage indices");
    }
    // +1 cycle: totals.end_cycle is an integer-truncated cast of the same
    // double timeline last_free/busy_cycles live on.
    const double bound = end * (1.0 + 1e-9) + 1.0;
    if (dev.busy_cycles > bound || dev.last_free > bound) {
      add_error(report, "fleet.devices",
                "device " + std::to_string(dev.device) +
                    " reports more busy time than the run lasted (" +
                    fmt("%.0f cycles busy, ", dev.busy_cycles) +
                    fmt("run ended at %.0f)", end));
    }
  }

  // fleet.requests: per-device admission outcomes reconcile with totals.
  std::uint64_t routed = 0, completed = 0, dropped = 0, shed = 0, blocked = 0;
  for (const serve::DeviceReport& dev : fleet.device_reports) {
    routed += dev.routed;
    completed += dev.completed;
    dropped += dev.dropped;
    shed += dev.shed;
    blocked += dev.blocked;
  }
  const auto require_sum = [&report](const char* rule, const char* what,
                                     std::uint64_t device_sum,
                                     std::uint64_t total) {
    if (device_sum != total) {
      add_error(report, rule,
                std::string("per-device ") + what + " sum to " +
                    std::to_string(device_sum) + " but the fleet total is " +
                    std::to_string(total));
    }
  };
  require_sum("fleet.requests", "routed arrivals", routed, totals.generated);
  require_sum("fleet.requests", "completions", completed, totals.completed);
  require_sum("fleet.requests", "drops", dropped, totals.dropped);
  require_sum("fleet.requests", "sheds", shed, totals.shed);
  require_sum("fleet.requests", "blocked arrivals", blocked, totals.blocked);
  if (totals.completed + totals.dropped + totals.shed != totals.generated) {
    add_error(report, "fleet.requests",
              "request conservation broken: " +
                  std::to_string(totals.completed) + " completed + " +
                  std::to_string(totals.dropped) + " dropped + " +
                  std::to_string(totals.shed) + " shed != " +
                  std::to_string(totals.generated) + " generated");
  }

  // fleet.batches: dispatch and microbatch-stage execution decomposition.
  std::uint64_t batches = 0, stage_runs = 0;
  for (const serve::DeviceReport& dev : fleet.device_reports) {
    batches += dev.batches;
    stage_runs += dev.stage_runs;
  }
  require_sum("fleet.batches", "batch dispatches", batches, totals.batches);
  require_sum("fleet.batches", "stage runs", stage_runs, fleet.stage_runs);
  if (fleet.stage_runs !=
      fleet.microbatches * static_cast<std::uint64_t>(fleet.stages)) {
    add_error(report, "fleet.batches",
              std::to_string(fleet.stage_runs) + " stage runs != " +
                  std::to_string(fleet.microbatches) + " microbatches x " +
                  std::to_string(fleet.stages) + " stages");
  }

  // fleet.stages: the lifecycle decomposition of every completed request
  // still sums exactly to its end-to-end latency under sharding.
  const double scale = std::max(1.0, std::fabs(totals.latency_cycles_sum));
  if (!(std::fabs(totals.stage_cycles_sum - totals.latency_cycles_sum) <=
        1e-9 * scale)) {
    char buffer[160];
    std::snprintf(buffer, sizeof(buffer),
                  "lifecycle stages sum to %.6f cycles but measured "
                  "end-to-end latency sums to %.6f",
                  totals.stage_cycles_sum, totals.latency_cycles_sum);
    add_error(report, "fleet.stages", buffer);
  }
}

Report run_fleet_options_check(const serve::FleetOptions& options) {
  Report report;
  check_fleet_options(options, report);
  return report;
}

Report run_fleet_report_check(const serve::FleetOptions& options,
                              const serve::FleetReport& fleet) {
  Report report;
  check_fleet_report(options, fleet, report);
  return report;
}

}  // namespace sealdl::verify
