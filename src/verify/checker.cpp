#include "verify/checker.hpp"

namespace sealdl::verify {

std::vector<std::unique_ptr<Checker>> default_checkers(
    const TraceCheckOptions& trace_options) {
  auto checkers = make_plan_checkers();
  for (auto& checker : make_layout_checkers()) {
    checkers.push_back(std::move(checker));
  }
  checkers.push_back(make_trace_checker(trace_options));
  return checkers;
}

Report run_checkers(const AnalysisInput& input,
                    const std::vector<std::unique_ptr<Checker>>& checkers,
                    std::size_t max_per_rule) {
  Report report(max_per_rule);
  for (const auto& checker : checkers) checker->run(input, report);
  return report;
}

}  // namespace sealdl::verify
