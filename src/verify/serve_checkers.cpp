#include "verify/serve_checkers.hpp"

#include <cmath>
#include <cstdio>

namespace sealdl::verify {

namespace {

void add_error(Report& report, const char* rule, std::string message) {
  Diagnostic diagnostic;
  diagnostic.rule = rule;
  diagnostic.severity = Severity::kError;
  diagnostic.message = std::move(message);
  report.add(std::move(diagnostic));
}

std::string fmt(const char* format, double value) {
  // Large enough that no message + "%g" rendering can truncate.
  char buffer[128];
  std::snprintf(buffer, sizeof(buffer), format, value);
  return buffer;
}

}  // namespace

std::vector<std::string> serve_option_rules() {
  return {"serve.options.rate",   "serve.options.duration",
          "serve.options.queue",  "serve.options.policy",
          "serve.options.jobs",   "serve.options.overhead",
          "serve.options.live",   "serve.options.profile"};
}

void check_serve_options(const serve::ServeOptions& options, int jobs,
                         Report& report) {
  if (!(options.rate_rps > 0.0) || !std::isfinite(options.rate_rps)) {
    add_error(report, "serve.options.rate",
              fmt("offered rate must be a positive finite req/s (got %g)",
                  options.rate_rps));
  }
  if (!(options.duration_s > 0.0) || !std::isfinite(options.duration_s)) {
    add_error(report, "serve.options.duration",
              fmt("arrival window must be a positive finite second count "
                  "(got %g)",
                  options.duration_s));
  }
  if (options.max_batch < 1) {
    add_error(report, "serve.options.queue",
              "max batch must be >= 1 (got " +
                  std::to_string(options.max_batch) + ")");
  }
  if (options.queue_depth == 0) {
    // Explicitly rejected: a zero-capacity queue makes every overload policy
    // degenerate (shed-oldest has no victim and silently becomes drop).
    add_error(report, "serve.options.queue",
              "queue depth 0 is rejected: no request could ever be admitted");
  } else if (options.max_batch >= 1 &&
             options.queue_depth < static_cast<std::size_t>(options.max_batch)) {
    add_error(report, "serve.options.queue",
              "queue depth " + std::to_string(options.queue_depth) +
                  " < max batch " + std::to_string(options.max_batch) +
                  ": a dispatch could never assemble a full batch");
  }
  if (!serve::policy_known(options.policy)) {
    add_error(report, "serve.options.policy",
              "overload policy value " +
                  std::to_string(static_cast<int>(options.policy)) +
                  " is not a declared enumerator (drop|block|shed-oldest)");
  }
  if (jobs < 0) {
    add_error(report, "serve.options.jobs",
              "profiling jobs must be >= 1, or 0 for one worker per "
              "hardware thread (got " +
                  std::to_string(jobs) + ")");
  }
  if (!(options.dispatch_overhead_cycles >= 0.0) ||
      !std::isfinite(options.dispatch_overhead_cycles)) {
    add_error(report, "serve.options.overhead",
              fmt("dispatch overhead must be finite and >= 0 cycles (got %g)",
                  options.dispatch_overhead_cycles));
  }
  if (options.live_stats &&
      (!(options.live_stats_interval_s > 0.0) ||
       !std::isfinite(options.live_stats_interval_s))) {
    add_error(report, "serve.options.live",
              fmt("live-stats interval must be positive seconds (got %g)",
                  options.live_stats_interval_s));
  }
  if (options.profile) {
    if (options.profile_path.empty()) {
      add_error(report, "serve.options.profile",
                "profile output path must be non-empty");
    } else if (options.profile_path.back() == '/') {
      add_error(report, "serve.options.profile",
                "profile output path '" + options.profile_path +
                    "' names a directory, not a writable file");
    }
  }
}

Report run_serve_options_check(const serve::ServeOptions& options, int jobs) {
  Report report;
  check_serve_options(options, jobs, report);
  return report;
}

}  // namespace sealdl::verify
