#include "verify/analysis.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace sealdl::verify {

namespace {

using models::LayerSpec;

bool ends_with(const std::string& s, const char* suffix) {
  const std::size_t n = std::char_traits<char>::length(suffix);
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

void derive_regions(AnalysisInput& input) {
  const auto& layers = input.layout->layers();
  for (std::size_t i = 0; i < layers.size(); ++i) {
    const auto& layer = layers[i];
    const LayerSpec& s = input.specs[i];
    Region fmap;
    fmap.kind = Region::Kind::kFmap;
    fmap.begin = layer.ifmap_base;
    fmap.pitch = layer.ifmap_channel_pitch;
    fmap.units = layer.ifmap_channels;
    fmap.end = fmap.begin + fmap.pitch * static_cast<std::uint64_t>(fmap.units);
    fmap.spec_index = i;
    fmap.dense_fc = s.type == LayerSpec::Type::kFc;
    fmap.name = s.name + ".in";
    input.regions.push_back(fmap);

    if (s.type != LayerSpec::Type::kPool) {
      Region weights;
      weights.kind = Region::Kind::kWeights;
      weights.begin = layer.weight_base;
      weights.pitch = layer.weight_row_pitch;
      weights.units =
          s.type == LayerSpec::Type::kConv ? s.in_channels : s.in_features;
      weights.end =
          weights.begin + weights.pitch * static_cast<std::uint64_t>(weights.units);
      weights.spec_index = i;
      weights.name = s.name + ".weights";
      input.regions.push_back(weights);
    }
  }
  const auto& last = layers.back();
  Region out;
  out.kind = Region::Kind::kFmap;
  out.begin = last.ofmap_base;
  out.pitch = last.ofmap_channel_pitch;
  out.units = last.ofmap_channels;
  out.end = out.begin + out.pitch * static_cast<std::uint64_t>(out.units);
  out.spec_index = input.specs.size();
  out.dense_fc = input.specs.back().type == LayerSpec::Type::kFc;
  out.name = "output";
  input.regions.push_back(out);

  std::sort(input.regions.begin(), input.regions.end(),
            [](const Region& a, const Region& b) { return a.begin < b.begin; });
}

[[noreturn]] void not_applicable(Injection injection, const char* why) {
  throw std::invalid_argument(std::string("inject ") + injection_name(injection) +
                              " not applicable: " + why);
}

core::EncryptionPlan& require_plan(AnalysisInput& input) {
  if (!input.plan) not_applicable(input.inject, "baseline run has no plan");
  return *input.plan;
}

/// Corrupts the plan BEFORE the layout is built: the corruption propagates
/// consistently into the secure map, so exactly the targeted plan rule fires.
void apply_plan_injection(AnalysisInput& input) {
  switch (input.inject) {
    case Injection::kPlanRatio: {
      auto& layers = require_plan(input).mutable_layers();
      for (std::size_t i = 0; i < layers.size(); ++i) {
        if (input.boundary[i] || layers[i].encrypted_count() == 0) continue;
        layers[i].encrypted_rows.assign(layers[i].encrypted_rows.size(), 0);
        layers[i].fully_encrypted = false;
        return;
      }
      not_applicable(input.inject, "no non-boundary layer with encrypted rows");
    }
    case Injection::kPlanBoundary: {
      auto& layers = require_plan(input).mutable_layers();
      for (std::size_t i = 0; i < layers.size(); ++i) {
        if (!input.boundary[i]) continue;
        layers[i].encrypted_rows.assign(layers[i].encrypted_rows.size(), 0);
        layers[i].fully_encrypted = false;
        return;
      }
      not_applicable(input.inject, "plan has no boundary layers");
    }
    case Injection::kPlanResidual: {
      auto& layers = require_plan(input).mutable_layers();
      for (const ResidualEdge& edge : input.residuals) {
        auto& entry = layers[static_cast<std::size_t>(input.plan_index[edge.entry_spec])];
        const auto& consumer =
            layers[static_cast<std::size_t>(input.plan_index[edge.consumer_spec])];
        if (consumer.fully_encrypted || entry.fully_encrypted) continue;
        // Swap one shared encrypted row for a plain one: the row count (and
        // so the ratio rule) is preserved, but the union no longer covers
        // the consumer's encrypted channels.
        int shared = -1, plain = -1;
        const int limit = std::min(entry.rows, consumer.rows);
        for (int r = 0; r < limit && shared < 0; ++r) {
          if (row_encrypted_safe(consumer, r) && row_encrypted_safe(entry, r)) shared = r;
        }
        for (int r = 0; r < entry.rows && plain < 0; ++r) {
          if (!row_encrypted_safe(entry, r)) plain = r;
        }
        if (shared < 0 || plain < 0) continue;
        entry.encrypted_rows[static_cast<std::size_t>(shared)] = 0;
        entry.encrypted_rows[static_cast<std::size_t>(plain)] = 1;
        return;
      }
      not_applicable(input.inject, "no identity block with a swappable row");
    }
    default:
      break;
  }
}

/// Corrupts the built model (secure map, plan vectors, or the analyzer's
/// region list) AFTER layout: the map and the plan now disagree, which is
/// precisely what the consistency rules exist to catch.
void apply_model_injection(AnalysisInput& input) {
  const auto& layers = input.layout->layers();
  switch (input.inject) {
    case Injection::kPlanShape: {
      auto& plan_layers = require_plan(input).mutable_layers();
      for (auto& layer : plan_layers) {
        if (layer.rows < 2) continue;
        layer.encrypted_rows.resize(static_cast<std::size_t>(layer.rows / 2));
        return;
      }
      not_applicable(input.inject, "no layer with >= 2 rows");
    }
    case Injection::kPlanClosure:
    case Injection::kTraceMixed: {
      const auto& plan = require_plan(input);
      for (std::size_t i = 0; i < input.specs.size(); ++i) {
        if (input.specs[i].type != LayerSpec::Type::kConv) continue;
        const int cp = input.consumer_plan_index(i);
        if (cp < 0) continue;
        const auto& lp = plan.layer(static_cast<std::size_t>(cp));
        const int channels = std::min(layers[i].ifmap_channels, lp.rows);
        for (int c = 0; c < channels; ++c) {
          if (!row_encrypted_safe(lp, c)) continue;
          // Drop the channel's propagated encryption but keep the plan: the
          // classic "refactor forgot to mark the fmap" bug.
          input.heap.unmark_secure(
              layers[i].ifmap_base +
                  static_cast<std::uint64_t>(c) * layers[i].ifmap_channel_pitch,
              layers[i].ifmap_channel_pitch);
          return;
        }
      }
      not_applicable(input.inject, "no encrypted conv ifmap channel");
    }
    case Injection::kLayoutWeights:
    case Injection::kSecureLeak: {
      // The same corruption seen from two sides: layout.weights catches the
      // map/plan disagreement statically, secure.leak catches the plaintext
      // weight bytes it puts on the bus in the functional audit.
      const auto& plan = require_plan(input);
      for (std::size_t i = 0; i < input.specs.size(); ++i) {
        if (input.plan_index[i] < 0) continue;
        const auto& lp = plan.layer(static_cast<std::size_t>(input.plan_index[i]));
        for (int r = 0; r < lp.rows; ++r) {
          if (!row_encrypted_safe(lp, r)) continue;
          input.heap.unmark_secure(
              layers[i].weight_base +
                  static_cast<std::uint64_t>(r) * layers[i].weight_row_pitch,
              layers[i].weight_row_pitch);
          return;
        }
      }
      not_applicable(input.inject, "no encrypted weight row");
    }
    case Injection::kSecureBoundary: {
      // Over-protect one deliberately-plain row: the map now encrypts a row
      // the plan exposes, so the observed plaintext set is smaller than the
      // plan's unprotected set.
      const auto& plan = require_plan(input);
      for (std::size_t i = 0; i < input.specs.size(); ++i) {
        if (input.plan_index[i] < 0) continue;
        const auto& lp = plan.layer(static_cast<std::size_t>(input.plan_index[i]));
        for (int r = 0; r < lp.rows; ++r) {
          if (row_encrypted_safe(lp, r)) continue;
          input.heap.mark_secure(
              layers[i].weight_base +
                  static_cast<std::uint64_t>(r) * layers[i].weight_row_pitch,
              layers[i].weight_row_pitch);
          return;
        }
      }
      not_applicable(input.inject, "no plaintext weight row (ratio 1.0?)");
    }
    case Injection::kLayoutAlign:
    case Injection::kLayoutAccount: {
      const auto& plan = require_plan(input);
      for (std::size_t i = 0; i < input.specs.size(); ++i) {
        if (input.plan_index[i] < 0) continue;
        const auto& lp = plan.layer(static_cast<std::size_t>(input.plan_index[i]));
        for (int r = 0; r < lp.rows; ++r) {
          if (row_encrypted_safe(lp, r)) continue;
          const sim::Addr row =
              layers[i].weight_base +
              static_cast<std::uint64_t>(r) * layers[i].weight_row_pitch;
          if (input.inject == Injection::kLayoutAlign) {
            input.heap.mark_secure(row + 4, 8);  // unaligned edges
          } else {
            input.heap.mark_secure(row, 128);  // aligned, but unaccounted
          }
          return;
        }
      }
      not_applicable(input.inject, "no plaintext weight row (ratio 1.0?)");
    }
    case Injection::kLayoutUntagged: {
      const auto& plan = require_plan(input);
      for (std::size_t i = 0; i < input.specs.size(); ++i) {
        if (input.plan_index[i] < 0) continue;
        const auto& lp = plan.layer(static_cast<std::size_t>(input.plan_index[i]));
        if (lp.encrypted_count() == 0) continue;
        // Forget the region: its secure ranges are now orphans.
        const std::string name = input.specs[i].name + ".weights";
        std::erase_if(input.regions, [&](const Region& region) {
          return region.name == name;
        });
        return;
      }
      not_applicable(input.inject, "no weight region with secure ranges");
    }
    case Injection::kLayoutBounds:
      input.heap.mark_secure(input.heap.base() + input.heap.bytes_allocated() + 4096,
                             256);
      return;
    case Injection::kLayoutOverlap: {
      for (std::size_t k = 0; k + 1 < input.regions.size(); ++k) {
        if (input.regions[k].end <= input.regions[k + 1].begin) {
          input.regions[k].end = input.regions[k + 1].begin + 128;
          return;
        }
      }
      not_applicable(input.inject, "fewer than two disjoint regions");
    }
    default:
      break;
  }
}

}  // namespace

int AnalysisInput::consumer_plan_index(std::size_t spec_index) const {
  for (std::size_t j = spec_index; j < specs.size(); ++j) {
    if (plan_index[j] >= 0) return plan_index[j];
  }
  return -1;
}

const Region* AnalysisInput::region_at(sim::Addr addr) const {
  auto it = std::upper_bound(
      regions.begin(), regions.end(), addr,
      [](sim::Addr a, const Region& region) { return a < region.begin; });
  if (it == regions.begin()) return nullptr;
  --it;
  return addr < it->end ? &*it : nullptr;
}

std::vector<ResidualEdge> residual_edges_from_names(
    const std::vector<models::LayerSpec>& specs) {
  std::vector<ResidualEdge> edges;
  for (std::size_t i = 0; i + 1 < specs.size(); ++i) {
    const LayerSpec& a = specs[i];
    if (a.type != LayerSpec::Type::kConv || !ends_with(a.name, "_a")) continue;
    const std::string prefix = a.name.substr(0, a.name.size() - 2);
    const LayerSpec& b = specs[i + 1];
    if (b.type != LayerSpec::Type::kConv || b.name != prefix + "_b") continue;
    // A projection on the skip path gets its own plan layer; only identity
    // skips carry the entry fmap's channels through unmodified.
    if (i + 2 < specs.size() && specs[i + 2].name == prefix + "_proj") continue;
    if (a.stride != 1 || a.in_channels != b.out_channels) continue;
    std::size_t consumer = i + 2;
    while (consumer < specs.size() && specs[consumer].type == LayerSpec::Type::kPool) {
      ++consumer;
    }
    if (consumer >= specs.size()) continue;
    edges.push_back(ResidualEdge{i, i + 1, consumer});
  }
  return edges;
}

AnalysisInput build_input(const std::vector<models::LayerSpec>& specs,
                          const BuildOptions& options) {
  if (specs.empty()) throw std::invalid_argument("sealdl-check: empty spec chain");
  AnalysisInput input;
  input.specs = specs;
  input.plan_options = options.plan;
  input.selective = options.selective;
  input.inject = options.inject;

  input.plan_index.assign(specs.size(), -1);
  std::vector<bool> is_conv;
  int weight_idx = 0;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    if (specs[i].type == LayerSpec::Type::kPool) continue;
    input.plan_index[i] = weight_idx++;
    is_conv.push_back(specs[i].type == LayerSpec::Type::kConv);
  }
  input.boundary = core::boundary_layers(is_conv, options.plan);
  input.residuals = residual_edges_from_names(specs);

  if (options.selective) {
    input.plan = core::EncryptionPlan::for_specs(specs, options.plan);
  }
  apply_plan_injection(input);

  input.layout.emplace(specs, input.plan ? &*input.plan : nullptr, input.heap);
  derive_regions(input);
  apply_model_injection(input);
  return input;
}

}  // namespace sealdl::verify
