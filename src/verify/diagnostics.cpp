#include "verify/diagnostics.hpp"

#include <cstdio>

namespace sealdl::verify {

const char* severity_name(Severity severity) {
  switch (severity) {
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "unknown";
}

void Report::add(Diagnostic diagnostic) {
  auto& count = counts_[diagnostic.rule];
  ++count;
  if (diagnostic.severity == Severity::kError) {
    ++errors_;
  } else {
    ++warnings_;
  }
  if (count <= max_per_rule_) diagnostics_.push_back(std::move(diagnostic));
}

std::uint64_t Report::count(std::string_view rule) const {
  const auto it = counts_.find(rule);
  return it == counts_.end() ? 0 : it->second;
}

std::string Report::to_text() const {
  std::string out;
  char buffer[64];
  for (const auto& d : diagnostics_) {
    out += severity_name(d.severity);
    out += " [";
    out += d.rule;
    out += "]";
    if (!d.layer.empty()) {
      out += " ";
      out += d.layer;
    }
    if (d.end > d.begin) {
      std::snprintf(buffer, sizeof(buffer), " [0x%llx, 0x%llx)",
                    static_cast<unsigned long long>(d.begin),
                    static_cast<unsigned long long>(d.end));
      out += buffer;
    }
    out += ": ";
    out += d.message;
    out += "\n";
  }
  for (const auto& [rule, count] : counts_) {
    const std::uint64_t stored = [&] {
      std::uint64_t n = 0;
      for (const auto& d : diagnostics_) n += d.rule == rule ? 1 : 0;
      return n;
    }();
    if (count > stored) {
      std::snprintf(buffer, sizeof(buffer), "%llu",
                    static_cast<unsigned long long>(count - stored));
      out += "note [" + rule + "]: " + buffer + " further finding(s) not shown\n";
    }
  }
  std::snprintf(buffer, sizeof(buffer), "%llu error(s), %llu warning(s)\n",
                static_cast<unsigned long long>(errors_),
                static_cast<unsigned long long>(warnings_));
  out += buffer;
  return out;
}

void Report::write_json(util::JsonWriter& json) const {
  json.begin_object();
  json.field("errors", errors_);
  json.field("warnings", warnings_);
  json.key("rules");
  json.begin_object();
  for (const auto& [rule, count] : counts_) json.field(rule, count);
  json.end_object();
  json.key("diagnostics");
  json.begin_array();
  for (const auto& d : diagnostics_) {
    json.begin_object();
    json.field("rule", d.rule);
    json.field("severity", severity_name(d.severity));
    if (!d.layer.empty()) json.field("layer", d.layer);
    if (d.end > d.begin) {
      json.field("begin", d.begin);
      json.field("end", d.end);
    }
    json.field("message", d.message);
    json.end_object();
  }
  json.end_array();
  json.end_object();
}

}  // namespace sealdl::verify
