// Invariant checks over cycle-attribution profiles — the `profile.*` rule
// family.
//
// The profiler (telemetry/profiler.hpp) claims an exact partition: every
// simulated cycle of every component lands in exactly one bucket. These
// rules prove it on the emitted data, so a future attribution bug (a span
// double-counted, a drain tail dropped) fails loudly instead of producing a
// quietly-wrong flamegraph. sealdl-sim runs them on every profiled run and
// supports seeded violations (--inject-profile) that must be caught, the
// same self-test discipline as sealdl-check --inject. Rule catalog
// (docs/ANALYSIS.md):
//
//   profile.conservation   per-component buckets sum exactly to the
//                          component's total profiled cycles
//   profile.total          every component of a layer agrees on the layer's
//                          total cycle count
//   profile.serve.stages   serve lifecycle stages sum to the measured
//                          end-to-end latency (completed requests)
#pragma once

#include <string>
#include <vector>

#include "telemetry/profiler.hpp"
#include "verify/diagnostics.hpp"

namespace sealdl::verify {

/// Rule ids the family can emit, in catalog order (for --list-rules).
std::vector<std::string> profile_rules();

/// Appends one error diagnostic per violated conservation/total rule.
void check_cycle_profile(const telemetry::CycleProfile& profile,
                         Report& report);

/// Checks the serve-side reconciliation: the summed stage cycles of all
/// completed requests must equal the summed end-to-end latency cycles
/// (relative tolerance covers double accumulation order, nothing more).
void check_serve_stage_totals(double stage_cycles_sum,
                              double latency_cycles_sum, Report& report);

/// Convenience wrapper returning a fresh report.
[[nodiscard]] Report run_profile_check(const telemetry::CycleProfile& profile);

}  // namespace sealdl::verify
