// The scheme.* rule family: conformance of any registered secure-memory
// scheme against its own declared SchemeContract (sim/scheme_model.hpp).
//
// Where the secure.* family hand-encodes the paper's five schemes, scheme.*
// is generic: every clause is read off the contract of a registry entry and
// proved against the evidence of a real run — the taint ledger a
// TaintAuditor recorded, the controllers' SimStats accounting, and a timing
// micro-probe through a real MemoryController. A scheme added to the
// registry is covered with no checker changes, and a scheme whose contract
// lies about its dataflow is caught.
//
//   scheme.registry  static table consistency: unique CLI/display names,
//                    scope <-> selective <-> contract agreement, counter
//                    metadata declared iff a counter cache is used.
//   scheme.wire      ledger bytes respect the contract's WireVisibility
//                    (plan-boundary schemes share plan_line_policy with
//                    secure.leak; weights-cipher schemes split by region
//                    kind; full schemes admit no wrong-side bytes at all).
//   scheme.boundary  row-level protection boundary over weight regions:
//                    the observed plaintext/ciphertext row sets match the
//                    scope (plan rows / all / none / every weight row).
//   scheme.metadata  metadata-traffic reconciliation: counter_traffic ==
//                    fills + writebacks + flushes, fills == misses x line,
//                    ledger counter-region bytes == controller accounting —
//                    and all of it zero for schemes declaring kNone.
//   scheme.coverage  SimStats identities: encrypted + bypassed bytes
//                    partition the secure-capable traffic per scope, and AES
//                    occupancy is paid iff the contract says so.
//   scheme.timing    serialization-shape micro-probe: a fresh controller per
//                    entry measures a secure line read against the plain
//                    baseline (passthrough = equal; AES-after-data strictly
//                    slower; pad-overlap hides AES behind DRAM on a counter
//                    hit, +1 XOR cycle).
//
// Every rule has a seeded --inject-scheme violation (sealdl-sim), following
// the established inject-ledger discipline: a checker that never fires is
// indistinguishable from one that checks nothing.
#pragma once

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "sim/gpu_config.hpp"
#include "sim/scheme_registry.hpp"
#include "sim/sim_stats.hpp"
#include "verify/analysis.hpp"
#include "verify/diagnostics.hpp"
#include "verify/taint.hpp"

namespace sealdl::verify {

/// Rule ids of the scheme.* family (for --list-rules and the catalog test).
[[nodiscard]] std::vector<std::string> scheme_rules();

/// Post-run evidence one conformance pass consumes: the analyzer model of
/// the audited network, the run's taint ledger, and the summed SimStats of
/// every layer (carrying the controllers' metadata decomposition).
struct SchemeRunEvidence {
  const AnalysisInput* input = nullptr;  ///< regions + plan (borrowed)
  const TaintLedger* ledger = nullptr;   ///< run traffic (borrowed)
  sim::SimStats stats;                   ///< summed over the run's layers
  sim::GpuConfig config;                 ///< the config that ran
};

// --- static rules -----------------------------------------------------------

/// Validates a registry table (normally sim::scheme_registry(); injections
/// pass a corrupted copy).
void check_scheme_registry(std::span<const sim::SchemeInfo> entries,
                           Report& report);

/// Micro-probes `entry`'s secure read path through a fresh MemoryController
/// and holds the measured serialization against `claimed.read_shape`
/// (normally the entry's own contract; injections pass a falsified one).
void check_scheme_timing(const sim::SchemeInfo& entry,
                         const sim::SchemeContract& claimed, Report& report);

// --- post-run rules ---------------------------------------------------------

void check_scheme_wire(const sim::SchemeInfo& entry,
                       const SchemeRunEvidence& evidence, Report& report);
void check_scheme_boundary(const sim::SchemeInfo& entry,
                           const SchemeRunEvidence& evidence, Report& report);
void check_scheme_metadata(const sim::SchemeInfo& entry,
                           const SchemeRunEvidence& evidence, Report& report);
void check_scheme_coverage(const sim::SchemeInfo& entry,
                           const SchemeRunEvidence& evidence, Report& report);

/// Runs every scheme.* rule for one registered scheme over one run's
/// evidence: the registry and timing statics plus all four post-run clauses.
[[nodiscard]] Report run_scheme_conformance(const sim::SchemeInfo& entry,
                                            const SchemeRunEvidence& evidence);

// --- seeded violations (--inject-scheme) ------------------------------------

enum class SchemeInjection {
  kWire,      ///< record plaintext bytes on a must-cipher line
  kBoundary,  ///< record plaintext bytes inside a protected weight row
  kMetadata,  ///< perturb the controllers' counter-traffic accounting
  kCoverage,  ///< claim one encrypted byte the controllers never saw
  kTiming,    ///< falsify the contract's declared serialization shape
  kRegistry,  ///< duplicate a CLI name in a copy of the registry table
};

/// All scheme injections, in declaration order.
[[nodiscard]] const std::vector<SchemeInjection>& all_scheme_injections();

/// CLI name of an injection, e.g. "scheme-wire".
[[nodiscard]] const char* scheme_injection_name(SchemeInjection injection);

/// Parses a CLI name; nullopt if unknown.
[[nodiscard]] std::optional<SchemeInjection> scheme_injection_from_name(
    const std::string& name);

/// Rule ids this injection is guaranteed to fire (it may fire others too —
/// plaintext inside a protected row breaks both the row boundary and the
/// per-line wire policy).
[[nodiscard]] std::vector<std::string> scheme_injection_expected_rules(
    SchemeInjection injection);

/// Applies `injection` to copies of the entry/evidence and runs the
/// targeted checker(s); the returned report must contain the expected rules.
/// kWire/kBoundary need a scheme whose wire policy has a must-cipher side
/// (any entry except baseline).
[[nodiscard]] Report run_scheme_injection(SchemeInjection injection,
                                          const sim::SchemeInfo& entry,
                                          const SchemeRunEvidence& evidence);

}  // namespace sealdl::verify
