// Model of one network-under-check: the plan, the laid-out address space,
// the analyzer's region map, and the residual topology.
//
// build_input() mirrors the exact pipeline the timing runner executes
// (core::EncryptionPlan::for_specs -> core::ModelLayout on a SecureHeap) and
// then derives the analyzer-side model: a sorted list of address regions
// (per-layer weight arrays and feature maps) that the checkers interrogate
// without ever running the cycle simulator.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/encryption_plan.hpp"
#include "core/model_layout.hpp"
#include "core/secure_heap.hpp"
#include "models/layer_spec.hpp"
#include "verify/inject.hpp"

namespace sealdl::verify {

/// One contiguous address region the layout placed: a layer's weight array
/// or a feature-map buffer.
struct Region {
  enum class Kind : std::uint8_t { kWeights, kFmap };

  Kind kind = Kind::kWeights;
  sim::Addr begin = 0;
  sim::Addr end = 0;           ///< half-open
  /// Owning spec: for weights, the layer; for fmaps, the spec the buffer
  /// feeds (specs.size() marks the network-output buffer).
  std::size_t spec_index = 0;
  std::uint64_t pitch = 0;     ///< bytes per row (weights) / channel (fmaps)
  int units = 0;               ///< row / channel count
  /// FC input vectors are stored densely (4 bytes per feature, no per-channel
  /// line padding); alignment rules exempt them.
  bool dense_fc = false;
  std::string name;            ///< e.g. "conv3_1.weights", "fc6.in"
};

/// An identity skip connection reconstructed from ResNet-style spec names
/// ("stageS_blockB_a"/"_b" with no "_proj"): the block-entry fmap is summed
/// into the block output before the next weight layer consumes it.
struct ResidualEdge {
  std::size_t entry_spec = 0;     ///< the "_a" conv (its input is the skip source)
  std::size_t exit_spec = 0;      ///< the "_b" conv (produces the block output)
  std::size_t consumer_spec = 0;  ///< first weight layer after the block
};

struct AnalysisInput {
  std::vector<models::LayerSpec> specs;
  core::PlanOptions plan_options;
  bool selective = true;
  /// Null iff !selective (baseline configs have nothing to check against).
  std::optional<core::EncryptionPlan> plan;
  core::SecureHeap heap;
  std::optional<core::ModelLayout> layout;
  /// Sorted by begin; derived from the layout, then possibly corrupted by an
  /// injection (the regions are the analyzer's model, so model-corruption
  /// injections prove the model-vs-map rules fire).
  std::vector<Region> regions;
  /// spec index -> plan layer index (-1 for POOLs).
  std::vector<int> plan_index;
  /// Weight-layer boundary mask, parallel to the plan's layers.
  std::vector<bool> boundary;
  std::vector<ResidualEdge> residuals;
  Injection inject = Injection::kNone;

  /// First weight layer at spec index >= i (the consumer of fmap i), or -1.
  [[nodiscard]] int consumer_plan_index(std::size_t spec_index) const;
  /// Region containing `addr`, or nullptr. O(log n).
  [[nodiscard]] const Region* region_at(sim::Addr addr) const;
};

struct BuildOptions {
  core::PlanOptions plan;
  bool selective = true;
  Injection inject = Injection::kNone;
};

/// Builds the analysis model for `specs`, applying `options.inject` at the
/// pipeline stage that injection targets. Throws std::invalid_argument when
/// the requested injection is not applicable to this workload/ratio (e.g.
/// plan-residual on a topology without identity blocks).
AnalysisInput build_input(const std::vector<models::LayerSpec>& specs,
                          const BuildOptions& options);

/// Reconstructs identity skip edges from spec names (empty for chains like
/// VGG that have none).
std::vector<ResidualEdge> residual_edges_from_names(
    const std::vector<models::LayerSpec>& specs);

/// Bounds-safe row query: false for rows outside the stored vector (a
/// malformed plan must never crash the checker that reports it).
[[nodiscard]] inline bool row_encrypted_safe(const core::LayerPlan& plan, int row) {
  return row >= 0 && static_cast<std::size_t>(row) < plan.encrypted_rows.size() &&
         plan.encrypted_rows[static_cast<std::size_t>(row)] != 0;
}

}  // namespace sealdl::verify
