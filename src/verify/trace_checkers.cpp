// Trace-level rules: the generated LOAD/COMPUTE/STORE streams are walked
// op by op (no cycle simulation) and checked against the secure map.
//
// trace.mixed is the paper's §III-A invariant seen from the bus: no COMPUTE
// may pair an encrypted weight row r with a plaintext input channel r. The
// walk keeps, per program, the secure status of every weight row and fmap
// unit observed so far and re-checks pairs whenever either side grows. This
// is sound because (a) a row/channel's secure status is fixed for the whole
// program, and (b) every CONV tile's K loop visits all input channels, so a
// mixed pair that exists is always observed together before a compute.
#include <algorithm>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "verify/checker.hpp"
#include "workload/layer_trace.hpp"

namespace sealdl::verify {

namespace {

constexpr std::uint64_t kLine = 128;
/// Dense FC fmaps pack 32 4-byte features per cache line.
constexpr int kFeaturesPerLine = 32;

bool is_trace_injection(Injection injection) {
  switch (injection) {
    case Injection::kTraceBounds:
    case Injection::kTraceWait:
    case Injection::kTraceOrder:
    case Injection::kTraceRegion:
      return true;
    default:
      return false;
  }
}

/// Wraps a generated program and corrupts its op stream — the trace-rule
/// counterpart of the plan/map corruptions in build_input().
class MutatingProgram final : public sim::WarpProgram {
 public:
  MutatingProgram(sim::WarpProgramPtr inner, Injection inject,
                  sim::Addr redirect_store, sim::Addr out_of_heap)
      : inner_(std::move(inner)),
        inject_(inject),
        redirect_store_(redirect_store),
        out_of_heap_(out_of_heap) {}

  std::optional<sim::WarpOp> next() override {
    while (true) {
      std::optional<sim::WarpOp> op = inner_->next();
      if (!op) return op;
      switch (inject_) {
        case Injection::kTraceBounds:
          if (op->kind == sim::WarpOp::Kind::kLoad && ++loads_ % 97 == 0) {
            op->addr = out_of_heap_;
          }
          return op;
        case Injection::kTraceWait:
          if (op->kind == sim::WarpOp::Kind::kWaitLoads) op->count = 1u << 30;
          return op;
        case Injection::kTraceOrder:
          if (op->kind == sim::WarpOp::Kind::kWaitLoads) continue;  // drop
          return op;
        case Injection::kTraceRegion:
          if (op->kind == sim::WarpOp::Kind::kStore) op->addr = redirect_store_;
          return op;
        default:
          return op;
      }
    }
  }

 private:
  sim::WarpProgramPtr inner_;
  Injection inject_;
  sim::Addr redirect_store_;
  sim::Addr out_of_heap_;
  std::uint64_t loads_ = 0;
};

class TraceChecker final : public Checker {
 public:
  explicit TraceChecker(TraceCheckOptions options) : options_(options) {}

  std::string_view name() const override { return "trace"; }
  std::vector<std::string> rules() const override {
    return {"trace.mixed", "trace.bounds", "trace.wait", "trace.order",
            "trace.region"};
  }

  void run(const AnalysisInput& input, Report& report) const override {
    const sim::Addr lo = input.heap.base();
    const sim::Addr hi = lo + input.heap.bytes_allocated();
    const auto& layers = input.layout->layers();
    for (std::size_t i = 0; i < layers.size(); ++i) {
      workload::LayerWork work = workload::make_layer_programs(
          layers[i], options_.num_warps, options_.max_tiles);
      for (auto& generated : work.programs) {
        sim::WarpProgramPtr program = std::move(generated);
        if (is_trace_injection(input.inject)) {
          program = std::make_unique<MutatingProgram>(
              std::move(program), input.inject, /*redirect_store=*/lo,
              /*out_of_heap=*/hi + kLine);
        }
        walk_program(input, i, *program, lo, hi, report);
      }
    }
  }

 private:
  void walk_program(const AnalysisInput& input, std::size_t spec_idx,
                    sim::WarpProgram& program, sim::Addr lo, sim::Addr hi,
                    Report& report) const {
    const auto& map = input.heap.secure_map();
    const auto& layer = input.layout->layers()[spec_idx];
    const std::string& lname = input.specs[spec_idx].name;
    const bool fc = input.specs[spec_idx].type == models::LayerSpec::Type::kFc;

    // Weight row -> any loaded line of it was secure; fmap unit -> any loaded
    // line of it was *plain*. For conv fmaps the unit is the channel (pairs
    // with the equal-numbered kernel row); for dense FC fmaps it is the line
    // index (line l carries features/rows l*32 .. l*32+31).
    std::unordered_map<int, bool> row_secure;
    std::unordered_map<int, bool> unit_plain;
    std::vector<int> fresh_rows, fresh_units;
    std::unordered_set<int> reported_rows;
    std::uint64_t loads_issued = 0, loads_since_barrier = 0;
    bool order_reported = false, wait_reported = false, region_reported = false;

    auto violate = [&](int row) {
      if (!reported_rows.insert(row).second) return;
      const sim::Addr begin =
          layer.weight_base +
          static_cast<std::uint64_t>(row) * layer.weight_row_pitch;
      report.add({"trace.mixed", Severity::kError, lname, begin,
                  begin + layer.weight_row_pitch,
                  "COMPUTE pairs encrypted kernel row " + std::to_string(row) +
                      " with plaintext input channel " + std::to_string(row)});
    };

    auto drain = [&] {
      for (const int r : fresh_rows) {
        const auto it = unit_plain.find(fc ? r / kFeaturesPerLine : r);
        if (it != unit_plain.end() && it->second) violate(r);
      }
      for (const int u : fresh_units) {
        if (fc) {
          for (int r = u * kFeaturesPerLine; r < (u + 1) * kFeaturesPerLine; ++r) {
            const auto it = row_secure.find(r);
            if (it != row_secure.end() && it->second) violate(r);
          }
        } else {
          const auto it = row_secure.find(u);
          if (it != row_secure.end() && it->second) violate(u);
        }
      }
      fresh_rows.clear();
      fresh_units.clear();
    };

    while (std::optional<sim::WarpOp> op = program.next()) {
      switch (op->kind) {
        case sim::WarpOp::Kind::kLoad: {
          ++loads_issued;
          ++loads_since_barrier;
          if (op->addr % kLine != 0 || op->addr < lo || op->addr + kLine > hi) {
            report.add({"trace.bounds", Severity::kError, lname, op->addr,
                        op->addr + kLine,
                        "load outside the allocated heap or not line-aligned"});
            break;
          }
          const Region* region = input.region_at(op->addr);
          if (!region || region->spec_index != spec_idx) break;
          const bool secure =
              map.line_is_secure(op->addr, static_cast<int>(kLine));
          if (region->kind == Region::Kind::kWeights) {
            const int r = static_cast<int>((op->addr - region->begin) /
                                           region->pitch);
            auto [it, inserted] = row_secure.try_emplace(r, secure);
            if (secure && (inserted || !it->second)) {
              it->second = true;
              fresh_rows.push_back(r);
            }
          } else {
            const int u = static_cast<int>(
                (op->addr - region->begin) /
                (region->dense_fc ? kLine : region->pitch));
            auto [it, inserted] = unit_plain.try_emplace(u, !secure);
            if (!secure && (inserted || !it->second)) {
              it->second = true;
              fresh_units.push_back(u);
            }
          }
          break;
        }
        case sim::WarpOp::Kind::kStore: {
          if (op->addr % kLine != 0 || op->addr < lo || op->addr + kLine > hi) {
            report.add({"trace.bounds", Severity::kError, lname, op->addr,
                        op->addr + kLine,
                        "store outside the allocated heap or not line-aligned"});
            break;
          }
          if (loads_since_barrier > 0 && !order_reported) {
            order_reported = true;
            report.add({"trace.order", Severity::kError, lname, op->addr,
                        op->addr + kLine,
                        "store issued with " +
                            std::to_string(loads_since_barrier) +
                            " loads not covered by a full WaitLoads barrier"});
          }
          const Region* region = input.region_at(op->addr);
          const bool own_output = region != nullptr &&
                                  region->kind == Region::Kind::kFmap &&
                                  region->spec_index == spec_idx + 1;
          if (!own_output && !region_reported) {
            region_reported = true;
            report.add({"trace.region", Severity::kWarning, lname, op->addr,
                        op->addr + kLine,
                        "store lands in " +
                            (region ? region->name : std::string("untagged space")) +
                            " instead of the layer's output buffer"});
          }
          break;
        }
        case sim::WarpOp::Kind::kCompute:
          if (!fresh_rows.empty() || !fresh_units.empty()) drain();
          break;
        case sim::WarpOp::Kind::kWaitLoads:
          if (op->count == 0) {
            loads_since_barrier = 0;
          } else if (op->count > loads_issued && !wait_reported) {
            wait_reported = true;
            report.add({"trace.wait", Severity::kWarning, lname, 0, 0,
                        "WaitLoads threshold " + std::to_string(op->count) +
                            " exceeds the " + std::to_string(loads_issued) +
                            " loads issued so far; the barrier cannot engage"});
          }
          break;
      }
    }
  }

  TraceCheckOptions options_;
};

}  // namespace

std::unique_ptr<Checker> make_trace_checker(const TraceCheckOptions& options) {
  return std::make_unique<TraceChecker>(options);
}

}  // namespace sealdl::verify
