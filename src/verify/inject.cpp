#include "verify/inject.hpp"

namespace sealdl::verify {

namespace {

struct InjectionInfo {
  Injection injection;
  const char* name;
  std::vector<std::string> rules;
};

const std::vector<InjectionInfo>& table() {
  static const std::vector<InjectionInfo> kTable = {
      {Injection::kPlanShape, "plan-shape", {"plan.shape"}},
      {Injection::kPlanRatio, "plan-ratio", {"plan.ratio"}},
      {Injection::kPlanBoundary, "plan-boundary", {"plan.boundary"}},
      {Injection::kPlanClosure, "plan-closure", {"plan.closure"}},
      {Injection::kPlanResidual, "plan-residual", {"plan.residual"}},
      {Injection::kLayoutWeights, "layout-weights", {"layout.weights"}},
      {Injection::kLayoutAlign, "layout-align", {"layout.align"}},
      {Injection::kLayoutUntagged, "layout-untagged", {"layout.untagged"}},
      {Injection::kLayoutBounds, "layout-bounds", {"layout.bounds"}},
      {Injection::kLayoutOverlap, "layout-overlap", {"layout.overlap"}},
      {Injection::kLayoutAccount, "layout-account", {"layout.account"}},
      {Injection::kTraceMixed, "trace-mixed", {"trace.mixed"}},
      {Injection::kTraceBounds, "trace-bounds", {"trace.bounds"}},
      {Injection::kTraceWait, "trace-wait", {"trace.wait"}},
      {Injection::kTraceOrder, "trace-order", {"trace.order"}},
      {Injection::kTraceRegion, "trace-region", {"trace.region"}},
      {Injection::kSecureLeak, "secure-leak", {"secure.leak"}},
      {Injection::kSecureBoundary, "secure-boundary", {"secure.boundary"}},
      {Injection::kSecureCounter, "secure-counter", {"secure.counter"}},
      {Injection::kSecureOracle, "secure-oracle", {"secure.oracle"}},
  };
  return kTable;
}

const InjectionInfo& info(Injection injection) {
  for (const auto& entry : table()) {
    if (entry.injection == injection) return entry;
  }
  static const InjectionInfo kNone = {Injection::kNone, "none", {}};
  return kNone;
}

}  // namespace

const std::vector<Injection>& all_injections() {
  static const std::vector<Injection> kAll = [] {
    std::vector<Injection> all;
    for (const auto& entry : table()) all.push_back(entry.injection);
    return all;
  }();
  return kAll;
}

const char* injection_name(Injection injection) { return info(injection).name; }

std::optional<Injection> injection_from_name(const std::string& name) {
  for (const auto& entry : table()) {
    if (name == entry.name) return entry.injection;
  }
  return std::nullopt;
}

std::vector<std::string> expected_rules(Injection injection) {
  return info(injection).rules;
}

bool requires_residual_topology(Injection injection) {
  return injection == Injection::kPlanResidual;
}

}  // namespace sealdl::verify
