// Bridges the runtime lock-order auditor (util/lock_audit.hpp) into the
// sealdl-check diagnostic stream.
//
// The auditor lives in util — below verify in the layering — so it stores
// findings in its own lightweight form; this adapter converts them into
// verify::Diagnostics, giving the concurrency rules (`lock.cycle`,
// `lock.cv-hold`, `lock.confined`) the same text/JSON rendering, rule
// counting and stable-id contract as the plan/layout/trace rules.
#pragma once

#include <string>
#include <vector>

#include "util/lock_audit.hpp"
#include "verify/diagnostics.hpp"

namespace sealdl::verify {

/// Rule ids the auditor can emit (for --list-rules).
std::vector<std::string> lock_audit_rules();

/// Converts auditor findings into a Report (every finding is an error: each
/// one is a provable discipline violation, not a heuristic).
[[nodiscard]] Report lock_audit_report(
    const std::vector<util::LockFinding>& findings,
    std::size_t max_per_rule = 16);

/// Snapshot of the process-global auditor.
[[nodiscard]] Report lock_audit_report();

}  // namespace sealdl::verify
