// Layout/heap rules: agreement between the plan, the SecureMap and the
// analyzer's region model — weight-row marking, range alignment, range
// tagging, heap bounds, region disjointness, and byte accounting.
#include <algorithm>
#include <string>

#include "verify/checker.hpp"

namespace sealdl::verify {

namespace {

constexpr std::uint64_t kLine = 128;

using models::LayerSpec;

class LayoutWeightsChecker final : public Checker {
 public:
  std::string_view name() const override { return "layout-weights"; }
  std::vector<std::string> rules() const override { return {"layout.weights"}; }

  void run(const AnalysisInput& input, Report& report) const override {
    if (!input.plan) return;
    const auto& map = input.heap.secure_map();
    const auto& layers = input.layout->layers();
    for (std::size_t i = 0; i < input.specs.size(); ++i) {
      const int p = input.plan_index[i];
      if (p < 0 || static_cast<std::size_t>(p) >= input.plan->layer_count()) {
        continue;
      }
      const LayerSpec& s = input.specs[i];
      const auto& lp = input.plan->layer(static_cast<std::size_t>(p));
      const auto& layer = layers[i];
      const int rows =
          s.type == LayerSpec::Type::kConv ? s.in_channels : s.in_features;
      for (int r = 0; r < rows; ++r) {
        const bool expected = row_encrypted_safe(lp, r);
        const sim::Addr begin =
            layer.weight_base +
            static_cast<std::uint64_t>(r) * layer.weight_row_pitch;
        const sim::Addr end = begin + layer.weight_row_pitch;
        const bool first = map.is_secure(begin);
        const bool last = map.is_secure(end - 1);
        if (expected && !(first && last)) {
          report.add({"layout.weights", Severity::kError, s.name, begin, end,
                      "encrypted kernel row " + std::to_string(r) +
                          " is not fully marked secure"});
        } else if (!expected && (first || last)) {
          report.add({"layout.weights", Severity::kError, s.name, begin, end,
                      "plaintext kernel row " + std::to_string(r) +
                          " has secure bytes"});
        }
      }
    }
  }
};

class LayoutAlignChecker final : public Checker {
 public:
  std::string_view name() const override { return "layout-align"; }
  std::vector<std::string> rules() const override { return {"layout.align"}; }

  void run(const AnalysisInput& input, Report& report) const override {
    input.heap.secure_map().visit([&](sim::Addr begin, sim::Addr end) {
      // Encryption granularity is one cache line: a secure-range edge inside
      // a line-padded region must sit on a line boundary, or the line mixes
      // secure and plain data of *different rows*. Dense FC vectors pack 32
      // features per line by design, so their 4-byte edges are exempt (the
      // line_is_secure rule covers the whole line there).
      for (const sim::Addr edge : {begin, end}) {
        const Region* region = input.region_at(edge == begin ? edge : edge - 1);
        if (!region || region->dense_fc) continue;
        if (edge % kLine != 0) {
          report.add({"layout.align", Severity::kError, region->name, begin, end,
                      "secure range edge " + std::to_string(edge % kLine) +
                          " bytes past a line boundary in " + region->name});
        }
      }
    });
  }
};

class LayoutUntaggedChecker final : public Checker {
 public:
  std::string_view name() const override { return "layout-untagged"; }
  std::vector<std::string> rules() const override { return {"layout.untagged"}; }

  void run(const AnalysisInput& input, Report& report) const override {
    input.heap.secure_map().visit([&](sim::Addr begin, sim::Addr end) {
      sim::Addr cursor = begin;
      while (cursor < end) {
        if (const Region* region = input.region_at(cursor)) {
          cursor = std::min(end, region->end);
          continue;
        }
        // Gap: advance to the next known region (or the range end).
        auto it = std::upper_bound(
            input.regions.begin(), input.regions.end(), cursor,
            [](sim::Addr a, const Region& r) { return a < r.begin; });
        const sim::Addr next =
            it != input.regions.end() ? std::min(end, it->begin) : end;
        report.add({"layout.untagged", Severity::kError, "", cursor, next,
                    "secure range not covered by any model region"});
        cursor = next;
      }
    });
  }
};

class LayoutBoundsChecker final : public Checker {
 public:
  std::string_view name() const override { return "layout-bounds"; }
  std::vector<std::string> rules() const override { return {"layout.bounds"}; }

  void run(const AnalysisInput& input, Report& report) const override {
    const sim::Addr lo = input.heap.base();
    const sim::Addr hi = lo + input.heap.bytes_allocated();
    input.heap.secure_map().visit([&](sim::Addr begin, sim::Addr end) {
      if (begin >= lo && end <= hi) return;
      report.add({"layout.bounds", Severity::kError, "", begin, end,
                  "secure range outside the allocated heap (" +
                      std::to_string(hi - lo) + " bytes from base)"});
    });
  }
};

class LayoutOverlapChecker final : public Checker {
 public:
  std::string_view name() const override { return "layout-overlap"; }
  std::vector<std::string> rules() const override { return {"layout.overlap"}; }

  void run(const AnalysisInput& input, Report& report) const override {
    for (std::size_t k = 0; k + 1 < input.regions.size(); ++k) {
      const Region& a = input.regions[k];
      const Region& b = input.regions[k + 1];
      if (b.begin >= a.end) continue;
      report.add({"layout.overlap", Severity::kError, a.name, b.begin,
                  std::min(a.end, b.end),
                  "region " + a.name + " overlaps " + b.name});
    }
  }
};

class LayoutAccountChecker final : public Checker {
 public:
  std::string_view name() const override { return "layout-account"; }
  std::vector<std::string> rules() const override { return {"layout.account"}; }

  void run(const AnalysisInput& input, Report& report) const override {
    const std::uint64_t layout_bytes = input.layout->secure_bytes();
    const std::uint64_t map_bytes = input.heap.secure_map().secure_bytes();
    if (layout_bytes != map_bytes) {
      report.add({"layout.account", Severity::kError, "", 0, 0,
                  "layout accounted " + std::to_string(layout_bytes) +
                      " secure bytes but the map holds " +
                      std::to_string(map_bytes)});
    }
  }
};

}  // namespace

std::vector<std::unique_ptr<Checker>> make_layout_checkers() {
  std::vector<std::unique_ptr<Checker>> checkers;
  checkers.push_back(std::make_unique<LayoutWeightsChecker>());
  checkers.push_back(std::make_unique<LayoutAlignChecker>());
  checkers.push_back(std::make_unique<LayoutUntaggedChecker>());
  checkers.push_back(std::make_unique<LayoutBoundsChecker>());
  checkers.push_back(std::make_unique<LayoutOverlapChecker>());
  checkers.push_back(std::make_unique<LayoutAccountChecker>());
  return checkers;
}

}  // namespace sealdl::verify
