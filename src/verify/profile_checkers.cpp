#include "verify/profile_checkers.hpp"

#include <cmath>
#include <cstdio>

namespace sealdl::verify {

namespace {

void add_error(Report& report, const char* rule, std::string message) {
  Diagnostic diagnostic;
  diagnostic.rule = rule;
  diagnostic.severity = Severity::kError;
  diagnostic.message = std::move(message);
  report.add(std::move(diagnostic));
}

}  // namespace

std::vector<std::string> profile_rules() {
  return {"profile.conservation", "profile.total", "profile.serve.stages"};
}

void check_cycle_profile(const telemetry::CycleProfile& profile,
                         Report& report) {
  for (const telemetry::LayerCycleProfile& layer : profile.layers) {
    for (const telemetry::ComponentProfile& comp : layer.components) {
      const std::uint64_t sum = comp.bucket_sum();
      if (sum != comp.total_cycles) {
        add_error(report, "profile.conservation",
                  "layer '" + layer.layer + "' component " + comp.name +
                      ": buckets sum to " + std::to_string(sum) +
                      " cycles but the component was profiled for " +
                      std::to_string(comp.total_cycles));
      }
      if (comp.total_cycles != layer.total_cycles) {
        add_error(report, "profile.total",
                  "layer '" + layer.layer + "' component " + comp.name +
                      ": total " + std::to_string(comp.total_cycles) +
                      " disagrees with the layer total " +
                      std::to_string(layer.total_cycles));
      }
    }
  }
}

void check_serve_stage_totals(double stage_cycles_sum,
                              double latency_cycles_sum, Report& report) {
  const double scale = std::max(1.0, std::fabs(latency_cycles_sum));
  if (!(std::fabs(stage_cycles_sum - latency_cycles_sum) <= 1e-9 * scale)) {
    char buffer[160];
    std::snprintf(buffer, sizeof(buffer),
                  "lifecycle stages sum to %.6f cycles but measured "
                  "end-to-end latency sums to %.6f",
                  stage_cycles_sum, latency_cycles_sum);
    add_error(report, "profile.serve.stages", buffer);
  }
}

Report run_profile_check(const telemetry::CycleProfile& profile) {
  Report report;
  check_cycle_profile(profile, report);
  return report;
}

}  // namespace sealdl::verify
