// Fleet configuration validation and report reconciliation — the `fleet.*`
// rule family.
//
// Two halves, mirroring how serve.options.* and profile.serve.stages split
// static configuration checks from post-run accounting proofs:
//
//   Static (checked before profiling, exit code 2 on violation):
//   fleet.options.devices  device count is >= 1
//   fleet.options.router   router policy is a declared enumerator
//   fleet.options.shard    1 <= shard_stages <= devices, devices divisible
//                          by shard_stages, microbatch >= 1
//   fleet.options.link     link latency finite >= 0 cycles; link bandwidth
//                          a positive finite bytes/cycle
//
//   Post-run (a failure is a scheduler accounting bug, exit code 1):
//   fleet.devices   the report carries exactly `devices` device entries,
//                   indexed 0..N-1 with consistent pipeline/stage mapping,
//                   and no device is busy longer than the run lasted
//   fleet.requests  per-device admission outcomes sum to the fleet totals:
//                   sum(routed) == generated, sum(completed/dropped/shed/
//                   blocked) == the matching total, and generated ==
//                   completed + dropped + shed (block never loses requests)
//   fleet.batches   sum of per-device batches == total batches; per-device
//                   stage runs sum to microbatches x stages
//   fleet.stages    per-request lifecycle stages still sum to the measured
//                   end-to-end latency under sharding (the fleet-level twin
//                   of profile.serve.stages)
//
// All checks are pure functions of (FleetOptions, FleetReport) — nothing is
// re-simulated. sealdl-serve runs both halves on every invocation;
// `--inject-fleet` corrupts a healthy report to prove each rule fires.
#pragma once

#include <string>
#include <vector>

#include "serve/fleet.hpp"
#include "verify/diagnostics.hpp"

namespace sealdl::verify {

/// Rule ids the family can emit, in catalog order (for --list-rules).
std::vector<std::string> fleet_rules();

/// Appends one error diagnostic per violated static-configuration rule.
void check_fleet_options(const serve::FleetOptions& options, Report& report);

/// Appends one error diagnostic per violated reconciliation rule over a
/// finished fleet run.
void check_fleet_report(const serve::FleetOptions& options,
                        const serve::FleetReport& fleet, Report& report);

/// Convenience wrappers returning fresh reports.
[[nodiscard]] Report run_fleet_options_check(const serve::FleetOptions& options);
[[nodiscard]] Report run_fleet_report_check(const serve::FleetOptions& options,
                                            const serve::FleetReport& fleet);

}  // namespace sealdl::verify
