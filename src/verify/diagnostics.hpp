// Structured diagnostics for the static analyzer (sealdl-check).
//
// Every finding carries a stable dotted rule id ("plan.closure",
// "trace.mixed", ...), a severity, the layer it concerns and — when the rule
// is address-based — the offending physical range. The Report collects
// findings, keeps exact per-rule counts even when the stored diagnostics are
// capped, and renders either human-readable text or deterministic JSON
// through util::JsonWriter (the telemetry writer).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "sim/request.hpp"
#include "util/json.hpp"

namespace sealdl::verify {

enum class Severity : std::uint8_t {
  kWarning,  ///< suspicious but not a security-invariant break
  kError,    ///< the invariant is provably violated
};

[[nodiscard]] const char* severity_name(Severity severity);

struct Diagnostic {
  std::string rule;      ///< stable dotted id, e.g. "plan.closure"
  Severity severity = Severity::kError;
  std::string layer;     ///< spec/layer name ("" when network-wide)
  sim::Addr begin = 0;   ///< offending address range [begin, end); 0/0 = n/a
  sim::Addr end = 0;
  std::string message;   ///< one-line human explanation
};

/// Ordered collection of diagnostics with exact per-rule counts. At most
/// `max_per_rule` diagnostics are *stored* per rule (reports stay readable
/// when a broken plan violates one rule thousands of times); counts are
/// always exact.
class Report {
 public:
  explicit Report(std::size_t max_per_rule = 16) : max_per_rule_(max_per_rule) {}

  void add(Diagnostic diagnostic);

  [[nodiscard]] const std::vector<Diagnostic>& diagnostics() const {
    return diagnostics_;
  }
  /// Exact number of findings for `rule`, including ones dropped by the cap.
  [[nodiscard]] std::uint64_t count(std::string_view rule) const;
  [[nodiscard]] bool fired(std::string_view rule) const { return count(rule) > 0; }
  [[nodiscard]] std::uint64_t error_count() const { return errors_; }
  [[nodiscard]] std::uint64_t warning_count() const { return warnings_; }
  /// rule id -> exact count, sorted by rule id.
  [[nodiscard]] const std::map<std::string, std::uint64_t, std::less<>>& rule_counts() const {
    return counts_;
  }

  /// Human-readable rendering, one line per stored diagnostic plus a summary.
  [[nodiscard]] std::string to_text() const;

  /// Writes this report as one JSON object value on `json` (the caller owns
  /// the surrounding document).
  void write_json(util::JsonWriter& json) const;

 private:
  std::size_t max_per_rule_;
  std::vector<Diagnostic> diagnostics_;
  std::map<std::string, std::uint64_t, std::less<>> counts_;
  std::uint64_t errors_ = 0;
  std::uint64_t warnings_ = 0;
};

}  // namespace sealdl::verify
