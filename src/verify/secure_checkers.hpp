// The secure.* rule family: per-scheme no-plaintext-leakage proofs over a
// byte-provenance taint ledger (verify/taint.hpp).
//
//   secure.leak      no plaintext secure-weight/activation bytes on the bus
//                    under Direct/Counter/SEAL-D/SEAL-C; full visibility
//                    (zero ciphertext) under Baseline.
//   secure.boundary  under SEAL, the plaintext weight rows observed on the
//                    bus equal exactly the plan's unprotected set — no more,
//                    no less (byte-for-byte in the functional audit).
//   secure.counter   counter-metadata bus bytes reconcile with the
//                    controllers' metadata traffic accounting (the PR-4
//                    flush-drain invariant), and are zero for schemes
//                    without counters.
//   secure.oracle    known-plaintext cross-check: a transfer whose
//                    `encrypted` flag claims ciphertext must not carry wire
//                    bytes equal to the functional-memory plaintext (and a
//                    plaintext-flagged transfer must carry exactly it) —
//                    catches "the flag lied" bugs the flag-trusting rules
//                    cannot see.
//
// Two ways to populate the ledger:
//   * run_secure_audit(): a self-contained functional transcript — write a
//     known pseudorandom plaintext image through sim::FunctionalMemory and
//     read it back with a TaintProbe attached, touching every weight row of
//     every layer, for each scheme under test; counter-mode schemes
//     additionally replay traffic through a real sim::MemoryController
//     (counter cache + end-of-run flush) to reconcile metadata accounting.
//   * TaintAuditor (taint.hpp): record a live timing run through
//     workload::BusProbeHook and call the ledger checkers on the result.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/gpu_config.hpp"
#include "verify/analysis.hpp"
#include "verify/diagnostics.hpp"
#include "verify/taint.hpp"

namespace sealdl::verify {

/// Rule ids of the secure.* family (for --list-rules and the catalog test).
[[nodiscard]] std::vector<std::string> secure_rules();

/// What a scheme requires of a line's wire image.
enum class WirePolicy : std::uint8_t { kMustCipher, kMustPlain };

/// Plan-derived wire policy of one line under SEAL selective encryption:
/// weight rows follow the plan's protected set, fmap channels the consumer
/// rule, dense FC vectors the any-encrypted-feature-in-line rule, and the
/// network output buffer is always ciphertext. Shared by secure.leak and the
/// scheme.* conformance family (verify/scheme_checkers.hpp), so both judge
/// the wire against the *plan* — catching a secure map that drifted from it.
[[nodiscard]] WirePolicy plan_line_policy(const AnalysisInput& input,
                                          const Region& region,
                                          sim::Addr line_addr);

/// One scheme configuration to audit.
struct SchemePick {
  sim::EncryptionScheme scheme = sim::EncryptionScheme::kNone;
  bool selective = false;
};

/// CLI name of a pick ("baseline", "direct", "counter", "seal-d", "seal-c").
[[nodiscard]] const char* scheme_pick_name(const SchemePick& pick);

struct SecureAuditOptions {
  /// Schemes to audit; empty = Baseline/Direct/Counter always, plus SEAL-D /
  /// SEAL-C when the input carries a plan.
  std::vector<SchemePick> schemes;
  /// Lines sampled per weight row / conv fmap channel: 1 = the first line of
  /// every unit (full unit coverage, the boundary-equality proof), 2 = first
  /// and last line.
  int lines_per_unit = 2;
  /// Stride-scan cap for dense FC fmap regions (they have no per-unit
  /// structure; the first and last lines are always included).
  std::uint64_t max_lines_per_region = 2048;
  /// Data lines replayed through the counter-mode memory controller for the
  /// metadata-reconciliation check.
  std::uint64_t counter_replay_lines = 96;
};

/// Ledger-level leak check (timing or functional): every observed line is
/// held against the wire policy its scheme implies for that address.
void check_taint_ledger(const AnalysisInput& input, const TaintLedger& ledger,
                        sim::EncryptionScheme scheme, bool selective,
                        Report& report);

/// SEAL boundary check over weight regions: observed-plaintext rows must
/// equal the plan's unprotected set. With `require_full_coverage` (the
/// functional audit, which touches every row) an unobserved row is itself an
/// error, making the equality total rather than partial.
void check_secure_boundary(const AnalysisInput& input,
                           const TaintLedger& ledger,
                           bool require_full_coverage, Report& report);

/// Reconciles the ledger's counter-region bytes against the controllers' own
/// counter_traffic_bytes accounting; schemes without counters must show zero.
void check_counter_reconciliation(const TaintLedger& ledger,
                                  std::uint64_t controller_counter_bytes,
                                  sim::EncryptionScheme scheme, Report& report);

/// Known-plaintext cross-check over the functional audit's wire captures.
void check_secure_oracle(const AnalysisInput& input, const TaintLedger& ledger,
                         Report& report);

/// Runs the full functional audit described above, appending findings to
/// `report`. Honors input.inject for the kSecure* seeded violations that are
/// staged inside the audit harness (kSecureCounter detaches the probe before
/// the counter flush; kSecureOracle forges a capture whose encrypted flag
/// lies).
void run_secure_audit(const AnalysisInput& input,
                      const SecureAuditOptions& options, Report& report);

/// True for injections whose expected rules only fire when the functional
/// audit runs (sealdl-check routes these through run_secure_audit).
[[nodiscard]] bool is_secure_injection(Injection injection);

/// The scheme subset a secure injection needs to demonstrably fire (keeps
/// --inject all fast: one scheme per injection instead of five).
[[nodiscard]] std::vector<SchemePick> audit_schemes_for(Injection injection);

}  // namespace sealdl::verify
