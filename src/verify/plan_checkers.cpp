// Plan-level rules: the EncryptionPlan itself (shape, ratio floor, boundary
// policy), its propagation into fmap markings (closure), and residual-union
// coverage for identity skip connections.
#include <algorithm>
#include <cmath>
#include <string>

#include "verify/checker.hpp"

namespace sealdl::verify {

namespace {

using models::LayerSpec;

int expected_rows_for_spec(const LayerSpec& s) {
  return s.type == LayerSpec::Type::kConv ? s.in_channels : s.in_features;
}

/// Encrypted-row count that tolerates a malformed (wrong-size) vector.
int safe_encrypted_count(const core::LayerPlan& lp) {
  const std::size_t limit = std::min(
      lp.encrypted_rows.size(), static_cast<std::size_t>(std::max(lp.rows, 0)));
  int n = 0;
  for (std::size_t r = 0; r < limit; ++r) n += lp.encrypted_rows[r] ? 1 : 0;
  return n;
}

class PlanShapeChecker final : public Checker {
 public:
  std::string_view name() const override { return "plan-shape"; }
  std::vector<std::string> rules() const override { return {"plan.shape"}; }

  void run(const AnalysisInput& input, Report& report) const override {
    if (!input.plan) return;
    std::size_t weight_specs = 0;
    for (const int p : input.plan_index) {
      if (p >= 0) ++weight_specs;
    }
    if (input.plan->layer_count() != weight_specs) {
      report.add({"plan.shape", Severity::kError, "", 0, 0,
                  "plan has " + std::to_string(input.plan->layer_count()) +
                      " layers for " + std::to_string(weight_specs) +
                      " CONV/FC specs"});
      return;
    }
    for (std::size_t i = 0; i < input.specs.size(); ++i) {
      if (input.plan_index[i] < 0) continue;
      const LayerSpec& s = input.specs[i];
      const auto& lp =
          input.plan->layer(static_cast<std::size_t>(input.plan_index[i]));
      const int expected = expected_rows_for_spec(s);
      if (lp.rows != expected) {
        report.add({"plan.shape", Severity::kError, s.name, 0, 0,
                    "plan rows " + std::to_string(lp.rows) + " != " +
                        std::to_string(expected) + " input channels/features"});
        continue;
      }
      if (lp.encrypted_rows.size() != static_cast<std::size_t>(lp.rows)) {
        report.add({"plan.shape", Severity::kError, s.name, 0, 0,
                    "encrypted_rows has " +
                        std::to_string(lp.encrypted_rows.size()) +
                        " entries for " + std::to_string(lp.rows) + " rows"});
        continue;
      }
      const int count = safe_encrypted_count(lp);
      if (lp.fully_encrypted && count != lp.rows) {
        report.add({"plan.shape", Severity::kError, s.name, 0, 0,
                    "fully_encrypted set but only " + std::to_string(count) +
                        "/" + std::to_string(lp.rows) + " rows marked"});
      } else if (!lp.fully_encrypted && lp.rows > 0 && count == lp.rows) {
        report.add({"plan.shape", Severity::kError, s.name, 0, 0,
                    "all rows encrypted but fully_encrypted flag not set"});
      }
    }
  }
};

class PlanRatioChecker final : public Checker {
 public:
  std::string_view name() const override { return "plan-ratio"; }
  std::vector<std::string> rules() const override { return {"plan.ratio"}; }

  void run(const AnalysisInput& input, Report& report) const override {
    if (!input.plan ||
        input.plan->layer_count() != input.boundary.size()) {
      return;  // plan.shape reports the mismatch
    }
    const double ratio = input.plan_options.encryption_ratio;
    for (std::size_t i = 0; i < input.specs.size(); ++i) {
      const int p = input.plan_index[i];
      if (p < 0 || input.boundary[static_cast<std::size_t>(p)]) continue;
      const auto& lp = input.plan->layer(static_cast<std::size_t>(p));
      // The same rounding the plan builder applies (core::apply_policy).
      const int floor_rows = std::min(
          lp.rows, static_cast<int>(std::ceil(ratio * lp.rows)));
      const int count = safe_encrypted_count(lp);
      if (count < floor_rows) {
        report.add({"plan.ratio", Severity::kError, input.specs[i].name, 0, 0,
                    "encrypts " + std::to_string(count) + "/" +
                        std::to_string(lp.rows) + " rows; ratio " +
                        std::to_string(ratio) + " requires at least " +
                        std::to_string(floor_rows)});
      }
    }
  }
};

class PlanBoundaryChecker final : public Checker {
 public:
  std::string_view name() const override { return "plan-boundary"; }
  std::vector<std::string> rules() const override { return {"plan.boundary"}; }

  void run(const AnalysisInput& input, Report& report) const override {
    if (!input.plan ||
        input.plan->layer_count() != input.boundary.size()) {
      return;
    }
    for (std::size_t i = 0; i < input.specs.size(); ++i) {
      const int p = input.plan_index[i];
      if (p < 0 || !input.boundary[static_cast<std::size_t>(p)]) continue;
      const auto& lp = input.plan->layer(static_cast<std::size_t>(p));
      const int count = safe_encrypted_count(lp);
      if (!lp.fully_encrypted || count != lp.rows) {
        report.add({"plan.boundary", Severity::kError, input.specs[i].name, 0, 0,
                    "boundary layer (head/tail policy) encrypts only " +
                        std::to_string(count) + "/" + std::to_string(lp.rows) +
                        " rows"});
      }
    }
  }
};

class PlanClosureChecker final : public Checker {
 public:
  std::string_view name() const override { return "plan-closure"; }
  std::vector<std::string> rules() const override { return {"plan.closure"}; }

  void run(const AnalysisInput& input, Report& report) const override {
    const auto& map = input.heap.secure_map();
    if (!input.plan) {
      if (map.secure_bytes() != 0) {
        report.add({"plan.closure", Severity::kError, "", 0, 0,
                    "baseline configuration has " +
                        std::to_string(map.secure_bytes()) + " secure bytes"});
      }
      return;
    }
    const auto& layers = input.layout->layers();
    for (std::size_t i = 0; i < input.specs.size(); ++i) {
      const LayerSpec& s = input.specs[i];
      const auto& layer = layers[i];
      const int cp = input.consumer_plan_index(i);
      const core::LayerPlan* lp =
          cp >= 0 && static_cast<std::size_t>(cp) < input.plan->layer_count()
              ? &input.plan->layer(static_cast<std::size_t>(cp))
              : nullptr;
      if (s.type == LayerSpec::Type::kFc) {
        // Dense feature vector: 4 bytes per feature, feature f pairs with
        // the consumer's kernel row f.
        for (int f = 0; f < s.in_features; ++f) {
          const bool expected = lp && row_encrypted_safe(*lp, f);
          const sim::Addr addr =
              layer.ifmap_base + static_cast<std::uint64_t>(f) * 4;
          if (expected == map.is_secure(addr)) continue;
          report.add({"plan.closure", Severity::kError, s.name, addr, addr + 4,
                      expected
                          ? "feature " + std::to_string(f) +
                                " feeds an encrypted row but is not marked"
                          : "feature " + std::to_string(f) +
                                " marked secure but its consumer row is plain"});
        }
      } else {
        for (int c = 0; c < layer.ifmap_channels; ++c) {
          const bool expected = lp && c < lp->rows && row_encrypted_safe(*lp, c);
          const sim::Addr begin =
              layer.ifmap_base +
              static_cast<std::uint64_t>(c) * layer.ifmap_channel_pitch;
          const sim::Addr end = begin + layer.ifmap_channel_pitch;
          const bool first = map.is_secure(begin);
          const bool last = map.is_secure(end - 1);
          if (expected && !(first && last)) {
            report.add({"plan.closure", Severity::kError, s.name, begin, end,
                        "channel " + std::to_string(c) +
                            " feeds an encrypted row but is not fully marked"});
          } else if (!expected && (first || last)) {
            report.add({"plan.closure", Severity::kError, s.name, begin, end,
                        "channel " + std::to_string(c) +
                            " marked secure but its consumer row is plain"});
          }
        }
      }
    }
    // The network output is always encrypted under SEAL (§III-A: Z leaves
    // the accelerator encrypted).
    const auto& last = layers.back();
    for (int c = 0; c < last.ofmap_channels; ++c) {
      const sim::Addr begin =
          last.ofmap_base + static_cast<std::uint64_t>(c) * last.ofmap_channel_pitch;
      const sim::Addr end = begin + last.ofmap_channel_pitch;
      if (!map.is_secure(begin) || !map.is_secure(end - 1)) {
        report.add({"plan.closure", Severity::kError, "output", begin, end,
                    "network output channel " + std::to_string(c) +
                        " is not encrypted"});
      }
    }
  }
};

class PlanResidualChecker final : public Checker {
 public:
  std::string_view name() const override { return "plan-residual"; }
  std::vector<std::string> rules() const override { return {"plan.residual"}; }

  void run(const AnalysisInput& input, Report& report) const override {
    if (!input.plan) return;
    for (const ResidualEdge& edge : input.residuals) {
      const int ep = input.plan_index[edge.entry_spec];
      const int cp = input.plan_index[edge.consumer_spec];
      if (ep < 0 || cp < 0 ||
          static_cast<std::size_t>(ep) >= input.plan->layer_count() ||
          static_cast<std::size_t>(cp) >= input.plan->layer_count()) {
        continue;
      }
      const auto& entry = input.plan->layer(static_cast<std::size_t>(ep));
      const auto& consumer = input.plan->layer(static_cast<std::size_t>(cp));
      // A fully-encrypted consumer (e.g. the boundary FC head) re-encrypts
      // every summed channel itself; the skip source owes it nothing.
      if (consumer.fully_encrypted) continue;
      const int limit = std::min(entry.rows, consumer.rows);
      for (int r = 0; r < limit; ++r) {
        if (!row_encrypted_safe(consumer, r) || row_encrypted_safe(entry, r)) {
          continue;
        }
        report.add({"plan.residual", Severity::kError,
                    input.specs[edge.entry_spec].name, 0, 0,
                    "identity skip leaves channel " + std::to_string(r) +
                        " plaintext while consumer " +
                        input.specs[edge.consumer_spec].name +
                        " encrypts row " + std::to_string(r)});
      }
    }
  }
};

}  // namespace

std::vector<std::unique_ptr<Checker>> make_plan_checkers() {
  std::vector<std::unique_ptr<Checker>> checkers;
  checkers.push_back(std::make_unique<PlanShapeChecker>());
  checkers.push_back(std::make_unique<PlanRatioChecker>());
  checkers.push_back(std::make_unique<PlanBoundaryChecker>());
  checkers.push_back(std::make_unique<PlanClosureChecker>());
  checkers.push_back(std::make_unique<PlanResidualChecker>());
  return checkers;
}

}  // namespace sealdl::verify
