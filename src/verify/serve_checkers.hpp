// Static validation of serve::ServeOptions — the `serve.options.*` rule
// family.
//
// sealdl-serve runs this before profiling anything: a bad configuration
// fails fast with exit code 2 and a stable rule id in the standard
// diagnostic stream (text or JSON, same as sealdl-check) instead of
// tripping an assert deep inside the scheduler. The checks are pure
// functions of the option struct — no simulation, the same spirit as the
// plan/layout rules. Rule catalog (docs/ANALYSIS.md):
//
//   serve.options.rate      offered rate is a positive finite req/s
//   serve.options.duration  arrival window is a positive finite second count
//   serve.options.queue     max_batch >= 1, queue_depth >= 1 and
//                           queue_depth >= max_batch (a dispatch must be
//                           able to fill a full batch from the queue)
//   serve.options.policy    overload policy is a declared enumerator
//   serve.options.jobs      profiling --jobs is >= 1, or 0 = auto
//   serve.options.overhead  dispatch overhead is finite and >= 0 cycles
//   serve.options.live      --live-stats interval is a positive finite
//                           second count
//   serve.options.profile   --profile-out path is non-empty and not a
//                           directory
#pragma once

#include <string>
#include <vector>

#include "serve/options.hpp"
#include "verify/diagnostics.hpp"

namespace sealdl::verify {

/// Rule ids the family can emit, in catalog order (for --list-rules).
std::vector<std::string> serve_option_rules();

/// Appends one error diagnostic per violated rule. `jobs` is the profiling
/// parallelism knob (0 = one worker per hardware thread is legal; negatives
/// are not).
void check_serve_options(const serve::ServeOptions& options, int jobs,
                         Report& report);

/// Convenience wrapper returning a fresh report.
[[nodiscard]] Report run_serve_options_check(const serve::ServeOptions& options,
                                             int jobs);

}  // namespace sealdl::verify
