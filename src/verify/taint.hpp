// Byte-provenance taint tracking for bus traffic.
//
// Every byte that crosses the DRAM bus is tagged at its source: plaintext
// secure weight, weight ciphertext, plaintext activation, activation
// ciphertext, counter metadata, or untagged. A TaintProbe classifies each
// transfer against the analyzer's address-region model (verify::AnalysisInput
// reproduces the exact layout the runner builds) and accumulates a per-line,
// per-direction TaintLedger; in functional mode it additionally captures the
// raw wire image of each line for known-plaintext cross-checks. The
// secure.* rule family (verify/secure_checkers.hpp) proves the per-scheme
// no-plaintext-leakage invariant on top of the ledger.
//
// TaintAuditor plugs the probe into a timing run through
// workload::BusProbeHook: one private probe per layer task, merged strictly
// in spec order from the submitting thread, so the ledger is bitwise
// identical for any --jobs value.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <span>

#include "crypto/modes.hpp"
#include "sim/bus_probe.hpp"
#include "sim/request.hpp"
#include "util/json.hpp"
#include "verify/analysis.hpp"
#include "verify/diagnostics.hpp"
#include "workload/network_runner.hpp"

namespace sealdl::verify {

/// Source tag of a byte observed on the bus.
enum class TaintClass : std::uint8_t {
  kWeightPlain = 0,   ///< model weight bytes, plaintext on the wire
  kWeightCipher = 1,  ///< model weight bytes, ciphertext on the wire
  kFmapPlain = 2,     ///< activation (feature-map) bytes, plaintext
  kFmapCipher = 3,    ///< activation bytes, ciphertext
  kCounterMeta = 4,   ///< counter-mode metadata (reserved high region)
  kUntagged = 5,      ///< address outside every known region
};

inline constexpr std::size_t kTaintClassCount = 6;

[[nodiscard]] const char* taint_class_name(TaintClass cls);

/// Per-direction byte counts, indexed by TaintClass.
struct TaintCounts {
  std::array<std::uint64_t, kTaintClassCount> read{};
  std::array<std::uint64_t, kTaintClassCount> write{};
};

/// Per-line, per-direction taint accounting for one run (or one layer task).
/// Lines and captures are keyed by sorted std::map so every iteration —
/// checking, JSON rendering, digesting — is deterministic.
class TaintLedger {
 public:
  /// Raw wire image of a line (functional mode only); the last transfer wins,
  /// which mirrors what a bus snooper's most recent observation holds.
  struct WireImage {
    std::array<std::uint8_t, crypto::kLineBytes> bytes{};
    std::uint32_t size = 0;  ///< observed bytes (<= kLineBytes)
    bool encrypted = false;  ///< the transfer's encrypted flag
  };

  void record(sim::Addr line_addr, std::uint32_t bytes, bool is_write,
              TaintClass cls);
  void capture(sim::Addr line_addr, std::span<const std::uint8_t> wire,
               bool encrypted);

  /// Folds `other` into this ledger (per-line counts add; captures overwrite
  /// in `other`'s key order). Used by the spec-ordered merge.
  void merge_from(const TaintLedger& other);

  [[nodiscard]] const std::map<sim::Addr, TaintCounts>& lines() const {
    return lines_;
  }
  [[nodiscard]] const std::map<sim::Addr, WireImage>& captures() const {
    return captures_;
  }
  [[nodiscard]] const TaintCounts& totals() const { return totals_; }
  /// read + write bytes of one class.
  [[nodiscard]] std::uint64_t class_bytes(TaintClass cls) const;
  /// All bytes across classes and directions.
  [[nodiscard]] std::uint64_t total_bytes() const;

  /// FNV-1a over the sorted per-line stream: a stable fingerprint the
  /// determinism gates compare across --jobs values.
  [[nodiscard]] std::uint64_t digest() const;

  /// One JSON object value: class totals per direction, line/capture counts,
  /// and the digest. Deterministic byte-for-byte.
  void write_json(util::JsonWriter& json) const;

 private:
  std::map<sim::Addr, TaintCounts> lines_;
  std::map<sim::Addr, WireImage> captures_;
  TaintCounts totals_;
};

/// BusProbe that classifies transfers against the analyzer's region model and
/// records them into a ledger. Classification is pure (no mutable state
/// beyond the ledger), so one probe per layer task plus an ordered merge
/// keeps the aggregate jobs-invariant.
class TaintProbe : public sim::BusProbe {
 public:
  /// Both pointers are borrowed and must outlive the probe.
  TaintProbe(const AnalysisInput* input, TaintLedger* ledger)
      : input_(input), ledger_(ledger) {}

  void on_transfer(sim::Addr line_addr, std::uint32_t bytes, bool is_write,
                   bool encrypted) override;
  void on_data(sim::Addr line_addr, std::span<const std::uint8_t> wire_bytes,
               bool is_write, bool encrypted) override;

  /// Source tag for a line: counter region -> kCounterMeta, then the region
  /// map decides weight/fmap/untagged and `encrypted` picks the variant.
  [[nodiscard]] TaintClass classify(sim::Addr line_addr, bool encrypted) const;

 private:
  const AnalysisInput* input_;
  TaintLedger* ledger_;
};

/// workload::BusProbeHook implementation: attaches one recording TaintProbe
/// per layer task and folds the task-private ledgers back in spec order.
/// All hook methods run on the submitting thread (see BusProbeHook), so the
/// auditor needs no locks and its ledger is identical for any --jobs.
class TaintAuditor final : public workload::BusProbeHook {
 public:
  /// `input` is borrowed; it must describe the same specs/plan options the
  /// audited run uses (verify::build_input reproduces the runner's layout
  /// bit-identically, which is what makes external classification sound).
  explicit TaintAuditor(const AnalysisInput* input) : input_(input) {}

  std::unique_ptr<sim::BusProbe> make_probe(std::size_t spec_index) override;
  void merge_probe(std::unique_ptr<sim::BusProbe> probe,
                   std::size_t spec_index) override;

  [[nodiscard]] const TaintLedger& ledger() const { return ledger_; }
  [[nodiscard]] const AnalysisInput& input() const { return *input_; }

  /// Runs the secure.* ledger checkers over the accumulated traffic of a
  /// timing run. `counter_traffic_bytes` is the controllers' own metadata
  /// accounting (summed sim::SimStats::counter_traffic_bytes), which
  /// secure.counter reconciles against the ledger's counter-region bytes.
  [[nodiscard]] Report check(sim::EncryptionScheme scheme, bool selective,
                             std::uint64_t counter_traffic_bytes) const;

 private:
  const AnalysisInput* input_;
  TaintLedger ledger_;
};

}  // namespace sealdl::verify
