// Pluggable rule families for sealdl-check.
//
// Each Checker validates one invariant family over an AnalysisInput and
// reports structured diagnostics. Rule ids are stable (docs/ANALYSIS.md):
//
//   plan.shape      per-layer row vectors sized and flagged consistently
//   plan.ratio      non-boundary layers meet the encryption-ratio floor
//   plan.boundary   boundary layers (head/tail policy) fully encrypted
//   plan.closure    fmap channel marking == consumer rule; output encrypted
//   plan.residual   identity-skip sources cover their consumer's rows
//   layout.weights  weight-row marking agrees with the plan
//   layout.align    secure range edges line-aligned in line-padded regions
//   layout.untagged secure ranges covered by known model regions
//   layout.bounds   secure ranges inside the allocated heap
//   layout.overlap  model regions pairwise disjoint
//   layout.account  layout-reported secure bytes == map secure bytes
//   trace.mixed     no COMPUTE pairs an encrypted weight row with a
//                   plaintext ifmap channel (the paper's §III-A invariant)
//   trace.bounds    trace addresses line-aligned and inside the heap
//   trace.wait      WaitLoads thresholds satisfiable (warning)
//   trace.order     output stores preceded by a full load barrier
//   trace.region    stores land in the layer's own output buffer (warning)
//
// The taint-ledger rule family (secure.leak / secure.boundary /
// secure.counter / secure.oracle) lives in verify/secure_checkers.hpp: its
// checkers consume a recorded bus-traffic ledger rather than an
// AnalysisInput alone, so they run through run_secure_audit() or a
// TaintAuditor instead of the Checker interface.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "verify/analysis.hpp"
#include "verify/diagnostics.hpp"

namespace sealdl::verify {

class Checker {
 public:
  virtual ~Checker() = default;

  [[nodiscard]] virtual std::string_view name() const = 0;
  /// Rule ids this checker can emit.
  [[nodiscard]] virtual std::vector<std::string> rules() const = 0;
  virtual void run(const AnalysisInput& input, Report& report) const = 0;
};

/// Knobs for the trace linter (the only checker that generates work).
struct TraceCheckOptions {
  /// Warps worth of programs generated per layer.
  int num_warps = 12;
  /// Tile cap per layer; one CONV tile already walks every input channel, so
  /// a small stratified sample still covers every (row, channel) pair.
  std::uint64_t max_tiles = 24;
};

std::vector<std::unique_ptr<Checker>> make_plan_checkers();
std::vector<std::unique_ptr<Checker>> make_layout_checkers();
std::unique_ptr<Checker> make_trace_checker(const TraceCheckOptions& options = {});

/// The full default suite, in plan -> layout -> trace order.
std::vector<std::unique_ptr<Checker>> default_checkers(
    const TraceCheckOptions& trace_options = {});

/// Runs every checker over `input` into one report.
Report run_checkers(const AnalysisInput& input,
                    const std::vector<std::unique_ptr<Checker>>& checkers,
                    std::size_t max_per_rule = 16);

}  // namespace sealdl::verify
