#include "verify/scheme_checkers.hpp"

#include <algorithm>
#include <cstddef>
#include <set>
#include <string_view>

#include "crypto/modes.hpp"
#include "sim/mem_controller.hpp"
#include "verify/secure_checkers.hpp"

namespace sealdl::verify {

namespace {

constexpr std::uint64_t kLine = crypto::kLineBytes;

std::uint64_t dir_sum(const TaintCounts& counts, TaintClass cls) {
  const auto i = static_cast<std::size_t>(cls);
  return counts.read[i] + counts.write[i];
}

std::uint64_t plain_bytes(const TaintCounts& counts) {
  return dir_sum(counts, TaintClass::kWeightPlain) +
         dir_sum(counts, TaintClass::kFmapPlain);
}

std::uint64_t cipher_bytes(const TaintCounts& counts) {
  return dir_sum(counts, TaintClass::kWeightCipher) +
         dir_sum(counts, TaintClass::kFmapCipher);
}

/// The contract's wire policy for one data line. nullopt = the contract does
/// not constrain this line (e.g. an untagged address).
std::optional<WirePolicy> wire_policy(const sim::SchemeContract& contract,
                                      const AnalysisInput& input,
                                      const Region& region,
                                      sim::Addr line_addr) {
  switch (contract.wire) {
    case sim::WireVisibility::kFullPlain:
      return WirePolicy::kMustPlain;
    case sim::WireVisibility::kFullCipher:
      return WirePolicy::kMustCipher;
    case sim::WireVisibility::kPlanBoundary:
      return plan_line_policy(input, region, line_addr);
    case sim::WireVisibility::kWeightsCipher:
      return region.kind == Region::Kind::kWeights ? WirePolicy::kMustCipher
                                                   : WirePolicy::kMustPlain;
  }
  return std::nullopt;
}

void add_error(Report& report, const char* rule, const std::string& layer,
               sim::Addr begin, sim::Addr end, std::string message) {
  report.add({.rule = rule,
              .severity = Severity::kError,
              .layer = layer,
              .begin = begin,
              .end = end,
              .message = std::move(message)});
}

/// Latency of a line read issued at `now` on a fresh controller configured
/// for `entry` (selective off, so the probe address is in-scope for every
/// non-baseline scheme).
struct TimingProbe {
  sim::MemoryController controller;

  explicit TimingProbe(const sim::SchemeInfo& entry)
      : controller(probe_config(entry), nullptr) {}

  static sim::GpuConfig probe_config(const sim::SchemeInfo& entry) {
    sim::GpuConfig config = sim::GpuConfig::gtx480();
    apply_scheme(entry, config);
    config.selective = false;  // the probe address must hit the secure path
    return config;
  }

  sim::Cycle read_latency(sim::Cycle now, sim::Addr addr) {
    return controller.read_line(now, addr) - now;
  }
};

}  // namespace

std::vector<std::string> scheme_rules() {
  return {"scheme.registry", "scheme.wire",     "scheme.boundary",
          "scheme.metadata", "scheme.coverage", "scheme.timing"};
}

void check_scheme_registry(std::span<const sim::SchemeInfo> entries,
                           Report& report) {
  std::set<std::string_view> cli_names;
  std::set<std::string_view> displays;
  for (const sim::SchemeInfo& info : entries) {
    const std::string name = info.cli_name;
    if (!cli_names.insert(info.cli_name).second) {
      add_error(report, "scheme.registry", name, 0, 0,
                "duplicate CLI name '" + name + "' in the scheme registry");
    }
    if (!displays.insert(info.display).second) {
      add_error(report, "scheme.registry", name, 0, 0,
                "duplicate display name '" + std::string(info.display) +
                    "' in the scheme registry");
    }
    if (info.model == nullptr) {
      add_error(report, "scheme.registry", name, 0, 0,
                "registry entry '" + name + "' has no scheme model");
      continue;
    }
    const sim::SchemeContract& contract = info.model->contract();
    if (contract.scope != info.scope) {
      add_error(report, "scheme.registry", name, 0, 0,
                "entry '" + name + "' scope (" +
                    sim::protection_scope_name(info.scope) +
                    ") disagrees with its contract (" +
                    sim::protection_scope_name(contract.scope) + ")");
    }
    if ((info.family == sim::EncryptionScheme::kNone) !=
        (info.scope == sim::ProtectionScope::kNone)) {
      add_error(report, "scheme.registry", name, 0, 0,
                "entry '" + name +
                    "' protects nothing iff its family is kNone — family and "
                    "scope disagree");
    }
    const bool has_counters = info.model->uses_counter_cache();
    if (has_counters !=
        (contract.metadata == sim::MetadataModel::kCounterLines)) {
      add_error(report, "scheme.registry", name, 0, 0,
                "entry '" + name +
                    "' declares counter-line metadata iff it uses a counter "
                    "cache — model and contract disagree");
    }
    const sim::GpuConfig config = sim::GpuConfig::gtx480();
    const int counter_bytes = info.model->counter_bytes_per_line(config);
    if (has_counters ? counter_bytes <= 0 : counter_bytes != 0) {
      add_error(report, "scheme.registry", name, 0, 0,
                "entry '" + name + "' counter layout (" +
                    std::to_string(counter_bytes) +
                    " bytes/line) is inconsistent with its counter-cache "
                    "use");
    }
    if (contract.pays_aes_occupancy ==
        (info.family == sim::EncryptionScheme::kNone)) {
      add_error(report, "scheme.registry", name, 0, 0,
                "entry '" + name +
                    "' pays AES occupancy iff it encrypts — contract and "
                    "family disagree");
    }
    if ((contract.read_shape == sim::SerializationShape::kPadOverlapsData) !=
        has_counters) {
      add_error(report, "scheme.registry", name, 0, 0,
                "entry '" + name +
                    "' declares pad-overlap serialization iff it has "
                    "counters to overlap with");
    }
    // Name round-trip through the shared parser: both spellings must resolve
    // back to an entry carrying this CLI name (drift check for the
    // name<->enum<->CLI collapse).
    for (const char* spelling : {info.cli_name, info.display}) {
      const sim::SchemeInfo* found = sim::find_scheme(spelling);
      if (found == nullptr ||
          std::string_view(found->cli_name) != info.cli_name) {
        add_error(report, "scheme.registry", name, 0, 0,
                  "spelling '" + std::string(spelling) +
                      "' does not resolve back to entry '" + name + "'");
      }
    }
  }
}

void check_scheme_timing(const sim::SchemeInfo& entry,
                         const sim::SchemeContract& claimed, Report& report) {
  const std::string name = entry.cli_name;
  constexpr sim::Addr kAddr = 0x1000'0000;
  // Quiet-time reference: a late enough issue cycle that every pipe is idle
  // again, so latencies are pure (no occupancy queueing from earlier probes).
  constexpr sim::Cycle kQuiet = 1'000'000;

  TimingProbe baseline(sim::default_scheme_for(sim::EncryptionScheme::kNone));
  const sim::Cycle plain = baseline.read_latency(0, kAddr);

  TimingProbe probe(entry);
  const sim::Cycle cold = probe.read_latency(0, kAddr);
  // Second read of the same line at quiet time: for counter-family schemes
  // the counter is now cached, so this is the steady-state (hit) latency.
  const sim::Cycle warm = probe.read_latency(kQuiet, kAddr);

  switch (claimed.read_shape) {
    case sim::SerializationShape::kPassthrough:
      if (cold != plain || warm != plain) {
        add_error(report, "scheme.timing", name, 0, 0,
                  "contract claims passthrough reads but a secure read took " +
                      std::to_string(cold) + "/" + std::to_string(warm) +
                      " cycles vs " + std::to_string(plain) + " plain");
      }
      break;
    case sim::SerializationShape::kAesAfterData:
      // Serialized crypto can never match the plain latency — cold or warm.
      if (cold <= plain || warm <= plain) {
        add_error(report, "scheme.timing", name, 0, 0,
                  "contract claims AES-after-data serialization but a secure "
                  "read took " +
                      std::to_string(cold) + "/" + std::to_string(warm) +
                      " cycles vs " + std::to_string(plain) +
                      " plain — the cipher is not on the critical path");
      }
      break;
    case sim::SerializationShape::kPadOverlapsData:
      // On a counter hit the pad hides behind the data fetch entirely; only
      // the final XOR remains visible. A cold miss must cost more than that.
      if (warm != plain + 1) {
        add_error(report, "scheme.timing", name, 0, 0,
                  "contract claims pad generation overlaps the data fetch on "
                  "a counter hit, but a warm read took " +
                      std::to_string(warm) + " cycles vs " +
                      std::to_string(plain) + " plain (+1 XOR expected)");
      }
      if (cold <= warm) {
        add_error(report, "scheme.timing", name, 0, 0,
                  "contract claims the pad overlap is hidden only on a "
                  "counter hit, but a cold (miss) read took " +
                      std::to_string(cold) + " cycles vs " +
                      std::to_string(warm) + " warm");
      }
      break;
  }
}

void check_scheme_wire(const sim::SchemeInfo& entry,
                       const SchemeRunEvidence& evidence, Report& report) {
  const AnalysisInput& input = *evidence.input;
  const sim::SchemeContract& contract = entry.model->contract();
  for (const auto& [addr, counts] : evidence.ledger->lines()) {
    if (addr >= sim::kCounterRegionBase) continue;
    const Region* region = input.region_at(addr);
    if (region == nullptr) continue;  // untagged: secure.leak's warning
    const auto policy = wire_policy(contract, input, *region, addr);
    if (!policy) continue;
    const std::uint64_t plain = plain_bytes(counts);
    const std::uint64_t cipher = cipher_bytes(counts);
    if (*policy == WirePolicy::kMustCipher && plain > 0) {
      add_error(report, "scheme.wire", region->name, addr, addr + kLine,
                std::to_string(plain) + " plaintext byte(s) of " +
                    region->name + " on the bus, but " + entry.cli_name +
                    "'s contract requires ciphertext here");
    }
    if (*policy == WirePolicy::kMustPlain && cipher > 0) {
      add_error(report, "scheme.wire", region->name, addr, addr + kLine,
                std::to_string(cipher) + " ciphertext byte(s) of " +
                    region->name + " on the bus, but " + entry.cli_name +
                    "'s contract leaves this address unprotected");
    }
  }
}

void check_scheme_boundary(const sim::SchemeInfo& entry,
                           const SchemeRunEvidence& evidence, Report& report) {
  const AnalysisInput& input = *evidence.input;
  const sim::ProtectionScope scope = entry.model->contract().scope;
  const auto wp = static_cast<std::size_t>(TaintClass::kWeightPlain);
  const auto wc = static_cast<std::size_t>(TaintClass::kWeightCipher);
  const auto& lines = evidence.ledger->lines();
  for (const Region& region : input.regions) {
    if (region.kind != Region::Kind::kWeights || region.units <= 0) continue;
    std::vector<std::uint8_t> seen_plain(static_cast<std::size_t>(region.units), 0);
    std::vector<std::uint8_t> seen_cipher(static_cast<std::size_t>(region.units), 0);
    for (auto it = lines.lower_bound(region.begin);
         it != lines.end() && it->first < region.end; ++it) {
      const auto row =
          static_cast<std::size_t>((it->first - region.begin) / region.pitch);
      if (row >= seen_plain.size()) continue;
      if (it->second.read[wp] + it->second.write[wp] > 0) seen_plain[row] = 1;
      if (it->second.read[wc] + it->second.write[wc] > 0) seen_cipher[row] = 1;
    }
    for (int r = 0; r < region.units; ++r) {
      const auto ri = static_cast<std::size_t>(r);
      bool protected_row = false;
      switch (scope) {
        case sim::ProtectionScope::kNone:
          protected_row = false;
          break;
        case sim::ProtectionScope::kAll:
        case sim::ProtectionScope::kWeights:
          protected_row = true;
          break;
        case sim::ProtectionScope::kPlanRows: {
          if (!input.plan) continue;
          const int lp_idx = input.plan_index[region.spec_index];
          if (lp_idx < 0) continue;
          protected_row = input.plan->row_protected(
              static_cast<std::size_t>(lp_idx), r);
          break;
        }
      }
      const sim::Addr row_begin =
          region.begin + static_cast<std::uint64_t>(r) * region.pitch;
      if (protected_row && seen_plain[ri]) {
        add_error(report, "scheme.boundary", region.name, row_begin,
                  row_begin + region.pitch,
                  "row " + std::to_string(r) + " of " + region.name +
                      " is inside " + entry.cli_name +
                      "'s protection boundary (" +
                      sim::protection_scope_name(scope) +
                      ") but crossed the bus as plaintext");
      } else if (!protected_row && seen_cipher[ri] && !seen_plain[ri]) {
        add_error(report, "scheme.boundary", region.name, row_begin,
                  row_begin + region.pitch,
                  "row " + std::to_string(r) + " of " + region.name +
                      " is outside " + entry.cli_name +
                      "'s protection boundary but crossed the bus only as "
                      "ciphertext — the boundary grew");
      }
    }
  }
}

void check_scheme_metadata(const sim::SchemeInfo& entry,
                           const SchemeRunEvidence& evidence, Report& report) {
  const sim::SimStats& stats = evidence.stats;
  const std::string name = entry.cli_name;
  const std::uint64_t ledger_meta =
      evidence.ledger->class_bytes(TaintClass::kCounterMeta);
  if (entry.model->contract().metadata == sim::MetadataModel::kNone) {
    if (stats.counter_traffic_bytes != 0 || stats.counter_hits != 0 ||
        stats.counter_misses != 0 || ledger_meta != 0) {
      add_error(report, "scheme.metadata", name, 0, 0,
                "counter metadata under a scheme declaring none (controller " +
                    std::to_string(stats.counter_traffic_bytes) +
                    " B, ledger " + std::to_string(ledger_meta) + " B, " +
                    std::to_string(stats.counter_hits + stats.counter_misses) +
                    " cache lookups)");
    }
    return;
  }
  const std::uint64_t decomposed = stats.counter_fill_bytes +
                                   stats.counter_writeback_bytes +
                                   stats.counter_flush_bytes;
  if (stats.counter_traffic_bytes != decomposed) {
    add_error(report, "scheme.metadata", name, 0, 0,
              "metadata traffic (" +
                  std::to_string(stats.counter_traffic_bytes) +
                  " B) != fills + writebacks + flushes (" +
                  std::to_string(stats.counter_fill_bytes) + " + " +
                  std::to_string(stats.counter_writeback_bytes) + " + " +
                  std::to_string(stats.counter_flush_bytes) + " B)");
  }
  const std::uint64_t expected_fills =
      stats.counter_misses * static_cast<std::uint64_t>(evidence.config.line_bytes);
  if (stats.counter_fill_bytes != expected_fills) {
    add_error(report, "scheme.metadata", name, 0, 0,
              "counter fills (" + std::to_string(stats.counter_fill_bytes) +
                  " B) != misses x line bytes (" +
                  std::to_string(stats.counter_misses) + " x " +
                  std::to_string(evidence.config.line_bytes) + ")");
  }
  if (ledger_meta != stats.counter_traffic_bytes) {
    add_error(report, "scheme.metadata", name, 0, 0,
              "counter-region bytes on the bus (" +
                  std::to_string(ledger_meta) +
                  ") do not reconcile with the controllers' metadata "
                  "accounting (" +
                  std::to_string(stats.counter_traffic_bytes) + ")");
  }
}

void check_scheme_coverage(const sim::SchemeInfo& entry,
                           const SchemeRunEvidence& evidence, Report& report) {
  const sim::SimStats& stats = evidence.stats;
  const sim::SchemeContract& contract = entry.model->contract();
  const std::string name = entry.cli_name;
  const std::uint64_t data = stats.dram_read_bytes + stats.dram_write_bytes;
  switch (contract.scope) {
    case sim::ProtectionScope::kNone:
      if (stats.encrypted_bytes != 0 || stats.bypassed_bytes != 0) {
        add_error(report, "scheme.coverage", name, 0, 0,
                  "baseline scope with nonzero secure-path accounting (" +
                      std::to_string(stats.encrypted_bytes) + " encrypted, " +
                      std::to_string(stats.bypassed_bytes) + " bypassed)");
      }
      break;
    case sim::ProtectionScope::kAll:
      if (stats.bypassed_bytes != 0 || stats.encrypted_bytes != data) {
        add_error(report, "scheme.coverage", name, 0, 0,
                  "full-coverage scope must encrypt every data byte (" +
                      std::to_string(stats.encrypted_bytes) + " encrypted + " +
                      std::to_string(stats.bypassed_bytes) + " bypassed of " +
                      std::to_string(data) + ")");
      }
      break;
    case sim::ProtectionScope::kPlanRows:
    case sim::ProtectionScope::kWeights:
      if (stats.encrypted_bytes + stats.bypassed_bytes != data) {
        add_error(report, "scheme.coverage", name, 0, 0,
                  "selective scope must partition data traffic (" +
                      std::to_string(stats.encrypted_bytes) + " encrypted + " +
                      std::to_string(stats.bypassed_bytes) +
                      " bypassed != " + std::to_string(data) + ")");
      }
      break;
  }
  if (contract.pays_aes_occupancy) {
    if (stats.encrypted_bytes > 0 && stats.aes_busy_cycles <= 0.0) {
      add_error(report, "scheme.coverage", name, 0, 0,
                std::to_string(stats.encrypted_bytes) +
                    " encrypted byte(s) booked zero AES occupancy — the "
                    "contract says every encrypted byte pays");
    }
  } else if (stats.aes_busy_cycles != 0.0) {
    add_error(report, "scheme.coverage", name, 0, 0,
              "AES occupancy (" + std::to_string(stats.aes_busy_cycles) +
                  " engine-cycles) under a scheme declaring none");
  }
}

Report run_scheme_conformance(const sim::SchemeInfo& entry,
                              const SchemeRunEvidence& evidence) {
  Report report;
  check_scheme_registry(sim::scheme_registry(), report);
  check_scheme_timing(entry, entry.model->contract(), report);
  check_scheme_wire(entry, evidence, report);
  check_scheme_boundary(entry, evidence, report);
  check_scheme_metadata(entry, evidence, report);
  check_scheme_coverage(entry, evidence, report);
  return report;
}

const std::vector<SchemeInjection>& all_scheme_injections() {
  static const std::vector<SchemeInjection> kAll = {
      SchemeInjection::kWire,     SchemeInjection::kBoundary,
      SchemeInjection::kMetadata, SchemeInjection::kCoverage,
      SchemeInjection::kTiming,   SchemeInjection::kRegistry,
  };
  return kAll;
}

const char* scheme_injection_name(SchemeInjection injection) {
  switch (injection) {
    case SchemeInjection::kWire: return "scheme-wire";
    case SchemeInjection::kBoundary: return "scheme-boundary";
    case SchemeInjection::kMetadata: return "scheme-metadata";
    case SchemeInjection::kCoverage: return "scheme-coverage";
    case SchemeInjection::kTiming: return "scheme-timing";
    case SchemeInjection::kRegistry: return "scheme-registry";
  }
  return "?";
}

std::optional<SchemeInjection> scheme_injection_from_name(
    const std::string& name) {
  for (const SchemeInjection injection : all_scheme_injections()) {
    if (name == scheme_injection_name(injection)) return injection;
  }
  return std::nullopt;
}

std::vector<std::string> scheme_injection_expected_rules(
    SchemeInjection injection) {
  switch (injection) {
    case SchemeInjection::kWire: return {"scheme.wire"};
    case SchemeInjection::kBoundary: return {"scheme.boundary"};
    case SchemeInjection::kMetadata: return {"scheme.metadata"};
    case SchemeInjection::kCoverage: return {"scheme.coverage"};
    case SchemeInjection::kTiming: return {"scheme.timing"};
    case SchemeInjection::kRegistry: return {"scheme.registry"};
  }
  return {};
}

Report run_scheme_injection(SchemeInjection injection,
                            const sim::SchemeInfo& entry,
                            const SchemeRunEvidence& evidence) {
  Report report;
  const AnalysisInput& input = *evidence.input;
  switch (injection) {
    case SchemeInjection::kWire: {
      // Record plaintext bytes on the first line the contract requires to be
      // ciphertext; only copies are touched, never the run's real ledger.
      TaintLedger corrupted = *evidence.ledger;
      const sim::SchemeContract& contract = entry.model->contract();
      for (const Region& region : input.regions) {
        const auto policy = wire_policy(contract, input, region, region.begin);
        if (policy == WirePolicy::kMustCipher) {
          corrupted.record(region.begin, static_cast<std::uint32_t>(kLine),
                           /*is_write=*/false,
                           region.kind == Region::Kind::kWeights
                               ? TaintClass::kWeightPlain
                               : TaintClass::kFmapPlain);
          break;
        }
      }
      SchemeRunEvidence doctored = evidence;
      doctored.ledger = &corrupted;
      check_scheme_wire(entry, doctored, report);
      return report;
    }
    case SchemeInjection::kBoundary: {
      // Plaintext inside a protected weight row: find one under the scope.
      TaintLedger corrupted = *evidence.ledger;
      const sim::ProtectionScope scope = entry.model->contract().scope;
      for (const Region& region : input.regions) {
        if (region.kind != Region::Kind::kWeights || region.units <= 0) continue;
        int row = -1;
        if (scope == sim::ProtectionScope::kAll ||
            scope == sim::ProtectionScope::kWeights) {
          row = 0;
        } else if (scope == sim::ProtectionScope::kPlanRows && input.plan) {
          const int lp_idx = input.plan_index[region.spec_index];
          if (lp_idx < 0) continue;
          for (int r = 0; r < region.units; ++r) {
            if (input.plan->row_protected(static_cast<std::size_t>(lp_idx), r)) {
              row = r;
              break;
            }
          }
        }
        if (row < 0) continue;
        corrupted.record(
            region.begin + static_cast<std::uint64_t>(row) * region.pitch,
            static_cast<std::uint32_t>(kLine), /*is_write=*/false,
            TaintClass::kWeightPlain);
        break;
      }
      SchemeRunEvidence doctored = evidence;
      doctored.ledger = &corrupted;
      check_scheme_boundary(entry, doctored, report);
      return report;
    }
    case SchemeInjection::kMetadata: {
      // One phantom counter line the bus probe never saw: breaks the
      // fills/writebacks/flushes decomposition for counter schemes, and the
      // zero-metadata clause for everything else.
      SchemeRunEvidence doctored = evidence;
      doctored.stats.counter_traffic_bytes +=
          static_cast<std::uint64_t>(evidence.config.line_bytes);
      check_scheme_metadata(entry, doctored, report);
      return report;
    }
    case SchemeInjection::kCoverage: {
      // One claimed-encrypted byte no controller accounted for.
      SchemeRunEvidence doctored = evidence;
      doctored.stats.encrypted_bytes += 1;
      check_scheme_coverage(entry, doctored, report);
      return report;
    }
    case SchemeInjection::kTiming: {
      // Falsify the declared serialization shape: claim passthrough for a
      // crypto scheme, claim serialized AES for baseline.
      sim::SchemeContract falsified = entry.model->contract();
      falsified.read_shape =
          falsified.read_shape == sim::SerializationShape::kPassthrough
              ? sim::SerializationShape::kAesAfterData
              : sim::SerializationShape::kPassthrough;
      check_scheme_timing(entry, falsified, report);
      return report;
    }
    case SchemeInjection::kRegistry: {
      // Duplicate the first entry's CLI name onto the second in a copy of
      // the table.
      const auto real = sim::scheme_registry();
      std::vector<sim::SchemeInfo> corrupted(real.begin(), real.end());
      if (corrupted.size() >= 2) corrupted[1].cli_name = corrupted[0].cli_name;
      check_scheme_registry(corrupted, report);
      return report;
    }
  }
  return report;
}

}  // namespace sealdl::verify
