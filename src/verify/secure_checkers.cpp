#include "verify/secure_checkers.hpp"

#include <algorithm>
#include <array>
#include <cstddef>
#include <string>

#include "crypto/modes.hpp"
#include "sim/functional_memory.hpp"
#include "sim/mem_controller.hpp"

namespace sealdl::verify {

namespace {

constexpr std::uint64_t kLine = crypto::kLineBytes;

std::uint64_t plain_bytes(const TaintCounts& counts) {
  const auto wp = static_cast<std::size_t>(TaintClass::kWeightPlain);
  const auto fp = static_cast<std::size_t>(TaintClass::kFmapPlain);
  return counts.read[wp] + counts.write[wp] + counts.read[fp] + counts.write[fp];
}

std::uint64_t cipher_bytes(const TaintCounts& counts) {
  const auto wc = static_cast<std::size_t>(TaintClass::kWeightCipher);
  const auto fc = static_cast<std::size_t>(TaintClass::kFmapCipher);
  return counts.read[wc] + counts.write[wc] + counts.read[fc] + counts.write[fc];
}

std::uint64_t untagged_bytes(const TaintCounts& counts) {
  const auto u = static_cast<std::size_t>(TaintClass::kUntagged);
  return counts.read[u] + counts.write[u];
}

/// The per-address wire policy. For SEAL this is derived from the *plan*
/// (not the secure map) via plan_line_policy below.
WirePolicy line_policy(const AnalysisInput& input,
                       sim::EncryptionScheme scheme, bool selective,
                       const Region& region, sim::Addr line_addr) {
  if (scheme == sim::EncryptionScheme::kNone) return WirePolicy::kMustPlain;
  if (!selective) return WirePolicy::kMustCipher;
  return plan_line_policy(input, region, line_addr);
}

/// splitmix64: the audit's known-plaintext generator. Purely a function of
/// the byte address, so writer and checker agree without shared state.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

void fill_expected_plaintext(sim::Addr line_addr,
                             std::span<std::uint8_t> out) {
  for (std::size_t i = 0; i < out.size(); ++i) {
    const std::uint64_t word = mix64(line_addr + (i & ~std::uint64_t{7}));
    out[i] = static_cast<std::uint8_t>(word >> ((i & 7) * 8));
  }
}

/// The transcript's line sample for one region: the first (and with
/// lines_per_unit > 1 the last) line of every row/channel — full unit
/// coverage, which is what makes the boundary equality total — and a capped
/// stride scan for dense FC vectors that have no per-unit structure.
std::vector<sim::Addr> sampled_lines(const Region& region,
                                     const SecureAuditOptions& options) {
  std::vector<sim::Addr> lines;
  if (region.end <= region.begin || region.pitch == 0) return lines;
  if (!region.dense_fc && region.pitch >= kLine && region.units > 0) {
    for (int u = 0; u < region.units; ++u) {
      const sim::Addr base =
          region.begin + static_cast<std::uint64_t>(u) * region.pitch;
      lines.push_back(base);
      if (options.lines_per_unit > 1 && region.pitch > kLine) {
        lines.push_back(base + region.pitch - kLine);
      }
    }
    return lines;
  }
  const std::uint64_t nlines = (region.end - region.begin) / kLine;
  const std::uint64_t cap = std::max<std::uint64_t>(1, options.max_lines_per_region);
  const std::uint64_t step = std::max<std::uint64_t>(1, nlines / cap);
  for (std::uint64_t k = 0; k < nlines; k += step) {
    lines.push_back(region.begin + k * kLine);
  }
  const sim::Addr last = region.end - kLine;
  if (lines.empty() || lines.back() != last) lines.push_back(last);
  return lines;
}

void functional_transcript(const AnalysisInput& input, const SchemePick& pick,
                           const SecureAuditOptions& options, Report& report) {
  crypto::Key128 key{};
  for (std::size_t i = 0; i < key.size(); ++i) {
    key[i] = static_cast<std::uint8_t>(i * 17 + 3);
  }
  sim::FunctionalMemory memory(pick.scheme, pick.selective,
                               &input.heap.secure_map(), key);
  TaintLedger ledger;
  TaintProbe probe(&input, &ledger);
  memory.set_probe(&probe);

  std::vector<sim::Addr> lines;
  for (const Region& region : input.regions) {
    const auto sampled = sampled_lines(region, options);
    lines.insert(lines.end(), sampled.begin(), sampled.end());
  }

  std::array<std::uint8_t, kLine> buf{};
  for (const sim::Addr addr : lines) {
    fill_expected_plaintext(addr, buf);
    memory.write(addr, buf);
  }
  for (const sim::Addr addr : lines) memory.read(addr, buf);

  if (input.inject == Injection::kSecureOracle && !ledger.captures().empty()) {
    // Forge one observation whose encrypted flag lies: prefer a line that
    // really was ciphertext, fall back to any capture. The ledger's byte
    // counts are untouched — only the known-plaintext cross-check can see it.
    sim::Addr target = ledger.captures().begin()->first;
    for (const auto& [addr, image] : ledger.captures()) {
      if (image.encrypted) {
        target = addr;
        break;
      }
    }
    fill_expected_plaintext(target, buf);
    probe.on_data(target, buf, /*is_write=*/false, /*encrypted=*/true);
  }

  check_taint_ledger(input, ledger, pick.scheme, pick.selective, report);
  if (pick.selective && input.plan) {
    check_secure_boundary(input, ledger, /*require_full_coverage=*/true,
                          report);
  }
  check_secure_oracle(input, ledger, report);
}

/// Replays data traffic through a real counter-mode memory controller —
/// counter cache, metadata fills/writebacks, and the end-of-run flush drain —
/// and reconciles the controller's accounting with what the bus probe saw.
void counter_replay(const AnalysisInput& input,
                    const SecureAuditOptions& options, Report& report) {
  sim::GpuConfig config = sim::GpuConfig::gtx480();
  config.scheme = sim::EncryptionScheme::kCounter;
  config.selective = false;
  sim::MemoryController controller(config, &input.heap.secure_map());
  TaintLedger ledger;
  TaintProbe probe(&input, &ledger);
  controller.set_probe(&probe);

  sim::Cycle now = 0;
  std::uint64_t replayed = 0;
  for (const Region& region : input.regions) {
    if (region.kind != Region::Kind::kWeights) continue;
    for (sim::Addr addr = region.begin;
         addr < region.end && replayed < options.counter_replay_lines;
         addr += kLine) {
      // Writes dirty counter-cache lines, so the final flush has metadata
      // writebacks to drain — the exact path the reconciliation guards.
      now = controller.write_line(now, addr);
      now = controller.read_line(now, addr);
      ++replayed;
    }
    if (replayed >= options.counter_replay_lines) break;
  }
  if (input.inject == Injection::kSecureCounter) {
    // Reproduce the pre-fix accounting bug: the flush drains dirty counter
    // lines onto the bus with nobody watching.
    controller.set_probe(nullptr);
  }
  controller.flush(now);

  check_counter_reconciliation(ledger, controller.counter_traffic_bytes(),
                               sim::EncryptionScheme::kCounter, report);
  const std::uint64_t controller_total = controller.read_bytes() +
                                         controller.write_bytes() +
                                         controller.counter_traffic_bytes();
  if (controller_total != ledger.total_bytes()) {
    report.add({.rule = "secure.counter",
                .severity = Severity::kError,
                .layer = "",
                .begin = 0,
                .end = 0,
                .message = "controller byte accounting (" +
                           std::to_string(controller_total) +
                           ") does not reconcile with bus-probe total (" +
                           std::to_string(ledger.total_bytes()) + ")"});
  }
}

}  // namespace

std::vector<std::string> secure_rules() {
  return {"secure.leak", "secure.boundary", "secure.counter", "secure.oracle"};
}

WirePolicy plan_line_policy(const AnalysisInput& input, const Region& region,
                            sim::Addr line_addr) {
  if (!input.plan) return WirePolicy::kMustPlain;
  // The network output buffer is always encrypted under SEAL.
  if (region.spec_index >= input.specs.size()) return WirePolicy::kMustCipher;
  const std::uint64_t off = line_addr - region.begin;
  if (region.kind == Region::Kind::kWeights) {
    const int lp_idx = input.plan_index[region.spec_index];
    const int row = static_cast<int>(off / region.pitch);
    return input.plan->row_protected(static_cast<std::size_t>(lp_idx), row)
               ? WirePolicy::kMustCipher
               : WirePolicy::kMustPlain;
  }
  const int cp = input.consumer_plan_index(region.spec_index);
  if (cp < 0) return WirePolicy::kMustPlain;
  const auto& lp = input.plan->layer(static_cast<std::size_t>(cp));
  if (region.dense_fc) {
    // 32 features per line; the line is ciphertext iff any feature in it is
    // encrypted (mirrors SecureMap::line_is_secure over the 4-byte marks).
    const int features = input.specs[region.spec_index].in_features;
    const int f0 = static_cast<int>(off / 4);
    const int f1 = std::min(features, f0 + static_cast<int>(kLine / 4));
    for (int f = f0; f < f1; ++f) {
      if (row_encrypted_safe(lp, f)) return WirePolicy::kMustCipher;
    }
    return WirePolicy::kMustPlain;
  }
  const int channel = static_cast<int>(off / region.pitch);
  return row_encrypted_safe(lp, channel) ? WirePolicy::kMustCipher
                                         : WirePolicy::kMustPlain;
}

const char* scheme_pick_name(const SchemePick& pick) {
  switch (pick.scheme) {
    case sim::EncryptionScheme::kNone: return "baseline";
    case sim::EncryptionScheme::kDirect: return pick.selective ? "seal-d" : "direct";
    case sim::EncryptionScheme::kCounter: return pick.selective ? "seal-c" : "counter";
  }
  return "unknown";
}

void check_taint_ledger(const AnalysisInput& input, const TaintLedger& ledger,
                        sim::EncryptionScheme scheme, bool selective,
                        Report& report) {
  const SchemePick pick{scheme, selective};
  std::uint64_t untagged = 0;
  for (const auto& [addr, counts] : ledger.lines()) {
    if (addr >= sim::kCounterRegionBase) continue;
    const Region* region = input.region_at(addr);
    if (region == nullptr) {
      untagged += untagged_bytes(counts) + plain_bytes(counts) +
                  cipher_bytes(counts);
      continue;
    }
    const std::uint64_t plain = plain_bytes(counts);
    const std::uint64_t cipher = cipher_bytes(counts);
    const WirePolicy policy = line_policy(input, scheme, selective, *region, addr);
    if (policy == WirePolicy::kMustCipher && plain > 0) {
      report.add({.rule = "secure.leak",
                  .severity = Severity::kError,
                  .layer = region->name,
                  .begin = addr,
                  .end = addr + kLine,
                  .message = std::to_string(plain) +
                             " plaintext byte(s) of " + region->name +
                             " crossed the bus under " +
                             scheme_pick_name(pick)});
    }
    if (scheme == sim::EncryptionScheme::kNone && cipher > 0) {
      report.add({.rule = "secure.leak",
                  .severity = Severity::kError,
                  .layer = region->name,
                  .begin = addr,
                  .end = addr + kLine,
                  .message = std::to_string(cipher) + " ciphertext byte(s) of " +
                             region->name +
                             " under baseline — the full-visibility contract "
                             "is broken"});
    }
  }
  if (untagged > 0) {
    report.add({.rule = "secure.leak",
                .severity = Severity::kWarning,
                .layer = "",
                .begin = 0,
                .end = 0,
                .message = std::to_string(untagged) +
                           " byte(s) crossed the bus outside every known "
                           "region (untagged provenance)"});
  }
}

void check_secure_boundary(const AnalysisInput& input,
                           const TaintLedger& ledger,
                           bool require_full_coverage, Report& report) {
  if (!input.plan) return;
  const auto wp = static_cast<std::size_t>(TaintClass::kWeightPlain);
  const auto wc = static_cast<std::size_t>(TaintClass::kWeightCipher);
  const auto& lines = ledger.lines();
  for (const Region& region : input.regions) {
    if (region.kind != Region::Kind::kWeights || region.units <= 0) continue;
    const int lp_idx = input.plan_index[region.spec_index];
    if (lp_idx < 0) continue;
    std::vector<std::uint8_t> seen_plain(static_cast<std::size_t>(region.units), 0);
    std::vector<std::uint8_t> seen_cipher(static_cast<std::size_t>(region.units), 0);
    for (auto it = lines.lower_bound(region.begin);
         it != lines.end() && it->first < region.end; ++it) {
      const auto row =
          static_cast<std::size_t>((it->first - region.begin) / region.pitch);
      if (row >= seen_plain.size()) continue;
      if (it->second.read[wp] + it->second.write[wp] > 0) seen_plain[row] = 1;
      if (it->second.read[wc] + it->second.write[wc] > 0) seen_cipher[row] = 1;
    }
    for (int r = 0; r < region.units; ++r) {
      const auto ri = static_cast<std::size_t>(r);
      const bool protected_row =
          input.plan->row_protected(static_cast<std::size_t>(lp_idx), r);
      const sim::Addr row_begin =
          region.begin + static_cast<std::uint64_t>(r) * region.pitch;
      if (protected_row && seen_plain[ri]) {
        report.add({.rule = "secure.boundary",
                    .severity = Severity::kError,
                    .layer = region.name,
                    .begin = row_begin,
                    .end = row_begin + region.pitch,
                    .message = "protected row " + std::to_string(r) + " of " +
                               region.name +
                               " observed plaintext — leakage beyond the "
                               "plan's unprotected set"});
      } else if (!protected_row && seen_cipher[ri] && !seen_plain[ri]) {
        report.add({.rule = "secure.boundary",
                    .severity = Severity::kError,
                    .layer = region.name,
                    .begin = row_begin,
                    .end = row_begin + region.pitch,
                    .message = "plan-plaintext row " + std::to_string(r) +
                               " of " + region.name +
                               " crossed the bus only as ciphertext — "
                               "observed boundary smaller than the plan's"});
      } else if (require_full_coverage && !seen_plain[ri] && !seen_cipher[ri]) {
        report.add({.rule = "secure.boundary",
                    .severity = Severity::kError,
                    .layer = region.name,
                    .begin = row_begin,
                    .end = row_begin + region.pitch,
                    .message = "row " + std::to_string(r) + " of " +
                               region.name +
                               " was never observed by the audit transcript"});
      }
    }
  }
}

void check_counter_reconciliation(const TaintLedger& ledger,
                                  std::uint64_t controller_counter_bytes,
                                  sim::EncryptionScheme scheme,
                                  Report& report) {
  const std::uint64_t observed =
      ledger.class_bytes(TaintClass::kCounterMeta);
  if (scheme == sim::EncryptionScheme::kCounter) {
    if (observed != controller_counter_bytes) {
      report.add({.rule = "secure.counter",
                  .severity = Severity::kError,
                  .layer = "",
                  .begin = 0,
                  .end = 0,
                  .message = "counter-metadata bytes on the bus (" +
                             std::to_string(observed) +
                             ") do not reconcile with the controllers' "
                             "metadata accounting (" +
                             std::to_string(controller_counter_bytes) + ")"});
    }
    return;
  }
  if (observed != 0 || controller_counter_bytes != 0) {
    report.add({.rule = "secure.counter",
                .severity = Severity::kError,
                .layer = "",
                .begin = 0,
                .end = 0,
                .message = "counter-metadata traffic under a scheme without "
                           "counters (bus " +
                           std::to_string(observed) + ", controller " +
                           std::to_string(controller_counter_bytes) + ")"});
  }
}

void check_secure_oracle(const AnalysisInput& input, const TaintLedger& ledger,
                         Report& report) {
  std::array<std::uint8_t, kLine> expected{};
  for (const auto& [addr, image] : ledger.captures()) {
    if (addr >= sim::kCounterRegionBase) continue;
    if (input.region_at(addr) == nullptr) continue;
    fill_expected_plaintext(addr, expected);
    const bool equal =
        image.size == kLine &&
        std::equal(expected.begin(), expected.end(), image.bytes.begin());
    if (image.encrypted && equal) {
      report.add({.rule = "secure.oracle",
                  .severity = Severity::kError,
                  .layer = "",
                  .begin = addr,
                  .end = addr + kLine,
                  .message = "encrypted flag claims ciphertext but the wire "
                             "bytes equal the known plaintext — the flag "
                             "lied"});
    } else if (!image.encrypted && !equal) {
      report.add({.rule = "secure.oracle",
                  .severity = Severity::kError,
                  .layer = "",
                  .begin = addr,
                  .end = addr + kLine,
                  .message = "plaintext-flagged transfer does not match the "
                             "known plaintext image"});
    }
  }
}

void run_secure_audit(const AnalysisInput& input,
                      const SecureAuditOptions& options, Report& report) {
  std::vector<SchemePick> schemes = options.schemes;
  if (schemes.empty()) {
    schemes = {{sim::EncryptionScheme::kNone, false},
               {sim::EncryptionScheme::kDirect, false},
               {sim::EncryptionScheme::kCounter, false}};
    if (input.plan) {
      schemes.push_back({sim::EncryptionScheme::kDirect, true});
      schemes.push_back({sim::EncryptionScheme::kCounter, true});
    }
  }
  bool any_counter = false;
  for (const SchemePick& pick : schemes) {
    functional_transcript(input, pick, options, report);
    any_counter |= pick.scheme == sim::EncryptionScheme::kCounter;
  }
  if (any_counter) counter_replay(input, options, report);
}

bool is_secure_injection(Injection injection) {
  switch (injection) {
    case Injection::kSecureLeak:
    case Injection::kSecureBoundary:
    case Injection::kSecureCounter:
    case Injection::kSecureOracle:
      return true;
    default:
      return false;
  }
}

std::vector<SchemePick> audit_schemes_for(Injection injection) {
  switch (injection) {
    case Injection::kSecureLeak:
    case Injection::kSecureBoundary:
    case Injection::kSecureOracle:
      return {{sim::EncryptionScheme::kDirect, true}};
    case Injection::kSecureCounter:
      return {{sim::EncryptionScheme::kCounter, false}};
    default:
      return {};
  }
}

}  // namespace sealdl::verify
