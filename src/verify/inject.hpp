// Seeded-violation self-test support (`sealdl-check --inject`).
//
// A static analyzer that never fires is indistinguishable from one that
// checks nothing, so every rule has at least one injection: a deliberate,
// minimal corruption of the plan / secure map / analyzer model / trace
// stream that must make the rule report. expected_rules() documents the
// contract, and tests + CI assert it.
#pragma once

#include <optional>
#include <string>
#include <vector>

namespace sealdl::verify {

enum class Injection {
  kNone,
  kPlanShape,      ///< truncate a layer's encrypted_rows vector
  kPlanRatio,      ///< strip encryption from a non-boundary layer
  kPlanBoundary,   ///< strip encryption from a boundary layer
  kPlanClosure,    ///< un-mark one encrypted fmap channel (dropped propagation)
  kPlanResidual,   ///< swap an encrypted row out of a residual block's plan
  kLayoutWeights,  ///< un-mark one encrypted weight row
  kLayoutAlign,    ///< mark an unaligned secure sub-range in a weight region
  kLayoutUntagged, ///< forget a region, orphaning its secure ranges
  kLayoutBounds,   ///< mark a secure range beyond the allocated heap
  kLayoutOverlap,  ///< stretch one model region over its neighbour
  kLayoutAccount,  ///< add an aligned stray secure line inside a plain row
  kTraceMixed,     ///< alias of kPlanClosure seen from the trace side
  kTraceBounds,    ///< rewrite some trace loads to out-of-heap addresses
  kTraceWait,      ///< raise a WaitLoads threshold beyond any possible depth
  kTraceOrder,     ///< drop the WaitLoads barriers before output stores
  kTraceRegion,    ///< shift output stores into a foreign region
  kSecureLeak,     ///< un-mark a protected weight row: its plaintext hits the bus
  kSecureBoundary, ///< force-encrypt a deliberately-plain row: boundary shrinks
  kSecureCounter,  ///< detach the probe before the counter flush (pre-PR4 bug)
  kSecureOracle,   ///< forge a capture whose encrypted flag lies about the wire
};

/// All injections, in declaration order (excluding kNone).
[[nodiscard]] const std::vector<Injection>& all_injections();

/// CLI name of an injection, e.g. "plan-closure".
[[nodiscard]] const char* injection_name(Injection injection);

/// Parses a CLI name; nullopt if unknown.
[[nodiscard]] std::optional<Injection> injection_from_name(const std::string& name);

/// Rule ids this injection is guaranteed to fire (it may fire others too —
/// e.g. dropping a channel propagation breaks both plan closure and the
/// trace-level mixed-operand invariant).
[[nodiscard]] std::vector<std::string> expected_rules(Injection injection);

/// True for injections that require a ResNet-style residual topology.
[[nodiscard]] bool requires_residual_topology(Injection injection);

}  // namespace sealdl::verify
