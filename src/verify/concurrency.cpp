#include "verify/concurrency.hpp"

namespace sealdl::verify {

std::vector<std::string> lock_audit_rules() {
  return {"lock.cycle", "lock.cv-hold", "lock.confined"};
}

Report lock_audit_report(const std::vector<util::LockFinding>& findings,
                         std::size_t max_per_rule) {
  Report report(max_per_rule);
  for (const util::LockFinding& finding : findings) {
    Diagnostic diagnostic;
    diagnostic.rule = finding.rule;
    diagnostic.severity = Severity::kError;
    // The capability name(s) slot into the layer column: both are "where in
    // the system", and the text/JSON renderers need no special casing.
    diagnostic.layer = finding.subject;
    diagnostic.message = finding.message;
    report.add(std::move(diagnostic));
  }
  return report;
}

Report lock_audit_report() {
  return lock_audit_report(util::LockAuditor::instance().findings());
}

}  // namespace sealdl::verify
