#include "verify/taint.hpp"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "sim/mem_controller.hpp"
#include "verify/secure_checkers.hpp"

namespace sealdl::verify {

const char* taint_class_name(TaintClass cls) {
  switch (cls) {
    case TaintClass::kWeightPlain: return "weight_plain";
    case TaintClass::kWeightCipher: return "weight_cipher";
    case TaintClass::kFmapPlain: return "fmap_plain";
    case TaintClass::kFmapCipher: return "fmap_cipher";
    case TaintClass::kCounterMeta: return "counter_meta";
    case TaintClass::kUntagged: return "untagged";
  }
  return "unknown";
}

void TaintLedger::record(sim::Addr line_addr, std::uint32_t bytes,
                         bool is_write, TaintClass cls) {
  const auto idx = static_cast<std::size_t>(cls);
  TaintCounts& entry = lines_[line_addr];
  if (is_write) {
    entry.write[idx] += bytes;
    totals_.write[idx] += bytes;
  } else {
    entry.read[idx] += bytes;
    totals_.read[idx] += bytes;
  }
}

void TaintLedger::capture(sim::Addr line_addr,
                          std::span<const std::uint8_t> wire, bool encrypted) {
  WireImage& image = captures_[line_addr];
  image.size = static_cast<std::uint32_t>(
      std::min<std::size_t>(wire.size(), image.bytes.size()));
  std::copy_n(wire.begin(), image.size, image.bytes.begin());
  image.encrypted = encrypted;
}

void TaintLedger::merge_from(const TaintLedger& other) {
  for (const auto& [addr, counts] : other.lines_) {
    TaintCounts& entry = lines_[addr];
    for (std::size_t i = 0; i < kTaintClassCount; ++i) {
      entry.read[i] += counts.read[i];
      entry.write[i] += counts.write[i];
      totals_.read[i] += counts.read[i];
      totals_.write[i] += counts.write[i];
    }
  }
  for (const auto& [addr, image] : other.captures_) captures_[addr] = image;
}

std::uint64_t TaintLedger::class_bytes(TaintClass cls) const {
  const auto idx = static_cast<std::size_t>(cls);
  return totals_.read[idx] + totals_.write[idx];
}

std::uint64_t TaintLedger::total_bytes() const {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < kTaintClassCount; ++i) {
    total += totals_.read[i] + totals_.write[i];
  }
  return total;
}

std::uint64_t TaintLedger::digest() const {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  const auto mix = [&hash](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      hash ^= (v >> (i * 8)) & 0xffU;
      hash *= 0x100000001b3ULL;
    }
  };
  mix(lines_.size());
  for (const auto& [addr, counts] : lines_) {
    mix(addr);
    for (const std::uint64_t v : counts.read) mix(v);
    for (const std::uint64_t v : counts.write) mix(v);
  }
  return hash;
}

void TaintLedger::write_json(util::JsonWriter& json) const {
  json.begin_object();
  json.field("lines", static_cast<std::uint64_t>(lines_.size()));
  json.field("captures", static_cast<std::uint64_t>(captures_.size()));
  json.field("total_bytes", total_bytes());
  char buf[32];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(digest()));
  json.field("digest", buf);
  json.key("classes").begin_object();
  for (std::size_t i = 0; i < kTaintClassCount; ++i) {
    json.key(taint_class_name(static_cast<TaintClass>(i))).begin_object();
    json.field("read", totals_.read[i]);
    json.field("write", totals_.write[i]);
    json.end_object();
  }
  json.end_object();
  json.end_object();
}

void TaintProbe::on_transfer(sim::Addr line_addr, std::uint32_t bytes,
                             bool is_write, bool encrypted) {
  ledger_->record(line_addr, bytes, is_write, classify(line_addr, encrypted));
}

void TaintProbe::on_data(sim::Addr line_addr,
                         std::span<const std::uint8_t> wire_bytes,
                         bool is_write, bool encrypted) {
  (void)is_write;
  ledger_->capture(line_addr, wire_bytes, encrypted);
}

TaintClass TaintProbe::classify(sim::Addr line_addr, bool encrypted) const {
  if (line_addr >= sim::kCounterRegionBase) return TaintClass::kCounterMeta;
  const Region* region = input_->region_at(line_addr);
  if (region == nullptr) return TaintClass::kUntagged;
  if (region->kind == Region::Kind::kWeights) {
    return encrypted ? TaintClass::kWeightCipher : TaintClass::kWeightPlain;
  }
  return encrypted ? TaintClass::kFmapCipher : TaintClass::kFmapPlain;
}

namespace {

/// One layer task's private probe + ledger; handed back whole to the auditor.
class RecordingTaintProbe final : public sim::BusProbe {
 public:
  explicit RecordingTaintProbe(const AnalysisInput* input)
      : probe_(input, &ledger_) {}

  void on_transfer(sim::Addr line_addr, std::uint32_t bytes, bool is_write,
                   bool encrypted) override {
    probe_.on_transfer(line_addr, bytes, is_write, encrypted);
  }
  void on_data(sim::Addr line_addr, std::span<const std::uint8_t> wire_bytes,
               bool is_write, bool encrypted) override {
    probe_.on_data(line_addr, wire_bytes, is_write, encrypted);
  }

  [[nodiscard]] const TaintLedger& ledger() const { return ledger_; }

 private:
  TaintLedger ledger_;
  TaintProbe probe_;
};

}  // namespace

std::unique_ptr<sim::BusProbe> TaintAuditor::make_probe(std::size_t spec_index) {
  (void)spec_index;
  return std::make_unique<RecordingTaintProbe>(input_);
}

void TaintAuditor::merge_probe(std::unique_ptr<sim::BusProbe> probe,
                               std::size_t spec_index) {
  (void)spec_index;
  auto* recording = static_cast<RecordingTaintProbe*>(probe.get());
  ledger_.merge_from(recording->ledger());
}

Report TaintAuditor::check(sim::EncryptionScheme scheme, bool selective,
                           std::uint64_t counter_traffic_bytes) const {
  Report report;
  check_taint_ledger(*input_, ledger_, scheme, selective, report);
  if (selective && input_->plan) {
    check_secure_boundary(*input_, ledger_, /*require_full_coverage=*/false,
                          report);
  }
  check_counter_reconciliation(ledger_, counter_traffic_bytes, scheme, report);
  return report;
}

}  // namespace sealdl::verify
