// Deterministic synthetic image-classification dataset.
//
// Stands in for CIFAR-10 (see DESIGN.md substitutions): 10 classes, 3-channel
// images. Each class is a procedurally generated prototype (a mixture of
// class-specific sinusoidal gratings and Gaussian blobs); samples are the
// prototype under random translation plus pixel noise. The victim/attacker
// protocol of the paper — disjoint 90%/10% training pools — is expressed via
// index ranges over one deterministic corpus.
#pragma once

#include <cstdint>
#include <vector>

#include "nn/tensor.hpp"
#include "util/rng.hpp"

namespace sealdl::nn {

struct DatasetConfig {
  int classes = 10;
  int channels = 3;
  int height = 16;
  int width = 16;
  int samples = 6000;       ///< total corpus size
  float noise_stddev = 0.25f;
  int max_shift = 4;        ///< uniform translation jitter, pixels
  float contrast_jitter = 0.35f;  ///< per-sample gain in [1-j, 1+j]
  std::uint64_t seed = 42;
};

class SyntheticDataset {
 public:
  explicit SyntheticDataset(const DatasetConfig& config);

  [[nodiscard]] int size() const { return config_.samples; }
  [[nodiscard]] const DatasetConfig& config() const { return config_; }

  /// Label of sample `i`.
  [[nodiscard]] int label(int i) const { return labels_.at(static_cast<std::size_t>(i)); }

  /// Copies samples `indices` into one [N, C, H, W] batch.
  [[nodiscard]] Tensor batch(const std::vector<int>& indices) const;

  /// Labels for the same index list.
  [[nodiscard]] std::vector<int> batch_labels(const std::vector<int>& indices) const;

  /// One sample as a [1, C, H, W] tensor.
  [[nodiscard]] Tensor sample(int i) const;

  /// Index ranges implementing the paper's split: the victim trains on the
  /// first 90% of the corpus, the adversary holds the remaining 10%, and the
  /// last `test` indices of the victim pool are set aside for evaluation.
  [[nodiscard]] std::vector<int> victim_train_indices(int test_holdout) const;
  [[nodiscard]] std::vector<int> test_indices(int test_holdout) const;
  [[nodiscard]] std::vector<int> adversary_indices() const;

 private:
  DatasetConfig config_;
  std::vector<float> images_;  ///< samples * C*H*W, row-major
  std::vector<int> labels_;

  [[nodiscard]] std::size_t sample_floats() const {
    return static_cast<std::size_t>(config_.channels) *
           static_cast<std::size_t>(config_.height) *
           static_cast<std::size_t>(config_.width);
  }
};

}  // namespace sealdl::nn
