#include "nn/tensor.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>
#include <stdexcept>

namespace sealdl::nn {

namespace {
std::size_t shape_numel(const std::vector<int>& shape) {
  std::size_t n = 1;
  for (int d : shape) {
    if (d <= 0) throw std::invalid_argument("tensor dims must be positive");
    n *= static_cast<std::size_t>(d);
  }
  return shape.empty() ? 0 : n;
}
}  // namespace

Tensor::Tensor(std::vector<int> shape)
    : shape_(std::move(shape)), data_(shape_numel(shape_), 0.0f) {}

Tensor::Tensor(std::vector<int> shape, std::vector<float> values)
    : shape_(std::move(shape)), data_(std::move(values)) {
  if (data_.size() != shape_numel(shape_)) {
    throw std::invalid_argument("tensor value count does not match shape");
  }
}

void Tensor::fill(float v) { std::fill(data_.begin(), data_.end(), v); }

Tensor Tensor::reshaped(std::vector<int> new_shape) const {
  if (shape_numel(new_shape) != data_.size()) {
    throw std::invalid_argument("reshape must preserve element count");
  }
  Tensor out;
  out.shape_ = std::move(new_shape);
  out.data_ = data_;
  return out;
}

Tensor& Tensor::add_(const Tensor& other) {
  if (other.numel() != numel()) throw std::invalid_argument("add_: size mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Tensor& Tensor::scale_(float s) {
  for (float& v : data_) v *= s;
  return *this;
}

float Tensor::l1_norm() const {
  float sum = 0.0f;
  for (float v : data_) sum += std::fabs(v);
  return sum;
}

float Tensor::max_abs() const {
  float m = 0.0f;
  for (float v : data_) m = std::max(m, std::fabs(v));
  return m;
}

std::string Tensor::shape_str() const {
  std::ostringstream os;
  os << "[";
  for (std::size_t i = 0; i < shape_.size(); ++i) {
    os << shape_[i] << (i + 1 < shape_.size() ? "," : "");
  }
  os << "]";
  return os.str();
}

}  // namespace sealdl::nn
