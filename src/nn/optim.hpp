// SGD with momentum, weight decay, and freeze-mask support.
#pragma once

#include <vector>

#include "nn/layer.hpp"

namespace sealdl::nn {

class SgdOptimizer {
 public:
  struct Options {
    float lr = 0.01f;
    float momentum = 0.9f;
    float weight_decay = 0.0f;
  };

  SgdOptimizer(std::vector<Param*> params, Options options);

  /// Applies one update using the accumulated gradients. Frozen elements
  /// (mask == 0) are left untouched, implementing the paper's known-weight
  /// freezing during substitute fine-tuning.
  void step();

  /// Clears all parameter gradients.
  void zero_grad();

  void set_lr(float lr) { options_.lr = lr; }
  [[nodiscard]] float lr() const { return options_.lr; }

 private:
  std::vector<Param*> params_;
  std::vector<Tensor> velocity_;
  Options options_;
};

}  // namespace sealdl::nn
