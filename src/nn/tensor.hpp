// Dense float32 tensor in NCHW layout — the numeric substrate for the NN
// framework used by the victim/substitute models and the attack algorithms.
#pragma once

#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

namespace sealdl::nn {

class Tensor {
 public:
  Tensor() = default;

  /// Allocates a zero-filled tensor with the given shape.
  explicit Tensor(std::vector<int> shape);

  /// Allocates and fills from `values` (size must match).
  Tensor(std::vector<int> shape, std::vector<float> values);

  [[nodiscard]] const std::vector<int>& shape() const { return shape_; }
  [[nodiscard]] std::size_t numel() const { return data_.size(); }
  [[nodiscard]] bool empty() const { return data_.empty(); }
  [[nodiscard]] int dim(int i) const { return shape_.at(static_cast<std::size_t>(i)); }
  [[nodiscard]] int ndim() const { return static_cast<int>(shape_.size()); }

  [[nodiscard]] float* data() { return data_.data(); }
  [[nodiscard]] const float* data() const { return data_.data(); }

  float& operator[](std::size_t i) { return data_[i]; }
  float operator[](std::size_t i) const { return data_[i]; }

  /// 4-D accessor (NCHW). Bounds are checked in debug builds only.
  float& at4(int n, int c, int h, int w) {
    return data_[index4(n, c, h, w)];
  }
  [[nodiscard]] float at4(int n, int c, int h, int w) const {
    return data_[index4(n, c, h, w)];
  }

  /// 2-D accessor (rows x cols).
  float& at2(int r, int c) { return data_[index2(r, c)]; }
  [[nodiscard]] float at2(int r, int c) const { return data_[index2(r, c)]; }

  void fill(float v);

  /// Returns a tensor of the same shape, zero-filled.
  [[nodiscard]] Tensor zeros_like() const { return Tensor(shape_); }

  /// Reinterprets the data with a new shape of equal element count.
  [[nodiscard]] Tensor reshaped(std::vector<int> new_shape) const;

  /// Elementwise helpers used throughout the attack code.
  Tensor& add_(const Tensor& other);
  Tensor& scale_(float s);

  [[nodiscard]] float l1_norm() const;
  [[nodiscard]] float max_abs() const;

  [[nodiscard]] std::string shape_str() const;

 private:
  [[nodiscard]] std::size_t index4(int n, int c, int h, int w) const {
    assert(shape_.size() == 4);
    assert(n >= 0 && n < shape_[0] && c >= 0 && c < shape_[1]);
    assert(h >= 0 && h < shape_[2] && w >= 0 && w < shape_[3]);
    return ((static_cast<std::size_t>(n) * static_cast<std::size_t>(shape_[1]) +
             static_cast<std::size_t>(c)) *
                static_cast<std::size_t>(shape_[2]) +
            static_cast<std::size_t>(h)) *
               static_cast<std::size_t>(shape_[3]) +
           static_cast<std::size_t>(w);
  }
  [[nodiscard]] std::size_t index2(int r, int c) const {
    assert(shape_.size() == 2);
    assert(r >= 0 && r < shape_[0] && c >= 0 && c < shape_[1]);
    return static_cast<std::size_t>(r) * static_cast<std::size_t>(shape_[1]) +
           static_cast<std::size_t>(c);
  }

  std::vector<int> shape_;
  std::vector<float> data_;
};

}  // namespace sealdl::nn
