#include "nn/dataset.hpp"

#include <cmath>
#include <cstring>
#include <numeric>
#include <stdexcept>

namespace sealdl::nn {

namespace {
constexpr float kPi = 3.14159265358979323846f;
}

SyntheticDataset::SyntheticDataset(const DatasetConfig& config) : config_(config) {
  const int C = config_.channels, H = config_.height, W = config_.width;
  const std::size_t per_sample = sample_floats();
  images_.resize(static_cast<std::size_t>(config_.samples) * per_sample);
  labels_.resize(static_cast<std::size_t>(config_.samples));

  // Build class prototypes from class-seeded generators so that the class
  // structure is stable regardless of sample count.
  std::vector<std::vector<float>> prototypes(static_cast<std::size_t>(config_.classes));
  for (int cls = 0; cls < config_.classes; ++cls) {
    util::Rng rng(config_.seed * 1000003ULL + static_cast<std::uint64_t>(cls));
    auto& proto = prototypes[static_cast<std::size_t>(cls)];
    proto.assign(per_sample, 0.0f);
    // Three gratings with class-specific frequency/orientation per channel,
    // plus two Gaussian blobs; gives classes distinct, learnable structure.
    for (int c = 0; c < C; ++c) {
      const float fx = rng.uniform(0.5f, 3.0f);
      const float fy = rng.uniform(0.5f, 3.0f);
      const float phase = rng.uniform(0.0f, 2.0f * kPi);
      const float amp = rng.uniform(0.4f, 0.8f);
      for (int y = 0; y < H; ++y) {
        for (int x = 0; x < W; ++x) {
          const float u = static_cast<float>(x) / static_cast<float>(W);
          const float v = static_cast<float>(y) / static_cast<float>(H);
          proto[(static_cast<std::size_t>(c) * static_cast<std::size_t>(H) + static_cast<std::size_t>(y)) * static_cast<std::size_t>(W) + static_cast<std::size_t>(x)] +=
              amp * std::sin(2.0f * kPi * (fx * u + fy * v) + phase);
        }
      }
    }
    for (int blob = 0; blob < 2; ++blob) {
      const float cx = rng.uniform(0.2f, 0.8f) * static_cast<float>(W);
      const float cy = rng.uniform(0.2f, 0.8f) * static_cast<float>(H);
      const float sigma = rng.uniform(1.0f, 2.5f);
      const float amp = rng.uniform(0.5f, 1.0f) * (blob == 0 ? 1.0f : -1.0f);
      const int ch = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(C)));
      for (int y = 0; y < H; ++y) {
        for (int x = 0; x < W; ++x) {
          const float dx = static_cast<float>(x) - cx, dy = static_cast<float>(y) - cy;
          proto[(static_cast<std::size_t>(ch) * static_cast<std::size_t>(H) + static_cast<std::size_t>(y)) * static_cast<std::size_t>(W) + static_cast<std::size_t>(x)] +=
              amp * std::exp(-(dx * dx + dy * dy) / (2.0f * sigma * sigma));
        }
      }
    }
  }

  util::Rng rng(config_.seed);
  for (int i = 0; i < config_.samples; ++i) {
    const int cls = i % config_.classes;  // balanced classes
    labels_[static_cast<std::size_t>(i)] = cls;
    const auto& proto = prototypes[static_cast<std::size_t>(cls)];
    float* dst = images_.data() + static_cast<std::size_t>(i) * per_sample;
    const int shift_x = static_cast<int>(rng.next_below(
                            static_cast<std::uint64_t>(2 * config_.max_shift + 1))) -
                        config_.max_shift;
    const int shift_y = static_cast<int>(rng.next_below(
                            static_cast<std::uint64_t>(2 * config_.max_shift + 1))) -
                        config_.max_shift;
    const float contrast =
        rng.uniform(1.0f - config_.contrast_jitter, 1.0f + config_.contrast_jitter);
    for (int c = 0; c < C; ++c) {
      for (int y = 0; y < H; ++y) {
        for (int x = 0; x < W; ++x) {
          const int sy = ((y + shift_y) % H + H) % H;
          const int sx = ((x + shift_x) % W + W) % W;
          const float base =
              proto[(static_cast<std::size_t>(c) * static_cast<std::size_t>(H) + static_cast<std::size_t>(sy)) * static_cast<std::size_t>(W) + static_cast<std::size_t>(sx)];
          dst[(static_cast<std::size_t>(c) * static_cast<std::size_t>(H) + static_cast<std::size_t>(y)) * static_cast<std::size_t>(W) + static_cast<std::size_t>(x)] =
              base * contrast + rng.normal(0.0f, config_.noise_stddev);
        }
      }
    }
  }
}

Tensor SyntheticDataset::batch(const std::vector<int>& indices) const {
  const std::size_t per_sample = sample_floats();
  Tensor out({static_cast<int>(indices.size()), config_.channels, config_.height,
              config_.width});
  for (std::size_t n = 0; n < indices.size(); ++n) {
    const int i = indices[n];
    if (i < 0 || i >= config_.samples) throw std::out_of_range("dataset index");
    std::memcpy(out.data() + n * per_sample,
                images_.data() + static_cast<std::size_t>(i) * per_sample,
                per_sample * sizeof(float));
  }
  return out;
}

std::vector<int> SyntheticDataset::batch_labels(const std::vector<int>& indices) const {
  std::vector<int> out;
  out.reserve(indices.size());
  for (int i : indices) out.push_back(label(i));
  return out;
}

Tensor SyntheticDataset::sample(int i) const { return batch({i}); }

std::vector<int> SyntheticDataset::victim_train_indices(int test_holdout) const {
  const int victim_pool = config_.samples * 9 / 10;
  std::vector<int> out(static_cast<std::size_t>(victim_pool - test_holdout));
  std::iota(out.begin(), out.end(), 0);
  return out;
}

std::vector<int> SyntheticDataset::test_indices(int test_holdout) const {
  const int victim_pool = config_.samples * 9 / 10;
  std::vector<int> out(static_cast<std::size_t>(test_holdout));
  std::iota(out.begin(), out.end(), victim_pool - test_holdout);
  return out;
}

std::vector<int> SyntheticDataset::adversary_indices() const {
  const int victim_pool = config_.samples * 9 / 10;
  std::vector<int> out(static_cast<std::size_t>(config_.samples - victim_pool));
  std::iota(out.begin(), out.end(), victim_pool);
  return out;
}

}  // namespace sealdl::nn
