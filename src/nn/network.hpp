// Network composition: Sequential containers and residual blocks.
//
// ResNets are expressed as a Sequential whose elements include
// ResidualBlock layers (main path + optional projection shortcut), so one
// uniform Layer interface covers all three paper models.
#pragma once

#include <functional>
#include <memory>

#include "nn/layer.hpp"

namespace sealdl::nn {

class Sequential final : public Layer {
 public:
  Sequential() = default;

  /// Appends a layer; returns a reference for chaining.
  Sequential& add(LayerPtr layer);

  Tensor forward(const Tensor& input, bool train) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Param*> params() override;
  [[nodiscard]] std::string name() const override { return "sequential"; }

  [[nodiscard]] std::size_t size() const { return layers_.size(); }
  Layer& layer(std::size_t i) { return *layers_.at(i); }
  [[nodiscard]] const Layer& layer(std::size_t i) const { return *layers_.at(i); }

  /// Depth-first visit of every leaf (non-container) layer, in forward order.
  void visit_leaves(const std::function<void(Layer&)>& fn);

 private:
  std::vector<LayerPtr> layers_;
};

/// y = relu(main(x) + shortcut(x)); shortcut is identity when null.
class ResidualBlock final : public Layer {
 public:
  ResidualBlock(LayerPtr main_path, LayerPtr shortcut);

  Tensor forward(const Tensor& input, bool train) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Param*> params() override;
  [[nodiscard]] std::string name() const override { return "residual"; }

  Layer& main_path() { return *main_; }
  [[nodiscard]] bool has_projection() const { return shortcut_ != nullptr; }
  Layer* shortcut() { return shortcut_.get(); }

  /// Leaf visit helper (forward order: main path, then shortcut).
  void visit_leaves(const std::function<void(Layer&)>& fn);

 private:
  LayerPtr main_;
  LayerPtr shortcut_;  ///< may be null (identity)
  Tensor cached_sum_;  ///< pre-ReLU sum, for the ReLU gradient gate
};

/// Applies `fn` to every leaf layer of `root` (recursing through Sequential
/// and ResidualBlock containers).
void visit_leaf_layers(Layer& root, const std::function<void(Layer&)>& fn);

}  // namespace sealdl::nn
