#include "nn/serialize.hpp"

#include "nn/basic_layers.hpp"
#include "nn/network.hpp"

#include <cstring>
#include <stdexcept>

namespace sealdl::nn {

std::vector<std::uint8_t> serialize_params(Layer& model) {
  std::vector<std::uint8_t> out;
  for (Param* p : model.params()) {
    const std::size_t bytes = p->value.numel() * sizeof(float);
    const std::size_t offset = out.size();
    out.resize(offset + bytes);
    std::memcpy(out.data() + offset, p->value.data(), bytes);
  }
  return out;
}

void deserialize_params(Layer& model, std::span<const std::uint8_t> bytes) {
  std::size_t offset = 0;
  for (Param* p : model.params()) {
    const std::size_t n = p->value.numel() * sizeof(float);
    if (offset + n > bytes.size()) {
      throw std::invalid_argument("deserialize_params: buffer too small");
    }
    std::memcpy(p->value.data(), bytes.data() + offset, n);
    offset += n;
  }
  if (offset != bytes.size()) {
    throw std::invalid_argument("deserialize_params: trailing bytes");
  }
}

std::size_t parameter_count(Layer& model) {
  std::size_t n = 0;
  for (Param* p : model.params()) n += p->value.numel();
  return n;
}

void copy_params(Layer& src, Layer& dst) {
  const auto src_params = src.params();
  const auto dst_params = dst.params();
  if (src_params.size() != dst_params.size()) {
    throw std::invalid_argument("copy_params: parameter list size mismatch");
  }
  for (std::size_t i = 0; i < src_params.size(); ++i) {
    if (src_params[i]->value.numel() != dst_params[i]->value.numel()) {
      throw std::invalid_argument("copy_params: tensor size mismatch");
    }
    dst_params[i]->value = src_params[i]->value;
  }

  // Batch-norm running statistics are inference state, not parameters;
  // without them a cloned model normalizes with blank statistics and its
  // copied convolution weights are useless in eval mode.
  std::vector<BatchNorm2d*> src_bn, dst_bn;
  visit_leaf_layers(src, [&src_bn](Layer& layer) {
    if (auto* bn = dynamic_cast<BatchNorm2d*>(&layer)) src_bn.push_back(bn);
  });
  visit_leaf_layers(dst, [&dst_bn](Layer& layer) {
    if (auto* bn = dynamic_cast<BatchNorm2d*>(&layer)) dst_bn.push_back(bn);
  });
  if (src_bn.size() != dst_bn.size()) {
    throw std::invalid_argument("copy_params: batch-norm layer count mismatch");
  }
  for (std::size_t i = 0; i < src_bn.size(); ++i) {
    dst_bn[i]->running_mean() = src_bn[i]->running_mean();
    dst_bn[i]->running_var() = src_bn[i]->running_var();
  }
}

}  // namespace sealdl::nn
