// 2-D convolution with square kernels, stride and zero padding.
//
// Weight layout is [out_channels, in_channels, k, k]: the paper's "kernel
// matrix" has n_y kernel rows (one per input channel) and n_x kernel columns
// (one per output channel); kernel row r of this layer is the slice
// weight[:, r, :, :] (see core/importance.hpp).
#pragma once

#include "nn/layer.hpp"
#include "util/rng.hpp"

namespace sealdl::nn {

class Conv2d final : public Layer {
 public:
  Conv2d(int in_channels, int out_channels, int kernel, int stride, int padding,
         bool bias, util::Rng& rng);

  Tensor forward(const Tensor& input, bool train) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Param*> params() override;
  [[nodiscard]] std::string name() const override { return "conv2d"; }

  [[nodiscard]] int in_channels() const { return in_channels_; }
  [[nodiscard]] int out_channels() const { return out_channels_; }
  [[nodiscard]] int kernel() const { return kernel_; }
  [[nodiscard]] int stride() const { return stride_; }
  [[nodiscard]] int padding() const { return padding_; }

  Param& weight() { return weight_; }
  Param& bias_param() { return bias_; }
  [[nodiscard]] bool has_bias() const { return !bias_.value.empty(); }

 private:
  int in_channels_, out_channels_, kernel_, stride_, padding_;
  Param weight_;
  Param bias_;
  Tensor cached_input_;
};

}  // namespace sealdl::nn
