#include "nn/basic_layers.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace sealdl::nn {

// ---------------------------------------------------------------- Linear ---

Linear::Linear(int in_features, int out_features, bool bias, util::Rng& rng)
    : in_features_(in_features),
      out_features_(out_features),
      weight_("linear.weight", Tensor({out_features, in_features})),
      bias_(bias ? Param("linear.bias", Tensor({1, out_features}))
                 : Param("linear.bias")) {
  const float stddev = std::sqrt(2.0f / static_cast<float>(in_features));
  for (std::size_t i = 0; i < weight_.value.numel(); ++i) {
    weight_.value[i] = rng.normal(0.0f, stddev);
  }
}

Tensor Linear::forward(const Tensor& input, bool train) {
  if (input.ndim() != 2 || input.dim(1) != in_features_) {
    throw std::invalid_argument("linear: bad input shape " + input.shape_str());
  }
  const int batch = input.dim(0);
  Tensor out({batch, out_features_});
  for (int n = 0; n < batch; ++n) {
    const float* x = input.data() + static_cast<std::size_t>(n) * static_cast<std::size_t>(in_features_);
    for (int o = 0; o < out_features_; ++o) {
      const float* w = weight_.value.data() + static_cast<std::size_t>(o) * static_cast<std::size_t>(in_features_);
      float acc = has_bias() ? bias_.value[static_cast<std::size_t>(o)] : 0.0f;
      for (int i = 0; i < in_features_; ++i) acc += w[i] * x[i];
      out.at2(n, o) = acc;
    }
  }
  if (train) cached_input_ = input;
  return out;
}

Tensor Linear::backward(const Tensor& grad_output) {
  const Tensor& input = cached_input_;
  if (input.empty()) throw std::logic_error("linear: backward without forward");
  const int batch = input.dim(0);
  Tensor grad_input({batch, in_features_});
  for (int n = 0; n < batch; ++n) {
    const float* x = input.data() + static_cast<std::size_t>(n) * static_cast<std::size_t>(in_features_);
    float* gx = grad_input.data() + static_cast<std::size_t>(n) * static_cast<std::size_t>(in_features_);
    for (int o = 0; o < out_features_; ++o) {
      const float go = grad_output.at2(n, o);
      if (has_bias()) bias_.grad[static_cast<std::size_t>(o)] += go;
      const float* w = weight_.value.data() + static_cast<std::size_t>(o) * static_cast<std::size_t>(in_features_);
      float* gw = weight_.grad.data() + static_cast<std::size_t>(o) * static_cast<std::size_t>(in_features_);
      for (int i = 0; i < in_features_; ++i) {
        gw[i] += go * x[i];
        gx[i] += go * w[i];
      }
    }
  }
  return grad_input;
}

std::vector<Param*> Linear::params() {
  std::vector<Param*> out{&weight_};
  if (has_bias()) out.push_back(&bias_);
  return out;
}

// ------------------------------------------------------------------ ReLU ---

Tensor ReLU::forward(const Tensor& input, bool train) {
  Tensor out = input;
  for (std::size_t i = 0; i < out.numel(); ++i) out[i] = std::max(0.0f, out[i]);
  if (train) cached_input_ = input;
  return out;
}

Tensor ReLU::backward(const Tensor& grad_output) {
  Tensor grad = grad_output;
  for (std::size_t i = 0; i < grad.numel(); ++i) {
    if (cached_input_[i] <= 0.0f) grad[i] = 0.0f;
  }
  return grad;
}

// --------------------------------------------------------------- Flatten ---

Tensor Flatten::forward(const Tensor& input, bool train) {
  if (train) cached_shape_ = input.shape();
  const int batch = input.dim(0);
  const int features = static_cast<int>(input.numel()) / batch;
  return input.reshaped({batch, features});
}

Tensor Flatten::backward(const Tensor& grad_output) {
  return grad_output.reshaped(cached_shape_);
}

// ------------------------------------------------------------- MaxPool2d ---

Tensor MaxPool2d::forward(const Tensor& input, bool train) {
  const int batch = input.dim(0), channels = input.dim(1);
  const int ih = input.dim(2), iw = input.dim(3);
  if (ih % window_ != 0 || iw % window_ != 0) {
    throw std::invalid_argument("maxpool: input not divisible by window");
  }
  const int oh = ih / window_, ow = iw / window_;
  Tensor out({batch, channels, oh, ow});
  if (train) {
    cached_shape_ = input.shape();
    argmax_.assign(out.numel(), 0);
  }
  std::size_t out_idx = 0;
  for (int n = 0; n < batch; ++n) {
    for (int c = 0; c < channels; ++c) {
      for (int y = 0; y < oh; ++y) {
        for (int x = 0; x < ow; ++x, ++out_idx) {
          float best = -std::numeric_limits<float>::infinity();
          std::uint32_t best_idx = 0;
          for (int dy = 0; dy < window_; ++dy) {
            for (int dx = 0; dx < window_; ++dx) {
              const int in_y = y * window_ + dy, in_x = x * window_ + dx;
              const float v = input.at4(n, c, in_y, in_x);
              if (v > best) {
                best = v;
                best_idx = static_cast<std::uint32_t>(
                    ((static_cast<std::size_t>(n) * static_cast<std::size_t>(channels) + static_cast<std::size_t>(c)) *
                         static_cast<std::size_t>(ih) +
                     static_cast<std::size_t>(in_y)) *
                        static_cast<std::size_t>(iw) +
                    static_cast<std::size_t>(in_x));
              }
            }
          }
          out[out_idx] = best;
          if (train) argmax_[out_idx] = best_idx;
        }
      }
    }
  }
  return out;
}

Tensor MaxPool2d::backward(const Tensor& grad_output) {
  Tensor grad_input(cached_shape_);
  for (std::size_t i = 0; i < grad_output.numel(); ++i) {
    grad_input[argmax_[i]] += grad_output[i];
  }
  return grad_input;
}

// --------------------------------------------------------- GlobalAvgPool ---

Tensor GlobalAvgPool::forward(const Tensor& input, bool train) {
  const int batch = input.dim(0), channels = input.dim(1);
  const int ih = input.dim(2), iw = input.dim(3);
  if (train) cached_shape_ = input.shape();
  Tensor out({batch, channels, 1, 1});
  const float inv = 1.0f / static_cast<float>(ih * iw);
  for (int n = 0; n < batch; ++n) {
    for (int c = 0; c < channels; ++c) {
      float acc = 0.0f;
      for (int y = 0; y < ih; ++y) {
        for (int x = 0; x < iw; ++x) acc += input.at4(n, c, y, x);
      }
      out.at4(n, c, 0, 0) = acc * inv;
    }
  }
  return out;
}

Tensor GlobalAvgPool::backward(const Tensor& grad_output) {
  Tensor grad_input(cached_shape_);
  const int batch = cached_shape_[0], channels = cached_shape_[1];
  const int ih = cached_shape_[2], iw = cached_shape_[3];
  const float inv = 1.0f / static_cast<float>(ih * iw);
  for (int n = 0; n < batch; ++n) {
    for (int c = 0; c < channels; ++c) {
      const float g = grad_output.at4(n, c, 0, 0) * inv;
      for (int y = 0; y < ih; ++y) {
        for (int x = 0; x < iw; ++x) grad_input.at4(n, c, y, x) = g;
      }
    }
  }
  return grad_input;
}

// ----------------------------------------------------------- BatchNorm2d ---

BatchNorm2d::BatchNorm2d(int channels, float momentum, float eps)
    : channels_(channels),
      momentum_(momentum),
      eps_(eps),
      gamma_("bn.gamma", Tensor({1, channels})),
      beta_("bn.beta", Tensor({1, channels})),
      running_mean_({1, channels}),
      running_var_({1, channels}) {
  gamma_.value.fill(1.0f);
  running_var_.fill(1.0f);
}

Tensor BatchNorm2d::forward(const Tensor& input, bool train) {
  const int batch = input.dim(0), ih = input.dim(2), iw = input.dim(3);
  const auto per_channel = static_cast<float>(batch * ih * iw);
  Tensor out = input;

  if (train) {
    cached_input_ = input;
    batch_mean_.assign(static_cast<std::size_t>(channels_), 0.0f);
    batch_inv_std_.assign(static_cast<std::size_t>(channels_), 0.0f);
    cached_xhat_ = input.zeros_like();
    for (int c = 0; c < channels_; ++c) {
      float mean = 0.0f;
      for (int n = 0; n < batch; ++n) {
        for (int y = 0; y < ih; ++y) {
          for (int x = 0; x < iw; ++x) mean += input.at4(n, c, y, x);
        }
      }
      mean /= per_channel;
      float var = 0.0f;
      for (int n = 0; n < batch; ++n) {
        for (int y = 0; y < ih; ++y) {
          for (int x = 0; x < iw; ++x) {
            const float d = input.at4(n, c, y, x) - mean;
            var += d * d;
          }
        }
      }
      var /= per_channel;
      const float inv_std = 1.0f / std::sqrt(var + eps_);
      batch_mean_[static_cast<std::size_t>(c)] = mean;
      batch_inv_std_[static_cast<std::size_t>(c)] = inv_std;
      running_mean_[static_cast<std::size_t>(c)] =
          (1.0f - momentum_) * running_mean_[static_cast<std::size_t>(c)] + momentum_ * mean;
      running_var_[static_cast<std::size_t>(c)] =
          (1.0f - momentum_) * running_var_[static_cast<std::size_t>(c)] + momentum_ * var;
      const float g = gamma_.value[static_cast<std::size_t>(c)];
      const float b = beta_.value[static_cast<std::size_t>(c)];
      for (int n = 0; n < batch; ++n) {
        for (int y = 0; y < ih; ++y) {
          for (int x = 0; x < iw; ++x) {
            const float xhat = (input.at4(n, c, y, x) - mean) * inv_std;
            cached_xhat_.at4(n, c, y, x) = xhat;
            out.at4(n, c, y, x) = g * xhat + b;
          }
        }
      }
    }
  } else {
    for (int c = 0; c < channels_; ++c) {
      const float inv_std = 1.0f / std::sqrt(running_var_[static_cast<std::size_t>(c)] + eps_);
      const float mean = running_mean_[static_cast<std::size_t>(c)];
      const float g = gamma_.value[static_cast<std::size_t>(c)];
      const float b = beta_.value[static_cast<std::size_t>(c)];
      for (int n = 0; n < batch; ++n) {
        for (int y = 0; y < ih; ++y) {
          for (int x = 0; x < iw; ++x) {
            out.at4(n, c, y, x) = g * (input.at4(n, c, y, x) - mean) * inv_std + b;
          }
        }
      }
    }
  }
  return out;
}

Tensor BatchNorm2d::backward(const Tensor& grad_output) {
  // Standard batch-norm backward (Ioffe & Szegedy 2015, eq. group in §3).
  const Tensor& x = cached_input_;
  if (x.empty()) throw std::logic_error("batchnorm: backward without forward");
  const int batch = x.dim(0), ih = x.dim(2), iw = x.dim(3);
  const auto m = static_cast<float>(batch * ih * iw);
  Tensor grad_input = x.zeros_like();

  for (int c = 0; c < channels_; ++c) {
    const float inv_std = batch_inv_std_[static_cast<std::size_t>(c)];
    const float g = gamma_.value[static_cast<std::size_t>(c)];
    float sum_go = 0.0f, sum_go_xhat = 0.0f;
    for (int n = 0; n < batch; ++n) {
      for (int y = 0; y < ih; ++y) {
        for (int x2 = 0; x2 < iw; ++x2) {
          const float go = grad_output.at4(n, c, y, x2);
          sum_go += go;
          sum_go_xhat += go * cached_xhat_.at4(n, c, y, x2);
        }
      }
    }
    gamma_.grad[static_cast<std::size_t>(c)] += sum_go_xhat;
    beta_.grad[static_cast<std::size_t>(c)] += sum_go;
    for (int n = 0; n < batch; ++n) {
      for (int y = 0; y < ih; ++y) {
        for (int x2 = 0; x2 < iw; ++x2) {
          const float go = grad_output.at4(n, c, y, x2);
          const float xhat = cached_xhat_.at4(n, c, y, x2);
          grad_input.at4(n, c, y, x2) =
              g * inv_std / m * (m * go - sum_go - xhat * sum_go_xhat);
        }
      }
    }
  }
  return grad_input;
}

std::vector<Param*> BatchNorm2d::params() { return {&gamma_, &beta_}; }

}  // namespace sealdl::nn
