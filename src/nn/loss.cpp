#include "nn/loss.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace sealdl::nn {

Tensor softmax(const Tensor& logits) {
  const int batch = logits.dim(0), classes = logits.dim(1);
  Tensor out = logits;
  for (int n = 0; n < batch; ++n) {
    float max_v = out.at2(n, 0);
    for (int c = 1; c < classes; ++c) max_v = std::max(max_v, out.at2(n, c));
    float sum = 0.0f;
    for (int c = 0; c < classes; ++c) {
      const float e = std::exp(out.at2(n, c) - max_v);
      out.at2(n, c) = e;
      sum += e;
    }
    for (int c = 0; c < classes; ++c) out.at2(n, c) /= sum;
  }
  return out;
}

LossResult softmax_cross_entropy(const Tensor& logits,
                                 const std::vector<int>& labels) {
  const int batch = logits.dim(0), classes = logits.dim(1);
  if (static_cast<int>(labels.size()) != batch) {
    throw std::invalid_argument("loss: labels/batch mismatch");
  }
  Tensor probs = softmax(logits);
  LossResult result;
  result.grad = probs;
  float loss = 0.0f;
  const float inv_batch = 1.0f / static_cast<float>(batch);
  for (int n = 0; n < batch; ++n) {
    const int label = labels[static_cast<std::size_t>(n)];
    if (label < 0 || label >= classes) throw std::invalid_argument("loss: bad label");
    loss -= std::log(std::max(probs.at2(n, label), 1e-12f));
    result.grad.at2(n, label) -= 1.0f;
  }
  result.grad.scale_(inv_batch);
  result.loss = loss * inv_batch;
  return result;
}

std::vector<int> predict(const Tensor& logits) {
  const int batch = logits.dim(0), classes = logits.dim(1);
  std::vector<int> out(static_cast<std::size_t>(batch));
  for (int n = 0; n < batch; ++n) {
    int best = 0;
    for (int c = 1; c < classes; ++c) {
      if (logits.at2(n, c) > logits.at2(n, best)) best = c;
    }
    out[static_cast<std::size_t>(n)] = best;
  }
  return out;
}

double accuracy(const Tensor& logits, const std::vector<int>& labels) {
  const auto preds = predict(logits);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < preds.size(); ++i) {
    if (preds[i] == labels[i]) ++correct;
  }
  return preds.empty() ? 0.0
                       : static_cast<double>(correct) / static_cast<double>(preds.size());
}

}  // namespace sealdl::nn
