// Mini-batch training and evaluation loops shared by the victim-model setup
// and the adversary's substitute-model retraining.
#pragma once

#include <functional>
#include <vector>

#include "nn/dataset.hpp"
#include "nn/layer.hpp"
#include "nn/optim.hpp"
#include "util/rng.hpp"

namespace sealdl::nn {

struct TrainOptions {
  int epochs = 5;
  int batch_size = 32;
  SgdOptimizer::Options sgd;
  /// Multiply lr by this factor after each epoch (1.0 = constant).
  float lr_decay = 1.0f;
  std::uint64_t shuffle_seed = 7;
};

struct EpochStats {
  float loss = 0.0f;
  double accuracy = 0.0;
};

/// Trains `model` on (inputs provided by `get_batch`) for the configured
/// number of epochs. `indices` selects the training pool inside `data`;
/// labels may be overridden (oracle-labelled data) via `labels`, which, when
/// non-empty, must be parallel to `indices`.
std::vector<EpochStats> train(Layer& model, const SyntheticDataset& data,
                              const std::vector<int>& indices,
                              const std::vector<int>& labels,
                              const TrainOptions& options);

/// Mean accuracy of `model` over the given sample indices (true labels).
double evaluate(Layer& model, const SyntheticDataset& data,
                const std::vector<int>& indices, int batch_size = 64);

/// Accuracy against an explicit label vector parallel to `indices`.
double evaluate_with_labels(Layer& model, const SyntheticDataset& data,
                            const std::vector<int>& indices,
                            const std::vector<int>& labels, int batch_size = 64);

/// Trains on an explicit tensor corpus (images [N,C,H,W] + labels). Used by
/// the adversary, whose corpus mixes held-out samples with Jacobian-augmented
/// synthetic ones that exist nowhere in the dataset.
std::vector<EpochStats> train_tensors(Layer& model, const Tensor& images,
                                      const std::vector<int>& labels,
                                      const TrainOptions& options);

/// Accuracy of `model` on a tensor corpus.
double evaluate_tensors(Layer& model, const Tensor& images,
                        const std::vector<int>& labels, int batch_size = 64);

/// Copies rows [n0, n1) of a [N,C,H,W] corpus into a new batch tensor.
Tensor slice_batch(const Tensor& images, int n0, int n1);

}  // namespace sealdl::nn
