#include "nn/trainer.hpp"

#include <algorithm>
#include <stdexcept>

#include "nn/loss.hpp"

namespace sealdl::nn {

std::vector<EpochStats> train(Layer& model, const SyntheticDataset& data,
                              const std::vector<int>& indices,
                              const std::vector<int>& labels,
                              const TrainOptions& options) {
  if (!labels.empty() && labels.size() != indices.size()) {
    throw std::invalid_argument("train: labels must be parallel to indices");
  }
  SgdOptimizer optimizer(model.params(), options.sgd);
  util::Rng rng(options.shuffle_seed);
  std::vector<std::size_t> order(indices.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;

  std::vector<EpochStats> history;
  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    // Fisher–Yates with our deterministic RNG.
    for (std::size_t i = order.size(); i > 1; --i) {
      std::swap(order[i - 1], order[rng.next_below(i)]);
    }
    float loss_sum = 0.0f;
    std::size_t correct = 0, seen = 0;
    for (std::size_t start = 0; start < order.size();
         start += static_cast<std::size_t>(options.batch_size)) {
      const std::size_t end =
          std::min(order.size(), start + static_cast<std::size_t>(options.batch_size));
      std::vector<int> batch_idx, batch_lab;
      batch_idx.reserve(end - start);
      batch_lab.reserve(end - start);
      for (std::size_t i = start; i < end; ++i) {
        batch_idx.push_back(indices[order[i]]);
        batch_lab.push_back(labels.empty() ? data.label(indices[order[i]])
                                           : labels[order[i]]);
      }
      Tensor x = data.batch(batch_idx);
      optimizer.zero_grad();
      Tensor logits = model.forward(x, /*train=*/true);
      const LossResult loss = softmax_cross_entropy(logits, batch_lab);
      model.backward(loss.grad);
      optimizer.step();

      loss_sum += loss.loss * static_cast<float>(batch_idx.size());
      const auto preds = predict(logits);
      for (std::size_t i = 0; i < preds.size(); ++i) {
        correct += preds[i] == batch_lab[i] ? 1 : 0;
      }
      seen += batch_idx.size();
    }
    optimizer.set_lr(optimizer.lr() * options.lr_decay);
    history.push_back(EpochStats{loss_sum / static_cast<float>(seen),
                                 static_cast<double>(correct) / static_cast<double>(seen)});
  }
  return history;
}

Tensor slice_batch(const Tensor& images, int n0, int n1) {
  const std::size_t per =
      images.numel() / static_cast<std::size_t>(images.dim(0));
  std::vector<int> shape = images.shape();
  shape[0] = n1 - n0;
  Tensor out(shape);
  std::copy(images.data() + static_cast<std::size_t>(n0) * per,
            images.data() + static_cast<std::size_t>(n1) * per, out.data());
  return out;
}

std::vector<EpochStats> train_tensors(Layer& model, const Tensor& images,
                                      const std::vector<int>& labels,
                                      const TrainOptions& options) {
  const int total = images.dim(0);
  if (static_cast<int>(labels.size()) != total) {
    throw std::invalid_argument("train_tensors: labels/batch mismatch");
  }
  SgdOptimizer optimizer(model.params(), options.sgd);
  util::Rng rng(options.shuffle_seed);
  std::vector<int> order(static_cast<std::size_t>(total));
  for (int i = 0; i < total; ++i) order[static_cast<std::size_t>(i)] = i;

  const std::size_t per =
      images.numel() / static_cast<std::size_t>(total);
  std::vector<int> batch_shape = images.shape();

  std::vector<EpochStats> history;
  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    for (std::size_t i = order.size(); i > 1; --i) {
      std::swap(order[i - 1], order[rng.next_below(i)]);
    }
    float loss_sum = 0.0f;
    std::size_t correct = 0, seen = 0;
    for (int start = 0; start < total; start += options.batch_size) {
      const int end = std::min(total, start + options.batch_size);
      batch_shape[0] = end - start;
      Tensor x(batch_shape);
      std::vector<int> batch_lab(static_cast<std::size_t>(end - start));
      for (int i = start; i < end; ++i) {
        const int src = order[static_cast<std::size_t>(i)];
        std::copy(images.data() + static_cast<std::size_t>(src) * per,
                  images.data() + static_cast<std::size_t>(src + 1) * per,
                  x.data() + static_cast<std::size_t>(i - start) * per);
        batch_lab[static_cast<std::size_t>(i - start)] = labels[static_cast<std::size_t>(src)];
      }
      optimizer.zero_grad();
      Tensor logits = model.forward(x, /*train=*/true);
      const LossResult loss = softmax_cross_entropy(logits, batch_lab);
      model.backward(loss.grad);
      optimizer.step();
      loss_sum += loss.loss * static_cast<float>(end - start);
      const auto preds = predict(logits);
      for (std::size_t i = 0; i < preds.size(); ++i) {
        correct += preds[i] == batch_lab[i] ? 1 : 0;
      }
      seen += static_cast<std::size_t>(end - start);
    }
    optimizer.set_lr(optimizer.lr() * options.lr_decay);
    history.push_back(EpochStats{loss_sum / static_cast<float>(seen),
                                 static_cast<double>(correct) / static_cast<double>(seen)});
  }
  return history;
}

double evaluate_tensors(Layer& model, const Tensor& images,
                        const std::vector<int>& labels, int batch_size) {
  const int total = images.dim(0);
  std::size_t correct = 0;
  for (int start = 0; start < total; start += batch_size) {
    const int end = std::min(total, start + batch_size);
    Tensor logits = model.forward(slice_batch(images, start, end), /*train=*/false);
    const auto preds = predict(logits);
    for (std::size_t i = 0; i < preds.size(); ++i) {
      correct += preds[i] == labels[static_cast<std::size_t>(start) + i] ? 1 : 0;
    }
  }
  return total ? static_cast<double>(correct) / static_cast<double>(total) : 0.0;
}

double evaluate(Layer& model, const SyntheticDataset& data,
                const std::vector<int>& indices, int batch_size) {
  return evaluate_with_labels(model, data, indices, data.batch_labels(indices),
                              batch_size);
}

double evaluate_with_labels(Layer& model, const SyntheticDataset& data,
                            const std::vector<int>& indices,
                            const std::vector<int>& labels, int batch_size) {
  if (labels.size() != indices.size()) {
    throw std::invalid_argument("evaluate: labels must be parallel to indices");
  }
  std::size_t correct = 0;
  for (std::size_t start = 0; start < indices.size();
       start += static_cast<std::size_t>(batch_size)) {
    const std::size_t end =
        std::min(indices.size(), start + static_cast<std::size_t>(batch_size));
    const std::vector<int> batch_idx(indices.begin() + static_cast<std::ptrdiff_t>(start),
                                     indices.begin() + static_cast<std::ptrdiff_t>(end));
    Tensor logits = model.forward(data.batch(batch_idx), /*train=*/false);
    const auto preds = predict(logits);
    for (std::size_t i = 0; i < preds.size(); ++i) {
      correct += preds[i] == labels[start + i] ? 1 : 0;
    }
  }
  return indices.empty()
             ? 0.0
             : static_cast<double>(correct) / static_cast<double>(indices.size());
}

}  // namespace sealdl::nn
