// Small layers: Linear, ReLU, Flatten, MaxPool2d, AvgPool2d (global),
// BatchNorm2d.
#pragma once

#include "nn/layer.hpp"
#include "util/rng.hpp"

namespace sealdl::nn {

/// Fully-connected layer; input shape [N, in_features].
class Linear final : public Layer {
 public:
  Linear(int in_features, int out_features, bool bias, util::Rng& rng);

  Tensor forward(const Tensor& input, bool train) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Param*> params() override;
  [[nodiscard]] std::string name() const override { return "linear"; }

  [[nodiscard]] int in_features() const { return in_features_; }
  [[nodiscard]] int out_features() const { return out_features_; }
  Param& weight() { return weight_; }  ///< shape [out, in]
  Param& bias_param() { return bias_; }
  [[nodiscard]] bool has_bias() const { return !bias_.value.empty(); }

 private:
  int in_features_, out_features_;
  Param weight_;
  Param bias_;
  Tensor cached_input_;
};

class ReLU final : public Layer {
 public:
  Tensor forward(const Tensor& input, bool train) override;
  Tensor backward(const Tensor& grad_output) override;
  [[nodiscard]] std::string name() const override { return "relu"; }

 private:
  Tensor cached_input_;
};

/// [N, C, H, W] -> [N, C*H*W].
class Flatten final : public Layer {
 public:
  Tensor forward(const Tensor& input, bool train) override;
  Tensor backward(const Tensor& grad_output) override;
  [[nodiscard]] std::string name() const override { return "flatten"; }

 private:
  std::vector<int> cached_shape_;
};

/// Non-overlapping max pooling with a square window.
class MaxPool2d final : public Layer {
 public:
  explicit MaxPool2d(int window) : window_(window) {}

  Tensor forward(const Tensor& input, bool train) override;
  Tensor backward(const Tensor& grad_output) override;
  [[nodiscard]] std::string name() const override { return "maxpool"; }
  [[nodiscard]] int window() const { return window_; }

 private:
  int window_;
  std::vector<int> cached_shape_;
  std::vector<std::uint32_t> argmax_;  ///< flat input index per output element
};

/// Global average pooling: [N, C, H, W] -> [N, C, 1, 1].
class GlobalAvgPool final : public Layer {
 public:
  Tensor forward(const Tensor& input, bool train) override;
  Tensor backward(const Tensor& grad_output) override;
  [[nodiscard]] std::string name() const override { return "gavgpool"; }

 private:
  std::vector<int> cached_shape_;
};

/// Batch normalisation over channels of a [N, C, H, W] tensor.
class BatchNorm2d final : public Layer {
 public:
  explicit BatchNorm2d(int channels, float momentum = 0.1f, float eps = 1e-5f);

  Tensor forward(const Tensor& input, bool train) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Param*> params() override;
  [[nodiscard]] std::string name() const override { return "batchnorm"; }

  [[nodiscard]] int channels() const { return channels_; }

  /// Running statistics (inference-mode state, not trainable parameters).
  /// Exposed so model cloning (attack substitutes, serialization) can carry
  /// the full inference state, not just the affine weights.
  Tensor& running_mean() { return running_mean_; }
  Tensor& running_var() { return running_var_; }

 private:
  int channels_;
  float momentum_, eps_;
  Param gamma_, beta_;
  Tensor running_mean_, running_var_;
  // Cached training-pass state for backward().
  Tensor cached_input_, cached_xhat_;
  std::vector<float> batch_mean_, batch_inv_std_;
};

}  // namespace sealdl::nn
