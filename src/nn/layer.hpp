// Layer abstraction: forward/backward with cached activations, and trainable
// parameters with optional per-element freeze masks.
//
// The freeze mask is what makes SEAL's substitute-model attack expressible:
// the adversary keeps the *known* (unencrypted) kernel rows fixed and
// fine-tunes only the unknown rows (paper §III-B1).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "nn/tensor.hpp"

namespace sealdl::nn {

/// A trainable tensor with its gradient and an optional trainability mask
/// (same shape; 1 = trainable, 0 = frozen). An empty mask means fully
/// trainable.
struct Param {
  std::string name;
  Tensor value;
  Tensor grad;
  Tensor mask;

  explicit Param(std::string n = "", Tensor v = {})
      : name(std::move(n)), value(std::move(v)) {
    if (!value.empty()) grad = value.zeros_like();
  }

  void zero_grad() {
    if (!grad.empty()) grad.fill(0.0f);
  }

  /// Marks every element trainable again.
  void clear_mask() { mask = Tensor{}; }
};

class Layer {
 public:
  virtual ~Layer() = default;

  /// Computes the layer output. `train` enables training-mode behaviour
  /// (batch statistics in BatchNorm) and activation caching for backward().
  virtual Tensor forward(const Tensor& input, bool train) = 0;

  /// Back-propagates `grad_output`, accumulating parameter gradients and
  /// returning the gradient w.r.t. the layer input. Must follow a
  /// forward(..., train=true) call.
  virtual Tensor backward(const Tensor& grad_output) = 0;

  /// Trainable parameters (possibly empty). Pointers remain valid for the
  /// layer's lifetime.
  virtual std::vector<Param*> params() { return {}; }

  [[nodiscard]] virtual std::string name() const = 0;
};

using LayerPtr = std::unique_ptr<Layer>;

}  // namespace sealdl::nn
