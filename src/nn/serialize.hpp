// Flat byte serialization of model parameters.
//
// The SEAL runtime places these bytes into the simulated secure heap (weights
// live in DRAM, §II-A), and the bus snooper tries to reassemble them.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "nn/layer.hpp"

namespace sealdl::nn {

/// Concatenates every parameter tensor (in params() order) as little-endian
/// float32 bytes.
std::vector<std::uint8_t> serialize_params(Layer& model);

/// Inverse of serialize_params; shapes must match exactly.
void deserialize_params(Layer& model, std::span<const std::uint8_t> bytes);

/// Total parameter count.
std::size_t parameter_count(Layer& model);

/// Copies parameter values from `src` into `dst` (architectures must match).
void copy_params(Layer& src, Layer& dst);

}  // namespace sealdl::nn
