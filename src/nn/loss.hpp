// Softmax + cross-entropy loss and small inference helpers.
#pragma once

#include <vector>

#include "nn/tensor.hpp"

namespace sealdl::nn {

/// Row-wise softmax of logits [N, classes].
Tensor softmax(const Tensor& logits);

struct LossResult {
  float loss = 0.0f;   ///< mean cross-entropy over the batch
  Tensor grad;         ///< d(loss)/d(logits), already divided by batch size
};

/// Cross-entropy against integer labels.
LossResult softmax_cross_entropy(const Tensor& logits,
                                 const std::vector<int>& labels);

/// Argmax prediction per row.
std::vector<int> predict(const Tensor& logits);

/// Fraction of rows whose argmax equals the label.
double accuracy(const Tensor& logits, const std::vector<int>& labels);

}  // namespace sealdl::nn
