#include "nn/optim.hpp"

namespace sealdl::nn {

SgdOptimizer::SgdOptimizer(std::vector<Param*> params, Options options)
    : params_(std::move(params)), options_(options) {
  velocity_.reserve(params_.size());
  for (Param* p : params_) velocity_.push_back(p->value.zeros_like());
}

void SgdOptimizer::step() {
  for (std::size_t i = 0; i < params_.size(); ++i) {
    Param& p = *params_[i];
    Tensor& v = velocity_[i];
    const bool masked = !p.mask.empty();
    for (std::size_t j = 0; j < p.value.numel(); ++j) {
      if (masked && p.mask[j] == 0.0f) continue;
      float g = p.grad[j] + options_.weight_decay * p.value[j];
      v[j] = options_.momentum * v[j] - options_.lr * g;
      p.value[j] += v[j];
    }
  }
}

void SgdOptimizer::zero_grad() {
  for (Param* p : params_) p->zero_grad();
}

}  // namespace sealdl::nn
