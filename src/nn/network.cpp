#include "nn/network.hpp"

#include <algorithm>
#include <stdexcept>

namespace sealdl::nn {

Sequential& Sequential::add(LayerPtr layer) {
  if (!layer) throw std::invalid_argument("Sequential::add: null layer");
  layers_.push_back(std::move(layer));
  return *this;
}

Tensor Sequential::forward(const Tensor& input, bool train) {
  Tensor x = input;
  for (auto& layer : layers_) x = layer->forward(x, train);
  return x;
}

Tensor Sequential::backward(const Tensor& grad_output) {
  Tensor g = grad_output;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    g = (*it)->backward(g);
  }
  return g;
}

std::vector<Param*> Sequential::params() {
  std::vector<Param*> out;
  for (auto& layer : layers_) {
    for (Param* p : layer->params()) out.push_back(p);
  }
  return out;
}

void Sequential::visit_leaves(const std::function<void(Layer&)>& fn) {
  for (auto& layer : layers_) visit_leaf_layers(*layer, fn);
}

ResidualBlock::ResidualBlock(LayerPtr main_path, LayerPtr shortcut)
    : main_(std::move(main_path)), shortcut_(std::move(shortcut)) {
  if (!main_) throw std::invalid_argument("ResidualBlock: null main path");
}

Tensor ResidualBlock::forward(const Tensor& input, bool train) {
  Tensor main_out = main_->forward(input, train);
  Tensor side = shortcut_ ? shortcut_->forward(input, train) : input;
  if (main_out.numel() != side.numel()) {
    throw std::invalid_argument("ResidualBlock: path shapes differ");
  }
  main_out.add_(side);
  if (train) cached_sum_ = main_out;
  Tensor out = main_out;
  for (std::size_t i = 0; i < out.numel(); ++i) out[i] = std::max(0.0f, out[i]);
  return out;
}

Tensor ResidualBlock::backward(const Tensor& grad_output) {
  Tensor g = grad_output;
  for (std::size_t i = 0; i < g.numel(); ++i) {
    if (cached_sum_[i] <= 0.0f) g[i] = 0.0f;
  }
  Tensor grad_in = main_->backward(g);
  if (shortcut_) {
    grad_in.add_(shortcut_->backward(g));
  } else {
    grad_in.add_(g);
  }
  return grad_in;
}

std::vector<Param*> ResidualBlock::params() {
  std::vector<Param*> out = main_->params();
  if (shortcut_) {
    for (Param* p : shortcut_->params()) out.push_back(p);
  }
  return out;
}

void ResidualBlock::visit_leaves(const std::function<void(Layer&)>& fn) {
  visit_leaf_layers(*main_, fn);
  if (shortcut_) visit_leaf_layers(*shortcut_, fn);
}

void visit_leaf_layers(Layer& root, const std::function<void(Layer&)>& fn) {
  if (auto* seq = dynamic_cast<Sequential*>(&root)) {
    seq->visit_leaves(fn);
    return;
  }
  if (auto* res = dynamic_cast<ResidualBlock*>(&root)) {
    res->visit_leaves(fn);
    return;
  }
  fn(root);
}

}  // namespace sealdl::nn
