#include "nn/conv2d.hpp"

#include <cmath>
#include <stdexcept>

namespace sealdl::nn {

Conv2d::Conv2d(int in_channels, int out_channels, int kernel, int stride,
               int padding, bool bias, util::Rng& rng)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_(kernel),
      stride_(stride),
      padding_(padding),
      weight_("conv.weight", Tensor({out_channels, in_channels, kernel, kernel})),
      bias_(bias ? Param("conv.bias", Tensor({1, out_channels}))
                 : Param("conv.bias")) {
  // He (Kaiming) normal initialisation, as the paper's substitute models use
  // for the unknown weights [7].
  const float stddev =
      std::sqrt(2.0f / (static_cast<float>(in_channels) * static_cast<float>(kernel) * static_cast<float>(kernel)));
  for (std::size_t i = 0; i < weight_.value.numel(); ++i) {
    weight_.value[i] = rng.normal(0.0f, stddev);
  }
}

Tensor Conv2d::forward(const Tensor& input, bool train) {
  if (input.ndim() != 4 || input.dim(1) != in_channels_) {
    throw std::invalid_argument("conv2d: bad input shape " + input.shape_str());
  }
  const int batch = input.dim(0), ih = input.dim(2), iw = input.dim(3);
  const int oh = (ih + 2 * padding_ - kernel_) / stride_ + 1;
  const int ow = (iw + 2 * padding_ - kernel_) / stride_ + 1;
  Tensor out({batch, out_channels_, oh, ow});

  for (int n = 0; n < batch; ++n) {
    for (int oc = 0; oc < out_channels_; ++oc) {
      if (has_bias()) {
        const float b = bias_.value[static_cast<std::size_t>(oc)];
        for (int y = 0; y < oh; ++y) {
          for (int x = 0; x < ow; ++x) out.at4(n, oc, y, x) = b;
        }
      }
      for (int ic = 0; ic < in_channels_; ++ic) {
        for (int kh = 0; kh < kernel_; ++kh) {
          for (int kw = 0; kw < kernel_; ++kw) {
            const float w = weight_.value.at4(oc, ic, kh, kw);
            if (w == 0.0f) continue;
            for (int y = 0; y < oh; ++y) {
              const int in_y = y * stride_ + kh - padding_;
              if (in_y < 0 || in_y >= ih) continue;
              for (int x = 0; x < ow; ++x) {
                const int in_x = x * stride_ + kw - padding_;
                if (in_x < 0 || in_x >= iw) continue;
                out.at4(n, oc, y, x) += w * input.at4(n, ic, in_y, in_x);
              }
            }
          }
        }
      }
    }
  }
  if (train) cached_input_ = input;
  return out;
}

Tensor Conv2d::backward(const Tensor& grad_output) {
  const Tensor& input = cached_input_;
  if (input.empty()) throw std::logic_error("conv2d: backward without forward");
  const int batch = input.dim(0), ih = input.dim(2), iw = input.dim(3);
  const int oh = grad_output.dim(2), ow = grad_output.dim(3);
  Tensor grad_input = input.zeros_like();

  for (int n = 0; n < batch; ++n) {
    for (int oc = 0; oc < out_channels_; ++oc) {
      if (has_bias()) {
        float gb = 0.0f;
        for (int y = 0; y < oh; ++y) {
          for (int x = 0; x < ow; ++x) gb += grad_output.at4(n, oc, y, x);
        }
        bias_.grad[static_cast<std::size_t>(oc)] += gb;
      }
      for (int ic = 0; ic < in_channels_; ++ic) {
        for (int kh = 0; kh < kernel_; ++kh) {
          for (int kw = 0; kw < kernel_; ++kw) {
            float gw = 0.0f;
            const float w = weight_.value.at4(oc, ic, kh, kw);
            for (int y = 0; y < oh; ++y) {
              const int in_y = y * stride_ + kh - padding_;
              if (in_y < 0 || in_y >= ih) continue;
              for (int x = 0; x < ow; ++x) {
                const int in_x = x * stride_ + kw - padding_;
                if (in_x < 0 || in_x >= iw) continue;
                const float go = grad_output.at4(n, oc, y, x);
                gw += go * input.at4(n, ic, in_y, in_x);
                grad_input.at4(n, ic, in_y, in_x) += go * w;
              }
            }
            weight_.grad.at4(oc, ic, kh, kw) += gw;
          }
        }
      }
    }
  }
  return grad_input;
}

std::vector<Param*> Conv2d::params() {
  std::vector<Param*> out{&weight_};
  if (has_bias()) out.push_back(&bias_);
  return out;
}

}  // namespace sealdl::nn
