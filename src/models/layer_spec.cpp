#include "models/layer_spec.hpp"

namespace sealdl::models {

namespace {

LayerSpec conv(std::string name, int in_ch, int out_ch, int hw, int kernel = 3,
               int stride = 1, int padding = 1) {
  LayerSpec s;
  s.type = LayerSpec::Type::kConv;
  s.name = std::move(name);
  s.in_channels = in_ch;
  s.out_channels = out_ch;
  s.in_h = s.in_w = hw;
  s.kernel = kernel;
  s.stride = stride;
  s.padding = padding;
  return s;
}

LayerSpec pool(std::string name, int channels, int hw, int window = 2) {
  LayerSpec s;
  s.type = LayerSpec::Type::kPool;
  s.name = std::move(name);
  s.in_channels = s.out_channels = channels;
  s.in_h = s.in_w = hw;
  s.kernel = window;
  s.stride = window;
  s.padding = 0;
  return s;
}

LayerSpec fc(std::string name, int in_features, int out_features) {
  LayerSpec s;
  s.type = LayerSpec::Type::kFc;
  s.name = std::move(name);
  s.in_features = in_features;
  s.out_features = out_features;
  return s;
}

}  // namespace

std::uint64_t LayerSpec::macs() const {
  switch (type) {
    case Type::kConv:
      return static_cast<std::uint64_t>(out_channels) * static_cast<std::uint64_t>(in_channels) *
             static_cast<std::uint64_t>(kernel) * static_cast<std::uint64_t>(kernel) *
             static_cast<std::uint64_t>(out_h()) * static_cast<std::uint64_t>(out_w());
    case Type::kPool:
      // Comparisons, not MACs, but the same order of per-element work.
      return static_cast<std::uint64_t>(in_channels) * static_cast<std::uint64_t>(out_h()) *
             static_cast<std::uint64_t>(out_w()) * static_cast<std::uint64_t>(kernel) *
             static_cast<std::uint64_t>(kernel);
    case Type::kFc:
      return static_cast<std::uint64_t>(in_features) * static_cast<std::uint64_t>(out_features);
  }
  return 0;
}

std::uint64_t LayerSpec::weight_bytes() const {
  switch (type) {
    case Type::kConv:
      return static_cast<std::uint64_t>(out_channels) * static_cast<std::uint64_t>(in_channels) *
             static_cast<std::uint64_t>(kernel) * static_cast<std::uint64_t>(kernel) * 4;
    case Type::kPool:
      return 0;
    case Type::kFc:
      return static_cast<std::uint64_t>(in_features) * static_cast<std::uint64_t>(out_features) * 4;
  }
  return 0;
}

std::uint64_t LayerSpec::input_bytes() const {
  if (type == Type::kFc) return static_cast<std::uint64_t>(in_features) * 4;
  return static_cast<std::uint64_t>(in_channels) * static_cast<std::uint64_t>(in_h) *
         static_cast<std::uint64_t>(in_w) * 4;
}

std::uint64_t LayerSpec::output_bytes() const {
  if (type == Type::kFc) return static_cast<std::uint64_t>(out_features) * 4;
  return static_cast<std::uint64_t>(out_channels) * static_cast<std::uint64_t>(out_h()) *
         static_cast<std::uint64_t>(out_w()) * 4;
}

std::vector<LayerSpec> vgg16_specs(int input_hw) {
  std::vector<LayerSpec> out;
  int hw = input_hw;
  const int widths[5] = {64, 128, 256, 512, 512};
  const int convs_per_block[5] = {2, 2, 3, 3, 3};
  int in_ch = 3;
  for (int block = 0; block < 5; ++block) {
    for (int i = 0; i < convs_per_block[block]; ++i) {
      out.push_back(conv("conv" + std::to_string(block + 1) + "_" + std::to_string(i + 1),
                         in_ch, widths[block], hw));
      in_ch = widths[block];
    }
    out.push_back(pool("pool" + std::to_string(block + 1), in_ch, hw));
    hw /= 2;
  }
  out.push_back(fc("fc6", in_ch * hw * hw, 4096));
  out.push_back(fc("fc7", 4096, 4096));
  out.push_back(fc("fc8", 4096, 1000));
  return out;
}

namespace {

// Appends one ResNet basic block (two 3x3 convs); `hw` is the block's input
// spatial size, `stride` applies to the first conv (and the projection).
void append_basic_block(std::vector<LayerSpec>& out, const std::string& prefix,
                        int in_ch, int out_ch, int hw, int stride) {
  out.push_back(conv(prefix + "_a", in_ch, out_ch, hw, 3, stride, 1));
  const int mid_hw = (hw + 2 - 3) / stride + 1;
  out.push_back(conv(prefix + "_b", out_ch, out_ch, mid_hw, 3, 1, 1));
  if (stride != 1 || in_ch != out_ch) {
    out.push_back(conv(prefix + "_proj", in_ch, out_ch, hw, 1, stride, 0));
  }
}

std::vector<LayerSpec> resnet_specs(const int blocks_per_stage[4], int input_hw) {
  std::vector<LayerSpec> out;
  int hw = input_hw;
  out.push_back(conv("conv1", 3, 64, hw, 7, 2, 3));
  hw = (hw + 6 - 7) / 2 + 1;
  out.push_back(pool("maxpool", 64, hw, 2));
  hw /= 2;
  const int widths[4] = {64, 128, 256, 512};
  int in_ch = 64;
  for (int stage = 0; stage < 4; ++stage) {
    for (int b = 0; b < blocks_per_stage[stage]; ++b) {
      const int stride = (stage > 0 && b == 0) ? 2 : 1;
      append_basic_block(out,
                         "stage" + std::to_string(stage + 1) + "_block" + std::to_string(b + 1),
                         in_ch, widths[stage], hw, stride);
      if (stride == 2) hw = (hw + 2 - 3) / 2 + 1;
      in_ch = widths[stage];
    }
  }
  out.push_back(fc("fc", 512, 1000));
  return out;
}

}  // namespace

std::vector<LayerSpec> resnet18_specs(int input_hw) {
  const int blocks[4] = {2, 2, 2, 2};
  return resnet_specs(blocks, input_hw);
}

std::vector<LayerSpec> resnet34_specs(int input_hw) {
  const int blocks[4] = {3, 4, 6, 3};
  return resnet_specs(blocks, input_hw);
}

std::vector<LayerSpec> fig5_conv_layers() {
  // "the number of input and output channels is 64/128/256/512" — the VGG
  // body layers at their native spatial sizes (224-input VGG-16).
  return {
      conv("CONV-1", 64, 64, 224),
      conv("CONV-2", 128, 128, 112),
      conv("CONV-3", 256, 256, 56),
      conv("CONV-4", 512, 512, 28),
  };
}

std::vector<LayerSpec> fig6_pool_layers() {
  return {
      pool("POOL-1", 64, 224),
      pool("POOL-2", 128, 112),
      pool("POOL-3", 256, 56),
      pool("POOL-5", 512, 14),
  };
}

}  // namespace sealdl::models
