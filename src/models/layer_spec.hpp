// Architecture descriptions used by the performance workloads.
//
// A LayerSpec captures the tensor geometry of one network layer at full
// (paper) scale; the workload generators (src/workload) turn specs into
// memory-access traces for the cycle simulator. These are decoupled from the
// trainable nn:: models so that timing experiments can use the exact
// VGG-16 / ResNet-18 / ResNet-34 dimensions while security experiments use
// width-scaled trainable instances.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace sealdl::models {

struct LayerSpec {
  enum class Type { kConv, kPool, kFc };

  Type type = Type::kConv;
  std::string name;

  // Convolution / pooling geometry (NCHW, square kernels).
  int in_channels = 0;
  int out_channels = 0;
  int in_h = 0;
  int in_w = 0;
  int kernel = 3;
  int stride = 1;
  int padding = 1;

  // Fully connected geometry.
  int in_features = 0;
  int out_features = 0;

  [[nodiscard]] int out_h() const { return (in_h + 2 * padding - kernel) / stride + 1; }
  [[nodiscard]] int out_w() const { return (in_w + 2 * padding - kernel) / stride + 1; }

  /// Multiply-accumulate count of the layer (for IPC/latency scaling).
  [[nodiscard]] std::uint64_t macs() const;

  /// Weight bytes (float32).
  [[nodiscard]] std::uint64_t weight_bytes() const;

  /// Input / output feature-map bytes (float32, batch 1).
  [[nodiscard]] std::uint64_t input_bytes() const;
  [[nodiscard]] std::uint64_t output_bytes() const;
};

/// VGG-16 (Simonyan & Zisserman) at 224x224x3: 13 CONV + 5 POOL + 3 FC.
std::vector<LayerSpec> vgg16_specs(int input_hw = 224);

/// ResNet-18 at 224x224x3 (7x7 stem, 4 stages of basic blocks, FC head).
std::vector<LayerSpec> resnet18_specs(int input_hw = 224);

/// ResNet-34 at 224x224x3.
std::vector<LayerSpec> resnet34_specs(int input_hw = 224);

/// The four "typical CONV layers in VGG" of paper Fig. 5 — channel counts
/// 64/128/256/512 (CONV-1..CONV-4).
std::vector<LayerSpec> fig5_conv_layers();

/// The POOL layers of paper Fig. 6 (POOL-1, POOL-2, POOL-3, POOL-5 of VGG).
std::vector<LayerSpec> fig6_pool_layers();

}  // namespace sealdl::models
