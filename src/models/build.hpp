// Trainable instances of the paper's three CNNs.
//
// The builders accept a width divisor so that the security experiments
// (victim/substitute training in pure C++) run at laptop speed while keeping
// the exact layer *structure* — 13/17/33 CONV layers plus FC head — which is
// what SEAL's per-layer row ranking operates on. width_div=1 reproduces the
// full published channel counts.
#pragma once

#include <memory>

#include "nn/network.hpp"
#include "util/rng.hpp"

namespace sealdl::models {

struct BuildOptions {
  int classes = 10;
  int input_channels = 3;
  int input_hw = 16;   ///< square input resolution
  int width_div = 8;   ///< divide every published channel count by this
  std::uint64_t seed = 1;
};

/// VGG-16: 13 conv (2-2-3-3-3 blocks) + 3 FC. Max-pool follows each block
/// while the spatial size allows it.
std::unique_ptr<nn::Sequential> build_vgg16(const BuildOptions& options);

/// ResNet-18: 3x3 stem + stages [2,2,2,2] of basic blocks + GAP + FC
/// (CIFAR-style stem: stride-1 3x3, no stem max-pool).
std::unique_ptr<nn::Sequential> build_resnet18(const BuildOptions& options);

/// ResNet-34: stages [3,4,6,3].
std::unique_ptr<nn::Sequential> build_resnet34(const BuildOptions& options);

/// Builds by name: "vgg16" | "resnet18" | "resnet34".
std::unique_ptr<nn::Sequential> build_model(const std::string& name,
                                            const BuildOptions& options);

}  // namespace sealdl::models
