#include "models/build.hpp"

#include <algorithm>
#include <stdexcept>

#include "nn/basic_layers.hpp"
#include "nn/conv2d.hpp"

namespace sealdl::models {

using nn::BatchNorm2d;
using nn::Conv2d;
using nn::Flatten;
using nn::GlobalAvgPool;
using nn::LayerPtr;
using nn::Linear;
using nn::MaxPool2d;
using nn::ReLU;
using nn::ResidualBlock;
using nn::Sequential;

namespace {
int scaled(int channels, int width_div) { return std::max(4, channels / width_div); }
}  // namespace

std::unique_ptr<Sequential> build_vgg16(const BuildOptions& options) {
  util::Rng rng(options.seed);
  auto net = std::make_unique<Sequential>();
  const int widths[5] = {64, 128, 256, 512, 512};
  const int convs_per_block[5] = {2, 2, 3, 3, 3};
  int in_ch = options.input_channels;
  int hw = options.input_hw;
  for (int block = 0; block < 5; ++block) {
    const int out_ch = scaled(widths[block], options.width_div);
    for (int i = 0; i < convs_per_block[block]; ++i) {
      net->add(std::make_unique<Conv2d>(in_ch, out_ch, 3, 1, 1, true, rng));
      // Batch norm keeps the 13-conv stack trainable from scratch (the
      // common CIFAR-VGG recipe); it adds no kernel rows, so the SE plan is
      // unaffected.
      net->add(std::make_unique<BatchNorm2d>(out_ch));
      net->add(std::make_unique<ReLU>());
      in_ch = out_ch;
    }
    if (hw >= 2 && hw % 2 == 0) {
      net->add(std::make_unique<MaxPool2d>(2));
      hw /= 2;
    }
  }
  net->add(std::make_unique<Flatten>());
  const int features = in_ch * hw * hw;
  const int hidden = scaled(4096, options.width_div * 8);
  net->add(std::make_unique<Linear>(features, hidden, true, rng));
  net->add(std::make_unique<ReLU>());
  net->add(std::make_unique<Linear>(hidden, hidden, true, rng));
  net->add(std::make_unique<ReLU>());
  net->add(std::make_unique<Linear>(hidden, options.classes, true, rng));
  return net;
}

namespace {

LayerPtr basic_block(int in_ch, int out_ch, int stride, util::Rng& rng) {
  auto main_path = std::make_unique<Sequential>();
  main_path->add(std::make_unique<Conv2d>(in_ch, out_ch, 3, stride, 1, false, rng));
  main_path->add(std::make_unique<BatchNorm2d>(out_ch));
  main_path->add(std::make_unique<ReLU>());
  main_path->add(std::make_unique<Conv2d>(out_ch, out_ch, 3, 1, 1, false, rng));
  main_path->add(std::make_unique<BatchNorm2d>(out_ch));

  LayerPtr shortcut;
  if (stride != 1 || in_ch != out_ch) {
    auto proj = std::make_unique<Sequential>();
    proj->add(std::make_unique<Conv2d>(in_ch, out_ch, 1, stride, 0, false, rng));
    proj->add(std::make_unique<BatchNorm2d>(out_ch));
    shortcut = std::move(proj);
  }
  return std::make_unique<ResidualBlock>(std::move(main_path), std::move(shortcut));
}

std::unique_ptr<Sequential> build_resnet(const int blocks_per_stage[4],
                                         const BuildOptions& options) {
  util::Rng rng(options.seed);
  auto net = std::make_unique<Sequential>();
  const int stem = scaled(64, options.width_div);
  net->add(std::make_unique<Conv2d>(options.input_channels, stem, 3, 1, 1, false, rng));
  net->add(std::make_unique<BatchNorm2d>(stem));
  net->add(std::make_unique<ReLU>());

  const int widths[4] = {64, 128, 256, 512};
  int in_ch = stem;
  int hw = options.input_hw;
  for (int stage = 0; stage < 4; ++stage) {
    const int out_ch = scaled(widths[stage], options.width_div);
    for (int b = 0; b < blocks_per_stage[stage]; ++b) {
      // Downsample at the head of stages 2..4, but only while spatial size
      // permits (small-input variants stop shrinking at 2x2).
      int stride = (stage > 0 && b == 0 && hw >= 4) ? 2 : 1;
      net->add(basic_block(in_ch, out_ch, stride, rng));
      if (stride == 2) hw /= 2;
      in_ch = out_ch;
    }
  }
  net->add(std::make_unique<GlobalAvgPool>());
  net->add(std::make_unique<Flatten>());
  net->add(std::make_unique<Linear>(in_ch, options.classes, true, rng));
  return net;
}

}  // namespace

std::unique_ptr<Sequential> build_resnet18(const BuildOptions& options) {
  const int blocks[4] = {2, 2, 2, 2};
  return build_resnet(blocks, options);
}

std::unique_ptr<Sequential> build_resnet34(const BuildOptions& options) {
  const int blocks[4] = {3, 4, 6, 3};
  return build_resnet(blocks, options);
}

std::unique_ptr<Sequential> build_model(const std::string& name,
                                        const BuildOptions& options) {
  if (name == "vgg16") return build_vgg16(options);
  if (name == "resnet18") return build_resnet18(options);
  if (name == "resnet34") return build_resnet34(options);
  throw std::invalid_argument("unknown model: " + name);
}

}  // namespace sealdl::models
