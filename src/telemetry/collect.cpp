#include "telemetry/collect.hpp"

namespace sealdl::telemetry {

void collect_component_metrics(const sim::GpuSimulator& simulator,
                               MetricsRegistry& registry) {
  for (int i = 0; i < simulator.num_sms(); ++i) {
    const sim::SmCore& sm = simulator.sm(i);
    const std::string prefix = "sm" + std::to_string(i) + "/";
    registry.counter(prefix + "warp_instructions").add(sm.warp_instructions());
    registry.counter(prefix + "compute_issued").add(sm.compute_issued());
    registry.counter(prefix + "loads_issued").add(sm.loads_issued());
    registry.counter(prefix + "stores_issued").add(sm.stores_issued());
    registry.counter(prefix + "window_stalls").add(sm.window_stalls());
    registry.counter(prefix + "barrier_parks").add(sm.barrier_parks());
  }
  for (int c = 0; c < simulator.num_channels(); ++c) {
    const std::string l2 = "l2_slice" + std::to_string(c) + "/";
    const util::HitRate& hits = simulator.l2_slice(c).hit_rate();
    registry.counter(l2 + "hits").add(hits.hits);
    registry.counter(l2 + "accesses").add(hits.total);

    const sim::MemoryController& mc = simulator.controller(c);
    const std::string prefix = "mc" + std::to_string(c) + "/";
    registry.counter(prefix + "read_bytes").add(mc.read_bytes());
    registry.counter(prefix + "write_bytes").add(mc.write_bytes());
    registry.counter(prefix + "encrypted_bytes").add(mc.encrypted_bytes());
    registry.counter(prefix + "bypassed_bytes").add(mc.bypassed_bytes());
    registry.counter(prefix + "counter_traffic_bytes")
        .add(mc.counter_traffic_bytes());
    registry.gauge(prefix + "dram_busy_cycles").add(mc.dram_busy_cycles());
    registry.gauge(prefix + "aes_busy_cycles").add(mc.aes_busy_cycles());
    if (const util::HitRate* counters = mc.counter_hit_rate()) {
      registry.counter(prefix + "counter_hits").add(counters->hits);
      registry.counter(prefix + "counter_accesses").add(counters->total);
    }
  }
}

}  // namespace sealdl::telemetry
