#include "telemetry/metrics.hpp"

namespace sealdl::telemetry {

Counter& MetricsRegistry::counter(const std::string& name) {
  return counters_[name];
}

Gauge& MetricsRegistry::gauge(const std::string& name) { return gauges_[name]; }

util::Histogram& MetricsRegistry::histogram(const std::string& name, double lo,
                                            double hi, std::size_t buckets) {
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return it->second;
  return histograms_.emplace(name, util::Histogram(lo, hi, buckets)).first->second;
}

const Counter* MetricsRegistry::find_counter(const std::string& name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : &it->second;
}

const Gauge* MetricsRegistry::find_gauge(const std::string& name) const {
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : &it->second;
}

const util::Histogram* MetricsRegistry::find_histogram(
    const std::string& name) const {
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

void MetricsRegistry::merge_from(const MetricsRegistry& other) {
  // Confinement check only — the registry stays unlocked by design (see
  // header). Two threads merging into the same sink is a bug the byte-exact
  // determinism gate may never interleave; the auditor reports it directly.
  util::AccessGuard guard(merge_sentinel_);
  for (const auto& [name, counter] : other.counters_) {
    counters_[name].add(counter.value());
  }
  for (const auto& [name, gauge] : other.gauges_) {
    gauges_[name].add(gauge.value());
  }
  for (const auto& [name, hist] : other.histograms_) {
    const auto it = histograms_.find(name);
    if (it == histograms_.end()) {
      histograms_.emplace(name, hist);
    } else {
      it->second.merge(hist);
    }
  }
}

void MetricsRegistry::write_json(util::JsonWriter& json) const {
  json.begin_object();
  for (const auto& [name, counter] : counters_) json.field(name, counter.value());
  for (const auto& [name, gauge] : gauges_) json.field(name, gauge.value());
  for (const auto& [name, hist] : histograms_) {
    json.key(name).begin_object();
    json.field("count", hist.count());
    // Out-of-range mass clamps the percentiles to the histogram bounds
    // (Histogram::percentile contract); export the clamped-sample counts so
    // a saturated p99 is detectable from the report alone.
    json.field("underflow", hist.underflow());
    json.field("overflow", hist.overflow());
    json.field("p50", hist.percentile(50.0));
    json.field("p95", hist.percentile(95.0));
    json.field("p99", hist.percentile(99.0));
    json.end_object();
  }
  json.end_object();
}

}  // namespace sealdl::telemetry
