// Telemetry collection context for one run.
//
// Strictly opt-in: nothing in the simulator or workload layer allocates or
// records anything unless a RunTelemetry is attached (RunOptions::telemetry,
// GpuSimulator::set_sampler). With it absent, simulation results are
// cycle-identical to a build without telemetry at all — the same discipline
// as SEALDL_LOG.
#pragma once

#include <optional>
#include <vector>

#include "telemetry/metrics.hpp"
#include "telemetry/phase.hpp"
#include "telemetry/profiler.hpp"
#include "telemetry/sampler.hpp"

namespace sealdl::telemetry {

/// One request's lifecycle through the serving stack, as causally ordered
/// stages measured in cycles. The stages partition the end-to-end latency
/// exactly: backlog + queue + dispatch + execute == completion - arrival for
/// completed requests (the `profile.serve.stages` rule), because every stage
/// is a difference of the same timestamps the latency is computed from.
struct RequestSpanRecord {
  std::uint64_t id = 0;
  std::string network;            ///< served network name
  std::string outcome;            ///< "completed" | "dropped" | "shed"
  sim::Cycle arrival = 0;
  double backlog_cycles = 0.0;    ///< blocked outside the queue (block policy)
  double queue_cycles = 0.0;      ///< admission queue wait until dispatch
  double dispatch_cycles = 0.0;   ///< batch formation + launch overhead
  double execute_cycles = 0.0;    ///< simulated batch execution share
  std::uint64_t batch = 0;        ///< 1-based dispatch sequence (0 = none):
                                  ///< flow-event link to the batch span
  int device = -1;                ///< fleet device the request was served on
                                  ///< (stage-0 of its pipeline); -1 = n/a
};

struct TelemetryOptions {
  /// Cycles between time-series samples; 0 disables the sampler (per-layer
  /// records and component metrics are still collected).
  sim::Cycle sample_interval = 0;
  /// Upper bound on stored time-series samples (0 = unbounded). See
  /// IntervalSampler: exceeding the cap merges adjacent samples (2x
  /// decimation) so long runs keep bounded memory.
  std::size_t max_samples = 0;
  /// Enables the cycle-attribution profiler (telemetry/profiler.hpp): every
  /// simulated cycle of every component is bucketed into one category and
  /// reported per layer. Off by default; the disabled path costs one null
  /// check per run-loop iteration.
  bool profile = false;
};

class RunTelemetry {
 public:
  explicit RunTelemetry(TelemetryOptions options = {}) : options_(options) {
    if (options_.sample_interval) {
      sampler_.emplace(options_.sample_interval, options_.max_samples);
    }
  }

  [[nodiscard]] const TelemetryOptions& options() const { return options_; }

  MetricsRegistry& registry() { return registry_; }
  [[nodiscard]] const MetricsRegistry& registry() const { return registry_; }

  /// Null when sampling is disabled.
  IntervalSampler* sampler() { return sampler_ ? &*sampler_ : nullptr; }
  [[nodiscard]] const IntervalSampler* sampler() const {
    return sampler_ ? &*sampler_ : nullptr;
  }

  std::vector<LayerPhaseRecord>& layers() { return layers_; }
  [[nodiscard]] const std::vector<LayerPhaseRecord>& layers() const {
    return layers_;
  }

  /// Global position on the concatenated per-layer sim timeline; the network
  /// runner advances it by each layer's simulated cycles.
  [[nodiscard]] sim::Cycle timeline() const { return timeline_; }
  void advance_timeline(sim::Cycle cycles) { timeline_ += cycles; }

  /// Per-request lifecycle spans, filled by the serving loop when attached
  /// (serve::run_server). Exported as causally-linked Perfetto async spans.
  std::vector<RequestSpanRecord>& requests() { return requests_; }
  [[nodiscard]] const std::vector<RequestSpanRecord>& requests() const {
    return requests_;
  }

  /// True when the run should attach a CycleProfiler to each simulator.
  [[nodiscard]] bool profiling() const { return options_.profile; }
  /// Per-layer cycle attribution, filled in spec order by the runner when
  /// profiling() is on; empty otherwise.
  CycleProfile& profile() { return profile_; }
  [[nodiscard]] const CycleProfile& profile() const { return profile_; }

 private:
  TelemetryOptions options_;
  MetricsRegistry registry_;
  std::optional<IntervalSampler> sampler_;
  std::vector<LayerPhaseRecord> layers_;
  sim::Cycle timeline_ = 0;
  CycleProfile profile_;
  std::vector<RequestSpanRecord> requests_;
};

}  // namespace sealdl::telemetry
