// Telemetry collection context for one run.
//
// Strictly opt-in: nothing in the simulator or workload layer allocates or
// records anything unless a RunTelemetry is attached (RunOptions::telemetry,
// GpuSimulator::set_sampler). With it absent, simulation results are
// cycle-identical to a build without telemetry at all — the same discipline
// as SEALDL_LOG.
#pragma once

#include <optional>
#include <vector>

#include "telemetry/metrics.hpp"
#include "telemetry/phase.hpp"
#include "telemetry/sampler.hpp"

namespace sealdl::telemetry {

struct TelemetryOptions {
  /// Cycles between time-series samples; 0 disables the sampler (per-layer
  /// records and component metrics are still collected).
  sim::Cycle sample_interval = 0;
};

class RunTelemetry {
 public:
  explicit RunTelemetry(TelemetryOptions options = {}) : options_(options) {
    if (options_.sample_interval) sampler_.emplace(options_.sample_interval);
  }

  [[nodiscard]] const TelemetryOptions& options() const { return options_; }

  MetricsRegistry& registry() { return registry_; }
  [[nodiscard]] const MetricsRegistry& registry() const { return registry_; }

  /// Null when sampling is disabled.
  IntervalSampler* sampler() { return sampler_ ? &*sampler_ : nullptr; }
  [[nodiscard]] const IntervalSampler* sampler() const {
    return sampler_ ? &*sampler_ : nullptr;
  }

  std::vector<LayerPhaseRecord>& layers() { return layers_; }
  [[nodiscard]] const std::vector<LayerPhaseRecord>& layers() const {
    return layers_;
  }

  /// Global position on the concatenated per-layer sim timeline; the network
  /// runner advances it by each layer's simulated cycles.
  [[nodiscard]] sim::Cycle timeline() const { return timeline_; }
  void advance_timeline(sim::Cycle cycles) { timeline_ += cycles; }

 private:
  TelemetryOptions options_;
  MetricsRegistry registry_;
  std::optional<IntervalSampler> sampler_;
  std::vector<LayerPhaseRecord> layers_;
  sim::Cycle timeline_ = 0;
};

}  // namespace sealdl::telemetry
