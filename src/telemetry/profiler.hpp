// Cycle-attribution profiler for the accelerator simulator.
//
// When attached to a GpuSimulator (set_profiler, same discipline as the
// IntervalSampler: a null pointer costs one branch per run-loop iteration),
// the profiler partitions every simulated cycle of every component into
// exactly one category. The run loop advances in spans — one cycle normally,
// multi-cycle jumps when every SM is stalled and the simulator fast-forwards
// to the next memory event — and account() classifies each span per
// component from component state that is constant across the span:
//
//   sm{i}        compute_issue | mem_issue | barrier_wait | window_stall |
//                idle | drain
//   l2_slice{c}  hit_service | miss_wait | idle | drain
//   mc{c}        counter_traffic | crypto_service | dram_service | idle |
//                drain
//
// Memory-side busy windows are prefixes of the span (a reservation pipe is
// busy from `now` until its next_free cycle, and nothing re-schedules during
// a fast-forward), so the partition is computed exactly with three clamped
// prefix lengths and a fixed attribution priority: counter-cache traffic
// over AES over DRAM data service. A cycle both pipes are busy therefore
// lands in the higher-priority bucket — standard top-frame-wins profiler
// semantics, documented in docs/OBSERVABILITY.md.
//
// The hard invariant — per-component buckets sum to the component's total
// profiled cycles, and every component of a layer agrees on that total —
// holds by construction and is enforced by the `profile.*` rule family
// (verify/profile_checkers.hpp) on every profiled run.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/request.hpp"

namespace sealdl::sim {
class GpuSimulator;
}  // namespace sealdl::sim

namespace sealdl::util {
class JsonWriter;
}  // namespace sealdl::util

namespace sealdl::telemetry {

/// Attribution categories. One per cycle per component; the unused ones for
/// a component type stay zero (an SM never reports dram_service).
enum class CycleCat : std::uint8_t {
  kComputeIssue = 0,   ///< SM issued at least one op, none of them memory
  kMemIssue,           ///< SM issued at least one load/store
  kBarrierWait,        ///< SM blocked on a WaitLoads barrier (memory service)
  kWindowStall,        ///< SM blocked on the full per-SM load window
  kL2HitService,       ///< slice answering hits (latency window)
  kL2MissWait,         ///< slice holding pending MSHR fills
  kDramService,        ///< DRAM channel pipe busy with data lines
  kCryptoService,      ///< AES engine pipe busy (encrypt/decrypt/pad)
  kCounterTraffic,     ///< DRAM busy with counter-block fills/writebacks
  kIdle,               ///< nothing of the above
  kDrain,              ///< post-loop writeback drain tail
  kCount,
};

inline constexpr std::size_t kCycleCatCount =
    static_cast<std::size_t>(CycleCat::kCount);

/// Stable lowercase names used in the JSON profile and collapsed stacks.
const char* cycle_cat_name(CycleCat cat);

/// One component's exact cycle partition.
struct ComponentProfile {
  std::string name;  ///< "sm0", "l2_slice1", "mc0", ...
  std::array<std::uint64_t, kCycleCatCount> buckets{};
  /// Cycles this component was profiled for (== the layer's total).
  std::uint64_t total_cycles = 0;

  [[nodiscard]] std::uint64_t bucket(CycleCat cat) const {
    return buckets[static_cast<std::size_t>(cat)];
  }
  [[nodiscard]] std::uint64_t bucket_sum() const;
};

/// The cycle attribution of one simulated layer (or standalone run).
struct LayerCycleProfile {
  std::string layer;              ///< layer/workload name
  std::uint64_t total_cycles = 0; ///< == GpuSimulator finish cycle
  std::vector<ComponentProfile> components;

  /// Sums `cat` across components of one kind ("sm", "l2_slice", "mc").
  [[nodiscard]] std::uint64_t kind_bucket(const std::string& kind,
                                          CycleCat cat) const;

  /// Accumulates another profile over the same machine shape (component lists
  /// must match name for name). Used to fold tile-chunk waves of one layer
  /// into a single layer profile: buckets and totals add, so the conservation
  /// invariant (buckets sum to the component total, components agree on the
  /// total) is preserved — sums of conserved partitions are conserved.
  void merge_from(const LayerCycleProfile& other);
};

/// Whole-run profile: one entry per simulated layer, in run order.
struct CycleProfile {
  std::vector<LayerCycleProfile> layers;
  [[nodiscard]] bool empty() const { return layers.empty(); }
};

/// Span-by-span attribution engine. Create one per GpuSimulator run (it
/// caches per-SM counter snapshots), attach via set_profiler() before run(),
/// and harvest with take_profile() after.
class CycleProfiler {
 public:
  /// Classifies the span [now, next) from the simulator's post-tick state.
  /// Called once per run-loop iteration; O(SMs + channels).
  void account(const sim::GpuSimulator& simulator, sim::Cycle now,
               sim::Cycle next);

  /// Attributes the write-back drain tail [loop_end, finish) and fixes each
  /// component's total to `finish`. Must be called exactly once, after run().
  void finish(const sim::GpuSimulator& simulator, sim::Cycle loop_end,
              sim::Cycle finish);

  /// Moves the finished single-layer profile out (name filled by caller).
  [[nodiscard]] LayerCycleProfile take_profile();

 private:
  struct SmSnapshot {
    std::uint64_t instructions = 0;
    std::uint64_t mem_issued = 0;  ///< loads_issued + stores_issued
  };
  void ensure_components(const sim::GpuSimulator& simulator);
  void add(std::size_t component, CycleCat cat, std::uint64_t cycles) {
    profile_.components[component].buckets[static_cast<std::size_t>(cat)] +=
        cycles;
  }

  LayerCycleProfile profile_;
  std::vector<SmSnapshot> sm_prev_;
  bool initialized_ = false;
};

/// Writes the profile as one JSON array value (schema in
/// docs/OBSERVABILITY.md): [{"layer":..., "total_cycles":...,
/// "components":[{"name":...,"total_cycles":...,"buckets":{...}}]}].
/// Deterministic: category keys in enum order, zero buckets omitted.
void write_cycle_profile_json(util::JsonWriter& json,
                              const CycleProfile& profile);

/// write_cycle_profile_json as a standalone document.
std::string cycle_profile_json(const CycleProfile& profile);

/// Renders the profile in collapsed-stack ("folded") form, one line per
/// non-zero bucket: `workload;layer;component;category count`. The output
/// feeds standard flamegraph tooling (flamegraph.pl, speedscope, inferno)
/// unchanged.
std::string collapsed_stack(const std::string& workload,
                            const CycleProfile& profile);

}  // namespace sealdl::telemetry
