#include "telemetry/trace.hpp"

#include <set>

namespace sealdl::telemetry {

namespace {

/// Simulated cycles -> microseconds at the core clock (cycles/us = MHz).
double to_us(double cycles, const sim::GpuConfig& config) {
  return cycles / config.core_mhz;
}

void write_metadata(util::JsonWriter& json, const char* what, int pid, int tid,
                    const std::string& name) {
  json.begin_object();
  json.field("name", what);
  json.field("ph", "M");
  json.field("pid", pid);
  if (tid >= 0) json.field("tid", tid);
  json.key("args").begin_object().field("name", name).end_object();
  json.end_object();
}

void write_counter(util::JsonWriter& json, const char* track, double ts,
                   const char* series, double value) {
  json.begin_object();
  json.field("name", track);
  json.field("ph", "C");
  json.field("ts", ts);
  json.field("pid", 0);
  json.key("args").begin_object().field(series, value).end_object();
  json.end_object();
}

/// One async ("b"/"e") span on the request's own id-scoped track. All spans
/// of one request share its id, so Perfetto renders the lifecycle stages as
/// one causally ordered chain.
void write_async_span(util::JsonWriter& json, const std::string& name,
                      std::uint64_t id, double ts, double dur) {
  json.begin_object();
  json.field("name", name);
  json.field("cat", "request");
  json.field("ph", "b");
  json.field("id", id);
  json.field("ts", ts);
  json.field("pid", 0);
  json.field("tid", 1);
  json.end_object();
  json.begin_object();
  json.field("name", name);
  json.field("cat", "request");
  json.field("ph", "e");
  json.field("id", id);
  json.field("ts", ts + dur);
  json.field("pid", 0);
  json.field("tid", 1);
  json.end_object();
}

/// Flow start/finish pair ("s"/"f") linking a request's queue stage to the
/// batch span that executed it.
void write_flow(util::JsonWriter& json, const char* phase, std::uint64_t id,
                double ts) {
  json.begin_object();
  json.field("name", "dispatch");
  json.field("cat", "request");
  json.field("ph", phase);
  json.field("id", id);
  json.field("ts", ts);
  json.field("pid", 0);
  json.field("tid", 1);
  if (phase[0] == 'f') json.field("bp", "e");
  json.end_object();
}

/// Emits one request's lifecycle as causally-linked async spans: an
/// umbrella span over the whole life plus one child span per non-empty
/// stage, and a flow arrow from the end of the queue stage into the
/// dispatched batch.
void write_request_spans(util::JsonWriter& json,
                         const RequestSpanRecord& request,
                         const sim::GpuConfig& config) {
  const double arrival = static_cast<double>(request.arrival);
  const double total = request.backlog_cycles + request.queue_cycles +
                       request.dispatch_cycles + request.execute_cycles;
  const std::string label =
      "req" + std::to_string(request.id) + "/" + request.network;
  write_async_span(json, label + " [" + request.outcome + "]", request.id,
                   to_us(arrival, config), to_us(total, config));
  double at = arrival;
  const struct {
    const char* name;
    double cycles;
  } stages[] = {{"backlog", request.backlog_cycles},
                {"queue", request.queue_cycles},
                {"dispatch", request.dispatch_cycles},
                {"execute", request.execute_cycles}};
  for (const auto& stage : stages) {
    if (stage.cycles > 0.0) {
      write_async_span(json, stage.name, request.id, to_us(at, config),
                       to_us(stage.cycles, config));
    }
    at += stage.cycles;
  }
  if (request.batch != 0) {
    const double dispatch_at =
        arrival + request.backlog_cycles + request.queue_cycles;
    write_flow(json, "s", request.id, to_us(dispatch_at, config));
    write_flow(json, "f", request.id, to_us(dispatch_at, config));
  }
}

}  // namespace

std::string chrome_trace_json(const RunInfo& info, const sim::GpuConfig& config,
                              const RunTelemetry& telemetry) {
  util::JsonWriter json;
  json.begin_object();
  json.field("displayTimeUnit", "ms");
  json.key("traceEvents").begin_array();

  write_metadata(json, "process_name", 0, -1,
                 info.tool + ": " + info.workload + " / " + info.scheme);
  write_metadata(json, "thread_name", 0, 0, "layers");
  if (!telemetry.requests().empty()) {
    write_metadata(json, "thread_name", 0, 1, "requests");
  }
  // Device-bound serving spans render one named track per fleet device
  // (tid 2 + device); untagged records stay on the shared layers track.
  std::set<int> devices;
  for (const LayerPhaseRecord& layer : telemetry.layers()) {
    if (layer.device >= 0) devices.insert(layer.device);
  }
  for (const int device : devices) {
    write_metadata(json, "thread_name", 0, 2 + device,
                   "device" + std::to_string(device));
  }

  for (const LayerPhaseRecord& layer : telemetry.layers()) {
    json.begin_object();
    json.field("name", layer.name);
    json.field("cat", "layer");
    json.field("ph", "X");
    json.field("ts", to_us(static_cast<double>(layer.start_cycle), config));
    json.field("dur", to_us(static_cast<double>(layer.sim_cycles), config));
    json.field("pid", 0);
    json.field("tid", layer.device >= 0 ? 2 + layer.device : 0);
    json.key("args").begin_object();
    json.field("bound", bound_name(layer.bound));
    json.field("ipc", layer.ipc);
    json.field("dram_util", layer.dram_util);
    json.field("aes_util", layer.aes_util);
    json.field("encrypted_fraction", layer.encrypted_fraction);
    json.field("scale", layer.scale);
    json.end_object();
    json.end_object();
  }

  for (const RequestSpanRecord& request : telemetry.requests()) {
    write_request_spans(json, request, config);
  }

  if (const IntervalSampler* sampler = telemetry.sampler()) {
    for (const TimeSample& sample : sampler->samples()) {
      const double ts = to_us(static_cast<double>(sample.cycle), config);
      write_counter(json, "IPC", ts, "ipc", sample.ipc);
      write_counter(json, "DRAM utilization", ts, "util", sample.dram_util);
      write_counter(json, "AES utilization", ts, "util", sample.aes_util);
      write_counter(json, "DRAM bytes/interval", ts, "bytes",
                    static_cast<double>(sample.dram_bytes));
      write_counter(json, "Window-stalled warps", ts, "warps",
                    sample.window_waiters);
      write_counter(json, "Barrier-parked warps", ts, "warps",
                    sample.barrier_waiters);
    }
  }

  json.end_array();
  json.end_object();
  return json.str() + "\n";
}

}  // namespace sealdl::telemetry
