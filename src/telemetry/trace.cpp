#include "telemetry/trace.hpp"

namespace sealdl::telemetry {

namespace {

/// Simulated cycles -> microseconds at the core clock (cycles/us = MHz).
double to_us(double cycles, const sim::GpuConfig& config) {
  return cycles / config.core_mhz;
}

void write_metadata(util::JsonWriter& json, const char* what, int pid, int tid,
                    const std::string& name) {
  json.begin_object();
  json.field("name", what);
  json.field("ph", "M");
  json.field("pid", pid);
  if (tid >= 0) json.field("tid", tid);
  json.key("args").begin_object().field("name", name).end_object();
  json.end_object();
}

void write_counter(util::JsonWriter& json, const char* track, double ts,
                   const char* series, double value) {
  json.begin_object();
  json.field("name", track);
  json.field("ph", "C");
  json.field("ts", ts);
  json.field("pid", 0);
  json.key("args").begin_object().field(series, value).end_object();
  json.end_object();
}

}  // namespace

std::string chrome_trace_json(const RunInfo& info, const sim::GpuConfig& config,
                              const RunTelemetry& telemetry) {
  util::JsonWriter json;
  json.begin_object();
  json.field("displayTimeUnit", "ms");
  json.key("traceEvents").begin_array();

  write_metadata(json, "process_name", 0, -1,
                 info.tool + ": " + info.workload + " / " + info.scheme);
  write_metadata(json, "thread_name", 0, 0, "layers");

  for (const LayerPhaseRecord& layer : telemetry.layers()) {
    json.begin_object();
    json.field("name", layer.name);
    json.field("cat", "layer");
    json.field("ph", "X");
    json.field("ts", to_us(static_cast<double>(layer.start_cycle), config));
    json.field("dur", to_us(static_cast<double>(layer.sim_cycles), config));
    json.field("pid", 0);
    json.field("tid", 0);
    json.key("args").begin_object();
    json.field("bound", bound_name(layer.bound));
    json.field("ipc", layer.ipc);
    json.field("dram_util", layer.dram_util);
    json.field("aes_util", layer.aes_util);
    json.field("encrypted_fraction", layer.encrypted_fraction);
    json.field("scale", layer.scale);
    json.end_object();
    json.end_object();
  }

  if (const IntervalSampler* sampler = telemetry.sampler()) {
    for (const TimeSample& sample : sampler->samples()) {
      const double ts = to_us(static_cast<double>(sample.cycle), config);
      write_counter(json, "IPC", ts, "ipc", sample.ipc);
      write_counter(json, "DRAM utilization", ts, "util", sample.dram_util);
      write_counter(json, "AES utilization", ts, "util", sample.aes_util);
      write_counter(json, "DRAM bytes/interval", ts, "bytes",
                    static_cast<double>(sample.dram_bytes));
    }
  }

  json.end_array();
  json.end_object();
  return json.str() + "\n";
}

}  // namespace sealdl::telemetry
