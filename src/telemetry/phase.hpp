// Per-layer phase records: where did this layer's cycles go?
//
// Each simulated layer is summarized into one record carrying the raw
// volumes plus an AES-bound / DRAM-bound / compute-bound classification —
// the per-layer evidence behind the paper's §II-B argument (full encryption
// turns DRAM-bound layers AES-bound; Smart Encryption turns them back).
#pragma once

#include <string>

#include "sim/gpu_config.hpp"
#include "sim/sim_stats.hpp"

namespace sealdl::telemetry {

enum class Bound {
  kCompute,  ///< neither memory resource saturated; issue-limited
  kDram,     ///< DRAM bandwidth is the dominant saturated resource
  kAes,      ///< AES engine occupancy is the dominant saturated resource
};

const char* bound_name(Bound bound);

struct LayerPhaseRecord {
  std::string name;
  sim::Cycle start_cycle = 0;  ///< offset on the concatenated sim timeline
  sim::Cycle sim_cycles = 0;   ///< cycles of the simulated slice
  double scale = 1.0;          ///< full-layer cycles = sim_cycles * scale
  double full_cycles = 0.0;
  double ipc = 0.0;
  std::uint64_t thread_instructions = 0;
  std::uint64_t dram_bytes = 0;
  std::uint64_t encrypted_bytes = 0;
  std::uint64_t bypassed_bytes = 0;
  double encrypted_fraction = 0.0;  ///< encrypted / total DRAM bytes
  double dram_util = 0.0;
  double aes_util = 0.0;
  double l2_hit_rate = 0.0;
  Bound bound = Bound::kCompute;
  /// Global fleet device index executing this span; -1 = not device-bound
  /// (plain simulator layer records). Serving batch/stage spans set it so
  /// the Perfetto trace renders one track per device.
  int device = -1;
};

/// A resource above this average utilization is considered saturated.
inline constexpr double kBoundThreshold = 0.5;

/// Picks the dominant saturated resource (>= kBoundThreshold); compute-bound
/// when neither DRAM nor AES qualifies.
Bound classify_bound(double dram_util, double aes_util);

/// Builds the record for one simulated layer.
LayerPhaseRecord make_layer_record(const std::string& name,
                                   const sim::SimStats& stats,
                                   const sim::GpuConfig& config, double scale,
                                   sim::Cycle start_cycle);

}  // namespace sealdl::telemetry
