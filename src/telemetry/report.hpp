// Schema-stable JSON run report.
//
// Layout (schema_version 1, see docs/OBSERVABILITY.md):
//   { "schema_version": 1, "tool": ..., "workload": ..., "scheme": ...,
//     "seed": ..., "config": {...}, "aggregate": {...},
//     "layers": [ {...}, ... ], "series": [ {...}, ... ], "metrics": {...} }
//
// The document is deterministic: no timestamps, sorted metric names, fixed
// float formatting — two identical runs serialize byte-identically.
#pragma once

#include <string>

#include "sim/gpu_config.hpp"
#include "telemetry/telemetry.hpp"

namespace sealdl::telemetry {

/// Everything about a run that is not measured: identity and intent.
struct RunInfo {
  std::string tool = "sealdl-sim";
  std::string workload;  ///< e.g. "vgg16", "gemm-1024"
  std::string scheme;    ///< e.g. "seal-c"
  std::uint64_t seed = 0;
};

/// Serializes the full run report.
std::string run_report_json(const RunInfo& info, const sim::GpuConfig& config,
                            const RunTelemetry& telemetry);

/// Writes the modeled machine as one JSON object value (shared by the run
/// report's "config" key).
void write_config_json(util::JsonWriter& json, const sim::GpuConfig& config);

/// Writes `text` to `path`; throws std::runtime_error on I/O failure.
void write_text_file(const std::string& path, const std::string& text);

}  // namespace sealdl::telemetry
