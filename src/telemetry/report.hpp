// Schema-stable JSON run report.
//
// Layout (schema_version 2, see docs/OBSERVABILITY.md):
//   { "schema_version": 2, "tool": ..., "workload": ..., "scheme": ...,
//     "seed": ..., "provenance": {...}, "config": {...}, "aggregate": {...},
//     "layers": [ {...}, ... ], "series": [ {...}, ... ],
//     "profile": [ {...}, ... ], "metrics": {...} }
//
// The document is deterministic: no timestamps, sorted metric names, fixed
// float formatting — two identical runs serialize byte-identically. The
// provenance block is the one part that may legitimately differ between
// otherwise-identical runs (jobs, host cores); determinism gates that
// compare across job counts strip it first.
#pragma once

#include <string>
#include <vector>

#include "sim/gpu_config.hpp"
#include "telemetry/telemetry.hpp"

namespace sealdl::telemetry {

/// Build/run provenance stamped into every report: enough to answer "what
/// produced this file" without consulting the shell history.
struct Provenance {
  std::string version;               ///< tool version (SEALDL_VERSION_STRING)
  std::vector<std::string> schemes;  ///< scheme labels exercised by the run
  std::uint64_t config_hash = 0;     ///< FNV-1a of the serialized config
  int host_cores = 0;                ///< std::thread::hardware_concurrency
  int jobs = 0;                      ///< --jobs the run was invoked with
  /// Which simulator run loop produced the numbers: true = event-skipping
  /// fast path (the default), false = naive per-cycle reference
  /// (--no-fast-path). The two are bit-identical by contract, so this is a
  /// provenance fact, not a results caveat — recorded so a bench artifact
  /// says which loop its wall-clock timings measured.
  bool fast_path = true;
};

/// FNV-1a over the deterministic serialized config (write_config_json), so
/// two reports with equal hashes modeled the same machine.
[[nodiscard]] std::uint64_t config_fnv1a_hash(const sim::GpuConfig& config);

/// Fills every Provenance field: compiled-in version, detected host cores,
/// the config hash, plus the caller's scheme labels and job count.
[[nodiscard]] Provenance make_provenance(const sim::GpuConfig& config,
                                         int jobs,
                                         std::vector<std::string> schemes);

/// Writes one provenance object value.
void write_provenance_json(util::JsonWriter& json, const Provenance& prov);

/// Everything about a run that is not measured: identity and intent.
struct RunInfo {
  std::string tool = "sealdl-sim";
  std::string workload;  ///< e.g. "vgg16", "gemm-1024"
  std::string scheme;    ///< e.g. "seal-c"
  std::uint64_t seed = 0;
  Provenance provenance;  ///< fill via make_provenance()
};

/// Serializes the full run report.
std::string run_report_json(const RunInfo& info, const sim::GpuConfig& config,
                            const RunTelemetry& telemetry);

/// Writes the modeled machine as one JSON object value (shared by the run
/// report's "config" key).
void write_config_json(util::JsonWriter& json, const sim::GpuConfig& config);

/// Writes `text` to `path`; throws std::runtime_error on I/O failure.
void write_text_file(const std::string& path, const std::string& text);

}  // namespace sealdl::telemetry
