// Pulls per-component counters out of a finished GpuSimulator into a
// MetricsRegistry. Call after run(); repeated calls (one per simulated
// layer) accumulate, so a whole-network run yields network-total
// per-component metrics.
#pragma once

#include "sim/gpu_simulator.hpp"
#include "telemetry/metrics.hpp"

namespace sealdl::telemetry {

/// Metric names follow `component/metric`:
///   sm{i}/warp_instructions, sm{i}/compute_issued, sm{i}/loads_issued,
///   sm{i}/stores_issued, sm{i}/window_stalls, sm{i}/barrier_parks,
///   l2_slice{c}/hits, l2_slice{c}/accesses,
///   mc{c}/read_bytes, mc{c}/write_bytes, mc{c}/encrypted_bytes,
///   mc{c}/bypassed_bytes, mc{c}/counter_traffic_bytes,
///   mc{c}/dram_busy_cycles, mc{c}/aes_busy_cycles (gauges),
///   mc{c}/counter_hits, mc{c}/counter_accesses (counter mode only).
void collect_component_metrics(const sim::GpuSimulator& simulator,
                               MetricsRegistry& registry);

}  // namespace sealdl::telemetry
