// Named per-component metrics: counters, gauges, and latency histograms.
//
// The registry is the collection point the export sinks (JSON report,
// Perfetto trace) read from. Naming convention is `component/metric`, e.g.
// `sm3/loads_issued`, `l2_slice0/hits`, `mc2/aes_busy_cycles`; aggregate
// metrics omit the component prefix. Instruments are created on first use and
// accumulate across simulator instances (the network runner sums one
// registry over all simulated layers). Export order is lexicographic by
// name, so two identical runs serialize byte-identically.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "util/json.hpp"
#include "util/lock_audit.hpp"
#include "util/stats.hpp"

namespace sealdl::telemetry {

class Counter {
 public:
  void add(std::uint64_t n = 1) { value_ += n; }
  [[nodiscard]] std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

class Gauge {
 public:
  void set(double v) { value_ = v; }
  void add(double v) { value_ += v; }
  [[nodiscard]] double value() const { return value_; }

 private:
  double value_ = 0.0;
};

class MetricsRegistry {
 public:
  /// Returns the instrument named `name`, creating it on first use.
  /// References stay valid for the registry's lifetime.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// Histogram bounds are fixed by the first call for a given name;
  /// subsequent calls return the existing instance unchanged.
  util::Histogram& histogram(const std::string& name, double lo, double hi,
                             std::size_t buckets);

  /// Null when no instrument of that kind has the name.
  [[nodiscard]] const Counter* find_counter(const std::string& name) const;
  [[nodiscard]] const Gauge* find_gauge(const std::string& name) const;
  [[nodiscard]] const util::Histogram* find_histogram(const std::string& name) const;

  [[nodiscard]] std::size_t size() const {
    return counters_.size() + gauges_.size() + histograms_.size();
  }

  /// Folds another registry into this one: counters and histogram buckets
  /// add exactly (integers); gauges add. Parallel layer runs collect into a
  /// private registry per task, and the runner merges the fragments in spec
  /// order — each gauge then sees the same addends in the same order as a
  /// serial run, so even floating-point totals are bitwise-identical.
  /// Histogram fragments must be compatible() with any existing same-named
  /// histogram (std::invalid_argument otherwise).
  ///
  /// Thread-confinement contract: the registry is deliberately unlocked —
  /// a fragment belongs to exactly one task and the shared sink is merged
  /// from the submitting thread only. With the lock auditor on
  /// (SEALDL_LOCK_AUDIT, all test runs) concurrent merge_from calls on the
  /// same registry report a `lock.confined` finding instead of silently
  /// corrupting counts.
  void merge_from(const MetricsRegistry& other);

  /// Serializes all instruments as one JSON object value (name-sorted).
  /// Histograms export count plus p50/p95/p99.
  void write_json(util::JsonWriter& json) const;

 private:
  // std::map: reference stability plus the sorted order the exports rely on.
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, util::Histogram> histograms_;
  util::AccessSentinel merge_sentinel_{"telemetry.MetricsRegistry.merge"};
};

}  // namespace sealdl::telemetry
