// Interval sampling of simulator state into time series.
//
// The simulator polls due() once per simulated cycle (one branch when
// sampling is off because the pointer is null — the hot loop never reaches
// here) and, when a sample boundary is crossed, records the deltas since the
// previous sample. Whole-network runs simulate each layer in a fresh
// simulator starting at local cycle 0; begin_segment() re-bases the sampler
// so the series forms one concatenated timeline across layers.
//
// Header-only on purpose: src/sim includes this without linking the
// telemetry library (which itself links sealdl_sim for the export sinks).
#pragma once

#include <cstdint>
#include <vector>

#include "sim/request.hpp"
#include "util/lock_audit.hpp"

namespace sealdl::telemetry {

/// One point of the run time series. Rates are over the interval since the
/// previous sample (utilizations may transiently exceed 1.0 because the
/// reservation pipes book occupancy into the future).
struct TimeSample {
  sim::Cycle cycle = 0;        ///< global (concatenated) timeline position
  double ipc = 0.0;            ///< thread instructions per cycle
  double dram_util = 0.0;      ///< fraction of aggregate DRAM bandwidth
  double aes_util = 0.0;       ///< fraction of aggregate AES capacity
  std::uint64_t dram_bytes = 0;  ///< DRAM bytes moved in the interval
};

class IntervalSampler {
 public:
  explicit IntervalSampler(sim::Cycle interval)
      : interval_(interval ? interval : 1), next_local_(interval_) {}

  [[nodiscard]] sim::Cycle interval() const { return interval_; }

  /// True when `local_now` has crossed the next sample boundary.
  [[nodiscard]] bool due(sim::Cycle local_now) const {
    return local_now >= next_local_;
  }

  /// Appends a sample taken at local cycle `sample.cycle`; the stored point
  /// is shifted onto the global timeline.
  ///
  /// The sampler is thread-confined, not locked: a private sampler belongs
  /// to one simulating task and the shared series is spliced from the
  /// merging thread only. The AccessGuard turns a concurrent mutation into
  /// a `lock.confined` auditor finding in test builds (SEALDL_LOCK_AUDIT)
  /// instead of a silently reordered series.
  void record(TimeSample sample) {
    util::AccessGuard guard(sentinel_);
    next_local_ = sample.cycle + interval_;
    sample.cycle += offset_;
    samples_.push_back(sample);
  }

  /// Starts a new layer segment whose local cycle 0 sits at global
  /// `global_offset`.
  void begin_segment(sim::Cycle global_offset) {
    util::AccessGuard guard(sentinel_);
    offset_ = global_offset;
    next_local_ = interval_;
  }

  /// Appends already-recorded samples, shifting each onto the global
  /// timeline at `global_offset`. Parallel layer runs sample into a private
  /// per-task sampler (offset 0, so cycles stay layer-local) and the runner
  /// splices the segments back in spec order; the shift is the same integer
  /// addition record() performs, so the merged series is bitwise-identical
  /// to a serial run's.
  void append_shifted(const std::vector<TimeSample>& samples,
                      sim::Cycle global_offset) {
    util::AccessGuard guard(sentinel_);
    for (TimeSample sample : samples) {
      sample.cycle += global_offset;
      samples_.push_back(sample);
    }
  }

  [[nodiscard]] const std::vector<TimeSample>& samples() const {
    return samples_;
  }

 private:
  sim::Cycle interval_;
  sim::Cycle offset_ = 0;
  sim::Cycle next_local_;
  std::vector<TimeSample> samples_;
  util::AccessSentinel sentinel_{"telemetry.IntervalSampler"};
};

}  // namespace sealdl::telemetry
