// Interval sampling of simulator state into time series.
//
// The simulator polls due() once per simulated cycle (one branch when
// sampling is off because the pointer is null — the hot loop never reaches
// here) and, when a sample boundary is crossed, records the deltas since the
// previous sample. Whole-network runs simulate each layer in a fresh
// simulator starting at local cycle 0; begin_segment() re-bases the sampler
// so the series forms one concatenated timeline across layers.
//
// Header-only on purpose: src/sim includes this without linking the
// telemetry library (which itself links sealdl_sim for the export sinks).
#pragma once

#include <cstdint>
#include <vector>

#include "sim/request.hpp"
#include "util/lock_audit.hpp"

namespace sealdl::telemetry {

/// One point of the run time series. Rates are over the interval since the
/// previous sample (utilizations may transiently exceed 1.0 because the
/// reservation pipes book occupancy into the future).
struct TimeSample {
  sim::Cycle cycle = 0;        ///< global (concatenated) timeline position
  double ipc = 0.0;            ///< thread instructions per cycle
  double dram_util = 0.0;      ///< fraction of aggregate DRAM bandwidth
  double aes_util = 0.0;       ///< fraction of aggregate AES capacity
  std::uint64_t dram_bytes = 0;  ///< DRAM bytes moved in the interval
  /// Queue-occupancy/stall census at the sample instant (not interval
  /// averages): warps parked across all SMs. Doubles because decimation
  /// merges them with equal-weight averaging like the rate fields.
  double window_waiters = 0.0;   ///< warps stalled on a full load window
  double barrier_waiters = 0.0;  ///< warps parked on a WaitLoads barrier
};

class IntervalSampler {
 public:
  /// `max_samples` bounds the stored series (0 = unbounded). When the series
  /// would exceed the cap, adjacent samples are merged pairwise (2x
  /// decimation) and subsequent samples accumulate at the doubled stride, so
  /// memory stays O(max_samples) for arbitrarily long runs. Merged points
  /// keep the later cycle, sum dram_bytes, and average the rate fields with
  /// equal weight — exact for the nominal uniform cadence, an approximation
  /// for the short partial interval a run-end sample can close with.
  /// Decimation is a pure function of the pushed sample sequence, so capped
  /// output is deterministic and identical between the serial record() path
  /// and the parallel append_shifted() merge path. Caps below 2 are raised
  /// to 2.
  explicit IntervalSampler(sim::Cycle interval, std::size_t max_samples = 0)
      : interval_(interval ? interval : 1),
        next_local_(interval_),
        max_samples_(max_samples == 1 ? 2 : max_samples) {}

  [[nodiscard]] sim::Cycle interval() const { return interval_; }
  [[nodiscard]] std::size_t max_samples() const { return max_samples_; }
  /// Raw samples currently folded into each stored point (doubles on every
  /// decimation; 1 until the cap is first hit).
  [[nodiscard]] std::size_t stride() const { return stride_; }

  /// True when `local_now` has crossed the next sample boundary.
  [[nodiscard]] bool due(sim::Cycle local_now) const {
    return local_now >= next_local_;
  }

  /// Appends a sample taken at local cycle `sample.cycle`; the stored point
  /// is shifted onto the global timeline.
  ///
  /// The sampler is thread-confined, not locked: a private sampler belongs
  /// to one simulating task and the shared series is spliced from the
  /// merging thread only. The AccessGuard turns a concurrent mutation into
  /// a `lock.confined` auditor finding in test builds (SEALDL_LOCK_AUDIT)
  /// instead of a silently reordered series.
  void record(TimeSample sample) {
    util::AccessGuard guard(sentinel_);
    next_local_ = sample.cycle + interval_;
    sample.cycle += offset_;
    push(sample);
  }

  /// Starts a new layer segment whose local cycle 0 sits at global
  /// `global_offset`.
  void begin_segment(sim::Cycle global_offset) {
    util::AccessGuard guard(sentinel_);
    offset_ = global_offset;
    next_local_ = interval_;
  }

  /// Appends already-recorded samples, shifting each onto the global
  /// timeline at `global_offset`. Parallel layer runs sample into a private
  /// per-task sampler (offset 0, so cycles stay layer-local) and the runner
  /// splices the segments back in spec order; the shift is the same integer
  /// addition record() performs, so the merged series is bitwise-identical
  /// to a serial run's.
  void append_shifted(const std::vector<TimeSample>& samples,
                      sim::Cycle global_offset) {
    util::AccessGuard guard(sentinel_);
    for (TimeSample sample : samples) {
      sample.cycle += global_offset;
      push(sample);
    }
  }

  [[nodiscard]] const std::vector<TimeSample>& samples() const {
    return samples_;
  }

 private:
  /// Appends one raw sample to the stored series, honoring the cap. Raw
  /// samples accumulate into `acc_` until `stride_` of them merge into one
  /// stored point; hitting the cap merges the stored series pairwise and
  /// doubles the stride. Decimation fires right after a flush, so `acc_` is
  /// empty then — an odd leftover stored point is demoted back into `acc_`
  /// as half of a pending new-stride point, keeping the series uniform.
  void push(const TimeSample& sample) {
    if (max_samples_ == 0) {
      samples_.push_back(sample);
      return;
    }
    acc_.cycle = sample.cycle;
    acc_.ipc += sample.ipc;
    acc_.dram_util += sample.dram_util;
    acc_.aes_util += sample.aes_util;
    acc_.dram_bytes += sample.dram_bytes;
    acc_.window_waiters += sample.window_waiters;
    acc_.barrier_waiters += sample.barrier_waiters;
    if (++acc_count_ < stride_) return;
    const double n = static_cast<double>(acc_count_);
    acc_.ipc /= n;
    acc_.dram_util /= n;
    acc_.aes_util /= n;
    acc_.window_waiters /= n;
    acc_.barrier_waiters /= n;
    samples_.push_back(acc_);
    acc_ = TimeSample{};
    acc_count_ = 0;
    if (samples_.size() >= max_samples_) decimate();
  }

  void decimate() {
    std::size_t out = 0;
    std::size_t i = 0;
    for (; i + 1 < samples_.size(); i += 2) {
      const TimeSample& a = samples_[i];
      const TimeSample& b = samples_[i + 1];
      TimeSample merged;
      merged.cycle = b.cycle;
      merged.ipc = (a.ipc + b.ipc) / 2.0;
      merged.dram_util = (a.dram_util + b.dram_util) / 2.0;
      merged.aes_util = (a.aes_util + b.aes_util) / 2.0;
      merged.dram_bytes = a.dram_bytes + b.dram_bytes;
      merged.window_waiters = (a.window_waiters + b.window_waiters) / 2.0;
      merged.barrier_waiters = (a.barrier_waiters + b.barrier_waiters) / 2.0;
      samples_[out++] = merged;
    }
    if (i < samples_.size()) {
      // Odd tail: pre-scale its rates so the flush division by the doubled
      // stride reconstructs the correct equal-weight mean.
      const TimeSample& tail = samples_[i];
      acc_.cycle = tail.cycle;
      acc_.ipc = tail.ipc * static_cast<double>(stride_);
      acc_.dram_util = tail.dram_util * static_cast<double>(stride_);
      acc_.aes_util = tail.aes_util * static_cast<double>(stride_);
      acc_.dram_bytes = tail.dram_bytes;
      acc_.window_waiters = tail.window_waiters * static_cast<double>(stride_);
      acc_.barrier_waiters =
          tail.barrier_waiters * static_cast<double>(stride_);
      acc_count_ = stride_;
    }
    samples_.resize(out);
    stride_ *= 2;
  }

  sim::Cycle interval_;
  sim::Cycle offset_ = 0;
  sim::Cycle next_local_;
  std::size_t max_samples_ = 0;
  std::size_t stride_ = 1;
  std::size_t acc_count_ = 0;
  TimeSample acc_;
  std::vector<TimeSample> samples_;
  util::AccessSentinel sentinel_{"telemetry.IntervalSampler"};
};

}  // namespace sealdl::telemetry
