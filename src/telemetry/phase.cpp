#include "telemetry/phase.hpp"

namespace sealdl::telemetry {

const char* bound_name(Bound bound) {
  switch (bound) {
    case Bound::kCompute:
      return "compute-bound";
    case Bound::kDram:
      return "dram-bound";
    case Bound::kAes:
      return "aes-bound";
  }
  return "?";
}

Bound classify_bound(double dram_util, double aes_util) {
  if (aes_util >= kBoundThreshold && aes_util >= dram_util) return Bound::kAes;
  if (dram_util >= kBoundThreshold) return Bound::kDram;
  return Bound::kCompute;
}

LayerPhaseRecord make_layer_record(const std::string& name,
                                   const sim::SimStats& stats,
                                   const sim::GpuConfig& config, double scale,
                                   sim::Cycle start_cycle) {
  LayerPhaseRecord record;
  record.name = name;
  record.start_cycle = start_cycle;
  record.sim_cycles = stats.cycles;
  record.scale = scale;
  record.full_cycles = static_cast<double>(stats.cycles) * scale;
  record.ipc = stats.ipc();
  record.thread_instructions = stats.thread_instructions;
  record.dram_bytes = stats.dram_bytes();
  record.encrypted_bytes = stats.encrypted_bytes;
  record.bypassed_bytes = stats.bypassed_bytes;
  record.encrypted_fraction = stats.encrypted_fraction();
  record.dram_util = dram_utilization(stats, config);
  record.aes_util = aes_utilization(stats, config);
  record.l2_hit_rate = stats.l2_hit_rate();
  record.bound = classify_bound(record.dram_util, record.aes_util);
  return record;
}

}  // namespace sealdl::telemetry
