#include "telemetry/profiler.hpp"

#include <algorithm>
#include <cstddef>
#include <stdexcept>

#include "sim/gpu_simulator.hpp"
#include "util/json.hpp"

namespace sealdl::telemetry {

namespace {

/// Length of the prefix of the span [now, now + span) that a busy window
/// ending at `busy_until` covers. Exact because every memory-side busy
/// window starts at or before `now` (see the header contract).
std::uint64_t busy_prefix(sim::Cycle busy_until, sim::Cycle now,
                          std::uint64_t span) {
  if (busy_until <= now) return 0;
  return std::min<std::uint64_t>(busy_until - now, span);
}

}  // namespace

const char* cycle_cat_name(CycleCat cat) {
  switch (cat) {
    case CycleCat::kComputeIssue: return "compute_issue";
    case CycleCat::kMemIssue: return "mem_issue";
    case CycleCat::kBarrierWait: return "barrier_wait";
    case CycleCat::kWindowStall: return "window_stall";
    case CycleCat::kL2HitService: return "l2_hit_service";
    case CycleCat::kL2MissWait: return "l2_miss_wait";
    case CycleCat::kDramService: return "dram_service";
    case CycleCat::kCryptoService: return "crypto_service";
    case CycleCat::kCounterTraffic: return "counter_traffic";
    case CycleCat::kIdle: return "idle";
    case CycleCat::kDrain: return "drain";
    case CycleCat::kCount: break;
  }
  return "unknown";
}

std::uint64_t ComponentProfile::bucket_sum() const {
  std::uint64_t sum = 0;
  for (const std::uint64_t b : buckets) sum += b;
  return sum;
}

std::uint64_t LayerCycleProfile::kind_bucket(const std::string& kind,
                                             CycleCat cat) const {
  std::uint64_t sum = 0;
  for (const ComponentProfile& comp : components) {
    if (comp.name.size() <= kind.size()) continue;
    if (comp.name.compare(0, kind.size(), kind) != 0) continue;
    const char next = comp.name[kind.size()];
    if (next < '0' || next > '9') continue;  // "sm" must not match "sm_foo"
    sum += comp.bucket(cat);
  }
  return sum;
}

void LayerCycleProfile::merge_from(const LayerCycleProfile& other) {
  if (components.empty()) {
    components = other.components;
    total_cycles += other.total_cycles;
    return;
  }
  if (components.size() != other.components.size()) {
    throw std::invalid_argument(
        "LayerCycleProfile::merge_from: component count mismatch");
  }
  total_cycles += other.total_cycles;
  for (std::size_t i = 0; i < components.size(); ++i) {
    ComponentProfile& mine = components[i];
    const ComponentProfile& theirs = other.components[i];
    if (mine.name != theirs.name) {
      throw std::invalid_argument(
          "LayerCycleProfile::merge_from: component name mismatch");
    }
    mine.total_cycles += theirs.total_cycles;
    for (std::size_t b = 0; b < kCycleCatCount; ++b) {
      mine.buckets[b] += theirs.buckets[b];
    }
  }
}

void CycleProfiler::ensure_components(const sim::GpuSimulator& simulator) {
  if (initialized_) return;
  initialized_ = true;
  const int num_sms = simulator.num_sms();
  const int channels = simulator.num_channels();
  profile_.components.reserve(
      static_cast<std::size_t>(num_sms + 2 * channels));
  for (int i = 0; i < num_sms; ++i) {
    profile_.components.push_back({"sm" + std::to_string(i), {}, 0});
  }
  for (int c = 0; c < channels; ++c) {
    profile_.components.push_back({"l2_slice" + std::to_string(c), {}, 0});
  }
  for (int c = 0; c < channels; ++c) {
    profile_.components.push_back({"mc" + std::to_string(c), {}, 0});
  }
  sm_prev_.assign(static_cast<std::size_t>(num_sms), SmSnapshot{});
}

void CycleProfiler::account(const sim::GpuSimulator& simulator, sim::Cycle now,
                            sim::Cycle next) {
  ensure_components(simulator);
  if (next <= now) return;
  const std::uint64_t span = next - now;

  // SMs: a multi-cycle span only happens when no SM issued, so issue
  // categories always cover exactly one cycle; wait-state censuses are
  // constant across the span by construction of the fast-forward.
  const int num_sms = simulator.num_sms();
  for (int i = 0; i < num_sms; ++i) {
    const sim::SmCore& sm = simulator.sm(i);
    SmSnapshot& prev = sm_prev_[static_cast<std::size_t>(i)];
    const std::uint64_t instructions = sm.warp_instructions();
    const std::uint64_t mem_issued = sm.loads_issued() + sm.stores_issued();
    CycleCat cat;
    if (instructions != prev.instructions) {
      cat = mem_issued != prev.mem_issued ? CycleCat::kMemIssue
                                          : CycleCat::kComputeIssue;
    } else if (sm.window_waiters() > 0) {
      cat = CycleCat::kWindowStall;
    } else if (sm.barrier_waiters() > 0) {
      cat = CycleCat::kBarrierWait;
    } else {
      cat = CycleCat::kIdle;
    }
    add(static_cast<std::size_t>(i), cat, span);
    prev = {instructions, mem_issued};
  }

  const int channels = simulator.num_channels();
  const std::size_t l2_base = static_cast<std::size_t>(num_sms);
  const std::size_t mc_base = l2_base + static_cast<std::size_t>(channels);
  for (int c = 0; c < channels; ++c) {
    const sim::L2Slice& slice = simulator.l2_slice(c);
    const std::uint64_t hit = busy_prefix(slice.hit_busy_until(), now, span);
    const std::uint64_t miss =
        slice.has_pending_fills() ? span - hit : 0;
    const std::size_t l2 = l2_base + static_cast<std::size_t>(c);
    add(l2, CycleCat::kL2HitService, hit);
    add(l2, CycleCat::kL2MissWait, miss);
    add(l2, CycleCat::kIdle, span - hit - miss);

    // Memory controller: three nested busy prefixes with top-frame-wins
    // priority counter_traffic > crypto > dram data service.
    const sim::MemoryController& mc = simulator.controller(c);
    const std::uint64_t m1 = busy_prefix(mc.counter_busy_until(), now, span);
    const std::uint64_t m2 =
        std::max(m1, busy_prefix(mc.aes_busy_until(), now, span));
    const std::uint64_t m3 =
        std::max(m2, busy_prefix(mc.dram_busy_until(), now, span));
    const std::size_t idx = mc_base + static_cast<std::size_t>(c);
    add(idx, CycleCat::kCounterTraffic, m1);
    add(idx, CycleCat::kCryptoService, m2 - m1);
    add(idx, CycleCat::kDramService, m3 - m2);
    add(idx, CycleCat::kIdle, span - m3);
  }
}

void CycleProfiler::finish(const sim::GpuSimulator& simulator,
                           sim::Cycle loop_end, sim::Cycle finish) {
  ensure_components(simulator);  // degenerate zero-cycle runs still report
  const int num_sms = simulator.num_sms();
  const int channels = simulator.num_channels();
  if (finish > loop_end) {
    const std::uint64_t tail = finish - loop_end;
    for (int i = 0; i < num_sms; ++i) {
      add(static_cast<std::size_t>(i), CycleCat::kDrain, tail);
    }
    const std::size_t l2_base = static_cast<std::size_t>(num_sms);
    const std::size_t mc_base = l2_base + static_cast<std::size_t>(channels);
    for (int c = 0; c < channels; ++c) {
      add(l2_base + static_cast<std::size_t>(c), CycleCat::kDrain, tail);
      // The drain traffic itself (counter-cache flush writebacks) keeps its
      // attribution; only the quiet remainder of the tail becomes drain.
      const sim::MemoryController& mc = simulator.controller(c);
      const std::uint64_t m1 =
          busy_prefix(mc.counter_busy_until(), loop_end, tail);
      const std::uint64_t m2 =
          std::max(m1, busy_prefix(mc.aes_busy_until(), loop_end, tail));
      const std::uint64_t m3 =
          std::max(m2, busy_prefix(mc.dram_busy_until(), loop_end, tail));
      const std::size_t idx = mc_base + static_cast<std::size_t>(c);
      add(idx, CycleCat::kCounterTraffic, m1);
      add(idx, CycleCat::kCryptoService, m2 - m1);
      add(idx, CycleCat::kDramService, m3 - m2);
      add(idx, CycleCat::kDrain, tail - m3);
    }
  }
  profile_.total_cycles = finish;
  for (ComponentProfile& comp : profile_.components) {
    comp.total_cycles = finish;
  }
}

LayerCycleProfile CycleProfiler::take_profile() {
  LayerCycleProfile out = std::move(profile_);
  profile_ = {};
  sm_prev_.clear();
  initialized_ = false;
  return out;
}

void write_cycle_profile_json(util::JsonWriter& json,
                              const CycleProfile& profile) {
  json.begin_array();
  for (const LayerCycleProfile& layer : profile.layers) {
    json.begin_object();
    json.field("layer", std::string_view(layer.layer));
    json.field("total_cycles", layer.total_cycles);
    json.key("components").begin_array();
    for (const ComponentProfile& comp : layer.components) {
      json.begin_object();
      json.field("name", std::string_view(comp.name));
      json.field("total_cycles", comp.total_cycles);
      json.key("buckets").begin_object();
      for (std::size_t cat = 0; cat < kCycleCatCount; ++cat) {
        if (comp.buckets[cat] == 0) continue;
        json.field(cycle_cat_name(static_cast<CycleCat>(cat)),
                   comp.buckets[cat]);
      }
      json.end_object();
      json.end_object();
    }
    json.end_array();
    json.end_object();
  }
  json.end_array();
}

std::string cycle_profile_json(const CycleProfile& profile) {
  util::JsonWriter json;
  write_cycle_profile_json(json, profile);
  return json.str();
}

std::string collapsed_stack(const std::string& workload,
                            const CycleProfile& profile) {
  std::string out;
  for (const LayerCycleProfile& layer : profile.layers) {
    for (const ComponentProfile& comp : layer.components) {
      for (std::size_t cat = 0; cat < kCycleCatCount; ++cat) {
        if (comp.buckets[cat] == 0) continue;
        out += workload;
        out += ';';
        out += layer.layer;
        out += ';';
        out += comp.name;
        out += ';';
        out += cycle_cat_name(static_cast<CycleCat>(cat));
        out += ' ';
        out += std::to_string(comp.buckets[cat]);
        out += '\n';
      }
    }
  }
  return out;
}

}  // namespace sealdl::telemetry
