// Chrome trace-event ("traceEvents") emitter, loadable in Perfetto
// (https://ui.perfetto.dev) and chrome://tracing.
//
// The trace shows one "layers" thread of complete ("X") spans — one per
// simulated layer, annotated with its boundedness classification — plus
// counter ("C") tracks for IPC, DRAM utilization, AES utilization, and DRAM
// bytes per interval when time-series sampling was enabled. Timestamps are
// microseconds of simulated time at the configured core clock.
#pragma once

#include <string>

#include "sim/gpu_config.hpp"
#include "telemetry/report.hpp"

namespace sealdl::telemetry {

std::string chrome_trace_json(const RunInfo& info, const sim::GpuConfig& config,
                              const RunTelemetry& telemetry);

}  // namespace sealdl::telemetry
