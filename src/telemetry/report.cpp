#include "telemetry/report.hpp"

#include <cstdio>
#include <stdexcept>
#include <thread>
#include <utility>

#include "telemetry/profiler.hpp"
#include "util/logging.hpp"

#ifndef SEALDL_VERSION_STRING
#define SEALDL_VERSION_STRING "0.0.0-dev"
#endif

namespace sealdl::telemetry {

std::uint64_t config_fnv1a_hash(const sim::GpuConfig& config) {
  util::JsonWriter json;
  write_config_json(json, config);
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (const char c : json.str()) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

Provenance make_provenance(const sim::GpuConfig& config, int jobs,
                           std::vector<std::string> schemes) {
  Provenance prov;
  prov.version = SEALDL_VERSION_STRING;
  prov.schemes = std::move(schemes);
  prov.config_hash = config_fnv1a_hash(config);
  prov.host_cores = static_cast<int>(std::thread::hardware_concurrency());
  prov.jobs = jobs;
  return prov;
}

void write_provenance_json(util::JsonWriter& json, const Provenance& prov) {
  json.begin_object();
  json.field("version", prov.version);
  json.key("schemes").begin_array();
  for (const std::string& scheme : prov.schemes) json.value(scheme);
  json.end_array();
  json.field("config_hash", prov.config_hash);
  json.field("host_cores", prov.host_cores);
  json.field("jobs", prov.jobs);
  json.field("fast_path", prov.fast_path);
  json.end_object();
}

void write_config_json(util::JsonWriter& json, const sim::GpuConfig& config) {
  json.begin_object();
  json.field("scheme", sim::scheme_name(config.scheme));
  json.field("selective", config.selective);
  json.field("num_sms", config.num_sms);
  json.field("warps_per_sm", config.warps_per_sm);
  json.field("warp_size", config.warp_size);
  json.field("issue_width", config.issue_width);
  json.field("line_bytes", config.line_bytes);
  json.field("l2_slice_kb", config.l2_slice_kb);
  json.field("num_channels", config.num_channels);
  json.field("dram_total_gbps", config.dram_total_gbps);
  json.field("dram_efficiency", config.dram_efficiency);
  json.field("core_mhz", config.core_mhz);
  json.field("engine", config.engine.name);
  json.field("engine_gbps", config.engine.throughput_gbps);
  json.field("engine_latency_cycles", config.engine.latency_cycles);
  json.field("engines_per_controller", config.engines_per_controller);
  json.field("counter_cache_kb", config.counter_cache_kb);
  json.field("split_counters", config.split_counters);
  json.field("peak_ipc", config.peak_ipc());
  json.end_object();
}

namespace {

void write_layer_json(util::JsonWriter& json, const LayerPhaseRecord& layer) {
  json.begin_object();
  json.field("name", layer.name);
  json.field("start_cycle", static_cast<std::uint64_t>(layer.start_cycle));
  json.field("sim_cycles", static_cast<std::uint64_t>(layer.sim_cycles));
  json.field("scale", layer.scale);
  json.field("full_cycles", layer.full_cycles);
  json.field("ipc", layer.ipc);
  json.field("thread_instructions", layer.thread_instructions);
  json.field("dram_bytes", layer.dram_bytes);
  json.field("encrypted_bytes", layer.encrypted_bytes);
  json.field("bypassed_bytes", layer.bypassed_bytes);
  json.field("encrypted_fraction", layer.encrypted_fraction);
  json.field("dram_util", layer.dram_util);
  json.field("aes_util", layer.aes_util);
  json.field("l2_hit_rate", layer.l2_hit_rate);
  json.field("bound", bound_name(layer.bound));
  // Fleet device executing this span; absent for plain simulator layers so
  // pre-fleet reports keep their exact shape.
  if (layer.device >= 0) json.field("device", layer.device);
  json.end_object();
}

void write_aggregate_json(util::JsonWriter& json, const RunTelemetry& telemetry) {
  // Whole-run view derived from the per-layer records, matching
  // NetworkResult::total_cycles()/overall_ipc().
  std::uint64_t sim_cycles = 0, dram_bytes = 0, encrypted_bytes = 0;
  double full_cycles = 0.0, scaled_instructions = 0.0;
  for (const LayerPhaseRecord& layer : telemetry.layers()) {
    sim_cycles += layer.sim_cycles;
    dram_bytes += layer.dram_bytes;
    encrypted_bytes += layer.encrypted_bytes;
    full_cycles += layer.full_cycles;
    scaled_instructions +=
        static_cast<double>(layer.thread_instructions) * layer.scale;
  }
  json.begin_object();
  json.field("layers", static_cast<std::uint64_t>(telemetry.layers().size()));
  json.field("sim_cycles", sim_cycles);
  json.field("full_cycles", full_cycles);
  json.field("overall_ipc", full_cycles ? scaled_instructions / full_cycles : 0.0);
  json.field("dram_bytes", dram_bytes);
  json.field("encrypted_bytes", encrypted_bytes);
  json.field("encrypted_fraction",
             dram_bytes ? static_cast<double>(encrypted_bytes) /
                              static_cast<double>(dram_bytes)
                        : 0.0);
  json.end_object();
}

}  // namespace

std::string run_report_json(const RunInfo& info, const sim::GpuConfig& config,
                            const RunTelemetry& telemetry) {
  util::JsonWriter json;
  json.begin_object();
  json.field("schema_version", std::uint64_t{2});
  json.field("tool", info.tool);
  json.field("workload", info.workload);
  json.field("scheme", info.scheme);
  json.field("seed", info.seed);
  json.key("provenance");
  write_provenance_json(json, info.provenance);
  json.key("config");
  write_config_json(json, config);
  json.key("aggregate");
  write_aggregate_json(json, telemetry);

  json.key("layers").begin_array();
  for (const LayerPhaseRecord& layer : telemetry.layers()) {
    write_layer_json(json, layer);
  }
  json.end_array();

  json.key("series").begin_array();
  if (const IntervalSampler* sampler = telemetry.sampler()) {
    for (const TimeSample& sample : sampler->samples()) {
      json.begin_object();
      json.field("cycle", static_cast<std::uint64_t>(sample.cycle));
      json.field("ipc", sample.ipc);
      json.field("dram_util", sample.dram_util);
      json.field("aes_util", sample.aes_util);
      json.field("dram_bytes", sample.dram_bytes);
      json.field("window_waiters", sample.window_waiters);
      json.field("barrier_waiters", sample.barrier_waiters);
      json.end_object();
    }
  }
  json.end_array();

  json.key("profile");
  write_cycle_profile_json(json, telemetry.profile());

  json.key("metrics");
  telemetry.registry().write_json(json);
  json.end_object();
  return json.str() + "\n";
}

void write_text_file(const std::string& path, const std::string& text) {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (!file) throw std::runtime_error("cannot open " + path + " for writing");
  const std::size_t written = std::fwrite(text.data(), 1, text.size(), file);
  const int close_err = std::fclose(file);
  if (written != text.size() || close_err != 0) {
    throw std::runtime_error("short write to " + path);
  }
  SEALDL_INFO << "wrote " << text.size() << " bytes to " << path;
}

}  // namespace sealdl::telemetry
