#include "sim/l2_slice.hpp"

#include <algorithm>

namespace sealdl::sim {

L2Slice::L2Slice(const GpuConfig& config, MemoryController* controller)
    : config_(config),
      controller_(controller),
      cache_(static_cast<std::size_t>(config.l2_slice_kb) * 1024, config.l2_assoc,
             config.line_bytes) {}

L2ReadResult L2Slice::read(Cycle now, Addr addr, Waiter waiter, Cycle* fill_ready) {
  const auto lookup = cache_.access(addr, /*mark_dirty=*/false);
  if (lookup.hit) {
    const Cycle ready = now + static_cast<Cycle>(config_.l2_latency);
    hit_busy_until_ = std::max(hit_busy_until_, ready);
    return {true, ready, false};
  }
  auto [it, inserted] = mshr_.try_emplace(addr);
  it->second.push_back(waiter);
  if (!inserted) {
    return {false, 0, true};  // merged into in-flight fill
  }
  *fill_ready =
      controller_->read_line(now + static_cast<Cycle>(config_.l2_latency), addr);
  return {false, 0, false};
}

void L2Slice::write(Cycle now, Addr addr) {
  const auto lookup = cache_.access(addr, /*mark_dirty=*/true);
  if (lookup.hit) return;
  if (mshr_.count(addr)) {
    // A fill is racing with this full-line store; install the line now so the
    // store lands, and let complete_fill() detect the line is present.
    const auto insert = cache_.insert(addr, /*dirty=*/true);
    if (insert.writeback) {
      controller_->write_line(now + static_cast<Cycle>(config_.l2_latency),
                              *insert.writeback);
    }
    return;
  }
  // Full-line store: allocate without a read-for-ownership fill.
  const auto insert = cache_.insert(addr, /*dirty=*/true);
  if (insert.writeback) {
    controller_->write_line(now + static_cast<Cycle>(config_.l2_latency),
                            *insert.writeback);
  }
}

std::vector<Waiter> L2Slice::complete_fill(Cycle now, Addr addr) {
  auto it = mshr_.find(addr);
  std::vector<Waiter> waiters;
  if (it != mshr_.end()) {
    waiters = std::move(it->second);
    mshr_.erase(it);
  }
  if (!cache_.contains(addr)) {
    const auto insert = cache_.insert(addr, /*dirty=*/false);
    if (insert.writeback) controller_->write_line(now, *insert.writeback);
  }
  return waiters;
}

void L2Slice::flush(Cycle now) {
  for (const Addr victim : cache_.flush_dirty()) {
    controller_->write_line(now, victim);
  }
}

}  // namespace sealdl::sim
