// Basic units exchanged between simulator components.
#pragma once

#include <cstdint>

namespace sealdl::sim {

using Cycle = std::uint64_t;
using Addr = std::uint64_t;

/// One warp-level operation produced by a workload trace generator.
///
/// Loads/stores are line-granular (the generator performs coalescing: one
/// 32-thread access to 32 consecutive words is one 128-byte line).
struct WarpOp {
  enum class Kind : std::uint8_t {
    kLoad,       ///< non-blocking line load; counts as 1 warp instruction
    kStore,      ///< posted line store; counts as 1 warp instruction
    kCompute,    ///< `count` back-to-back ALU warp instructions
    kWaitLoads,  ///< stall until at most `count` of this warp's loads remain
                 ///< outstanding (count = 0 is a full barrier; a nonzero
                 ///< threshold expresses double-buffered prefetching)
  };
  Kind kind = Kind::kCompute;
  Addr addr = 0;            ///< for kLoad / kStore
  std::uint32_t count = 1;  ///< for kCompute / kWaitLoads
};

/// A memory request traveling from an SM toward the memory system.
struct MemRequest {
  Addr addr = 0;        ///< line-aligned byte address
  bool is_write = false;
  int sm_id = -1;       ///< requester (loads only; -1 for writebacks)
  int warp_id = -1;
};

}  // namespace sealdl::sim
