// One GDDR5 channel's memory controller, with an optional in-line AES engine
// and (for counter-family schemes) an on-chip counter cache.
//
// Timing is modeled by resource reservation (see sim/pipes.hpp): the
// controller books occupancy on its DRAM channel pipe and AES pipe and
// reports the completion cycle of each read. Writes are posted — they consume
// bandwidth but nobody waits for them.
//
// The *shape* of the secure dataflow — how a protected line's DRAM service,
// AES work, and metadata fetch serialize — is not hard-wired here: it lives
// in the SchemeModel resolved from the config (sim/scheme_registry.hpp), and
// the controller implements SchemeModel::Host to lend the model its pipes
// and counter cache. For the paper's schemes that means:
//   Direct  read : DRAM -> AES decrypt (serial)      write: AES -> DRAM
//   Counter read : DRAM || (counter fetch -> AES pad), XOR   write: same pads
// On a counter-cache hit the pad generation overlaps the data fetch, so
// counter mode hides AES latency but still pays AES occupancy (bandwidth) and
// extra DRAM traffic for counter-block fills/writebacks — the reason the paper
// finds Counter no faster than Direct on a bandwidth-starved GPU (§II-B).
#pragma once

#include <cmath>
#include <cstdint>
#include <optional>

#include "sim/cache.hpp"
#include "sim/gpu_config.hpp"
#include "sim/pipes.hpp"
#include "sim/request.hpp"
#include "sim/scheme_model.hpp"
#include "sim/secure_map.hpp"
#include "sim/sim_stats.hpp"

namespace sealdl::sim {

class BusProbe;

/// Counter blocks live in a reserved high region of the physical address
/// space, far above any SecureHeap allocation (see core/secure_heap.hpp).
/// Exposed so bus-traffic auditors can classify counter-metadata transfers
/// by address alone.
inline constexpr Addr kCounterRegionBase = 0x4000'0000'0000ULL;

class MemoryController : private SchemeModel::Host {
 public:
  MemoryController(const GpuConfig& config, const SecureMap* secure_map);

  /// Schedules a line read arriving at the controller at `now`; returns the
  /// cycle at which the (decrypted) line is available to send back on-chip.
  Cycle read_line(Cycle now, Addr addr);

  /// Schedules a posted line write arriving at `now`. Returns the cycle the
  /// write finishes draining (stats/ordering only; callers need not wait).
  Cycle write_line(Cycle now, Addr addr);

  /// Whether traffic to `addr` pays for encryption under this configuration.
  [[nodiscard]] bool needs_encryption(Addr addr) const;

  /// Adds this controller's counters into `stats`.
  void accumulate(SimStats& stats) const;

  /// Flushes dirty counter-cache lines to DRAM (end of run, or an explicit
  /// mid-run drain point). Returns the cycle the last flushed writeback
  /// finishes draining on the DRAM channel — `now` when nothing was dirty —
  /// so callers can fold the drain into the run's final cycle instead of
  /// silently ending the clock before the bus goes quiet. Flushed counter
  /// lines are counted in counter_traffic_bytes() and reported to the bus
  /// probe as plaintext writes, keeping
  ///   dram_read_bytes + dram_write_bytes + counter_traffic_bytes
  /// equal to the byte total a bus probe observes.
  Cycle flush(Cycle now);

  void set_probe(BusProbe* probe) { probe_ = probe; }

  /// The scheme model this controller resolved (explicit from the config, or
  /// the family default). Never null.
  [[nodiscard]] const SchemeModel& scheme_model() const { return *model_; }

  // Per-controller telemetry accessors (pull-based; nothing extra is tracked).
  [[nodiscard]] std::uint64_t read_bytes() const { return read_bytes_; }
  [[nodiscard]] std::uint64_t write_bytes() const { return write_bytes_; }
  [[nodiscard]] std::uint64_t encrypted_bytes() const { return encrypted_bytes_; }
  [[nodiscard]] std::uint64_t bypassed_bytes() const { return bypassed_bytes_; }
  [[nodiscard]] std::uint64_t counter_traffic_bytes() const {
    return counter_traffic_bytes_;
  }
  // Metadata-traffic decomposition, reconciled by scheme.metadata:
  //   counter_traffic == fills + writebacks + flushes, fills == misses x line.
  [[nodiscard]] std::uint64_t counter_fill_bytes() const {
    return counter_fill_bytes_;
  }
  [[nodiscard]] std::uint64_t counter_writeback_bytes() const {
    return counter_writeback_bytes_;
  }
  [[nodiscard]] std::uint64_t counter_flush_bytes() const {
    return counter_flush_bytes_;
  }
  [[nodiscard]] double dram_busy_cycles() const { return dram_.busy_cycles(); }
  /// AES occupancy summed over this controller's engines: the pipe models
  /// `engines_per_controller` engines as one aggregate-bandwidth resource, so
  /// its busy time is scaled back up to engine-cycles of work.
  [[nodiscard]] double aes_busy_cycles() const {
    return aes_.busy_cycles() * config_.engines_per_controller;
  }
  /// Null when the scheme has no counter cache.
  [[nodiscard]] const util::HitRate* counter_hit_rate() const {
    return counter_cache_ ? &counter_cache_->hit_rate() : nullptr;
  }

  // Busy-window edges for the cycle-attribution profiler. A reservation
  // pipe is occupied from "now" until its next_free cycle, so each window
  // is a prefix of any span that starts at or after the last schedule()
  // call — the property the profiler's exact partition relies on.
  [[nodiscard]] Cycle dram_busy_until() const {
    return static_cast<Cycle>(std::ceil(dram_.next_free()));
  }
  [[nodiscard]] Cycle aes_busy_until() const {
    return static_cast<Cycle>(std::ceil(aes_.next_free()));
  }
  /// Last cycle the DRAM pipe is known to be moving counter blocks (fills,
  /// writebacks, end-of-run flushes). Attribution priority gives these
  /// cycles to the counter_traffic bucket ahead of data service.
  [[nodiscard]] Cycle counter_busy_until() const { return counter_busy_until_; }

 private:
  // SchemeModel::Host — the services a scheme model schedules against.
  Cycle dram_schedule(Cycle now, std::uint64_t bytes) override;
  Cycle aes_schedule(Cycle now, std::uint64_t bytes) override;
  /// Books the counter-fetch portion of a counter-family access; returns the
  /// cycle the counter value is available. May inject counter-line DRAM
  /// traffic (fill and/or dirty writeback).
  Cycle fetch_counter(Cycle now, Addr addr, bool for_write) override;

  [[nodiscard]] Addr counter_line_addr(Addr data_addr) const;

  GpuConfig config_;  ///< by value: controllers outlive caller-built configs
  const SchemeModel* model_;     ///< resolved scheme model, never null
  const SecureMap* secure_map_;  ///< may be null => everything secure
  ThroughputPipe dram_;
  ThroughputPipe aes_;
  std::optional<SetAssocCache> counter_cache_;
  BusProbe* probe_ = nullptr;

  std::uint64_t read_bytes_ = 0;
  std::uint64_t write_bytes_ = 0;
  std::uint64_t encrypted_bytes_ = 0;
  std::uint64_t bypassed_bytes_ = 0;
  std::uint64_t counter_traffic_bytes_ = 0;
  std::uint64_t counter_fill_bytes_ = 0;
  std::uint64_t counter_writeback_bytes_ = 0;
  std::uint64_t counter_flush_bytes_ = 0;
  Cycle counter_busy_until_ = 0;
};

}  // namespace sealdl::sim
