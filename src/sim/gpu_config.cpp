#include "sim/gpu_config.hpp"

namespace sealdl::sim {

const char* scheme_name(EncryptionScheme scheme) {
  switch (scheme) {
    case EncryptionScheme::kNone:
      return "Baseline";
    case EncryptionScheme::kDirect:
      return "Direct";
    case EncryptionScheme::kCounter:
      return "Counter";
  }
  return "?";
}

GpuConfig GpuConfig::gtx480() { return GpuConfig{}; }

}  // namespace sealdl::sim
