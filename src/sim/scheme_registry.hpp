// The single source of truth for every secure-memory scheme the toolchain
// knows: CLI spelling, display name, EncryptionScheme family, protection
// scope, and the SchemeModel singleton that times it.
//
// `GpuConfig`, `sealdl-sim`, `sealdl-serve`, `sealdl-check`, and the benches
// all resolve schemes by name through this table, so adding a scheme is one
// row here (plus its model) and cannot desync `--scheme` parsing, report
// provenance, and the conformance analyzer — scheme.registry plus the
// rule-catalog drift gates fail the build on a missing or inconsistent entry.
#pragma once

#include <span>
#include <string_view>

#include "sim/gpu_config.hpp"
#include "sim/scheme_model.hpp"

namespace sealdl::sim {

/// One registered scheme. `cli_name` is the canonical `--scheme` spelling;
/// `display` is the human/provenance name (reports, bench tables).
struct SchemeInfo {
  const char* cli_name;
  const char* display;
  EncryptionScheme family;  ///< timing family the controller enum still names
  ProtectionScope scope;    ///< what the scheme protects
  const SchemeModel* model; ///< registry-owned singleton, never null
  bool paper;               ///< one of the paper's five schemes (fig benches)

  /// Whether the scheme needs a SecureMap (any scope narrower than "all").
  [[nodiscard]] bool selective() const {
    return scope == ProtectionScope::kPlanRows ||
           scope == ProtectionScope::kWeights;
  }
};

/// All registered schemes, in canonical (paper-first) order.
[[nodiscard]] std::span<const SchemeInfo> scheme_registry();

/// Looks up a scheme by CLI or display name (exact match, both spellings);
/// returns nullptr when unknown.
[[nodiscard]] const SchemeInfo* find_scheme(std::string_view name);

/// The registry entry whose model a config resolves to when no explicit
/// model was applied: the canonical full-coverage entry of each family.
[[nodiscard]] const SchemeInfo& default_scheme_for(EncryptionScheme family);

/// Configures `config` to run `info`: sets the scheme family, the selective
/// flag, and the model pointer the MemoryController dispatches through.
void apply_scheme(const SchemeInfo& info, GpuConfig& config);

}  // namespace sealdl::sim
