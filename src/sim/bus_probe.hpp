// Observation point on the memory bus — the adversary's vantage point.
//
// A BusProbe sees every DRAM transaction exactly as a physical bus snooper
// would: the address, direction, and (in functional mode) the raw bytes on
// the wires — ciphertext for secure lines, plaintext otherwise.
#pragma once

#include <cstdint>
#include <span>

#include "sim/request.hpp"

namespace sealdl::sim {

class BusProbe {
 public:
  virtual ~BusProbe() = default;

  /// Timing-mode notification: a transfer of `bytes` at `line_addr`.
  /// `encrypted` reports whether the payload was ciphertext on the wire.
  virtual void on_transfer(Addr line_addr, std::uint32_t bytes, bool is_write,
                           bool encrypted) = 0;

  /// Functional-mode notification with the actual wire bytes. Default no-op
  /// so timing-only probes ignore it.
  virtual void on_data(Addr line_addr, std::span<const std::uint8_t> wire_bytes,
                       bool is_write, bool encrypted) {
    (void)line_addr;
    (void)wire_bytes;
    (void)is_write;
    (void)encrypted;
  }
};

}  // namespace sealdl::sim
