// Interface between workload generators and the simulator's warps.
//
// A WarpProgram is a lazy instruction stream: the SM pulls one WarpOp at a
// time, so multi-billion-instruction workloads never materialize in memory.
#pragma once

#include <memory>
#include <optional>

#include "sim/request.hpp"

namespace sealdl::sim {

class WarpProgram {
 public:
  virtual ~WarpProgram() = default;

  /// Returns the next operation, or nullopt when the warp has retired.
  virtual std::optional<WarpOp> next() = 0;
};

using WarpProgramPtr = std::unique_ptr<WarpProgram>;

}  // namespace sealdl::sim
