// Pluggable secure-memory scheme models.
//
// A SchemeModel owns the encryption-path *timing shape* of one scheme: how a
// secure line read/write serializes DRAM service, AES work, and (for
// counter-family schemes) metadata fetches. The MemoryController owns the
// per-channel resources — DRAM pipe, AES pipe, counter cache, byte
// accounting — and exposes them to the model through the narrow
// SchemeModel::Host interface; the model is stateless and shared (one
// registry singleton serves every controller of every simulator), which is
// what lets schemes be registered once and resolved by name everywhere
// (sim/scheme_registry.hpp).
//
// Every model also *declares* what it promises, as a SchemeContract: which
// bytes may cross the wire in plaintext, how metadata traffic must reconcile
// with counter-cache events, and what serialization shape a secure read has.
// The scheme.* conformance analyzer (verify/scheme_checkers.hpp) proves each
// declared clause against the taint ledger, bus-probe counters, and SimStats
// of a real run — so a scheme that lies about its own dataflow is caught, and
// a new scheme gets the whole invariant suite for free by declaring honestly.
#pragma once

#include <cstdint>

#include "sim/request.hpp"

namespace sealdl::sim {

struct GpuConfig;

/// Which addresses a scheme protects (drives secure-map construction and the
/// scheme.boundary conformance clause).
enum class ProtectionScope : std::uint8_t {
  kNone,      ///< nothing protected (Baseline)
  kAll,       ///< every data address (full-encryption schemes)
  kPlanRows,  ///< the encryption plan's protected rows/channels (SEAL)
  kWeights,   ///< every weight byte, no activations (GuardNN-style)
};

[[nodiscard]] const char* protection_scope_name(ProtectionScope scope);

/// What a scheme's wire image must look like, per byte provenance class.
enum class WireVisibility : std::uint8_t {
  kFullPlain,     ///< all data plaintext (and zero ciphertext) on the bus
  kFullCipher,    ///< no plaintext data byte ever crosses the bus
  kPlanBoundary,  ///< plaintext exactly on the plan's unprotected rows
  kWeightsCipher, ///< weights ciphertext, activations plaintext
};

/// How a scheme's metadata traffic must reconcile.
enum class MetadataModel : std::uint8_t {
  kNone,          ///< zero metadata bytes, ever
  kCounterLines,  ///< metadata bytes == line-granular fills + writebacks +
                  ///< end-of-run flushes, fills == misses x line_bytes
};

/// Serialization shape of a secure line *read* (the scheme.timing clause).
enum class SerializationShape : std::uint8_t {
  kPassthrough,     ///< DRAM service only — no crypto on the critical path
  kAesAfterData,    ///< cipher starts after the data arrives (Direct / XEX)
  kPadOverlapsData, ///< pad generation overlaps the data fetch; it is hidden
                    ///< only on a counter hit, and a final XOR costs 1 cycle
};

/// The declarative conformance contract of one registered scheme. Every
/// clause maps to one scheme.* rule (docs/ANALYSIS.md, "Scheme conformance").
struct SchemeContract {
  ProtectionScope scope = ProtectionScope::kNone;
  WireVisibility wire = WireVisibility::kFullPlain;
  MetadataModel metadata = MetadataModel::kNone;
  SerializationShape read_shape = SerializationShape::kPassthrough;
  /// Every byte the scheme encrypts must book AES occupancy (scheme.coverage
  /// ties encrypted_bytes to aes_busy_cycles).
  bool pays_aes_occupancy = false;
};

/// Timing model of one secure-memory scheme. Implementations are stateless
/// and const: all mutable state (pipes, caches, counters) lives in the
/// MemoryController and is reached through Host.
class SchemeModel {
 public:
  /// Per-channel services a model schedules against. Implemented privately by
  /// MemoryController; the indirection is the entire surface a new scheme
  /// needs — nothing else in the simulator is scheme-aware.
  class Host {
   public:
    /// Books `bytes` on the DRAM channel; returns the completion cycle.
    virtual Cycle dram_schedule(Cycle now, std::uint64_t bytes) = 0;
    /// Books `bytes` of AES work; returns the cycle the block emerges.
    virtual Cycle aes_schedule(Cycle now, std::uint64_t bytes) = 0;
    /// Books the metadata fetch for `addr`'s counter: counter-cache lookup,
    /// and on a miss a line fill (plus a possible dirty writeback) through
    /// this same channel. Returns the cycle the counter value is available.
    virtual Cycle fetch_counter(Cycle now, Addr addr, bool for_write) = 0;

   protected:
    ~Host() = default;
  };

  virtual ~SchemeModel() = default;

  [[nodiscard]] virtual const SchemeContract& contract() const = 0;

  /// Completion cycle of a secure line read arriving at the controller at
  /// `now`. Only called for addresses the scheme protects.
  virtual Cycle read_secure(Host& host, Cycle now, Addr addr,
                            std::uint64_t bytes) const = 0;

  /// Completion (drain) cycle of a posted secure line write.
  virtual Cycle write_secure(Host& host, Cycle now, Addr addr,
                             std::uint64_t bytes) const = 0;

  /// Whether the controller must instantiate an on-chip counter cache.
  [[nodiscard]] virtual bool uses_counter_cache() const { return false; }

  /// Bytes of counter storage per data line (counter-region address layout);
  /// 0 for schemes without metadata. Counter-family models read the
  /// configured organization; compact-layout schemes override it outright.
  [[nodiscard]] virtual int counter_bytes_per_line(const GpuConfig& config) const;
};

}  // namespace sealdl::sim
