// Functional model of the off-chip DRAM plus the in-line encryption engine.
//
// This is the data-carrying counterpart of the timing simulator (a gem5-style
// functional/timing split): reads and writes move real bytes, secure lines are
// really transformed with AES-128, and an attached BusProbe observes the wire
// image — ciphertext for secure lines, plaintext otherwise. The bus-snooping
// attack (src/attack) reconstructs DRAM contents purely from probe events.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "crypto/aes128.hpp"
#include "crypto/modes.hpp"
#include "sim/bus_probe.hpp"
#include "sim/gpu_config.hpp"
#include "sim/secure_map.hpp"

namespace sealdl::sim {

class FunctionalMemory {
 public:
  /// `scheme` selects the line transform; `secure_map` (non-owning, may be
  /// null) marks the ranges to encrypt when `selective` is true.
  FunctionalMemory(EncryptionScheme scheme, bool selective,
                   const SecureMap* secure_map, const crypto::Key128& key);

  /// Writes `data` starting at `addr`. The chip-side caller supplies
  /// plaintext; whole covering lines are encrypted (if secure) and stored.
  /// Partial-line writes read-modify-write the affected lines.
  void write(Addr addr, std::span<const std::uint8_t> data);

  /// Reads `out.size()` bytes starting at `addr`, decrypting secure lines.
  void read(Addr addr, std::span<std::uint8_t> out);

  /// The raw DRAM image of one line (what a cold-boot / bus attacker sees).
  [[nodiscard]] std::vector<std::uint8_t> raw_line(Addr line_addr) const;

  void set_probe(BusProbe* probe) { probe_ = probe; }

  [[nodiscard]] bool line_is_secure(Addr line_addr) const;

  /// Number of distinct lines ever written.
  [[nodiscard]] std::size_t resident_lines() const { return lines_.size(); }

 private:
  struct LineBuf {
    std::array<std::uint8_t, crypto::kLineBytes> bytes{};
  };

  /// Fetches (or zero-initializes) the stored image of a line.
  LineBuf& line_slot(Addr line_addr);

  /// Applies the configured transform to a plaintext line image, bumping the
  /// write counter in counter mode. Returns the wire/DRAM image.
  LineBuf seal_line(Addr line_addr, const LineBuf& plain);

  /// Inverse transform of the stored image.
  LineBuf unseal_line(Addr line_addr, const LineBuf& stored) const;

  EncryptionScheme scheme_;
  bool selective_;
  const SecureMap* secure_map_;
  crypto::Aes128 aes_;
  std::unordered_map<Addr, LineBuf> lines_;
  std::unordered_map<Addr, std::uint64_t> counters_;
  BusProbe* probe_ = nullptr;
};

}  // namespace sealdl::sim
