#include "sim/secure_map.hpp"

#include <algorithm>

namespace sealdl::sim {

void SecureMap::add_range(Addr begin, std::uint64_t size) {
  if (size == 0) return;
  Addr end = begin + size;
  // Find the first range that could merge with [begin, end): any range whose
  // end >= begin. Ranges are keyed by begin; scan from the first candidate.
  auto it = ranges_.upper_bound(begin);
  if (it != ranges_.begin()) {
    auto prev = std::prev(it);
    if (prev->second >= begin) {
      begin = prev->first;
      end = std::max(end, prev->second);
      it = ranges_.erase(prev);
    }
  }
  while (it != ranges_.end() && it->first <= end) {
    end = std::max(end, it->second);
    it = ranges_.erase(it);
  }
  ranges_[begin] = end;
}

void SecureMap::remove_range(Addr begin, std::uint64_t size) {
  if (size == 0) return;
  const Addr end = begin + size;
  auto it = ranges_.upper_bound(begin);
  if (it != ranges_.begin()) --it;
  while (it != ranges_.end() && it->first < end) {
    const Addr r_begin = it->first;
    const Addr r_end = it->second;
    if (r_end <= begin) {
      ++it;
      continue;
    }
    it = ranges_.erase(it);
    if (r_begin < begin) ranges_[r_begin] = begin;
    if (r_end > end) {
      ranges_[end] = r_end;
      break;
    }
  }
}

bool SecureMap::is_secure(Addr addr) const {
  auto it = ranges_.upper_bound(addr);
  if (it == ranges_.begin()) return false;
  --it;
  return addr >= it->first && addr < it->second;
}

bool SecureMap::line_is_secure(Addr line_addr, int line_bytes) const {
  auto it = ranges_.upper_bound(line_addr + static_cast<Addr>(line_bytes) - 1);
  if (it == ranges_.begin()) return false;
  --it;
  // Range begins at or before the line's last byte; intersects iff it ends
  // after the line's first byte.
  return it->second > line_addr;
}

std::uint64_t SecureMap::secure_bytes_in(Addr begin,
                                         std::uint64_t size) const {
  if (size == 0) return 0;
  const Addr end = begin + size;
  std::uint64_t total = 0;
  auto it = ranges_.upper_bound(begin);
  if (it != ranges_.begin()) --it;
  for (; it != ranges_.end() && it->first < end; ++it) {
    const Addr lo = std::max(it->first, begin);
    const Addr hi = std::min(it->second, end);
    if (hi > lo) total += hi - lo;
  }
  return total;
}

std::uint64_t SecureMap::secure_bytes() const {
  std::uint64_t total = 0;
  for (const auto& [begin, end] : ranges_) total += end - begin;
  return total;
}

}  // namespace sealdl::sim
