#include "sim/functional_memory.hpp"

#include <algorithm>
#include <cstring>

namespace sealdl::sim {

namespace {
constexpr Addr line_base(Addr addr) {
  return addr & ~static_cast<Addr>(crypto::kLineBytes - 1);
}
}  // namespace

FunctionalMemory::FunctionalMemory(EncryptionScheme scheme, bool selective,
                                   const SecureMap* secure_map,
                                   const crypto::Key128& key)
    : scheme_(scheme), selective_(selective), secure_map_(secure_map), aes_(key) {}

bool FunctionalMemory::line_is_secure(Addr line_addr) const {
  if (scheme_ == EncryptionScheme::kNone) return false;
  if (!selective_) return true;
  return secure_map_ == nullptr ||
         secure_map_->line_is_secure(line_addr, crypto::kLineBytes);
}

FunctionalMemory::LineBuf& FunctionalMemory::line_slot(Addr line_addr) {
  return lines_[line_addr];
}

FunctionalMemory::LineBuf FunctionalMemory::seal_line(Addr line_addr,
                                                      const LineBuf& plain) {
  LineBuf out = plain;
  if (!line_is_secure(line_addr)) return out;
  switch (scheme_) {
    case EncryptionScheme::kDirect:
      crypto::direct_encrypt_line(aes_, line_addr, out.bytes);
      break;
    case EncryptionScheme::kCounter: {
      const std::uint64_t counter = ++counters_[line_addr];
      crypto::counter_transform_line(aes_, line_addr, counter, out.bytes);
      break;
    }
    case EncryptionScheme::kNone:
      break;
  }
  return out;
}

FunctionalMemory::LineBuf FunctionalMemory::unseal_line(Addr line_addr,
                                                        const LineBuf& stored) const {
  LineBuf out = stored;
  if (!line_is_secure(line_addr)) return out;
  switch (scheme_) {
    case EncryptionScheme::kDirect:
      crypto::direct_decrypt_line(aes_, line_addr, out.bytes);
      break;
    case EncryptionScheme::kCounter: {
      const auto it = counters_.find(line_addr);
      const std::uint64_t counter = it == counters_.end() ? 0 : it->second;
      crypto::counter_transform_line(aes_, line_addr, counter, out.bytes);
      break;
    }
    case EncryptionScheme::kNone:
      break;
  }
  return out;
}

void FunctionalMemory::write(Addr addr, std::span<const std::uint8_t> data) {
  std::size_t offset = 0;
  while (offset < data.size()) {
    const Addr line_addr = line_base(addr + offset);
    const std::size_t in_line = (addr + offset) - line_addr;
    const std::size_t n =
        std::min(crypto::kLineBytes - in_line, data.size() - offset);

    // Read-modify-write the plaintext image of the line.
    LineBuf plain = unseal_line(line_addr, line_slot(line_addr));
    std::memcpy(plain.bytes.data() + in_line, data.data() + offset, n);
    const LineBuf wire = seal_line(line_addr, plain);
    line_slot(line_addr) = wire;
    if (probe_) {
      probe_->on_transfer(line_addr, crypto::kLineBytes, true,
                          line_is_secure(line_addr));
      probe_->on_data(line_addr, wire.bytes, true, line_is_secure(line_addr));
    }
    offset += n;
  }
}

void FunctionalMemory::read(Addr addr, std::span<std::uint8_t> out) {
  std::size_t offset = 0;
  while (offset < out.size()) {
    const Addr line_addr = line_base(addr + offset);
    const std::size_t in_line = (addr + offset) - line_addr;
    const std::size_t n =
        std::min(crypto::kLineBytes - in_line, out.size() - offset);

    const LineBuf& stored = line_slot(line_addr);
    if (probe_) {
      probe_->on_transfer(line_addr, crypto::kLineBytes, false,
                          line_is_secure(line_addr));
      probe_->on_data(line_addr, stored.bytes, false, line_is_secure(line_addr));
    }
    const LineBuf plain = unseal_line(line_addr, stored);
    std::memcpy(out.data() + offset, plain.bytes.data() + in_line, n);
    offset += n;
  }
}

std::vector<std::uint8_t> FunctionalMemory::raw_line(Addr line_addr) const {
  const auto it = lines_.find(line_base(line_addr));
  if (it == lines_.end()) return std::vector<std::uint8_t>(crypto::kLineBytes, 0);
  return {it->second.bytes.begin(), it->second.bytes.end()};
}

}  // namespace sealdl::sim
