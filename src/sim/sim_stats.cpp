#include "sim/sim_stats.hpp"

#include "sim/gpu_config.hpp"

namespace sealdl::sim {

double dram_utilization(const SimStats& stats, const GpuConfig& config) {
  if (stats.cycles == 0) return 0.0;
  return stats.dram_busy_cycles / (static_cast<double>(config.num_channels) *
                                   static_cast<double>(stats.cycles));
}

double aes_utilization(const SimStats& stats, const GpuConfig& config) {
  if (stats.cycles == 0) return 0.0;
  const double engines = static_cast<double>(config.num_channels) *
                         static_cast<double>(config.engines_per_controller);
  return stats.aes_busy_cycles / (engines * static_cast<double>(stats.cycles));
}

}  // namespace sealdl::sim
