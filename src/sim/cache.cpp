#include "sim/cache.hpp"

#include <cassert>
#include <stdexcept>

namespace sealdl::sim {

SetAssocCache::SetAssocCache(std::size_t capacity_bytes, int assoc, int line_bytes)
    : sets_(capacity_bytes / (static_cast<std::size_t>(assoc) * static_cast<std::size_t>(line_bytes))),
      assoc_(assoc),
      line_bytes_(line_bytes) {
  if (sets_ == 0 || capacity_bytes % (static_cast<std::size_t>(assoc) * static_cast<std::size_t>(line_bytes)) != 0) {
    throw std::invalid_argument("cache capacity must be a positive multiple of assoc*line");
  }
  ways_.resize(sets_ * static_cast<std::size_t>(assoc_));
}

std::size_t SetAssocCache::set_index(Addr addr) const {
  return (addr / static_cast<Addr>(line_bytes_)) % sets_;
}

Addr SetAssocCache::tag_of(Addr addr) const {
  return addr / static_cast<Addr>(line_bytes_) / sets_;
}

CacheResult SetAssocCache::access(Addr addr, bool mark_dirty) {
  const std::size_t base = set_index(addr) * static_cast<std::size_t>(assoc_);
  const Addr tag = tag_of(addr);
  for (int w = 0; w < assoc_; ++w) {
    Way& way = ways_[base + static_cast<std::size_t>(w)];
    if (way.valid && way.tag == tag) {
      way.lru = ++clock_;
      way.dirty = way.dirty || mark_dirty;
      hits_.record(true);
      return {true, std::nullopt};
    }
  }
  hits_.record(false);
  return {false, std::nullopt};
}

CacheResult SetAssocCache::insert(Addr addr, bool dirty) {
  const std::size_t set = set_index(addr);
  const std::size_t base = set * static_cast<std::size_t>(assoc_);
  const Addr tag = tag_of(addr);
  // Prefer an invalid way, otherwise the least recently used one.
  std::size_t victim = base;
  for (int w = 0; w < assoc_; ++w) {
    const Way& way = ways_[base + static_cast<std::size_t>(w)];
    if (!way.valid) {
      victim = base + static_cast<std::size_t>(w);
      break;
    }
    if (way.lru < ways_[victim].lru) victim = base + static_cast<std::size_t>(w);
  }
  Way& way = ways_[victim];
  std::optional<Addr> writeback;
  if (way.valid && way.dirty) {
    // Reconstruct the victim's address from its tag and this set index.
    writeback = (way.tag * sets_ + set) * static_cast<Addr>(line_bytes_);
  }
  way.valid = true;
  way.dirty = dirty;
  way.tag = tag;
  way.lru = ++clock_;
  return {false, writeback};
}

bool SetAssocCache::contains(Addr addr) const {
  const std::size_t base = set_index(addr) * static_cast<std::size_t>(assoc_);
  const Addr tag = tag_of(addr);
  for (int w = 0; w < assoc_; ++w) {
    const Way& way = ways_[base + static_cast<std::size_t>(w)];
    if (way.valid && way.tag == tag) return true;
  }
  return false;
}

std::optional<Addr> SetAssocCache::invalidate(Addr addr) {
  const std::size_t set = set_index(addr);
  const std::size_t base = set * static_cast<std::size_t>(assoc_);
  const Addr tag = tag_of(addr);
  for (int w = 0; w < assoc_; ++w) {
    Way& way = ways_[base + static_cast<std::size_t>(w)];
    if (way.valid && way.tag == tag) {
      way.valid = false;
      if (way.dirty) return (way.tag * sets_ + set) * static_cast<Addr>(line_bytes_);
      return std::nullopt;
    }
  }
  return std::nullopt;
}

std::vector<Addr> SetAssocCache::flush_dirty() {
  std::vector<Addr> out;
  for (std::size_t set = 0; set < sets_; ++set) {
    for (int w = 0; w < assoc_; ++w) {
      Way& way = ways_[set * static_cast<std::size_t>(assoc_) + static_cast<std::size_t>(w)];
      if (way.valid && way.dirty) {
        out.push_back((way.tag * sets_ + set) * static_cast<Addr>(line_bytes_));
        way.dirty = false;
      }
    }
  }
  return out;
}

}  // namespace sealdl::sim
