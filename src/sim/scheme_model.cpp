#include "sim/scheme_model.hpp"

#include "sim/gpu_config.hpp"

namespace sealdl::sim {

const char* protection_scope_name(ProtectionScope scope) {
  switch (scope) {
    case ProtectionScope::kNone:
      return "none";
    case ProtectionScope::kAll:
      return "all";
    case ProtectionScope::kPlanRows:
      return "plan-rows";
    case ProtectionScope::kWeights:
      return "weights";
  }
  return "?";
}

int SchemeModel::counter_bytes_per_line(const GpuConfig& /*config*/) const {
  return 0;
}

}  // namespace sealdl::sim
