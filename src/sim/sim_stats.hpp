// Aggregated statistics for one simulation run.
#pragma once

#include <cstdint>

#include "sim/request.hpp"

namespace sealdl::sim {

struct SimStats {
  Cycle cycles = 0;

  // Compute.
  std::uint64_t warp_instructions = 0;
  std::uint64_t thread_instructions = 0;

  // L2.
  std::uint64_t l2_hits = 0;
  std::uint64_t l2_misses = 0;

  // DRAM traffic (data only).
  std::uint64_t dram_read_bytes = 0;
  std::uint64_t dram_write_bytes = 0;

  // Encryption path.
  std::uint64_t encrypted_bytes = 0;   ///< bytes that went through an AES engine
  std::uint64_t bypassed_bytes = 0;    ///< secure-capable traffic that bypassed AES
  double aes_busy_cycles = 0.0;        ///< summed over engines
  double dram_busy_cycles = 0.0;       ///< summed over channels

  // Counter mode.
  std::uint64_t counter_hits = 0;
  std::uint64_t counter_misses = 0;
  std::uint64_t counter_traffic_bytes = 0;  ///< counter-block reads + writebacks
  // Decomposition of counter_traffic_bytes, reconciled by scheme.metadata:
  //   traffic == fills + writebacks + flushes, fills == misses x line_bytes.
  // Internal accounting only — deliberately absent from the JSON run report,
  // whose byte layout is pinned by the scheme-golden gate.
  std::uint64_t counter_fill_bytes = 0;       ///< miss-driven counter-line reads
  std::uint64_t counter_writeback_bytes = 0;  ///< eviction-driven dirty writebacks
  std::uint64_t counter_flush_bytes = 0;      ///< end-of-run dirty-line drains

  /// Accumulates another run's stats into this one. Used when a layer is
  /// simulated as a sequence of tile-chunk waves: every field — cycles
  /// included — is a sum over waves (chunk runs execute back to back on the
  /// same machine, so their cycle counts concatenate).
  void merge_from(const SimStats& other) {
    cycles += other.cycles;
    warp_instructions += other.warp_instructions;
    thread_instructions += other.thread_instructions;
    l2_hits += other.l2_hits;
    l2_misses += other.l2_misses;
    dram_read_bytes += other.dram_read_bytes;
    dram_write_bytes += other.dram_write_bytes;
    encrypted_bytes += other.encrypted_bytes;
    bypassed_bytes += other.bypassed_bytes;
    aes_busy_cycles += other.aes_busy_cycles;
    dram_busy_cycles += other.dram_busy_cycles;
    counter_hits += other.counter_hits;
    counter_misses += other.counter_misses;
    counter_traffic_bytes += other.counter_traffic_bytes;
    counter_fill_bytes += other.counter_fill_bytes;
    counter_writeback_bytes += other.counter_writeback_bytes;
    counter_flush_bytes += other.counter_flush_bytes;
  }

  [[nodiscard]] double ipc() const {
    return cycles ? static_cast<double>(thread_instructions) / static_cast<double>(cycles)
                  : 0.0;
  }

  [[nodiscard]] double l2_hit_rate() const {
    const std::uint64_t total = l2_hits + l2_misses;
    return total ? static_cast<double>(l2_hits) / static_cast<double>(total) : 0.0;
  }

  [[nodiscard]] double counter_hit_rate() const {
    const std::uint64_t total = counter_hits + counter_misses;
    return total ? static_cast<double>(counter_hits) / static_cast<double>(total) : 0.0;
  }

  [[nodiscard]] std::uint64_t dram_bytes() const {
    return dram_read_bytes + dram_write_bytes;
  }

  [[nodiscard]] double encrypted_fraction() const {
    const std::uint64_t total = dram_bytes();
    return total ? static_cast<double>(encrypted_bytes) / static_cast<double>(total)
                 : 0.0;
  }
};

struct GpuConfig;

/// Average fraction of aggregate DRAM bandwidth busy over the run.
double dram_utilization(const SimStats& stats, const GpuConfig& config);

/// Average fraction of aggregate AES capacity busy over the run. Normalized
/// by the configured engine population (num_channels x engines_per_controller)
/// so engine-count ablations report honestly — `aes_busy_cycles` is summed
/// over engines, not controllers.
double aes_utilization(const SimStats& stats, const GpuConfig& config);

}  // namespace sealdl::sim
