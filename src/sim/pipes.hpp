// Timing primitives: fixed-latency FIFOs and bandwidth-limited resources.
#pragma once

#include <cassert>
#include <cmath>
#include <cstdint>
#include <optional>
#include <vector>

#include "sim/request.hpp"

namespace sealdl::sim {

/// FIFO whose elements become visible a fixed number of cycles after they are
/// pushed. Models wire/router latency (e.g. the SM<->L2 interconnect).
///
/// Storage is a power-of-two ring buffer split struct-of-arrays style: the
/// ready cycles live in their own contiguous array, so the run loop's
/// front_ready()/pop_ready() polling — the hottest reads in the simulator —
/// never drags the payloads through the cache, and pushes never allocate
/// once the ring has grown to the workload's high-water mark (std::deque
/// chased 512-byte chunks through a map on every push/pop).
template <typename T>
class DelayQueue {
 public:
  explicit DelayQueue(Cycle latency) : latency_(latency) {}

  void push(Cycle now, T value) {
    if (size_ == ready_.size()) grow();
    const std::size_t slot = (head_ + size_) & mask_;
    ready_[slot] = now + latency_;
    values_[slot] = std::move(value);
    ++size_;
  }

  /// Pops the front element if it is ready at `now`.
  std::optional<T> pop_ready(Cycle now) {
    if (size_ == 0 || ready_[head_] > now) return std::nullopt;
    T out = std::move(values_[head_]);
    head_ = (head_ + 1) & mask_;
    --size_;
    return out;
  }

  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::size_t size() const { return size_; }

  /// Cycle at which the front element becomes ready; only valid if !empty().
  [[nodiscard]] Cycle front_ready() const {
    assert(size_ != 0);
    return ready_[head_];
  }

 private:
  void grow() {
    const std::size_t capacity = ready_.empty() ? 16 : ready_.size() * 2;
    std::vector<Cycle> ready(capacity);
    std::vector<T> values(capacity);
    for (std::size_t i = 0; i < size_; ++i) {
      const std::size_t slot = (head_ + i) & mask_;
      ready[i] = ready_[slot];
      values[i] = std::move(values_[slot]);
    }
    ready_ = std::move(ready);
    values_ = std::move(values);
    head_ = 0;
    mask_ = capacity - 1;
  }

  Cycle latency_;
  std::vector<Cycle> ready_;  ///< SoA: ready cycles, scanned without payloads
  std::vector<T> values_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
  std::size_t mask_ = 0;  ///< capacity - 1 (capacity is a power of two)
};

/// A shared resource with finite bandwidth and a fixed pipeline latency,
/// scheduled by reservation: callers ask "when would a transfer of N bytes
/// issued no earlier than cycle t complete?" and the pipe books the occupancy.
///
/// Used for DRAM channels and AES engines. Occupancy is tracked in fractional
/// cycles so that e.g. a 42.24 B/cycle channel is modeled exactly; completions
/// are reported as integer cycles (ceil).
class ThroughputPipe {
 public:
  ThroughputPipe(double bytes_per_cycle, Cycle latency)
      : bytes_per_cycle_(bytes_per_cycle), latency_(latency) {
    assert(bytes_per_cycle > 0.0);
  }

  /// Books `bytes` of occupancy starting no earlier than `earliest`; returns
  /// the cycle at which the data emerges from the pipe.
  Cycle schedule(Cycle earliest, std::uint64_t bytes) {
    const double start = std::max(next_free_, static_cast<double>(earliest));
    const double busy = static_cast<double>(bytes) / bytes_per_cycle_;
    next_free_ = start + busy;
    busy_cycles_ += busy;
    bytes_ += bytes;
    return static_cast<Cycle>(std::ceil(next_free_)) + latency_;
  }

  /// First cycle at which a new transfer could begin.
  [[nodiscard]] double next_free() const { return next_free_; }

  [[nodiscard]] double busy_cycles() const { return busy_cycles_; }
  [[nodiscard]] std::uint64_t bytes_transferred() const { return bytes_; }
  [[nodiscard]] double bytes_per_cycle() const { return bytes_per_cycle_; }
  [[nodiscard]] Cycle latency() const { return latency_; }

  /// Utilization over the first `elapsed` cycles (clamped to [0,1]).
  [[nodiscard]] double utilization(Cycle elapsed) const {
    if (elapsed == 0) return 0.0;
    return std::min(1.0, busy_cycles_ / static_cast<double>(elapsed));
  }

 private:
  double bytes_per_cycle_;
  Cycle latency_;
  double next_free_ = 0.0;
  double busy_cycles_ = 0.0;
  std::uint64_t bytes_ = 0;
};

}  // namespace sealdl::sim
