// Configuration of the modeled accelerator.
//
// The default preset mirrors the paper's GPGPU-Sim setup (§IV-A): an NVIDIA
// GeForce GTX480 with 15 streaming multiprocessors and a 6-channel GDDR5
// memory system (384-bit @ 1848 MHz DDR => 177.4 GB/s aggregate). Everything
// is expressed in one 700 MHz core clock domain; bandwidths are converted to
// bytes per core cycle.
#pragma once

#include <cstdint>

#include "crypto/engine_spec.hpp"

namespace sealdl::sim {

/// Which memory-encryption scheme the memory controllers apply to secure data.
enum class EncryptionScheme {
  kNone,     ///< Baseline: no encryption.
  kDirect,   ///< Direct (XEX-style) encryption of the line payload.
  kCounter,  ///< Counter-mode encryption with an on-chip counter cache.
};

/// Returns a short human-readable name ("Baseline", "Direct", "Counter").
const char* scheme_name(EncryptionScheme scheme);

class SchemeModel;

struct GpuConfig {
  // --- compute ---
  int num_sms = 15;           ///< streaming multiprocessors
  int warps_per_sm = 32;      ///< resident warps per SM
  int warp_size = 32;         ///< threads per warp (thread-IPC = warp retire x32)
  int issue_width = 2;        ///< warp instructions issued per SM per cycle
  int max_outstanding_loads_per_sm = 64;  ///< MSHR-limited load window
  /// Cycles between consecutive warp launches on one SM. Real grids rain
  /// blocks onto SMs over time; without this every warp starts its
  /// load/compute phases in lockstep and the SM degenerates into bulk
  /// all-load / all-compute waves that no real kernel exhibits.
  int warp_start_stagger = 300;

  // --- on-chip memory system ---
  int line_bytes = 128;             ///< cache-line / memory-transaction size
  int l2_slice_kb = 128;            ///< per-channel L2 slice capacity
  int l2_assoc = 8;
  int l2_latency = 10;              ///< slice lookup latency, cycles
  int interconnect_latency = 20;    ///< SM <-> L2 one-way latency, cycles

  // --- DRAM ---
  int num_channels = 6;
  double dram_total_gbps = 177.4;   ///< aggregate GDDR5 pin bandwidth
  /// Achievable fraction of pin bandwidth (row-buffer misses, refresh,
  /// read/write turnaround); GDDR5 streams sustain ~60-75% in practice.
  double dram_efficiency = 0.65;
  int dram_latency = 120;           ///< activate+CAS+burst return, core cycles
  int channel_interleave_bytes = 256;  ///< address striping granularity
  double core_mhz = 700.0;

  // --- encryption ---
  EncryptionScheme scheme = EncryptionScheme::kNone;
  crypto::EngineSpec engine = crypto::default_engine();
  int engines_per_controller = 1;   ///< paper: one AES engine per MC
  int counter_cache_kb = 96;        ///< on-chip counter cache (counter mode)
  int counter_cache_assoc = 8;
  int counter_bytes = 8;            ///< one 64-bit counter per data line
  /// Split counters (Yan et al., ISCA'06): a 7-bit minor counter per line
  /// plus a shared per-page major counter, packing 8x more counters per
  /// counter-cache line. Minor-counter overflow (page re-encryption) is rare
  /// and not modeled. Effective only in counter mode.
  bool split_counters = false;
  /// When true, only addresses marked secure in the SecureMap are encrypted
  /// (SEAL); when false every address is treated as secure (full encryption).
  bool selective = false;
  /// Resolved scheme model (sim/scheme_registry.hpp). Null means "derive from
  /// `scheme`": the controller falls back to the family's canonical registry
  /// entry, so enum-only configs keep working. Not part of the config hash —
  /// the JSON report serializes the scheme by name, never by pointer.
  const SchemeModel* scheme_model = nullptr;

  /// Per-channel achievable DRAM bandwidth in bytes per core cycle.
  [[nodiscard]] double dram_bytes_per_cycle_per_channel() const {
    return dram_total_gbps * dram_efficiency * 1e9 / (core_mhz * 1e6) / num_channels;
  }

  /// Per-controller AES bandwidth in bytes per core cycle.
  [[nodiscard]] double aes_bytes_per_cycle() const {
    return engine.bytes_per_cycle(core_mhz) * engines_per_controller;
  }

  /// Bytes of counter storage per data line under the active organization.
  [[nodiscard]] int effective_counter_bytes() const {
    return split_counters ? 1 : counter_bytes;
  }

  /// Data lines covered by one counter-cache line (16 with the defaults,
  /// 128 with split counters).
  [[nodiscard]] int counters_per_line() const {
    return line_bytes / effective_counter_bytes();
  }

  /// Peak thread-IPC of the configured machine.
  [[nodiscard]] double peak_ipc() const {
    return static_cast<double>(num_sms) * issue_width * warp_size;
  }

  /// The paper's GTX480 model (§IV-A), unencrypted baseline.
  static GpuConfig gtx480();
};

}  // namespace sealdl::sim
