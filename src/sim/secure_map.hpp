// Address-space map of which physical ranges hold encrypted ("secure") data.
//
// The SEAL runtime populates this from emalloc()/malloc() decisions and from
// the per-channel feature-map encryption plan; the memory controllers consult
// it on every DRAM transaction to decide whether the AES engine is on the
// critical path.
#pragma once

#include <cstdint>
#include <map>

#include "sim/request.hpp"

namespace sealdl::sim {

/// Sorted, coalesced set of half-open byte ranges [begin, end) that require
/// encryption. Lookup is O(log n) in the number of disjoint ranges.
class SecureMap {
 public:
  /// Marks [begin, begin+size) as secure; overlapping/adjacent ranges merge.
  void add_range(Addr begin, std::uint64_t size);

  /// Removes the secure marking from [begin, begin+size).
  void remove_range(Addr begin, std::uint64_t size);

  /// True if `addr` falls inside any secure range.
  [[nodiscard]] bool is_secure(Addr addr) const;

  /// True if the whole line starting at `line_addr` intersects a secure
  /// range. Encryption granularity is a full line: a line that contains any
  /// secure byte is treated as secure.
  [[nodiscard]] bool line_is_secure(Addr line_addr, int line_bytes) const;

  /// Total number of secure bytes.
  [[nodiscard]] std::uint64_t secure_bytes() const;

  /// Number of secure bytes inside [begin, begin+size) — the byte-granular
  /// provenance query behind the taint analyzer: it distinguishes a line
  /// that is fully secure from one that merely straddles a secure range
  /// (line_is_secure() treats both as secure).
  [[nodiscard]] std::uint64_t secure_bytes_in(Addr begin,
                                              std::uint64_t size) const;

  /// Number of disjoint ranges (diagnostics / tests).
  [[nodiscard]] std::size_t range_count() const { return ranges_.size(); }

  /// Visits every disjoint range as fn(begin, end), in ascending address
  /// order (the static analyzer's alignment / bounds / tagging rules).
  template <typename Fn>
  void visit(Fn&& fn) const {
    for (const auto& [begin, end] : ranges_) fn(begin, end);
  }

  void clear() { ranges_.clear(); }

 private:
  // begin -> end, non-overlapping, non-adjacent.
  std::map<Addr, Addr> ranges_;
};

}  // namespace sealdl::sim
