#include "sim/sm_core.hpp"

#include <cassert>

namespace sealdl::sim {

SmCore::SmCore(const GpuConfig& config, int sm_id, DelayQueue<MemRequest>* to_l2)
    : config_(config), sm_id_(sm_id), to_l2_(to_l2) {
  warps_.resize(static_cast<std::size_t>(config.warps_per_sm));
}

void SmCore::load_programs(std::vector<WarpProgramPtr> programs) {
  assert(programs.size() <= warps_.size());
  live_warps_ = 0;
  barrier_waiters_ = 0;
  ready_.clear();
  window_wait_.clear();
  sm_outstanding_ = 0;
  launch_count_ = 0;
  next_launch_ = 0;
  next_launch_cycle_ = 0;
  for (std::size_t w = 0; w < warps_.size(); ++w) {
    WarpState& warp = warps_[w];
    warp.op.reset();
    warp.outstanding_loads = 0;
    if (w < programs.size() && programs[w]) {
      warp.program = std::move(programs[w]);
      warp.wait = WarpWait::kLoads;  // parked until its staggered launch
      ++live_warps_;
      ++launch_count_;
    } else {
      warp.program.reset();
      warp.wait = WarpWait::kDone;
    }
  }
}

bool SmCore::prepare(int idx, WarpState& warp) {
  (void)idx;
  for (;;) {
    if (!warp.op) {
      warp.op = warp.program->next();
      if (!warp.op) {
        warp.wait = WarpWait::kDone;
        --live_warps_;
        return false;
      }
    }
    if (warp.op->kind == WarpOp::Kind::kWaitLoads) {
      const int threshold = static_cast<int>(warp.op->count);
      if (warp.outstanding_loads > threshold) {
        warp.wait = WarpWait::kLoads;  // re-queued by on_load_return()
        warp.wait_threshold = threshold;
        ++barrier_parks_;
        ++barrier_waiters_;
        return false;
      }
      warp.op.reset();  // satisfied barrier costs no issue slot
      continue;
    }
    return true;
  }
}

int SmCore::tick(Cycle now) {
  // Staggered launch: warps enter the ready ring warp_start_stagger cycles
  // apart, like thread blocks raining onto an SM — but work-conserving: when
  // the SM is starved of ready warps (short kernels, memory-bound phases)
  // the next warp launches immediately.
  while (next_launch_ < launch_count_ &&
         (now >= next_launch_cycle_ || ready_.size() < 8)) {
    warps_[static_cast<std::size_t>(next_launch_)].wait = WarpWait::kReady;
    ready_.push_back(next_launch_);
    ++next_launch_;
    next_launch_cycle_ = now + static_cast<Cycle>(config_.warp_start_stagger);
  }
  int issued = 0;
  // Bound the scan: each ready warp is inspected at most once per cycle.
  std::size_t inspected = 0;
  const std::size_t ready_at_entry = ready_.size();
  while (issued < config_.issue_width && !ready_.empty() &&
         inspected < ready_at_entry) {
    ++inspected;
    const int idx = ready_.front();
    ready_.pop_front();
    WarpState& warp = warps_[static_cast<std::size_t>(idx)];
    if (!prepare(idx, warp)) continue;  // done or barrier-parked

    WarpOp& op = *warp.op;
    switch (op.kind) {
      case WarpOp::Kind::kCompute:
        ++compute_issued_;
        if (--op.count == 0) warp.op.reset();
        break;
      case WarpOp::Kind::kLoad:
        if (sm_outstanding_ >= config_.max_outstanding_loads_per_sm) {
          warp.wait = WarpWait::kWindow;
          window_wait_.push_back(idx);
          ++window_stalls_;
          continue;  // try another warp this cycle
        }
        to_l2_->push(now, MemRequest{op.addr, false, sm_id_, idx});
        ++warp.outstanding_loads;
        ++sm_outstanding_;
        ++loads_issued_;
        warp.op.reset();
        break;
      case WarpOp::Kind::kStore:
        to_l2_->push(now, MemRequest{op.addr, true, sm_id_, -1});
        ++stores_issued_;
        warp.op.reset();
        break;
      case WarpOp::Kind::kWaitLoads:
        continue;  // unreachable: prepare() consumes barriers
    }
    ++issued;
    ++instructions_;
    ready_.push_back(idx);  // still runnable: back of the round-robin ring
  }
  return issued;
}

void SmCore::on_load_return(int warp_id) {
  assert(warp_id >= 0 && static_cast<std::size_t>(warp_id) < warps_.size());
  WarpState& warp = warps_[static_cast<std::size_t>(warp_id)];
  assert(warp.outstanding_loads > 0);
  --warp.outstanding_loads;
  --sm_outstanding_;
  if (warp.wait == WarpWait::kLoads &&
      warp.outstanding_loads <= warp.wait_threshold) {
    warp.wait = WarpWait::kReady;
    ready_.push_back(warp_id);
    --barrier_waiters_;
  }
  // A free window slot may unblock parked warps; let them re-check.
  if (!window_wait_.empty()) {
    for (const int idx : window_wait_) {
      warps_[static_cast<std::size_t>(idx)].wait = WarpWait::kReady;
      ready_.push_back(idx);
    }
    window_wait_.clear();
  }
}

}  // namespace sealdl::sim
