#include "sim/gpu_simulator.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "telemetry/profiler.hpp"

namespace sealdl::sim {

GpuSimulator::GpuSimulator(GpuConfig config, const SecureMap* secure_map)
    : config_(config),
      to_l2_(static_cast<Cycle>(config.interconnect_latency)),
      to_sm_(static_cast<Cycle>(config.interconnect_latency)) {
  for (int c = 0; c < config_.num_channels; ++c) {
    controllers_.push_back(std::make_unique<MemoryController>(config_, secure_map));
    l2_slices_.push_back(std::make_unique<L2Slice>(config_, controllers_.back().get()));
  }
  for (int s = 0; s < config_.num_sms; ++s) {
    sms_.push_back(std::make_unique<SmCore>(config_, s, &to_l2_));
  }
}

void GpuSimulator::set_probe(BusProbe* probe) {
  for (auto& mc : controllers_) mc->set_probe(probe);
}

int GpuSimulator::channel_of(Addr addr) const {
  return static_cast<int>((addr / static_cast<Addr>(config_.channel_interleave_bytes)) %
                          static_cast<Addr>(config_.num_channels));
}

void GpuSimulator::load_work(std::vector<WarpProgramPtr> programs) {
  // Round-robin deal across SMs, filling each SM's warp slots evenly.
  std::vector<std::vector<WarpProgramPtr>> per_sm(sms_.size());
  for (std::size_t i = 0; i < programs.size(); ++i) {
    per_sm[i % sms_.size()].push_back(std::move(programs[i]));
  }
  for (std::size_t s = 0; s < sms_.size(); ++s) {
    if (per_sm[s].size() > static_cast<std::size_t>(config_.warps_per_sm)) {
      throw std::invalid_argument(
          "more warp programs than warp slots; split the grid into waves");
    }
    sms_[s]->load_programs(std::move(per_sm[s]));
  }
}

void GpuSimulator::route_request(Cycle now, const MemRequest& request) {
  const Addr line =
      request.addr & ~static_cast<Addr>(config_.line_bytes - 1);
  const int channel = channel_of(line);
  L2Slice& slice = *l2_slices_[static_cast<std::size_t>(channel)];
  if (request.is_write) {
    slice.write(now, line);
    return;
  }
  Cycle fill_ready = 0;
  const auto result =
      slice.read(now, line, Waiter{request.sm_id, request.warp_id}, &fill_ready);
  if (result.hit) {
    to_sm_.push(result.ready, Response{request.sm_id, request.warp_id});
  } else if (!result.merged) {
    fills_.push(FillEvent{fill_ready, line, channel});
  }
}

void GpuSimulator::deliver_ready(Cycle now) {
  while (auto request = to_l2_.pop_ready(now)) route_request(now, *request);
  while (!fills_.empty() && fills_.top().ready <= now) {
    const FillEvent event = fills_.top();
    fills_.pop();
    auto waiters =
        l2_slices_[static_cast<std::size_t>(event.channel)]->complete_fill(now, event.addr);
    for (const Waiter& waiter : waiters) {
      to_sm_.push(now, Response{waiter.sm_id, waiter.warp_id});
    }
  }
  while (auto response = to_sm_.pop_ready(now)) {
    sms_[static_cast<std::size_t>(response->sm_id)]->on_load_return(response->warp_id);
  }
}

Cycle GpuSimulator::next_event_cycle() const {
  Cycle next = std::numeric_limits<Cycle>::max();
  if (!to_l2_.empty()) next = std::min(next, to_l2_.front_ready());
  if (!to_sm_.empty()) next = std::min(next, to_sm_.front_ready());
  if (!fills_.empty()) next = std::min(next, fills_.top().ready);
  for (const auto& sm : sms_) next = std::min(next, sm->next_launch_cycle());
  return next;
}

void GpuSimulator::take_sample(Cycle now) {
  const Cycle elapsed = now - sample_base_.cycle;
  if (elapsed == 0) return;
  std::uint64_t instructions = 0;
  for (const auto& sm : sms_) instructions += sm->warp_instructions();
  instructions *= static_cast<std::uint64_t>(config_.warp_size);
  double dram_busy = 0.0, aes_busy = 0.0;
  std::uint64_t dram_bytes = 0;
  for (const auto& mc : controllers_) {
    dram_busy += mc->dram_busy_cycles();
    aes_busy += mc->aes_busy_cycles();
    dram_bytes += mc->read_bytes() + mc->write_bytes();
  }

  // Queue-occupancy census at the sample instant: warps parked on a full
  // load window vs a WaitLoads barrier, summed across SMs. These are point
  // reads (not deltas), so no sample_base_ entry.
  int window_waiters = 0, barrier_waiters = 0;
  for (const auto& sm : sms_) {
    window_waiters += sm->window_waiters();
    barrier_waiters += sm->barrier_waiters();
  }

  telemetry::TimeSample sample;
  sample.cycle = now;
  const double cycles = static_cast<double>(elapsed);
  sample.ipc =
      static_cast<double>(instructions - sample_base_.thread_instructions) / cycles;
  sample.dram_util = (dram_busy - sample_base_.dram_busy) /
                     (cycles * static_cast<double>(config_.num_channels));
  sample.aes_util = (aes_busy - sample_base_.aes_busy) /
                    (cycles * static_cast<double>(config_.num_channels) *
                     static_cast<double>(config_.engines_per_controller));
  sample.dram_bytes = dram_bytes - sample_base_.dram_bytes;
  sample.window_waiters = static_cast<double>(window_waiters);
  sample.barrier_waiters = static_cast<double>(barrier_waiters);
  sampler_->record(sample);
  sample_base_ = {now, instructions, dram_busy, aes_busy, dram_bytes};
}

void GpuSimulator::run(Cycle max_cycles) {
  for (;;) {
    deliver_ready(now_);
    int issued = 0;
    bool launches_pending = false;
    if (fast_path_) {
      // Skip SMs whose tick() is a no-op at this cycle (no ready warp, no
      // pending launch): identical state evolution, none of the per-SM
      // launch-scan / ready-scan cost for drained or not-yet-hot cores.
      for (auto& sm : sms_) {
        if (sm->may_issue()) issued += sm->tick(now_);
        launches_pending |= sm->launches_pending();
      }
    } else {
      // Naive reference loop: every SM ticked on every visited cycle. Kept
      // behind --no-fast-path for the differential equivalence harness.
      for (auto& sm : sms_) issued += sm->tick(now_);
    }

    if (sampler_ && sampler_->due(now_)) take_sample(now_);

    const bool warps_done =
        std::all_of(sms_.begin(), sms_.end(),
                    [](const auto& sm) { return sm->all_done(); });
    const bool queues_empty = to_l2_.empty() && to_sm_.empty() && fills_.empty();
    if (warps_done && queues_empty) break;
    if (max_cycles && now_ >= max_cycles) break;

    Cycle next = now_ + 1;
    if (fast_path_ && issued == 0 && !launches_pending) {
      // Nothing issuable and no launch backfill can trigger: every tick()
      // until the next memory event is a provable no-op (a zero-issue tick
      // leaves every ready ring empty), so jump straight to that event.
      // The pending-launch gate matters: tick()'s backfill clause may start
      // a parked warp on ANY cycle the ready ring runs shallow, so spans
      // containing pending launches are advanced cycle by cycle — that is
      // what keeps this path bit-identical to the naive reference loop.
      const Cycle event = next_event_cycle();
      if (event != std::numeric_limits<Cycle>::max() && event > next) {
        next = event;
      }
    }
    // The span [now_, next) is state-constant: no SM issues and no memory
    // event completes inside it, which is what lets the profiler attribute
    // the whole span from the state observed at now_.
    if (profiler_) profiler_->account(*this, now_, next);
    now_ = next;
  }

  // Drain write-back state so trailing stores/counter flushes are accounted.
  // L2 dirty-line writebacks stay posted (write_line's documented contract:
  // they consume bandwidth but nobody waits), but the counter-cache flush is
  // the last traffic of the run — its drain-complete cycle becomes the final
  // cycle, so counter-mode end-of-run writeback cost is no longer dropped.
  for (std::size_t c = 0; c < l2_slices_.size(); ++c) l2_slices_[c]->flush(now_);
  Cycle drained = now_;
  for (auto& mc : controllers_) drained = std::max(drained, mc->flush(now_));
  finish_cycle_ = drained;
  if (profiler_) profiler_->finish(*this, now_, finish_cycle_);
  if (sampler_) take_sample(finish_cycle_);  // close the series at run end
}

SimStats GpuSimulator::stats() const {
  SimStats stats;
  stats.cycles = finish_cycle_;
  for (const auto& sm : sms_) {
    stats.warp_instructions += sm->warp_instructions();
  }
  stats.thread_instructions =
      stats.warp_instructions * static_cast<std::uint64_t>(config_.warp_size);
  for (const auto& slice : l2_slices_) {
    stats.l2_hits += slice->hit_rate().hits;
    stats.l2_misses += slice->hit_rate().total - slice->hit_rate().hits;
  }
  for (const auto& mc : controllers_) mc->accumulate(stats);
  return stats;
}

}  // namespace sealdl::sim
