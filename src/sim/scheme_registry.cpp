#include "sim/scheme_registry.hpp"

#include <algorithm>
#include <array>

namespace sealdl::sim {
namespace {

// ---------------------------------------------------------------------------
// Concrete scheme models. Each instance is a stateless const singleton owned
// by this translation unit; the registry hands out pointers that stay valid
// for the life of the process. Timing shapes must match the paper's dataflow
// exactly — the five paper entries are pinned byte-identical to the
// pre-refactor controller by the scheme-golden ctest gate.
// ---------------------------------------------------------------------------

/// Baseline: no encryption. The controller never routes traffic through a
/// secure path (needs_encryption is false for every address), so the secure
/// hooks fall back to plain DRAM service should anything ever call them.
class BaselineModel final : public SchemeModel {
 public:
  [[nodiscard]] const SchemeContract& contract() const override {
    static constexpr SchemeContract kContract{
        .scope = ProtectionScope::kNone,
        .wire = WireVisibility::kFullPlain,
        .metadata = MetadataModel::kNone,
        .read_shape = SerializationShape::kPassthrough,
        .pays_aes_occupancy = false,
    };
    return kContract;
  }
  Cycle read_secure(Host& host, Cycle now, Addr /*addr*/,
                    std::uint64_t bytes) const override {
    return host.dram_schedule(now, bytes);
  }
  Cycle write_secure(Host& host, Cycle now, Addr /*addr*/,
                     std::uint64_t bytes) const override {
    return host.dram_schedule(now, bytes);
  }
};

/// Direct (XEX-style): the cipher is serialized with the data. Reads decrypt
/// after DRAM returns the line; writes encrypt before the line can drain.
class DirectModel final : public SchemeModel {
 public:
  explicit DirectModel(const SchemeContract& contract) : contract_(contract) {}
  [[nodiscard]] const SchemeContract& contract() const override {
    return contract_;
  }
  Cycle read_secure(Host& host, Cycle now, Addr /*addr*/,
                    std::uint64_t bytes) const override {
    // Data must arrive before the (de)cipher can start.
    const Cycle data_done = host.dram_schedule(now, bytes);
    return host.aes_schedule(data_done, bytes);
  }
  Cycle write_secure(Host& host, Cycle now, Addr /*addr*/,
                     std::uint64_t bytes) const override {
    const Cycle cipher_done = host.aes_schedule(now, bytes);
    return host.dram_schedule(cipher_done, bytes);
  }

 private:
  SchemeContract contract_;
};

/// Counter mode: pad generation starts as soon as the counter is known and
/// overlaps the data fetch; the final XOR costs one cycle. Counter blocks are
/// fetched through the same channel via an on-chip counter cache.
class CounterModel : public SchemeModel {
 public:
  explicit CounterModel(const SchemeContract& contract) : contract_(contract) {}
  [[nodiscard]] const SchemeContract& contract() const override {
    return contract_;
  }
  Cycle read_secure(Host& host, Cycle now, Addr addr,
                    std::uint64_t bytes) const override {
    const Cycle data_done = host.dram_schedule(now, bytes);
    const Cycle counter_done = host.fetch_counter(now, addr, /*for_write=*/false);
    const Cycle pad_done = host.aes_schedule(counter_done, bytes);
    return std::max(data_done, pad_done) + 1;
  }
  Cycle write_secure(Host& host, Cycle now, Addr addr,
                     std::uint64_t bytes) const override {
    // Writes bump the per-line counter, so the counter fetch dirties its
    // counter-cache line; the encrypted payload drains after the pad XOR.
    const Cycle counter_done = host.fetch_counter(now, addr, /*for_write=*/true);
    const Cycle pad_done = host.aes_schedule(counter_done, bytes);
    return host.dram_schedule(pad_done + 1, bytes);
  }
  [[nodiscard]] bool uses_counter_cache() const override { return true; }
  [[nodiscard]] int counter_bytes_per_line(const GpuConfig& config) const override {
    return config.effective_counter_bytes();
  }

 private:
  SchemeContract contract_;
};

/// Seculator-style compact counter layout (PAPERS.md): the timing dataflow is
/// standard counter mode, but counters are packed one byte per data line
/// regardless of the configured counter width — 8x more counters per
/// counter-cache line than the default 64-bit organization, so the same 96 KB
/// cache covers 8x the footprint and metadata fills drop accordingly.
class SeculatorModel final : public CounterModel {
 public:
  using CounterModel::CounterModel;
  [[nodiscard]] int counter_bytes_per_line(const GpuConfig& /*config*/) const override {
    return 1;
  }
};

// GuardNN-style selective protection reuses DirectModel timing with a
// weights-only scope: the boundary is structural (model parameters), not
// plan-derived, so no separate model class is needed — the registry entry
// pairs Direct timing with ProtectionScope::kWeights.

constexpr SchemeContract kDirectFull{
    .scope = ProtectionScope::kAll,
    .wire = WireVisibility::kFullCipher,
    .metadata = MetadataModel::kNone,
    .read_shape = SerializationShape::kAesAfterData,
    .pays_aes_occupancy = true,
};
constexpr SchemeContract kCounterFull{
    .scope = ProtectionScope::kAll,
    .wire = WireVisibility::kFullCipher,
    .metadata = MetadataModel::kCounterLines,
    .read_shape = SerializationShape::kPadOverlapsData,
    .pays_aes_occupancy = true,
};
constexpr SchemeContract kSealD{
    .scope = ProtectionScope::kPlanRows,
    .wire = WireVisibility::kPlanBoundary,
    .metadata = MetadataModel::kNone,
    .read_shape = SerializationShape::kAesAfterData,
    .pays_aes_occupancy = true,
};
constexpr SchemeContract kSealC{
    .scope = ProtectionScope::kPlanRows,
    .wire = WireVisibility::kPlanBoundary,
    .metadata = MetadataModel::kCounterLines,
    .read_shape = SerializationShape::kPadOverlapsData,
    .pays_aes_occupancy = true,
};
constexpr SchemeContract kGuardNN{
    .scope = ProtectionScope::kWeights,
    .wire = WireVisibility::kWeightsCipher,
    .metadata = MetadataModel::kNone,
    .read_shape = SerializationShape::kAesAfterData,
    .pays_aes_occupancy = true,
};

const BaselineModel g_baseline{};
const DirectModel g_direct{kDirectFull};
const CounterModel g_counter{kCounterFull};
const DirectModel g_seal_d{kSealD};
const CounterModel g_seal_c{kSealC};
const SeculatorModel g_seculator{kCounterFull};
const DirectModel g_guardnn{kGuardNN};

// Paper schemes first (the order the fig benches sweep), rivals after.
constexpr int kNumSchemes = 7;
const std::array<SchemeInfo, kNumSchemes> g_registry{{
    {"baseline", "Baseline", EncryptionScheme::kNone, ProtectionScope::kNone,
     &g_baseline, /*paper=*/true},
    {"direct", "Direct", EncryptionScheme::kDirect, ProtectionScope::kAll,
     &g_direct, /*paper=*/true},
    {"counter", "Counter", EncryptionScheme::kCounter, ProtectionScope::kAll,
     &g_counter, /*paper=*/true},
    {"seal-d", "SEAL-D", EncryptionScheme::kDirect, ProtectionScope::kPlanRows,
     &g_seal_d, /*paper=*/true},
    {"seal-c", "SEAL-C", EncryptionScheme::kCounter, ProtectionScope::kPlanRows,
     &g_seal_c, /*paper=*/true},
    {"seculator", "Seculator", EncryptionScheme::kCounter, ProtectionScope::kAll,
     &g_seculator, /*paper=*/false},
    {"guardnn", "GuardNN", EncryptionScheme::kDirect, ProtectionScope::kWeights,
     &g_guardnn, /*paper=*/false},
}};

}  // namespace

std::span<const SchemeInfo> scheme_registry() { return g_registry; }

const SchemeInfo* find_scheme(std::string_view name) {
  const auto it = std::find_if(
      g_registry.begin(), g_registry.end(), [&](const SchemeInfo& info) {
        return name == info.cli_name || name == info.display;
      });
  return it == g_registry.end() ? nullptr : &*it;
}

const SchemeInfo& default_scheme_for(EncryptionScheme family) {
  switch (family) {
    case EncryptionScheme::kNone:
      return g_registry[0];
    case EncryptionScheme::kDirect:
      return g_registry[1];
    case EncryptionScheme::kCounter:
      return g_registry[2];
  }
  return g_registry[0];
}

void apply_scheme(const SchemeInfo& info, GpuConfig& config) {
  config.scheme = info.family;
  config.selective = info.selective();
  config.scheme_model = info.model;
}

}  // namespace sealdl::sim
