#include "sim/mem_controller.hpp"

#include <algorithm>

#include "sim/bus_probe.hpp"
#include "sim/scheme_registry.hpp"

namespace sealdl::sim {

MemoryController::MemoryController(const GpuConfig& config,
                                   const SecureMap* secure_map)
    : config_(config),
      model_(config.scheme_model ? config.scheme_model
                                 : default_scheme_for(config.scheme).model),
      secure_map_(secure_map),
      dram_(config.dram_bytes_per_cycle_per_channel(),
            static_cast<Cycle>(config.dram_latency)),
      aes_(config.aes_bytes_per_cycle(),
           static_cast<Cycle>(config.engine.latency_cycles)) {
  if (model_->uses_counter_cache()) {
    counter_cache_.emplace(static_cast<std::size_t>(config.counter_cache_kb) * 1024,
                           config.counter_cache_assoc, config.line_bytes);
  }
}

bool MemoryController::needs_encryption(Addr addr) const {
  if (config_.scheme == EncryptionScheme::kNone) return false;
  if (!config_.selective) return true;
  return secure_map_ == nullptr ||
         secure_map_->line_is_secure(addr, config_.line_bytes);
}

Addr MemoryController::counter_line_addr(Addr data_addr) const {
  const Addr counter_index = data_addr / static_cast<Addr>(config_.line_bytes);
  const Addr byte_addr =
      kCounterRegionBase +
      counter_index * static_cast<Addr>(model_->counter_bytes_per_line(config_));
  return byte_addr & ~static_cast<Addr>(config_.line_bytes - 1);
}

Cycle MemoryController::dram_schedule(Cycle now, std::uint64_t bytes) {
  return dram_.schedule(now, bytes);
}

Cycle MemoryController::aes_schedule(Cycle now, std::uint64_t bytes) {
  return aes_.schedule(now, bytes);
}

Cycle MemoryController::fetch_counter(Cycle now, Addr addr, bool for_write) {
  const Addr cline = counter_line_addr(addr);
  const auto result = counter_cache_->access(cline, /*mark_dirty=*/for_write);
  if (result.hit) return now;  // counter available immediately from on-chip SRAM

  // Miss: fetch the counter block from DRAM through this same channel.
  const auto bytes = static_cast<std::uint64_t>(config_.line_bytes);
  counter_traffic_bytes_ += bytes;
  counter_fill_bytes_ += bytes;
  const Cycle done = dram_.schedule(now, bytes);
  if (probe_) probe_->on_transfer(cline, static_cast<std::uint32_t>(bytes), false, false);
  const auto insert = counter_cache_->insert(cline, /*dirty=*/for_write);
  if (insert.writeback) {
    counter_traffic_bytes_ += bytes;
    counter_writeback_bytes_ += bytes;
    dram_.schedule(done, bytes);
    if (probe_) {
      probe_->on_transfer(*insert.writeback, static_cast<std::uint32_t>(bytes), true, false);
    }
  }
  counter_busy_until_ = std::max(counter_busy_until_, dram_busy_until());
  return done;
}

Cycle MemoryController::read_line(Cycle now, Addr addr) {
  const auto bytes = static_cast<std::uint64_t>(config_.line_bytes);
  read_bytes_ += bytes;
  const bool secure = needs_encryption(addr);
  if (probe_) probe_->on_transfer(addr, static_cast<std::uint32_t>(bytes), false, secure);

  if (!secure) {
    bypassed_bytes_ += config_.scheme == EncryptionScheme::kNone ? 0 : bytes;
    return dram_.schedule(now, bytes);
  }

  encrypted_bytes_ += bytes;
  return model_->read_secure(*this, now, addr, bytes);
}

Cycle MemoryController::write_line(Cycle now, Addr addr) {
  const auto bytes = static_cast<std::uint64_t>(config_.line_bytes);
  write_bytes_ += bytes;
  const bool secure = needs_encryption(addr);
  if (probe_) probe_->on_transfer(addr, static_cast<std::uint32_t>(bytes), true, secure);

  if (!secure) {
    bypassed_bytes_ += config_.scheme == EncryptionScheme::kNone ? 0 : bytes;
    return dram_.schedule(now, bytes);
  }

  encrypted_bytes_ += bytes;
  return model_->write_secure(*this, now, addr, bytes);
}

void MemoryController::accumulate(SimStats& stats) const {
  stats.dram_read_bytes += read_bytes_;
  stats.dram_write_bytes += write_bytes_;
  stats.encrypted_bytes += encrypted_bytes_;
  stats.bypassed_bytes += bypassed_bytes_;
  stats.aes_busy_cycles += aes_busy_cycles();  // engine-summed, per the field doc
  stats.dram_busy_cycles += dram_.busy_cycles();
  stats.counter_traffic_bytes += counter_traffic_bytes_;
  stats.counter_fill_bytes += counter_fill_bytes_;
  stats.counter_writeback_bytes += counter_writeback_bytes_;
  stats.counter_flush_bytes += counter_flush_bytes_;
  if (counter_cache_) {
    stats.counter_hits += counter_cache_->hit_rate().hits;
    stats.counter_misses +=
        counter_cache_->hit_rate().total - counter_cache_->hit_rate().hits;
  }
}

Cycle MemoryController::flush(Cycle now) {
  if (!counter_cache_) return now;
  const auto bytes = static_cast<std::uint64_t>(config_.line_bytes);
  Cycle drained = now;
  for (const Addr cline : counter_cache_->flush_dirty()) {
    counter_traffic_bytes_ += bytes;
    counter_flush_bytes_ += bytes;
    drained = std::max(drained, dram_.schedule(now, bytes));
    if (probe_) probe_->on_transfer(cline, static_cast<std::uint32_t>(bytes), true, false);
  }
  counter_busy_until_ = std::max(counter_busy_until_, dram_busy_until());
  return drained;
}

}  // namespace sealdl::sim
