// One streaming multiprocessor: resident warps scheduled from an explicit
// ready queue with a bounded in-flight load window (MSHR model).
//
// Readiness is event-driven: a warp leaves the ready queue when it blocks on
// a load barrier or a full load window, and re-enters when a load response
// arrives. tick() therefore costs O(issue_width), not O(warps), which keeps
// memory-bound phases (the interesting ones for this paper) fast to simulate.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "sim/gpu_config.hpp"
#include "sim/pipes.hpp"
#include "sim/request.hpp"
#include "sim/warp_program.hpp"

namespace sealdl::sim {

class SmCore {
 public:
  /// `to_l2` is the interconnect queue memory requests are pushed into; it is
  /// borrowed and must outlive the core. A direct queue pointer (rather than
  /// a std::function sink) keeps the per-request send a plain inlined ring
  /// push — the issue loop is the simulator's hottest path.
  SmCore(const GpuConfig& config, int sm_id, DelayQueue<MemRequest>* to_l2);

  /// Assigns programs to warps; warps beyond programs.size() stay idle.
  void load_programs(std::vector<WarpProgramPtr> programs);

  /// Issues up to issue_width warp instructions; returns the number issued.
  int tick(Cycle now);

  /// Called when a line load for `warp_id` returns from the memory system.
  void on_load_return(int warp_id);

  [[nodiscard]] bool all_done() const { return live_warps_ == 0; }
  [[nodiscard]] std::uint64_t warp_instructions() const { return instructions_; }
  [[nodiscard]] int outstanding_loads() const { return sm_outstanding_; }

  // Issue/stall breakdown (telemetry): instructions by kind plus the two ways
  // a warp leaves the ready ring without issuing.
  [[nodiscard]] std::uint64_t compute_issued() const { return compute_issued_; }
  [[nodiscard]] std::uint64_t loads_issued() const { return loads_issued_; }
  [[nodiscard]] std::uint64_t stores_issued() const { return stores_issued_; }
  [[nodiscard]] std::uint64_t window_stalls() const { return window_stalls_; }
  [[nodiscard]] std::uint64_t barrier_parks() const { return barrier_parks_; }

  // Instantaneous wait-state census (cycle-attribution profiler): how many
  // launched warps are currently parked on a WaitLoads barrier vs. the full
  // per-SM load window. Pre-launch warps count in neither (they are idle).
  [[nodiscard]] int barrier_waiters() const { return barrier_waiters_; }
  [[nodiscard]] int window_waiters() const {
    return static_cast<int>(window_wait_.size());
  }

  /// True if at least one warp could issue right now (used by the simulator's
  /// idle-cycle fast-forward).
  [[nodiscard]] bool has_ready_warp() const { return !ready_.empty(); }

  /// True while loaded warps have not yet entered the ready ring. The launch
  /// backfill clause in tick() can start one of them on ANY cycle (whenever
  /// the ready ring runs shallow), so cycles may only be fast-forwarded when
  /// no launches are pending on any SM.
  [[nodiscard]] bool launches_pending() const {
    return next_launch_ < launch_count_;
  }

  /// True when tick() could change state at `now`: a warp is ready to issue
  /// or a launch is pending. When false, tick() is a provable no-op (the
  /// launch loop has nothing to start and the issue loop nothing to scan), so
  /// the fast path skips the call without perturbing any counter or census.
  [[nodiscard]] bool may_issue() const {
    return !ready_.empty() || launches_pending();
  }

  /// Cycle of the next staggered warp launch, or Cycle max when none pend.
  [[nodiscard]] Cycle next_launch_cycle() const {
    return next_launch_ < launch_count_ ? next_launch_cycle_
                                        : ~static_cast<Cycle>(0);
  }

 private:
  enum class WarpWait : std::uint8_t {
    kReady,       ///< in the ready queue
    kLoads,       ///< blocked on a WaitLoads barrier
    kWindow,      ///< blocked on the full per-SM load window
    kDone,
  };

  struct WarpState {
    WarpProgramPtr program;
    std::optional<WarpOp> op;  ///< current (possibly partially retired) op
    int outstanding_loads = 0;
    int wait_threshold = 0;    ///< for kLoads: resume when outstanding <= this
    WarpWait wait = WarpWait::kDone;
  };

  /// Refills warp.op and resolves satisfied barriers; marks the warp done or
  /// barrier-blocked as needed. Returns true if the warp can issue now.
  bool prepare(int idx, WarpState& warp);

  const GpuConfig& config_;
  int sm_id_;
  DelayQueue<MemRequest>* to_l2_;
  std::vector<WarpState> warps_;
  std::deque<int> ready_;        ///< round-robin issue order
  std::vector<int> window_wait_; ///< warps parked on a full load window
  int next_launch_ = 0;          ///< warps [next_launch_, ...) not yet started
  Cycle next_launch_cycle_ = 0;
  int launch_count_ = 0;         ///< total warps to launch
  int live_warps_ = 0;
  int barrier_waiters_ = 0;  ///< launched warps in kLoads (see prepare())
  int sm_outstanding_ = 0;
  std::uint64_t instructions_ = 0;
  std::uint64_t compute_issued_ = 0;
  std::uint64_t loads_issued_ = 0;
  std::uint64_t stores_issued_ = 0;
  std::uint64_t window_stalls_ = 0;
  std::uint64_t barrier_parks_ = 0;
};

}  // namespace sealdl::sim
