// Generic set-associative tag-array cache with LRU replacement.
//
// Used for the per-channel L2 slices and for the memory controllers' counter
// caches. Only tags and state are modeled (the timing simulator never carries
// payloads; the functional path lives in sim/functional_memory.hpp).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "sim/request.hpp"
#include "util/stats.hpp"

namespace sealdl::sim {

/// Outcome of a cache access.
struct CacheResult {
  bool hit = false;
  /// Address of a dirty line that had to be written back to make room
  /// (only set when an insertion evicted a dirty victim).
  std::optional<Addr> writeback;
};

class SetAssocCache {
 public:
  /// `capacity_bytes` must be a multiple of `line_bytes * assoc`.
  SetAssocCache(std::size_t capacity_bytes, int assoc, int line_bytes);

  /// Looks up `addr`; on hit updates LRU (and dirty if `mark_dirty`).
  /// Does NOT allocate on miss — call insert() for that.
  CacheResult access(Addr addr, bool mark_dirty);

  /// Allocates a line for `addr` (which must currently miss), evicting the
  /// LRU way. Returns the dirty victim's address if one was displaced.
  CacheResult insert(Addr addr, bool dirty);

  /// True if `addr`'s line is currently resident (no LRU update).
  [[nodiscard]] bool contains(Addr addr) const;

  /// Invalidates the line if present; returns its address if it was dirty.
  std::optional<Addr> invalidate(Addr addr);

  /// Drains every dirty line (end-of-simulation writeback flush).
  std::vector<Addr> flush_dirty();

  [[nodiscard]] const util::HitRate& hit_rate() const { return hits_; }
  [[nodiscard]] std::size_t num_sets() const { return sets_; }
  [[nodiscard]] int line_bytes() const { return line_bytes_; }

 private:
  struct Way {
    Addr tag = 0;
    bool valid = false;
    bool dirty = false;
    std::uint64_t lru = 0;  ///< larger = more recently used
  };

  [[nodiscard]] std::size_t set_index(Addr addr) const;
  [[nodiscard]] Addr tag_of(Addr addr) const;

  std::size_t sets_;
  int assoc_;
  int line_bytes_;
  std::vector<Way> ways_;  ///< sets_ * assoc_, row-major by set
  std::uint64_t clock_ = 0;
  util::HitRate hits_;
};

}  // namespace sealdl::sim
