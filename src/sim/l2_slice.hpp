// One per-channel slice of the shared L2 cache, with MSHR-style miss merging.
//
// Reads that hit are answered after the slice latency; misses are merged per
// line and forwarded to the channel's memory controller. Stores are
// write-back write-allocate; a full-line store allocates without a fill
// (DL kernels write whole coalesced lines).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "sim/cache.hpp"
#include "sim/gpu_config.hpp"
#include "sim/mem_controller.hpp"
#include "sim/request.hpp"

namespace sealdl::sim {

/// A load waiting for a line fill.
struct Waiter {
  int sm_id;
  int warp_id;
};

/// Result of presenting a read to the slice.
struct L2ReadResult {
  bool hit = false;
  /// Valid when `hit`: cycle the response leaves the slice.
  Cycle ready = 0;
  /// True when the read was merged into an already-pending fill (no new
  /// DRAM request was issued).
  bool merged = false;
};

class L2Slice {
 public:
  L2Slice(const GpuConfig& config, MemoryController* controller);

  /// Presents a load for `addr` arriving at `now`. On a miss the waiter is
  /// registered and fill_ready reports when the line returns from DRAM.
  L2ReadResult read(Cycle now, Addr addr, Waiter waiter, Cycle* fill_ready);

  /// Presents a full-line store arriving at `now`.
  void write(Cycle now, Addr addr);

  /// Completes the fill for `addr`: installs the line, performs any dirty
  /// writeback, and returns the waiters to notify.
  std::vector<Waiter> complete_fill(Cycle now, Addr addr);

  /// Flushes dirty lines to the controller (end of run drain).
  void flush(Cycle now);

  [[nodiscard]] const util::HitRate& hit_rate() const { return cache_.hit_rate(); }

  // Cycle-attribution profiler probes. The hit window is a span prefix: a
  // hit answered at `now` occupies the slice until now + l2_latency, and no
  // new hit can start during a run-loop fast-forward.
  [[nodiscard]] Cycle hit_busy_until() const { return hit_busy_until_; }
  /// True while at least one MSHR entry awaits its DRAM fill.
  [[nodiscard]] bool has_pending_fills() const { return !mshr_.empty(); }

 private:
  const GpuConfig& config_;
  MemoryController* controller_;
  SetAssocCache cache_;
  std::unordered_map<Addr, std::vector<Waiter>> mshr_;
  Cycle hit_busy_until_ = 0;
};

}  // namespace sealdl::sim
