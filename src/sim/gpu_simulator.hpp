// Top-level cycle-level model of the encrypted DL accelerator.
//
// Wires together: SM cores -> interconnect -> per-channel L2 slices ->
// memory controllers (with AES engines / counter caches) -> GDDR5 channels.
// Drive it by loading warp programs (from src/workload generators) and
// calling run(); read results from stats().
#pragma once

#include <memory>
#include <queue>
#include <vector>

#include "sim/gpu_config.hpp"
#include "sim/l2_slice.hpp"
#include "sim/mem_controller.hpp"
#include "sim/pipes.hpp"
#include "sim/request.hpp"
#include "sim/secure_map.hpp"
#include "sim/sim_stats.hpp"
#include "sim/sm_core.hpp"
#include "telemetry/sampler.hpp"

namespace sealdl::telemetry {
class CycleProfiler;
}  // namespace sealdl::telemetry

namespace sealdl::sim {

class GpuSimulator {
 public:
  /// `secure_map` describes which address ranges hold encrypted data; it is
  /// only consulted when config.selective is true (the SEAL schemes). It may
  /// be null for full or no encryption. The map must outlive the simulator.
  explicit GpuSimulator(GpuConfig config, const SecureMap* secure_map = nullptr);

  /// Distributes warp programs round-robin across SMs and their warp slots.
  /// Call before run(); replaces any previous assignment.
  void load_work(std::vector<WarpProgramPtr> programs);

  /// Runs until all warps retire and the memory system drains.
  /// `max_cycles` guards against runaway simulations (0 = unlimited).
  void run(Cycle max_cycles = 0);

  /// Selects the run-loop implementation. The fast path (the default) skips
  /// SMs whose tick() would provably be a no-op and batch-advances the clock
  /// over state-constant idle spans (see next_event_cycle()); the slow path
  /// is the naive reference — every SM ticked on every cycle — kept solely
  /// for differential testing. Both paths produce bit-identical stats,
  /// telemetry registries, cycle profiles, and bus traffic; only the cycles
  /// at which the interval sampler observes the run may differ (the sampler
  /// records at visited cycles, and the fast path visits fewer). Enforced by
  /// tests/test_fast_path.cpp across networks x schemes x ratios.
  void set_fast_path(bool on) { fast_path_ = on; }
  [[nodiscard]] bool fast_path() const { return fast_path_; }

  /// Gathers statistics from every component.
  [[nodiscard]] SimStats stats() const;

  /// Attaches a bus probe to every memory controller (snooper vantage).
  void set_probe(BusProbe* probe);

  /// Attaches an interval sampler (telemetry time series). May be null (the
  /// default): the run loop then pays exactly one branch per cycle. The
  /// sampler must outlive run().
  void set_sampler(telemetry::IntervalSampler* sampler) { sampler_ = sampler; }

  /// Attaches a cycle-attribution profiler (see telemetry/profiler.hpp). Same
  /// contract as the sampler: null (the default) costs one branch per
  /// run-loop iteration; non-null must outlive run(). The profiler sees every
  /// loop span [now, next) via account() and the post-loop drain tail via
  /// finish().
  void set_profiler(telemetry::CycleProfiler* profiler) { profiler_ = profiler; }

  [[nodiscard]] const GpuConfig& config() const { return config_; }

  // Component access for telemetry collection (pull model: the exporters in
  // src/telemetry read these after run(); the hot loop stays untouched).
  [[nodiscard]] int num_sms() const { return static_cast<int>(sms_.size()); }
  [[nodiscard]] const SmCore& sm(int i) const {
    return *sms_[static_cast<std::size_t>(i)];
  }
  [[nodiscard]] int num_channels() const {
    return static_cast<int>(controllers_.size());
  }
  [[nodiscard]] const MemoryController& controller(int c) const {
    return *controllers_[static_cast<std::size_t>(c)];
  }
  [[nodiscard]] const L2Slice& l2_slice(int c) const {
    return *l2_slices_[static_cast<std::size_t>(c)];
  }

 private:
  struct FillEvent {
    Cycle ready;
    Addr addr;
    int channel;
    bool operator>(const FillEvent& other) const { return ready > other.ready; }
  };
  struct Response {
    int sm_id;
    int warp_id;
  };

  [[nodiscard]] int channel_of(Addr addr) const;
  void route_request(Cycle now, const MemRequest& request);
  void deliver_ready(Cycle now);
  [[nodiscard]] Cycle next_event_cycle() const;
  void take_sample(Cycle now);

  GpuConfig config_;
  std::vector<std::unique_ptr<SmCore>> sms_;
  std::vector<std::unique_ptr<MemoryController>> controllers_;
  std::vector<std::unique_ptr<L2Slice>> l2_slices_;
  DelayQueue<MemRequest> to_l2_;
  DelayQueue<Response> to_sm_;
  std::priority_queue<FillEvent, std::vector<FillEvent>, std::greater<FillEvent>>
      fills_;
  Cycle now_ = 0;
  Cycle finish_cycle_ = 0;
  bool fast_path_ = true;

  telemetry::IntervalSampler* sampler_ = nullptr;
  telemetry::CycleProfiler* profiler_ = nullptr;
  /// Component totals at the previous sample, for interval deltas.
  struct SampleBase {
    Cycle cycle = 0;
    std::uint64_t thread_instructions = 0;
    double dram_busy = 0.0;
    double aes_busy = 0.0;
    std::uint64_t dram_bytes = 0;
  } sample_base_;
};

}  // namespace sealdl::sim
