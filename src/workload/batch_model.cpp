#include "workload/batch_model.hpp"

#include <algorithm>

namespace sealdl::workload {

double batched_layer_cycles(const LayerResult& layer, const sim::GpuConfig& config,
                            int batch) {
  const double full = layer.full_cycles();
  if (batch <= 1) return full;

  const double read_bytes =
      static_cast<double>(layer.stats.dram_read_bytes) * layer.scale;
  double weight_frac = 0.0;
  if (read_bytes > 0.0) {
    weight_frac =
        std::min(1.0, static_cast<double>(layer.weight_bytes) / read_bytes);
  }
  const double amortizable =
      full * sim::dram_utilization(layer.stats, config) * weight_frac;
  return full * static_cast<double>(batch) -
         amortizable * static_cast<double>(batch - 1);
}

double batched_network_cycles(const NetworkResult& result,
                              const sim::GpuConfig& config, int batch) {
  double total = 0.0;
  for (const LayerResult& layer : result.layers) {
    total += batched_layer_cycles(layer, config, batch);
  }
  return total;
}

}  // namespace sealdl::workload
