// Whole-network timing runs: lay the model out, simulate every layer, and
// aggregate IPC / latency under a given encryption configuration.
#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/encryption_plan.hpp"
#include "core/model_layout.hpp"
#include "sim/gpu_config.hpp"
#include "sim/scheme_model.hpp"
#include "sim/sim_stats.hpp"
#include "telemetry/telemetry.hpp"

namespace sealdl::sim {
class BusProbe;
}  // namespace sealdl::sim

namespace sealdl::workload {

/// Observer factory for a run's raw bus traffic. The runner calls
/// make_probe() once per simulated layer and attaches the returned probe to
/// that layer's private simulator, so the probe is only ever touched by the
/// thread running the layer; merge_probe() then hands it back strictly in
/// spec order from the submitting thread. An implementation therefore needs
/// no synchronization, and any per-line accumulation it performs is
/// bitwise-identical regardless of --jobs — the same task-private +
/// ordered-merge discipline telemetry uses. The verify-side taint auditor
/// (verify/taint.hpp) is the canonical implementation.
class BusProbeHook {
 public:
  virtual ~BusProbeHook() = default;

  /// A fresh probe for the layer at `spec_index`; called in spec order from
  /// the submitting thread, before the layer task may start.
  virtual std::unique_ptr<sim::BusProbe> make_probe(std::size_t spec_index) = 0;

  /// Returns the probe after the layer finished; called in spec order from
  /// the submitting thread.
  virtual void merge_probe(std::unique_ptr<sim::BusProbe> probe,
                           std::size_t spec_index) = 0;
};

struct LayerResult {
  std::string name;
  sim::SimStats stats;       ///< raw stats of the simulated slice
  double scale = 1.0;        ///< full-layer cycles = stats.cycles * scale
  /// Laid-out weight footprint of the full layer (row pitch x kernel rows,
  /// zero for POOL): the batch-invariant traffic that serve::batching can
  /// amortize across requests (see workload/batch_model.hpp).
  std::uint64_t weight_bytes = 0;
  [[nodiscard]] double full_cycles() const {
    return static_cast<double>(stats.cycles) * scale;
  }
  [[nodiscard]] double ipc() const { return stats.ipc(); }
};

struct NetworkResult {
  std::vector<LayerResult> layers;

  /// Whole-inference latency in core cycles (sampled layers scaled up).
  [[nodiscard]] double total_cycles() const;

  /// Aggregate IPC: total (scaled) instructions / total (scaled) cycles.
  [[nodiscard]] double overall_ipc() const;
};

struct RunOptions {
  /// Cap on simulated tiles per layer (0 = exact). Sampling keeps full-network
  /// runs fast; per-layer cycles are scaled by the uncovered tile fraction.
  std::uint64_t max_tiles_per_layer = 2000;
  core::PlanOptions plan;
  /// When true, a SEAL plan (from `plan`) drives selective encryption; when
  /// false the whole address space is treated per the scheme.
  bool selective = false;
  /// Protection-scope override (sim/scheme_model.hpp). Unset — the default —
  /// derives the scope from `selective` and the scheme family: selective
  /// schemes protect the plan's rows, full schemes everything. kWeights
  /// (GuardNN-style) builds a weights-only secure map with no plan and runs
  /// the config selectively against it; kPlanRows forces the plan path.
  std::optional<sim::ProtectionScope> scope;
  /// When non-empty, only these spec indices are simulated (the full layout
  /// is still built, so e.g. a POOL keeps the channel encryption induced by
  /// its downstream CONV). Results appear in filter order.
  std::vector<std::size_t> layer_filter;
  /// Optional collection sink: per-layer phase records, per-component
  /// metrics, and (when its sampler is configured) time series. Null — the
  /// default — collects nothing and leaves simulation cycle-identical.
  telemetry::RunTelemetry* telemetry = nullptr;
  /// Worker threads for the per-layer simulations: 1 (default) runs the
  /// serial loop, 0 uses one worker per hardware thread, N > 1 uses N
  /// workers. Layers are independent GpuSimulator instances over the shared
  /// read-only layout/plan/secure-map, and results and telemetry are merged
  /// back in spec order — the output is bitwise-identical to jobs = 1
  /// regardless of worker count or scheduling (see docs/SIMULATOR.md,
  /// "Parallel layer simulation").
  int jobs = 1;
  /// Optional bus-traffic observer (taint auditing). Null — the default —
  /// attaches no probe and leaves simulation cycle-identical.
  BusProbeHook* probe_hook = nullptr;
  /// Sub-layer work-unit granularity: when non-zero, each layer's simulated
  /// tile slice is split into ceil(tiles / chunk_tiles) chunk waves, each a
  /// private GpuSimulator run (caches cold per wave, cycles summed), merged
  /// back strictly in (layer, chunk) order. A deep network whose layer count
  /// barely exceeds the worker count then still scales: the scheduler has
  /// layers x chunks independent units to balance. 0 — the default — keeps
  /// one work unit per layer and is byte-identical to the pre-chunking
  /// runner. Chunked results are a different (coarser-reuse) simulation than
  /// unchunked ones, but for a fixed chunk_tiles they are bitwise-invariant
  /// across --jobs, same as everything else in this runner.
  std::uint64_t chunk_tiles = 0;
  /// Selects the simulator run loop (see GpuSimulator::set_fast_path).
  /// false = naive every-SM-every-cycle reference, for differential testing.
  bool fast_path = true;
};

/// Simulates one network described by `specs` under `config`.
NetworkResult run_network(const std::vector<models::LayerSpec>& specs,
                          sim::GpuConfig config, const RunOptions& options);

/// Simulates a single layer (helper for the per-layer figures).
LayerResult run_single_layer(const models::LayerSpec& spec, sim::GpuConfig config,
                             const RunOptions& options);

}  // namespace sealdl::workload
