// Tiled GEMM workload (paper §II-B: "matrix multiplication computation that
// is the most common operation in DL algorithms", Figure 1).
//
// C[M,N] = A[M,K] * B[K,N], row-major float32. Each warp computes 32x32
// output tiles, looping over K in chunks of 32: it loads the A and B
// sub-tiles (one coalesced 128-byte line per 32-float row segment),
// barriers, computes 32*32*32 MACs, and finally stores its C tile.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/request.hpp"
#include "sim/warp_program.hpp"
#include "workload/trace_common.hpp"

namespace sealdl::workload {

struct GemmSpec {
  int m = 1024;
  int n = 1024;
  int k = 1024;
  sim::Addr a_base = 0;
  sim::Addr b_base = 0;
  sim::Addr c_base = 0;

  [[nodiscard]] std::uint64_t total_tiles() const {
    return static_cast<std::uint64_t>((m + 31) / 32) *
           static_cast<std::uint64_t>((n + 31) / 32);
  }
  [[nodiscard]] std::uint64_t bytes() const {
    return 4ULL * (static_cast<std::uint64_t>(m) * static_cast<std::uint64_t>(k) +
                   static_cast<std::uint64_t>(k) * static_cast<std::uint64_t>(n) +
                   static_cast<std::uint64_t>(m) * static_cast<std::uint64_t>(n));
  }
};

/// Builds `num_warps` persistent-warp programs covering at most `max_tiles`
/// output tiles (0 = all); tiles are dealt round-robin.
std::vector<sim::WarpProgramPtr> make_gemm_programs(const GemmSpec& spec,
                                                    int num_warps,
                                                    std::uint64_t max_tiles = 0);

}  // namespace sealdl::workload
