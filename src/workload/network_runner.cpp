#include "workload/network_runner.hpp"

#include <algorithm>
#include <future>
#include <memory>
#include <optional>
#include <utility>

#include "sim/bus_probe.hpp"
#include "sim/gpu_simulator.hpp"
#include "telemetry/collect.hpp"
#include "util/logging.hpp"
#include "util/thread_pool.hpp"
#include "workload/layer_trace.hpp"

namespace sealdl::workload {

double NetworkResult::total_cycles() const {
  double total = 0.0;
  for (const auto& layer : layers) total += layer.full_cycles();
  return total;
}

double NetworkResult::overall_ipc() const {
  double instructions = 0.0, cycles = 0.0;
  for (const auto& layer : layers) {
    instructions += static_cast<double>(layer.stats.thread_instructions) * layer.scale;
    cycles += layer.full_cycles();
  }
  return cycles ? instructions / cycles : 0.0;
}

namespace {

/// Everything one layer's simulation produces. Telemetry is collected into
/// task-private state (metrics fragment, layer-local sample series) so tasks
/// never touch the shared RunTelemetry; the merge loop below folds the
/// fragments back in spec order.
struct LayerOutcome {
  LayerResult result;
  telemetry::MetricsRegistry metrics;
  std::vector<telemetry::TimeSample> samples;
  std::optional<telemetry::LayerCycleProfile> profile;
};

/// Simulates one laid-out layer. Reads only shared-immutable state (layout,
/// secure map, config, options) plus its own simulator — safe to run from
/// any thread, and bit-deterministic regardless of which thread runs it.
LayerOutcome simulate_layer(const core::LayerAddressing& layer,
                            const sim::GpuConfig& config,
                            const sim::SecureMap& secure_map,
                            const RunOptions& options, int num_warps,
                            bool collect_metrics, sim::Cycle sample_interval,
                            bool profile, sim::BusProbe* probe) {
  LayerWork work =
      make_layer_programs(layer, num_warps, options.max_tiles_per_layer);
  sim::GpuSimulator simulator(config, &secure_map);
  simulator.load_work(std::move(work.programs));
  if (probe) simulator.set_probe(probe);
  // Private sampler at offset 0: samples carry layer-local cycles and are
  // shifted onto the global timeline when the segments are spliced in order.
  // The private sampler is never capped — decimation happens once, at the
  // shared sink, so serial and parallel runs see identical raw streams.
  std::optional<telemetry::IntervalSampler> sampler;
  if (sample_interval) {
    sampler.emplace(sample_interval);
    simulator.set_sampler(&*sampler);
  }
  // Same task-private discipline for the cycle-attribution profiler.
  std::optional<telemetry::CycleProfiler> profiler;
  if (profile) {
    profiler.emplace();
    simulator.set_profiler(&*profiler);
  }
  simulator.run();

  LayerOutcome outcome;
  outcome.result.name = layer.spec.name;
  outcome.result.stats = simulator.stats();
  outcome.result.scale = work.scale();
  if (layer.spec.type == models::LayerSpec::Type::kConv) {
    outcome.result.weight_bytes =
        layer.weight_row_pitch * static_cast<std::uint64_t>(layer.spec.in_channels);
  } else if (layer.spec.type == models::LayerSpec::Type::kFc) {
    outcome.result.weight_bytes =
        layer.weight_row_pitch * static_cast<std::uint64_t>(layer.spec.in_features);
  }
  if (collect_metrics) {
    telemetry::collect_component_metrics(simulator, outcome.metrics);
  }
  if (sampler) outcome.samples = sampler->samples();
  if (profiler) {
    outcome.profile = profiler->take_profile();
    outcome.profile->layer = outcome.result.name;
  }
  SEALDL_DEBUG << "layer " << outcome.result.name << ": "
               << outcome.result.stats.cycles << " cycles, ipc "
               << outcome.result.stats.ipc() << ", scale "
               << outcome.result.scale;
  return outcome;
}

/// Folds one layer's outcome into the run result and the shared telemetry
/// sink. Called in spec order from the submitting thread only, so the sink
/// sees the exact operation sequence of a serial run.
void merge_outcome(LayerOutcome outcome, const sim::GpuConfig& config,
                   telemetry::RunTelemetry* collect, NetworkResult& result) {
  if (collect) {
    if (auto* sampler = collect->sampler()) {
      sampler->append_shifted(outcome.samples, collect->timeline());
    }
    collect->layers().push_back(telemetry::make_layer_record(
        outcome.result.name, outcome.result.stats, config, outcome.result.scale,
        collect->timeline()));
    if (outcome.profile) {
      collect->profile().layers.push_back(std::move(*outcome.profile));
    }
    collect->registry().merge_from(outcome.metrics);
    collect->registry()
        .histogram("layer/latency_ms", 0.0, 100.0, 200)
        .add(static_cast<double>(outcome.result.stats.cycles) *
             outcome.result.scale / (config.core_mhz * 1e3));
    collect->advance_timeline(outcome.result.stats.cycles);
  }
  result.layers.push_back(std::move(outcome.result));
}

NetworkResult run_specs(const std::vector<models::LayerSpec>& specs,
                        sim::GpuConfig config, const RunOptions& options) {
  // Build the address-space layout once; all schemes share addresses so that
  // results are comparable line for line. Layout, plan, and secure map are
  // immutable from here on — layer tasks only read them.
  core::SecureHeap heap;
  core::EncryptionPlan plan;
  const core::EncryptionPlan* plan_ptr = nullptr;
  if (options.selective) {
    plan = core::EncryptionPlan::for_specs(specs, options.plan);
    plan_ptr = &plan;
  }
  core::ModelLayout layout(specs, plan_ptr, heap);
  config.selective = options.selective;

  std::vector<std::size_t> indices = options.layer_filter;
  if (indices.empty()) {
    indices.resize(layout.layers().size());
    for (std::size_t i = 0; i < indices.size(); ++i) indices[i] = i;
  }

  NetworkResult result;
  const int num_warps = config.num_sms * config.warps_per_sm;
  telemetry::RunTelemetry* collect = options.telemetry;
  const bool collect_metrics = collect != nullptr;
  const sim::Cycle sample_interval =
      collect && collect->sampler() ? collect->sampler()->interval() : 0;
  const bool profile = collect && collect->profiling();

  BusProbeHook* hook = options.probe_hook;

  const int jobs = options.jobs == 1 ? 1 : util::ThreadPool::resolve_jobs(options.jobs);
  if (jobs <= 1 || indices.size() <= 1) {
    for (const std::size_t idx : indices) {
      std::unique_ptr<sim::BusProbe> probe =
          hook ? hook->make_probe(idx) : nullptr;
      merge_outcome(
          simulate_layer(layout.layers().at(idx), config, heap.secure_map(),
                         options, num_warps, collect_metrics, sample_interval,
                         profile, probe.get()),
          config, collect, result);
      if (hook) hook->merge_probe(std::move(probe), idx);
    }
    return result;
  }

  // The pool is declared after layout/heap so that, if a merge rethrows a
  // task exception, its destructor drains in-flight tasks while everything
  // they borrow is still alive.
  util::ThreadPool pool(
      static_cast<int>(std::min<std::size_t>(static_cast<std::size_t>(jobs),
                                             indices.size())));
  std::vector<std::future<LayerOutcome>> futures;
  futures.reserve(indices.size());
  // Probes are created in spec order before submission and owned here (they
  // must outlive the tasks); each task only sees its own probe, and the
  // merge loop hands them back in the same order — the task-private +
  // ordered-merge discipline that keeps hook state jobs-invariant.
  std::vector<std::unique_ptr<sim::BusProbe>> probes;
  probes.reserve(indices.size());
  for (const std::size_t idx : indices) {
    probes.push_back(hook ? hook->make_probe(idx) : nullptr);
    sim::BusProbe* probe = probes.back().get();
    futures.push_back(pool.submit([&layout, &config, &heap, &options, num_warps,
                                   collect_metrics, sample_interval, profile,
                                   probe, idx] {
      return simulate_layer(layout.layers().at(idx), config, heap.secure_map(),
                            options, num_warps, collect_metrics,
                            sample_interval, profile, probe);
    }));
  }
  // Merge strictly in submission (= spec) order; get() rethrows the first
  // task exception to the caller.
  for (std::size_t k = 0; k < futures.size(); ++k) {
    merge_outcome(futures[k].get(), config, collect, result);
    if (hook) hook->merge_probe(std::move(probes[k]), indices[k]);
  }
  return result;
}

}  // namespace

NetworkResult run_network(const std::vector<models::LayerSpec>& specs,
                          sim::GpuConfig config, const RunOptions& options) {
  return run_specs(specs, config, options);
}

LayerResult run_single_layer(const models::LayerSpec& spec, sim::GpuConfig config,
                             const RunOptions& options) {
  return run_specs({spec}, config, options).layers.front();
}

}  // namespace sealdl::workload
