#include "workload/network_runner.hpp"

#include <algorithm>
#include <future>
#include <memory>
#include <optional>
#include <utility>

#include "sim/bus_probe.hpp"
#include "sim/gpu_simulator.hpp"
#include "telemetry/collect.hpp"
#include "util/logging.hpp"
#include "util/thread_pool.hpp"
#include "workload/layer_trace.hpp"

namespace sealdl::workload {

double NetworkResult::total_cycles() const {
  double total = 0.0;
  for (const auto& layer : layers) total += layer.full_cycles();
  return total;
}

double NetworkResult::overall_ipc() const {
  double instructions = 0.0, cycles = 0.0;
  for (const auto& layer : layers) {
    instructions += static_cast<double>(layer.stats.thread_instructions) * layer.scale;
    cycles += layer.full_cycles();
  }
  return cycles ? instructions / cycles : 0.0;
}

namespace {

/// Everything one layer's simulation produces. Telemetry is collected into
/// task-private state (metrics fragment, layer-local sample series) so tasks
/// never touch the shared RunTelemetry; the merge loop below folds the
/// fragments back in spec order.
struct LayerOutcome {
  LayerResult result;
  telemetry::MetricsRegistry metrics;
  std::vector<telemetry::TimeSample> samples;
  std::optional<telemetry::LayerCycleProfile> profile;
  std::uint64_t total_tiles = 0;      ///< full-layer tile count
  std::uint64_t simulated_tiles = 0;  ///< tiles this outcome covers
};

/// Simulates one work unit: a laid-out layer, or — when chunking is on — one
/// tile-chunk wave of it. Reads only shared-immutable state (layout, secure
/// map, config, options) plus its own simulator — safe to run from any
/// thread, and bit-deterministic regardless of which thread runs it.
LayerOutcome simulate_layer(const core::LayerAddressing& layer,
                            const sim::GpuConfig& config,
                            const sim::SecureMap& secure_map,
                            const RunOptions& options, int num_warps,
                            bool collect_metrics, sim::Cycle sample_interval,
                            bool profile, sim::BusProbe* probe,
                            int chunk_index = 0, int num_chunks = 1) {
  LayerWork work =
      make_layer_programs(layer, num_warps, options.max_tiles_per_layer, {},
                          chunk_index, num_chunks);
  sim::GpuSimulator simulator(config, &secure_map);
  simulator.set_fast_path(options.fast_path);
  simulator.load_work(std::move(work.programs));
  if (probe) simulator.set_probe(probe);
  // Private sampler at offset 0: samples carry layer-local cycles and are
  // shifted onto the global timeline when the segments are spliced in order.
  // The private sampler is never capped — decimation happens once, at the
  // shared sink, so serial and parallel runs see identical raw streams.
  std::optional<telemetry::IntervalSampler> sampler;
  if (sample_interval) {
    sampler.emplace(sample_interval);
    simulator.set_sampler(&*sampler);
  }
  // Same task-private discipline for the cycle-attribution profiler.
  std::optional<telemetry::CycleProfiler> profiler;
  if (profile) {
    profiler.emplace();
    simulator.set_profiler(&*profiler);
  }
  simulator.run();

  LayerOutcome outcome;
  outcome.result.name = layer.spec.name;
  outcome.result.stats = simulator.stats();
  outcome.result.scale = work.scale();
  outcome.total_tiles = work.total_tiles;
  outcome.simulated_tiles = work.simulated_tiles;
  if (layer.spec.type == models::LayerSpec::Type::kConv) {
    outcome.result.weight_bytes =
        layer.weight_row_pitch * static_cast<std::uint64_t>(layer.spec.in_channels);
  } else if (layer.spec.type == models::LayerSpec::Type::kFc) {
    outcome.result.weight_bytes =
        layer.weight_row_pitch * static_cast<std::uint64_t>(layer.spec.in_features);
  }
  if (collect_metrics) {
    telemetry::collect_component_metrics(simulator, outcome.metrics);
  }
  if (sampler) outcome.samples = sampler->samples();
  if (profiler) {
    outcome.profile = profiler->take_profile();
    outcome.profile->layer = outcome.result.name;
  }
  SEALDL_DEBUG << "layer " << outcome.result.name << ": "
               << outcome.result.stats.cycles << " cycles, ipc "
               << outcome.result.stats.ipc() << ", scale "
               << outcome.result.scale;
  return outcome;
}

/// Folds one tile-chunk wave into the accumulating layer outcome, strictly in
/// chunk order from the submitting thread. Waves run back to back on the same
/// virtual machine, so stats (cycles included) sum, chunk-local sample cycles
/// shift by the cycles of the waves before them, metrics merge additively,
/// and profile buckets/totals add (which preserves the profile.* conservation
/// invariant — sums of exact partitions stay exact). The merged scale is
/// recomputed from the summed tile coverage.
void merge_chunk(LayerOutcome&& chunk, std::optional<LayerOutcome>& layer) {
  if (!layer) {
    layer.emplace(std::move(chunk));
    return;
  }
  const sim::Cycle base = layer->result.stats.cycles;
  layer->result.stats.merge_from(chunk.result.stats);
  layer->simulated_tiles += chunk.simulated_tiles;
  layer->result.scale =
      layer->simulated_tiles
          ? static_cast<double>(layer->total_tiles) /
                static_cast<double>(layer->simulated_tiles)
          : 1.0;
  layer->samples.reserve(layer->samples.size() + chunk.samples.size());
  for (telemetry::TimeSample sample : chunk.samples) {
    sample.cycle += base;
    layer->samples.push_back(sample);
  }
  layer->metrics.merge_from(chunk.metrics);
  if (layer->profile && chunk.profile) {
    layer->profile->merge_from(*chunk.profile);
  }
}

/// Folds one layer's outcome into the run result and the shared telemetry
/// sink. Called in spec order from the submitting thread only, so the sink
/// sees the exact operation sequence of a serial run.
void merge_outcome(LayerOutcome outcome, const sim::GpuConfig& config,
                   telemetry::RunTelemetry* collect, NetworkResult& result) {
  if (collect) {
    if (auto* sampler = collect->sampler()) {
      sampler->append_shifted(outcome.samples, collect->timeline());
    }
    collect->layers().push_back(telemetry::make_layer_record(
        outcome.result.name, outcome.result.stats, config, outcome.result.scale,
        collect->timeline()));
    if (outcome.profile) {
      collect->profile().layers.push_back(std::move(*outcome.profile));
    }
    collect->registry().merge_from(outcome.metrics);
    collect->registry()
        .histogram("layer/latency_ms", 0.0, 100.0, 200)
        .add(static_cast<double>(outcome.result.stats.cycles) *
             outcome.result.scale / (config.core_mhz * 1e3));
    collect->advance_timeline(outcome.result.stats.cycles);
  }
  result.layers.push_back(std::move(outcome.result));
}

NetworkResult run_specs(const std::vector<models::LayerSpec>& specs,
                        sim::GpuConfig config, const RunOptions& options) {
  // Build the address-space layout once; all schemes share addresses so that
  // results are comparable line for line. Layout, plan, and secure map are
  // immutable from here on — layer tasks only read them.
  const sim::ProtectionScope scope = options.scope.value_or(
      options.selective ? sim::ProtectionScope::kPlanRows
      : config.scheme == sim::EncryptionScheme::kNone
          ? sim::ProtectionScope::kNone
          : sim::ProtectionScope::kAll);
  core::SecureHeap heap;
  core::EncryptionPlan plan;
  const core::EncryptionPlan* plan_ptr = nullptr;
  if (scope == sim::ProtectionScope::kPlanRows) {
    plan = core::EncryptionPlan::for_specs(specs, options.plan);
    plan_ptr = &plan;
  }
  core::ModelLayout layout(specs, plan_ptr, heap);
  if (scope == sim::ProtectionScope::kWeights) {
    // GuardNN-style boundary: every laid-out weight byte is secure, no
    // activation is. The boundary is structural (model parameters), so it
    // needs no plan — mark each layer's full kernel-row span after layout.
    for (const core::LayerAddressing& layer : layout.layers()) {
      const std::uint64_t rows =
          layer.spec.type == models::LayerSpec::Type::kConv
              ? static_cast<std::uint64_t>(layer.spec.in_channels)
          : layer.spec.type == models::LayerSpec::Type::kFc
              ? static_cast<std::uint64_t>(layer.spec.in_features)
              : 0;
      if (rows && layer.weight_row_pitch) {
        heap.mark_secure(layer.weight_base, rows * layer.weight_row_pitch);
      }
    }
  }
  config.selective = scope == sim::ProtectionScope::kPlanRows ||
                     scope == sim::ProtectionScope::kWeights;

  std::vector<std::size_t> indices = options.layer_filter;
  if (indices.empty()) {
    indices.resize(layout.layers().size());
    for (std::size_t i = 0; i < indices.size(); ++i) indices[i] = i;
  }

  NetworkResult result;
  const int num_warps = config.num_sms * config.warps_per_sm;
  telemetry::RunTelemetry* collect = options.telemetry;
  const bool collect_metrics = collect != nullptr;
  const sim::Cycle sample_interval =
      collect && collect->sampler() ? collect->sampler()->interval() : 0;
  const bool profile = collect && collect->profiling();

  BusProbeHook* hook = options.probe_hook;

  // Work-unit plan: one unit per layer, or — with chunk_tiles set — one unit
  // per tile-chunk wave. The plan is computed up front, in spec order, from
  // shared-immutable state only, so serial and parallel runs schedule the
  // exact same unit list.
  struct WorkUnit {
    std::size_t spec_index;
    int chunk;
    int num_chunks;
  };
  std::vector<WorkUnit> units;
  units.reserve(indices.size());
  for (const std::size_t idx : indices) {
    int num_chunks = 1;
    if (options.chunk_tiles) {
      // Plan from the unchunked build's coverage (program construction is
      // lazy geometry arithmetic; nothing is simulated here).
      const std::uint64_t tiles =
          make_layer_programs(layout.layers().at(idx), num_warps,
                              options.max_tiles_per_layer)
              .simulated_tiles;
      num_chunks = static_cast<int>(std::max<std::uint64_t>(
          1, (tiles + options.chunk_tiles - 1) / options.chunk_tiles));
    }
    for (int c = 0; c < num_chunks; ++c) units.push_back({idx, c, num_chunks});
  }

  const int jobs = options.jobs == 1 ? 1 : util::ThreadPool::resolve_jobs(options.jobs);
  if (jobs <= 1 || units.size() <= 1) {
    std::optional<LayerOutcome> pending;
    for (const WorkUnit& unit : units) {
      std::unique_ptr<sim::BusProbe> probe =
          hook ? hook->make_probe(unit.spec_index) : nullptr;
      merge_chunk(
          simulate_layer(layout.layers().at(unit.spec_index), config,
                         heap.secure_map(), options, num_warps,
                         collect_metrics, sample_interval, profile,
                         probe.get(), unit.chunk, unit.num_chunks),
          pending);
      if (hook) hook->merge_probe(std::move(probe), unit.spec_index);
      if (unit.chunk == unit.num_chunks - 1) {
        merge_outcome(std::move(*pending), config, collect, result);
        pending.reset();
      }
    }
    return result;
  }

  // The pool is declared after layout/heap so that, if a merge rethrows a
  // task exception, its destructor drains in-flight tasks while everything
  // they borrow is still alive.
  util::ThreadPool pool(
      static_cast<int>(std::min<std::size_t>(static_cast<std::size_t>(jobs),
                                             units.size())));
  std::vector<std::future<LayerOutcome>> futures;
  futures.reserve(units.size());
  // Probes are created in unit order before submission and owned here (they
  // must outlive the tasks); each task only sees its own probe, and the
  // merge loop hands them back in the same order — the task-private +
  // ordered-merge discipline that keeps hook state jobs-invariant. A layer's
  // chunk probes merge back to back, so a hook accumulating per spec_index
  // sees the same additive sequence as a serial run.
  std::vector<std::unique_ptr<sim::BusProbe>> probes;
  probes.reserve(units.size());
  for (const WorkUnit& unit : units) {
    probes.push_back(hook ? hook->make_probe(unit.spec_index) : nullptr);
    sim::BusProbe* probe = probes.back().get();
    futures.push_back(pool.submit([&layout, &config, &heap, &options, num_warps,
                                   collect_metrics, sample_interval, profile,
                                   probe, unit] {
      return simulate_layer(layout.layers().at(unit.spec_index), config,
                            heap.secure_map(), options, num_warps,
                            collect_metrics, sample_interval, profile, probe,
                            unit.chunk, unit.num_chunks);
    }));
  }
  // Merge strictly in submission (= spec x chunk) order; get() rethrows the
  // first task exception to the caller. Chunk waves fold into a pending
  // layer outcome, which flushes to the shared sink when its last chunk
  // lands — the sink sees one operation sequence regardless of jobs.
  std::optional<LayerOutcome> pending;
  for (std::size_t k = 0; k < futures.size(); ++k) {
    merge_chunk(futures[k].get(), pending);
    if (hook) hook->merge_probe(std::move(probes[k]), units[k].spec_index);
    if (units[k].chunk == units[k].num_chunks - 1) {
      merge_outcome(std::move(*pending), config, collect, result);
      pending.reset();
    }
  }
  return result;
}

}  // namespace

NetworkResult run_network(const std::vector<models::LayerSpec>& specs,
                          sim::GpuConfig config, const RunOptions& options) {
  return run_specs(specs, config, options);
}

LayerResult run_single_layer(const models::LayerSpec& spec, sim::GpuConfig config,
                             const RunOptions& options) {
  return run_specs({spec}, config, options).layers.front();
}

}  // namespace sealdl::workload
