#include "workload/network_runner.hpp"

#include "sim/gpu_simulator.hpp"
#include "telemetry/collect.hpp"
#include "util/logging.hpp"
#include "workload/layer_trace.hpp"

namespace sealdl::workload {

double NetworkResult::total_cycles() const {
  double total = 0.0;
  for (const auto& layer : layers) total += layer.full_cycles();
  return total;
}

double NetworkResult::overall_ipc() const {
  double instructions = 0.0, cycles = 0.0;
  for (const auto& layer : layers) {
    instructions += static_cast<double>(layer.stats.thread_instructions) * layer.scale;
    cycles += layer.full_cycles();
  }
  return cycles ? instructions / cycles : 0.0;
}

namespace {

NetworkResult run_specs(const std::vector<models::LayerSpec>& specs,
                        sim::GpuConfig config, const RunOptions& options) {
  // Build the address-space layout once; all schemes share addresses so that
  // results are comparable line for line.
  core::SecureHeap heap;
  core::EncryptionPlan plan;
  const core::EncryptionPlan* plan_ptr = nullptr;
  if (options.selective) {
    plan = core::EncryptionPlan::for_specs(specs, options.plan);
    plan_ptr = &plan;
  }
  core::ModelLayout layout(specs, plan_ptr, heap);
  config.selective = options.selective;

  std::vector<std::size_t> indices = options.layer_filter;
  if (indices.empty()) {
    indices.resize(layout.layers().size());
    for (std::size_t i = 0; i < indices.size(); ++i) indices[i] = i;
  }

  NetworkResult result;
  const int num_warps = config.num_sms * config.warps_per_sm;
  telemetry::RunTelemetry* collect = options.telemetry;
  for (const std::size_t idx : indices) {
    const auto& layer = layout.layers().at(idx);
    LayerWork work =
        make_layer_programs(layer, num_warps, options.max_tiles_per_layer);
    sim::GpuSimulator simulator(config, &heap.secure_map());
    simulator.load_work(std::move(work.programs));
    if (collect) {
      if (auto* sampler = collect->sampler()) {
        sampler->begin_segment(collect->timeline());
        simulator.set_sampler(sampler);
      }
    }
    simulator.run();
    LayerResult lr;
    lr.name = layer.spec.name;
    lr.stats = simulator.stats();
    lr.scale = work.scale();
    SEALDL_DEBUG << "layer " << lr.name << ": " << lr.stats.cycles
                 << " cycles, ipc " << lr.stats.ipc() << ", scale " << lr.scale;
    if (collect) {
      collect->layers().push_back(telemetry::make_layer_record(
          lr.name, lr.stats, config, lr.scale, collect->timeline()));
      telemetry::collect_component_metrics(simulator, collect->registry());
      collect->registry()
          .histogram("layer/latency_ms", 0.0, 100.0, 200)
          .add(static_cast<double>(lr.stats.cycles) * lr.scale /
               (config.core_mhz * 1e3));
      collect->advance_timeline(lr.stats.cycles);
    }
    result.layers.push_back(std::move(lr));
  }
  return result;
}

}  // namespace

NetworkResult run_network(const std::vector<models::LayerSpec>& specs,
                          sim::GpuConfig config, const RunOptions& options) {
  return run_specs(specs, config, options);
}

LayerResult run_single_layer(const models::LayerSpec& spec, sim::GpuConfig config,
                             const RunOptions& options) {
  return run_specs({spec}, config, options).layers.front();
}

}  // namespace sealdl::workload
