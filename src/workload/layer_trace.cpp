#include "workload/layer_trace.hpp"

#include <algorithm>
#include <stdexcept>

#include "workload/trace_common.hpp"

namespace sealdl::workload {

namespace {

using core::LayerAddressing;
using models::LayerSpec;

// ------------------------------------------------------------------ CONV ---

class ConvWarpProgram final : public BufferedWarpProgram {
 public:
  ConvWarpProgram(const LayerAddressing& layer, const LayerTraceOptions& options,
                  std::uint64_t first_tile, std::uint64_t stride,
                  std::uint64_t limit)
      : layer_(layer), options_(options), tile_(first_tile), stride_(stride), limit_(limit),
        phase_(first_tile * 0x9E3779B97F4A7C15ULL >> 32) {
    const LayerSpec& s = layer_.spec;
    oc_block_ = std::min(options.oc_block, s.out_channels);
    tile_w_ = std::min(options.tile_w, s.out_w());
    tile_h_ = std::max(1, options.tile_positions / tile_w_);
    tile_h_ = std::min(tile_h_, s.out_h());
    ic_chunk_ = std::min(options.ic_chunk, s.in_channels);
    auto recompute = [&] {
      tiles_oc_ = (s.out_channels + oc_block_ - 1) / oc_block_;
      tiles_y_ = (s.out_h() + tile_h_ - 1) / tile_h_;
      tiles_x_ = (s.out_w() + tile_w_ - 1) / tile_w_;
    };
    recompute();
    // Small layers: refine the tiling until the grid can occupy the machine.
    while (total_tiles() < static_cast<std::uint64_t>(options.min_tiles)) {
      if (oc_block_ > 8) {
        oc_block_ /= 2;
      } else if (tile_h_ > 1) {
        tile_h_ = (tile_h_ + 1) / 2;
      } else {
        break;  // never split tile_w: sub-line row stores are pathological
      }
      recompute();
    }
    chunks_ = (s.in_channels + ic_chunk_ - 1) / ic_chunk_;
  }

  [[nodiscard]] std::uint64_t total_tiles() const {
    return static_cast<std::uint64_t>(tiles_oc_) * static_cast<std::uint64_t>(tiles_y_) *
           static_cast<std::uint64_t>(tiles_x_);
  }

 protected:
  bool refill() override {
    if (tile_ >= limit_) return false;
    const LayerSpec& s = layer_.spec;

    // Decompose the tile index with a diagonal (Latin-square) mapping over
    // (oc-block, spatial-block): consecutive indices advance both
    // coordinates, so warps running in lockstep hold tiles that differ in
    // output channels AND spatial position and share neither weight nor
    // ifmap lines. This models the reuse real kernels get (per-block shared
    // memory, negligible cross-block L2 reuse at these working-set sizes).
    const std::uint64_t per_oc = static_cast<std::uint64_t>(tiles_y_) * static_cast<std::uint64_t>(tiles_x_);
    const std::uint64_t oc_idx = tile_ % static_cast<std::uint64_t>(tiles_oc_);
    const std::uint64_t sp_idx = (tile_ / static_cast<std::uint64_t>(tiles_oc_) + oc_idx) % per_oc;
    const int oc0 = static_cast<int>(oc_idx) * oc_block_;
    const int y0 = static_cast<int>(sp_idx / static_cast<std::uint64_t>(tiles_x_)) * tile_h_;
    const int x0 = static_cast<int>(sp_idx % static_cast<std::uint64_t>(tiles_x_)) * tile_w_;
    const int ocs = std::min(oc_block_, s.out_channels - oc0);
    const int th = std::min(tile_h_, s.out_h() - y0);
    const int tw = std::min(tile_w_, s.out_w() - x0);

    if (chunk_ < chunks_) {
      // Rotate the K-loop start per warp: real thread blocks drift out of
      // phase, so concurrent consumers of one weight/ifmap stream are at
      // different input-channel chunks and do not co-hit in L2. The set of
      // chunks visited (and hence the traffic) is unchanged.
      const int chunk = static_cast<int>(
          (static_cast<std::uint64_t>(chunk_) + phase_) % static_cast<std::uint64_t>(chunks_));
      const int ic0 = chunk * ic_chunk_;
      const int ics = std::min(ic_chunk_, s.in_channels - ic0);
      // Weight-row segments: row ic holds all output channels contiguously
      // ([ic][oc][k*k] layout), so the oc block is one contiguous span.
      std::vector<sim::Addr> lines;
      const std::uint64_t cell = static_cast<std::uint64_t>(s.kernel) * static_cast<std::uint64_t>(s.kernel) * 4;
      for (int ic = ic0; ic < ic0 + ics; ++ic) {
        collect_lines(layer_.weight_base +
                          static_cast<std::uint64_t>(ic) * layer_.weight_row_pitch +
                          static_cast<std::uint64_t>(oc0) * cell,
                      static_cast<std::uint64_t>(ocs) * cell, lines);
      }
      // Input patch: rows [y0*s-p, ...) of width (tw-1)*s + k.
      const int patch_w = (tw - 1) * s.stride + s.kernel;
      const int patch_h = (th - 1) * s.stride + s.kernel;
      const int in_y0 = y0 * s.stride - s.padding;
      const int in_x0 = x0 * s.stride - s.padding;
      for (int ic = ic0; ic < ic0 + ics; ++ic) {
        const sim::Addr channel_base =
            layer_.ifmap_base + static_cast<std::uint64_t>(ic) * layer_.ifmap_channel_pitch;
        for (int r = 0; r < patch_h; ++r) {
          const int y = in_y0 + r;
          if (y < 0 || y >= s.in_h) continue;  // zero padding: no traffic
          const int x_lo = std::max(0, in_x0);
          const int x_hi = std::min(s.in_w, in_x0 + patch_w);
          if (x_lo >= x_hi) continue;
          collect_lines(
              channel_base + (static_cast<std::uint64_t>(y) * static_cast<std::uint64_t>(s.in_w) +
                              static_cast<std::uint64_t>(x_lo)) * 4,
              static_cast<std::uint64_t>(x_hi - x_lo) * 4, lines);
        }
      }
      // Double buffering: the previous chunk's MACs interleave with this
      // chunk's loads (data for them arrived by the wait below), so a warp
      // parked on a full load window always has arithmetic close behind.
      const std::uint64_t macs = static_cast<std::uint64_t>(ocs) * static_cast<std::uint64_t>(th) *
                                 static_cast<std::uint64_t>(tw) * static_cast<std::uint64_t>(ics) *
                                 static_cast<std::uint64_t>(s.kernel) * static_cast<std::uint64_t>(s.kernel);
      const std::uint32_t instrs = macs_to_instructions(macs, options_.overhead);
      if (chunk_ > 0) emit_wait();  // previous chunk's loads have all issued
      emit_interleaved(lines, chunk_ > 0 ? pending_compute_ : 0);
      pending_compute_ = instrs;
      ++chunk_;
      return true;
    }

    // Drain the last chunk, then store the output tile: per (oc, row) a
    // contiguous span of tw floats.
    emit_wait();
    emit_compute(pending_compute_);
    pending_compute_ = 0;
    for (int oc = oc0; oc < oc0 + ocs; ++oc) {
      const sim::Addr channel_base =
          layer_.ofmap_base + static_cast<std::uint64_t>(oc) * layer_.ofmap_channel_pitch;
      for (int r = 0; r < th; ++r) {
        emit_stores_covering(
            channel_base + (static_cast<std::uint64_t>(y0 + r) * static_cast<std::uint64_t>(s.out_w()) +
                            static_cast<std::uint64_t>(x0)) * 4,
            static_cast<std::uint64_t>(tw) * 4);
      }
    }
    chunk_ = 0;
    tile_ += stride_;
    return true;
  }

 private:
  const LayerAddressing& layer_;
  LayerTraceOptions options_;
  std::uint64_t tile_, stride_, limit_;
  std::uint64_t phase_ = 0;
  int oc_block_ = 0, tile_w_ = 0, tile_h_ = 0, ic_chunk_ = 0;
  int tiles_oc_ = 0, tiles_y_ = 0, tiles_x_ = 0, chunks_ = 0;
  int chunk_ = 0;
  std::uint32_t pending_compute_ = 0;
};

// ------------------------------------------------------------------ POOL ---

class PoolWarpProgram final : public BufferedWarpProgram {
 public:
  PoolWarpProgram(const LayerAddressing& layer, const LayerTraceOptions& options,
                  std::uint64_t first_tile, std::uint64_t stride,
                  std::uint64_t limit)
      : layer_(layer), options_(options), tile_(first_tile), stride_(stride), limit_(limit) {}

  /// One tile = one (channel, output row).
  [[nodiscard]] std::uint64_t total_tiles() const {
    return static_cast<std::uint64_t>(layer_.spec.in_channels) *
           static_cast<std::uint64_t>(layer_.spec.out_h());
  }

 protected:
  bool refill() override {
    if (tile_ >= limit_) return false;
    const LayerSpec& s = layer_.spec;
    const int c = static_cast<int>(tile_ / static_cast<std::uint64_t>(s.out_h()));
    const int oy = static_cast<int>(tile_ % static_cast<std::uint64_t>(s.out_h()));

    const sim::Addr in_channel =
        layer_.ifmap_base + static_cast<std::uint64_t>(c) * layer_.ifmap_channel_pitch;
    for (int r = 0; r < s.kernel; ++r) {
      const int y = oy * s.stride + r;
      if (y >= s.in_h) break;
      emit_loads_covering(in_channel + static_cast<std::uint64_t>(y) * static_cast<std::uint64_t>(s.in_w) * 4,
                          static_cast<std::uint64_t>(s.in_w) * 4);
    }
    emit_wait();
    // Real (non-fused) pooling kernels spend ~20-30 thread instructions per
    // output element on index arithmetic, bounds checks and the window
    // reduction; one warp covers 32 outputs per instruction slot.
    const std::uint64_t instrs =
        (static_cast<std::uint64_t>(s.out_w()) *
             static_cast<std::uint64_t>(options_.pool_instrs_per_output) +
         31) / 32;
    emit_compute(static_cast<std::uint32_t>(std::max<std::uint64_t>(1, instrs)));
    const sim::Addr out_channel =
        layer_.ofmap_base + static_cast<std::uint64_t>(c) * layer_.ofmap_channel_pitch;
    emit_stores_covering(out_channel + static_cast<std::uint64_t>(oy) * static_cast<std::uint64_t>(s.out_w()) * 4,
                         static_cast<std::uint64_t>(s.out_w()) * 4);
    tile_ += stride_;
    return true;
  }

 private:
  const LayerAddressing& layer_;
  LayerTraceOptions options_;
  std::uint64_t tile_, stride_, limit_;
};

// -------------------------------------------------------------------- FC ---

class FcWarpProgram final : public BufferedWarpProgram {
 public:
  FcWarpProgram(const LayerAddressing& layer, const LayerTraceOptions& options,
                std::uint64_t first_tile, std::uint64_t stride, std::uint64_t limit)
      : layer_(layer), options_(options), tile_(first_tile), stride_(stride), limit_(limit) {
    out_block_ = std::min(32, layer_.spec.out_features);
    in_chunk_ = std::min(256, layer_.spec.in_features);
    chunks_ = (layer_.spec.in_features + in_chunk_ - 1) / in_chunk_;
  }

  /// One tile = one block of 32 output features (GEMV row block).
  [[nodiscard]] std::uint64_t total_tiles() const {
    return static_cast<std::uint64_t>((layer_.spec.out_features + out_block_ - 1) / out_block_);
  }

 protected:
  bool refill() override {
    if (tile_ >= limit_) return false;
    const LayerSpec& s = layer_.spec;
    const int o0 = static_cast<int>(tile_) * out_block_;
    const int os = std::min(out_block_, s.out_features - o0);

    if (chunk_ < chunks_) {
      const int i0 = chunk_ * in_chunk_;
      const int is = std::min(in_chunk_, s.in_features - i0);
      // Weight rows are input-major: row i holds out_features floats.
      std::vector<sim::Addr> lines;
      for (int i = i0; i < i0 + is; ++i) {
        collect_lines(layer_.weight_base +
                          static_cast<std::uint64_t>(i) * layer_.weight_row_pitch +
                          static_cast<std::uint64_t>(o0) * 4,
                      static_cast<std::uint64_t>(os) * 4, lines);
      }
      collect_lines(layer_.ifmap_base + static_cast<std::uint64_t>(i0) * 4,
                    static_cast<std::uint64_t>(is) * 4, lines);
      const std::uint32_t instrs = macs_to_instructions(
          static_cast<std::uint64_t>(os) * static_cast<std::uint64_t>(is), options_.overhead);
      if (chunk_ > 0) emit_wait();
      emit_interleaved(lines, chunk_ > 0 ? pending_compute_ : 0);
      pending_compute_ = instrs;
      ++chunk_;
      return true;
    }

    emit_wait();
    emit_compute(pending_compute_);
    pending_compute_ = 0;
    emit_stores_covering(layer_.ofmap_base + static_cast<std::uint64_t>(o0) * 4,
                         static_cast<std::uint64_t>(os) * 4);
    chunk_ = 0;
    tile_ += stride_;
    return true;
  }

 private:
  const LayerAddressing& layer_;
  LayerTraceOptions options_;
  std::uint64_t tile_, stride_, limit_;
  int out_block_ = 0, in_chunk_ = 0, chunks_ = 0;
  int chunk_ = 0;
  std::uint32_t pending_compute_ = 0;
};

template <typename Program>
LayerWork build(const LayerAddressing& layer, const LayerTraceOptions& options,
                int num_warps, std::uint64_t max_tiles, int chunk_index,
                int num_chunks) {
  // A scratch instance reports the tile count for this geometry.
  const std::uint64_t total = Program(layer, options, 0, 1, 0).total_tiles();
  const std::uint64_t limit = max_tiles ? std::min(max_tiles, total) : total;
  LayerWork work;
  work.total_tiles = total;
  work.simulated_tiles = 0;
  work.programs.reserve(static_cast<std::size_t>(num_warps));
  // Block partition: warp w owns a contiguous tile range of the FULL tile
  // space. Concurrent warps then touch disjoint weight/fmap lines — modeling
  // real kernels that stage tiles through per-block shared memory with little
  // cross-block L2 reuse (lockstep round-robin dealing would give every warp
  // the same lines in the same cycle window, an L2 hit rate no 2011-era conv
  // kernel achieved).
  //
  // Sampling is stratified: when `limit < total`, each warp simulates only
  // the head of its own block, so the simulated slice covers the whole tile
  // space uniformly — a prefix slice would bias toward low channels, which
  // under SEAL are systematically the unencrypted ones.
  for (int w = 0; w < num_warps; ++w) {
    const std::uint64_t begin =
        total * static_cast<std::uint64_t>(w) / static_cast<std::uint64_t>(num_warps);
    const std::uint64_t end =
        total * (static_cast<std::uint64_t>(w) + 1) / static_cast<std::uint64_t>(num_warps);
    // Quota partitioned with the same rounding as the blocks, so a warp with
    // a non-empty block always receives quota (limit == total simulates
    // everything exactly).
    const std::uint64_t quota =
        limit * (static_cast<std::uint64_t>(w) + 1) / static_cast<std::uint64_t>(num_warps) -
        limit * static_cast<std::uint64_t>(w) / static_cast<std::uint64_t>(num_warps);
    const std::uint64_t take = std::min(quota, end - begin);
    // Chunking sub-partitions each warp's [begin, begin + take) block with the
    // same rounding the warp partition uses: chunk c covers
    // [take*c/C, take*(c+1)/C). Summed over c the sub-ranges tile the block
    // exactly, so the chunked run simulates the same tiles in the same
    // per-warp order as the unchunked one, just bracketed into waves.
    const std::uint64_t sub_begin =
        begin + take * static_cast<std::uint64_t>(chunk_index) /
                    static_cast<std::uint64_t>(num_chunks);
    const std::uint64_t sub_end =
        begin + take * (static_cast<std::uint64_t>(chunk_index) + 1) /
                    static_cast<std::uint64_t>(num_chunks);
    if (sub_begin == sub_end) continue;  // empty programs skew SM load balance
    work.simulated_tiles += sub_end - sub_begin;
    work.programs.push_back(std::make_unique<Program>(
        layer, options, sub_begin, /*stride=*/1, sub_end));
  }
  return work;
}

}  // namespace

LayerWork make_layer_programs(const core::LayerAddressing& layer, int num_warps,
                              std::uint64_t max_tiles,
                              const LayerTraceOptions& options, int chunk_index,
                              int num_chunks) {
  if (num_chunks < 1 || chunk_index < 0 || chunk_index >= num_chunks) {
    throw std::invalid_argument("chunk_index/num_chunks out of range");
  }
  switch (layer.spec.type) {
    case LayerSpec::Type::kConv:
      return build<ConvWarpProgram>(layer, options, num_warps, max_tiles,
                                    chunk_index, num_chunks);
    case LayerSpec::Type::kPool:
      return build<PoolWarpProgram>(layer, options, num_warps, max_tiles,
                                    chunk_index, num_chunks);
    case LayerSpec::Type::kFc:
      return build<FcWarpProgram>(layer, options, num_warps, max_tiles,
                                  chunk_index, num_chunks);
  }
  throw std::logic_error("unknown layer type");
}

}  // namespace sealdl::workload
