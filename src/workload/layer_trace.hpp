// Warp-trace generation for CONV, POOL and FC layers from their address-space
// layout (core::LayerAddressing).
//
// CONV uses an implicit-GEMM tiling: each tile covers a block of output
// channels times a spatial patch; the K loop walks input channels in chunks,
// loading the weight-row segments and input-feature-map patch lines, then
// computing. POOL streams channel rows (read window rows, reduce, write one
// output row). FC is a tiled GEMV.
//
// These generators reproduce the *memory behaviour* of the real kernels —
// arithmetic intensity, coalescing, and reuse — which is what the encrypted
// memory system reacts to.
#pragma once

#include <cstdint>
#include <vector>

#include "core/model_layout.hpp"
#include "sim/warp_program.hpp"

namespace sealdl::workload {

/// Tiling knobs; defaults sized for a GTX480-class machine.
struct LayerTraceOptions {
  int oc_block = 32;     ///< output channels per tile
  int tile_w = 32;       ///< output columns per tile (clamped to layer width)
  int tile_positions = 64;  ///< target output positions per tile
  int ic_chunk = 8;      ///< input channels per K-loop step
  double overhead = 0.12;   ///< non-MAC instruction fraction
  int pool_instrs_per_output = 24;  ///< thread instrs per pooled element
  /// Minimum tile count the CONV tiler aims for: small feature maps split
  /// into narrower output-channel blocks / shorter spatial tiles so the grid
  /// still fills the machine, as real kernels do for late-network layers
  /// (at the cost of worse per-tile reuse — also as real kernels do).
  int min_tiles = 240;
};

struct LayerWork {
  std::vector<sim::WarpProgramPtr> programs;
  std::uint64_t total_tiles = 0;      ///< full-layer tile count
  std::uint64_t simulated_tiles = 0;  ///< tiles covered by the programs
  /// cycles measured on the simulated slice scale to the full layer by
  /// total_tiles / simulated_tiles.
  [[nodiscard]] double scale() const {
    return simulated_tiles
               ? static_cast<double>(total_tiles) / static_cast<double>(simulated_tiles)
               : 1.0;
  }
};

/// Builds programs for one layer. `max_tiles` caps the simulated slice
/// (0 = simulate everything); the cap is rounded to at least one tile per
/// warp when the layer is large enough.
///
/// `chunk_index` / `num_chunks` select one sub-layer work unit: each warp's
/// contiguous tile block is sub-partitioned with the same rounding as the
/// warp partition itself, and chunk c receives per-warp sub-range
/// [take*c/C, take*(c+1)/C). The union of all chunks' programs covers exactly
/// the tiles the unchunked build simulates, each tile once, in the same
/// per-warp order — which is what makes chunked execution a deterministic
/// re-bracketing (wave-at-a-time) of the same tile schedule rather than a
/// different workload. num_chunks == 1 reproduces the unchunked build
/// byte for byte.
LayerWork make_layer_programs(const core::LayerAddressing& layer, int num_warps,
                              std::uint64_t max_tiles = 0,
                              const LayerTraceOptions& options = {},
                              int chunk_index = 0, int num_chunks = 1);

}  // namespace sealdl::workload
