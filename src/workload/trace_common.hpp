// Shared machinery for workload trace generators.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/request.hpp"
#include "sim/warp_program.hpp"

namespace sealdl::workload {

/// Base class for generators: subclasses emit the next natural group of ops
/// (one tile chunk) into the buffer; the simulator drains it one op at a time.
///
/// The buffer is a flat vector drained by index: refills always land in an
/// empty buffer, so instead of a deque's chunk map we clear and re-fill one
/// contiguous allocation that sticks at the largest refill ever produced.
/// next() is called once per issued op — the second-hottest path after the
/// SM issue loop — and compiles down to a bounds check and a copy.
class BufferedWarpProgram : public sim::WarpProgram {
 public:
  std::optional<sim::WarpOp> next() final {
    while (head_ == buffer_.size()) {
      buffer_.clear();
      head_ = 0;
      if (!refill()) return std::nullopt;
    }
    return buffer_[head_++];
  }

 protected:
  /// Emits more ops into the buffer; returns false when the warp is done.
  virtual bool refill() = 0;

  void emit_load(sim::Addr addr) {
    buffer_.push_back({sim::WarpOp::Kind::kLoad, addr, 1});
    ++loads_since_mark_;
  }

  /// Number of loads emitted since the last call; used to size the
  /// double-buffering barrier threshold to "the prefetched chunk's loads".
  std::uint32_t take_load_count() {
    const std::uint32_t n = loads_since_mark_;
    loads_since_mark_ = 0;
    return n;
  }
  void emit_store(sim::Addr addr) {
    buffer_.push_back({sim::WarpOp::Kind::kStore, addr, 1});
  }
  /// Barrier: stall until at most `threshold` of this warp's loads remain in
  /// flight. threshold 0 waits for everything; a prefetched chunk's load
  /// count expresses double buffering.
  void emit_wait(std::uint32_t threshold = 0) {
    buffer_.push_back({sim::WarpOp::Kind::kWaitLoads, 0, threshold});
  }
  void emit_compute(std::uint32_t count) {
    if (count) buffer_.push_back({sim::WarpOp::Kind::kCompute, 0, count});
  }

  /// Emits one coalesced load per cache line covering [addr, addr+bytes).
  void emit_loads_covering(sim::Addr addr, std::uint64_t bytes) {
    const sim::Addr first = addr & ~static_cast<sim::Addr>(127);
    const sim::Addr last = (addr + bytes - 1) & ~static_cast<sim::Addr>(127);
    for (sim::Addr line = first; line <= last; line += 128) emit_load(line);
  }

  /// Collects the line addresses covering [addr, addr+bytes) without
  /// emitting them (for interleaved emission).
  static void collect_lines(sim::Addr addr, std::uint64_t bytes,
                            std::vector<sim::Addr>& out) {
    const sim::Addr first = addr & ~static_cast<sim::Addr>(127);
    const sim::Addr last = (addr + bytes - 1) & ~static_cast<sim::Addr>(127);
    for (sim::Addr line = first; line <= last; line += 128) out.push_back(line);
  }

  /// Emits `lines` as loads interleaved with `compute` instructions, a few
  /// loads per compute slice. This is how compiled kernels actually schedule:
  /// next-tile loads are hoisted between MAC bundles, so a warp stalled on a
  /// full load window still has independent arithmetic behind only a small
  /// load group, not behind the whole tile's loads.
  void emit_interleaved(const std::vector<sim::Addr>& lines,
                        std::uint32_t compute, int loads_per_group = 8) {
    if (lines.empty()) {
      emit_compute(compute);
      return;
    }
    const std::size_t groups =
        (lines.size() + static_cast<std::size_t>(loads_per_group) - 1) /
        static_cast<std::size_t>(loads_per_group);
    std::size_t next_line = 0;
    for (std::size_t g = 0; g < groups; ++g) {
      const std::size_t end = std::min(
          lines.size(), next_line + static_cast<std::size_t>(loads_per_group));
      for (; next_line < end; ++next_line) emit_load(lines[next_line]);
      emit_compute(static_cast<std::uint32_t>(compute / groups) +
                   (g < compute % groups ? 1u : 0u));
    }
  }

  /// Same for stores.
  void emit_stores_covering(sim::Addr addr, std::uint64_t bytes) {
    const sim::Addr first = addr & ~static_cast<sim::Addr>(127);
    const sim::Addr last = (addr + bytes - 1) & ~static_cast<sim::Addr>(127);
    for (sim::Addr line = first; line <= last; line += 128) emit_store(line);
  }

 private:
  std::vector<sim::WarpOp> buffer_;
  std::size_t head_ = 0;  ///< next() reads buffer_[head_..); refill resets
  std::uint32_t loads_since_mark_ = 0;
};

/// Converts a MAC count to warp compute instructions: 32 lanes per warp plus
/// a fixed fraction of address/loop-overhead instructions.
inline std::uint32_t macs_to_instructions(std::uint64_t macs,
                                          double overhead = 0.12) {
  const double warp_ops = static_cast<double>(macs) / 32.0 * (1.0 + overhead);
  const auto n = static_cast<std::uint64_t>(warp_ops + 0.999);
  return n == 0 ? 1 : static_cast<std::uint32_t>(n);
}

}  // namespace sealdl::workload
