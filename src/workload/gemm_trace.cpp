#include "workload/gemm_trace.hpp"

namespace sealdl::workload {

namespace {

class GemmWarpProgram final : public BufferedWarpProgram {
 public:
  GemmWarpProgram(const GemmSpec& spec, std::uint64_t first_tile,
                  std::uint64_t tile_stride, std::uint64_t tile_limit)
      : spec_(spec),
        tile_(first_tile),
        stride_(tile_stride),
        limit_(tile_limit),
        tiles_x_(static_cast<std::uint64_t>((spec.n + 31) / 32)) {
    // K-loop phase rotation per C-tile row block: warps in the same row block
    // stay in phase (they genuinely share A-tile lines through L2, as
    // co-scheduled GEMM blocks do), while different row blocks drift apart so
    // B tiles are not multiply counted as on-chip hits.
    std::uint64_t h = first_tile / tiles_x_;
    phase_ = (h * 0x9E3779B97F4A7C15ULL) >> 33;
  }

 protected:
  bool refill() override {
    if (tile_ >= limit_) return false;
    const std::uint64_t tile_row = tile_ / tiles_x_;
    const std::uint64_t tile_col = tile_ % tiles_x_;
    const std::uint64_t m0 = tile_row * 32, n0 = tile_col * 32;
    const auto rows = static_cast<std::uint64_t>(std::min(32, spec_.m - static_cast<int>(m0)));
    const auto cols = static_cast<std::uint64_t>(std::min(32, spec_.n - static_cast<int>(n0)));

    const std::uint64_t chunks = (static_cast<std::uint64_t>(spec_.k) + 31) / 32;
    if (chunk_ < chunks) {
      const std::uint64_t k0 = ((chunk_ + phase_) % chunks) * 32;
      const auto depth = std::min<std::uint64_t>(32, static_cast<std::uint64_t>(spec_.k) - k0);
      // A tile: `rows` row segments of `depth` floats.
      std::vector<sim::Addr> lines;
      for (std::uint64_t r = 0; r < rows; ++r) {
        collect_lines(
            spec_.a_base + ((m0 + r) * static_cast<std::uint64_t>(spec_.k) + k0) * 4,
            depth * 4, lines);
      }
      // B tile: `depth` row segments of `cols` floats.
      for (std::uint64_t r = 0; r < depth; ++r) {
        collect_lines(
            spec_.b_base + ((k0 + r) * static_cast<std::uint64_t>(spec_.n) + n0) * 4,
            cols * 4, lines);
      }
      // Double buffering: the previous chunk's MACs interleave with this
      // chunk's loads, as compiled GEMM kernels schedule them.
      const std::uint32_t instrs = macs_to_instructions(rows * cols * depth);
      if (chunk_ > 0) emit_wait();
      emit_interleaved(lines, chunk_ > 0 ? pending_compute_ : 0);
      pending_compute_ = instrs;
      ++chunk_;
      return true;
    }

    // K loop finished: drain, store the C tile, move to the next tile.
    emit_wait();
    emit_compute(pending_compute_);
    pending_compute_ = 0;
    for (std::uint64_t r = 0; r < rows; ++r) {
      emit_stores_covering(
          spec_.c_base + ((m0 + r) * static_cast<std::uint64_t>(spec_.n) + n0) * 4,
          cols * 4);
    }
    chunk_ = 0;
    tile_ += stride_;
    return true;
  }

 private:
  GemmSpec spec_;
  std::uint64_t tile_;
  std::uint64_t stride_;
  std::uint64_t limit_;
  std::uint64_t tiles_x_;
  std::uint64_t phase_ = 0;
  std::uint64_t chunk_ = 0;
  std::uint32_t pending_compute_ = 0;
};

}  // namespace

std::vector<sim::WarpProgramPtr> make_gemm_programs(const GemmSpec& spec,
                                                    int num_warps,
                                                    std::uint64_t max_tiles) {
  const std::uint64_t limit =
      max_tiles ? std::min(max_tiles, spec.total_tiles()) : spec.total_tiles();
  std::vector<sim::WarpProgramPtr> programs;
  programs.reserve(static_cast<std::size_t>(num_warps));
  for (int w = 0; w < num_warps; ++w) {
    programs.push_back(std::make_unique<GemmWarpProgram>(
        spec, static_cast<std::uint64_t>(w), static_cast<std::uint64_t>(num_warps),
        limit));
  }
  return programs;
}

}  // namespace sealdl::workload
