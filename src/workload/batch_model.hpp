// Analytic batched-inference latency derived from a batch-1 profile.
//
// The serving layer (src/serve) batches requests for the same network. A
// batch of B inferences repeats every layer B times, but the *weight*
// traffic is batch-invariant: the kernel stays resident (or at least hot in
// DRAM row buffers / L2) across the B activations, so only the first
// inference of the batch pays for streaming it. The model applies that
// amortization to a measured batch-1 NetworkResult instead of re-simulating
// at batch B, which keeps the serving event loop cheap and — because it is
// pure arithmetic over the profile run_network already produced with
// simulate_layer/merge_outcome — incapable of drifting from the serial
// simulation path.
//
// Per layer:
//   weight_frac  = min(1, weight_bytes / scaled dram_read_bytes)
//   amortizable  = full_cycles * dram_utilization * weight_frac
//   batch_cycles = full_cycles * B - amortizable * (B - 1)
//
// Only the DRAM-busy share of the layer's time scales with the weight
// traffic: compute and AES occupancy repeat per inference, so a
// compute-bound layer amortizes (correctly) almost nothing.
#pragma once

#include "sim/gpu_config.hpp"
#include "workload/network_runner.hpp"

namespace sealdl::workload {

/// Cycles of one layer's contribution to a batch-B dispatch. B < 1 is
/// treated as 1; B == 1 is exactly full_cycles().
double batched_layer_cycles(const LayerResult& layer, const sim::GpuConfig& config,
                            int batch);

/// Whole-network batch-B latency in core cycles: sum of the per-layer model
/// over `result.layers`. batched_network_cycles(r, c, 1) ==
/// r.total_cycles().
double batched_network_cycles(const NetworkResult& result,
                              const sim::GpuConfig& config, int batch);

}  // namespace sealdl::workload
