// Small online/offline statistics helpers shared by the simulator and benches.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace sealdl::util {

/// Welford online accumulator for mean/variance plus min/max.
class RunningStats {
 public:
  void add(double x);
  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const;   ///< population variance
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }
  [[nodiscard]] double sum() const { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Ratio counter used for cache hit rates, attack success rates, etc.
struct HitRate {
  std::uint64_t hits = 0;
  std::uint64_t total = 0;
  void record(bool hit) {
    ++total;
    hits += hit ? 1 : 0;
  }
  [[nodiscard]] double rate() const {
    return total ? static_cast<double>(hits) / static_cast<double>(total) : 0.0;
  }
};

/// Geometric mean of a set of positive values (used for IPC aggregation).
double geomean(const std::vector<double>& xs);

/// Arithmetic mean; returns 0 for an empty input.
double mean(const std::vector<double>& xs);

/// Fixed-width histogram over [lo, hi) with overflow/underflow buckets.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);
  void add(double x);
  [[nodiscard]] std::uint64_t bucket_count(std::size_t i) const;
  [[nodiscard]] std::size_t buckets() const { return counts_.size(); }
  [[nodiscard]] std::uint64_t underflow() const { return underflow_; }
  [[nodiscard]] std::uint64_t overflow() const { return overflow_; }
  [[nodiscard]] double bucket_lo(std::size_t i) const;
  [[nodiscard]] double bucket_hi(std::size_t i) const;

  /// Total samples recorded, including under/overflow.
  [[nodiscard]] std::uint64_t count() const;

  /// Approximate p-th percentile (p in [0,100], clamped) by linear
  /// interpolation within the containing bucket.
  ///
  /// Out-of-range mass is *clamped, not interpolated*: any percentile whose
  /// rank lands in the underflow bucket resolves to exactly `lo`, and any
  /// rank landing in the overflow bucket resolves to exactly `hi` — the
  /// histogram cannot say more than "at least hi" about those samples. In
  /// particular p99/p100 of a distribution whose tail escapes [lo, hi)
  /// silently saturate at `hi`; callers that care must check overflow() (and
  /// underflow()), which the metrics JSON export surfaces alongside the
  /// percentiles for exactly this reason. An empty histogram returns `lo`.
  [[nodiscard]] double percentile(double p) const;

  /// True when `other` has identical bounds and bucket count, so counts can
  /// be summed without re-binning.
  [[nodiscard]] bool compatible(const Histogram& other) const;

  /// Adds `other`'s bucket counts into this histogram. Counts are integers,
  /// so merging per-shard histograms is exact: shard-then-merge equals
  /// recording every sample into one histogram, in any order. Throws
  /// std::invalid_argument when the histograms are not compatible().
  void merge(const Histogram& other);

 private:
  double lo_;
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
};

}  // namespace sealdl::util
