#include "util/lock_audit.hpp"

#include <cctype>
#include <cstdlib>
#include <cstring>

namespace sealdl::util {

namespace {

/// Findings stored verbatim; beyond the cap only the exact counter advances
/// (same policy as verify::Report).
constexpr std::size_t kMaxStoredFindings = 64;

struct Held {
  const void* id;
  const char* name;
};

/// Per-thread stack of currently held audited mutexes. thread_local keeps
/// the common path (acquire with nothing else held) entirely lock-free.
thread_local std::vector<Held> t_held;

bool env_enabled(bool fallback) {
  const char* env = std::getenv("SEALDL_LOCK_AUDIT");
  if (!env) return fallback;
  std::string lowered(env);
  for (char& c : lowered) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  if (lowered == "1" || lowered == "on" || lowered == "true") return true;
  if (lowered == "0" || lowered == "off" || lowered == "false") return false;
  return fallback;
}

}  // namespace

LockAuditor& LockAuditor::instance() {
  // Leaked on purpose: mutexes at namespace scope (the logging sink) may be
  // locked during static destruction, after a function-local static auditor
  // would already be gone. Still reachable through the pointer, so LSan
  // stays quiet.
  static LockAuditor* auditor = new LockAuditor();
  return *auditor;
}

bool LockAuditor::build_default() {
#ifdef SEALDL_LOCK_AUDIT_DEFAULT_ON
  return true;
#else
  return false;
#endif
}

LockAuditor::LockAuditor() : enabled_(env_enabled(build_default())) {}

void LockAuditor::on_lock_attempt(const void* id, const char* name) {
  if (!enabled()) return;
  for (const Held& held : t_held) {
    // Same-name edges are skipped: two instances of one capability class
    // (e.g. nested ThreadPools) would otherwise self-report on first use.
    if (held.id != id && std::strcmp(held.name, name) != 0) {
      add_edge(held.name, name);
    }
  }
}

void LockAuditor::on_locked(const void* id, const char* name) {
  if (!enabled()) return;
  t_held.push_back({id, name});
}

void LockAuditor::on_unlocked(const void* id) noexcept {
  // Runs even when disabled so a mid-run toggle cannot strand stale
  // entries; with auditing off the stack is empty and this is a size check.
  for (auto it = t_held.rbegin(); it != t_held.rend(); ++it) {
    if (it->id == id) {
      t_held.erase(std::next(it).base());
      return;
    }
  }
}

void LockAuditor::on_cv_wait(const void* id, const char* name) {
  if (!enabled()) return;
  for (const Held& held : t_held) {
    if (held.id == id) continue;
    std::lock_guard<std::mutex> lock(mutex_);
    if (!reported_.emplace(std::string("cv:") + name, held.name).second) {
      ++total_findings_;
      continue;
    }
    record({"lock.cv-hold", std::string(held.name) + " held across " + name,
            std::string("condition wait on '") + name + "' while holding '" +
                held.name +
                "': the held capability can block the intended waker"});
  }
}

void LockAuditor::on_confinement_violation(const char* name) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!reported_.emplace(std::string("confined:") + name, "").second) {
    ++total_findings_;
    return;
  }
  record({"lock.confined", name,
          std::string("concurrent entry into thread-confined section '") +
              name + "': the owner must serialize all access"});
}

void LockAuditor::add_edge(const char* from, const char* to) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!edges_[from].insert(to).second) return;  // edge already known
  // A fresh from->to edge closes a cycle iff `from` was already reachable
  // from `to` — some thread acquired them in the opposite order.
  if (reachable(to, from)) {
    record({"lock.cycle", std::string(from) + " -> " + to,
            std::string("lock order inversion: '") + from +
                "' acquired before '" + to +
                "' here, but the opposite order exists elsewhere — "
                "potential deadlock"});
  }
}

bool LockAuditor::reachable(const std::string& from,
                            const std::string& to) const {
  std::vector<const std::string*> stack{&from};
  std::set<std::string> visited;
  while (!stack.empty()) {
    const std::string* node = stack.back();
    stack.pop_back();
    if (*node == to) return true;
    if (!visited.insert(*node).second) continue;
    const auto it = edges_.find(*node);
    if (it == edges_.end()) continue;
    for (const std::string& next : it->second) stack.push_back(&next);
  }
  return false;
}

void LockAuditor::record(LockFinding finding) {
  ++total_findings_;
  if (findings_.size() < kMaxStoredFindings) {
    findings_.push_back(std::move(finding));
  }
}

std::vector<LockFinding> LockAuditor::findings() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return findings_;
}

std::uint64_t LockAuditor::finding_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_findings_;
}

std::size_t LockAuditor::edge_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t count = 0;
  for (const auto& [node, targets] : edges_) count += targets.size();
  return count;
}

void LockAuditor::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  edges_.clear();
  reported_.clear();
  findings_.clear();
  total_findings_ = 0;
}

}  // namespace sealdl::util
