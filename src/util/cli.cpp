#include "util/cli.hpp"

#include <stdexcept>

namespace sealdl::util {

CliFlags::CliFlags(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    std::string body = arg.substr(2);
    if (body.empty()) throw std::invalid_argument("bare '--' is not a flag");
    const auto eq = body.find('=');
    if (eq != std::string::npos) {
      flags_[body.substr(0, eq)] = body.substr(eq + 1);
      continue;
    }
    // `--name value` if the next token is not itself a flag; else boolean.
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      flags_[body] = argv[++i];
    } else {
      flags_[body] = "true";
    }
  }
}

bool CliFlags::has(const std::string& name) const {
  queried_[name] = true;
  return flags_.count(name) > 0;
}

std::string CliFlags::get(const std::string& name,
                          const std::string& fallback) const {
  queried_[name] = true;
  const auto it = flags_.find(name);
  return it == flags_.end() ? fallback : it->second;
}

std::int64_t CliFlags::get_int(const std::string& name,
                               std::int64_t fallback) const {
  queried_[name] = true;
  const auto it = flags_.find(name);
  return it == flags_.end() ? fallback : std::stoll(it->second);
}

double CliFlags::get_double(const std::string& name, double fallback) const {
  queried_[name] = true;
  const auto it = flags_.find(name);
  return it == flags_.end() ? fallback : std::stod(it->second);
}

bool CliFlags::get_bool(const std::string& name, bool fallback) const {
  queried_[name] = true;
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

std::vector<std::string> CliFlags::unused() const {
  std::vector<std::string> out;
  for (const auto& [name, _] : flags_) {
    if (!queried_.count(name)) out.push_back(name);
  }
  return out;
}

}  // namespace sealdl::util
