// Minimal command-line flag parsing for benches and examples.
//
// Supports `--name value`, `--name=value` and boolean `--name` forms; unknown
// flags are an error so typos in experiment scripts fail loudly.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace sealdl::util {

class CliFlags {
 public:
  /// Parses argv. Throws std::invalid_argument on malformed input.
  CliFlags(int argc, char** argv);

  [[nodiscard]] bool has(const std::string& name) const;
  [[nodiscard]] std::string get(const std::string& name,
                                const std::string& fallback) const;
  [[nodiscard]] std::int64_t get_int(const std::string& name,
                                     std::int64_t fallback) const;
  [[nodiscard]] double get_double(const std::string& name, double fallback) const;
  [[nodiscard]] bool get_bool(const std::string& name, bool fallback) const;

  /// Positional (non-flag) arguments, in order.
  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

  /// Names of all flags that were supplied but never queried — call at the end
  /// of main() to reject typos. Returns empty vector if everything was used.
  [[nodiscard]] std::vector<std::string> unused() const;

 private:
  std::map<std::string, std::string> flags_;
  mutable std::map<std::string, bool> queried_;
  std::vector<std::string> positional_;
};

}  // namespace sealdl::util
