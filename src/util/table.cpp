#include "util/table.hpp"

#include <cstdio>
#include <iomanip>
#include <iostream>
#include <sstream>

namespace sealdl::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

std::string Table::fmt(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::pct(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v * 100.0 << "%";
  return os.str();
}

std::string Table::render() const {
  std::vector<std::size_t> widths(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    os << "|";
    for (std::size_t c = 0; c < header_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string{};
      os << " " << cell << std::string(widths[c] - cell.size(), ' ') << " |";
    }
    os << "\n";
  };
  auto emit_sep = [&] {
    os << "+";
    for (std::size_t c = 0; c < header_.size(); ++c) {
      os << std::string(widths[c] + 2, '-') << "+";
    }
    os << "\n";
  };

  emit_sep();
  emit_row(header_);
  emit_sep();
  for (const auto& row : rows_) emit_row(row);
  emit_sep();
  return os.str();
}

void Table::print() const { std::cout << render() << std::flush; }

}  // namespace sealdl::util
