#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace sealdl::util {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  return n_ ? m2_ / static_cast<double>(n_) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double geomean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double log_sum = 0.0;
  for (double x : xs) log_sum += std::log(x);
  return std::exp(log_sum / static_cast<double>(xs.size()));
}

double mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), width_((hi - lo) / static_cast<double>(buckets)), counts_(buckets, 0) {
  if (buckets == 0 || hi <= lo) {
    throw std::invalid_argument("Histogram: need hi > lo and buckets > 0");
  }
}

void Histogram::add(double x) {
  if (x < lo_) {
    ++underflow_;
    return;
  }
  const auto idx = static_cast<std::size_t>((x - lo_) / width_);
  if (idx >= counts_.size()) {
    ++overflow_;
    return;
  }
  ++counts_[idx];
}

std::uint64_t Histogram::bucket_count(std::size_t i) const { return counts_.at(i); }

double Histogram::bucket_lo(std::size_t i) const {
  return lo_ + width_ * static_cast<double>(i);
}

double Histogram::bucket_hi(std::size_t i) const { return bucket_lo(i) + width_; }

}  // namespace sealdl::util
