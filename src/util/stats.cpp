#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace sealdl::util {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  return n_ ? m2_ / static_cast<double>(n_) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double geomean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double log_sum = 0.0;
  for (double x : xs) log_sum += std::log(x);
  return std::exp(log_sum / static_cast<double>(xs.size()));
}

double mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), width_((hi - lo) / static_cast<double>(buckets)), counts_(buckets, 0) {
  if (buckets == 0 || hi <= lo) {
    throw std::invalid_argument("Histogram: need hi > lo and buckets > 0");
  }
}

void Histogram::add(double x) {
  if (x < lo_) {
    ++underflow_;
    return;
  }
  const auto idx = static_cast<std::size_t>((x - lo_) / width_);
  if (idx >= counts_.size()) {
    ++overflow_;
    return;
  }
  ++counts_[idx];
}

std::uint64_t Histogram::bucket_count(std::size_t i) const { return counts_.at(i); }

std::uint64_t Histogram::count() const {
  std::uint64_t total = underflow_ + overflow_;
  for (const std::uint64_t c : counts_) total += c;
  return total;
}

double Histogram::percentile(double p) const {
  const std::uint64_t total = count();
  if (total == 0) return lo_;
  p = std::clamp(p, 0.0, 100.0);
  // Rank in [0, total]; the value below which p% of the mass lies.
  const double target = p / 100.0 * static_cast<double>(total);
  double cumulative = static_cast<double>(underflow_);
  // Only actual underflow mass clamps to lo; an empty underflow bucket must
  // not capture rank 0 (p=0 of an all-overflow histogram is still >= hi).
  if (underflow_ > 0 && target <= cumulative) return lo_;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double in_bucket = static_cast<double>(counts_[i]);
    if (in_bucket > 0.0 && target <= cumulative + in_bucket) {
      const double fraction = (target - cumulative) / in_bucket;
      return bucket_lo(i) + fraction * width_;
    }
    cumulative += in_bucket;
  }
  return bucket_lo(counts_.size());  // == hi: target lies in overflow
}

double Histogram::bucket_lo(std::size_t i) const {
  return lo_ + width_ * static_cast<double>(i);
}

double Histogram::bucket_hi(std::size_t i) const { return bucket_lo(i) + width_; }

bool Histogram::compatible(const Histogram& other) const {
  return lo_ == other.lo_ && width_ == other.width_ &&
         counts_.size() == other.counts_.size();
}

void Histogram::merge(const Histogram& other) {
  if (!compatible(other)) {
    throw std::invalid_argument("Histogram::merge: incompatible bounds");
  }
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  underflow_ += other.underflow_;
  overflow_ += other.overflow_;
}

}  // namespace sealdl::util
