// Portable shim over the Clang Thread Safety Analysis attributes.
//
// Under Clang each macro expands to the corresponding __attribute__ so that
// -Wthread-safety can prove lock discipline at compile time; under GCC
// (which ships no thread-safety analysis) every macro expands to nothing and
// the annotated tree builds identically. Naming follows the shim from the
// official Clang documentation with a SEALDL_ prefix so the macros cannot
// collide with gtest/benchmark headers.
//
// Turn the analysis on with -DSEALDL_THREAD_SAFETY=ON, which adds
// -Wthread-safety -Wthread-safety-beta -Werror=thread-safety under Clang
// (root CMakeLists; policy and examples in docs/ANALYSIS.md, "Concurrency
// analysis"). The annotated wrappers that use this shim live in
// util/lock_audit.hpp.
#pragma once

#if defined(__clang__)
#define SEALDL_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define SEALDL_THREAD_ANNOTATION(x)
#endif

/// Marks a class as a capability (lockable). The string names the capability
/// kind in diagnostics, conventionally "mutex".
#define SEALDL_CAPABILITY(x) SEALDL_THREAD_ANNOTATION(capability(x))

/// Marks an RAII class whose constructor acquires and destructor releases.
#define SEALDL_SCOPED_CAPABILITY SEALDL_THREAD_ANNOTATION(scoped_lockable)

/// Data member may only be touched while holding the given capability.
#define SEALDL_GUARDED_BY(x) SEALDL_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member whose pointee is protected by the given capability.
#define SEALDL_PT_GUARDED_BY(x) SEALDL_THREAD_ANNOTATION(pt_guarded_by(x))

/// Declares a required lock-acquisition order between capabilities.
#define SEALDL_ACQUIRED_BEFORE(...) \
  SEALDL_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define SEALDL_ACQUIRED_AFTER(...) \
  SEALDL_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

/// Function requires the capability held on entry (and does not release it).
#define SEALDL_REQUIRES(...) \
  SEALDL_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define SEALDL_REQUIRES_SHARED(...) \
  SEALDL_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/// Function acquires the capability (must not be held on entry).
#define SEALDL_ACQUIRE(...) \
  SEALDL_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define SEALDL_ACQUIRE_SHARED(...) \
  SEALDL_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))

/// Function releases the capability (must be held on entry).
#define SEALDL_RELEASE(...) \
  SEALDL_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define SEALDL_RELEASE_SHARED(...) \
  SEALDL_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))

/// Function acquires the capability iff it returns the given value.
#define SEALDL_TRY_ACQUIRE(...) \
  SEALDL_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// Function must be called without the capability held (anti-deadlock for
/// self-locking public APIs).
#define SEALDL_EXCLUDES(...) SEALDL_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Asserts at runtime that the capability is held (tells the analysis so).
#define SEALDL_ASSERT_CAPABILITY(x) SEALDL_THREAD_ANNOTATION(assert_capability(x))

/// Function returns a reference to the given capability.
#define SEALDL_RETURN_CAPABILITY(x) SEALDL_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: function body is not analyzed. Use only for code that is
/// correct for reasons the analysis cannot express; leave a comment saying
/// why.
#define SEALDL_NO_THREAD_SAFETY_ANALYSIS \
  SEALDL_THREAD_ANNOTATION(no_thread_safety_analysis)
