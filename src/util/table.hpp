// ASCII table rendering for benchmark harnesses and examples.
//
// Every bench binary reproduces one paper table/figure; this renderer prints
// the rows/series in a uniform, diff-friendly format.
#pragma once

#include <string>
#include <vector>

namespace sealdl::util {

/// Column-aligned ASCII table with a header row.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Adds a row; it may have fewer cells than the header (padded empty).
  void add_row(std::vector<std::string> row);

  /// Convenience: formats doubles with the given precision.
  static std::string fmt(double v, int precision = 3);

  /// Formats a value as a percentage string, e.g. 0.416 -> "41.6%".
  static std::string pct(double v, int precision = 1);

  /// Renders the full table, including separators, to a string.
  [[nodiscard]] std::string render() const;

  /// Renders and writes to stdout.
  void print() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace sealdl::util
