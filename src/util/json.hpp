// Minimal streaming JSON writer for telemetry exports.
//
// Produces deterministic output: keys are emitted in the order the caller
// writes them, doubles use a fixed "%.12g" format, and no locale-dependent
// formatting is involved — two identical runs yield byte-identical documents
// (the property the telemetry determinism test asserts).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace sealdl::util {

class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Writes an object key; the next value/begin_* call supplies its value.
  JsonWriter& key(std::string_view name);

  JsonWriter& value(std::string_view s);
  JsonWriter& value(const char* s) { return value(std::string_view(s)); }
  JsonWriter& value(double v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(bool v);

  /// Shorthand for key(name) followed by value(v).
  template <typename T>
  JsonWriter& field(std::string_view name, T v) {
    key(name);
    return value(v);
  }

  /// The finished document. All begin_* calls must be closed.
  [[nodiscard]] const std::string& str() const { return out_; }

  /// Escapes `s` per RFC 8259: quote, backslash, and \b \f \n \r \t use the
  /// two-character escapes; every other control character (< 0x20) becomes
  /// \u00XX; all other bytes (including UTF-8 sequences) pass through
  /// unchanged. Applied to both keys and string values, so documents stay
  /// parseable for arbitrary layer/metric names.
  static std::string escape(std::string_view s);

 private:
  void comma();  ///< separator before a new element, if one is needed

  std::string out_;
  /// One entry per open container: whether it already holds an element.
  std::vector<bool> has_element_;
  bool after_key_ = false;
};

}  // namespace sealdl::util
