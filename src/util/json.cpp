#include "util/json.hpp"

#include <cmath>
#include <cstdio>

namespace sealdl::util {

void JsonWriter::comma() {
  if (after_key_) {
    after_key_ = false;
    return;  // value directly follows "key":
  }
  if (!has_element_.empty()) {
    if (has_element_.back()) out_ += ',';
    has_element_.back() = true;
  }
}

JsonWriter& JsonWriter::begin_object() {
  comma();
  out_ += '{';
  has_element_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  has_element_.pop_back();
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  comma();
  out_ += '[';
  has_element_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  has_element_.pop_back();
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view name) {
  comma();
  out_ += '"';
  out_ += escape(name);
  out_ += "\":";
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view s) {
  comma();
  out_ += '"';
  out_ += escape(s);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  comma();
  if (!std::isfinite(v)) {
    out_ += "null";  // JSON has no Inf/NaN
    return *this;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  comma();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  comma();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  comma();
  out_ += v ? "true" : "false";
  return *this;
}

std::string JsonWriter::escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        // RFC 8259: every remaining control character MUST be \uXXXX-escaped.
        // The cast keeps a (signed) char from sign-extending through the
        // varargs promotion into e.g. "￿ff85".
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;  // includes UTF-8 continuation bytes, passed through
        }
    }
  }
  return out;
}

}  // namespace sealdl::util
