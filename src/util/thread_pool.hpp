// Fixed-size worker pool for coarse-grained task parallelism.
//
// Deliberately minimal — no work stealing, no task priorities: the workloads
// this repo parallelizes (per-layer simulations, sweep points) are few and
// large, so a single locked deque is never the bottleneck. Tasks return
// futures; exceptions thrown inside a task propagate to whoever calls
// future::get(), so callers keep ordinary error handling.
//
// Concurrency contract (proved by -DSEALDL_THREAD_SAFETY=ON under Clang —
// every queue/stop access below is compile-checked against mutex_):
//  * submit() is safe from any thread, including from inside a running task.
//  * Destruction drains: every task queued before ~ThreadPool() returns is
//    executed, INCLUDING tasks enqueued by running tasks during shutdown —
//    the worker that ran the enqueuing task re-checks the queue before
//    exiting, so an enqueue chain of any depth is drained and drain-on-
//    destroy cannot deadlock (regression-tested in test_thread_pool).
//  * If the constructor throws (thread spawn failure), the workers already
//    started are stopped and joined before the exception escapes.
//  * A task must not block on the future of a task queued BEHIND it on the
//    same pool (with every worker busy ahead of it, nothing can run it).
//  * Calling submit() from outside the pool once ~ThreadPool() has begun is
//    undefined; tasks still queued when the workers have all exited are
//    destroyed unrun (their futures report broken_promise).
#pragma once

#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <thread>
#include <type_traits>
#include <vector>

#include "util/lock_audit.hpp"
#include "util/thread_annotations.hpp"

namespace sealdl::util {

class ThreadPool {
 public:
  /// Spawns `threads` workers (clamped to at least one).
  explicit ThreadPool(int threads);

  /// Completes every queued task, then joins the workers. Tasks must not
  /// reference state that is destroyed before the pool (declare the pool
  /// after whatever its tasks borrow).
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] int size() const { return static_cast<int>(workers_.size()); }

  /// Enqueues `fn` and returns the future for its result. An exception
  /// escaping `fn` is captured and rethrown by future::get().
  template <typename Fn>
  std::future<std::invoke_result_t<Fn&>> submit(Fn fn) SEALDL_EXCLUDES(mutex_) {
    using Result = std::invoke_result_t<Fn&>;
    // shared_ptr because std::function requires copyable callables and
    // packaged_task is move-only.
    auto task = std::make_shared<std::packaged_task<Result()>>(std::move(fn));
    std::future<Result> future = task->get_future();
    {
      MutexLock lock(mutex_);
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return future;
  }

  /// Maps a user-facing --jobs value to a worker count: positive values pass
  /// through, 0 (and negatives) mean one worker per hardware thread.
  static int resolve_jobs(int jobs);

 private:
  void worker_loop() SEALDL_EXCLUDES(mutex_);
  /// Pops the next task; queue must be non-empty.
  std::function<void()> take_task() SEALDL_REQUIRES(mutex_);
  /// Sets the stop flag, wakes everyone and joins. Shared by the destructor
  /// and the constructor's spawn-failure path.
  void shutdown_and_join() SEALDL_EXCLUDES(mutex_);

  std::vector<std::thread> workers_;
  Mutex mutex_{"util.ThreadPool"};
  CondVar cv_;
  std::deque<std::function<void()>> queue_ SEALDL_GUARDED_BY(mutex_);
  bool stop_ SEALDL_GUARDED_BY(mutex_) = false;
};

}  // namespace sealdl::util
