// Fixed-size worker pool for coarse-grained task parallelism.
//
// Deliberately minimal — no work stealing, no task priorities: the workloads
// this repo parallelizes (per-layer simulations, sweep points) are few and
// large, so a single locked deque is never the bottleneck. Tasks return
// futures; exceptions thrown inside a task propagate to whoever calls
// future::get(), so callers keep ordinary error handling.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace sealdl::util {

class ThreadPool {
 public:
  /// Spawns `threads` workers (clamped to at least one).
  explicit ThreadPool(int threads);

  /// Completes every queued task, then joins the workers. Tasks must not
  /// reference state that is destroyed before the pool (declare the pool
  /// after whatever its tasks borrow).
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] int size() const { return static_cast<int>(workers_.size()); }

  /// Enqueues `fn` and returns the future for its result. An exception
  /// escaping `fn` is captured and rethrown by future::get().
  template <typename Fn>
  auto submit(Fn fn) -> std::future<std::invoke_result_t<Fn&>> {
    using Result = std::invoke_result_t<Fn&>;
    // shared_ptr because std::function requires copyable callables and
    // packaged_task is move-only.
    auto task = std::make_shared<std::packaged_task<Result()>>(std::move(fn));
    std::future<Result> future = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return future;
  }

  /// Maps a user-facing --jobs value to a worker count: positive values pass
  /// through, 0 (and negatives) mean one worker per hardware thread.
  static int resolve_jobs(int jobs);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace sealdl::util
