// Annotated mutex / scoped-lock / condvar wrappers plus a runtime
// lock-order auditor.
//
// Two independent analyses share these wrappers:
//
//  * Compile time — every class here carries Clang Thread Safety Analysis
//    attributes (util/thread_annotations.hpp). Building with
//    -DSEALDL_THREAD_SAFETY=ON turns any access to a SEALDL_GUARDED_BY
//    member without the guarding Mutex held into a hard compile error, so
//    the lock discipline of ThreadPool, the logging sink and the serving
//    admission queue is *proved*, not merely exercised by TSan.
//
//  * Run time (debug/test builds) — when auditing is enabled, every
//    acquisition records a per-thread edge into a global lock-order graph
//    keyed by capability name. Findings use stable dotted rule ids, the
//    same convention as sealdl-check:
//      lock.cycle    an A-before-B edge joined a B-before-A edge: a
//                    potential deadlock, reported even if this particular
//                    run never interleaved into one
//      lock.cv-hold  a condition-variable wait entered while the thread
//                    held a second audited capability (the held lock can
//                    block the intended waker)
//      lock.confined two threads overlapped inside a thread-confined
//                    section (util::AccessSentinel)
//    verify::lock_audit_report() converts the findings into the standard
//    text/JSON diagnostic stream.
//
// Auditing is a runtime switch so one binary serves every build: the
// SEALDL_LOCK_AUDIT environment variable (1/0/on/off) wins, falling back
// to the compiled default — ON when the SEALDL_LOCK_AUDIT CMake option is
// set, OFF otherwise. All ctest entries run with SEALDL_LOCK_AUDIT=1.
// Disabled, a lock costs one relaxed atomic load over a plain std::mutex.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "util/thread_annotations.hpp"

namespace sealdl::util {

/// One auditor finding. `rule` is a stable dotted id (see header comment);
/// `subject` names the capabilities involved (e.g. "A -> B").
struct LockFinding {
  std::string rule;
  std::string subject;
  std::string message;
};

/// Process-global lock-order graph and finding store. All hooks are no-ops
/// while disabled; the auditor's own state is protected by a raw std::mutex
/// on purpose — it must never audit itself.
class LockAuditor {
 public:
  static LockAuditor& instance();

  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }
  /// The compiled-in default (before the SEALDL_LOCK_AUDIT environment
  /// variable is consulted): true iff the build set the SEALDL_LOCK_AUDIT
  /// CMake option. Release builds ship with it off.
  [[nodiscard]] static bool build_default();

  // Hooks called by Mutex/CondVar/AccessGuard. `id` identifies the mutex
  // instance (for held-stack bookkeeping), `name` its capability class
  // (edges and findings are keyed by name, so short-lived instances still
  // accumulate a stable graph).
  void on_lock_attempt(const void* id, const char* name);
  void on_locked(const void* id, const char* name);
  void on_unlocked(const void* id) noexcept;
  void on_cv_wait(const void* id, const char* name);
  void on_confinement_violation(const char* name);

  [[nodiscard]] std::vector<LockFinding> findings() const;
  /// Exact number of findings recorded (capped storage notwithstanding).
  [[nodiscard]] std::uint64_t finding_count() const;
  /// Number of distinct acquisition-order edges observed.
  [[nodiscard]] std::size_t edge_count() const;

  /// Clears the graph, findings and dedup state — not the per-thread held
  /// stacks, so call only while no audited lock is held (tests do this
  /// between cases).
  void reset();

 private:
  LockAuditor();

  /// Records `from` acquired-before `to`; cycle check on new edges. Caller
  /// must NOT hold mutex_.
  void add_edge(const char* from, const char* to);
  bool reachable(const std::string& from, const std::string& to) const;
  void record(LockFinding finding);  ///< mutex_ held by caller

  std::atomic<bool> enabled_;
  mutable std::mutex mutex_;
  std::map<std::string, std::set<std::string>> edges_;
  std::set<std::pair<std::string, std::string>> reported_;
  std::vector<LockFinding> findings_;
  std::uint64_t total_findings_ = 0;
};

/// std::mutex with a capability annotation and audit hooks. Every shared
/// mutable member it protects should be declared SEALDL_GUARDED_BY(it).
/// The name is the capability *class*: distinct instances guarding the same
/// kind of state share one name (e.g. every ThreadPool's queue mutex is
/// "util.ThreadPool"), which is what the order graph is keyed by.
class SEALDL_CAPABILITY("mutex") Mutex {
 public:
  explicit Mutex(const char* name = "mutex") : name_(name) {}
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() SEALDL_ACQUIRE() {
    LockAuditor& audit = LockAuditor::instance();
    audit.on_lock_attempt(this, name_);
    mu_.lock();
    audit.on_locked(this, name_);
  }

  void unlock() SEALDL_RELEASE() {
    LockAuditor::instance().on_unlocked(this);
    mu_.unlock();
  }

  bool try_lock() SEALDL_TRY_ACQUIRE(true) {
    if (!mu_.try_lock()) return false;
    // No order edge: try_lock cannot block, hence cannot deadlock.
    LockAuditor::instance().on_locked(this, name_);
    return true;
  }

  [[nodiscard]] const char* name() const { return name_; }

 private:
  std::mutex mu_;
  const char* name_;
};

/// Scoped lock over Mutex; the annotated replacement for std::lock_guard.
class SEALDL_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) SEALDL_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() SEALDL_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable paired with util::Mutex. From the analysis's point of
/// view the capability stays held across wait() (the internal release/
/// reacquire is invisible, matching the usual TSA convention). With
/// auditing on, entering a wait while the thread holds any OTHER audited
/// capability records a `lock.cv-hold` finding: the held lock can block the
/// thread that would signal this condition.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

  /// Atomically releases `mu` and blocks; `mu` is held again on return.
  void wait(Mutex& mu) SEALDL_REQUIRES(mu) {
    LockAuditor::instance().on_cv_wait(&mu, mu.name());
    cv_.wait(mu);
  }

  template <class Rep, class Period>
  std::cv_status wait_for(Mutex& mu,
                          const std::chrono::duration<Rep, Period>& timeout)
      SEALDL_REQUIRES(mu) {
    LockAuditor::instance().on_cv_wait(&mu, mu.name());
    return cv_.wait_for(mu, timeout);
  }

 private:
  std::condition_variable_any cv_;
};

/// Debug checker for thread-confined ("externally synchronized by the
/// owner") state — the telemetry merge paths. It guards nothing by itself:
/// entering a scope (AccessGuard) while another thread is inside the same
/// sentinel reports a `lock.confined` finding. Copy and move deliberately
/// reset the owner: a moved-to registry starts a fresh confinement domain
/// (parallel layer tasks build fragments on workers, then hand them to the
/// merging thread by value).
class AccessSentinel {
 public:
  explicit AccessSentinel(const char* name) : name_(name) {}
  AccessSentinel(const AccessSentinel& other) : name_(other.name_) {}
  AccessSentinel& operator=(const AccessSentinel& other) {
    name_ = other.name_;
    return *this;
  }

 private:
  friend class AccessGuard;
  const char* name_;
  std::atomic<std::thread::id> owner_{};
};

/// RAII entry into a thread-confined section. Reentrant on the same thread.
class AccessGuard {
 public:
  explicit AccessGuard(AccessSentinel& sentinel) {
    LockAuditor& audit = LockAuditor::instance();
    if (!audit.enabled()) return;
    std::thread::id expected{};
    if (sentinel.owner_.compare_exchange_strong(expected,
                                                std::this_thread::get_id())) {
      sentinel_ = &sentinel;
    } else if (expected != std::this_thread::get_id()) {
      audit.on_confinement_violation(sentinel.name_);
    }
  }
  ~AccessGuard() {
    if (sentinel_) sentinel_->owner_.store(std::thread::id{});
  }

  AccessGuard(const AccessGuard&) = delete;
  AccessGuard& operator=(const AccessGuard&) = delete;

 private:
  AccessSentinel* sentinel_ = nullptr;
};

}  // namespace sealdl::util
