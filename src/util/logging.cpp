#include "util/logging.hpp"

#include <atomic>
#include <cctype>
#include <cstdlib>
#include <iostream>
#include <string>

#include "util/lock_audit.hpp"

namespace sealdl::util {

namespace {
std::atomic<LogLevel> g_level{
    parse_log_level(std::getenv("SEALDL_LOG_LEVEL"), LogLevel::kWarn)};
// Serializes whole lines onto stderr. Annotated + audited like every other
// capability so a log call inside a condition wait or lock cycle shows up
// in the lock-order graph under a stable name.
Mutex g_sink_mutex{"util.log_sink"};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

LogLevel parse_log_level(const char* name, LogLevel fallback) {
  if (!name) return fallback;
  std::string lowered(name);
  for (char& c : lowered) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  if (lowered == "debug") return LogLevel::kDebug;
  if (lowered == "info") return LogLevel::kInfo;
  if (lowered == "warn" || lowered == "warning") return LogLevel::kWarn;
  if (lowered == "error") return LogLevel::kError;
  return fallback;
}

void set_log_level(LogLevel level) { g_level.store(level); }
LogLevel log_level() { return g_level.load(); }

void log_line(LogLevel level, const std::string& message) {
  MutexLock lock(g_sink_mutex);
  std::cerr << "[" << level_name(level) << "] " << message << "\n";
}

}  // namespace sealdl::util
