#include "util/thread_pool.hpp"

namespace sealdl::util {

ThreadPool::ThreadPool(int threads) {
  const int count = threads < 1 ? 1 : threads;
  workers_.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to drain
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

int ThreadPool::resolve_jobs(int jobs) {
  if (jobs > 0) return jobs;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw ? static_cast<int>(hw) : 1;
}

}  // namespace sealdl::util
