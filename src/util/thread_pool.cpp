#include "util/thread_pool.hpp"

namespace sealdl::util {

ThreadPool::ThreadPool(int threads) {
  const int count = threads < 1 ? 1 : threads;
  workers_.reserve(static_cast<std::size_t>(count));
  try {
    for (int i = 0; i < count; ++i) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  } catch (...) {
    // Thread spawn failed part-way: stop and join the workers that did
    // start, then let the exception escape. Without this the vector's
    // destructor would destroy joinable threads and terminate.
    shutdown_and_join();
    throw;
  }
}

ThreadPool::~ThreadPool() { shutdown_and_join(); }

void ThreadPool::shutdown_and_join() {
  {
    MutexLock lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
  workers_.clear();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mutex_);
      while (!stop_ && queue_.empty()) cv_.wait(mutex_);
      // stop_ set: keep draining until the queue is empty. A task running
      // on THIS worker may still enqueue more work; the re-check on the
      // next loop iteration picks it up, so enqueue-during-shutdown drains
      // instead of deadlocking.
      if (queue_.empty()) return;
      task = take_task();
    }
    task();
  }
}

std::function<void()> ThreadPool::take_task() {
  std::function<void()> task = std::move(queue_.front());
  queue_.pop_front();
  return task;
}

int ThreadPool::resolve_jobs(int jobs) {
  if (jobs > 0) return jobs;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw ? static_cast<int>(hw) : 1;
}

}  // namespace sealdl::util
