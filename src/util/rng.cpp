#include "util/rng.hpp"

#include <cmath>

namespace sealdl::util {

namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t splitmix64_next(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : state_) word = splitmix64_next(sm);
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  if (bound == 0) return 0;
  // Lemire's nearly-divisionless method, 64-bit variant.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (lo < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::next_double() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

float Rng::uniform(float lo, float hi) {
  return lo + static_cast<float>(next_double()) * (hi - lo);
}

float Rng::normal() {
  // Box–Muller without state: slightly wasteful but branch-free determinism.
  double u1 = next_double();
  double u2 = next_double();
  while (u1 <= 1e-300) u1 = next_double();
  const double r = std::sqrt(-2.0 * std::log(u1));
  return static_cast<float>(r * std::cos(2.0 * 3.14159265358979323846 * u2));
}

float Rng::normal(float mean, float stddev) { return mean + stddev * normal(); }

bool Rng::bernoulli(double p) { return next_double() < p; }

Rng Rng::fork() { return Rng(next()); }

}  // namespace sealdl::util
