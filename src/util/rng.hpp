// Deterministic pseudo-random number generation for simulation and NN init.
//
// Every stochastic component in this repository (weight initialisation,
// synthetic datasets, workload jitter) draws from an explicitly seeded Rng so
// that tests and benchmarks are bit-reproducible across runs and platforms.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace sealdl::util {

/// splitmix64: used to expand a single 64-bit seed into a full xoshiro state.
/// Reference: Sebastiano Vigna, public-domain implementation.
std::uint64_t splitmix64_next(std::uint64_t& state);

/// xoshiro256** — fast, high-quality 64-bit PRNG with a 256-bit state.
///
/// Satisfies the C++ UniformRandomBitGenerator requirements so it can be used
/// with <random> distributions, but also exposes convenience helpers that are
/// deterministic across standard-library implementations (std::distributions
/// are not portable; the helpers below are).
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the full 256-bit state from one 64-bit seed via splitmix64.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() { return next(); }
  std::uint64_t next();

  /// Uniform integer in [0, bound) without modulo bias (Lemire's method).
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform double in [0, 1) with 53 bits of randomness.
  double next_double();

  /// Uniform float in [lo, hi).
  float uniform(float lo, float hi);

  /// Standard normal via Box–Muller (deterministic, no cached spare).
  float normal();

  /// Normal with the given mean and standard deviation.
  float normal(float mean, float stddev);

  /// True with probability p.
  bool bernoulli(double p);

  /// Creates an independent child stream (for per-component determinism).
  Rng fork();

 private:
  std::array<std::uint64_t, 4> state_;
};

}  // namespace sealdl::util
