// Lightweight leveled logging. Off by default above INFO so simulator inner
// loops pay only a branch when logging is disabled.
#pragma once

#include <sstream>
#include <string>

namespace sealdl::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global threshold; messages below it are discarded. The initial threshold
/// honors the SEALDL_LOG_LEVEL environment variable (debug|info|warn|error,
/// case-insensitive); unset or unrecognized values leave the default (warn).
void set_log_level(LogLevel level);
LogLevel log_level();

/// Parses a level name as accepted by SEALDL_LOG_LEVEL; `fallback` on null or
/// unrecognized input.
LogLevel parse_log_level(const char* name, LogLevel fallback);

/// Writes one formatted line to stderr (thread-safe at line granularity).
void log_line(LogLevel level, const std::string& message);

namespace detail {
class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream() { log_line(level_, os_.str()); }
  template <typename T>
  LogStream& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace sealdl::util

#define SEALDL_LOG(level)                                       \
  if (static_cast<int>(level) < static_cast<int>(::sealdl::util::log_level())) \
    ;                                                           \
  else                                                          \
    ::sealdl::util::detail::LogStream(level)

#define SEALDL_DEBUG SEALDL_LOG(::sealdl::util::LogLevel::kDebug)
#define SEALDL_INFO SEALDL_LOG(::sealdl::util::LogLevel::kInfo)
#define SEALDL_WARN SEALDL_LOG(::sealdl::util::LogLevel::kWarn)
#define SEALDL_ERROR SEALDL_LOG(::sealdl::util::LogLevel::kError)
