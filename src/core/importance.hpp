// Relative-importance measurement of kernel rows (paper §III-A).
//
// The importance of kernel row r in a layer is the l1-norm (sum of absolute
// values) of all weights in that row: for a Conv2d with weight [out, in, k, k]
// row r is the slice [:, r, :, :]; for a Linear with weight [out, in] it is
// column r of the matrix (input feature r).
#pragma once

#include <vector>

#include "core/weight_layers.hpp"

namespace sealdl::core {

/// l1-norm of each kernel row of `layer` (size == layer.rows).
std::vector<float> kernel_row_l1(const WeightLayerRef& layer);

/// Indices of `row_norms` sorted ascending by norm (ties by index), i.e. the
/// least-important rows first — the rows SEAL leaves unencrypted.
std::vector<int> rows_by_ascending_importance(const std::vector<float>& row_norms);

}  // namespace sealdl::core
