#include "core/model_layout.hpp"

#include <stdexcept>

namespace sealdl::core {

namespace {

constexpr std::uint64_t kLine = 128;

std::uint64_t align_line(std::uint64_t bytes) {
  return (bytes + kLine - 1) & ~(kLine - 1);
}

using models::LayerSpec;

}  // namespace

ModelLayout::ModelLayout(const std::vector<LayerSpec>& specs,
                         const EncryptionPlan* plan, SecureHeap& heap) {
  // Map spec index -> plan index (plan covers weight layers only).
  std::vector<int> plan_index(specs.size(), -1);
  {
    int weight_idx = 0;
    for (std::size_t i = 0; i < specs.size(); ++i) {
      if (specs[i].type != LayerSpec::Type::kPool) plan_index[i] = weight_idx++;
    }
    if (plan && static_cast<std::size_t>(weight_idx) != plan->layer_count()) {
      throw std::invalid_argument("ModelLayout: plan/spec weight-layer mismatch");
    }
  }

  // For fmap f (input of spec i), the consuming weight layer is the first
  // CONV/FC at index >= i; pools forward their input channels untouched.
  auto consumer_plan = [&](std::size_t spec_idx) -> const LayerPlan* {
    if (!plan) return nullptr;
    for (std::size_t j = spec_idx; j < specs.size(); ++j) {
      if (plan_index[j] >= 0) return &plan->layer(static_cast<std::size_t>(plan_index[j]));
    }
    return nullptr;
  };

  // Allocate fmap buffers: fmaps[i] is the input of layer i; fmaps[n] is the
  // network output. Channel pitch is line-aligned. FC fmaps are modeled as
  // one channel per feature row group; we treat the whole feature vector as
  // channels of 1 element to reuse the channel machinery.
  struct Fmap {
    sim::Addr base = 0;
    std::uint64_t channel_pitch = 0;
    int channels = 0;
  };
  std::vector<Fmap> fmaps(specs.size() + 1);

  auto alloc_fmap = [&](int channels, std::uint64_t bytes_per_channel) {
    Fmap f;
    f.channels = channels;
    f.channel_pitch = align_line(bytes_per_channel);
    f.base = heap.malloc(f.channel_pitch * static_cast<std::uint64_t>(channels)).addr;
    total_bytes_ += f.channel_pitch * static_cast<std::uint64_t>(channels);
    return f;
  };

  for (std::size_t i = 0; i < specs.size(); ++i) {
    const LayerSpec& s = specs[i];
    if (s.type == LayerSpec::Type::kFc) {
      // Feature vector: channels = in_features, 4 bytes each (pitch merges
      // them into lines; 32 features per line).
      fmaps[i] = alloc_fmap(1, static_cast<std::uint64_t>(s.in_features) * 4);
    } else {
      fmaps[i] = alloc_fmap(s.in_channels,
                            static_cast<std::uint64_t>(s.in_h) * static_cast<std::uint64_t>(s.in_w) * 4);
    }
  }
  // Output of the last layer.
  {
    const LayerSpec& last = specs.back();
    if (last.type == LayerSpec::Type::kFc) {
      fmaps[specs.size()] = alloc_fmap(1, static_cast<std::uint64_t>(last.out_features) * 4);
    } else {
      fmaps[specs.size()] =
          alloc_fmap(last.out_channels,
                     static_cast<std::uint64_t>(last.out_h()) * static_cast<std::uint64_t>(last.out_w()) * 4);
    }
  }

  // Mark encrypted fmap channels per the consumer rule.
  if (plan) {
    for (std::size_t i = 0; i < specs.size(); ++i) {
      const LayerPlan* lp = consumer_plan(i);
      if (!lp) continue;
      const Fmap& f = fmaps[i];
      if (specs[i].type == LayerSpec::Type::kFc) {
        // Feature-granular: mark each encrypted feature's 4 bytes; the
        // SecureMap coalesces and the line rule captures mixed lines.
        for (int r = 0; r < lp->rows; ++r) {
          if (!lp->row_encrypted(r)) continue;
          heap.mark_secure(f.base + static_cast<std::uint64_t>(r) * 4, 4);
          secure_bytes_ += 4;
        }
      } else {
        const int channels = std::min(f.channels, lp->rows);
        for (int c = 0; c < channels; ++c) {
          if (!lp->row_encrypted(c)) continue;
          heap.mark_secure(f.base + static_cast<std::uint64_t>(c) * f.channel_pitch,
                           f.channel_pitch);
          secure_bytes_ += f.channel_pitch;
        }
      }
    }
    // The network output is always encrypted under SEAL.
    const Fmap& out = fmaps[specs.size()];
    heap.mark_secure(out.base, out.channel_pitch * static_cast<std::uint64_t>(out.channels));
    secure_bytes_ += out.channel_pitch * static_cast<std::uint64_t>(out.channels);
  }

  // Allocate weights (input-channel-major rows) and assemble addressing.
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const LayerSpec& s = specs[i];
    LayerAddressing addressing;
    addressing.spec = s;
    addressing.ifmap_base = fmaps[i].base;
    addressing.ifmap_channel_pitch = fmaps[i].channel_pitch;
    addressing.ifmap_channels = fmaps[i].channels;
    addressing.ofmap_base = fmaps[i + 1].base;
    addressing.ofmap_channel_pitch = fmaps[i + 1].channel_pitch;
    addressing.ofmap_channels = fmaps[i + 1].channels;

    if (s.type != LayerSpec::Type::kPool) {
      int rows, row_payload;
      if (s.type == LayerSpec::Type::kConv) {
        rows = s.in_channels;
        row_payload = s.out_channels * s.kernel * s.kernel * 4;
      } else {
        rows = s.in_features;
        row_payload = s.out_features * 4;
      }
      addressing.weight_row_bytes = static_cast<std::uint64_t>(row_payload);
      addressing.weight_row_pitch = align_line(addressing.weight_row_bytes);
      const std::uint64_t size =
          addressing.weight_row_pitch * static_cast<std::uint64_t>(rows);
      addressing.weight_base = heap.malloc(size).addr;
      total_bytes_ += size;

      if (plan) {
        const LayerPlan& lp = plan->layer(static_cast<std::size_t>(plan_index[i]));
        for (int r = 0; r < rows && r < lp.rows; ++r) {
          if (!lp.row_encrypted(r)) continue;
          heap.mark_secure(
              addressing.weight_base + static_cast<std::uint64_t>(r) * addressing.weight_row_pitch,
              addressing.weight_row_pitch);
          secure_bytes_ += addressing.weight_row_pitch;
        }
      }
    }
    layers_.push_back(addressing);
  }
}

}  // namespace sealdl::core
