// Uniform view of a model's weight layers (CONV + FC) for the SE scheme.
//
// The paper's kernel-matrix abstraction (§III-A): a CONV layer's weights form
// a matrix with n_y kernel *rows* (one per input channel) and n_x kernel
// *columns* (one per output channel); an FC layer is the same with 1x1
// kernels. SEAL ranks and encrypts kernel rows.
#pragma once

#include <vector>

#include "nn/conv2d.hpp"
#include "nn/basic_layers.hpp"
#include "nn/layer.hpp"

namespace sealdl::core {

struct WeightLayerRef {
  nn::Layer* layer = nullptr;
  nn::Param* weight = nullptr;
  bool is_conv = false;
  int rows = 0;          ///< input channels (kernel rows)
  int cols = 0;          ///< output channels (kernel columns)
  int weights_per_cell = 1;  ///< k*k for conv, 1 for fc
};

/// Collects every Conv2d and Linear leaf of `model`, in forward order.
std::vector<WeightLayerRef> collect_weight_layers(nn::Layer& model);

}  // namespace sealdl::core
