#include "core/importance.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace sealdl::core {

std::vector<float> kernel_row_l1(const WeightLayerRef& layer) {
  std::vector<float> norms(static_cast<std::size_t>(layer.rows), 0.0f);
  const nn::Tensor& w = layer.weight->value;
  if (layer.is_conv) {
    const int out_ch = layer.cols, in_ch = layer.rows;
    const int cell = layer.weights_per_cell;
    for (int oc = 0; oc < out_ch; ++oc) {
      for (int ic = 0; ic < in_ch; ++ic) {
        const std::size_t base =
            (static_cast<std::size_t>(oc) * static_cast<std::size_t>(in_ch) +
             static_cast<std::size_t>(ic)) *
            static_cast<std::size_t>(cell);
        float acc = 0.0f;
        for (int i = 0; i < cell; ++i) acc += std::fabs(w[base + static_cast<std::size_t>(i)]);
        norms[static_cast<std::size_t>(ic)] += acc;
      }
    }
  } else {
    const int out_f = layer.cols, in_f = layer.rows;
    for (int o = 0; o < out_f; ++o) {
      for (int i = 0; i < in_f; ++i) {
        norms[static_cast<std::size_t>(i)] +=
            std::fabs(w[static_cast<std::size_t>(o) * static_cast<std::size_t>(in_f) +
                        static_cast<std::size_t>(i)]);
      }
    }
  }
  return norms;
}

std::vector<int> rows_by_ascending_importance(const std::vector<float>& row_norms) {
  std::vector<int> order(row_norms.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&row_norms](int a, int b) {
    return row_norms[static_cast<std::size_t>(a)] < row_norms[static_cast<std::size_t>(b)];
  });
  return order;
}

}  // namespace sealdl::core
