#include "core/secure_heap.hpp"

namespace sealdl::core {

SecureHeap::SecureHeap(sim::Addr base, std::uint64_t capacity, std::uint64_t alignment)
    : base_(base), capacity_(capacity), alignment_(alignment), next_(base) {
  if (alignment == 0 || (alignment & (alignment - 1)) != 0) {
    throw std::invalid_argument("SecureHeap: alignment must be a power of two");
  }
}

Allocation SecureHeap::allocate(std::uint64_t size) {
  if (size == 0) throw std::invalid_argument("SecureHeap: zero-size allocation");
  const sim::Addr addr = (next_ + alignment_ - 1) & ~(alignment_ - 1);
  if (addr + size > base_ + capacity_) {
    throw std::bad_alloc();
  }
  next_ = addr + size;
  return Allocation{addr, size};
}

Allocation SecureHeap::malloc(std::uint64_t size) { return allocate(size); }

Allocation SecureHeap::emalloc(std::uint64_t size) {
  const Allocation a = allocate(size);
  map_.add_range(a.addr, a.size);
  return a;
}

void SecureHeap::mark_secure(sim::Addr addr, std::uint64_t size) {
  map_.add_range(addr, size);
}

void SecureHeap::unmark_secure(sim::Addr addr, std::uint64_t size) {
  map_.remove_range(addr, size);
}

}  // namespace sealdl::core
