// The emalloc()/malloc() programming primitive (paper §III-A, last paragraph).
//
// SEAL exposes a new allocation primitive to programmers: memory obtained via
// emalloc() is encrypted on the bus; memory from plain malloc() is not. The
// SecureHeap is a bump allocator over the simulated physical address space
// that records emalloc ranges in a sim::SecureMap, which both the timing
// memory controllers and the functional memory consult.
#pragma once

#include <cstdint>
#include <stdexcept>

#include "sim/secure_map.hpp"

namespace sealdl::core {

struct Allocation {
  sim::Addr addr = 0;
  std::uint64_t size = 0;
};

class SecureHeap {
 public:
  /// Manages [base, base+capacity). Allocations are aligned to `alignment`
  /// (default: one cache line, so a line never mixes secure and plain data).
  explicit SecureHeap(sim::Addr base = 0x1000'0000,
                      std::uint64_t capacity = 2ULL << 30,
                      std::uint64_t alignment = 128);

  /// Plain allocation: traffic to it bypasses the AES engines.
  Allocation malloc(std::uint64_t size);

  /// Encrypted allocation: the range is registered in the secure map.
  Allocation emalloc(std::uint64_t size);

  /// Marks a sub-range of an existing allocation secure (used for per-row /
  /// per-channel selective encryption within one tensor buffer).
  void mark_secure(sim::Addr addr, std::uint64_t size);

  /// Removes the secure marking from a sub-range (buffer reuse, and the
  /// analyzer's seeded-violation self-tests).
  void unmark_secure(sim::Addr addr, std::uint64_t size);

  [[nodiscard]] const sim::SecureMap& secure_map() const { return map_; }
  [[nodiscard]] sim::Addr base() const { return base_; }
  [[nodiscard]] std::uint64_t bytes_allocated() const { return next_ - base_; }
  [[nodiscard]] std::uint64_t capacity() const { return capacity_; }

 private:
  Allocation allocate(std::uint64_t size);

  sim::Addr base_;
  std::uint64_t capacity_;
  std::uint64_t alignment_;
  sim::Addr next_;
  sim::SecureMap map_;
};

}  // namespace sealdl::core
