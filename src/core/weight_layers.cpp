#include "core/weight_layers.hpp"

#include "nn/network.hpp"

namespace sealdl::core {

std::vector<WeightLayerRef> collect_weight_layers(nn::Layer& model) {
  std::vector<WeightLayerRef> out;
  nn::visit_leaf_layers(model, [&out](nn::Layer& layer) {
    if (auto* conv = dynamic_cast<nn::Conv2d*>(&layer)) {
      WeightLayerRef ref;
      ref.layer = conv;
      ref.weight = &conv->weight();
      ref.is_conv = true;
      ref.rows = conv->in_channels();
      ref.cols = conv->out_channels();
      ref.weights_per_cell = conv->kernel() * conv->kernel();
      out.push_back(ref);
      return;
    }
    if (auto* linear = dynamic_cast<nn::Linear*>(&layer)) {
      WeightLayerRef ref;
      ref.layer = linear;
      ref.weight = &linear->weight();
      ref.is_conv = false;
      ref.rows = linear->in_features();
      ref.cols = linear->out_features();
      ref.weights_per_cell = 1;
      out.push_back(ref);
    }
  });
  return out;
}

}  // namespace sealdl::core
