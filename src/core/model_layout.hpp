// Placement of a network's weights and feature maps into the simulated
// physical address space, with per-row / per-channel secure marking.
//
// Layout choices that make selective encryption range-based:
//  * conv weights are stored input-channel-major (kernel row r contiguous),
//    so an encrypted row is one address range;
//  * feature maps are channel-major with each channel padded to a cache line,
//    so an encrypted channel is one line-aligned range.
//
// Feature-map encryption follows the consumer rule (§III-A): the channels of
// the fmap feeding weight layer L are encrypted exactly where L's kernel rows
// are. POOL layers pass channel markings through; the final network output is
// fully encrypted (the paper's example encrypts Z).
#pragma once

#include <vector>

#include "core/encryption_plan.hpp"
#include "core/secure_heap.hpp"
#include "models/layer_spec.hpp"

namespace sealdl::core {

struct LayerAddressing {
  models::LayerSpec spec;

  sim::Addr weight_base = 0;
  std::uint64_t weight_row_pitch = 0;  ///< line-aligned bytes per kernel row
  std::uint64_t weight_row_bytes = 0;  ///< payload bytes per kernel row

  sim::Addr ifmap_base = 0;
  std::uint64_t ifmap_channel_pitch = 0;
  sim::Addr ofmap_base = 0;
  std::uint64_t ofmap_channel_pitch = 0;
  int ifmap_channels = 0;
  int ofmap_channels = 0;
};

class ModelLayout {
 public:
  /// Lays `specs` out on `heap`. When `plan` is non-null (SEAL configs) its
  /// per-layer row sets drive the secure-range marking; the plan must have
  /// one entry per CONV/FC spec (POOLs excluded). When null, no ranges are
  /// marked (Baseline / full-encryption configs ignore the map anyway).
  ModelLayout(const std::vector<models::LayerSpec>& specs,
              const EncryptionPlan* plan, SecureHeap& heap);

  [[nodiscard]] const std::vector<LayerAddressing>& layers() const { return layers_; }

  /// Bytes of weights + fmaps that were marked secure.
  [[nodiscard]] std::uint64_t secure_bytes() const { return secure_bytes_; }
  /// Total bytes placed.
  [[nodiscard]] std::uint64_t total_bytes() const { return total_bytes_; }

 private:
  std::vector<LayerAddressing> layers_;
  std::uint64_t secure_bytes_ = 0;
  std::uint64_t total_bytes_ = 0;
};

}  // namespace sealdl::core
