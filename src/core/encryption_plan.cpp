#include "core/encryption_plan.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/importance.hpp"

namespace sealdl::core {

int LayerPlan::encrypted_count() const {
  int n = 0;
  for (std::uint8_t v : encrypted_rows) n += v ? 1 : 0;
  return n;
}

double LayerPlan::encrypted_fraction() const {
  return rows ? static_cast<double>(encrypted_count()) / static_cast<double>(rows) : 0.0;
}

void EncryptionPlan::apply_policy(LayerPlan& plan, const std::vector<float>& norms,
                                  const PlanOptions& options, util::Rng& rng) {
  const int rows = plan.rows;
  const int encrypt_n = std::min(
      rows, static_cast<int>(std::ceil(options.encryption_ratio * rows)));
  plan.encrypted_rows.assign(static_cast<std::size_t>(rows), 0);

  switch (options.policy) {
    case RowPolicy::kSmallestL1Plain: {
      // Encrypt the rows with the *largest* l1 sums; the smallest stay plain.
      const auto order = rows_by_ascending_importance(norms);
      for (int i = rows - encrypt_n; i < rows; ++i) {
        plan.encrypted_rows[static_cast<std::size_t>(order[static_cast<std::size_t>(i)])] = 1;
      }
      break;
    }
    case RowPolicy::kLargestL1Plain: {
      const auto order = rows_by_ascending_importance(norms);
      for (int i = 0; i < encrypt_n; ++i) {
        plan.encrypted_rows[static_cast<std::size_t>(order[static_cast<std::size_t>(i)])] = 1;
      }
      break;
    }
    case RowPolicy::kRandomPlain: {
      std::vector<int> order(static_cast<std::size_t>(rows));
      for (int i = 0; i < rows; ++i) order[static_cast<std::size_t>(i)] = i;
      for (std::size_t i = order.size(); i > 1; --i) {
        std::swap(order[i - 1], order[rng.next_below(i)]);
      }
      for (int i = 0; i < encrypt_n; ++i) {
        plan.encrypted_rows[static_cast<std::size_t>(order[static_cast<std::size_t>(i)])] = 1;
      }
      break;
    }
  }
  if (plan.encrypted_count() == rows) plan.fully_encrypted = true;
}

std::vector<bool> boundary_layers(const std::vector<bool>& is_conv,
                                  const PlanOptions& options) {
  const std::size_t n = is_conv.size();
  std::vector<bool> full(n, false);
  int head_convs = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (is_conv[i] && head_convs < options.full_head_convs) {
      full[i] = true;
      ++head_convs;
    }
  }
  int tail_convs = 0, tail_fcs = 0;
  for (std::size_t i = n; i-- > 0;) {
    if (is_conv[i] && tail_convs < options.full_tail_convs) {
      full[i] = true;
      ++tail_convs;
    }
    if (!is_conv[i] && tail_fcs < options.full_tail_fcs) {
      full[i] = true;
      ++tail_fcs;
    }
  }
  return full;
}

EncryptionPlan EncryptionPlan::from_model(nn::Layer& model,
                                          const PlanOptions& options) {
  const auto layers = collect_weight_layers(model);
  if (layers.empty()) throw std::invalid_argument("plan: model has no weight layers");

  std::vector<bool> is_conv;
  is_conv.reserve(layers.size());
  for (const auto& layer : layers) is_conv.push_back(layer.is_conv);
  const auto full = boundary_layers(is_conv, options);

  EncryptionPlan plan;
  plan.options_ = options;
  util::Rng rng(options.random_seed);
  double encrypted_weights = 0.0, total_weights = 0.0;
  for (std::size_t i = 0; i < layers.size(); ++i) {
    LayerPlan lp;
    lp.rows = layers[i].rows;
    if (full[i]) {
      lp.fully_encrypted = true;
      lp.encrypted_rows.assign(static_cast<std::size_t>(lp.rows), 1);
    } else {
      const auto norms = kernel_row_l1(layers[i]);
      apply_policy(lp, norms, options, rng);
    }
    const double layer_weights =
        static_cast<double>(layers[i].rows) * static_cast<double>(layers[i].cols) *
        static_cast<double>(layers[i].weights_per_cell);
    total_weights += layer_weights;
    encrypted_weights += layer_weights * lp.encrypted_fraction();
    plan.layers_.push_back(std::move(lp));
  }
  plan.overall_fraction_ = total_weights ? encrypted_weights / total_weights : 0.0;
  return plan;
}

EncryptionPlan EncryptionPlan::from_row_counts(const std::vector<int>& rows,
                                               const std::vector<bool>& is_conv,
                                               const PlanOptions& options) {
  if (rows.size() != is_conv.size()) {
    throw std::invalid_argument("plan: rows/is_conv size mismatch");
  }
  const auto full = boundary_layers(is_conv, options);
  EncryptionPlan plan;
  plan.options_ = options;
  util::Rng rng(options.random_seed);
  double encrypted_rows = 0.0, total_rows = 0.0;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    LayerPlan lp;
    lp.rows = rows[i];
    if (full[i]) {
      lp.fully_encrypted = true;
      lp.encrypted_rows.assign(static_cast<std::size_t>(lp.rows), 1);
    } else {
      // Geometry-only ranking: row index stands in for the l1 order. The
      // encrypted *fraction* and its address placement are what timing sees.
      std::vector<float> norms(static_cast<std::size_t>(lp.rows));
      for (int r = 0; r < lp.rows; ++r) norms[static_cast<std::size_t>(r)] = static_cast<float>(r);
      apply_policy(lp, norms, options, rng);
    }
    total_rows += lp.rows;
    encrypted_rows += lp.encrypted_count();
    plan.layers_.push_back(std::move(lp));
  }
  plan.overall_fraction_ = total_rows ? encrypted_rows / total_rows : 0.0;
  return plan;
}

EncryptionPlan EncryptionPlan::for_specs(const std::vector<models::LayerSpec>& specs,
                                         const PlanOptions& options) {
  std::vector<int> rows;
  std::vector<bool> is_conv;
  for (const auto& s : specs) {
    if (s.type == models::LayerSpec::Type::kPool) continue;
    rows.push_back(s.type == models::LayerSpec::Type::kConv ? s.in_channels
                                                            : s.in_features);
    is_conv.push_back(s.type == models::LayerSpec::Type::kConv);
  }
  return from_row_counts(rows, is_conv, options);
}

bool EncryptionPlan::row_protected(std::size_t layer, int row) const {
  if (layer >= layers_.size() || row < 0) return false;
  const LayerPlan& lp = layers_[layer];
  if (static_cast<std::size_t>(row) >= lp.encrypted_rows.size()) return false;
  return lp.row_encrypted(row);
}

std::vector<int> EncryptionPlan::plaintext_rows(std::size_t layer) const {
  std::vector<int> rows;
  if (layer >= layers_.size()) return rows;
  const LayerPlan& lp = layers_[layer];
  for (int r = 0; r < static_cast<int>(lp.encrypted_rows.size()); ++r) {
    if (!lp.row_encrypted(r)) rows.push_back(r);
  }
  return rows;
}

}  // namespace sealdl::core
