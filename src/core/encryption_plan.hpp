// The criticality-aware Smart Encryption plan (paper §III-A/B).
//
// For each weight layer the plan records which kernel rows are encrypted.
// Row r encrypted in layer L implies input-feature-map channel r of layer L
// is encrypted too (it only ever meets row r in the convolution), so snooped
// plaintext never pairs with an encrypted operand and no secret can be solved
// for — the paper's two-layer argument around Equations (1)-(3).
//
// Boundary policy (§III-B1): the first two CONV layers, the last CONV layer
// and the final FC layer are always fully encrypted, preventing the adversary
// from solving weights through the known network input/output.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/weight_layers.hpp"
#include "models/layer_spec.hpp"
#include "util/rng.hpp"

namespace sealdl::core {

/// How the plan picks which rows stay plaintext (ablation hook; the paper's
/// scheme is kSmallestL1Plain).
enum class RowPolicy {
  kSmallestL1Plain,  ///< leave the lowest-l1 rows unencrypted (SEAL)
  kRandomPlain,      ///< leave a random subset unencrypted
  kLargestL1Plain,   ///< security-inverted control: expose the biggest rows
};

struct PlanOptions {
  /// Fraction of kernel rows encrypted in each SE-scheme layer (paper default
  /// 0.5 after the §III-B calibration). Rounds up.
  double encryption_ratio = 0.5;
  /// Boundary layers that are always fully encrypted.
  int full_head_convs = 2;
  int full_tail_convs = 1;
  int full_tail_fcs = 1;
  RowPolicy policy = RowPolicy::kSmallestL1Plain;
  std::uint64_t random_seed = 11;  ///< for kRandomPlain
};

/// Per-layer slice of the plan.
struct LayerPlan {
  int rows = 0;
  bool fully_encrypted = false;
  /// encrypted_rows[r] != 0 iff kernel row r (== input channel r) is
  /// encrypted. Size == rows.
  std::vector<std::uint8_t> encrypted_rows;

  [[nodiscard]] int encrypted_count() const;
  [[nodiscard]] double encrypted_fraction() const;
  [[nodiscard]] bool row_encrypted(int r) const {
    return encrypted_rows[static_cast<std::size_t>(r)] != 0;
  }
};

class EncryptionPlan {
 public:
  EncryptionPlan() = default;

  /// Builds a plan from a trained model's actual weights (l1 ranking).
  static EncryptionPlan from_model(nn::Layer& model, const PlanOptions& options);

  /// Builds a geometry-only plan from per-layer row counts (used by the
  /// timing workloads, where only the encrypted fraction and placement
  /// matter, not which specific rows carry large weights). `is_conv` is
  /// parallel to `rows`.
  static EncryptionPlan from_row_counts(const std::vector<int>& rows,
                                        const std::vector<bool>& is_conv,
                                        const PlanOptions& options);

  /// Geometry-only plan for a LayerSpec chain: one plan layer per CONV/FC
  /// spec (POOLs excluded), rows = input channels / features. This is the
  /// single construction path shared by the network runner and the static
  /// analyzer, so both always reason about the same plan.
  static EncryptionPlan for_specs(const std::vector<models::LayerSpec>& specs,
                                  const PlanOptions& options);

  [[nodiscard]] const std::vector<LayerPlan>& layers() const { return layers_; }
  [[nodiscard]] std::size_t layer_count() const { return layers_.size(); }
  [[nodiscard]] const LayerPlan& layer(std::size_t i) const { return layers_.at(i); }

  /// Overall fraction of weight parameters encrypted (weighted by layer
  /// weight counts when built from a model; by rows otherwise).
  [[nodiscard]] double overall_encrypted_weight_fraction() const {
    return overall_fraction_;
  }

  [[nodiscard]] const PlanOptions& options() const { return options_; }

  /// Provenance query for the taint analyzer: true iff kernel row `row` of
  /// weight layer `layer` must be ciphertext on the bus under a selective
  /// scheme. Out-of-range layers/rows report false rather than throwing —
  /// a malformed plan must degrade into diagnostics, not crash the auditor.
  [[nodiscard]] bool row_protected(std::size_t layer, int row) const;

  /// The deliberately-unprotected rows of weight layer `layer`, ascending —
  /// SEAL's exact intended leakage boundary. secure.boundary proves the
  /// plaintext rows observed on the bus equal this set, no more, no less.
  [[nodiscard]] std::vector<int> plaintext_rows(std::size_t layer) const;

  /// Mutable access to the per-layer slices. Exists for the analyzer's
  /// seeded-violation self-tests (sealdl-check --inject), which corrupt a
  /// real plan to prove every rule can fire; production code never mutates
  /// a built plan.
  [[nodiscard]] std::vector<LayerPlan>& mutable_layers() { return layers_; }

 private:
  static void apply_policy(LayerPlan& plan, const std::vector<float>& norms,
                           const PlanOptions& options, util::Rng& rng);

  std::vector<LayerPlan> layers_;
  PlanOptions options_;
  double overall_fraction_ = 0.0;
};

/// The §III-B boundary policy as a mask: full[i] is true iff weight layer i
/// (CONV/FC order, POOLs excluded) must be fully encrypted. Exposed so the
/// static analyzer checks the policy against the same definition the plan
/// builder uses.
std::vector<bool> boundary_layers(const std::vector<bool>& is_conv,
                                  const PlanOptions& options);

}  // namespace sealdl::core
