// AES-128 block cipher, implemented from FIPS-197.
//
// This is the *functional* half of the memory-encryption engine: the timing
// half lives in sim/aes_pipeline.hpp. Having a real cipher means the simulated
// memory bus carries genuine ciphertext, so the bus-snooping attack in
// src/attack observes exactly what a hardware probe would.
//
// The implementation is a straightforward table-free byte-oriented AES: S-box
// lookups plus xtime() for MixColumns. It is not constant-time-hardened (the
// simulator is not a production TLS stack), but it is exact: the unit tests
// check the FIPS-197 appendix vectors and NIST SP 800-38A mode vectors.
#pragma once

#include <array>
#include <cstdint>

namespace sealdl::crypto {

/// One 16-byte AES block.
using Block = std::array<std::uint8_t, 16>;

/// 128-bit key.
using Key128 = std::array<std::uint8_t, 16>;

/// Expanded key schedule + block encrypt/decrypt.
class Aes128 {
 public:
  explicit Aes128(const Key128& key);

  /// Encrypts one 16-byte block in place.
  void encrypt_block(Block& block) const;

  /// Decrypts one 16-byte block in place.
  void decrypt_block(Block& block) const;

  /// Number of round keys (Nr + 1 = 11 for AES-128).
  static constexpr int kRounds = 10;

  /// Exposed for unit tests against the FIPS-197 key-expansion vectors.
  [[nodiscard]] const std::array<Block, kRounds + 1>& round_keys() const {
    return round_keys_;
  }

 private:
  std::array<Block, kRounds + 1> round_keys_{};
};

}  // namespace sealdl::crypto
