#include "crypto/engine_spec.hpp"

namespace sealdl::crypto {

EngineSpec default_engine() {
  // §IV-A: "a pipeline AES encryption engine with 128-bit block [15], in which
  // the overall AES encryption latency for a cache line is 20 cycles and the
  // bandwidth of each AES engine is 8GB/s."
  return EngineSpec{"SEAL-default (Mathew-style pipelined)", 1.1, 125.0, 20, 8.0};
}

std::vector<EngineSpec> table1_engines() {
  return {
      {"Morioka et al. [16]", -1.0, 1920.0, 10, 1.5},
      {"Mathew et al. [15]", 1.1, 125.0, 20, 6.6},
      {"Ensilica [3]", 1.4, -1.0, 11, 8.0},
      {"Sayilar et al. [21]", 6.3, 6207.0, 20, 16.0},
      {"Liu et al. [14]", 6.6, 1580.0, 152, 19.0},
  };
}

}  // namespace sealdl::crypto
