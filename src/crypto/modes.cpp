#include "crypto/modes.hpp"

#include <cassert>
#include <cstring>

namespace sealdl::crypto {

namespace {

Block make_tweak_block(std::uint64_t line_addr, std::uint64_t salt) {
  Block b{};
  for (int i = 0; i < 8; ++i) {
    b[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(line_addr >> (8 * i));
    b[static_cast<std::size_t>(8 + i)] = static_cast<std::uint8_t>(salt >> (8 * i));
  }
  return b;
}

}  // namespace

void direct_encrypt_line(const Aes128& aes, std::uint64_t line_addr,
                         std::span<std::uint8_t> data) {
  assert(data.size() == kLineBytes);
  for (std::size_t i = 0; i < kBlocksPerLine; ++i) {
    Block tweak = make_tweak_block(line_addr, i);
    aes.encrypt_block(tweak);  // E_K(addr || i): per-block whitening mask
    Block block;
    std::memcpy(block.data(), data.data() + 16 * i, 16);
    for (std::size_t j = 0; j < 16; ++j) block[j] ^= tweak[j];
    aes.encrypt_block(block);
    for (std::size_t j = 0; j < 16; ++j) block[j] ^= tweak[j];
    std::memcpy(data.data() + 16 * i, block.data(), 16);
  }
}

void direct_decrypt_line(const Aes128& aes, std::uint64_t line_addr,
                         std::span<std::uint8_t> data) {
  assert(data.size() == kLineBytes);
  for (std::size_t i = 0; i < kBlocksPerLine; ++i) {
    Block tweak = make_tweak_block(line_addr, i);
    aes.encrypt_block(tweak);
    Block block;
    std::memcpy(block.data(), data.data() + 16 * i, 16);
    for (std::size_t j = 0; j < 16; ++j) block[j] ^= tweak[j];
    aes.decrypt_block(block);
    for (std::size_t j = 0; j < 16; ++j) block[j] ^= tweak[j];
    std::memcpy(data.data() + 16 * i, block.data(), 16);
  }
}

void counter_transform_line(const Aes128& aes, std::uint64_t line_addr,
                            std::uint64_t counter, std::span<std::uint8_t> data) {
  assert(data.size() == kLineBytes);
  for (std::size_t i = 0; i < kBlocksPerLine; ++i) {
    // Pad input: (line address, counter) is unique per write of this line and
    // the block index distinguishes blocks within the line.
    Block pad = make_tweak_block(line_addr ^ (static_cast<std::uint64_t>(i) << 56), counter);
    aes.encrypt_block(pad);
    for (std::size_t j = 0; j < 16; ++j) data[16 * i + j] ^= pad[j];
  }
}

void ctr_keystream_xor(const Aes128& aes, const Block& initial_counter,
                       std::span<std::uint8_t> data) {
  Block counter = initial_counter;
  std::size_t offset = 0;
  while (offset < data.size()) {
    Block pad = counter;
    aes.encrypt_block(pad);
    const std::size_t n = std::min<std::size_t>(16, data.size() - offset);
    for (std::size_t j = 0; j < n; ++j) data[offset + j] ^= pad[j];
    offset += n;
    // Big-endian increment of the trailing 32 bits (SP 800-38A convention).
    for (int i = 15; i >= 12; --i) {
      if (++counter[static_cast<std::size_t>(i)] != 0) break;
    }
  }
}

}  // namespace sealdl::crypto
