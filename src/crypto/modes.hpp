// Memory-encryption modes over 128-byte cache lines.
//
// Two modes from the paper (following Yan et al., ISCA'06):
//
//  * Direct encryption — the line payload itself goes through AES. We use an
//    address-tweaked ECB (XEX-style): each 16-byte block is XORed with an
//    AES-encrypted tweak derived from (line address, block index) before and
//    after the cipher, so identical plaintext at different addresses yields
//    different ciphertext. Decryption requires the inverse cipher.
//
//  * Counter-mode encryption — AES encrypts a (line address, per-line counter,
//    block index) tuple to produce a one-time pad that is XORed with the data.
//    The pad can be computed while the data is still in flight from DRAM
//    (latency advantage), but each line still costs 8 AES block operations
//    (bandwidth cost), and the counters themselves live in memory.
//
// Also includes a plain CTR keystream used by the SP 800-38A conformance tests.
#pragma once

#include <cstdint>
#include <span>

#include "crypto/aes128.hpp"

namespace sealdl::crypto {

/// Cache-line geometry shared by the whole system.
inline constexpr std::size_t kLineBytes = 128;
inline constexpr std::size_t kBlocksPerLine = kLineBytes / 16;

/// Address-tweaked direct encryption of one cache line, in place.
/// `data.size()` must be kLineBytes.
void direct_encrypt_line(const Aes128& aes, std::uint64_t line_addr,
                         std::span<std::uint8_t> data);

/// Inverse of direct_encrypt_line.
void direct_decrypt_line(const Aes128& aes, std::uint64_t line_addr,
                         std::span<std::uint8_t> data);

/// Counter-mode transform of one cache line, in place. Encryption and
/// decryption are the same operation (XOR with the pad).
void counter_transform_line(const Aes128& aes, std::uint64_t line_addr,
                            std::uint64_t counter, std::span<std::uint8_t> data);

/// Standard NIST CTR mode over an arbitrary buffer with a 16-byte initial
/// counter block (big-endian increment of the low 32 bits per SP 800-38A).
void ctr_keystream_xor(const Aes128& aes, const Block& initial_counter,
                       std::span<std::uint8_t> data);

}  // namespace sealdl::crypto
