// Timing/cost descriptions of published hardware AES engines (paper Table I).
//
// The cycle-level simulator consumes an EngineSpec to model the encryption
// pipeline in each memory controller; the Table I bench prints the published
// figures next to the throughput measured in simulation.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace sealdl::crypto {

/// Published parameters of one hardware AES implementation.
///
/// `latency_cycles` and the derived bytes-per-cycle are expressed in the
/// simulator's core clock domain (700 MHz, see sim/gpu_config.hpp); the paper
/// quotes latency in engine cycles for a cache line and throughput in GB/s.
struct EngineSpec {
  std::string name;            ///< publication tag
  double area_mm2;             ///< die area; <0 means not reported
  double power_mw;             ///< power; <0 means not reported
  int latency_cycles;          ///< pipeline fill latency for one cache line
  double throughput_gbps;      ///< sustained bandwidth in GB/s

  /// Sustained engine bandwidth in bytes per core cycle at `core_mhz`.
  [[nodiscard]] double bytes_per_cycle(double core_mhz) const {
    return throughput_gbps * 1e9 / (core_mhz * 1e6);
  }
};

/// The engine the paper models for SEAL (Mathew et al. pipelined, 20-cycle
/// cache-line latency, 8 GB/s sustained — §IV-A).
EngineSpec default_engine();

/// All rows of paper Table I, in publication order.
std::vector<EngineSpec> table1_engines();

}  // namespace sealdl::crypto
