// Configuration for the batched inference serving simulation (src/serve).
//
// Everything here is in simulated time: arrival timestamps are core cycles
// derived from --rate (requests per second at the configured core clock) via
// a seeded util::Rng — no wall clock anywhere, so a serve run is a pure
// function of (options, model profile) and replays bit-identically.
#pragma once

#include <cstdint>
#include <string>

namespace sealdl::serve {

/// What the admission queue does with an arrival when it is already full.
enum class OverloadPolicy {
  kDrop,       ///< reject the new request (counted in serve/dropped)
  kBlock,      ///< park it in an unbounded backlog; it enters the queue when
               ///< a slot frees, keeping its original arrival timestamp
  kShedOldest, ///< evict the oldest queued request to make room (serve/shed)
};

const char* policy_name(OverloadPolicy policy);

/// Parses "drop" | "block" | "shed-oldest"; throws std::invalid_argument.
OverloadPolicy parse_policy(const std::string& name);

/// True iff `policy` is one of the declared enumerators — guards values
/// forged via static_cast in embedding code (checked by the
/// `serve.options.policy` rule, see verify/serve_checkers.hpp).
bool policy_known(OverloadPolicy policy);

struct ServeOptions {
  /// Mean offered load in requests per second of simulated time (open-loop
  /// Poisson process: exponential inter-arrival gaps).
  double rate_rps = 20.0;
  /// Length of the arrival window in simulated seconds. Requests already
  /// admitted when the window closes are still served to completion.
  double duration_s = 1.0;
  /// Admission queue capacity (requests waiting for the device).
  std::size_t queue_depth = 32;
  /// Largest batch one dispatch may carry (>= 1).
  int max_batch = 4;
  OverloadPolicy policy = OverloadPolicy::kDrop;
  /// Seed for the arrival process (gap lengths and network choices).
  std::uint64_t seed = 1;
  /// Fixed cycles charged per dispatch (kernel launch, batch assembly).
  double dispatch_overhead_cycles = 20000.0;

  /// Live-stats streaming (--live-stats): when enabled, the serving loop
  /// emits one NDJSON progress line per `live_stats_interval_s` of simulated
  /// time. The interval must be a positive finite second count
  /// (serve.options.live).
  bool live_stats = false;
  double live_stats_interval_s = 0.0;

  /// Request-lifecycle profile export (--profile-out): when enabled, the
  /// per-request stage decomposition is written as NDJSON to `profile_path`,
  /// which must be a plausible writable file path — non-empty and not a
  /// directory (serve.options.profile).
  bool profile = false;
  std::string profile_path;
};

}  // namespace sealdl::serve
