// Bounded admission queue with a configurable overload policy.
//
// The queue holds requests waiting for the device. When an arrival finds it
// full, the OverloadPolicy decides: drop the newcomer, park it in an
// unbounded backlog (block — the open-loop analogue of a blocking client:
// the request keeps its arrival timestamp, so its eventual latency includes
// the time spent blocked), or shed the oldest queued request. Every outcome
// is counted so the serving report can state exactly where offered load
// went.
//
// Internally synchronized: every member is SEALDL_GUARDED_BY the queue
// mutex and every public method takes it, so concurrent producers (a future
// multi-threaded ingest path) are safe by construction — under Clang with
// -DSEALDL_THREAD_SAFETY=ON an unlocked access is a compile error. The
// serving loop today is single-threaded; the uncontended lock costs nothing
// measurable against a dispatch, and determinism is untouched.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "serve/options.hpp"
#include "serve/request_gen.hpp"
#include "util/lock_audit.hpp"
#include "util/thread_annotations.hpp"

namespace sealdl::serve {

class AdmissionQueue {
 public:
  AdmissionQueue(std::size_t depth, OverloadPolicy policy)
      : depth_(depth), policy_(policy) {}

  /// Applies the overload policy to one arrival. Returns the request shed to
  /// make room, if any (shed-oldest on a full queue).
  std::optional<Request> offer(const Request& request) SEALDL_EXCLUDES(mutex_);

  /// Pops the front request plus up to `max_batch - 1` further queued
  /// requests for the same network (FIFO across the queue; non-matching
  /// requests keep their positions). Backlogged requests then refill the
  /// freed slots in arrival order, each stamped with `now` as its admit
  /// cycle (the lifecycle trace's backlog/queue stage boundary). Empty
  /// result iff the queue is empty.
  std::vector<Request> pop_batch(int max_batch, sim::Cycle now = 0)
      SEALDL_EXCLUDES(mutex_);

  [[nodiscard]] bool empty() const SEALDL_EXCLUDES(mutex_) {
    util::MutexLock lock(mutex_);
    return queue_.empty();
  }
  [[nodiscard]] std::size_t size() const SEALDL_EXCLUDES(mutex_) {
    util::MutexLock lock(mutex_);
    return queue_.size();
  }
  /// Copy of the oldest queued request (the next dispatch anchor); queue
  /// must be non-empty. Returned by value — a reference could dangle the
  /// instant another thread reshapes the queue.
  [[nodiscard]] Request front() const SEALDL_EXCLUDES(mutex_) {
    util::MutexLock lock(mutex_);
    return queue_.front();
  }
  [[nodiscard]] std::size_t backlog_size() const SEALDL_EXCLUDES(mutex_) {
    util::MutexLock lock(mutex_);
    return backlog_.size();
  }

  // Accounting (all since construction).
  [[nodiscard]] std::uint64_t offered() const SEALDL_EXCLUDES(mutex_) {
    util::MutexLock lock(mutex_);
    return offered_;
  }
  [[nodiscard]] std::uint64_t admitted() const SEALDL_EXCLUDES(mutex_) {
    util::MutexLock lock(mutex_);
    return admitted_;
  }
  [[nodiscard]] std::uint64_t dropped() const SEALDL_EXCLUDES(mutex_) {
    util::MutexLock lock(mutex_);
    return dropped_;
  }
  [[nodiscard]] std::uint64_t shed() const SEALDL_EXCLUDES(mutex_) {
    util::MutexLock lock(mutex_);
    return shed_;
  }
  [[nodiscard]] std::uint64_t blocked() const SEALDL_EXCLUDES(mutex_) {
    util::MutexLock lock(mutex_);
    return blocked_;
  }
  [[nodiscard]] std::size_t peak_backlog() const SEALDL_EXCLUDES(mutex_) {
    util::MutexLock lock(mutex_);
    return peak_backlog_;
  }

 private:
  void refill_from_backlog(sim::Cycle now) SEALDL_REQUIRES(mutex_);

  mutable util::Mutex mutex_{"serve.AdmissionQueue"};
  std::size_t depth_;        ///< immutable after construction
  OverloadPolicy policy_;    ///< immutable after construction
  std::deque<Request> queue_ SEALDL_GUARDED_BY(mutex_);
  std::deque<Request> backlog_ SEALDL_GUARDED_BY(mutex_);  ///< block policy

  std::uint64_t offered_ SEALDL_GUARDED_BY(mutex_) = 0;
  std::uint64_t admitted_ SEALDL_GUARDED_BY(mutex_) = 0;
  std::uint64_t dropped_ SEALDL_GUARDED_BY(mutex_) = 0;
  std::uint64_t shed_ SEALDL_GUARDED_BY(mutex_) = 0;
  std::uint64_t blocked_ SEALDL_GUARDED_BY(mutex_) = 0;
  std::size_t peak_backlog_ SEALDL_GUARDED_BY(mutex_) = 0;
};

}  // namespace sealdl::serve
