// Bounded admission queue with a configurable overload policy.
//
// The queue holds requests waiting for the device. When an arrival finds it
// full, the OverloadPolicy decides: drop the newcomer, park it in an
// unbounded backlog (block — the open-loop analogue of a blocking client:
// the request keeps its arrival timestamp, so its eventual latency includes
// the time spent blocked), or shed the oldest queued request. Every outcome
// is counted so the serving report can state exactly where offered load
// went.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "serve/options.hpp"
#include "serve/request_gen.hpp"

namespace sealdl::serve {

class AdmissionQueue {
 public:
  AdmissionQueue(std::size_t depth, OverloadPolicy policy)
      : depth_(depth), policy_(policy) {}

  /// Applies the overload policy to one arrival. Returns the request shed to
  /// make room, if any (shed-oldest on a full queue).
  std::optional<Request> offer(const Request& request);

  /// Pops the front request plus up to `max_batch - 1` further queued
  /// requests for the same network (FIFO across the queue; non-matching
  /// requests keep their positions). Backlogged requests then refill the
  /// freed slots in arrival order. Empty result iff the queue is empty.
  std::vector<Request> pop_batch(int max_batch);

  [[nodiscard]] bool empty() const { return queue_.empty(); }
  [[nodiscard]] std::size_t size() const { return queue_.size(); }
  /// Oldest queued request (the next dispatch anchor); queue must be
  /// non-empty.
  [[nodiscard]] const Request& front() const { return queue_.front(); }
  [[nodiscard]] std::size_t backlog_size() const { return backlog_.size(); }

  // Accounting (all since construction).
  [[nodiscard]] std::uint64_t offered() const { return offered_; }
  [[nodiscard]] std::uint64_t admitted() const { return admitted_; }
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }
  [[nodiscard]] std::uint64_t shed() const { return shed_; }
  [[nodiscard]] std::uint64_t blocked() const { return blocked_; }
  [[nodiscard]] std::size_t peak_backlog() const { return peak_backlog_; }

 private:
  void refill_from_backlog();

  std::size_t depth_;
  OverloadPolicy policy_;
  std::deque<Request> queue_;
  std::deque<Request> backlog_;  ///< block policy only

  std::uint64_t offered_ = 0;
  std::uint64_t admitted_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t shed_ = 0;
  std::uint64_t blocked_ = 0;
  std::size_t peak_backlog_ = 0;
};

}  // namespace sealdl::serve
