#include "serve/service_model.hpp"

#include <algorithm>
#include <future>
#include <memory>
#include <stdexcept>
#include <utility>

#include "util/thread_pool.hpp"
#include "workload/batch_model.hpp"

namespace sealdl::serve {

NamedNetwork named_network(const std::string& name) {
  if (name == "vgg16") return {name, models::vgg16_specs()};
  if (name == "resnet18") return {name, models::resnet18_specs()};
  if (name == "resnet34") return {name, models::resnet34_specs()};
  throw std::invalid_argument("unknown network " + name +
                              " (vgg16|resnet18|resnet34)");
}

namespace {

/// One network's profiling output: the timing result plus the task-private
/// telemetry sink (null when the caller collects nothing).
struct ProfileOutcome {
  workload::NetworkResult result;
  std::unique_ptr<telemetry::RunTelemetry> telemetry;
};

ProfileOutcome profile_network(const NamedNetwork& network,
                               const sim::GpuConfig& config,
                               workload::RunOptions options,
                               sim::Cycle sample_interval, bool collect,
                               workload::BusProbeHook* probe_hook) {
  ProfileOutcome outcome;
  if (collect) {
    telemetry::TelemetryOptions topts;
    topts.sample_interval = sample_interval;
    outcome.telemetry = std::make_unique<telemetry::RunTelemetry>(topts);
  }
  options.telemetry = outcome.telemetry.get();
  options.jobs = 1;  // parallelism lives at the network level here
  options.probe_hook = probe_hook;
  outcome.result = workload::run_network(network.specs, config, options);
  return outcome;
}

/// Folds one network's telemetry fragment into the shared sink. Called in
/// network order from the constructing thread only.
void merge_profile(const std::string& name, const ProfileOutcome& outcome,
                   telemetry::RunTelemetry* collect) {
  if (!collect || !outcome.telemetry) return;
  const telemetry::RunTelemetry& fragment = *outcome.telemetry;
  if (auto* sampler = collect->sampler()) {
    if (const auto* source = fragment.sampler()) {
      sampler->append_shifted(source->samples(), collect->timeline());
    }
  }
  for (telemetry::LayerPhaseRecord record : fragment.layers()) {
    record.name = name + "/" + record.name;
    record.start_cycle += collect->timeline();
    collect->layers().push_back(std::move(record));
  }
  collect->registry().merge_from(fragment.registry());
  collect->advance_timeline(fragment.timeline());
}

}  // namespace

ServiceModel::ServiceModel(std::vector<NamedNetwork> networks,
                           const sim::GpuConfig& config,
                           const workload::RunOptions& base_options,
                           int max_batch, int jobs,
                           telemetry::RunTelemetry* collect,
                           std::vector<workload::BusProbeHook*> probe_hooks)
    : config_(config) {
  if (networks.empty()) throw std::invalid_argument("ServiceModel: no networks");
  if (!probe_hooks.empty() && probe_hooks.size() != networks.size()) {
    throw std::invalid_argument(
        "ServiceModel: probe_hooks must be parallel to networks");
  }
  const bool collecting = collect != nullptr;
  const sim::Cycle sample_interval =
      collecting && collect->sampler() ? collect->sampler()->interval() : 0;
  const auto hook_for = [&probe_hooks](std::size_t i) {
    return probe_hooks.empty() ? nullptr : probe_hooks[i];
  };

  std::vector<ProfileOutcome> outcomes;
  outcomes.reserve(networks.size());
  const int workers = jobs == 1 ? 1 : util::ThreadPool::resolve_jobs(jobs);
  if (workers <= 1 || networks.size() <= 1) {
    for (std::size_t i = 0; i < networks.size(); ++i) {
      outcomes.push_back(profile_network(networks[i], config, base_options,
                                         sample_interval, collecting,
                                         hook_for(i)));
    }
  } else {
    util::ThreadPool pool(static_cast<int>(std::min<std::size_t>(
        static_cast<std::size_t>(workers), networks.size())));
    std::vector<std::future<ProfileOutcome>> futures;
    futures.reserve(networks.size());
    for (std::size_t i = 0; i < networks.size(); ++i) {
      const NamedNetwork& network = networks[i];
      workload::BusProbeHook* hook = hook_for(i);
      futures.push_back(
          pool.submit([&network, &config, &base_options, sample_interval,
                       collecting, hook] {
            return profile_network(network, config, base_options,
                                   sample_interval, collecting, hook);
          }));
    }
    for (auto& future : futures) outcomes.push_back(future.get());
  }

  const int batches = std::max(1, max_batch);
  for (std::size_t i = 0; i < networks.size(); ++i) {
    merge_profile(networks[i].name, outcomes[i], collect);
    names_.push_back(networks[i].name);
    profiles_.push_back(std::move(outcomes[i].result));
    const workload::NetworkResult& result = profiles_.back();

    Aggregate aggregate;
    double cycle_sum = 0.0;
    for (const workload::LayerResult& layer : result.layers) {
      aggregate.instructions +=
          static_cast<double>(layer.stats.thread_instructions) * layer.scale;
      aggregate.dram_bytes +=
          static_cast<double>(layer.stats.dram_read_bytes +
                              layer.stats.dram_write_bytes +
                              layer.stats.counter_traffic_bytes) *
          layer.scale;
      aggregate.encrypted_bytes +=
          static_cast<double>(layer.stats.encrypted_bytes) * layer.scale;
      aggregate.bypassed_bytes +=
          static_cast<double>(layer.stats.bypassed_bytes) * layer.scale;
      const double cycles = layer.full_cycles();
      aggregate.dram_util += sim::dram_utilization(layer.stats, config) * cycles;
      aggregate.aes_util += sim::aes_utilization(layer.stats, config) * cycles;
      cycle_sum += cycles;
    }
    if (cycle_sum > 0.0) {
      aggregate.dram_util /= cycle_sum;
      aggregate.aes_util /= cycle_sum;
    }
    aggregates_.push_back(aggregate);

    std::vector<double> curve;
    curve.reserve(static_cast<std::size_t>(batches));
    for (int b = 1; b <= batches; ++b) {
      curve.push_back(workload::batched_network_cycles(result, config, b));
    }
    cycles_.push_back(std::move(curve));
  }
}

ServiceModel::StagePlan ServiceModel::stage_plan(int network, int stages,
                                                 int max_batch) const {
  const workload::NetworkResult& result =
      profiles_.at(static_cast<std::size_t>(network));
  const int num_stages = std::max(1, stages);
  const int batches = std::max(1, max_batch);
  StagePlan plan;
  plan.cycles.assign(static_cast<std::size_t>(num_stages), {});
  plan.boundary_bytes.assign(static_cast<std::size_t>(num_stages), 0.0);

  if (num_stages == 1) {
    // Unsharded: reuse the whole-network batch curve so the one-stage fleet
    // path reproduces service_cycles() to the bit.
    auto& curve = plan.cycles[0];
    curve.reserve(static_cast<std::size_t>(batches));
    for (int b = 1; b <= batches; ++b) {
      curve.push_back(workload::batched_network_cycles(result, config_, b));
    }
    return plan;
  }

  double total = 0.0;
  for (const workload::LayerResult& layer : result.layers) {
    total += layer.full_cycles();
  }
  std::vector<std::vector<const workload::LayerResult*>> groups(
      static_cast<std::size_t>(num_stages));
  double cum = 0.0;
  for (const workload::LayerResult& layer : result.layers) {
    const double midpoint = cum + layer.full_cycles() / 2.0;
    int stage = total > 0.0
                    ? static_cast<int>(midpoint / total *
                                       static_cast<double>(num_stages))
                    : 0;
    stage = std::clamp(stage, 0, num_stages - 1);
    groups[static_cast<std::size_t>(stage)].push_back(&layer);
    cum += layer.full_cycles();
  }
  // A network with fewer layers than stages leaves trailing groups empty;
  // an empty stage simply costs zero cycles and forwards zero bytes.
  for (int s = 0; s < num_stages; ++s) {
    auto& group = groups[static_cast<std::size_t>(s)];
    auto& curve = plan.cycles[static_cast<std::size_t>(s)];
    curve.reserve(static_cast<std::size_t>(batches));
    for (int b = 1; b <= batches; ++b) {
      double cycles = 0.0;
      for (const workload::LayerResult* layer : group) {
        cycles += workload::batched_layer_cycles(*layer, config_, b);
      }
      curve.push_back(cycles);
    }
    if (s + 1 < num_stages && !group.empty()) {
      const workload::LayerResult* boundary = group.back();
      plan.boundary_bytes[static_cast<std::size_t>(s)] =
          static_cast<double>(boundary->stats.dram_write_bytes) *
          boundary->scale;
    }
  }
  return plan;
}

double ServiceModel::service_cycles(int network, int batch) const {
  const auto& curve = cycles_.at(static_cast<std::size_t>(network));
  const auto idx = static_cast<std::size_t>(
      std::clamp(batch, 1, static_cast<int>(curve.size())) - 1);
  return curve[idx];
}

}  // namespace sealdl::serve
