// Deterministic batched-inference serving loop.
//
// Single-threaded discrete-event simulation over two event sources: the
// pre-generated arrival schedule and device completions. The device serves
// one batch at a time; at each dispatch the scheduler groups up to
// --batch queued requests for the front request's network (FIFO otherwise)
// and charges the ServiceModel's batch-B latency plus a fixed dispatch
// overhead. Per-request latency (queue wait + service) feeds
// util::Histogram percentiles; all queue/overload accounting lands in the
// telemetry registry so the standard JSON run report and Perfetto trace
// carry the serving view. Simulation parallelism (--jobs) lives entirely in
// the ServiceModel profiling stage — the loop itself is sequential and
// replays bit-identically for a fixed seed.
//
// run_server is the one-device special case of serve/fleet.hpp's run_fleet;
// multi-device serving (routers, pipeline-parallel sharding) lives there.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "serve/options.hpp"
#include "serve/request_gen.hpp"
#include "serve/service_model.hpp"
#include "sim/gpu_config.hpp"
#include "telemetry/telemetry.hpp"

namespace sealdl::serve {

struct BatchRecord {
  int network = 0;
  int size = 0;
  sim::Cycle start = 0;      ///< dispatch cycle
  double cycles = 0.0;       ///< dispatch-to-completion time incl. overhead
  int device = 0;            ///< global device index of the anchoring stage-0
};

/// Percentiles of one lifecycle stage's latency over completed requests.
struct StageLatency {
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
};

struct ServeReport {
  // Request accounting. generated = completed + dropped + shed once the
  // loop drains (block never loses requests, it only delays them).
  std::uint64_t generated = 0;
  std::uint64_t completed = 0;
  std::uint64_t dropped = 0;
  std::uint64_t shed = 0;
  std::uint64_t blocked = 0;       ///< arrivals that waited in the backlog
  std::size_t peak_backlog = 0;

  std::uint64_t batches = 0;
  double mean_batch = 0.0;         ///< completed / batches

  sim::Cycle end_cycle = 0;        ///< last batch completion (device idle)
  double p50_ms = 0.0;             ///< end-to-end request latency percentiles
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  double mean_queue_ms = 0.0;
  double throughput_rps = 0.0;     ///< completed per simulated second
  double drop_rate = 0.0;          ///< (dropped + shed) / generated

  // Per-stage latency decomposition over completed requests. The stages are
  // causally ordered (backlog -> queue -> dispatch -> execute) and their
  // per-request cycle counts sum exactly to the end-to-end latency:
  // stage_cycles_sum == latency_cycles_sum (rule profile.serve.stages).
  StageLatency stage_backlog;
  StageLatency stage_queue;
  StageLatency stage_dispatch;
  StageLatency stage_execute;
  double stage_cycles_sum = 0.0;    ///< sum of all stage cycles, completed reqs
  double latency_cycles_sum = 0.0;  ///< sum of end-to-end latency cycles

  std::vector<BatchRecord> batch_log;
};

/// Receives one NDJSON progress line per live-stats interval (simulated
/// time). Lines are deterministic functions of the serving state.
using LiveStatsSink = std::function<void(const std::string& line)>;

/// Runs the serving loop. When `collect` is non-null, per-batch spans are
/// appended to its layer records (visible in the Perfetto trace), the
/// serving counters/histograms land in its registry, and every request's
/// lifecycle span chain is recorded in collect->requests(). When
/// `live_stats` is set and options.live_stats enabled, one NDJSON progress
/// line is emitted per live-stats interval of simulated time.
ServeReport run_server(const ServiceModel& model, const ServeOptions& options,
                       const sim::GpuConfig& config,
                       telemetry::RunTelemetry* collect,
                       const LiveStatsSink& live_stats = {});

}  // namespace sealdl::serve
