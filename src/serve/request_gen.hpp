// Seeded open-loop request generator.
//
// Produces the full arrival schedule up front: a Poisson-like process whose
// exponential inter-arrival gaps and per-request network choices are drawn
// from one util::Rng stream. Pre-generating (rather than drawing inside the
// serving loop) means the offered load is identical across queue depths,
// policies, and --jobs values — only the serving behaviour differs, which is
// what the determinism gate compares.
#pragma once

#include <cstdint>
#include <vector>

#include "serve/options.hpp"
#include "sim/request.hpp"

namespace sealdl::serve {

struct Request {
  std::uint64_t id = 0;      ///< arrival order, 0-based
  int network = 0;           ///< index into the ServiceModel's networks
  /// Client session the request belongs to (uniform over [0, 2^16)). Drawn
  /// from an Rng stream independent of the gap/network draws, so adding the
  /// field left every pre-existing arrival schedule byte-identical. The
  /// fleet's session-affinity router keys on it.
  std::uint32_t session = 0;
  sim::Cycle arrival = 0;    ///< cycle the request reaches the server
  /// Cycle the request entered the admission queue: the arrival cycle when
  /// admitted directly, the backlog-refill cycle under the block policy.
  /// Stamped by AdmissionQueue; the lifecycle trace derives the backlog-wait
  /// stage (admit - arrival) from it.
  sim::Cycle admit = 0;
};

/// Generates all arrivals in [0, duration_s) at `core_mhz` cycles per
/// microsecond. Requests are returned in arrival order; network indices are
/// uniform over [0, num_networks).
std::vector<Request> generate_requests(const ServeOptions& options,
                                       int num_networks, double core_mhz);

}  // namespace sealdl::serve
