#include "serve/request_gen.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/rng.hpp"

namespace sealdl::serve {

std::vector<Request> generate_requests(const ServeOptions& options,
                                       int num_networks, double core_mhz) {
  if (num_networks <= 0) throw std::invalid_argument("no networks to serve");
  if (options.rate_rps <= 0.0) {
    throw std::invalid_argument("--rate must be > 0");
  }
  const double cycles_per_second = core_mhz * 1e6;
  const double mean_gap_cycles = cycles_per_second / options.rate_rps;
  const double horizon = options.duration_s * cycles_per_second;

  util::Rng rng(options.seed);
  // Sessions come from their own stream: the gap/network draws above are the
  // ones every committed artifact depends on, and interleaving a third draw
  // would silently reshuffle all of them.
  util::Rng session_rng(options.seed ^ 0xA5A5F00DD00FA5A5ULL);
  std::vector<Request> requests;
  double clock = 0.0;
  for (;;) {
    // Exponential gap; 1 - u keeps log() away from 0. At least one cycle so
    // ids and arrival order stay aligned even at absurd rates.
    const double u = rng.next_double();
    clock += std::max(1.0, -std::log(1.0 - u) * mean_gap_cycles);
    if (clock >= horizon) break;
    Request request;
    request.id = static_cast<std::uint64_t>(requests.size());
    request.network =
        static_cast<int>(rng.next_below(static_cast<std::uint64_t>(num_networks)));
    request.session =
        static_cast<std::uint32_t>(session_rng.next_below(1ULL << 16));
    request.arrival = static_cast<sim::Cycle>(clock);
    requests.push_back(request);
  }
  return requests;
}

}  // namespace sealdl::serve
