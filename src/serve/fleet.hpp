// Multi-device fleet serving: N simulated accelerators behind one router.
//
// The fleet generalizes the single-device serving loop (serve/server.hpp)
// into a deterministic discrete-event simulation over N devices. Devices are
// grouped into `devices / shard_stages` pipelines; each pipeline owns one
// bounded admission queue and serves batches through its stages in
// pipeline-parallel fashion:
//
//   * A pluggable Router assigns every arrival to a pipeline: round-robin
//     (arrival-order rotation), least-loaded (smallest queue + backlog, ties
//     to the lowest index), or session-affinity (requests of one client
//     session always land on the same pipeline).
//   * With shard_stages S > 1, the served model is split into S contiguous
//     layer groups balanced by batch-1 cycles (ServiceModel::stage_plan).
//     Each dispatched batch is divided into up to `microbatch` microbatches
//     that flow through the stages 1F1B-style: stage s of microbatch m
//     starts at max(stage s free, stage s-1 of m finished + link transfer).
//     The schedule has the classic warmup (first microbatches fill the
//     pipeline), steady (all stages busy), and cooldown (drain) phases, and
//     pipelining across *batches* falls out of the per-stage free timeline:
//     a new batch's stage 0 may start while the previous batch still
//     occupies later stages.
//   * Crossing a stage boundary costs link_latency_cycles plus the boundary
//     activation bytes at the microbatch's size over link_bytes_per_cycle —
//     the inter-device link cost model.
//
// Everything is a pure function of (options, profiled model): event
// processing is strictly time-ordered with index-ordered tie-breaks, so a
// fleet run replays byte-identically for any --jobs value (profiling
// parallelism never reaches the event loop).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "serve/server.hpp"

namespace sealdl::serve {

/// How the fleet assigns an arriving request to a pipeline.
enum class RouterPolicy {
  kRoundRobin,   ///< rotate over pipelines in arrival order
  kLeastLoaded,  ///< smallest queue + backlog; ties to the lowest index
  kAffinity,     ///< request.session hashes to a stable pipeline
};

const char* router_name(RouterPolicy policy);

/// Parses "round-robin" | "least-loaded" | "affinity"; throws
/// std::invalid_argument.
RouterPolicy parse_router(const std::string& name);

/// True iff `policy` is a declared enumerator (guards forged values, the
/// same contract as serve::policy_known).
bool router_known(RouterPolicy policy);

struct FleetOptions {
  /// Simulated accelerators. Must be >= 1 and divisible by shard_stages;
  /// devices / shard_stages pipelines serve independently.
  int devices = 1;
  RouterPolicy router = RouterPolicy::kRoundRobin;
  /// Pipeline-parallel stages the model is sharded into (1 = no sharding).
  int shard_stages = 1;
  /// Microbatches one dispatched batch is split into when sharded (clamped
  /// to the batch size at dispatch time). 1 = whole-batch stage hops.
  int microbatch = 2;
  /// Fixed cycles per stage-boundary hop (link + peer handshake latency).
  double link_latency_cycles = 2000.0;
  /// Inter-device link bandwidth in bytes per core cycle; boundary
  /// activation traffic is charged at this rate.
  double link_bytes_per_cycle = 16.0;
};

/// Per-device accounting. Device index d serves stage d % shard_stages of
/// pipeline d / shard_stages. Admission outcomes (routed/completed/dropped/
/// shed/blocked) are attributed to the pipeline's stage-0 device — that is
/// where the queue physically sits; later-stage devices only execute.
struct DeviceReport {
  int device = 0;
  int pipeline = 0;
  int stage = 0;
  std::uint64_t routed = 0;     ///< arrivals the router sent here
  std::uint64_t completed = 0;
  std::uint64_t dropped = 0;
  std::uint64_t shed = 0;
  std::uint64_t blocked = 0;
  std::uint64_t batches = 0;          ///< dispatches anchored on this device
  std::uint64_t stage_runs = 0;       ///< microbatch-stage executions here
  double busy_cycles = 0.0;           ///< cycles spent executing (+ dispatch)
  double last_free = 0.0;             ///< when this device last went idle
};

/// Fleet-wide report: the familiar single-device totals plus per-device
/// decomposition. The fleet.* rule family proves the two views reconcile
/// (per-device sums equal fleet totals; see verify/fleet_checkers.hpp).
struct FleetReport {
  ServeReport totals;
  int devices = 1;
  int stages = 1;
  int pipelines = 1;
  std::uint64_t microbatches = 0;      ///< total dispatched microbatches
  std::uint64_t stage_runs = 0;        ///< microbatches x stages executed
  std::vector<DeviceReport> device_reports;
};

/// Runs the fleet serving loop. Telemetry mirrors run_server — batch/stage
/// phase records (one per device track), serve/* registry instruments plus
/// per-device fleet/d<i>/* counters, and per-request lifecycle spans — and
/// live_stats emits one NDJSON line at every crossed interval boundary of
/// simulated time, state snapshotted at the crossing instant.
FleetReport run_fleet(const ServiceModel& model, const ServeOptions& options,
                      const FleetOptions& fleet, const sim::GpuConfig& config,
                      telemetry::RunTelemetry* collect,
                      const LiveStatsSink& live_stats = {});

}  // namespace sealdl::serve
