#include "serve/admission_queue.hpp"

#include <algorithm>

namespace sealdl::serve {

std::optional<Request> AdmissionQueue::offer(const Request& request) {
  util::MutexLock lock(mutex_);
  ++offered_;
  // Direct admission enters the queue at its own arrival instant.
  Request admitted = request;
  admitted.admit = request.arrival;
  if (queue_.size() < depth_ && backlog_.empty()) {
    queue_.push_back(admitted);
    ++admitted_;
    return std::nullopt;
  }
  switch (policy_) {
    case OverloadPolicy::kDrop:
      ++dropped_;
      return std::nullopt;
    case OverloadPolicy::kBlock:
      backlog_.push_back(request);
      ++blocked_;
      peak_backlog_ = std::max(peak_backlog_, backlog_.size());
      return std::nullopt;
    case OverloadPolicy::kShedOldest: {
      // depth 0 means there is never a victim to shed: the "full" queue is
      // empty, and queue_.front() would be undefined behavior. The arrival
      // is refused outright and counted as a drop, so the accounting
      // identity generated == completed + dropped + shed still holds.
      if (queue_.empty()) {
        ++dropped_;
        return std::nullopt;
      }
      Request oldest = queue_.front();
      queue_.pop_front();
      ++shed_;
      queue_.push_back(admitted);
      ++admitted_;
      return oldest;
    }
  }
  return std::nullopt;
}

std::vector<Request> AdmissionQueue::pop_batch(int max_batch, sim::Cycle now) {
  util::MutexLock lock(mutex_);
  std::vector<Request> batch;
  if (queue_.empty()) return batch;
  const int network = queue_.front().network;
  const auto limit = static_cast<std::size_t>(std::max(1, max_batch));
  for (auto it = queue_.begin(); it != queue_.end() && batch.size() < limit;) {
    if (it->network == network) {
      batch.push_back(*it);
      it = queue_.erase(it);
    } else {
      ++it;
    }
  }
  refill_from_backlog(now);
  return batch;
}

void AdmissionQueue::refill_from_backlog(sim::Cycle now) {
  while (queue_.size() < depth_ && !backlog_.empty()) {
    Request request = backlog_.front();
    backlog_.pop_front();
    request.admit = std::max(now, request.arrival);
    queue_.push_back(request);
    ++admitted_;
  }
}

}  // namespace sealdl::serve
