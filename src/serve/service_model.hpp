// Per-network service-time model backing the serving loop.
//
// Each served network is profiled ONCE at batch 1 through the ordinary
// workload::run_network path — the same simulate_layer/merge_outcome code
// the serial CLI uses, so the serving layer cannot drift from it. Profiles
// are dispatched onto a util::ThreadPool (one task per network); every task
// collects into its own private telemetry::RunTelemetry, and the fragments
// are merged into the caller's sink strictly in network order — the same
// submit-parallel / merge-serial discipline run_network applies per layer,
// lifted one level. Output is bitwise-identical for any --jobs value.
//
// Batch-B service times are then the analytic weight-amortization curve of
// workload/batch_model.hpp over the batch-1 profile, memoized per (network,
// B <= max_batch).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "models/layer_spec.hpp"
#include "telemetry/telemetry.hpp"
#include "workload/network_runner.hpp"

namespace sealdl::serve {

struct NamedNetwork {
  std::string name;
  std::vector<models::LayerSpec> specs;
};

/// Resolves "vgg16" | "resnet18" | "resnet34" to its paper-scale spec list;
/// throws std::invalid_argument for anything else.
NamedNetwork named_network(const std::string& name);

class ServiceModel {
 public:
  /// Profiles every network under `config`/`base_options` using up to `jobs`
  /// pool workers (1 = serial, 0 = hardware concurrency; base_options.jobs
  /// is overridden — parallelism lives at the network level here). When
  /// `collect` is non-null, per-network telemetry (layer records, component
  /// metrics, time series) is merged into it in network order.
  ///
  /// `probe_hooks`, when non-empty, must be parallel to `networks`: hook i is
  /// installed as the bus-traffic observer of network i's profiling run (the
  /// taint auditor behind sealdl-serve --secure-audit). Each hook is touched
  /// only by its own network's profiling task, so per-network ledgers stay
  /// jobs-invariant.
  ServiceModel(std::vector<NamedNetwork> networks, const sim::GpuConfig& config,
               const workload::RunOptions& base_options, int max_batch, int jobs,
               telemetry::RunTelemetry* collect,
               std::vector<workload::BusProbeHook*> probe_hooks = {});

  [[nodiscard]] int count() const { return static_cast<int>(profiles_.size()); }
  [[nodiscard]] const std::string& name(int network) const {
    return names_.at(static_cast<std::size_t>(network));
  }
  [[nodiscard]] const workload::NetworkResult& profile(int network) const {
    return profiles_.at(static_cast<std::size_t>(network));
  }

  /// Memoized batch-B inference latency in core cycles (excluding the
  /// per-dispatch overhead, which the server owns). batch is clamped to
  /// [1, max_batch].
  [[nodiscard]] double service_cycles(int network, int batch) const;

  /// Pipeline-parallel stage decomposition for the fleet's model sharding:
  /// the network's layers split into `stages` contiguous groups balanced by
  /// batch-1 cycles (each layer lands in the stage its cumulative-cycle
  /// midpoint falls in, so the partition is deterministic and contiguous).
  struct StagePlan {
    /// cycles[s][b - 1]: stage s's batch-b service cycles. Summed over all
    /// stages this equals the unsharded batch-b service time — sharding
    /// moves work, it never creates or destroys cycles.
    std::vector<std::vector<double>> cycles;
    /// Activation bytes one inference pushes across the inter-device link
    /// after stage s (the boundary layer's scaled DRAM write traffic).
    /// boundary_bytes[stages - 1] is always 0: the last stage exits to the
    /// host, not to a peer device.
    std::vector<double> boundary_bytes;
  };
  /// Builds the plan for `stages` pipeline stages with batch curves up to
  /// `max_batch`. stages == 1 reproduces service_cycles() exactly.
  [[nodiscard]] StagePlan stage_plan(int network, int stages,
                                     int max_batch) const;

  /// Full-network totals of the batch-1 profile, scaled to full layers —
  /// used to annotate batch spans in the serving telemetry.
  struct Aggregate {
    double instructions = 0.0;
    double dram_bytes = 0.0;
    double encrypted_bytes = 0.0;
    double bypassed_bytes = 0.0;
    double dram_util = 0.0;  ///< cycle-weighted mean over the layers
    double aes_util = 0.0;
  };
  [[nodiscard]] const Aggregate& aggregate(int network) const {
    return aggregates_.at(static_cast<std::size_t>(network));
  }

 private:
  sim::GpuConfig config_;  ///< profiling config, reused by stage_plan()
  std::vector<std::string> names_;
  std::vector<workload::NetworkResult> profiles_;
  std::vector<Aggregate> aggregates_;
  /// cycles_[network][b - 1] for b in 1..max_batch.
  std::vector<std::vector<double>> cycles_;
};

}  // namespace sealdl::serve
