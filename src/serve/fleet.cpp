#include "serve/fleet.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <memory>
#include <optional>
#include <queue>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "serve/admission_queue.hpp"
#include "telemetry/phase.hpp"
#include "util/json.hpp"
#include "util/stats.hpp"

namespace sealdl::serve {

namespace {

// Latency histogram bounds: 5 ms resolution up to 10 s. Saturated tails are
// visible through the exported overflow count (Histogram::percentile clamps
// to hi by contract).
constexpr double kLatencyHistMs = 10000.0;
constexpr std::size_t kLatencyBuckets = 2000;

/// Annotates one dispatched batch as a phase record so the Perfetto trace
/// and the run report's layer array show the serving timeline. `fraction`
/// scales the volume fields for per-stage records (1.0 for a whole batch);
/// the record lands on `device`'s track.
telemetry::LayerPhaseRecord batch_record(const ServiceModel& model,
                                         const BatchRecord& batch,
                                         const std::string& name,
                                         double cycles, double start,
                                         double fraction, int device) {
  const ServiceModel::Aggregate& aggregate = model.aggregate(batch.network);
  const double b = static_cast<double>(batch.size) * fraction;
  telemetry::LayerPhaseRecord record;
  record.name = name;
  record.start_cycle = static_cast<sim::Cycle>(start);
  record.sim_cycles = static_cast<sim::Cycle>(cycles);
  record.scale = 1.0;
  record.full_cycles = cycles;
  record.device = device;
  record.thread_instructions =
      static_cast<std::uint64_t>(aggregate.instructions * b);
  record.ipc = cycles > 0.0 ? aggregate.instructions * b / cycles : 0.0;
  record.dram_bytes = static_cast<std::uint64_t>(aggregate.dram_bytes * b);
  record.encrypted_bytes =
      static_cast<std::uint64_t>(aggregate.encrypted_bytes * b);
  record.bypassed_bytes =
      static_cast<std::uint64_t>(aggregate.bypassed_bytes * b);
  record.encrypted_fraction =
      aggregate.dram_bytes > 0.0
          ? aggregate.encrypted_bytes / aggregate.dram_bytes
          : 0.0;
  record.dram_util = aggregate.dram_util;
  record.aes_util = aggregate.aes_util;
  record.bound = telemetry::classify_bound(record.dram_util, record.aes_util);
  return record;
}

/// Applies completed-work events (batch/microbatch finishes) to the live
/// snapshot in finish-time order, so a line stamped T only ever counts work
/// that had actually finished by T.
struct FinishEvent {
  double cycle = 0.0;
  std::uint64_t completed = 0;  ///< requests finishing at `cycle`
  std::uint64_t batches = 0;    ///< batches whose last microbatch ends here
  bool operator>(const FinishEvent& other) const {
    return cycle > other.cycle;
  }
};

}  // namespace

const char* router_name(RouterPolicy policy) {
  switch (policy) {
    case RouterPolicy::kRoundRobin: return "round-robin";
    case RouterPolicy::kLeastLoaded: return "least-loaded";
    case RouterPolicy::kAffinity: return "affinity";
  }
  return "?";
}

RouterPolicy parse_router(const std::string& name) {
  if (name == "round-robin") return RouterPolicy::kRoundRobin;
  if (name == "least-loaded") return RouterPolicy::kLeastLoaded;
  if (name == "affinity") return RouterPolicy::kAffinity;
  throw std::invalid_argument("unknown router " + name +
                              " (round-robin|least-loaded|affinity)");
}

bool router_known(RouterPolicy policy) {
  switch (policy) {
    case RouterPolicy::kRoundRobin:
    case RouterPolicy::kLeastLoaded:
    case RouterPolicy::kAffinity:
      return true;
  }
  return false;
}

FleetReport run_fleet(const ServiceModel& model, const ServeOptions& options,
                      const FleetOptions& fleet, const sim::GpuConfig& config,
                      telemetry::RunTelemetry* collect,
                      const LiveStatsSink& live_stats) {
  if (fleet.devices < 1 || fleet.shard_stages < 1 ||
      fleet.devices % fleet.shard_stages != 0) {
    throw std::invalid_argument(
        "run_fleet: devices must be >= 1 and divisible by shard_stages");
  }
  if (!router_known(fleet.router)) {
    throw std::invalid_argument("run_fleet: unknown router policy");
  }
  const int stages = fleet.shard_stages;
  const int pipelines = fleet.devices / stages;

  const std::vector<Request> arrivals =
      generate_requests(options, model.count(), config.core_mhz);

  std::vector<std::unique_ptr<AdmissionQueue>> queues;
  queues.reserve(static_cast<std::size_t>(pipelines));
  for (int p = 0; p < pipelines; ++p) {
    queues.push_back(std::make_unique<AdmissionQueue>(options.queue_depth,
                                                      options.policy));
  }
  // stage_free[p][s]: when pipeline p's stage-s device next becomes free.
  std::vector<std::vector<double>> stage_free(
      static_cast<std::size_t>(pipelines),
      std::vector<double>(static_cast<std::size_t>(stages), 0.0));
  // One stage plan per served network, shared by every pipeline.
  std::vector<ServiceModel::StagePlan> plans;
  plans.reserve(static_cast<std::size_t>(model.count()));
  for (int n = 0; n < model.count(); ++n) {
    plans.push_back(model.stage_plan(n, stages, options.max_batch));
  }

  const double ms_per_cycle = 1.0 / (config.core_mhz * 1e3);
  util::Histogram latency_ms(0.0, kLatencyHistMs, kLatencyBuckets);
  util::Histogram queue_ms(0.0, kLatencyHistMs, kLatencyBuckets);
  util::RunningStats queue_wait;
  // Lifecycle-stage histograms (completed requests only). The dispatch stage
  // is a constant per configuration; it still gets a histogram so every
  // stage reports through the same percentile machinery.
  util::Histogram backlog_ms(0.0, kLatencyHistMs, kLatencyBuckets);
  util::Histogram stage_queue_ms(0.0, kLatencyHistMs, kLatencyBuckets);
  util::Histogram dispatch_ms(0.0, kLatencyHistMs, kLatencyBuckets);
  util::Histogram execute_ms(0.0, kLatencyHistMs, kLatencyBuckets);

  FleetReport fleet_report;
  fleet_report.devices = fleet.devices;
  fleet_report.stages = stages;
  fleet_report.pipelines = pipelines;
  fleet_report.device_reports.resize(static_cast<std::size_t>(fleet.devices));
  for (int d = 0; d < fleet.devices; ++d) {
    DeviceReport& dev = fleet_report.device_reports[static_cast<std::size_t>(d)];
    dev.device = d;
    dev.pipeline = d / stages;
    dev.stage = d % stages;
  }
  const auto device_of = [stages](int pipeline, int stage) {
    return pipeline * stages + stage;
  };
  ServeReport& report = fleet_report.totals;
  report.generated = arrivals.size();

  const bool tracing = collect != nullptr;
  // Lifecycle record for a request that never reached a dispatch.
  const auto record_lost = [&](const Request& request, const char* outcome,
                               double end_cycle, int pipeline) {
    if (!tracing) return;
    telemetry::RequestSpanRecord span;
    span.id = request.id;
    span.network = model.name(request.network);
    span.outcome = outcome;
    span.arrival = request.arrival;
    span.device = device_of(pipeline, 0);
    span.backlog_cycles = static_cast<double>(request.admit - request.arrival);
    span.queue_cycles =
        std::max(0.0, end_cycle - static_cast<double>(request.admit));
    collect->requests().push_back(std::move(span));
  };

  // Router state. Round-robin rotates per routed arrival; affinity keys on
  // the request's session; least-loaded reads queue + backlog occupancy at
  // the arrival instant (every earlier event has already been processed —
  // the loop below is strictly time-ordered).
  std::uint64_t round_robin = 0;
  const auto route = [&](const Request& request) {
    switch (fleet.router) {
      case RouterPolicy::kLeastLoaded: {
        int best = 0;
        std::size_t best_load = ~std::size_t{0};
        for (int p = 0; p < pipelines; ++p) {
          const std::size_t load =
              queues[static_cast<std::size_t>(p)]->size() +
              queues[static_cast<std::size_t>(p)]->backlog_size();
          if (load < best_load) {
            best_load = load;
            best = p;
          }
        }
        return best;
      }
      case RouterPolicy::kAffinity:
        return static_cast<int>(request.session %
                                static_cast<std::uint32_t>(pipelines));
      case RouterPolicy::kRoundRobin:
      default:
        return static_cast<int>(round_robin++ %
                                static_cast<std::uint64_t>(pipelines));
    }
  };

  // offer() with outcome attribution: a returned victim was shed, and a
  // dropped() increment means the newcomer itself was refused. Both end
  // their lifecycle at the offer instant (the newcomer's arrival).
  const auto offer_tracked = [&](const Request& request) {
    const int pipeline = route(request);
    AdmissionQueue& queue = *queues[static_cast<std::size_t>(pipeline)];
    fleet_report.device_reports[static_cast<std::size_t>(device_of(pipeline, 0))]
        .routed++;
    const std::uint64_t dropped_before = tracing ? queue.dropped() : 0;
    const std::optional<Request> victim = queue.offer(request);
    if (!tracing) return;
    if (victim) {
      record_lost(*victim, "shed", static_cast<double>(request.arrival),
                  pipeline);
    }
    if (queue.dropped() != dropped_before) {
      Request refused = request;
      refused.admit = request.arrival;  // never queued: zero-length stages
      record_lost(refused, "dropped", static_cast<double>(request.arrival),
                  pipeline);
    }
  };

  // Live-stats cadence in simulated cycles. Lines are emitted when simulated
  // time crosses each boundary: the snapshot at boundary T includes every
  // event with timestamp <= T and nothing later — completions are applied
  // from a finish-ordered event heap, not at dispatch time.
  const bool live = options.live_stats && live_stats &&
                    options.live_stats_interval_s > 0.0;
  const double live_interval_cycles =
      options.live_stats_interval_s * config.core_mhz * 1e6;
  double next_emit = live_interval_cycles;
  std::uint64_t live_completed = 0;
  std::uint64_t live_batches = 0;
  std::priority_queue<FinishEvent, std::vector<FinishEvent>,
                      std::greater<FinishEvent>>
      finish_events;
  const auto emit_line = [&](double boundary) {
    while (!finish_events.empty() && finish_events.top().cycle <= boundary) {
      live_completed += finish_events.top().completed;
      live_batches += finish_events.top().batches;
      finish_events.pop();
    }
    std::uint64_t dropped = 0, shed = 0, blocked = 0, queued = 0, backlog = 0;
    for (const auto& queue : queues) {
      dropped += queue->dropped();
      shed += queue->shed();
      blocked += queue->blocked();
      queued += queue->size();
      backlog += queue->backlog_size();
    }
    util::JsonWriter json;
    json.begin_object();
    json.field("t_s", boundary / (config.core_mhz * 1e6));
    json.field("cycle", static_cast<std::uint64_t>(boundary));
    json.field("completed", live_completed);
    json.field("batches", live_batches);
    json.field("dropped", dropped);
    json.field("shed", shed);
    json.field("blocked", blocked);
    json.field("queued", queued);
    json.field("backlog", backlog);
    if (pipelines > 1) {
      json.key("queued_by_pipeline").begin_array();
      for (const auto& queue : queues) {
        json.value(static_cast<std::uint64_t>(queue->size()));
      }
      json.end_array();
    }
    json.end_object();
    live_stats(json.str());
  };
  // Emits every boundary strictly before the event about to be processed:
  // events stamped exactly on a boundary are part of its snapshot.
  const auto flush_before = [&](double event_cycle) {
    while (live && next_emit < event_cycle) {
      emit_line(next_emit);
      next_emit += live_interval_cycles;
    }
  };

  const auto dispatch = [&](int pipeline, double start) {
    AdmissionQueue& queue = *queues[static_cast<std::size_t>(pipeline)];
    const std::vector<Request> batch =
        queue.pop_batch(options.max_batch, static_cast<sim::Cycle>(start));
    const int network = batch.front().network;
    const ServiceModel::StagePlan& plan =
        plans[static_cast<std::size_t>(network)];
    const int batch_size = static_cast<int>(batch.size());
    // Microbatching only helps once there is a pipeline to fill.
    const int micro =
        stages > 1 ? std::clamp(fleet.microbatch, 1, batch_size) : 1;
    ++report.batches;
    fleet_report.microbatches += static_cast<std::uint64_t>(micro);
    fleet_report.stage_runs += static_cast<std::uint64_t>(micro * stages);
    const int anchor_device = device_of(pipeline, 0);
    fleet_report.device_reports[static_cast<std::size_t>(anchor_device)]
        .batches++;

    // 1F1B-style schedule: stage s of microbatch m starts when the stage's
    // device frees AND stage s-1 of m has finished and crossed the link.
    // The per-device free timeline carries over between batches, so a new
    // batch's early stages overlap the previous batch's late stages.
    const double anchor = start + options.dispatch_overhead_cycles;
    std::vector<int> micro_sizes(static_cast<std::size_t>(micro),
                                 batch_size / micro);
    for (int m = 0; m < batch_size % micro; ++m) {
      micro_sizes[static_cast<std::size_t>(m)]++;
    }
    std::vector<double> stage_first_start(static_cast<std::size_t>(stages),
                                          0.0);
    std::vector<double> stage_busy(static_cast<std::size_t>(stages), 0.0);
    std::vector<double> micro_completion(static_cast<std::size_t>(micro), 0.0);
    for (int m = 0; m < micro; ++m) {
      const int b = micro_sizes[static_cast<std::size_t>(m)];
      double prev_finish = 0.0;
      for (int s = 0; s < stages; ++s) {
        const double cycles =
            plan.cycles[static_cast<std::size_t>(s)]
                       [static_cast<std::size_t>(b - 1)];
        double ready = anchor;
        if (s > 0) {
          const double boundary_bytes =
              plan.boundary_bytes[static_cast<std::size_t>(s - 1)] *
              static_cast<double>(b);
          ready = prev_finish + fleet.link_latency_cycles +
                  boundary_bytes / fleet.link_bytes_per_cycle;
        }
        double& free_at = stage_free[static_cast<std::size_t>(pipeline)]
                                    [static_cast<std::size_t>(s)];
        const double stage_start = std::max(free_at, ready);
        const double stage_finish = stage_start + cycles;
        free_at = stage_finish;
        if (m == 0) stage_first_start[static_cast<std::size_t>(s)] = stage_start;
        stage_busy[static_cast<std::size_t>(s)] += cycles;
        DeviceReport& dev =
            fleet_report.device_reports[static_cast<std::size_t>(
                device_of(pipeline, s))];
        dev.stage_runs++;
        dev.busy_cycles += cycles;
        dev.last_free = std::max(dev.last_free, stage_finish);
        prev_finish = stage_finish;
      }
      micro_completion[static_cast<std::size_t>(m)] = prev_finish;
    }
    // The dispatch overhead (batch assembly, kernel launch) runs on the
    // pipeline's stage-0 device.
    fleet_report.device_reports[static_cast<std::size_t>(anchor_device)]
        .busy_cycles += options.dispatch_overhead_cycles;
    const double completion =
        micro_completion[static_cast<std::size_t>(micro - 1)];

    // Per-request accounting: a request completes when its microbatch exits
    // the last stage.
    std::size_t request_index = 0;
    for (int m = 0; m < micro; ++m) {
      for (int i = 0; i < micro_sizes[static_cast<std::size_t>(m)]; ++i) {
        const Request& request = batch[request_index++];
        const double wait = start - static_cast<double>(request.arrival);
        const double latency =
            micro_completion[static_cast<std::size_t>(m)] -
            static_cast<double>(request.arrival);
        latency_ms.add(latency * ms_per_cycle);
        queue_ms.add(wait * ms_per_cycle);
        queue_wait.add(wait * ms_per_cycle);

        // Stage decomposition. The execute stage is defined as the remainder
        // of the end-to-end latency after the attributed stages, so the four
        // stages sum to the measured latency by construction (the
        // profile.serve.stages / fleet.stages reconciliation) instead of
        // drifting by floating-point dust.
        const double backlog =
            static_cast<double>(request.admit - request.arrival);
        const double queued = start - static_cast<double>(request.admit);
        const double dispatch_cycles = options.dispatch_overhead_cycles;
        const double attributed = backlog + queued + dispatch_cycles;
        const double execute = latency - attributed;
        backlog_ms.add(backlog * ms_per_cycle);
        stage_queue_ms.add(queued * ms_per_cycle);
        dispatch_ms.add(dispatch_cycles * ms_per_cycle);
        execute_ms.add(execute * ms_per_cycle);
        report.stage_cycles_sum += attributed + execute;
        report.latency_cycles_sum += latency;

        if (tracing) {
          telemetry::RequestSpanRecord span;
          span.id = request.id;
          span.network = model.name(request.network);
          span.outcome = "completed";
          span.arrival = request.arrival;
          span.device = anchor_device;
          span.backlog_cycles = backlog;
          span.queue_cycles = queued;
          span.dispatch_cycles = dispatch_cycles;
          span.execute_cycles = execute;
          span.batch = report.batches;
          collect->requests().push_back(std::move(span));
        }
      }
      if (live) {
        FinishEvent event;
        event.cycle = micro_completion[static_cast<std::size_t>(m)];
        event.completed =
            static_cast<std::uint64_t>(micro_sizes[static_cast<std::size_t>(m)]);
        event.batches = m + 1 == micro ? 1 : 0;
        finish_events.push(event);
      }
    }
    report.completed += batch.size();
    fleet_report.device_reports[static_cast<std::size_t>(anchor_device)]
        .completed += batch.size();

    BatchRecord record;
    record.network = network;
    record.size = batch_size;
    record.start = static_cast<sim::Cycle>(start);
    record.cycles = completion - start;
    record.device = anchor_device;
    report.batch_log.push_back(record);
    if (collect) {
      const std::string base =
          "serve/" + model.name(network) + "x" + std::to_string(batch_size);
      if (stages == 1) {
        collect->layers().push_back(batch_record(
            model, record, base, record.cycles, start, 1.0, anchor_device));
      } else {
        double busy_total = 0.0;
        for (const double busy : stage_busy) busy_total += busy;
        for (int s = 0; s < stages; ++s) {
          const double busy = stage_busy[static_cast<std::size_t>(s)];
          collect->layers().push_back(batch_record(
              model, record, base + "/s" + std::to_string(s), busy,
              stage_first_start[static_cast<std::size_t>(s)],
              busy_total > 0.0 ? busy / busy_total : 0.0,
              device_of(pipeline, s)));
        }
      }
    }
    report.end_cycle =
        std::max(report.end_cycle, static_cast<sim::Cycle>(completion));
  };

  // Strictly time-ordered event loop: the next event is either the earliest
  // arrival or the earliest possible dispatch (max of device-free and queue
  // front arrival), whichever comes first; arrivals win ties so every
  // request at or before a dispatch instant is offered first (shedding may
  // replace the front and push the dispatch later). Event times never
  // decrease, which is what makes the boundary-crossing live-stats snapshot
  // well defined.
  std::size_t next = 0;
  for (;;) {
    int best_pipeline = -1;
    double best_start = 0.0;
    for (int p = 0; p < pipelines; ++p) {
      AdmissionQueue& queue = *queues[static_cast<std::size_t>(p)];
      if (queue.empty()) continue;
      const double start =
          std::max(stage_free[static_cast<std::size_t>(p)][0],
                   static_cast<double>(queue.front().arrival));
      if (best_pipeline < 0 || start < best_start) {
        best_pipeline = p;
        best_start = start;
      }
    }
    const bool has_arrival = next < arrivals.size();
    if (!has_arrival && best_pipeline < 0) break;
    if (has_arrival &&
        (best_pipeline < 0 ||
         static_cast<double>(arrivals[next].arrival) <= best_start)) {
      flush_before(static_cast<double>(arrivals[next].arrival));
      offer_tracked(arrivals[next]);
      ++next;
      continue;
    }
    flush_before(best_start);
    dispatch(best_pipeline, best_start);
  }
  // Drain the remaining boundaries up to the last completion (inclusive).
  while (live && next_emit <= static_cast<double>(report.end_cycle)) {
    emit_line(next_emit);
    next_emit += live_interval_cycles;
  }

  for (const auto& queue : queues) {
    report.dropped += queue->dropped();
    report.shed += queue->shed();
    report.blocked += queue->blocked();
    report.peak_backlog = std::max(report.peak_backlog, queue->peak_backlog());
  }
  for (int p = 0; p < pipelines; ++p) {
    DeviceReport& dev = fleet_report.device_reports[static_cast<std::size_t>(
        device_of(p, 0))];
    const AdmissionQueue& queue = *queues[static_cast<std::size_t>(p)];
    dev.dropped = queue.dropped();
    dev.shed = queue.shed();
    dev.blocked = queue.blocked();
  }
  report.mean_batch =
      report.batches
          ? static_cast<double>(report.completed) /
                static_cast<double>(report.batches)
          : 0.0;
  report.p50_ms = latency_ms.percentile(50.0);
  report.p95_ms = latency_ms.percentile(95.0);
  report.p99_ms = latency_ms.percentile(99.0);
  report.mean_queue_ms = queue_wait.mean();
  const auto stage_latency = [](const util::Histogram& hist) {
    StageLatency stage;
    stage.p50_ms = hist.percentile(50.0);
    stage.p95_ms = hist.percentile(95.0);
    stage.p99_ms = hist.percentile(99.0);
    return stage;
  };
  report.stage_backlog = stage_latency(backlog_ms);
  report.stage_queue = stage_latency(stage_queue_ms);
  report.stage_dispatch = stage_latency(dispatch_ms);
  report.stage_execute = stage_latency(execute_ms);
  // Throughput over the larger of the configured horizon and the drain
  // tail: dividing by the last-completion instant alone inflated the rate
  // whenever the fleet went idle before the arrival window closed (a 10
  // req/s load finishing at 0.1 s of a 0.2 s run is still 10 req/s offered,
  // not 20).
  const double horizon_cycles = options.duration_s * config.core_mhz * 1e6;
  const double span_cycles =
      std::max(horizon_cycles, static_cast<double>(report.end_cycle));
  const double seconds = span_cycles / (config.core_mhz * 1e6);
  report.throughput_rps =
      seconds > 0.0 ? static_cast<double>(report.completed) / seconds : 0.0;
  report.drop_rate =
      report.generated
          ? static_cast<double>(report.dropped + report.shed) /
                static_cast<double>(report.generated)
          : 0.0;

  if (collect) {
    telemetry::MetricsRegistry& registry = collect->registry();
    registry.counter("serve/generated").add(report.generated);
    registry.counter("serve/completed").add(report.completed);
    registry.counter("serve/dropped").add(report.dropped);
    registry.counter("serve/shed").add(report.shed);
    registry.counter("serve/blocked").add(report.blocked);
    registry.counter("serve/batches").add(report.batches);
    registry.gauge("serve/mean_batch").add(report.mean_batch);
    registry.gauge("serve/throughput_rps").add(report.throughput_rps);
    registry.gauge("serve/drop_rate").add(report.drop_rate);
    registry.gauge("serve/mean_queue_ms").add(report.mean_queue_ms);
    registry
        .histogram("serve/latency_ms", 0.0, kLatencyHistMs, kLatencyBuckets)
        .merge(latency_ms);
    registry
        .histogram("serve/queue_ms", 0.0, kLatencyHistMs, kLatencyBuckets)
        .merge(queue_ms);
    registry
        .histogram("serve/stage/backlog_ms", 0.0, kLatencyHistMs,
                   kLatencyBuckets)
        .merge(backlog_ms);
    registry
        .histogram("serve/stage/queue_ms", 0.0, kLatencyHistMs,
                   kLatencyBuckets)
        .merge(stage_queue_ms);
    registry
        .histogram("serve/stage/dispatch_ms", 0.0, kLatencyHistMs,
                   kLatencyBuckets)
        .merge(dispatch_ms);
    registry
        .histogram("serve/stage/execute_ms", 0.0, kLatencyHistMs,
                   kLatencyBuckets)
        .merge(execute_ms);
    // Fleet decomposition: one counter block per device, in device order,
    // so the JSON report and the fleet.* reconciliation rules see the same
    // numbers. Single-device unsharded runs skip the block so their report
    // keeps the exact pre-fleet shape.
    if (fleet.devices > 1 || stages > 1) {
      registry.gauge("fleet/devices").add(fleet.devices);
      registry.gauge("fleet/pipelines").add(pipelines);
      registry.gauge("fleet/stages").add(stages);
      registry.counter("fleet/microbatches").add(fleet_report.microbatches);
      registry.counter("fleet/stage_runs").add(fleet_report.stage_runs);
      const double end = static_cast<double>(report.end_cycle);
      for (const DeviceReport& dev : fleet_report.device_reports) {
        const std::string prefix = "fleet/d" + std::to_string(dev.device) + "/";
        registry.counter(prefix + "routed").add(dev.routed);
        registry.counter(prefix + "completed").add(dev.completed);
        registry.counter(prefix + "dropped").add(dev.dropped);
        registry.counter(prefix + "shed").add(dev.shed);
        registry.counter(prefix + "blocked").add(dev.blocked);
        registry.counter(prefix + "batches").add(dev.batches);
        registry.counter(prefix + "stage_runs").add(dev.stage_runs);
        registry.gauge(prefix + "busy_cycles").add(dev.busy_cycles);
        registry.gauge(prefix + "utilization")
            .add(end > 0.0 ? dev.busy_cycles / end : 0.0);
      }
    }
  }
  return fleet_report;
}

}  // namespace sealdl::serve
