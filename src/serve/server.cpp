#include "serve/server.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "serve/admission_queue.hpp"
#include "telemetry/phase.hpp"
#include "util/json.hpp"
#include "util/stats.hpp"

namespace sealdl::serve {

namespace {

// Latency histogram bounds: 5 ms resolution up to 10 s. Saturated tails are
// visible through the exported overflow count (Histogram::percentile clamps
// to hi by contract).
constexpr double kLatencyHistMs = 10000.0;
constexpr std::size_t kLatencyBuckets = 2000;

/// Annotates one dispatched batch as a phase record so the Perfetto trace
/// and the run report's layer array show the serving timeline.
telemetry::LayerPhaseRecord batch_record(const ServiceModel& model,
                                         const BatchRecord& batch) {
  const ServiceModel::Aggregate& aggregate = model.aggregate(batch.network);
  const double b = static_cast<double>(batch.size);
  telemetry::LayerPhaseRecord record;
  record.name =
      "serve/" + model.name(batch.network) + "x" + std::to_string(batch.size);
  record.start_cycle = batch.start;
  record.sim_cycles = static_cast<sim::Cycle>(batch.cycles);
  record.scale = 1.0;
  record.full_cycles = batch.cycles;
  record.thread_instructions =
      static_cast<std::uint64_t>(aggregate.instructions * b);
  record.ipc = batch.cycles > 0.0
                   ? aggregate.instructions * b / batch.cycles
                   : 0.0;
  record.dram_bytes = static_cast<std::uint64_t>(aggregate.dram_bytes * b);
  record.encrypted_bytes =
      static_cast<std::uint64_t>(aggregate.encrypted_bytes * b);
  record.bypassed_bytes =
      static_cast<std::uint64_t>(aggregate.bypassed_bytes * b);
  record.encrypted_fraction =
      aggregate.dram_bytes > 0.0
          ? aggregate.encrypted_bytes / aggregate.dram_bytes
          : 0.0;
  record.dram_util = aggregate.dram_util;
  record.aes_util = aggregate.aes_util;
  record.bound = telemetry::classify_bound(record.dram_util, record.aes_util);
  return record;
}

/// One deterministic NDJSON live-stats line at simulated instant `cycle`.
std::string live_stats_line(double cycle, const sim::GpuConfig& config,
                            const ServeReport& report,
                            const AdmissionQueue& queue) {
  util::JsonWriter json;
  json.begin_object();
  json.field("t_s", cycle / (config.core_mhz * 1e6));
  json.field("cycle", static_cast<std::uint64_t>(cycle));
  json.field("completed", report.completed);
  json.field("batches", report.batches);
  json.field("dropped", queue.dropped());
  json.field("shed", queue.shed());
  json.field("blocked", queue.blocked());
  json.field("queued", static_cast<std::uint64_t>(queue.size()));
  json.field("backlog", static_cast<std::uint64_t>(queue.backlog_size()));
  json.end_object();
  return json.str();
}

}  // namespace

ServeReport run_server(const ServiceModel& model, const ServeOptions& options,
                       const sim::GpuConfig& config,
                       telemetry::RunTelemetry* collect,
                       const LiveStatsSink& live_stats) {
  const std::vector<Request> arrivals =
      generate_requests(options, model.count(), config.core_mhz);
  AdmissionQueue queue(options.queue_depth, options.policy);

  const double ms_per_cycle = 1.0 / (config.core_mhz * 1e3);
  util::Histogram latency_ms(0.0, kLatencyHistMs, kLatencyBuckets);
  util::Histogram queue_ms(0.0, kLatencyHistMs, kLatencyBuckets);
  util::RunningStats queue_wait;
  // Lifecycle-stage histograms (completed requests only). The dispatch stage
  // is a constant per configuration; it still gets a histogram so every
  // stage reports through the same percentile machinery.
  util::Histogram backlog_ms(0.0, kLatencyHistMs, kLatencyBuckets);
  util::Histogram stage_queue_ms(0.0, kLatencyHistMs, kLatencyBuckets);
  util::Histogram dispatch_ms(0.0, kLatencyHistMs, kLatencyBuckets);
  util::Histogram execute_ms(0.0, kLatencyHistMs, kLatencyBuckets);

  ServeReport report;
  report.generated = arrivals.size();

  const bool tracing = collect != nullptr;
  // Lifecycle record for a request that never reached a dispatch.
  const auto record_lost = [&](const Request& request, const char* outcome,
                               double end_cycle) {
    if (!tracing) return;
    telemetry::RequestSpanRecord span;
    span.id = request.id;
    span.network = model.name(request.network);
    span.outcome = outcome;
    span.arrival = request.arrival;
    span.backlog_cycles = static_cast<double>(request.admit - request.arrival);
    span.queue_cycles =
        std::max(0.0, end_cycle - static_cast<double>(request.admit));
    collect->requests().push_back(std::move(span));
  };
  // offer() with outcome attribution: a returned victim was shed, and a
  // dropped() increment means the newcomer itself was refused. Both end
  // their lifecycle at the offer instant (the newcomer's arrival).
  const auto offer_tracked = [&](const Request& request) {
    const std::uint64_t dropped_before = tracing ? queue.dropped() : 0;
    const std::optional<Request> victim = queue.offer(request);
    if (!tracing) return;
    if (victim) {
      record_lost(*victim, "shed", static_cast<double>(request.arrival));
    }
    if (queue.dropped() != dropped_before) {
      Request refused = request;
      refused.admit = request.arrival;  // never queued: zero-length stages
      record_lost(refused, "dropped", static_cast<double>(request.arrival));
    }
  };

  // Live-stats cadence in simulated cycles.
  const bool live = options.live_stats && live_stats &&
                    options.live_stats_interval_s > 0.0;
  const double live_interval_cycles =
      options.live_stats_interval_s * config.core_mhz * 1e6;
  double next_emit = live_interval_cycles;

  double device_free = 0.0;
  std::size_t next = 0;
  while (next < arrivals.size() || !queue.empty()) {
    if (queue.empty()) {
      offer_tracked(arrivals[next]);
      ++next;
      continue;
    }
    // The device dispatches when it is free and has work; every arrival at
    // or before that instant is offered first (shedding may replace the
    // front and push the dispatch later, so re-anchor until stable).
    double start =
        std::max(device_free, static_cast<double>(queue.front().arrival));
    while (next < arrivals.size() &&
           static_cast<double>(arrivals[next].arrival) <= start) {
      offer_tracked(arrivals[next]);
      ++next;
      start = std::max(device_free, static_cast<double>(queue.front().arrival));
    }

    const std::vector<Request> batch =
        queue.pop_batch(options.max_batch, static_cast<sim::Cycle>(start));
    const int network = batch.front().network;
    const double service =
        options.dispatch_overhead_cycles +
        model.service_cycles(network, static_cast<int>(batch.size()));
    ++report.batches;

    for (const Request& request : batch) {
      const double wait = start - static_cast<double>(request.arrival);
      const double latency = wait + service;
      latency_ms.add(latency * ms_per_cycle);
      queue_ms.add(wait * ms_per_cycle);
      queue_wait.add(wait * ms_per_cycle);

      // Stage decomposition. The execute stage is defined as the remainder
      // of the end-to-end latency after the attributed stages, so the four
      // stages sum to the measured latency by construction (the
      // profile.serve.stages reconciliation) instead of drifting by
      // floating-point dust.
      const double backlog =
          static_cast<double>(request.admit - request.arrival);
      const double queued = start - static_cast<double>(request.admit);
      const double dispatch = options.dispatch_overhead_cycles;
      const double attributed = backlog + queued + dispatch;
      const double execute = latency - attributed;
      backlog_ms.add(backlog * ms_per_cycle);
      stage_queue_ms.add(queued * ms_per_cycle);
      dispatch_ms.add(dispatch * ms_per_cycle);
      execute_ms.add(execute * ms_per_cycle);
      report.stage_cycles_sum += attributed + execute;
      report.latency_cycles_sum += latency;

      if (tracing) {
        telemetry::RequestSpanRecord span;
        span.id = request.id;
        span.network = model.name(request.network);
        span.outcome = "completed";
        span.arrival = request.arrival;
        span.backlog_cycles = backlog;
        span.queue_cycles = queued;
        span.dispatch_cycles = dispatch;
        span.execute_cycles = execute;
        span.batch = report.batches;
        collect->requests().push_back(std::move(span));
      }
    }
    report.completed += batch.size();

    BatchRecord record;
    record.network = network;
    record.size = static_cast<int>(batch.size());
    record.start = static_cast<sim::Cycle>(start);
    record.cycles = service;
    report.batch_log.push_back(record);
    if (collect) collect->layers().push_back(batch_record(model, record));

    device_free = start + service;
    while (live && device_free >= next_emit) {
      live_stats(live_stats_line(next_emit, config, report, queue));
      next_emit += live_interval_cycles;
    }
  }

  report.dropped = queue.dropped();
  report.shed = queue.shed();
  report.blocked = queue.blocked();
  report.peak_backlog = queue.peak_backlog();
  report.end_cycle = static_cast<sim::Cycle>(device_free);
  report.mean_batch =
      report.batches
          ? static_cast<double>(report.completed) / static_cast<double>(report.batches)
          : 0.0;
  report.p50_ms = latency_ms.percentile(50.0);
  report.p95_ms = latency_ms.percentile(95.0);
  report.p99_ms = latency_ms.percentile(99.0);
  report.mean_queue_ms = queue_wait.mean();
  const auto stage_latency = [](const util::Histogram& hist) {
    StageLatency stage;
    stage.p50_ms = hist.percentile(50.0);
    stage.p95_ms = hist.percentile(95.0);
    stage.p99_ms = hist.percentile(99.0);
    return stage;
  };
  report.stage_backlog = stage_latency(backlog_ms);
  report.stage_queue = stage_latency(stage_queue_ms);
  report.stage_dispatch = stage_latency(dispatch_ms);
  report.stage_execute = stage_latency(execute_ms);
  const double seconds =
      static_cast<double>(report.end_cycle) / (config.core_mhz * 1e6);
  report.throughput_rps =
      seconds > 0.0 ? static_cast<double>(report.completed) / seconds : 0.0;
  report.drop_rate =
      report.generated
          ? static_cast<double>(report.dropped + report.shed) /
                static_cast<double>(report.generated)
          : 0.0;

  if (collect) {
    telemetry::MetricsRegistry& registry = collect->registry();
    registry.counter("serve/generated").add(report.generated);
    registry.counter("serve/completed").add(report.completed);
    registry.counter("serve/dropped").add(report.dropped);
    registry.counter("serve/shed").add(report.shed);
    registry.counter("serve/blocked").add(report.blocked);
    registry.counter("serve/batches").add(report.batches);
    registry.gauge("serve/mean_batch").add(report.mean_batch);
    registry.gauge("serve/throughput_rps").add(report.throughput_rps);
    registry.gauge("serve/drop_rate").add(report.drop_rate);
    registry.gauge("serve/mean_queue_ms").add(report.mean_queue_ms);
    registry
        .histogram("serve/latency_ms", 0.0, kLatencyHistMs, kLatencyBuckets)
        .merge(latency_ms);
    registry
        .histogram("serve/queue_ms", 0.0, kLatencyHistMs, kLatencyBuckets)
        .merge(queue_ms);
    registry
        .histogram("serve/stage/backlog_ms", 0.0, kLatencyHistMs,
                   kLatencyBuckets)
        .merge(backlog_ms);
    registry
        .histogram("serve/stage/queue_ms", 0.0, kLatencyHistMs,
                   kLatencyBuckets)
        .merge(stage_queue_ms);
    registry
        .histogram("serve/stage/dispatch_ms", 0.0, kLatencyHistMs,
                   kLatencyBuckets)
        .merge(dispatch_ms);
    registry
        .histogram("serve/stage/execute_ms", 0.0, kLatencyHistMs,
                   kLatencyBuckets)
        .merge(execute_ms);
  }
  return report;
}

}  // namespace sealdl::serve
