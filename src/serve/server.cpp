#include "serve/server.hpp"

#include "serve/fleet.hpp"

namespace sealdl::serve {

ServeReport run_server(const ServiceModel& model, const ServeOptions& options,
                       const sim::GpuConfig& config,
                       telemetry::RunTelemetry* collect,
                       const LiveStatsSink& live_stats) {
  // The single-device server is the degenerate fleet: one device, one
  // pipeline, no sharding. run_fleet's one-stage path charges
  // dispatch_overhead + ServiceModel::service_cycles per batch, exactly the
  // historical loop.
  return run_fleet(model, options, FleetOptions{}, config, collect, live_stats)
      .totals;
}

}  // namespace sealdl::serve
