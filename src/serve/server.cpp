#include "serve/server.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "serve/admission_queue.hpp"
#include "telemetry/phase.hpp"
#include "util/stats.hpp"

namespace sealdl::serve {

namespace {

// Latency histogram bounds: 5 ms resolution up to 10 s. Saturated tails are
// visible through the exported overflow count (Histogram::percentile clamps
// to hi by contract).
constexpr double kLatencyHistMs = 10000.0;
constexpr std::size_t kLatencyBuckets = 2000;

/// Annotates one dispatched batch as a phase record so the Perfetto trace
/// and the run report's layer array show the serving timeline.
telemetry::LayerPhaseRecord batch_record(const ServiceModel& model,
                                         const BatchRecord& batch) {
  const ServiceModel::Aggregate& aggregate = model.aggregate(batch.network);
  const double b = static_cast<double>(batch.size);
  telemetry::LayerPhaseRecord record;
  record.name =
      "serve/" + model.name(batch.network) + "x" + std::to_string(batch.size);
  record.start_cycle = batch.start;
  record.sim_cycles = static_cast<sim::Cycle>(batch.cycles);
  record.scale = 1.0;
  record.full_cycles = batch.cycles;
  record.thread_instructions =
      static_cast<std::uint64_t>(aggregate.instructions * b);
  record.ipc = batch.cycles > 0.0
                   ? aggregate.instructions * b / batch.cycles
                   : 0.0;
  record.dram_bytes = static_cast<std::uint64_t>(aggregate.dram_bytes * b);
  record.encrypted_bytes =
      static_cast<std::uint64_t>(aggregate.encrypted_bytes * b);
  record.bypassed_bytes =
      static_cast<std::uint64_t>(aggregate.bypassed_bytes * b);
  record.encrypted_fraction =
      aggregate.dram_bytes > 0.0
          ? aggregate.encrypted_bytes / aggregate.dram_bytes
          : 0.0;
  record.dram_util = aggregate.dram_util;
  record.aes_util = aggregate.aes_util;
  record.bound = telemetry::classify_bound(record.dram_util, record.aes_util);
  return record;
}

}  // namespace

ServeReport run_server(const ServiceModel& model, const ServeOptions& options,
                       const sim::GpuConfig& config,
                       telemetry::RunTelemetry* collect) {
  const std::vector<Request> arrivals =
      generate_requests(options, model.count(), config.core_mhz);
  AdmissionQueue queue(options.queue_depth, options.policy);

  const double ms_per_cycle = 1.0 / (config.core_mhz * 1e3);
  util::Histogram latency_ms(0.0, kLatencyHistMs, kLatencyBuckets);
  util::Histogram queue_ms(0.0, kLatencyHistMs, kLatencyBuckets);
  util::RunningStats queue_wait;

  ServeReport report;
  report.generated = arrivals.size();

  double device_free = 0.0;
  std::size_t next = 0;
  while (next < arrivals.size() || !queue.empty()) {
    if (queue.empty()) {
      queue.offer(arrivals[next]);
      ++next;
      continue;
    }
    // The device dispatches when it is free and has work; every arrival at
    // or before that instant is offered first (shedding may replace the
    // front and push the dispatch later, so re-anchor until stable).
    double start =
        std::max(device_free, static_cast<double>(queue.front().arrival));
    while (next < arrivals.size() &&
           static_cast<double>(arrivals[next].arrival) <= start) {
      queue.offer(arrivals[next]);
      ++next;
      start = std::max(device_free, static_cast<double>(queue.front().arrival));
    }

    const std::vector<Request> batch = queue.pop_batch(options.max_batch);
    const int network = batch.front().network;
    const double service =
        options.dispatch_overhead_cycles +
        model.service_cycles(network, static_cast<int>(batch.size()));

    for (const Request& request : batch) {
      const double wait = start - static_cast<double>(request.arrival);
      latency_ms.add((wait + service) * ms_per_cycle);
      queue_ms.add(wait * ms_per_cycle);
      queue_wait.add(wait * ms_per_cycle);
    }
    report.completed += batch.size();
    ++report.batches;

    BatchRecord record;
    record.network = network;
    record.size = static_cast<int>(batch.size());
    record.start = static_cast<sim::Cycle>(start);
    record.cycles = service;
    report.batch_log.push_back(record);
    if (collect) collect->layers().push_back(batch_record(model, record));

    device_free = start + service;
  }

  report.dropped = queue.dropped();
  report.shed = queue.shed();
  report.blocked = queue.blocked();
  report.peak_backlog = queue.peak_backlog();
  report.end_cycle = static_cast<sim::Cycle>(device_free);
  report.mean_batch =
      report.batches
          ? static_cast<double>(report.completed) / static_cast<double>(report.batches)
          : 0.0;
  report.p50_ms = latency_ms.percentile(50.0);
  report.p95_ms = latency_ms.percentile(95.0);
  report.p99_ms = latency_ms.percentile(99.0);
  report.mean_queue_ms = queue_wait.mean();
  const double seconds =
      static_cast<double>(report.end_cycle) / (config.core_mhz * 1e6);
  report.throughput_rps =
      seconds > 0.0 ? static_cast<double>(report.completed) / seconds : 0.0;
  report.drop_rate =
      report.generated
          ? static_cast<double>(report.dropped + report.shed) /
                static_cast<double>(report.generated)
          : 0.0;

  if (collect) {
    telemetry::MetricsRegistry& registry = collect->registry();
    registry.counter("serve/generated").add(report.generated);
    registry.counter("serve/completed").add(report.completed);
    registry.counter("serve/dropped").add(report.dropped);
    registry.counter("serve/shed").add(report.shed);
    registry.counter("serve/blocked").add(report.blocked);
    registry.counter("serve/batches").add(report.batches);
    registry.gauge("serve/mean_batch").add(report.mean_batch);
    registry.gauge("serve/throughput_rps").add(report.throughput_rps);
    registry.gauge("serve/drop_rate").add(report.drop_rate);
    registry.gauge("serve/mean_queue_ms").add(report.mean_queue_ms);
    registry
        .histogram("serve/latency_ms", 0.0, kLatencyHistMs, kLatencyBuckets)
        .merge(latency_ms);
    registry
        .histogram("serve/queue_ms", 0.0, kLatencyHistMs, kLatencyBuckets)
        .merge(queue_ms);
  }
  return report;
}

}  // namespace sealdl::serve
