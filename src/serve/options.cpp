#include "serve/options.hpp"

#include <stdexcept>

namespace sealdl::serve {

const char* policy_name(OverloadPolicy policy) {
  switch (policy) {
    case OverloadPolicy::kDrop: return "drop";
    case OverloadPolicy::kBlock: return "block";
    case OverloadPolicy::kShedOldest: return "shed-oldest";
  }
  return "?";
}

bool policy_known(OverloadPolicy policy) {
  switch (policy) {
    case OverloadPolicy::kDrop:
    case OverloadPolicy::kBlock:
    case OverloadPolicy::kShedOldest:
      return true;
  }
  return false;
}

OverloadPolicy parse_policy(const std::string& name) {
  if (name == "drop") return OverloadPolicy::kDrop;
  if (name == "block") return OverloadPolicy::kBlock;
  if (name == "shed-oldest") return OverloadPolicy::kShedOldest;
  throw std::invalid_argument("unknown --policy " + name +
                              " (drop|block|shed-oldest)");
}

}  // namespace sealdl::serve
