// Paper Figure 6: normalized IPC of the VGG POOL layers under five schemes.
//
//   ./fig6_pool_layers [--tiles 960] [--ratio 0.5] [--jobs N]
#include <cstdio>

#include "bench/bench_common.hpp"
#include "models/layer_spec.hpp"

namespace sealdl {
namespace {

int main_impl(int argc, char** argv) {
  util::CliFlags flags(argc, argv);
  const auto tiles = static_cast<std::uint64_t>(flags.get_int("tiles", 960));
  const double ratio = flags.get_double("ratio", 0.5);
  const int jobs = bench::jobs_from_flags(flags);

  bench::banner("Figure 6 — per-POOL-layer IPC normalized to Baseline",
                "Direct/Counter reduce IPC by up to 50% (POOL is more "
                "bandwidth-bound than CONV); SEAL-D/SEAL-C improve over them "
                "by 66%/44%");

  const auto layers = models::fig6_pool_layers();
  std::vector<std::string> header{"scheme"};
  for (const auto& layer : layers) header.push_back(layer.name);
  header.push_back("mean");
  util::Table table(header);

  std::vector<double> baseline(layers.size(), 0.0);
  for (const auto& scheme : bench::five_schemes()) {
    std::vector<std::string> row{scheme.name};
    std::vector<double> normalized;
    for (std::size_t i = 0; i < layers.size(); ++i) {
      const auto result =
          bench::run_body_layer(layers[i], scheme, tiles, ratio, nullptr, jobs);
      if (scheme.scheme == sim::EncryptionScheme::kNone) baseline[i] = result.ipc();
      const double norm = result.ipc() / baseline[i];
      normalized.push_back(norm);
      row.push_back(util::Table::fmt(norm, 2));
    }
    row.push_back(util::Table::fmt(util::mean(normalized), 2));
    table.add_row(std::move(row));
  }
  table.print();

  bench::check_flags(flags);
  return 0;
}

}  // namespace
}  // namespace sealdl

int main(int argc, char** argv) { return sealdl::main_impl(argc, argv); }
