// Shared scaffolding for the paper-reproduction bench binaries.
//
// Every bench prints the rows/series of one paper table or figure using
// util::Table, plus a short header stating what the paper reports so the
// output is self-contained for EXPERIMENTS.md.
#pragma once

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/encryption_plan.hpp"
#include "sim/gpu_config.hpp"
#include "sim/scheme_registry.hpp"
#include "telemetry/report.hpp"
#include "telemetry/trace.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "workload/network_runner.hpp"

namespace sealdl::bench {

/// One bar group of the performance figures. Rows are materialized from the
/// shared scheme registry (sim/scheme_registry.hpp), so the benches sweep the
/// same table the CLIs resolve --scheme against.
struct SchemeConfig {
  std::string name;
  sim::EncryptionScheme scheme;
  bool selective;  ///< SEAL schemes encrypt only plan-marked ranges
  const sim::SchemeInfo* info = nullptr;  ///< registry entry; null only for
                                          ///< hand-built ablation rows
};

inline std::vector<SchemeConfig> schemes_from_registry(bool include_rivals) {
  std::vector<SchemeConfig> out;
  for (const sim::SchemeInfo& info : sim::scheme_registry()) {
    if (!include_rivals && !info.paper) continue;
    out.push_back({info.display, info.family, info.selective(), &info});
  }
  return out;
}

/// Baseline / Direct / Counter / SEAL-D / SEAL-C (paper §IV-A).
inline std::vector<SchemeConfig> five_schemes() {
  return schemes_from_registry(/*include_rivals=*/false);
}

/// The paper's five schemes plus the registered rivals (Seculator, GuardNN).
inline std::vector<SchemeConfig> all_schemes() {
  return schemes_from_registry(/*include_rivals=*/true);
}

/// Applies one scheme to a GTX480 config.
inline sim::GpuConfig configure(const SchemeConfig& scheme) {
  sim::GpuConfig config = sim::GpuConfig::gtx480();
  if (scheme.info != nullptr) {
    sim::apply_scheme(*scheme.info, config);
  } else {
    config.scheme = scheme.scheme;
    config.selective = scheme.selective;
  }
  return config;
}

/// Sets the run options a scheme needs: legacy selectivity plus the explicit
/// protection scope (which is what makes GuardNN's weights-only boundary take
/// effect in the runner).
inline void apply_scheme_options(const SchemeConfig& scheme,
                                 workload::RunOptions& options) {
  options.selective = scheme.selective;
  if (scheme.info != nullptr) options.scope = scheme.info->scope;
}

/// The paper's default SE plan: 50% ratio with the §III-B boundary policy.
inline core::PlanOptions default_plan() {
  core::PlanOptions plan;
  plan.encryption_ratio = 0.5;
  return plan;
}

/// Per-layer figures apply the SE ratio to the measured layer itself
/// (no boundary policy — the swept layer is a body layer).
inline core::PlanOptions body_layer_plan(double ratio = 0.5) {
  core::PlanOptions plan;
  plan.encryption_ratio = ratio;
  plan.full_head_convs = 0;
  plan.full_tail_convs = 0;
  plan.full_tail_fcs = 0;
  return plan;
}

/// Parses the shared `--jobs N` flag (per-layer simulation parallelism:
/// 1 = serial, 0 = one worker per hardware thread). Every bench that runs
/// networks accepts it; results are bitwise-identical across values.
inline int jobs_from_flags(util::CliFlags& flags) {
  return static_cast<int>(flags.get_int("jobs", 1));
}

/// Simulates one body layer followed by a synthetic consumer CONV, timing
/// only the body layer. The consumer exists so that under SEAL the measured
/// layer's output feature map carries a downstream layer's 50% channel
/// marking rather than the fully-encrypted network-output rule.
inline workload::LayerResult run_body_layer(const models::LayerSpec& spec,
                                            const SchemeConfig& scheme,
                                            std::uint64_t tiles, double ratio,
                                            telemetry::RunTelemetry* collect = nullptr,
                                            int jobs = 1) {
  models::LayerSpec consumer;
  consumer.type = models::LayerSpec::Type::kConv;
  consumer.name = "consumer";
  consumer.in_channels = spec.out_channels;
  consumer.out_channels = spec.out_channels;
  consumer.in_h = spec.out_h();
  consumer.in_w = spec.out_w();

  workload::RunOptions options;
  options.max_tiles_per_layer = tiles;
  apply_scheme_options(scheme, options);
  options.plan = body_layer_plan(ratio);
  options.layer_filter = {0};
  options.telemetry = collect;
  options.jobs = jobs;
  return workload::run_network({spec, consumer}, configure(scheme), options)
      .layers.front();
}

/// Shared telemetry sinks for the fig*/ablation benches: every bench that
/// calls these accepts `--json PATH`, `--trace PATH`, and
/// `--sample-interval N`, dumping the raw per-layer/time-series data its
/// table aggregates away. Returns null when neither sink was requested.
inline std::unique_ptr<telemetry::RunTelemetry> telemetry_from_flags(
    util::CliFlags& flags) {
  const std::string json = flags.get("json", "");
  const std::string trace = flags.get("trace", "");
  const auto interval =
      static_cast<sim::Cycle>(flags.get_int("sample-interval", 10000));
  if (json.empty() && trace.empty()) return nullptr;
  telemetry::TelemetryOptions options;
  options.sample_interval = interval;
  return std::make_unique<telemetry::RunTelemetry>(options);
}

/// Stamps the shared provenance block into a bench's BENCH_*.json document
/// (same schema as the run reports' "provenance" key).
inline void write_bench_provenance(util::JsonWriter& json,
                                   const sim::GpuConfig& config, int jobs,
                                   std::vector<std::string> schemes,
                                   bool fast_path = true) {
  json.key("provenance");
  telemetry::Provenance prov =
      telemetry::make_provenance(config, jobs, std::move(schemes));
  prov.fast_path = fast_path;
  telemetry::write_provenance_json(json, prov);
}

/// Scheme labels of a sweep, for provenance stamping.
inline std::vector<std::string> scheme_names(
    const std::vector<SchemeConfig>& schemes) {
  std::vector<std::string> names;
  for (const SchemeConfig& scheme : schemes) names.push_back(scheme.name);
  return names;
}

/// Scheme labels of five_schemes(), for provenance stamping.
inline std::vector<std::string> five_scheme_names() {
  return scheme_names(five_schemes());
}

/// Writes the sinks parsed by telemetry_from_flags(); no-op when `collect`
/// is null.
inline void export_telemetry(util::CliFlags& flags, const std::string& bench,
                             const sim::GpuConfig& config,
                             const telemetry::RunTelemetry* collect,
                             int jobs = 1) {
  if (!collect) return;
  telemetry::RunInfo info;
  info.tool = bench;
  info.workload = bench;
  info.scheme = "multi";  // bench runs sweep several schemes into one report
  info.provenance = telemetry::make_provenance(config, jobs, five_scheme_names());
  const std::string json = flags.get("json", "");
  const std::string trace = flags.get("trace", "");
  if (!json.empty()) {
    telemetry::write_text_file(json,
                               telemetry::run_report_json(info, config, *collect));
    std::printf("\nwrote JSON run report to %s\n", json.c_str());
  }
  if (!trace.empty()) {
    telemetry::write_text_file(
        trace, telemetry::chrome_trace_json(info, config, *collect));
    std::printf("wrote Perfetto trace to %s\n", trace.c_str());
  }
}

/// Prefixes the layer records appended since `first` with "tag/", so one
/// report can hold several schemes'/networks' runs side by side.
inline void tag_new_layers(telemetry::RunTelemetry* collect, std::size_t first,
                           const std::string& tag) {
  if (!collect) return;
  for (std::size_t i = first; i < collect->layers().size(); ++i) {
    collect->layers()[i].name = tag + "/" + collect->layers()[i].name;
  }
}

/// Prints the standard bench banner.
inline void banner(const std::string& title, const std::string& paper_claim) {
  std::printf("=== %s ===\n", title.c_str());
  std::printf("paper: %s\n\n", paper_claim.c_str());
}

/// Warn about unknown flags (typos in sweep scripts fail loudly).
inline void check_flags(const util::CliFlags& flags) {
  for (const auto& name : flags.unused()) {
    std::fprintf(stderr, "warning: unused flag --%s\n", name.c_str());
  }
}

}  // namespace sealdl::bench
