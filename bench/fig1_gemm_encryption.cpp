// Paper Figure 1: IPC of matrix multiplication under straightforward memory
// encryption (a), and counter-cache hit rate vs capacity (b).
//
//   ./fig1_gemm_encryption [--dim 1024] [--tiles 960] [--sweep]
//
// --sweep extends Fig 1b with a finer counter-cache size sweep and the
// split-counter discussion point (per-line counter footprint).
#include <cstdio>

#include "bench/bench_common.hpp"
#include "sim/gpu_simulator.hpp"
#include "workload/gemm_trace.hpp"

namespace sealdl {
namespace {

sim::SimStats run_gemm(const sim::GpuConfig& config, int dim,
                       std::uint64_t max_tiles) {
  workload::GemmSpec spec;
  spec.m = spec.n = spec.k = dim;
  spec.a_base = 0x1000'0000;
  spec.b_base = 0x2000'0000;
  spec.c_base = 0x3000'0000;
  auto programs = workload::make_gemm_programs(
      spec, config.num_sms * config.warps_per_sm, max_tiles);
  sim::GpuSimulator simulator(config);
  simulator.load_work(std::move(programs));
  simulator.run();
  return simulator.stats();
}

int main_impl(int argc, char** argv) {
  util::CliFlags flags(argc, argv);
  const int dim = static_cast<int>(flags.get_int("dim", 1024));
  const auto tiles = static_cast<std::uint64_t>(flags.get_int("tiles", 960));
  const bool sweep = flags.get_bool("sweep", false);

  bench::banner("Figure 1 — GEMM under straightforward memory encryption",
                "encryption decreases GPU IPC by 45-54% on matrix "
                "multiplication; counter-cache hit rate grows with capacity "
                "(24KB..1536KB) yet Counter does not beat Direct (§II-B)");

  util::Table fig1a({"config", "IPC", "IPC/baseline", "L2 hit", "ctr hit"});
  double baseline_ipc = 0.0;

  auto add_row = [&](const std::string& name, const sim::GpuConfig& config) {
    const sim::SimStats stats = run_gemm(config, dim, tiles);
    if (baseline_ipc == 0.0) baseline_ipc = stats.ipc();
    fig1a.add_row({name, util::Table::fmt(stats.ipc(), 1),
                   util::Table::fmt(stats.ipc() / baseline_ipc, 3),
                   util::Table::pct(stats.l2_hit_rate()),
                   config.scheme == sim::EncryptionScheme::kCounter
                       ? util::Table::pct(stats.counter_hit_rate())
                       : "-"});
    return stats;
  };

  sim::GpuConfig config = sim::GpuConfig::gtx480();
  add_row("Baseline", config);
  config.scheme = sim::EncryptionScheme::kDirect;
  add_row("Direct", config);

  util::Table fig1b({"counter cache", "IPC", "hit rate", "counter traffic MB"});
  const std::vector<int> sizes =
      sweep ? std::vector<int>{24, 48, 96, 192, 384, 768, 1536, 3072}
            : std::vector<int>{24, 96, 384, 1536};
  for (int kb : sizes) {
    config.scheme = sim::EncryptionScheme::kCounter;
    config.counter_cache_kb = kb;
    const sim::SimStats stats = run_gemm(config, dim, tiles);
    fig1a.add_row({"Ctr-" + std::to_string(kb), util::Table::fmt(stats.ipc(), 1),
                   util::Table::fmt(stats.ipc() / baseline_ipc, 3),
                   util::Table::pct(stats.l2_hit_rate()),
                   util::Table::pct(stats.counter_hit_rate())});
    fig1b.add_row({std::to_string(kb) + " KB", util::Table::fmt(stats.ipc(), 1),
                   util::Table::pct(stats.counter_hit_rate()),
                   util::Table::fmt(static_cast<double>(stats.counter_traffic_bytes) / 1e6, 2)});
  }

  if (sweep) {
    // Split counters (Yan et al.): 8x counter coverage per cache line.
    for (int kb : {24, 96}) {
      config.scheme = sim::EncryptionScheme::kCounter;
      config.counter_cache_kb = kb;
      config.split_counters = true;
      const sim::SimStats stats = run_gemm(config, dim, tiles);
      fig1b.add_row({std::to_string(kb) + " KB (split)",
                     util::Table::fmt(stats.ipc(), 1),
                     util::Table::pct(stats.counter_hit_rate()),
                     util::Table::fmt(static_cast<double>(stats.counter_traffic_bytes) / 1e6, 2)});
    }
    config.split_counters = false;
  }

  std::printf("Fig 1a — IPC (GEMM %dx%dx%d, %llu output tiles simulated)\n", dim,
              dim, dim, static_cast<unsigned long long>(tiles));
  fig1a.print();
  std::printf("\nFig 1b — counter-cache hit rate vs capacity\n");
  fig1b.print();

  bench::check_flags(flags);
  return 0;
}

}  // namespace
}  // namespace sealdl

int main(int argc, char** argv) { return sealdl::main_impl(argc, argv); }
