// Paper Table I: published hardware AES engine implementations, plus the
// bandwidth each one sustains in our memory-controller model and the impact
// on a fully encrypted streaming read workload.
//
//   ./table1_aes_engines [--lines 4000]
#include <cstdio>

#include "bench/bench_common.hpp"
#include "crypto/engine_spec.hpp"
#include "sim/mem_controller.hpp"

namespace sealdl {
namespace {

int main_impl(int argc, char** argv) {
  util::CliFlags flags(argc, argv);
  const int lines = static_cast<int>(flags.get_int("lines", 4000));

  bench::banner("Table I — AES encryption engine implementations (counter mode)",
                "published area/power/latency/throughput; the modeled SEAL "
                "engine is the Mathew-style pipeline (20-cycle line latency, "
                "8 GB/s) — §II-B / §IV-A");

  util::Table table({"engine", "area mm^2", "power mW", "latency cyc",
                     "claimed GB/s", "measured GB/s", "stream slowdown"});

  for (const crypto::EngineSpec& engine : crypto::table1_engines()) {
    sim::GpuConfig config = sim::GpuConfig::gtx480();
    config.scheme = sim::EncryptionScheme::kDirect;
    config.engine = engine;

    // Stream `lines` encrypted reads through one controller and measure the
    // sustained post-AES bandwidth.
    sim::MemoryController mc(config, nullptr);
    sim::Cycle done = 0;
    for (int i = 0; i < lines; ++i) {
      done = mc.read_line(0, static_cast<sim::Addr>(i) * 128);
    }
    const double bytes = static_cast<double>(lines) * 128.0;
    const double measured_gbps =
        bytes / static_cast<double>(done) * config.core_mhz * 1e6 / 1e9;

    // Same stream without encryption, for the slowdown column.
    sim::GpuConfig plain = config;
    plain.scheme = sim::EncryptionScheme::kNone;
    sim::MemoryController mc_plain(plain, nullptr);
    sim::Cycle done_plain = 0;
    for (int i = 0; i < lines; ++i) {
      done_plain = mc_plain.read_line(0, static_cast<sim::Addr>(i) * 128);
    }

    table.add_row({engine.name,
                   engine.area_mm2 < 0 ? "N/A" : util::Table::fmt(engine.area_mm2, 1),
                   engine.power_mw < 0 ? "N/A" : util::Table::fmt(engine.power_mw, 0),
                   std::to_string(engine.latency_cycles),
                   util::Table::fmt(engine.throughput_gbps, 1),
                   util::Table::fmt(measured_gbps, 2),
                   util::Table::fmt(static_cast<double>(done) / static_cast<double>(done_plain), 2) + "x"});
  }
  table.print();

  const auto engine = crypto::default_engine();
  std::printf(
      "\nSEAL default engine: %s; per-channel DRAM %.1f GB/s achievable vs "
      "%.1f GB/s AES => the §II-B bandwidth gap.\n",
      engine.name.c_str(),
      sim::GpuConfig::gtx480().dram_bytes_per_cycle_per_channel() * 700e6 / 1e9,
      engine.throughput_gbps);

  bench::check_flags(flags);
  return 0;
}

}  // namespace
}  // namespace sealdl

int main(int argc, char** argv) { return sealdl::main_impl(argc, argv); }
